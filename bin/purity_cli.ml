(* purity-cli: drive a simulated Purity array from the command line.

   Subcommands build an array, run a scenario against the simulation
   clock, and print the array's statistics — a quick way to poke at the
   system without writing OCaml:

     dune exec bin/purity_cli.exe -- smoke
     dune exec bin/purity_cli.exe -- workload --kind oltp --ops 2000
     dune exec bin/purity_cli.exe -- drill
     dune exec bin/purity_cli.exe -- reduction --kind vdi
     dune exec bin/purity_cli.exe -- replicate --cycles 4
     dune exec bin/purity_cli.exe -- protect --ticks 8 *)

open Cmdliner
module Clock = Purity_sim.Clock
module Fa = Purity_core.Flash_array
module Wl = Purity_workload.Workload
module Dg = Purity_workload.Datagen
module Histogram = Purity_util.Histogram
module Registry = Purity_telemetry.Registry
module Export = Purity_telemetry.Export

let await clock f =
  let r = ref None in
  f (fun x -> r := Some x);
  Clock.run clock;
  Option.get !r

let make_array ~drives ~seed =
  let clock = Clock.create () in
  let config = { Fa.default_config with Fa.drives; seed = Int64.of_int seed } in
  (clock, Fa.create ~config ~clock ())

let print_stats a =
  let s = Fa.stats a in
  Printf.printf "\narray statistics:\n";
  Printf.printf "  app writes / reads   : %d / %d\n" s.Fa.app_writes s.Fa.app_reads;
  Printf.printf "  logical written      : %d bytes\n" s.Fa.logical_bytes_written;
  Printf.printf "  stored after reduce  : %d bytes (%.1fx)\n" s.Fa.stored_bytes_written
    (if s.Fa.stored_bytes_written = 0 then 1.0
     else float_of_int s.Fa.logical_bytes_written /. float_of_int s.Fa.stored_bytes_written);
  Printf.printf "  dedup blocks         : %d\n" s.Fa.dedup_blocks;
  Printf.printf "  physical used        : %d of %d bytes\n" s.Fa.physical_bytes_used
    s.Fa.physical_capacity;
  Printf.printf "  live segments        : %d\n" s.Fa.segments_live;
  Printf.printf "  boot-region writes   : %d\n" s.Fa.boot_region_writes;
  Printf.printf "  availability         : %.5f%%\n" (100.0 *. s.Fa.availability);
  Fmt.pr "  write latency (us)   : %a@." Histogram.pp_summary s.Fa.write_latency;
  Fmt.pr "  read latency (us)    : %a@." Histogram.pp_summary s.Fa.read_latency

(* ---- common options ---- *)

let drives =
  let doc = "Number of flash drives in the shelf (>= 9 for 7+2 coding)." in
  Arg.(value & opt int 11 & info [ "drives" ] ~doc)

let seed =
  let doc = "Simulation seed (runs are deterministic per seed)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~doc)

let ops =
  let doc = "Number of I/O operations to run." in
  Arg.(value & opt int 2000 & info [ "ops" ] ~doc)

let concurrency =
  let doc = "Outstanding operations (closed loop)." in
  Arg.(value & opt int 16 & info [ "concurrency" ] ~doc)

(* ---- smoke ---- *)

let smoke drives seed =
  let clock, a = make_array ~drives ~seed in
  (match Fa.create_volume a "vol" ~blocks:8192 with
  | Ok () -> ()
  | Error _ -> failwith "create_volume");
  let dg = Dg.create ~seed:(Int64.of_int seed) in
  let data = Dg.rdbms_page dg (64 * 512) in
  (match await clock (Fa.write a ~volume:"vol" ~block:0 data) with
  | Ok () -> ()
  | Error _ -> failwith "write");
  (match await clock (Fa.read a ~volume:"vol" ~block:0 ~nblocks:64) with
  | Ok got when got = data -> print_endline "smoke: write/read roundtrip OK"
  | _ -> failwith "read mismatch");
  (match Fa.snapshot a ~volume:"vol" ~snap:"vol@1" with
  | Ok () -> print_endline "smoke: snapshot OK"
  | Error _ -> failwith "snapshot");
  ignore (await clock (fun k -> Fa.failover a k));
  (match await clock (Fa.read a ~volume:"vol" ~block:0 ~nblocks:64) with
  | Ok got when got = data -> print_endline "smoke: failover preserved data OK"
  | _ -> failwith "post-failover read mismatch");
  (* an hour of simulated uptime so the availability figure is meaningful *)
  Clock.advance clock 3.6e9;
  print_stats a

let smoke_cmd =
  let doc = "Minimal end-to-end check: write, read, snapshot, failover." in
  Cmd.v (Cmd.info "smoke" ~doc) Term.(const smoke $ drives $ seed)

(* ---- workload ---- *)

let workload_kind =
  let kinds = [ ("uniform", `Uniform); ("oltp", `Oltp); ("docstore", `Docstore); ("vdi", `Vdi) ] in
  let doc = "Workload kind: uniform, oltp, docstore or vdi." in
  Arg.(value & opt (enum kinds) `Oltp & info [ "kind" ] ~doc)

let run_workload drives seed ops concurrency kind =
  let clock, a = make_array ~drives ~seed in
  let volumes = List.init 4 (fun i -> (Printf.sprintf "lun%d" i, 16384)) in
  Wl.provision a ~volumes;
  let s64 = Int64.of_int seed in
  let wl =
    match kind with
    | `Uniform -> Wl.uniform ~seed:s64 ~volumes ~read_fraction:0.7 ~io_blocks:64 ()
    | `Oltp -> Wl.oltp ~seed:s64 ~volumes ()
    | `Docstore -> Wl.docstore ~seed:s64 ~volumes ()
    | `Vdi -> Wl.vdi ~seed:s64 ~volumes ~datagen:(Dg.create ~seed:s64) ()
  in
  let report = await clock (Wl.run a wl ~ops ~concurrency) in
  Fmt.pr "%a@." Wl.pp_report report;
  print_stats a

let workload_cmd =
  let doc = "Run a synthetic workload and report IOPS, latency and reduction." in
  Cmd.v
    (Cmd.info "workload" ~doc)
    Term.(const run_workload $ drives $ seed $ ops $ concurrency $ workload_kind)

(* ---- drill ---- *)

let drill drives seed =
  let clock, a = make_array ~drives ~seed in
  (match Fa.create_volume a "prod" ~blocks:16384 with
  | Ok () -> ()
  | Error _ -> failwith "create_volume");
  let dg = Dg.create ~seed:(Int64.of_int seed) in
  let audit = ref [] in
  for i = 0 to 31 do
    let data = Dg.rdbms_page dg (128 * 512) in
    (match await clock (Fa.write a ~volume:"prod" ~block:(i * 256) data) with
    | Ok () -> audit := (i * 256, data) :: !audit
    | Error _ -> failwith "write")
  done;
  Fa.pull_drive a 1;
  Fa.pull_drive a 5;
  print_endline "pulled drives 1 and 5";
  Fa.crash a;
  let r = await clock (fun k -> Fa.failover a k) in
  Printf.printf "failover completed in %.1f simulated ms\n"
    (r.Purity_core.Recovery.duration_us /. 1000.0);
  let bad =
    List.fold_left
      (fun acc (block, data) ->
        match await clock (Fa.read a ~volume:"prod" ~block ~nblocks:128) with
        | Ok got when got = data -> acc
        | _ -> acc + 1)
      0 !audit
  in
  Printf.printf "audit: %d/%d writes intact\n" (List.length !audit - bad) (List.length !audit);
  print_stats a;
  if bad > 0 then exit 1

let drill_cmd =
  let doc = "The evaluation drill: pull drives, crash the controller, audit." in
  Cmd.v (Cmd.info "drill" ~doc) Term.(const drill $ drives $ seed)

(* ---- reduction ---- *)

let reduction drives seed kind =
  let clock, a = make_array ~drives ~seed in
  let dg = Dg.create ~seed:(Int64.of_int seed) in
  (match Fa.create_volume a "data" ~blocks:32768 with
  | Ok () -> ()
  | Error _ -> failwith "create_volume");
  let gen len =
    match kind with
    | `Uniform -> Dg.random dg len
    | `Oltp -> Dg.rdbms_page dg len
    | `Docstore -> Dg.document dg len
    | `Vdi -> Dg.vm_image dg ~blocks:(len / 512)
  in
  let rec fill b =
    if b < 24576 then begin
      (match await clock (Fa.write a ~volume:"data" ~block:b (gen (64 * 512))) with
      | Ok () -> ()
      | Error _ -> failwith "write");
      fill (b + 64)
    end
  in
  fill 0;
  print_stats a

let reduction_cmd =
  let doc = "Fill a volume with a data class and report the reduction ratio." in
  Cmd.v (Cmd.info "reduction" ~doc) Term.(const reduction $ drives $ seed $ workload_kind)

(* ---- replicate ---- *)

let replicate drives seed cycles =
  let clock = Clock.create () in
  let config = { Fa.default_config with Fa.drives; seed = Int64.of_int seed } in
  let source = Fa.create ~config ~clock () in
  let target = Fa.create ~config:{ config with Fa.seed = Int64.of_int (seed + 1) } ~clock () in
  let repl = Purity_replication.Replication.create ~source ~target () in
  let module Repl = Purity_replication.Replication in
  (match Fa.create_volume source "vol" ~blocks:16384 with
  | Ok () -> ()
  | Error _ -> failwith "create_volume");
  (match Repl.protect repl "vol" with Ok () -> () | Error _ -> failwith "protect");
  let dg = Dg.create ~seed:(Int64.of_int seed) in
  let rng = Purity_util.Rng.create ~seed:(Int64.of_int (seed + 7919)) in
  for c = 1 to cycles do
    for _ = 1 to 4 do
      ignore
        (await clock
           (Fa.write source ~volume:"vol" ~block:(Purity_util.Rng.int rng 60 * 256)
              (Dg.rdbms_page dg (64 * 512))))
    done;
    let r = await clock (fun k -> Repl.replicate_once repl "vol" k) in
    Printf.printf "cycle %d: %d changed blocks, %d bytes shipped, %.1f ms, RPO image %s\n" c
      r.Repl.changed_blocks r.Repl.shipped_bytes (r.Repl.duration_us /. 1000.0)
      r.Repl.rpo_snapshot
  done;
  let s = Repl.stats repl in
  Printf.printf "total: %d cycles, %d blocks, %d bytes over the wire\n" s.Repl.cycles
    s.Repl.total_changed_blocks s.Repl.total_shipped_bytes;
  Printf.printf "target volumes: %s\n"
    (String.concat ", " (List.map (fun (n, _, _) -> n) (Fa.list_volumes target)))

let cycles =
  let doc = "Replication cycles to run." in
  Arg.(value & opt int 4 & info [ "cycles" ] ~doc)

let replicate_cmd =
  let doc = "Replicate a volume to a second array over a simulated WAN." in
  Cmd.v (Cmd.info "replicate" ~doc) Term.(const replicate $ drives $ seed $ cycles)

(* ---- stats ---- *)

let telemetry_stats drives seed ops concurrency kind export =
  let clock, a = make_array ~drives ~seed in
  let volumes = List.init 4 (fun i -> (Printf.sprintf "lun%d" i, 16384)) in
  Wl.provision a ~volumes;
  let s64 = Int64.of_int seed in
  let wl =
    match kind with
    | `Uniform -> Wl.uniform ~seed:s64 ~volumes ~read_fraction:0.7 ~io_blocks:64 ()
    | `Oltp -> Wl.oltp ~seed:s64 ~volumes ()
    | `Docstore -> Wl.docstore ~seed:s64 ~volumes ()
    | `Vdi -> Wl.vdi ~seed:s64 ~volumes ~datagen:(Dg.create ~seed:s64) ()
  in
  ignore (await clock (Wl.run a wl ~ops ~concurrency));
  (* exercise the maintenance paths so their counters have something to say *)
  ignore (await clock (fun k -> Fa.gc a k));
  ignore (await clock (fun k -> Fa.scrub a k));
  let snap = Registry.snapshot (Fa.telemetry a) in
  Fmt.pr "%a@." Registry.pp_snapshot snap;
  match export with
  | None -> ()
  | Some path ->
    let buf = Buffer.create 4096 in
    let exporter =
      Export.create ~tracer:(Fa.tracer a) ~clock ~registry:(Fa.telemetry a)
        ~sink:(Export.buffer_sink buf) ()
    in
    Export.sample exporter;
    let oc = open_out path in
    output_string oc (Buffer.contents buf);
    close_out oc;
    Printf.printf "wrote %d phone-home lines to %s\n" (Export.emitted exporter) path

let export_path =
  let doc = "Write one phone-home JSONL sample (metrics + spans) to $(docv)." in
  Arg.(value & opt (some string) None & info [ "export" ] ~doc ~docv:"FILE")

let stats_cmd =
  let doc =
    "Run a workload plus GC and scrub, then print the full telemetry registry: \
     latency percentiles, data reduction, GC/scrub counters, per-drive wear."
  in
  Cmd.v
    (Cmd.info "stats" ~doc)
    Term.(
      const telemetry_stats $ drives $ seed $ ops $ concurrency $ workload_kind
      $ export_path)

(* ---- protect ---- *)

let protect drives seed ticks =
  let clock = Clock.create () in
  let config = { Fa.default_config with Fa.drives; seed = Int64.of_int seed } in
  let a = Fa.create ~config ~clock () in
  let module P = Purity_core.Protection in
  (match Fa.create_volume a "vol" ~blocks:8192 with
  | Ok () -> ()
  | Error _ -> failwith "create_volume");
  let dg = Dg.create ~seed:(Int64.of_int seed) in
  ignore (await clock (Fa.write a ~volume:"vol" ~block:0 (Dg.rdbms_page dg (64 * 512))));
  let p = P.create a in
  (match P.protect p ~volume:"vol" { P.every_us = 60.0e6; keep = 3 } with
  | Ok () -> ()
  | Error _ -> failwith "protect");
  Printf.printf "policy: snapshot every simulated minute, keep 3\n";
  for _ = 1 to ticks do
    Clock.run_until clock (Clock.now clock +. 60.0e6);
    Printf.printf "t=%4.0f min  taken=%d  retained: %s\n"
      (Clock.now clock /. 60.0e6) (P.taken p)
      (String.concat ", " (P.snapshots p ~volume:"vol"))
  done;
  P.stop p

let ticks =
  let doc = "Simulated minutes to run the snapshot policy for." in
  Arg.(value & opt int 8 & info [ "ticks" ] ~doc)

let protect_cmd =
  let doc = "Run an automatic snapshot policy (cadence + retention)." in
  Cmd.v (Cmd.info "protect" ~doc) Term.(const protect $ drives $ seed $ ticks)

let main =
  let doc = "Simulated Purity all-flash array (SIGMOD 2015 reproduction)" in
  Cmd.group
    (Cmd.info "purity-cli" ~doc ~version:"1.0.0")
    [
      smoke_cmd;
      workload_cmd;
      drill_cmd;
      reduction_cmd;
      replicate_cmd;
      protect_cmd;
      stats_cmd;
    ]

let () = exit (Cmd.eval main)

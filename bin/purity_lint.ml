(* purity_lint: the standalone static-analysis driver. Run from the build
   root (the dune @lint alias does this): scans the .cmt typed ASTs dune
   already produced for every module under the given roots, enforces the
   determinism / unsafe-containment / hot-path-hygiene rules, and exits
   non-zero on any unwaived finding. *)

let () =
  let roots = ref [] in
  let baseline_path = ref "" in
  let jsonl = ref "" in
  let quiet = ref false in
  let spec =
    [
      ( "--root",
        Arg.String (fun s -> roots := s :: !roots),
        "DIR scan this directory for .cmt files (repeatable; default: lib bin \
         bench test lint)" );
      ("--baseline", Arg.Set_string baseline_path, "FILE checked-in baseline of acknowledged findings");
      ("--jsonl", Arg.Set_string jsonl, "FILE write machine-readable findings (telemetry exporter schema)");
      ("--quiet", Arg.Set quiet, " suppress per-finding lines, print the summary only");
    ]
  in
  Arg.parse spec
    (fun s -> roots := s :: !roots)
    "purity_lint [--root DIR]... [--baseline FILE] [--jsonl FILE]";
  let roots =
    match !roots with [] -> [ "lib"; "bin"; "bench"; "test"; "lint" ] | rs -> List.rev rs
  in
  let cfg = Lint.Rules.default in
  let baseline, baseline_errors =
    if !baseline_path = "" then ([], [])
    else if not (Sys.file_exists !baseline_path) then
      ( [],
        [
          Lint.Finding.v ~rule:Lint.Finding.Waiver ~file:!baseline_path ~line:1
            ~col:0 "baseline file not found";
        ] )
    else Lint.Baseline.load !baseline_path
  in
  let cmts = Lint.scan_cmts cfg ~roots in
  let summary = Lint.run cfg ~baseline ~baseline_path:!baseline_path cmts in
  let summary =
    {
      summary with
      Lint.Report.findings =
        List.sort Lint.Finding.order (baseline_errors @ summary.Lint.Report.findings);
    }
  in
  if !jsonl <> "" then Lint.Report.write_jsonl ~path:!jsonl summary;
  Lint.Report.print ~quiet:!quiet summary;
  if not (Lint.Report.clean summary) then exit 1

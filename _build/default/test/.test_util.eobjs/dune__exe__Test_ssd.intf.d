test/test_ssd.mli:

test/test_workload.ml: Alcotest List Option Printf Purity_baseline Purity_compress Purity_core Purity_sim Purity_ssd Purity_util Purity_workload String

test/test_sim.ml: Alcotest Gen List Purity_sim QCheck QCheck_alcotest

test/test_segment.ml: Alcotest Array Bytes Char Fun Int64 List Option Printf Purity_erasure Purity_sched Purity_segment Purity_sim Purity_ssd Purity_util String

test/test_compress.ml: Alcotest Buffer Bytes Char Gen List Purity_compress Purity_util QCheck QCheck_alcotest String

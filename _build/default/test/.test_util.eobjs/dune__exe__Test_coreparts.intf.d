test/test_coreparts.mli:

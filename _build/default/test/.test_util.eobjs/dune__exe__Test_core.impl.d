test/test_core.ml: Alcotest Array Buffer Bytes Char Int64 List Printf Purity_core Purity_sched Purity_sim Purity_ssd Purity_util QCheck QCheck_alcotest String

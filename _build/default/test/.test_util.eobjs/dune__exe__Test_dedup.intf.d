test/test_dedup.mli:

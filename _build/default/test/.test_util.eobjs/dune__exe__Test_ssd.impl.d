test/test_ssd.ml: Alcotest Bytes Char Float Int64 List Printf Purity_sim Purity_ssd Purity_util String

test/test_coreparts.ml: Alcotest List Purity_core Purity_sim QCheck QCheck_alcotest String

test/test_replication.ml: Alcotest Bytes List Option Printf Purity_core Purity_replication Purity_sim Purity_ssd Purity_util

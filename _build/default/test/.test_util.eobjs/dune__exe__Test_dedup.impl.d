test/test_dedup.ml: Alcotest Bytes Int64 List Option Printf Purity_dedup Purity_util QCheck QCheck_alcotest String

test/test_crashes.ml: Alcotest Array Bytes List Option Purity_core Purity_sim Purity_ssd Purity_util String

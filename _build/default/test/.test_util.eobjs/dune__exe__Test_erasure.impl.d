test/test_erasure.ml: Alcotest Array Bytes Char Fun Int64 List Option Printf Purity_erasure Purity_util QCheck QCheck_alcotest String

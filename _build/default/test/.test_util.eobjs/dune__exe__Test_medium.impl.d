test/test_medium.ml: Alcotest List Purity_medium QCheck QCheck_alcotest

test/test_pyramid.mli:

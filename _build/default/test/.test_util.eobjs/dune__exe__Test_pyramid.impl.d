test/test_pyramid.ml: Alcotest Buffer Bytes Gen Int64 List Option Printf Purity_pyramid QCheck QCheck_alcotest String

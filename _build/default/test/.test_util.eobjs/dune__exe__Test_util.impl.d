test/test_util.ml: Alcotest Array Bitio Buffer Bytes Crc32c Fun Gen Heap Histogram Int Int64 List Lru Printf Purity_util QCheck QCheck_alcotest Rng Varint Xxhash

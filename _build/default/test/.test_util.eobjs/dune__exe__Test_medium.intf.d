test/test_medium.mli:

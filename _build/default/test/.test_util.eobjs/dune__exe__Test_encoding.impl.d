test/test_encoding.ml: Alcotest Array Fmt Fun Gen Int Int64 List Printf Purity_encoding QCheck QCheck_alcotest Set

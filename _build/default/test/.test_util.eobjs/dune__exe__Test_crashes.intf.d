test/test_crashes.mli:

(* Whole-system fault injection: random operation schedules with crashes,
   drive pulls, GC, checkpoints and scrubs injected at random points. The
   audited invariant is the array's durability contract: every
   acknowledged write (that was not later overwritten) reads back intact,
   and no read ever returns wrong bytes.

   Each scenario is deterministic per seed; failures print the seed. *)

module Clock = Purity_sim.Clock
module Fa = Purity_core.Flash_array
module Rng = Purity_util.Rng

let check = Alcotest.check
let bool = Alcotest.bool

let config =
  {
    Fa.default_config with
    Fa.drives = 7;
    k = 3;
    m = 2;
    write_unit = 8 * 1024;
    drive_config =
      {
        Purity_ssd.Drive.default_config with
        Purity_ssd.Drive.au_size = 4096 + (8 * 8192);
        num_aus = 512;
        dies = 4;
      };
    memtable_flush = 1_000_000;
  }

let vol_blocks = 2048
let io_blocks = 16

(* The model: what each block-slot must read as. *)
type model = { slots : string option array }

let scenario ~seed ~ops ~crashes =
  let clock = Clock.create () in
  let a = Fa.create ~config ~clock () in
  let rng = Rng.create ~seed in
  let data_rng = Rng.split rng in
  (match Fa.create_volume a "v" ~blocks:vol_blocks with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "create");
  let model = { slots = Array.make (vol_blocks / io_blocks) None } in
  let await f =
    let r = ref None in
    f (fun x -> r := Some x);
    Clock.run clock;
    Option.get !r
  in
  let pulled = ref [] in
  let crashes_left = ref crashes in
  let audit_slot slot =
    let block = slot * io_blocks in
    match await (Fa.read a ~volume:"v" ~block ~nblocks:io_blocks) with
    | Ok got -> (
      match model.slots.(slot) with
      | Some expect ->
        if got <> expect then
          Alcotest.failf "seed %Ld: slot %d corrupted after history" seed slot
      | None ->
        if got <> String.make (io_blocks * 512) '\000' then
          Alcotest.failf "seed %Ld: unwritten slot %d non-zero" seed slot)
    | Error _ -> Alcotest.failf "seed %Ld: slot %d unreadable" seed slot
  in
  for _step = 1 to ops do
    match Rng.int rng 100 with
    | n when n < 45 ->
      (* write *)
      let slot = Rng.int rng (Array.length model.slots) in
      let data = Bytes.to_string (Rng.bytes data_rng (io_blocks * 512)) in
      (match await (Fa.write a ~volume:"v" ~block:(slot * io_blocks) data) with
      | Ok () -> model.slots.(slot) <- Some data
      | Error `Backpressure -> () (* not acked: model unchanged *)
      | Error _ -> Alcotest.failf "seed %Ld: write failed" seed)
    | n when n < 75 ->
      (* read + verify *)
      audit_slot (Rng.int rng (Array.length model.slots))
    | n when n < 82 && !crashes_left > 0 ->
      crashes_left := !crashes_left - 1;
      Fa.crash a;
      ignore (await (fun k -> Fa.failover a k))
    | n when n < 88 ->
      (* pull or reinsert a drive, never exceeding m=2 concurrent pulls *)
      if List.length !pulled < 2 then begin
        let d = Rng.int rng config.Fa.drives in
        if not (List.mem d !pulled) then begin
          Fa.pull_drive a d;
          pulled := d :: !pulled
        end
      end
      else begin
        match !pulled with
        | d :: rest ->
          Fa.reinsert_drive a d;
          pulled := rest
        | [] -> ()
      end
    | n when n < 93 ->
      ignore (await (fun k -> Fa.gc ~min_dead_ratio:0.3 ~max_victims:8 a (fun r -> k r)))
    | n when n < 97 -> ignore (await (fun k -> Fa.checkpoint a k))
    | _ -> ignore (await (fun k -> Fa.flush a (fun () -> k ())))
  done;
  (* final full audit *)
  for slot = 0 to Array.length model.slots - 1 do
    audit_slot slot
  done;
  (* and once more after a final failover *)
  Fa.crash a;
  ignore (await (fun k -> Fa.failover a k));
  for slot = 0 to Array.length model.slots - 1 do
    audit_slot slot
  done

let test_seed seed () = scenario ~seed ~ops:120 ~crashes:3

let test_long_haul () =
  (* a longer single run with heavier churn *)
  scenario ~seed:424242L ~ops:400 ~crashes:6

let test_no_crash_heavy_gc () =
  (* overwrite churn with frequent GC: space must keep being reclaimed *)
  let clock = Clock.create () in
  let a = Fa.create ~config ~clock () in
  let rng = Rng.create ~seed:77L in
  (match Fa.create_volume a "v" ~blocks:vol_blocks with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "create");
  let await f =
    let r = ref None in
    f (fun x -> r := Some x);
    Clock.run clock;
    Option.get !r
  in
  for round = 1 to 12 do
    for _ = 1 to 32 do
      let slot = Rng.int rng (vol_blocks / io_blocks) in
      let data = Bytes.to_string (Rng.bytes rng (io_blocks * 512)) in
      ignore (await (Fa.write a ~volume:"v" ~block:(slot * io_blocks) data))
    done;
    if round mod 3 = 0 then
      ignore (await (fun k -> Fa.gc ~min_dead_ratio:0.3 ~max_victims:16 a (fun r -> k r)))
  done;
  let s = Fa.stats a in
  check bool "array not leaking space" true
    (s.Fa.physical_bytes_used < s.Fa.physical_capacity / 2)

let () =
  Alcotest.run "crash-consistency"
    [
      ( "fault-injection",
        [
          Alcotest.test_case "seed 1" `Quick (test_seed 1L);
          Alcotest.test_case "seed 2" `Quick (test_seed 2L);
          Alcotest.test_case "seed 3" `Quick (test_seed 3L);
          Alcotest.test_case "seed 4" `Quick (test_seed 4L);
          Alcotest.test_case "seed 5" `Quick (test_seed 5L);
          Alcotest.test_case "seed 6" `Quick (test_seed 6L);
          Alcotest.test_case "seed 7" `Quick (test_seed 7L);
          Alcotest.test_case "seed 8" `Quick (test_seed 8L);
          Alcotest.test_case "long haul" `Slow test_long_haul;
          Alcotest.test_case "heavy GC churn" `Quick test_no_crash_heavy_gc;
        ] );
    ]

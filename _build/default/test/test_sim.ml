module Clock = Purity_sim.Clock

let check = Alcotest.check
let bool = Alcotest.bool
let flt = Alcotest.float 1e-9

let test_time_starts_at_zero () =
  let c = Clock.create () in
  check flt "t=0" 0.0 (Clock.now c)

let test_events_fire_in_time_order () =
  let c = Clock.create () in
  let order = ref [] in
  Clock.schedule c ~delay:30.0 (fun () -> order := 3 :: !order);
  Clock.schedule c ~delay:10.0 (fun () -> order := 1 :: !order);
  Clock.schedule c ~delay:20.0 (fun () -> order := 2 :: !order);
  Clock.run c;
  check (Alcotest.list Alcotest.int) "order" [ 1; 2; 3 ] (List.rev !order);
  check flt "final time" 30.0 (Clock.now c)

let test_same_time_fifo () =
  let c = Clock.create () in
  let order = ref [] in
  for i = 1 to 5 do
    Clock.schedule c ~delay:7.0 (fun () -> order := i :: !order)
  done;
  Clock.run c;
  check (Alcotest.list Alcotest.int) "insertion order" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_nested_scheduling () =
  let c = Clock.create () in
  let fired_at = ref (-1.0) in
  Clock.schedule c ~delay:5.0 (fun () ->
      Clock.schedule c ~delay:5.0 (fun () -> fired_at := Clock.now c));
  Clock.run c;
  check flt "nested event time" 10.0 !fired_at

let test_run_until () =
  let c = Clock.create () in
  let fired = ref [] in
  Clock.schedule c ~delay:10.0 (fun () -> fired := 10 :: !fired);
  Clock.schedule c ~delay:50.0 (fun () -> fired := 50 :: !fired);
  Clock.run_until c 25.0;
  check (Alcotest.list Alcotest.int) "only first fired" [ 10 ] !fired;
  check flt "time advanced to stop" 25.0 (Clock.now c);
  check Alcotest.int "one pending" 1 (Clock.pending c)

let test_negative_delay_clamps () =
  let c = Clock.create () in
  Clock.advance c 100.0;
  let at = ref 0.0 in
  Clock.schedule c ~delay:(-5.0) (fun () -> at := Clock.now c);
  Clock.run c;
  check flt "clamped to now" 100.0 !at

let test_schedule_at_past_clamps () =
  let c = Clock.create () in
  Clock.advance c 100.0;
  let at = ref 0.0 in
  Clock.schedule_at c ~at:50.0 (fun () -> at := Clock.now c);
  Clock.run c;
  check flt "clamped" 100.0 !at

let test_step () =
  let c = Clock.create () in
  check bool "no events" false (Clock.step c);
  Clock.schedule c ~delay:1.0 ignore;
  check bool "one event" true (Clock.step c);
  check bool "drained" false (Clock.step c)

let test_advance_never_backwards () =
  let c = Clock.create () in
  Clock.advance c 10.0;
  Clock.advance c (-5.0);
  check flt "unchanged" 10.0 (Clock.now c)

let prop_clock_monotone =
  QCheck.Test.make ~name:"observed event times are monotone" ~count:100
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.0))
    (fun delays ->
      let c = Clock.create () in
      let times = ref [] in
      List.iter (fun d -> Clock.schedule c ~delay:(abs_float d) (fun () -> times := Clock.now c :: !times)) delays;
      Clock.run c;
      let ts = List.rev !times in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b && mono rest
        | _ -> true
      in
      mono ts)

let () =
  Alcotest.run "sim"
    [
      ( "clock",
        [
          Alcotest.test_case "starts at zero" `Quick test_time_starts_at_zero;
          Alcotest.test_case "time order" `Quick test_events_fire_in_time_order;
          Alcotest.test_case "same-time fifo" `Quick test_same_time_fifo;
          Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
          Alcotest.test_case "run_until" `Quick test_run_until;
          Alcotest.test_case "negative delay clamps" `Quick test_negative_delay_clamps;
          Alcotest.test_case "past schedule_at clamps" `Quick test_schedule_at_past_clamps;
          Alcotest.test_case "step" `Quick test_step;
          Alcotest.test_case "advance never backwards" `Quick test_advance_never_backwards;
          QCheck_alcotest.to_alcotest prop_clock_monotone;
        ] );
    ]

(* Unit tests for the small core-support modules: key encodings, block
   references, and the boot region. *)

module Clock = Purity_sim.Clock
module Keys = Purity_core.Keys
module Blockref = Purity_core.Blockref
module Boot = Purity_core.Boot_region

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* ---------- Keys ---------- *)

let test_block_key_roundtrip () =
  let k = Keys.block_key ~medium:42 ~block:99999 in
  check int "key width" 16 (String.length k);
  check int "medium" 42 (Keys.block_key_medium k);
  check int "block" 99999 (Keys.block_key_block k)

let test_block_key_ordering () =
  (* byte order must equal (medium, block) order for range scans *)
  let pairs = [ (1, 5); (1, 6); (1, 100000); (2, 0); (2, 7); (300, 1) ] in
  let keys = List.map (fun (m, b) -> Keys.block_key ~medium:m ~block:b) pairs in
  let sorted = List.sort compare keys in
  check bool "lexicographic = numeric" true (keys = sorted)

let test_medium_segment_keys () =
  check int "medium id" 77 (Keys.medium_key_id (Keys.medium_key 77));
  check int "segment id" 123456 (Keys.segment_key_id (Keys.segment_key 123456))

let prop_block_key_injective =
  QCheck.Test.make ~name:"block keys are injective" ~count:200
    QCheck.(pair (pair (int_bound 10000) (int_bound 100000)) (pair (int_bound 10000) (int_bound 100000)))
    (fun ((m1, b1), (m2, b2)) ->
      let k1 = Keys.block_key ~medium:m1 ~block:b1 in
      let k2 = Keys.block_key ~medium:m2 ~block:b2 in
      (k1 = k2) = (m1 = m2 && b1 = b2))

(* ---------- Blockref ---------- *)

let test_blockref_roundtrip () =
  let r = { Blockref.segment = 9001; off = 123456; stored_len = 8201; index = 63 } in
  let r2 = Blockref.decode (Blockref.encode r) in
  check bool "roundtrip" true (r = r2)

let test_blockref_same_cblock () =
  let a = { Blockref.segment = 5; off = 100; stored_len = 900; index = 0 } in
  let b = { a with Blockref.index = 7 } in
  let c = { a with Blockref.off = 200 } in
  check bool "same cblock ignores index" true (Blockref.same_cblock a b);
  check bool "different offset differs" false (Blockref.same_cblock a c)

let prop_blockref_roundtrip =
  QCheck.Test.make ~name:"blockref roundtrip" ~count:200
    QCheck.(quad (int_bound 100000) (int_bound 10_000_000) (int_bound 40000) (int_bound 64))
    (fun (segment, off, stored_len, index) ->
      let r = { Blockref.segment; off; stored_len; index } in
      Blockref.decode (Blockref.encode r) = r)

(* ---------- Boot region ---------- *)

let test_boot_empty_reads_none () =
  let clock = Clock.create () in
  let b = Boot.create ~clock () in
  let got = ref (Some "sentinel") in
  Boot.read b (fun r -> got := r);
  Clock.run clock;
  check bool "factory fresh" true (!got = None)

let test_boot_write_then_read () =
  let clock = Clock.create () in
  let b = Boot.create ~clock () in
  Boot.write b "blob-1" (fun () -> ());
  Boot.write b "blob-2" (fun () -> ());
  let got = ref None in
  Boot.read b (fun r -> got := r);
  Clock.run clock;
  check (Alcotest.option Alcotest.string) "latest blob wins" (Some "blob-2") !got;
  check int "write count" 2 (Boot.writes b)

let test_boot_latency_charged () =
  let clock = Clock.create () in
  let b = Boot.create ~write_us:600.0 ~clock () in
  let done_at = ref 0.0 in
  Boot.write b "x" (fun () -> done_at := Clock.now clock);
  Clock.run clock;
  check bool "write took simulated time" true (!done_at >= 600.0)

let () =
  Alcotest.run "core-parts"
    [
      ( "keys",
        [
          Alcotest.test_case "block key roundtrip" `Quick test_block_key_roundtrip;
          Alcotest.test_case "ordering" `Quick test_block_key_ordering;
          Alcotest.test_case "medium/segment" `Quick test_medium_segment_keys;
          QCheck_alcotest.to_alcotest prop_block_key_injective;
        ] );
      ( "blockref",
        [
          Alcotest.test_case "roundtrip" `Quick test_blockref_roundtrip;
          Alcotest.test_case "same cblock" `Quick test_blockref_same_cblock;
          QCheck_alcotest.to_alcotest prop_blockref_roundtrip;
        ] );
      ( "boot_region",
        [
          Alcotest.test_case "empty" `Quick test_boot_empty_reads_none;
          Alcotest.test_case "write then read" `Quick test_boot_write_then_read;
          Alcotest.test_case "latency" `Quick test_boot_latency_charged;
        ] );
    ]

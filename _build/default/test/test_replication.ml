module Clock = Purity_sim.Clock
module Fa = Purity_core.Flash_array
module Repl = Purity_replication.Replication
module Rng = Purity_util.Rng

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let config =
  {
    Fa.default_config with
    Fa.drives = 6;
    k = 3;
    m = 2;
    write_unit = 8 * 1024;
    drive_config =
      {
        Purity_ssd.Drive.default_config with
        Purity_ssd.Drive.au_size = 4096 + (8 * 8192);
        num_aus = 256;
        dies = 4;
      };
    memtable_flush = 1_000_000;
  }

let make_pair () =
  let clock = Clock.create () in
  let source = Fa.create ~config ~clock () in
  let target = Fa.create ~config:{ config with Fa.seed = 99L } ~clock () in
  let repl = Repl.create ~source ~target () in
  (clock, source, target, repl)

let await clock f =
  let r = ref None in
  f (fun x -> r := Some x);
  Clock.run clock;
  Option.get !r

let ok = function Ok v -> v | Error _ -> Alcotest.fail "unexpected error"

let write_ok clock a ~volume ~block data =
  match await clock (Fa.write a ~volume ~block data) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "write failed"

let read_ok clock a ~volume ~block ~nblocks =
  match await clock (Fa.read a ~volume ~block ~nblocks) with
  | Ok d -> d
  | Error _ -> Alcotest.fail "read failed"

let rng = Rng.create ~seed:0x4E9L
let random_data nblocks = Bytes.to_string (Rng.bytes rng (nblocks * 512))

let test_initial_sync () =
  let clock, source, target, repl = make_pair () in
  ok (Fa.create_volume source "vol" ~blocks:1024);
  let d = random_data 256 in
  write_ok clock source ~volume:"vol" ~block:0 d;
  ok (Repl.protect repl "vol");
  let r = await clock (fun k -> Repl.replicate_once repl "vol" k) in
  check int "cycle 1" 1 r.Repl.cycle;
  check int "256 blocks shipped" 256 r.Repl.changed_blocks;
  check bool "target volume created" true (Fa.volume_exists target "vol");
  let got = read_ok clock target ~volume:"vol" ~block:0 ~nblocks:256 in
  check bool "target holds the data" true (got = d)

let test_incremental_ships_only_delta () =
  let clock, source, target, repl = make_pair () in
  ok (Fa.create_volume source "vol" ~blocks:2048);
  write_ok clock source ~volume:"vol" ~block:0 (random_data 1024);
  ok (Repl.protect repl "vol");
  let r1 = await clock (fun k -> Repl.replicate_once repl "vol" k) in
  check int "full sync" 1024 r1.Repl.changed_blocks;
  (* small update *)
  let patch = random_data 16 in
  write_ok clock source ~volume:"vol" ~block:100 patch;
  let r2 = await clock (fun k -> Repl.replicate_once repl "vol" k) in
  check int "only the delta crossed the wire" 16 r2.Repl.changed_blocks;
  check bool "delta bytes bounded" true (r2.Repl.shipped_bytes <= 16 * 512 + 4096);
  let got = read_ok clock target ~volume:"vol" ~block:100 ~nblocks:16 in
  check bool "target converged" true (got = patch)

let test_no_changes_ships_nothing () =
  let clock, source, _target, repl = make_pair () in
  ok (Fa.create_volume source "vol" ~blocks:512);
  write_ok clock source ~volume:"vol" ~block:0 (random_data 64);
  ok (Repl.protect repl "vol");
  ignore (await clock (fun k -> Repl.replicate_once repl "vol" k));
  let r = await clock (fun k -> Repl.replicate_once repl "vol" k) in
  check int "idle cycle ships nothing" 0 r.Repl.changed_blocks;
  check int "zero bytes" 0 r.Repl.shipped_bytes

let test_target_holds_consistent_snapshot () =
  let clock, source, target, repl = make_pair () in
  ok (Fa.create_volume source "vol" ~blocks:512);
  let v1 = random_data 64 in
  write_ok clock source ~volume:"vol" ~block:0 v1;
  ok (Repl.protect repl "vol");
  let r1 = await clock (fun k -> Repl.replicate_once repl "vol" k) in
  (* the target carries the named consistent snapshot *)
  check bool "rpo snapshot exists on target" true
    (Fa.volume_exists target r1.Repl.rpo_snapshot);
  (* source keeps writing; the target's snapshot stays at the old image *)
  write_ok clock source ~volume:"vol" ~block:0 (random_data 64);
  let snap_view = read_ok clock target ~volume:r1.Repl.rpo_snapshot ~block:0 ~nblocks:64 in
  check bool "rpo image immutable" true (snap_view = v1)

let test_old_snapshots_retired () =
  let clock, source, target, repl = make_pair () in
  ok (Fa.create_volume source "vol" ~blocks:512);
  write_ok clock source ~volume:"vol" ~block:0 (random_data 32);
  ok (Repl.protect repl "vol");
  let r1 = await clock (fun k -> Repl.replicate_once repl "vol" k) in
  write_ok clock source ~volume:"vol" ~block:32 (random_data 32);
  let r2 = await clock (fun k -> Repl.replicate_once repl "vol" k) in
  check bool "old source snap dropped" false (Fa.volume_exists source r1.Repl.rpo_snapshot);
  check bool "old target snap dropped" false (Fa.volume_exists target r1.Repl.rpo_snapshot);
  check bool "new snaps live" true
    (Fa.volume_exists source r2.Repl.rpo_snapshot
    && Fa.volume_exists target r2.Repl.rpo_snapshot)

let test_wire_time_charged () =
  let clock, source, _target, repl = make_pair () in
  ok (Fa.create_volume source "vol" ~blocks:2048);
  write_ok clock source ~volume:"vol" ~block:0 (random_data 2048);
  ok (Repl.protect repl "vol");
  let r = await clock (fun k -> Repl.replicate_once repl "vol" k) in
  (* 1 MiB at 100 MB/s is ~10 ms, plus per-run RTTs *)
  check bool
    (Printf.sprintf "cycle took %.1f ms of simulated time" (r.Repl.duration_us /. 1000.0))
    true
    (r.Repl.duration_us > 10_000.0)

let test_replication_survives_source_failover () =
  let clock, source, target, repl = make_pair () in
  ok (Fa.create_volume source "vol" ~blocks:512);
  let v1 = random_data 128 in
  write_ok clock source ~volume:"vol" ~block:0 v1;
  ok (Repl.protect repl "vol");
  ignore (await clock (fun k -> Repl.replicate_once repl "vol" k));
  (* source controller dies and comes back *)
  Fa.crash source;
  ignore (await clock (fun k -> Fa.failover source k));
  let patch = random_data 8 in
  write_ok clock source ~volume:"vol" ~block:50 patch;
  let r = await clock (fun k -> Repl.replicate_once repl "vol" k) in
  check bool "incremental after failover" true (r.Repl.changed_blocks <= 16);
  let got = read_ok clock target ~volume:"vol" ~block:50 ~nblocks:8 in
  check bool "target converged after failover" true (got = patch)

let test_target_usable_for_disaster_recovery () =
  let clock, source, target, repl = make_pair () in
  ok (Fa.create_volume source "vol" ~blocks:512);
  let image = random_data 256 in
  write_ok clock source ~volume:"vol" ~block:0 image;
  ok (Repl.protect repl "vol");
  ignore (await clock (fun k -> Repl.replicate_once repl "vol" k));
  (* disaster: the source site is gone; promote the replica *)
  Fa.crash source;
  let got = read_ok clock target ~volume:"vol" ~block:0 ~nblocks:256 in
  check bool "replica serves the data alone" true (got = image);
  write_ok clock target ~volume:"vol" ~block:0 (random_data 8)

let test_replicate_all_multiple_volumes () =
  let clock, source, target, repl = make_pair () in
  List.iter
    (fun v ->
      ok (Fa.create_volume source v ~blocks:256);
      write_ok clock source ~volume:v ~block:0 (random_data 32);
      ok (Repl.protect repl v))
    [ "a"; "b"; "c" ];
  let reports = await clock (fun k -> Repl.replicate_all repl k) in
  check int "three cycles" 3 (List.length reports);
  List.iter (fun v -> check bool v true (Fa.volume_exists target v)) [ "a"; "b"; "c" ];
  let s = Repl.stats repl in
  check int "stats cycles" 3 s.Repl.cycles;
  check int "stats blocks" (3 * 32) s.Repl.total_changed_blocks

let test_protect_errors () =
  let _clock, _source, _target, repl = make_pair () in
  (match Repl.protect repl "ghost" with
  | Error `No_such_volume -> ()
  | _ -> Alcotest.fail "missing volume accepted");
  ()

let () =
  Alcotest.run "replication"
    [
      ( "replication",
        [
          Alcotest.test_case "initial sync" `Quick test_initial_sync;
          Alcotest.test_case "incremental delta" `Quick test_incremental_ships_only_delta;
          Alcotest.test_case "idle cycle" `Quick test_no_changes_ships_nothing;
          Alcotest.test_case "consistent rpo snapshot" `Quick test_target_holds_consistent_snapshot;
          Alcotest.test_case "old snapshots retired" `Quick test_old_snapshots_retired;
          Alcotest.test_case "wire time charged" `Quick test_wire_time_charged;
          Alcotest.test_case "survives source failover" `Quick
            test_replication_survives_source_failover;
          Alcotest.test_case "disaster recovery" `Quick test_target_usable_for_disaster_recovery;
          Alcotest.test_case "replicate_all" `Quick test_replicate_all_multiple_volumes;
          Alcotest.test_case "protect errors" `Quick test_protect_errors;
        ] );
    ]

module Ranges = Purity_encoding.Ranges
module Tp = Purity_encoding.Tuple_page

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let ranges_t = Alcotest.testable (fun ppf r -> Fmt.(list (pair int int)) ppf (Ranges.to_list r))
    (fun a b -> Ranges.to_list a = Ranges.to_list b)

(* ---------- Ranges ---------- *)

let test_ranges_empty () =
  check bool "empty" true (Ranges.is_empty Ranges.empty);
  check int "cardinal" 0 (Ranges.cardinal Ranges.empty);
  check bool "mem" false (Ranges.mem Ranges.empty 5)

let test_ranges_adjacent_merge () =
  (* The paper's key property: dense monotone ids collapse to one range. *)
  let r = List.fold_left Ranges.add Ranges.empty [ 1; 2; 3; 4; 5 ] in
  check int "one range" 1 (Ranges.range_count r);
  check (Alcotest.list (Alcotest.pair int int)) "collapsed" [ (1, 5) ] (Ranges.to_list r)

let test_ranges_out_of_order_merge () =
  let r = List.fold_left Ranges.add Ranges.empty [ 5; 1; 3; 2; 4 ] in
  check int "one range" 1 (Ranges.range_count r);
  check int "cardinal" 5 (Ranges.cardinal r)

let test_ranges_gap_kept () =
  let r = List.fold_left Ranges.add Ranges.empty [ 1; 2; 10; 11 ] in
  check int "two ranges" 2 (Ranges.range_count r);
  check bool "gap not member" false (Ranges.mem r 5);
  check bool "members" true (Ranges.mem r 2 && Ranges.mem r 10)

let test_ranges_bridge () =
  let r = List.fold_left Ranges.add Ranges.empty [ 1; 3 ] in
  check int "two before bridge" 2 (Ranges.range_count r);
  let r = Ranges.add r 2 in
  check int "bridged to one" 1 (Ranges.range_count r)

let test_ranges_overlapping_add_range () =
  let r = Ranges.add_range Ranges.empty ~lo:10 ~hi:20 in
  let r = Ranges.add_range r ~lo:15 ~hi:30 in
  check (Alcotest.list (Alcotest.pair int int)) "merged overlap" [ (10, 30) ] (Ranges.to_list r);
  let r = Ranges.add_range r ~lo:0 ~hi:100 in
  check (Alcotest.list (Alcotest.pair int int)) "engulfed" [ (0, 100) ] (Ranges.to_list r)

let test_ranges_idempotent () =
  let r = Ranges.add_range Ranges.empty ~lo:5 ~hi:9 in
  let r2 = Ranges.add_range r ~lo:5 ~hi:9 in
  check ranges_t "idempotent" r r2

let test_ranges_union () =
  let a = Ranges.of_list [ (0, 5); (10, 15) ] in
  let b = Ranges.of_list [ (6, 9); (20, 25) ] in
  let u = Ranges.union a b in
  check (Alcotest.list (Alcotest.pair int int)) "union merges" [ (0, 15); (20, 25) ]
    (Ranges.to_list u)

let test_ranges_encode_roundtrip () =
  let r = Ranges.of_list [ (3, 17); (100, 100); (1000, 5000) ] in
  let r2 = Ranges.decode (Ranges.encode r) in
  check ranges_t "roundtrip" r r2

let test_ranges_bad_add () =
  Alcotest.check_raises "lo > hi" (Invalid_argument "Ranges.add_range: lo > hi") (fun () ->
      ignore (Ranges.add_range Ranges.empty ~lo:5 ~hi:4))

let prop_ranges_match_naive_set =
  QCheck.Test.make ~name:"ranges agree with a naive set" ~count:300
    QCheck.(list_of_size Gen.(0 -- 100) (int_bound 200))
    (fun ids ->
      let r = List.fold_left Ranges.add Ranges.empty ids in
      let module S = Set.Make (Int) in
      let s = S.of_list ids in
      Ranges.cardinal r = S.cardinal s
      && List.for_all (fun v -> Ranges.mem r v = S.mem v s) (List.init 201 Fun.id))

let prop_ranges_count_bounded =
  (* range_count <= number of distinct inserted ids (the paper's bound). *)
  QCheck.Test.make ~name:"range count bounded by distinct ids" ~count:200
    QCheck.(list_of_size Gen.(0 -- 100) (int_bound 500))
    (fun ids ->
      let r = List.fold_left Ranges.add Ranges.empty ids in
      let module S = Set.Make (Int) in
      Ranges.range_count r <= S.cardinal (S.of_list ids))

let prop_ranges_encode_roundtrip =
  QCheck.Test.make ~name:"ranges serialisation roundtrip" ~count:200
    QCheck.(list_of_size Gen.(0 -- 50) (pair (int_bound 10_000) (int_bound 100)))
    (fun pairs ->
      let r =
        List.fold_left (fun acc (lo, len) -> Ranges.add_range acc ~lo ~hi:(lo + len)) Ranges.empty
          pairs
      in
      Ranges.to_list (Ranges.decode (Ranges.encode r)) = Ranges.to_list r)

(* ---------- Tuple_page ---------- *)

let tuples_of_lists ls = List.map (fun l -> Array.of_list (List.map Int64.of_int l)) ls

let test_page_empty () =
  let p = Tp.encode ~arity:3 [] in
  check int "count" 0 (Tp.count p);
  check (Alcotest.list (Alcotest.list Alcotest.int64)) "empty" []
    (List.map Array.to_list (Tp.to_list p))

let test_page_roundtrip_small () =
  let tuples = tuples_of_lists [ [ 1; 100; 7 ]; [ 2; 100; 9 ]; [ 3; 200; 7 ] ] in
  let p = Tp.encode ~arity:3 tuples in
  check int "count" 3 (Tp.count p);
  List.iteri
    (fun i expect ->
      check (Alcotest.array Alcotest.int64) (Printf.sprintf "tuple %d" i) expect (Tp.get p i))
    tuples

let test_page_constant_field_free () =
  (* Paper: a field with the same value in every tuple takes no space. *)
  let tuples = List.init 100 (fun i -> [| Int64.of_int i; 42L |]) in
  let p_with = Tp.encode ~arity:2 tuples in
  let p_without = Tp.encode ~arity:1 (List.init 100 (fun i -> [| Int64.of_int i |])) in
  check int "constant field adds 0 bits/tuple" (Tp.bits_per_tuple p_without)
    (Tp.bits_per_tuple p_with)

let test_page_scan_matches_naive () =
  let tuples = tuples_of_lists [ [ 5; 1 ]; [ 9; 2 ]; [ 5; 3 ]; [ 700; 4 ]; [ 5; 5 ] ] in
  let p = Tp.encode ~arity:2 tuples in
  check (Alcotest.list int) "scan finds all" [ 0; 2; 4 ] (Tp.scan p ~field:0 ~value:5L);
  check (Alcotest.list int) "naive agrees" (Tp.scan_naive p ~field:0 ~value:5L)
    (Tp.scan p ~field:0 ~value:5L);
  check (Alcotest.list int) "absent value" [] (Tp.scan p ~field:0 ~value:6L)

let test_page_serialize_roundtrip () =
  let tuples =
    List.init 50 (fun i -> [| Int64.of_int (i * 1000); Int64.of_int (i mod 3); 77L |])
  in
  let p = Tp.encode ~arity:3 tuples in
  let p2 = Tp.deserialize (Tp.serialize p) in
  check int "count" (Tp.count p) (Tp.count p2);
  for i = 0 to Tp.count p - 1 do
    check (Alcotest.array Alcotest.int64) "tuple" (Tp.get p i) (Tp.get p2 i)
  done

let test_page_compresses_clustered_values () =
  (* Clustered values (e.g. offsets within a few segments) should encode far
     below 64 bits per field. *)
  let tuples =
    List.init 500 (fun i ->
        [| Int64.of_int (1_000_000 + (i mod 50)); Int64.of_int (8_000_000 + (i mod 20)) |])
  in
  let p = Tp.encode ~arity:2 tuples in
  check bool "beats plain encoding 5x" true
    (Tp.size_bytes p * 5 < Tp.plain_size_bytes ~arity:2 ~count:500)

let test_page_arity_mismatch () =
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Tuple_page.encode: arity mismatch") (fun () ->
      ignore (Tp.encode ~arity:2 [ [| 1L |] ]))

let test_page_value_out_of_range () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Tuple_page.encode: value out of range") (fun () ->
      ignore (Tp.encode ~arity:1 [ [| -1L |] ]))

let gen_tuples =
  QCheck.Gen.(
    let* arity = 1 -- 4 in
    let* n = 0 -- 80 in
    let value = oneof [ int_bound 10; int_bound 1000; int_bound 1_000_000; return 0 ] in
    let* rows = list_repeat n (list_repeat arity value) in
    return (arity, List.map (fun l -> Array.of_list (List.map Int64.of_int l)) rows))

let prop_page_roundtrip =
  QCheck.Test.make ~name:"tuple page roundtrip" ~count:300
    (QCheck.make gen_tuples)
    (fun (arity, tuples) ->
      let p = Tp.encode ~arity tuples in
      List.map Array.to_list (Tp.to_list p) = List.map Array.to_list tuples)

let prop_page_scan_equals_naive =
  QCheck.Test.make ~name:"compressed scan = naive scan" ~count:300
    (QCheck.make
       QCheck.Gen.(
         let* (arity, tuples) = gen_tuples in
         let* field = 0 -- (arity - 1) in
         let* needle = oneof [ int_bound 10; int_bound 1000; int_bound 1_000_000 ] in
         return (arity, tuples, field, Int64.of_int needle)))
    (fun (arity, tuples, field, needle) ->
      let p = Tp.encode ~arity tuples in
      Tp.scan p ~field ~value:needle = Tp.scan_naive p ~field ~value:needle)

let prop_page_serialize_roundtrip =
  QCheck.Test.make ~name:"tuple page serialise roundtrip" ~count:200
    (QCheck.make gen_tuples)
    (fun (arity, tuples) ->
      let p = Tp.encode ~arity tuples in
      let p2 = Tp.deserialize (Tp.serialize p) in
      List.map Array.to_list (Tp.to_list p2) = List.map Array.to_list tuples)

let () =
  Alcotest.run "encoding"
    [
      ( "ranges",
        [
          Alcotest.test_case "empty" `Quick test_ranges_empty;
          Alcotest.test_case "adjacent merge" `Quick test_ranges_adjacent_merge;
          Alcotest.test_case "out of order merge" `Quick test_ranges_out_of_order_merge;
          Alcotest.test_case "gap kept" `Quick test_ranges_gap_kept;
          Alcotest.test_case "bridge" `Quick test_ranges_bridge;
          Alcotest.test_case "overlapping add_range" `Quick test_ranges_overlapping_add_range;
          Alcotest.test_case "idempotent" `Quick test_ranges_idempotent;
          Alcotest.test_case "union" `Quick test_ranges_union;
          Alcotest.test_case "encode roundtrip" `Quick test_ranges_encode_roundtrip;
          Alcotest.test_case "bad add" `Quick test_ranges_bad_add;
          QCheck_alcotest.to_alcotest prop_ranges_match_naive_set;
          QCheck_alcotest.to_alcotest prop_ranges_count_bounded;
          QCheck_alcotest.to_alcotest prop_ranges_encode_roundtrip;
        ] );
      ( "tuple_page",
        [
          Alcotest.test_case "empty" `Quick test_page_empty;
          Alcotest.test_case "roundtrip small" `Quick test_page_roundtrip_small;
          Alcotest.test_case "constant field free" `Quick test_page_constant_field_free;
          Alcotest.test_case "scan matches naive" `Quick test_page_scan_matches_naive;
          Alcotest.test_case "serialize roundtrip" `Quick test_page_serialize_roundtrip;
          Alcotest.test_case "compresses clustered" `Quick test_page_compresses_clustered_values;
          Alcotest.test_case "arity mismatch" `Quick test_page_arity_mismatch;
          Alcotest.test_case "value range" `Quick test_page_value_out_of_range;
          QCheck_alcotest.to_alcotest prop_page_roundtrip;
          QCheck_alcotest.to_alcotest prop_page_scan_equals_naive;
          QCheck_alcotest.to_alcotest prop_page_serialize_roundtrip;
        ] );
    ]

module Medium = Purity_medium.Medium

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let chain = Alcotest.list (Alcotest.pair int int)

let test_base_medium () =
  let t = Medium.create () in
  let m = Medium.create_base t ~blocks:100 in
  check int "size" 100 (Medium.size_blocks t m);
  check bool "rw" true (Medium.status t m = Some Medium.RW);
  check chain "resolve to self" [ (m, 42) ] (Medium.resolve t m ~block:42);
  check chain "out of range" [] (Medium.resolve t m ~block:100)

let test_snapshot_freezes_and_chains () =
  let t = Medium.create () in
  let m = Medium.create_base t ~blocks:10 in
  let snap, succ = Medium.take_snapshot t m in
  check bool "original frozen" true (Medium.status t m = Some Medium.RO);
  check bool "snap ro" true (Medium.status t snap = Some Medium.RO);
  check bool "successor rw" true (Medium.status t succ = Some Medium.RW);
  (* successor resolves through itself then the frozen original *)
  check chain "successor chain" [ (succ, 3); (m, 3) ] (Medium.resolve t succ ~block:3);
  (* snapshot handle skips its own (empty) level *)
  check chain "snapshot chain skips itself" [ (m, 3) ] (Medium.resolve t snap ~block:3)

let test_snapshot_of_ro_rejected () =
  let t = Medium.create () in
  let m = Medium.create_base t ~blocks:10 in
  let snap, _succ = Medium.take_snapshot t m in
  (match Medium.take_snapshot t snap with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "snapshot of RO accepted");
  match Medium.take_snapshot t m with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "snapshot of frozen accepted"

let test_clone_with_offset () =
  let t = Medium.create () in
  let m = Medium.create_base t ~blocks:4000 in
  let _snap, _succ = Medium.take_snapshot t m in
  let c = Medium.clone t m ~range:(2000, 2999) () in
  check int "clone size" 1000 (Medium.size_blocks t c);
  check chain "clone offset mapping" [ (c, 5); (m, 2005) ] (Medium.resolve t c ~block:5);
  check chain "clone oob" [] (Medium.resolve t c ~block:1000)

let test_clone_requires_ro () =
  let t = Medium.create () in
  let m = Medium.create_base t ~blocks:10 in
  match Medium.clone t m () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "clone of RW accepted"

let test_write_target () =
  let t = Medium.create () in
  let m = Medium.create_base t ~blocks:10 in
  check bool "rw writable" true (Medium.write_target t m ~block:5 = Ok m);
  let _snap, succ = Medium.take_snapshot t m in
  check bool "frozen not writable" true (Medium.write_target t m ~block:5 = Error `Read_only);
  check bool "successor writable" true (Medium.write_target t succ ~block:5 = Ok succ);
  check bool "oob" true (Medium.write_target t succ ~block:50 = Error `Out_of_range);
  check bool "no such" true (Medium.write_target t 999 ~block:0 = Error `No_such_medium)

let test_extend () =
  let t = Medium.create () in
  let m = Medium.create_base t ~blocks:10 in
  Medium.extend t m ~blocks:10;
  check int "grown" 20 (Medium.size_blocks t m);
  check chain "new range is base" [ (m, 15) ] (Medium.resolve t m ~block:15)

let test_drop_protects_references () =
  let t = Medium.create () in
  let m = Medium.create_base t ~blocks:10 in
  let snap, succ = Medium.take_snapshot t m in
  (match Medium.drop t m with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "dropped referenced medium");
  Medium.drop t snap;
  Medium.drop t succ;
  Medium.drop t m;
  check (Alcotest.list int) "empty" [] (Medium.live_mediums t)

let test_deep_chain_resolution () =
  let t = Medium.create () in
  let m0 = Medium.create_base t ~blocks:10 in
  let _s1, m1 = Medium.take_snapshot t m0 in
  let _s2, m2 = Medium.take_snapshot t m1 in
  let _s3, m3 = Medium.take_snapshot t m2 in
  check chain "four-level chain" [ (m3, 0); (m2, 0); (m1, 0); (m0, 0) ]
    (Medium.resolve t m3 ~block:0);
  check int "depth 4" 4 (Medium.resolve_depth t m3 ~block:0)

let test_shortcut_flattens_empty_intermediates () =
  let t = Medium.create () in
  let m0 = Medium.create_base t ~blocks:10 in
  let _s1, m1 = Medium.take_snapshot t m0 in
  let _s2, m2 = Medium.take_snapshot t m1 in
  let _s3, m3 = Medium.take_snapshot t m2 in
  (* only m0 holds blocks; m1 and m2 are empty RO layers *)
  let has_blocks ~medium ~lo:_ ~hi:_ = medium = m0 in
  Medium.shortcut t ~has_blocks;
  check chain "flattened to <= 3 hops" [ (m3, 0); (m0, 0) ] (Medium.resolve t m3 ~block:0);
  check bool "within the paper's 3-cblock bound" true (Medium.resolve_depth t m3 ~block:0 <= 3)

let test_shortcut_stops_at_data () =
  let t = Medium.create () in
  let m0 = Medium.create_base t ~blocks:10 in
  let _s1, m1 = Medium.take_snapshot t m0 in
  let _s2, m2 = Medium.take_snapshot t m1 in
  (* m1 owns blocks: the chain must keep it *)
  let has_blocks ~medium ~lo:_ ~hi:_ = medium = m0 || medium = m1 in
  Medium.shortcut t ~has_blocks;
  check chain "kept data-bearing layer" [ (m2, 0); (m1, 0); (m0, 0) ]
    (Medium.resolve t m2 ~block:0)

let test_shortcut_idempotent () =
  let t = Medium.create () in
  let m0 = Medium.create_base t ~blocks:10 in
  let _s1, m1 = Medium.take_snapshot t m0 in
  let _s2, _m2 = Medium.take_snapshot t m1 in
  let has_blocks ~medium ~lo:_ ~hi:_ = medium = m0 in
  Medium.shortcut t ~has_blocks;
  let rows1 = Medium.rows t in
  Medium.shortcut t ~has_blocks;
  check bool "idempotent" true (rows1 = Medium.rows t)

(* Figure 6 golden test: rebuild the paper's table structurally.
   The figure's schedule: 12 is the frozen original; 14 a snapshot of 12;
   15 and 18 clones of blocks 2000-2999 of 12; 20 a snapshot of 18; 21 the
   volume medium after that snapshot; 22 the volume medium after a
   snapshot of 21, grown by 1000 fresh blocks. Blocks 0-499 of the volume
   were overwritten while 21 was live; 500-999 were not, so GC shortcuts
   them straight to 12 at offset 2500 — splitting 22's extent into the
   figure's three rows. (The paper's ids have gaps from unrelated
   mediums; we assert structure, not raw ids.) *)
let test_figure6_schedule () =
  let t = Medium.create ~first_id:12 () in
  let m12 = Medium.create_base t ~blocks:4000 in
  check int "id 12" 12 m12;
  let m14, succ12 =
    let snap, succ = Medium.take_snapshot t m12 in
    (snap, succ)
  in
  Medium.drop t succ12;
  let m15 = Medium.clone t m12 ~range:(2000, 2999) () in
  let m18 = Medium.clone t m12 ~range:(2000, 2999) () in
  let m20, m21 =
    let snap, succ = Medium.take_snapshot t m18 in
    (snap, succ)
  in
  let _snap21, m22 =
    let snap, succ = Medium.take_snapshot t m21 in
    (snap, succ)
  in
  Medium.extend t m22 ~blocks:1000;
  (* Structure before GC: 22 resolves through 21 -> 20 -> 18 -> 12. *)
  let chain_to_12 = Medium.resolve t m22 ~block:500 in
  check bool "22 reaches 12's blocks pre-GC" true
    (List.exists (fun (m, b) -> m = m12 && b = 2500) chain_to_12);
  (* Data placement: 12 holds the original blocks; 21 holds overwrites of
     volume blocks 0-499 made while it was live. *)
  let has_blocks ~medium ~lo ~hi =
    (medium = m12) || (medium = m21 && lo <= 499 && hi >= 0)
  in
  Medium.shortcut ~only:[ m22 ] t ~has_blocks;
  (* Figure row "22 | 0:499 | 21 | 0 | RW" (21 itself is not yet
     flattened, so its chain still walks through 18 to 12) *)
  check chain "0:499 goes through 21"
    [ (m22, 100); (m21, 100); (m18, 100); (m12, 2100) ]
    (Medium.resolve t m22 ~block:100);
  (* Figure row "22 | 500:999 | 12 | 2500 | RW" — the direct shortcut *)
  check chain "500:999 shortcuts to 12" [ (m22, 500); (m12, 2500) ]
    (Medium.resolve t m22 ~block:500);
  (* Figure row "22 | 1000:1999 | none | RW" *)
  check chain "1000:1999 is base" [ (m22, 1500) ] (Medium.resolve t m22 ~block:1500);
  (* The extents of 22 now match the figure's three rows exactly. *)
  let rows22 =
    List.filter_map (fun (m, e) -> if m = m22 then Some e else None) (Medium.rows t)
  in
  (match rows22 with
  | [ r1; r2; r3 ] ->
    check int "row1 start" 0 r1.Medium.start_block;
    check int "row1 end" 499 r1.Medium.end_block;
    check bool "row1 -> 21@0" true
      (r1.Medium.target = Medium.Underlying { medium = m21; offset = 0 });
    check int "row2 start" 500 r2.Medium.start_block;
    check int "row2 end" 999 r2.Medium.end_block;
    check bool "row2 -> 12@2500" true
      (r2.Medium.target = Medium.Underlying { medium = m12; offset = 2500 });
    check int "row3 start" 1000 r3.Medium.start_block;
    check int "row3 end" 1999 r3.Medium.end_block;
    check bool "row3 base" true (r3.Medium.target = Medium.Base)
  | rows -> Alcotest.failf "expected 3 rows for medium 22, got %d" (List.length rows));
  (* And the rest of the table: 14 -> 12@0 RO, 15 -> 12@2000 RW,
     18 -> 12@2000 RO, 20 -> 18@0 RO. *)
  let extent_target m =
    match List.filter_map (fun (m', e) -> if m' = m then Some e else None) (Medium.rows t) with
    | [ e ] -> Some (e.Medium.target, e.Medium.status)
    | _ -> None
  in
  check bool "14 row" true
    (extent_target m14 = Some (Medium.Underlying { medium = m12; offset = 0 }, Medium.RO));
  check bool "15 row" true
    (extent_target m15 = Some (Medium.Underlying { medium = m12; offset = 2000 }, Medium.RW));
  check bool "18 row" true
    (extent_target m18 = Some (Medium.Underlying { medium = m12; offset = 2000 }, Medium.RO));
  check bool "20 row" true
    (extent_target m20 = Some (Medium.Underlying { medium = m18; offset = 0 }, Medium.RO))

let prop_resolve_depth_bounded =
  QCheck.Test.make ~name:"resolve terminates and is bounded by medium count" ~count:100
    QCheck.(int_range 1 12)
    (fun levels ->
      let t = Medium.create () in
      let m0 = Medium.create_base t ~blocks:8 in
      let top = ref m0 in
      for _ = 1 to levels do
        let _snap, succ = Medium.take_snapshot t !top in
        top := succ
      done;
      let depth = Medium.resolve_depth t !top ~block:0 in
      depth = levels + 1)

let prop_snapshot_preserves_resolution_target =
  (* After any snapshot tower, block b of the top medium still reaches
     (m0, b) at the bottom. *)
  QCheck.Test.make ~name:"snapshot tower preserves base mapping" ~count:100
    QCheck.(pair (int_range 0 7) (int_range 1 8))
    (fun (block, levels) ->
      let t = Medium.create () in
      let m0 = Medium.create_base t ~blocks:8 in
      let top = ref m0 in
      for _ = 1 to levels do
        let _snap, succ = Medium.take_snapshot t !top in
        top := succ
      done;
      match List.rev (Medium.resolve t !top ~block) with
      | (m, b) :: _ -> m = m0 && b = block
      | [] -> false)

let () =
  Alcotest.run "medium"
    [
      ( "mediums",
        [
          Alcotest.test_case "base" `Quick test_base_medium;
          Alcotest.test_case "snapshot" `Quick test_snapshot_freezes_and_chains;
          Alcotest.test_case "snapshot of RO rejected" `Quick test_snapshot_of_ro_rejected;
          Alcotest.test_case "clone with offset" `Quick test_clone_with_offset;
          Alcotest.test_case "clone requires RO" `Quick test_clone_requires_ro;
          Alcotest.test_case "write target" `Quick test_write_target;
          Alcotest.test_case "extend" `Quick test_extend;
          Alcotest.test_case "drop protects references" `Quick test_drop_protects_references;
          Alcotest.test_case "deep chain" `Quick test_deep_chain_resolution;
          QCheck_alcotest.to_alcotest prop_resolve_depth_bounded;
          QCheck_alcotest.to_alcotest prop_snapshot_preserves_resolution_target;
        ] );
      ( "shortcut",
        [
          Alcotest.test_case "flattens empty intermediates" `Quick
            test_shortcut_flattens_empty_intermediates;
          Alcotest.test_case "stops at data" `Quick test_shortcut_stops_at_data;
          Alcotest.test_case "idempotent" `Quick test_shortcut_idempotent;
        ] );
      ("figure6", [ Alcotest.test_case "paper schedule" `Quick test_figure6_schedule ]);
    ]

(* E14 (§4.3 in-text claim) — secondary cache warming.

   "The primary controller asynchronously warms the cache of the
   secondary, reducing the total amount of I/O required for failover."

   Two identical arrays build the same hot working set; one fails over
   with warming enabled, the other with a cold spare. We compare the
   post-failover latency of re-reading the working set and the drive I/O
   it costs. *)

open Bench_util
module Fa = Purity_core.Flash_array
module Clock = Purity_sim.Clock
module Histogram = Purity_util.Histogram
module Dg = Purity_workload.Datagen

let hot_blocks = 8192

let run_one ~secondary_warming =
  let clock = Clock.create () in
  let config = { (bench_config ()) with Fa.secondary_warming } in
  let a = Fa.create ~config ~clock () in
  ok (Fa.create_volume a "db" ~blocks:(hot_blocks * 2));
  let dg = Dg.create ~seed:141L in
  let rec fill b =
    if b < hot_blocks then begin
      write_ok clock a ~volume:"db" ~block:b (Dg.compressible dg (1024 * 512) ~target_ratio:2.0);
      fill (b + 1024)
    end
  in
  fill 0;
  ignore (await clock (fun k -> Fa.checkpoint a k));
  (* the primary serves the hot set, warming its cache (and, per the
     paper, the secondary's) *)
  let rec touch b =
    if b < hot_blocks then begin
      ignore (await clock (Fa.read a ~volume:"db" ~block:b ~nblocks:64));
      touch (b + 64)
    end
  in
  touch 0;
  Fa.crash a;
  ignore (await clock (fun k -> Fa.failover a k));
  (* post-failover: re-serve the hot set and measure *)
  let hist = Histogram.create () in
  let drive_reads_before =
    Array.fold_left
      (fun acc d -> acc + (Purity_ssd.Drive.stats d).Purity_ssd.Drive.reads)
      0
      (Purity_ssd.Shelf.drives (Fa.shelf a))
  in
  let rec reread b =
    if b < hot_blocks then begin
      let t0 = Clock.now clock in
      (match await clock (Fa.read a ~volume:"db" ~block:b ~nblocks:64) with
      | Ok _ -> Histogram.record hist (Clock.now clock -. t0)
      | Error _ -> ());
      reread (b + 64)
    end
  in
  reread 0;
  let drive_reads_after =
    Array.fold_left
      (fun acc d -> acc + (Purity_ssd.Drive.stats d).Purity_ssd.Drive.reads)
      0
      (Purity_ssd.Shelf.drives (Fa.shelf a))
  in
  (hist, drive_reads_after - drive_reads_before, (Fa.stats a).Fa.cache_hits)

let run () =
  section "E14 / §4.3 — secondary cache warming (ablation)";
  let warm, warm_drive_reads, warm_hits = run_one ~secondary_warming:true in
  let cold, cold_drive_reads, cold_hits = run_one ~secondary_warming:false in
  Printf.printf "  4 MiB hot set, failover, then re-serve the hot set:\n\n";
  Printf.printf "  %-28s %14s %14s\n" "" "warm spare" "cold spare";
  Printf.printf "  %-28s %14.0f %14.0f\n" "post-failover p50 (us)"
    (Histogram.percentile warm 50.0) (Histogram.percentile cold 50.0);
  Printf.printf "  %-28s %14.0f %14.0f\n" "post-failover p99 (us)"
    (Histogram.percentile warm 99.0) (Histogram.percentile cold 99.0);
  Printf.printf "  %-28s %14d %14d\n" "drive reads issued" warm_drive_reads cold_drive_reads;
  Printf.printf "  %-28s %14d %14d\n" "controller cache hits" warm_hits cold_hits;
  Printf.printf
    "\n  Paper: warming reduces the I/O required after failover (it is what\n\
    \  keeps the secondary a fast 'live spare').\n";
  Printf.printf "  Shape check: warm spare issues far fewer drive reads -> %s\n"
    (if warm_drive_reads * 2 < cold_drive_reads then "HOLDS" else "DIVERGES");
  Printf.printf "  Shape check: warm p50 below cold p50 -> %s (%.0f vs %.0f us)\n"
    (if Histogram.percentile warm 50.0 < Histogram.percentile cold 50.0 then "HOLDS"
     else "DIVERGES")
    (Histogram.percentile warm 50.0) (Histogram.percentile cold 50.0)

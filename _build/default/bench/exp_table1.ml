(* E1 — Table 1: Purity vs a disk array on 32 KiB I/O.

   Both systems run against the same simulated clock: the Purity array is
   the full storage engine over the flash shelf; the comparator is the
   disk-array model (spindles + battery-backed write cache). We measure
   IOPS and latency; the $/RU/W rows are spec-sheet constants taken from
   the paper and scaled by our measured IOPS ratios where the paper
   derives them that way. *)

open Bench_util
module Fa = Purity_core.Flash_array
module Wl = Purity_workload.Workload
module Disk = Purity_baseline.Disk_array
module Clock = Purity_sim.Clock
module Histogram = Purity_util.Histogram
module Rng = Purity_util.Rng

let ops = 3000
let concurrency = 32
let io_blocks = 64 (* 32 KiB *)

let run_purity () =
  let clock = Purity_sim.Clock.create () in
  (* media-path comparison: the controller read cache is disabled so the
     latency column measures flash vs spindles, not DRAM *)
  let config = { (bench_config ()) with Fa.read_cache_entries = 0 } in
  let a = Fa.create ~config ~clock () in
  let volumes = [ ("lun0", 16384); ("lun1", 16384) ] in
  Wl.provision a ~volumes;
  (* prefill so reads have something to fetch *)
  let dg = Purity_workload.Datagen.create ~seed:11L in
  List.iter
    (fun (v, size) ->
      let step = 1024 in
      let rec fill b =
        if b < size then begin
          write_ok clock a ~volume:v ~block:b
            (Purity_workload.Datagen.compressible dg (step * 512) ~target_ratio:3.0);
          fill (b + step)
        end
      in
      fill 0)
    volumes;
  let wl = Wl.uniform ~seed:21L ~volumes ~read_fraction:0.7 ~io_blocks () in
  await clock (Wl.run a wl ~ops ~concurrency)

let run_disk () =
  let clock = Clock.create () in
  let d = Disk.create ~clock ~seed:22L () in
  let rng = Rng.create ~seed:23L in
  let start = Clock.now clock in
  let completed = ref 0 and issued = ref 0 in
  let finished = ref None in
  let rec pump () =
    if !issued < ops then begin
      incr issued;
      let k () =
        incr completed;
        if !completed = ops then finished := Some (Clock.now clock -. start) else pump ()
      in
      if Rng.float rng 1.0 < 0.7 then Disk.read d ~bytes:(io_blocks * 512) k
      else Disk.write d ~bytes:(io_blocks * 512) k
    end
  in
  for _ = 1 to concurrency do
    pump ()
  done;
  Clock.run clock;
  let elapsed = Option.get !finished in
  let iops = float_of_int ops /. (elapsed /. 1e6) in
  (iops, Disk.read_lat d)

let run () =
  section "E1 / Table 1 — Purity vs performance disk array (32 KiB I/O, 70/30 r/w)";
  let p = run_purity () in
  let disk_iops, disk_read = run_disk () in
  let p_lat = Histogram.percentile p.Wl.read_lat 50.0 in
  let d_lat = Histogram.percentile disk_read 50.0 in
  let improvement a b = Printf.sprintf "%.2fx" (a /. b) in
  Printf.printf "  (simulated hardware: 11 flash drives vs 120 spindles)\n\n";
  row4 "Metric" "Purity (sim)" "Disk (sim)" "Improvement";
  row4 "Peak IOPS @ 32 KiB"
    (Printf.sprintf "%.0f" p.Wl.iops)
    (Printf.sprintf "%.0f" disk_iops)
    (improvement p.Wl.iops disk_iops);
  row4 "Read latency p50 (us)"
    (Printf.sprintf "%.0f" p_lat)
    (Printf.sprintf "%.0f" d_lat)
    (improvement d_lat p_lat);
  row4 "Read latency p99.9 (us)"
    (Printf.sprintf "%.0f" (Histogram.percentile p.Wl.read_lat 99.9))
    (Printf.sprintf "%.0f" (Histogram.percentile disk_read 99.9))
    (improvement
       (Histogram.percentile disk_read 99.9)
       (Histogram.percentile p.Wl.read_lat 99.9));
  Printf.printf "\n  Paper's Table 1 (spec-sheet rows, for reference):\n";
  row4 "Metric" "Purity" "Disk (VNX)" "Improvement";
  row4 "Peak IOPS @ 32 KiB" "200K" "65K" "3.08x";
  row4 "Latency" "1 ms" "5 ms" "5x";
  row4 "Usable capacity" "40 TB" "25 TB" "1.6x";
  row4 "Rack units" "8" "28" "3.5x";
  row4 "$/GB" "$5" "$18" "3.6x";
  row4 "IOPS/W" "161" "18.6" "8.6x";
  Printf.printf
    "\n  Shape check: flash wins IOPS by >2x and p50 latency by >3x -> %s\n"
    (if p.Wl.iops > 2.0 *. disk_iops && d_lat > 3.0 *. p_lat then "HOLDS" else "DIVERGES")

(* E2 — Table 2: scale-out key-value deployments vs FA-450 consolidation
   ratios (the paper's own analytic estimate, recomputed). *)

open Bench_util
module Scaleout = Purity_baseline.Scaleout

let run () =
  section "E2 / Table 2 — key-value store consolidation ratios";
  let rows = Scaleout.table () in
  Fmt.pr "%a@." Scaleout.pp_table rows;
  Printf.printf
    "  Paper's estimate: 100-250:1 consolidation ratios; measured ratios: %s\n"
    (String.concat ", "
       (List.map (fun r -> Printf.sprintf "%.0f:1" r.Scaleout.nodes_per_array) rows));
  let in_band =
    List.for_all
      (fun r -> r.Scaleout.nodes_per_array >= 75.0 && r.Scaleout.nodes_per_array <= 300.0)
      rows
  in
  Printf.printf "  Shape check: all in the paper's 100-250:1 band (+/- margin) -> %s\n"
    (if in_band then "HOLDS" else "DIVERGES")

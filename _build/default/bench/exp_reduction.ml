(* E8 — §4.7, §5.2-5.3: data reduction by workload class.

   The paper reports 3-8x for relational databases, ~10x for document
   stores, up to 20x for VDI farms, and a 5.4x fleet-wide average. We run
   each generator through the full write path (inline dedup +
   compression), GC to steady state, and report logical:stored ratios. *)

open Bench_util
module Fa = Purity_core.Flash_array
module Dg = Purity_workload.Datagen
module Wl = Purity_workload.Workload

type result = { name : string; reduction : float; dedup_blocks : int; note : string }

(* logical bytes of live data / stored cblock bytes (compression+dedup
   only — excludes parity and allocation slack, like the paper's data-
   reduction number as opposed to thin provisioning). *)
let reduction_of a =
  let s = Fa.stats a in
  if s.Fa.stored_bytes_written = 0 then 1.0
  else float_of_int s.Fa.logical_bytes_written /. float_of_int s.Fa.stored_bytes_written

let run_rdbms () =
  let clock, a = make_array () in
  ok (Fa.create_volume a "oracle" ~blocks:32768);
  let dg = Dg.create ~seed:81L in
  let rec fill b =
    if b < 24576 then begin
      write_ok clock a ~volume:"oracle" ~block:b (Dg.rdbms_page dg (32 * 512));
      fill (b + 32)
    end
  in
  fill 0;
  {
    name = "RDBMS (page data)";
    reduction = reduction_of a;
    dedup_blocks = (Fa.stats a).Fa.dedup_blocks;
    note = "paper: 3-8x";
  }

let run_docstore () =
  let clock, a = make_array () in
  ok (Fa.create_volume a "mongo" ~blocks:32768);
  let dg = Dg.create ~seed:82L in
  let rec fill b =
    if b < 24576 then begin
      write_ok clock a ~volume:"mongo" ~block:b (Dg.document dg (64 * 512));
      fill (b + 64)
    end
  in
  fill 0;
  {
    name = "Document store";
    reduction = reduction_of a;
    dedup_blocks = (Fa.stats a).Fa.dedup_blocks;
    note = "paper: ~10x";
  }

let run_vdi () =
  let clock, a = make_array () in
  let dg = Dg.create ~seed:83L in
  (* 12 desktops provisioned from the same pool of OS content *)
  for vm = 0 to 11 do
    let name = Printf.sprintf "desktop%02d" vm in
    ok (Fa.create_volume a name ~blocks:8192);
    let image = Dg.vm_image dg ~blocks:4096 in
    let rec put b =
      if b < 4096 then begin
        write_ok clock a ~volume:name ~block:b (String.sub image (b * 512) (32 * 512));
        put (b + 32)
      end
    in
    put 0
  done;
  {
    name = "VDI (12 desktops)";
    reduction = reduction_of a;
    dedup_blocks = (Fa.stats a).Fa.dedup_blocks;
    note = "paper: up to 20x";
  }

let run_uniform () =
  let clock, a = make_array () in
  ok (Fa.create_volume a "raw" ~blocks:16384);
  let dg = Dg.create ~seed:84L in
  let rec fill b =
    if b < 12288 then begin
      write_ok clock a ~volume:"raw" ~block:b (Dg.random dg (64 * 512));
      fill (b + 64)
    end
  in
  fill 0;
  {
    name = "Incompressible";
    reduction = reduction_of a;
    dedup_blocks = (Fa.stats a).Fa.dedup_blocks;
    note = "floor: ~1x";
  }

let run () =
  section "E8 — data reduction by workload (inline dedup + compression)";
  let results = [ run_uniform (); run_rdbms (); run_docstore (); run_vdi () ] in
  Printf.printf "  %-22s %12s %16s %16s\n" "workload" "reduction" "dedup blocks" "paper";
  List.iter
    (fun r ->
      Printf.printf "  %-22s %11.1fx %16d %16s\n" r.name r.reduction r.dedup_blocks r.note)
    results;
  let get n = (List.nth results n).reduction in
  let raw = get 0 and rdbms = get 1 and doc = get 2 and vdi = get 3 in
  Printf.printf "\n  Shape checks:\n";
  Printf.printf "    incompressible stays ~1x          -> %s (%.2fx)\n"
    (if raw < 1.2 then "HOLDS" else "DIVERGES")
    raw;
  Printf.printf "    RDBMS lands in 3-8x               -> %s (%.1fx)\n"
    (if rdbms >= 3.0 && rdbms <= 8.0 then "HOLDS" else "DIVERGES")
    rdbms;
  Printf.printf "    docstore beats RDBMS, ~10x        -> %s (%.1fx)\n"
    (if doc > rdbms && doc >= 6.0 then "HOLDS" else "DIVERGES")
    doc;
  Printf.printf "    VDI is the best, >10x             -> %s (%.1fx)\n"
    (if vdi > doc && vdi >= 10.0 then "HOLDS" else "DIVERGES")
    vdi;
  let avg = (raw +. rdbms +. doc +. vdi) /. 4.0 in
  Printf.printf "    mixed-fleet average (paper: 5.4x) -> %.1fx across these four\n" avg

(* E6 — §4.4: read-around-write scheduling and its costs.

   Mixed 32 KiB workload; with the scheduler ON, reads landing on drives
   that are programming segios are served by Reed-Solomon reconstruction
   from idle drives, cutting the read tail; the cost is extra peer reads
   (paper: <= 7 x 2/11 ~ 1.3x for write-heavy workloads). The ablation
   runs the identical workload with the policy off. *)

open Bench_util
module Fa = Purity_core.Flash_array
module Wl = Purity_workload.Workload
module Io = Purity_sched.Io
module Histogram = Purity_util.Histogram
module State = Purity_core.State

let run_one ?(read_fraction = 0.5) ?(ops = 2500) ?(concurrency = 24) ~read_around_write () =
  let clock, a = make_array ~read_around_write () in
  let volumes = [ ("lun", 32768) ] in
  Wl.provision a ~volumes;
  let dg = Purity_workload.Datagen.create ~seed:61L in
  let rec fill b =
    if b < 32768 then begin
      write_ok clock a ~volume:"lun" ~block:b
        (Purity_workload.Datagen.compressible dg (2048 * 512) ~target_ratio:2.0);
      fill (b + 2048)
    end
  in
  fill 0;
  let wl = Wl.uniform ~seed:62L ~volumes ~read_fraction ~io_blocks:64 () in
  let r = await clock (Wl.run a wl ~ops ~concurrency) in
  let io = Io.stats (Fa.state a).State.io in
  (r, io)

let run () =
  section "E6 / §4.4 — tail latency: read-around-write scheduling (ablation)";
  (* stress mix: 50% writes keep segios flushing while reads arrive *)
  let on, io_on = run_one ~read_around_write:true () in
  let off, io_off = run_one ~read_around_write:false () in
  (* typical mix: the paper's "typical installations" are read-mostly *)
  (* typical installations run well below saturation: a moderate queue *)
  let typ, _ = run_one ~read_fraction:0.9 ~concurrency:8 ~read_around_write:true () in
  Printf.printf "  32 KiB ops, 24 outstanding; identical op streams per pair.\n\n";
  Printf.printf "  stress mix (50%% writes):\n";
  pp_lat "scheduler ON:  reads" on.Wl.read_lat;
  pp_lat "scheduler OFF: reads" off.Wl.read_lat;
  Printf.printf "  typical mix (10%% writes, moderate queue depth):\n";
  pp_lat "scheduler ON:  reads" typ.Wl.read_lat;
  let frac stats =
    if stats.Io.chunk_reads = 0 then 0.0
    else float_of_int stats.Io.reconstruct_reads /. float_of_int stats.Io.chunk_reads
  in
  (* the paper's accounting: each dodged read costs k=7 peer reads, so the
     total read cost rises by 7 x (fraction reconstructed) ~ 7 x 2/11 = 1.3 *)
  let cost stats = 7.0 *. frac stats in
  Printf.printf
    "\n  reconstruct-reads ON:  %d of %d chunks (fraction %.2f; 7 x fraction = %.2fx, paper ~1.3x)\n"
    io_on.Io.reconstruct_reads io_on.Io.chunk_reads (frac io_on) (cost io_on);
  Printf.printf "  reconstruct-reads OFF: %d of %d chunks\n" io_off.Io.reconstruct_reads
    io_off.Io.chunk_reads;
  let p999_on = Histogram.percentile on.Wl.read_lat 99.9 in
  let p999_off = Histogram.percentile off.Wl.read_lat 99.9 in
  let p999_typ = Histogram.percentile typ.Wl.read_lat 99.9 in
  Printf.printf
    "\n  Paper: reads dodge the <=2 drives writing per group (cost 7 x 2/11 ~ 1.3x\n\
    \  for write-heavy workloads); typical installations see p99.9 < 1 ms.\n";
  Printf.printf "  Shape check: p99.9 ON (%.0f us) < p99.9 OFF (%.0f us) -> %s\n" p999_on
    p999_off
    (if p999_on < p999_off then "HOLDS" else "DIVERGES");
  Printf.printf "  Shape check: reconstruct cost 7 x fraction in [0.9, 1.8] -> %s (%.2fx)\n"
    (if cost io_on >= 0.9 && cost io_on <= 1.8 then "HOLDS" else "DIVERGES")
    (cost io_on);
  Printf.printf "  Shape check: typical-mix p99.9 under 1 ms -> %s (%.0f us)\n"
    (if p999_typ < 1000.0 then "HOLDS" else "DIVERGES")
    p999_typ

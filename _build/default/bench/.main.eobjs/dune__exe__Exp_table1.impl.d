bench/exp_table1.ml: Bench_util List Option Printf Purity_baseline Purity_core Purity_sim Purity_util Purity_workload

bench/exp_degraded.ml: Bench_util List Printf Purity_core Purity_sched Purity_util Purity_workload String

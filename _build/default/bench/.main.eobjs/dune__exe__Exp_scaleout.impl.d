bench/exp_scaleout.ml: Bench_util Fmt List Printf Purity_baseline String

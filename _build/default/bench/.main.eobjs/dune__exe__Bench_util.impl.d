bench/bench_util.ml: Printf Purity_core Purity_sim Purity_ssd Purity_util

bench/exp_replication.ml: Bench_util List Option Printf Purity_core Purity_replication Purity_sim Purity_util Purity_workload

bench/exp_elision.ml: Bench_util Int64 Printf Purity_pyramid String

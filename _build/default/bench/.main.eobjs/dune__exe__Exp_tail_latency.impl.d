bench/exp_tail_latency.ml: Bench_util Printf Purity_core Purity_sched Purity_util Purity_workload

bench/main.mli:

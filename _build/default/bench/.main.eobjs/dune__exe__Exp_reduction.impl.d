bench/exp_reduction.ml: Bench_util List Printf Purity_core Purity_workload String

bench/exp_metadata.ml: Array Bench_util Int64 List Printf Purity_encoding Purity_util

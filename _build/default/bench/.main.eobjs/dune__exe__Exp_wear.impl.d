bench/exp_wear.ml: Array Bench_util Printf Purity_core Purity_sim Purity_ssd Purity_workload

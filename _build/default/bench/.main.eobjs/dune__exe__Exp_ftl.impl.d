bench/exp_ftl.ml: Bench_util Printf Purity_ssd Purity_util

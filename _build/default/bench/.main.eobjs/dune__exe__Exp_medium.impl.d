bench/exp_medium.ml: Bench_util Fmt List Printf Purity_medium

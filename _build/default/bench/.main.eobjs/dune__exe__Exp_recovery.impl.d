bench/exp_recovery.ml: Bench_util List Printf Purity_core Purity_workload

bench/exp_rollback.ml: Bench_util List Printf Purity_baseline

bench/exp_five_minute.ml: Bench_util List Option Printf Purity_baseline

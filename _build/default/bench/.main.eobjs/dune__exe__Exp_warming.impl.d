bench/exp_warming.ml: Array Bench_util Printf Purity_core Purity_sim Purity_ssd Purity_util Purity_workload

(* E7 — §1/§2.2: throughput through drive failures.

   "A single Purity appliance can provide over 7 GiB/s ... even through
   multiple device failures." We pull 0, 1 and 2 drives and measure
   random 32 KiB read throughput; the shape claim is that degraded reads
   cost only the reconstruction amplification, not availability. *)

open Bench_util
module Fa = Purity_core.Flash_array
module Wl = Purity_workload.Workload
module Io = Purity_sched.Io
module State = Purity_core.State

let run_with_failures failures =
  let clock, a = make_array () in
  let volumes = [ ("lun", 32768) ] in
  Wl.provision a ~volumes;
  let dg = Purity_workload.Datagen.create ~seed:71L in
  let rec fill b =
    if b < 32768 then begin
      write_ok clock a ~volume:"lun" ~block:b
        (Purity_workload.Datagen.compressible dg (2048 * 512) ~target_ratio:2.0);
      fill (b + 2048)
    end
  in
  fill 0;
  ignore (await clock (fun k -> Fa.flush a (fun () -> k (Ok ()))));
  List.iter (Fa.pull_drive a) failures;
  let wl = Wl.uniform ~seed:72L ~volumes ~read_fraction:1.0 ~io_blocks:64 () in
  let r = await clock (Wl.run a wl ~ops:2500 ~concurrency:32) in
  let io = Io.stats (Fa.state a).State.io in
  (r, io)

let run () =
  section "E7 — random-read throughput through 0 / 1 / 2 drive failures";
  Printf.printf "  %-16s %12s %14s %10s %14s %14s\n" "failed drives" "IOPS" "MB/s (sim)"
    "errors" "p99.9 (us)" "reconstructs";
  let results =
    List.map
      (fun failures ->
        let r, io = run_with_failures failures in
        Printf.printf "  %-16s %12.0f %14.1f %10d %14.0f %14d\n"
          (match failures with
          | [] -> "none"
          | l -> String.concat "," (List.map string_of_int l))
          r.Wl.iops r.Wl.throughput_mb_s r.Wl.errors
          (Purity_util.Histogram.percentile r.Wl.read_lat 99.9)
          io.Io.reconstruct_reads;
        r)
      [ []; [ 3 ]; [ 3; 8 ] ]
  in
  match results with
  | [ healthy; _one; two ] ->
    Printf.printf
      "\n  Paper: full service through two device failures (they encourage\n\
      \  customers to pull drives during evaluations).\n";
    Printf.printf "  Shape check: zero errors with two drives out -> %s\n"
      (if two.Wl.errors = 0 then "HOLDS" else "DIVERGES");
    (* expected analytically: 2/11 of reads amplify 7x over the 9
       surviving drives -> roughly half of healthy throughput *)
    Printf.printf "  Shape check: degraded throughput >= 40%% of healthy -> %s (%.0f%%)\n"
      (if two.Wl.iops >= 0.4 *. healthy.Wl.iops then "HOLDS" else "DIVERGES")
      (100.0 *. two.Wl.iops /. healthy.Wl.iops)
  | _ -> ()

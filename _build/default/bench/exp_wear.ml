(* E12 — §5.1: running past rated P/E with scrubbing.

   "Periodically scrubbing and rewriting data ensures that worn-out flash
   is rewritten more frequently than the P/E calculations assumed,
   allowing arrays to run well past rated wear out."

   Two identical arrays are worn to their P/E rating; simulated months
   pass in steps. One array scrubs each step, the other never does. We
   read the full data set after each step and count media errors the
   read path could not hide. *)

open Bench_util
module Fa = Purity_core.Flash_array
module Drive = Purity_ssd.Drive
module Clock = Purity_sim.Clock
module Dg = Purity_workload.Datagen

let data_blocks = 8192
let steps = 12
let step_us = 3.0e10 (* ~8 simulated hours per scrub cycle against 1-year rated retention *)

let make_worn () =
  let clock = Clock.create () in
  (* no controller read cache: this experiment must observe the media *)
  let config = { (bench_config ()) with Fa.read_cache_entries = 0 } in
  let a = Fa.create ~config ~clock () in
  ok (Fa.create_volume a "v" ~blocks:(data_blocks * 2));
  let dg = Dg.create ~seed:121L in
  let rec fill b =
    if b < data_blocks then begin
      write_ok clock a ~volume:"v" ~block:b (Dg.compressible dg (1024 * 512) ~target_ratio:2.0);
      fill (b + 1024)
    end
  in
  fill 0;
  ignore (await clock (fun k -> Fa.flush a (fun () -> k (Ok ()))));
  Array.iter (fun d -> Drive.wear_to d ~pe:3000) (Purity_ssd.Shelf.drives (Fa.shelf a));
  (clock, a)

let failed_reads clock a =
  let errors = ref 0 in
  let rec go b =
    if b < data_blocks then begin
      (match await clock (Fa.read a ~volume:"v" ~block:b ~nblocks:512) with
      | Ok _ -> ()
      | Error _ -> incr errors);
      go (b + 512)
    end
  in
  go 0;
  !errors

let run () =
  section "E12 / §5.1 — wear-out, retention and scrubbing";
  let clock_s, scrubbed = make_worn () in
  let clock_n, neglected = make_worn () in
  Printf.printf
    "  arrays worn to rated P/E (3000); each step ages the flash, then one\n\
    \  array scrubs. 16 full-volume reads per step; errors are reads the\n\
    \  RAID could not reconstruct.\n\n";
  Printf.printf "  %-8s %22s %26s %22s\n" "step" "scrubbed: read errors" "(segments relocated)"
    "unscrubbed: errors";
  let total_s = ref 0 and total_n = ref 0 in
  for step = 1 to steps do
    Clock.advance clock_s step_us;
    Clock.advance clock_n step_us;
    let r = await clock_s (fun k -> Fa.scrub scrubbed (fun r -> k r)) in
    let es = failed_reads clock_s scrubbed in
    let en = failed_reads clock_n neglected in
    total_s := !total_s + es;
    total_n := !total_n + en;
    Printf.printf "  %-8d %22d %26d %22d\n" step es r.Purity_core.Scrub.segments_relocated en
  done;
  Printf.printf "\n  totals: scrubbed=%d unscrubbed=%d\n" !total_s !total_n;
  Printf.printf
    "\n  Paper: scrubbing lets worn arrays keep serving (they built an array\n\
    \  from worn-out flash and saw no application-level errors).\n";
  Printf.printf "  Shape check: scrubbed array has no unrecoverable reads -> %s\n"
    (if !total_s = 0 then "HOLDS" else "DIVERGES");
  Printf.printf "  Shape check: neglected array eventually loses data -> %s\n"
    (if !total_n > !total_s then "HOLDS" else "DIVERGES")

(* E9 — §4.10: elision vs tombstones.

   Dropping a medium under elision is ONE retraction record and the very
   next merge reclaims every matching fact; under tombstones it is one
   record per key and space returns only when the tombstones sink to the
   bottom level. We also verify the elide table's range encoding stays
   bounded as thousands of dense ids are retracted. *)

open Bench_util
module Pyramid = Purity_pyramid.Pyramid
module Fact = Purity_pyramid.Fact

let mediums = 64
let blocks_per_medium = 256

let key m b = Printf.sprintf "%04d:%06d" m b

let medium_of_fact (f : Fact.t) = int_of_string (String.sub f.Fact.key 0 4)

let load pyr =
  let seq = ref 0L in
  let next () =
    seq := Int64.add !seq 1L;
    !seq
  in
  for m = 0 to mediums - 1 do
    for b = 0 to blocks_per_medium - 1 do
      Pyramid.insert pyr ~seq:(next ()) ~key:(key m b) ~value:"ref"
    done;
    (* one patch per medium: a many-levelled pyramid *)
    Pyramid.flush pyr
  done;
  next

let run () =
  section "E9 / §4.10 — elision vs tombstones (drop half the mediums)";
  let total = mediums * blocks_per_medium in
  (* --- elision --- *)
  let el = Pyramid.create ~policy:(Pyramid.Elide medium_of_fact) ~name:"elide" () in
  let next = load el in
  let facts0 = Pyramid.fact_count el in
  Pyramid.elide_range el ~seq:(next ()) ~lo:0 ~hi:(mediums / 2 - 1);
  let elide_delete_records = 1 in
  let elide_after_insert = Pyramid.fact_count el in
  while Pyramid.merge_step el do () done;
  let elide_after_merges = Pyramid.fact_count el in
  Pyramid.flatten el;
  let elide_final = Pyramid.fact_count el in
  (* --- tombstones --- *)
  let tb = Pyramid.create ~policy:Pyramid.Tombstones ~name:"tomb" () in
  let next = load tb in
  Pyramid.flush tb;
  for m = 0 to (mediums / 2) - 1 do
    for b = 0 to blocks_per_medium - 1 do
      Pyramid.delete tb ~seq:(next ()) ~key:(key m b)
    done
  done;
  Pyramid.flush tb;
  let tomb_delete_records = mediums / 2 * blocks_per_medium in
  let tomb_after_insert = Pyramid.fact_count tb in
  while Pyramid.merge_step tb do () done;
  let tomb_after_merges = Pyramid.fact_count tb in
  Pyramid.flatten tb;
  let tomb_final = Pyramid.fact_count tb in
  Printf.printf "  %d facts across %d mediums; dropping %d mediums (%d facts)\n\n" total
    mediums (mediums / 2) (total / 2);
  Printf.printf "  %-34s %14s %14s\n" "" "elision" "tombstones";
  Printf.printf "  %-34s %14d %14d\n" "retraction records written" elide_delete_records
    tomb_delete_records;
  Printf.printf "  %-34s %14d %14d\n" "stored facts before deletion" facts0 facts0;
  Printf.printf "  %-34s %14d %14d\n" "stored facts after deletion" elide_after_insert
    tomb_after_insert;
  Printf.printf "  %-34s %14d %14d\n" "after merge steps (no flatten)" elide_after_merges
    tomb_after_merges;
  Printf.printf "  %-34s %14d %14d\n" "after full flatten" elide_final tomb_final;
  (* elide-table boundedness: retract thousands of dense ids *)
  let el2 = Pyramid.create ~policy:(Pyramid.Elide medium_of_fact) ~name:"el2" () in
  let seq = ref 0L in
  for m = 0 to 4999 do
    seq := Int64.add !seq 1L;
    Pyramid.elide_id el2 ~seq:!seq m
  done;
  Printf.printf "\n  5000 dense elide ids collapse to %d stored range(s)\n"
    (Pyramid.elide_range_count el2);
  Printf.printf
    "\n  Paper: elision reclaims immediately during merges, tombstones only at\n\
    \  the bottom; elide tables collapse to ranges and never leak.\n";
  Printf.printf "  Shape check: 1 record vs %d -> %s\n" tomb_delete_records
    (if elide_delete_records = 1 then "HOLDS" else "DIVERGES");
  Printf.printf
    "  Shape check: merges alone reclaim under elision, not under tombstones -> %s\n"
    (if elide_after_merges <= facts0 / 2 && tomb_after_merges >= facts0 then "HOLDS"
     else "DIVERGES");
  Printf.printf "  Shape check: dense elide ids collapse to one range -> %s\n"
    (if Pyramid.elide_range_count el2 = 1 then "HOLDS" else "DIVERGES")

(* E5 — Figure 7: relative cost of storing data vs access frequency for
   Purity at 1x/4x/10x reduction, hard disk, and ECC DIMM, plus the
   derived rules of thumb. *)

open Bench_util
module Fm = Purity_baseline.Five_minute

let pp_interval s =
  if s >= 31536000.0 then "1yr"
  else if s >= 2419200.0 then "4w"
  else if s >= 604800.0 then "1w"
  else if s >= 86400.0 then "1d"
  else if s >= 3600.0 then "1h"
  else if s >= 60.0 then Printf.sprintf "%.0fm" (s /. 60.0)
  else Printf.sprintf "%.0fs" s

let run () =
  section "E5 / Figure 7 — the five-minute rule with data reduction";
  let series = Fm.figure7_series () in
  let intervals = List.map fst (snd (List.hd series)) in
  Printf.printf "  %-18s" "relative cost";
  List.iter (fun s -> Printf.printf "%8s" (pp_interval s)) intervals;
  Printf.printf "\n";
  List.iter
    (fun (name, points) ->
      Printf.printf "  %-18s" name;
      List.iter
        (fun (_, c) ->
          if c >= 100.0 then Printf.printf "%8.0f" c
          else if c >= 1.0 then Printf.printf "%8.1f" c
          else Printf.printf "%8.2f" c)
        points;
      Printf.printf "\n")
    series;
  let obj = 55 * 1024 in
  let cross r =
    match Fm.crossover_interval_s (Fm.purity ~reduction:r) ~baseline:Fm.ecc_dimm ~object_bytes:obj with
    | Some s -> pp_interval s
    | None -> "never"
  in
  Printf.printf "\n  Break-even with RAM (55 KiB objects):\n";
  Printf.printf "    no reduction : %s\n" (cross 1.0);
  Printf.printf "    4x (RDBMS)   : %s\n" (cross 4.0);
  Printf.printf "    10x (MongoDB): %s\n" (cross 10.0);
  (match
     Fm.crossover_interval_s Fm.hard_disk ~baseline:Fm.ecc_dimm ~object_bytes:obj
   with
  | Some s -> Printf.printf "    hard disk    : %s\n" (pp_interval s)
  | None -> Printf.printf "    hard disk    : never\n");
  Printf.printf
    "\n  Paper's rules of thumb: performance disk is dead; with data reduction,\n\
    \  never cache data accessed less often than ~every half hour (10-minute\n\
    \  rule for 4x-reduced 'important' data).\n";
  let c10 =
    Option.value ~default:infinity
      (Fm.crossover_interval_s (Fm.purity ~reduction:10.0) ~baseline:Fm.ecc_dimm
         ~object_bytes:obj)
  in
  Printf.printf "  Shape check: 10x-reduced flash beats RAM within 30 minutes -> %s\n"
    (if c10 <= 1800.0 then "HOLDS" else "DIVERGES")

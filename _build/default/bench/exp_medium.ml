(* E4 — Figure 6: the medium table after the paper's snapshot/clone
   schedule, including the GC shortcut that lets medium 22 refer directly
   to medium 12. Prints the resulting table in the figure's layout and
   checks the rows structurally. *)

open Bench_util
module Medium = Purity_medium.Medium

let run () =
  section "E4 / Figure 6 — medium table after snapshots, clones and GC shortcut";
  let t = Medium.create ~first_id:12 () in
  let m12 = Medium.create_base t ~blocks:4000 in
  let m14, succ12 = Medium.take_snapshot t m12 in
  Medium.drop t succ12;
  let m15 = Medium.clone t m12 ~range:(2000, 2999) () in
  let m18 = Medium.clone t m12 ~range:(2000, 2999) () in
  let m20, m21 = Medium.take_snapshot t m18 in
  let _snap21, m22 = Medium.take_snapshot t m21 in
  Medium.extend t m22 ~blocks:1000;
  (* data placement: 12 holds the original blocks; 21 holds overwrites of
     volume blocks 0-499 made while it was the live medium *)
  let has_blocks ~medium ~lo ~hi = medium = m12 || (medium = m21 && lo <= 499 && hi >= 0) in
  Medium.shortcut ~only:[ m22 ] t ~has_blocks;
  Fmt.pr "%a@." Medium.pp_table t;
  Printf.printf "  (ids %d=12, %d=14, %d=15, %d=18, %d=20, %d=21, %d=22 in the figure)\n" m12
    m14 m15 m18 m20 m21 m22;
  let rows22 =
    List.filter_map (fun (m, e) -> if m = m22 then Some e else None) (Medium.rows t)
  in
  let matches =
    match rows22 with
    | [ r1; r2; r3 ] ->
      r1.Medium.start_block = 0 && r1.Medium.end_block = 499
      && r1.Medium.target = Medium.Underlying { medium = m21; offset = 0 }
      && r2.Medium.start_block = 500 && r2.Medium.end_block = 999
      && r2.Medium.target = Medium.Underlying { medium = m12; offset = 2500 }
      && r3.Medium.start_block = 1000 && r3.Medium.end_block = 1999
      && r3.Medium.target = Medium.Base
    | _ -> false
  in
  Printf.printf
    "  Figure 6 rows for the live medium (0:499 -> 21@0 | 500:999 -> 12@2500 | 1000:1999 -> none): %s\n"
    (if matches then "REPRODUCED" else "DIVERGES");
  Printf.printf "  Lookup depth for block 500 after the shortcut: %d (paper: <= 3 cblocks)\n"
    (Medium.resolve_depth t m22 ~block:500)

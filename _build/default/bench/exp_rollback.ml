(* E15 (§5.2.1 in-text claim) — transaction rollback rates vs storage
   latency. The paper argues rollback rates fall super-linearly with
   latency, so a 10x latency improvement cuts rollbacks by "more than
   10x"; this prints the classic analytic model with our measured
   latencies plugged in. *)

open Bench_util
module Rb = Purity_baseline.Rollback

let run () =
  section "E15 / §5.2.1 — transaction rollback rates vs storage latency";
  let p = Rb.default_params in
  Printf.printf
    "  model: %.0f TPS, %.0f locks/txn over %.0e objects, %.1f ms CPU + %.0f I/Os per txn\n\n"
    p.Rb.tps p.Rb.locks_per_txn p.Rb.db_locks (p.Rb.think_s *. 1000.0) p.Rb.ios_per_txn;
  Printf.printf "  %-24s %18s\n" "storage latency" "rollback probability";
  List.iter
    (fun (s, prob) -> Printf.printf "  %-24s %17.4f%%\n" (human_us (s *. 1e6)) (100.0 *. prob))
    (Rb.series p);
  (* the paper's comparison: ~5 ms disk vs ~0.5 ms flash *)
  let imp = Rb.improvement p ~disk_latency_s:0.005 ~flash_latency_s:0.0005 in
  Printf.printf "\n  disk (5 ms) vs Purity (0.5 ms): rollback rate falls %.1fx\n" imp;
  Printf.printf
    "\n  Paper: \"Purity decreases request latencies by an order of magnitude,\n\
    \  potentially reducing rollback rates by more than 10x\" — and notes that\n\
    \  customers underestimate the speedup: a database at 60%% CPU / 40%% I/O\n\
    \  wait often gains ~10x, not the naive 1.67x, because lower rollback\n\
    \  rates compound with the latency win.\n";
  Printf.printf "  Shape check: rollback improvement >= 10x for 10x latency -> %s (%.1fx)\n"
    (if imp >= 10.0 then "HOLDS" else "DIVERGES")
    imp

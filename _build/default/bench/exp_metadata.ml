(* E10 — §4.9: metadata page compression.

   The base/offset dictionary encoding packs every tuple into the same
   number of bits and scans pages for a value without decompressing. We
   encode realistic metadata distributions (block-index and segment-table
   shapes) and report bits/tuple against plain 64-bit fields, then check
   the compressed scan returns exactly the naive scan's answer. *)

open Bench_util
module Tp = Purity_encoding.Tuple_page
module Rng = Purity_util.Rng

let block_index_tuples rng n =
  (* (medium, block, segment, offset): few mediums, clustered segments *)
  List.init n (fun i ->
      [|
        Int64.of_int (3 + Rng.int rng 6);
        Int64.of_int i;
        Int64.of_int (1000 + Rng.int rng 40);
        Int64.of_int (Rng.int rng 64 * 32768);
      |])

let segment_table_tuples rng n =
  (* (segment, payload_len, log_len, seq_lo): payload mostly full *)
  List.init n (fun i ->
      [|
        Int64.of_int (5000 + i);
        Int64.of_int (1_835_008 - Rng.int rng 3 * 4096);
        Int64.of_int (Rng.int rng 30_000);
        Int64.of_int (900_000 + (i * 210) + Rng.int rng 50);
      |])

let report name tuples =
  let arity = Array.length (List.hd tuples) in
  let n = List.length tuples in
  let page = Tp.encode ~arity tuples in
  let plain = Tp.plain_size_bytes ~arity ~count:n in
  let packed = Tp.size_bytes page in
  Printf.printf "  %-22s %6d tuples  %3d bits/tuple  %8s vs %8s plain  (%.1fx)\n" name n
    (Tp.bits_per_tuple page) (human_bytes packed) (human_bytes plain)
    (float_of_int plain /. float_of_int packed);
  page

let run () =
  section "E10 / §4.9 — metadata page compression & scan-without-decompress";
  let rng = Rng.create ~seed:101L in
  let bi = block_index_tuples rng 4000 in
  let st = segment_table_tuples rng 4000 in
  let p1 = report "block index" bi in
  let p2 = report "segment table" st in
  (* constant-field freebie *)
  let const = List.init 4000 (fun i -> [| Int64.of_int i; 42L; 42L; 42L |]) in
  let p3 = report "3 constant fields" const in
  ignore p3;
  (* scan equivalence over many probes *)
  let agree = ref true in
  for _ = 1 to 200 do
    let v = Int64.of_int (3 + Rng.int rng 6) in
    if Tp.scan p1 ~field:0 ~value:v <> Tp.scan_naive p1 ~field:0 ~value:v then agree := false;
    let s = Int64.of_int (5000 + Rng.int rng 4000) in
    if Tp.scan p2 ~field:0 ~value:s <> Tp.scan_naive p2 ~field:0 ~value:s then agree := false
  done;
  Printf.printf "\n  compressed scan == decompress-and-scan on 400 probes: %s\n"
    (if !agree then "HOLDS" else "DIVERGES");
  Printf.printf
    "  Paper: same-valued extra fields take no space; pages scan as bit\n\
    \  streams without decompression. (CPU cost: see the micro suite.)\n"

(* E3 — Figure 5 / §4.3: controller failover recovery time, full
   segment-header scan vs frontier-set scan, across array fill levels.

   The paper: the full scan is linear in array capacity (12 s on their
   hardware) and the frontier set cuts it to 0.1 s, keeping failover well
   under the 30 s client timeout. We sweep the amount of data on the
   array and measure both modes' simulated recovery times. *)

open Bench_util
module Fa = Purity_core.Flash_array
module Recovery = Purity_core.Recovery
module Dg = Purity_workload.Datagen

let run_at ~num_aus ~data_blocks =
  let clock, a = make_array ~num_aus () in
  ok (Fa.create_volume a "db" ~blocks:(data_blocks * 2));
  let dg = Dg.create ~seed:31L in
  let step = 2048 in
  let rec fill b =
    if b < data_blocks then begin
      write_ok clock a ~volume:"db" ~block:b
        (Dg.compressible dg (min step (data_blocks - b) * 512) ~target_ratio:2.0);
      fill (b + step)
    end
  in
  fill 0;
  ignore (await clock (fun k -> Fa.checkpoint a k));
  (* a little post-checkpoint activity so recovery has real work *)
  write_ok clock a ~volume:"db" ~block:0 (Dg.compressible dg (64 * 512) ~target_ratio:2.0);
  Fa.crash a;
  let frontier = await clock (fun k -> Fa.failover ~mode:Recovery.Frontier_scan a k) in
  Fa.crash a;
  let full = await clock (fun k -> Fa.failover ~mode:Recovery.Full_scan a k) in
  (frontier, full)

let run () =
  section "E3 / Figure 5 — failover recovery: full header scan vs frontier set";
  Printf.printf
    "  (fixed 8 MiB of recent data; growing raw capacity, as the paper's scan\n    \   cost is linear in array size, not in data written since checkpoint)\n\n";
  Printf.printf "  %-14s %-12s %16s %14s %16s %14s %8s\n" "raw capacity" "phys AUs"
    "full scan" "(headers)" "frontier scan" "(headers)" "speedup";
  let last_ratio = ref 0.0 in
  List.iter
    (fun num_aus ->
      let frontier, full = run_at ~num_aus ~data_blocks:16384 in
      let ratio = full.Recovery.duration_us /. frontier.Recovery.duration_us in
      last_ratio := ratio;
      Printf.printf "  %-14s %-12d %16s %14d %16s %14d %7.1fx\n"
        (human_bytes (num_aus * 11 * (4096 + (8 * 32768))))
        (num_aus * 11) (human_us full.Recovery.duration_us) full.Recovery.headers_scanned
        (human_us frontier.Recovery.duration_us)
        frontier.Recovery.headers_scanned ratio)
    [ 64; 128; 256; 512; 1024; 2048 ];
  Printf.printf
    "\n  Paper: 12 s -> 0.1 s (120x) at production scale; full scan grows with\n\
    \  capacity while the frontier scan stays flat.\n";
  Printf.printf "  Shape check: frontier scan >10x faster at the largest size -> %s\n"
    (if !last_ratio > 10.0 then "HOLDS" else "DIVERGES")

(* Disjoint inclusive ranges in a map keyed by range start. Invariant: for
   consecutive bindings (lo1, hi1) (lo2, hi2): hi1 + 1 < lo2 (gaps of at
   least one id, else they would have merged). *)

module M = Map.Make (Int)

type t = int M.t (* lo -> hi *)

let empty = M.empty
let is_empty = M.is_empty

let add_range t ~lo ~hi =
  if lo > hi then invalid_arg "Ranges.add_range: lo > hi";
  (* Find all ranges overlapping or adjacent to [lo-1, hi+1] and coalesce. *)
  let lo' = ref lo and hi' = ref hi in
  (* The candidate merge partners are: the last range starting <= hi+1 and
     everything from there back while they touch. Walk via split. *)
  let left, mid, right = M.split lo t in
  (* check the predecessor in [left] *)
  let left =
    match M.max_binding_opt left with
    | Some (plo, phi) when phi >= lo - 1 ->
      lo' := min !lo' plo;
      hi' := max !hi' phi;
      M.remove plo left
    | _ -> left
  in
  (match mid with
  | Some phi ->
    hi' := max !hi' phi
  | None -> ());
  (* absorb successors that start within hi'+1 *)
  let right = ref right in
  let continue = ref true in
  while !continue do
    match M.min_binding_opt !right with
    | Some (plo, phi) when plo <= !hi' + 1 ->
      hi' := max !hi' phi;
      right := M.remove plo !right
    | _ -> continue := false
  done;
  let merged = M.union (fun _ a _ -> Some a) left !right in
  M.add !lo' !hi' merged

let add t v = add_range t ~lo:v ~hi:v

let mem t v =
  match M.find_last_opt (fun lo -> lo <= v) t with
  | Some (_, hi) -> v <= hi
  | None -> false

let cardinal t = M.fold (fun lo hi acc -> acc + (hi - lo + 1)) t 0
let range_count t = M.cardinal t
let to_list t = M.bindings t
let of_list l = List.fold_left (fun acc (lo, hi) -> add_range acc ~lo ~hi) empty l
let union a b = M.fold (fun lo hi acc -> add_range acc ~lo ~hi) a b
let fold f t init = M.fold (fun lo hi acc -> f ~lo ~hi acc) t init

let encode t =
  let buf = Buffer.create 32 in
  Purity_util.Varint.write buf (M.cardinal t);
  let prev = ref 0 in
  M.iter
    (fun lo hi ->
      Purity_util.Varint.write buf (lo - !prev);
      Purity_util.Varint.write buf (hi - lo);
      prev := hi)
    t;
  Buffer.contents buf

let decode s =
  let buf = Bytes.unsafe_of_string s in
  let count, pos = Purity_util.Varint.read buf ~pos:0 in
  let t = ref empty in
  let prev = ref 0 in
  let p = ref pos in
  for _ = 1 to count do
    let dlo, p1 = Purity_util.Varint.read buf ~pos:!p in
    let dlen, p2 = Purity_util.Varint.read buf ~pos:p1 in
    let lo = !prev + dlo in
    let hi = lo + dlen in
    t := add_range !t ~lo ~hi;
    prev := hi;
    p := p2
  done;
  !t

module Bitio = Purity_util.Bitio
module Varint = Purity_util.Varint

let max_value_bits = 57 (* fields must fit one Bitio read *)

type field_dict = {
  bases : int array; (* sorted ascending *)
  x_bits : int; (* ceil(lg B); 0 when B = 1 *)
  w : int; (* offset width *)
}

type t = {
  arity : int;
  count : int;
  dicts : field_dict array;
  field_offsets : int array; (* bit offset of each field within a tuple *)
  tuple_bits : int;
  body : Bitio.Reader.t;
  header : string; (* serialised header, cached for [serialize] *)
}

let arity t = t.arity
let count t = t.count
let bits_per_tuple t = t.tuple_bits

let ceil_log2 n =
  if n <= 1 then 0
  else begin
    let rec go bits cap = if cap >= n then bits else go (bits + 1) (cap * 2) in
    go 1 2
  end

(* Greedy base cover of sorted distinct values for offset width [w]: each
   base covers [base, base + 2^w). *)
let cover_bases sorted w =
  let span = if w >= 62 then max_int else 1 lsl w in
  let bases = ref [] in
  let limit = ref min_int in
  Array.iter
    (fun v ->
      if v >= !limit || !limit = min_int then begin
        bases := v :: !bases;
        limit := if v > max_int - span then max_int else v + span
      end)
    sorted;
  Array.of_list (List.rev !bases)

let candidate_widths = [ 0; 1; 2; 3; 4; 6; 8; 10; 12; 16; 20; 24; 28; 32; 40; 48; 57 ]

(* Pick the (bases, W) pair minimising total bits: per-tuple payload plus
   an approximate header charge per base. *)
let choose_dict values =
  let distinct =
    let s = Array.copy values in
    Array.sort compare s;
    let out = ref [] in
    Array.iter (fun v -> match !out with x :: _ when x = v -> () | _ -> out := v :: !out) s;
    Array.of_list (List.rev !out)
  in
  let n = Array.length values in
  let best = ref None in
  List.iter
    (fun w ->
      let bases = cover_bases distinct w in
      let x_bits = ceil_log2 (Array.length bases) in
      if x_bits + w <= max_value_bits then begin
        let header_bits = Array.length bases * 40 in
        let cost = (n * (x_bits + w)) + header_bits in
        match !best with
        | Some (c, _, _, _) when c <= cost -> ()
        | _ -> best := Some (cost, bases, x_bits, w)
      end)
    candidate_widths;
  match !best with
  | Some (_, bases, x_bits, w) -> { bases; x_bits; w }
  | None -> assert false

let base_index dict v =
  (* Largest base <= v whose window contains v. Bases are sorted. *)
  let lo = ref 0 and hi = ref (Array.length dict.bases - 1) in
  let found = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if dict.bases.(mid) <= v then begin
      found := mid;
      lo := mid + 1
    end
    else hi := mid - 1
  done;
  !found

let encode_header ~arity ~count dicts =
  let buf = Buffer.create 64 in
  Varint.write buf arity;
  Varint.write buf count;
  Array.iter
    (fun d ->
      Varint.write buf (Array.length d.bases);
      Buffer.add_char buf (Char.chr d.w);
      let prev = ref 0 in
      Array.iter
        (fun b ->
          Varint.write buf (b - !prev);
          prev := b)
        d.bases)
    dicts;
  Buffer.contents buf

let layout dicts =
  let arity = Array.length dicts in
  let field_offsets = Array.make arity 0 in
  let bits = ref 0 in
  for f = 0 to arity - 1 do
    field_offsets.(f) <- !bits;
    bits := !bits + dicts.(f).x_bits + dicts.(f).w
  done;
  (field_offsets, !bits)

let encode ~arity tuples =
  let count = List.length tuples in
  let columns = Array.make arity [||] in
  for f = 0 to arity - 1 do
    columns.(f) <-
      Array.of_list
        (List.map
           (fun tup ->
             if Array.length tup <> arity then invalid_arg "Tuple_page.encode: arity mismatch";
             let v = tup.(f) in
             if Int64.compare v 0L < 0 || Int64.compare v (Int64.shift_left 1L max_value_bits) >= 0
             then invalid_arg "Tuple_page.encode: value out of range";
             Int64.to_int v)
           tuples)
  done;
  let dicts = Array.map choose_dict columns in
  let field_offsets, tuple_bits = layout dicts in
  let writer = Bitio.Writer.create ~capacity:(((count * tuple_bits) / 8) + 64) () in
  List.iteri
    (fun i _ ->
      for f = 0 to arity - 1 do
        let d = dicts.(f) in
        let v = columns.(f).(i) in
        let x = base_index d v in
        assert (x >= 0);
        let o = v - d.bases.(x) in
        Bitio.Writer.put writer (Int64.of_int x) ~width:d.x_bits;
        Bitio.Writer.put writer (Int64.of_int o) ~width:d.w
      done)
    tuples;
  let header = encode_header ~arity ~count dicts in
  {
    arity;
    count;
    dicts;
    field_offsets;
    tuple_bits;
    body = Bitio.Reader.create (Bitio.Writer.contents writer);
    header;
  }

let field_value t i f =
  let d = t.dicts.(f) in
  let at = (i * t.tuple_bits) + t.field_offsets.(f) in
  let x = Int64.to_int (Bitio.Reader.get t.body ~at ~width:d.x_bits) in
  let o = Int64.to_int (Bitio.Reader.get t.body ~at:(at + d.x_bits) ~width:d.w) in
  Int64.of_int (d.bases.(x) + o)

let get t i =
  if i < 0 || i >= t.count then invalid_arg "Tuple_page.get";
  Array.init t.arity (fun f -> field_value t i f)

let to_list t = List.init t.count (get t)

(* All compressed encodings of [value] in this field: (x, o) pairs packed
   as they appear in the bit stream. A value may be reachable from several
   bases when windows overlap. *)
let patterns_of dict value =
  let v = Int64.to_int value in
  let pats = ref [] in
  Array.iteri
    (fun x b ->
      let o = v - b in
      if o >= 0 && (dict.w >= 62 || o < 1 lsl dict.w) then begin
        let packed = Int64.logor (Int64.of_int x) (Int64.shift_left (Int64.of_int o) dict.x_bits) in
        pats := packed :: !pats
      end)
    dict.bases;
  !pats

let scan t ~field ~value =
  if field < 0 || field >= t.arity then invalid_arg "Tuple_page.scan";
  let d = t.dicts.(field) in
  let pats = patterns_of d value in
  if pats = [] then []
  else begin
    let width = d.x_bits + d.w in
    let acc = ref [] in
    for i = t.count - 1 downto 0 do
      let at = (i * t.tuple_bits) + t.field_offsets.(field) in
      let bits = Bitio.Reader.get t.body ~at ~width in
      if List.exists (Int64.equal bits) pats then acc := i :: !acc
    done;
    !acc
  end

let scan_naive t ~field ~value =
  if field < 0 || field >= t.arity then invalid_arg "Tuple_page.scan_naive";
  let acc = ref [] in
  for i = t.count - 1 downto 0 do
    let tup = get t i in
    if Int64.equal tup.(field) value then acc := i :: !acc
  done;
  !acc

let size_bytes t = String.length t.header + (((t.count * t.tuple_bits) + 7) / 8)

let serialize t =
  let buf = Buffer.create (size_bytes t + 8) in
  Varint.write buf (String.length t.header);
  Buffer.add_string buf t.header;
  let body_bytes = ((t.count * t.tuple_bits) + 7) / 8 in
  Varint.write buf body_bytes;
  for i = 0 to body_bytes - 1 do
    let bits_left = (t.count * t.tuple_bits) - (i * 8) in
    let width = min 8 bits_left in
    let b =
      if width <= 0 then 0L else Bitio.Reader.get t.body ~at:(i * 8) ~width
    in
    Buffer.add_char buf (Char.chr (Int64.to_int b land 0xFF))
  done;
  Buffer.contents buf

let deserialize s =
  let buf = Bytes.unsafe_of_string s in
  let header_len, p = Varint.read buf ~pos:0 in
  if p + header_len > Bytes.length buf then invalid_arg "Tuple_page.deserialize: truncated";
  let header = String.sub s p header_len in
  let hbuf = Bytes.unsafe_of_string header in
  let arity, hp = Varint.read hbuf ~pos:0 in
  let count, hp = Varint.read hbuf ~pos:hp in
  let hp = ref hp in
  let dicts =
    Array.init arity (fun _ ->
        let nbases, p1 = Varint.read hbuf ~pos:!hp in
        if p1 >= Bytes.length hbuf + 1 then invalid_arg "Tuple_page.deserialize: truncated";
        let w = Bytes.get_uint8 hbuf p1 in
        let pos = ref (p1 + 1) in
        let prev = ref 0 in
        let bases =
          Array.init nbases (fun _ ->
              let d, np = Varint.read hbuf ~pos:!pos in
              pos := np;
              prev := !prev + d;
              !prev)
        in
        hp := !pos;
        { bases; x_bits = ceil_log2 nbases; w })
  in
  let field_offsets, tuple_bits = layout dicts in
  let body_pos = p + header_len in
  let body_bytes, bp = Varint.read buf ~pos:body_pos in
  if bp + body_bytes > Bytes.length buf then invalid_arg "Tuple_page.deserialize: truncated";
  if body_bytes < ((count * tuple_bits) + 7) / 8 then
    invalid_arg "Tuple_page.deserialize: body too short";
  let body = Bitio.Reader.create (Bytes.sub buf bp body_bytes) in
  { arity; count; dicts; field_offsets; tuple_bits; body; header }

let plain_size_bytes ~arity ~count = arity * count * 8

lib/encoding/tuple_page.mli:

lib/encoding/ranges.mli:

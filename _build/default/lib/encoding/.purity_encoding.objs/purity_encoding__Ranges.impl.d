lib/encoding/ranges.ml: Buffer Bytes Int List Map Purity_util

lib/encoding/tuple_page.ml: Array Buffer Bytes Char Int64 List Purity_util String

(** Range-encoded integer sets.

    Paper §4.10: elide records are encoded as ranges and contiguous ranges
    are merged, so an elide table keyed by dense, monotonically increasing
    ids collapses rapidly instead of leaking space. The structure is an
    immutable set of disjoint inclusive [\[lo, hi\]] ranges; adjacent and
    overlapping ranges merge on insertion, keeping the representation at
    its information-theoretic minimum. *)

type t

val empty : t
val is_empty : t -> bool

val add : t -> int -> t
(** Insert a single id, merging with neighbours. *)

val add_range : t -> lo:int -> hi:int -> t
(** Insert an inclusive range ([lo <= hi]). *)

val mem : t -> int -> bool
val cardinal : t -> int
(** Total ids covered. *)

val range_count : t -> int
(** Number of stored ranges — the space the elide table actually uses.
    The paper's bound: never more than the number of live tuples. *)

val union : t -> t -> t
val to_list : t -> (int * int) list
(** Sorted disjoint inclusive ranges. *)

val of_list : (int * int) list -> t

val fold : (lo:int -> hi:int -> 'a -> 'a) -> t -> 'a -> 'a

val encode : t -> string
(** Compact varint serialisation (delta-encoded) for persistence. *)

val decode : string -> t
(** @raise Invalid_argument on malformed input. *)

(** Bit-packed metadata pages with base/offset dictionary compression.

    This is the metadata layout of paper §4.9. A page stores a batch of
    fixed-arity tuples of non-negative integers. Its header holds, for each
    field, a small dictionary of bases [b0..b_{B-1}] and an offset width
    [W]; a value [v = b_x + o] is stored as the pair [(x, o)] in
    [ceil(lg B) + W] bits. Constant fields cost zero bits ("as long as
    their value is the same for every tuple, the extra fields take up no
    space"), and every tuple occupies the same number of bits, so the page
    body is a regular bit stream.

    Regularity is what enables {!scan}: to find tuples whose field equals
    [v], the page is searched for the compressed bit patterns [v] can
    encode to — no tuple is ever decompressed. *)

type t

val encode : arity:int -> int64 array list -> t
(** Pack tuples (all of length [arity], all field values in
    [0, 2^57)) into a page, choosing per-field dictionaries that minimise
    total page size. The input order is preserved. *)

val arity : t -> int
val count : t -> int
val bits_per_tuple : t -> int
val size_bytes : t -> int
(** Full serialised page size, header included. *)

val get : t -> int -> int64 array
(** Decode tuple [i]. *)

val to_list : t -> int64 array list
(** Decode the whole page. *)

val scan : t -> field:int -> value:int64 -> int list
(** Indices of tuples whose [field] equals [value], found by comparing
    compressed bit patterns (no decompression). *)

val scan_naive : t -> field:int -> value:int64 -> int list
(** Reference implementation that decodes every tuple; used by tests and
    by the E10 experiment as the "decompress then compare" baseline. *)

val serialize : t -> string
val deserialize : string -> t
(** @raise Invalid_argument on malformed pages. *)

val plain_size_bytes : arity:int -> count:int -> int
(** Size the same tuples would occupy as flat 64-bit fields — the
    comparison point for the E10 compression-ratio experiment. *)

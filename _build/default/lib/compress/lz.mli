(** Byte-oriented LZ77 block compression.

    Purity compresses every application block before it reaches flash
    (paper §3.1): log-structured placement lets compressed blocks pack
    tightly with no alignment padding, so a "simpler, more efficient"
    byte-oriented LZ class codec suffices. This is such a codec, written
    from scratch: greedy LZ77 with a 64 KiB window, 4-byte minimum match,
    and an LZ4-style token format (so decompression is branch-light).

    Format per sequence: a token byte whose high nibble is the literal
    count and low nibble the match length minus 4 (15 in either nibble
    chains 255-valued extension bytes), then the literals, then a 2-byte
    little-endian match offset. The final sequence carries literals only
    (offset 0 terminator). *)

val compress : string -> string
(** Compress a buffer. Output may be larger than the input for
    incompressible data; callers should use {!compress_cblock}-style
    framing to fall back to raw storage (see {!Cblock}). *)

val decompress : string -> expected_len:int -> string
(** Decompress; [expected_len] is the original size (stored out-of-band in
    the cblock frame).
    @raise Invalid_argument on malformed input or length mismatch. *)

val ratio : string -> float
(** [ratio s] = original size / compressed size, a quick compressibility
    probe used by workload-characterisation code. *)

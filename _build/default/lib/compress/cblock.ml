module Varint = Purity_util.Varint
module Crc32c = Purity_util.Crc32c

type encoding = Raw | Lz

type t = { logical_len : int; encoding : encoding; payload : string }

let max_logical = 32 * 1024

let of_data data =
  let n = String.length data in
  if n > max_logical then invalid_arg "Cblock.of_data: larger than 32 KiB";
  let compressed = Lz.compress data in
  if String.length compressed < n then
    { logical_len = n; encoding = Lz; payload = compressed }
  else { logical_len = n; encoding = Raw; payload = data }

let data t =
  match t.encoding with
  | Raw -> t.payload
  | Lz -> Lz.decompress t.payload ~expected_len:t.logical_len

let header_size t =
  Varint.size t.logical_len + 1 + Varint.size (String.length t.payload) + 4

let stored_size t = header_size t + String.length t.payload

let encode buf t =
  Varint.write buf t.logical_len;
  Buffer.add_char buf (match t.encoding with Raw -> '\000' | Lz -> '\001');
  Varint.write buf (String.length t.payload);
  let crc = Crc32c.digest_string t.payload in
  Buffer.add_char buf (Char.chr (Int32.to_int (Int32.logand crc 0xFFl)));
  Buffer.add_char buf (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical crc 8) 0xFFl)));
  Buffer.add_char buf (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical crc 16) 0xFFl)));
  Buffer.add_char buf (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical crc 24) 0xFFl)));
  Buffer.add_string buf t.payload

let decode buf ~pos =
  let logical_len, p = Varint.read buf ~pos in
  if p >= Bytes.length buf then invalid_arg "Cblock.decode: truncated";
  let encoding =
    match Bytes.get buf p with
    | '\000' -> Raw
    | '\001' -> Lz
    | _ -> invalid_arg "Cblock.decode: bad encoding byte"
  in
  let payload_len, p = Varint.read buf ~pos:(p + 1) in
  if p + 4 + payload_len > Bytes.length buf then invalid_arg "Cblock.decode: truncated";
  let crc_stored =
    let b i = Int32.of_int (Bytes.get_uint8 buf (p + i)) in
    Int32.logor (b 0)
      (Int32.logor
         (Int32.shift_left (b 1) 8)
         (Int32.logor (Int32.shift_left (b 2) 16) (Int32.shift_left (b 3) 24)))
  in
  let payload = Bytes.sub_string buf (p + 4) payload_len in
  if Crc32c.digest_string payload <> crc_stored then
    invalid_arg "Cblock.decode: CRC mismatch";
  ({ logical_len; encoding; payload }, p + 4 + payload_len)

let reduction t =
  if stored_size t = 0 then 1.0
  else float_of_int t.logical_len /. float_of_int (stored_size t)

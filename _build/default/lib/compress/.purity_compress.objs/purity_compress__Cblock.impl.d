lib/compress/cblock.ml: Buffer Bytes Char Int32 Lz Purity_util String

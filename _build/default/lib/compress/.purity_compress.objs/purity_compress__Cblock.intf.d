lib/compress/cblock.mli: Buffer

lib/compress/lz.mli:

lib/compress/lz.ml: Array Buffer Bytes Char String

let min_match = 4
let window = 65535
let hash_bits = 14
let hash_size = 1 lsl hash_bits

(* Multiplicative hash of the 4 bytes at [i]. *)
let hash4 s i =
  let v =
    Char.code (String.unsafe_get s i)
    lor (Char.code (String.unsafe_get s (i + 1)) lsl 8)
    lor (Char.code (String.unsafe_get s (i + 2)) lsl 16)
    lor (Char.code (String.unsafe_get s (i + 3)) lsl 24)
  in
  (v * 2654435761) lsr (32 - hash_bits) land (hash_size - 1)

(* 15 in a nibble chains 255-valued extension bytes, LZ4-style. *)
let add_extension buf n =
  let rest = ref (n - 15) in
  while !rest >= 255 do
    Buffer.add_char buf '\255';
    rest := !rest - 255
  done;
  Buffer.add_char buf (Char.chr !rest)

(* One sequence: token, literal extensions, literals, [offset, match
   extensions]. [match_len] = 0 means a terminal literals-only sequence. *)
let emit buf src lit_start lit_len match_off match_len =
  let lit_nib = if lit_len < 15 then lit_len else 15 in
  let match_base = if match_len = 0 then 0 else match_len - min_match in
  let match_nib = if match_base < 15 then match_base else 15 in
  Buffer.add_char buf (Char.chr ((lit_nib lsl 4) lor match_nib));
  if lit_len >= 15 then add_extension buf lit_len;
  Buffer.add_substring buf src lit_start lit_len;
  if match_len > 0 then begin
    Buffer.add_char buf (Char.chr (match_off land 0xFF));
    Buffer.add_char buf (Char.chr ((match_off lsr 8) land 0xFF));
    if match_base >= 15 then add_extension buf match_base
  end

let compress s =
  let n = String.length s in
  let out = Buffer.create ((n / 2) + 16) in
  if n < min_match + 1 then begin
    emit out s 0 n 0 0;
    Buffer.contents out
  end
  else begin
    let table = Array.make hash_size (-1) in
    let anchor = ref 0 in
    let i = ref 0 in
    let limit = n - min_match in
    while !i <= limit do
      let h = hash4 s !i in
      let cand = table.(h) in
      table.(h) <- !i;
      if
        cand >= 0
        && !i - cand <= window
        && String.unsafe_get s cand = String.unsafe_get s !i
        && String.unsafe_get s (cand + 1) = String.unsafe_get s (!i + 1)
        && String.unsafe_get s (cand + 2) = String.unsafe_get s (!i + 2)
        && String.unsafe_get s (cand + 3) = String.unsafe_get s (!i + 3)
      then begin
        let len = ref min_match in
        while
          !i + !len < n
          && String.unsafe_get s (cand + !len) = String.unsafe_get s (!i + !len)
        do
          incr len
        done;
        emit out s !anchor (!i - !anchor) (!i - cand) !len;
        (* Index positions inside the match so later repeats are found. *)
        let stop = min (!i + !len) limit in
        let j = ref (!i + 1) in
        while !j < stop do
          table.(hash4 s !j) <- !j;
          j := !j + 2
        done;
        i := !i + !len;
        anchor := !i
      end
      else incr i
    done;
    emit out s !anchor (n - !anchor) 0 0;
    Buffer.contents out
  end

let decompress s ~expected_len =
  let n = String.length s in
  if expected_len < 0 then invalid_arg "Lz.decompress: negative length";
  let out = Bytes.create expected_len in
  let opos = ref 0 in
  let i = ref 0 in
  let fail msg = invalid_arg ("Lz.decompress: " ^ msg) in
  let read_byte () =
    if !i >= n then fail "truncated";
    let c = Char.code (String.unsafe_get s !i) in
    incr i;
    c
  in
  let read_ext base =
    if base < 15 then base
    else begin
      let total = ref base in
      let c = ref 255 in
      while !c = 255 do
        c := read_byte ();
        total := !total + !c
      done;
      !total
    end
  in
  while !i < n do
    let token = read_byte () in
    let lit_len = read_ext (token lsr 4) in
    if lit_len > 0 then begin
      if !i + lit_len > n || !opos + lit_len > expected_len then fail "bad literal run";
      Bytes.blit_string s !i out !opos lit_len;
      i := !i + lit_len;
      opos := !opos + lit_len
    end;
    if !i < n then begin
      (* explicit sequencing: argument evaluation order is unspecified *)
      let lo = read_byte () in
      let hi = read_byte () in
      let off = lo lor (hi lsl 8) in
      if off = 0 || off > !opos then fail "bad offset";
      let match_len = read_ext (token land 0xF) + min_match in
      if !opos + match_len > expected_len then fail "output overflow";
      (* Byte-at-a-time copy: overlapping source/dest is the RLE case. *)
      let src = ref (!opos - off) in
      for _ = 1 to match_len do
        Bytes.unsafe_set out !opos (Bytes.unsafe_get out !src);
        incr src;
        incr opos
      done
    end
  done;
  if !opos <> expected_len then fail "length mismatch";
  Bytes.unsafe_to_string out

let ratio s =
  if String.length s = 0 then 1.0
  else float_of_int (String.length s) /. float_of_int (String.length (compress s))

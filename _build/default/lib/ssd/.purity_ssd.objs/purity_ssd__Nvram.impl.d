lib/ssd/nvram.ml: Float Int64 List Purity_sim Queue String

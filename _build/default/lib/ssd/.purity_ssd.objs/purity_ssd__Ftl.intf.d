lib/ssd/ftl.mli:

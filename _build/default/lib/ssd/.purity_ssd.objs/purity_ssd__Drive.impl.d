lib/ssd/drive.ml: Array Bytes Float Hashtbl Int64 Printf Purity_sim Purity_util

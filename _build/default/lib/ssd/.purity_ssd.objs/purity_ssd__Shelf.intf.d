lib/ssd/shelf.mli: Drive Nvram Purity_sim Purity_util

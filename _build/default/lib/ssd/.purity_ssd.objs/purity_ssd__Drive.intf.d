lib/ssd/drive.mli: Purity_sim Purity_util

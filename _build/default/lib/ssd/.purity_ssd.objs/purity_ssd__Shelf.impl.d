lib/ssd/shelf.ml: Array Drive List Nvram Purity_sim Purity_util

lib/ssd/nvram.mli: Purity_sim

lib/ssd/ftl.ml: Array List

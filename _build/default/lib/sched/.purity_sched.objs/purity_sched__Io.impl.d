lib/sched/io.ml: Array Bytes Fun List Purity_erasure Purity_segment Purity_sim Purity_ssd Purity_util

lib/sched/io.mli: Purity_erasure Purity_segment Purity_ssd Purity_util

(** The comparator of Table 1: a disk-based enterprise array.

    A simplified VNX-class model: a shelf of 10k/15k RPM spindles behind
    dual controllers with a battery-backed write cache and a DRAM read
    cache. Reads miss the cache with some probability and pay a
    seek + rotate + transfer service time on one spindle; writes commit
    to the battery-backed RAM and destage in the background (destage
    bandwidth bounds sustained write throughput).

    Driven against the shared simulation clock so its latency/IOPS
    numbers are directly comparable with the Purity array's. *)

type config = {
  disks : int;
  seek_ms : float;
  rotate_ms : float;  (** half-rotation average *)
  transfer_mb_s : float;  (** per-disk media rate *)
  read_cache_hit : float;
  cache_hit_us : float;
  write_cache_us : float;  (** battery-backed RAM commit *)
  destage_fraction : float;
      (** fraction of spindle time reserved for destaging writes *)
}

val default_config : config
(** 120 x 15k-RPM spindles (a mid-range shelf): 3.5 ms seek, 2 ms rotate,
    180 MB/s media, 20% read-cache hits, 0.25 ms cached ops. *)

type t

val create : ?config:config -> clock:Purity_sim.Clock.t -> seed:int64 -> unit -> t

val read : t -> bytes:int -> (unit -> unit) -> unit
val write : t -> bytes:int -> (unit -> unit) -> unit

val read_lat : t -> Purity_util.Histogram.t
val write_lat : t -> Purity_util.Histogram.t

lib/baseline/rollback.ml: Float List

lib/baseline/disk_array.mli: Purity_sim Purity_util

lib/baseline/rollback.mli:

lib/baseline/scaleout.mli: Fmt

lib/baseline/five_minute.mli:

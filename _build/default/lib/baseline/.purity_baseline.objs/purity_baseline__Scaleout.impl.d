lib/baseline/scaleout.ml: Float Fmt List

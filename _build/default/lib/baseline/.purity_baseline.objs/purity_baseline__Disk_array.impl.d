lib/baseline/disk_array.ml: Array Float Purity_sim Purity_util

lib/baseline/five_minute.ml: Float List Printf

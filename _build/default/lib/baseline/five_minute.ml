type tier = {
  name : string;
  dollars_per_gb : float;
  accesses_per_sec : float;
  dollars_per_device : float;
}

(* Table 1: Purity $5/GB usable at 1x; data reduction divides the capacity
   price. 200k IOPS for a ~$200k street-price array. *)
let purity ~reduction =
  {
    name = (if reduction = 1.0 then "1x - No reduction"
            else if reduction <= 4.0 then Printf.sprintf "%gx - RDBMS" reduction
            else Printf.sprintf "%gx - MongoDB" reduction);
    dollars_per_gb = 5.0 /. reduction;
    accesses_per_sec = 200_000.0;
    dollars_per_device = 200_000.0;
  }

let hard_disk =
  {
    name = "Hard disk";
    dollars_per_gb = 18.0;
    accesses_per_sec = 65_000.0;
    dollars_per_device = 450_000.0;
  }

let ecc_dimm =
  {
    name = "ECC DIMM";
    dollars_per_gb = 1000.0 /. 64.0;
    accesses_per_sec = infinity;
    dollars_per_device = 0.0;
  }

(* Cost rate ($ per GB of objects, amortised) = capacity cost + the share
   of device price consumed by the access rate. Device prices amortise
   over a 5-year life; capacity is a one-time purchase treated the same
   way, so the common factor cancels in relative costs. *)
let cost_per_gb_hour tier ~object_bytes ~access_interval_s =
  let objects_per_gb = 1073741824.0 /. float_of_int object_bytes in
  let accesses_per_sec_per_gb = objects_per_gb /. access_interval_s in
  let capacity = tier.dollars_per_gb in
  let access =
    if Float.is_integer tier.accesses_per_sec && tier.accesses_per_sec = 0.0 then 0.0
    else if tier.accesses_per_sec = infinity then 0.0
    else tier.dollars_per_device /. tier.accesses_per_sec *. accesses_per_sec_per_gb
  in
  capacity +. access

let relative_cost tier ~baseline ~object_bytes ~access_interval_s =
  cost_per_gb_hour tier ~object_bytes ~access_interval_s
  /. cost_per_gb_hour baseline ~object_bytes ~access_interval_s

let crossover_interval_s tier ~baseline ~object_bytes =
  let f s = relative_cost tier ~baseline ~object_bytes ~access_interval_s:s -. 1.0 in
  let lo = 1.0 and hi = 365.0 *. 86400.0 in
  if f lo < 0.0 then Some lo
  else if f hi > 0.0 then None
  else begin
    let lo = ref lo and hi = ref hi in
    for _ = 1 to 60 do
      let mid = sqrt (!lo *. !hi) in
      if f mid > 0.0 then lo := mid else hi := mid
    done;
    Some !hi
  end

let figure7_intervals =
  [ 1.0; 10.0; 30.0; 60.0; 300.0; 600.0; 1800.0; 3600.0; 86400.0; 604800.0;
    2419200.0; 31536000.0 ]

let figure7_series () =
  let tiers =
    [ purity ~reduction:1.0; purity ~reduction:4.0; purity ~reduction:10.0; hard_disk; ecc_dimm ]
  in
  let object_bytes = 55 * 1024 in
  List.map
    (fun tier ->
      ( tier.name,
        List.map
          (fun s ->
            (s, relative_cost tier ~baseline:ecc_dimm ~object_bytes ~access_interval_s:s))
          figure7_intervals ))
    tiers

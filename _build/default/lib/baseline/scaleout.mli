(** Table 2's analytic consolidation model.

    The paper estimates how many FA-450 arrays replace published
    disk-based key-value deployments by dividing each service's design
    throughput or capacity by the array's. This module encodes the
    paper's published inputs and reproduces the table's ratios. *)

type deployment = {
  service : string;
  scale : string;  (** the paper's "Scale" column *)
  year : int;
  scope : string;
  apps : string;  (** the paper's "Apps" column, verbatim *)
  nodes : int;  (** deployment size in nodes (midpoint when a range) *)
  demand : [ `Ops_per_s of float | `Capacity_pb of float ];
}

val paper_deployments : deployment list
(** PNUTS, Spanner, S3 and DynamoDB rows with the paper's numbers. *)

type fa450 = {
  ops_per_s : float;  (** 200k x 32 KiB IOPS *)
  effective_tb : float;  (** 250 TB effective capacity *)
}

val fa450 : fa450

type row = {
  deployment : deployment;
  arrays_needed : float;  (** the paper's "≈FA-450's" column *)
  nodes_per_array : float;  (** the consolidation ratio *)
}

val consolidate : ?array_spec:fa450 -> deployment -> row
val table : ?array_spec:fa450 -> unit -> row list
val pp_table : row list Fmt.t

module Clock = Purity_sim.Clock
module Rng = Purity_util.Rng
module Histogram = Purity_util.Histogram

type config = {
  disks : int;
  seek_ms : float;
  rotate_ms : float;
  transfer_mb_s : float;
  read_cache_hit : float;
  cache_hit_us : float;
  write_cache_us : float;
  destage_fraction : float;
}

let default_config =
  {
    disks = 120;
    seek_ms = 3.5;
    rotate_ms = 2.0;
    transfer_mb_s = 180.0;
    read_cache_hit = 0.2;
    cache_hit_us = 250.0;
    write_cache_us = 120.0;
    destage_fraction = 0.3;
  }

type t = {
  cfg : config;
  clock : Clock.t;
  rng : Rng.t;
  disk_free_at : float array;
  mutable rr : int;
  read_hist : Histogram.t;
  write_hist : Histogram.t;
  (* write cache destage: sustained writes are bounded by spindle time *)
  mutable destage_backlog_us : float;
  mutable destage_drain_mark : float;
}

let create ?(config = default_config) ~clock ~seed () =
  {
    cfg = config;
    clock;
    rng = Rng.create ~seed;
    disk_free_at = Array.make config.disks 0.0;
    rr = 0;
    read_hist = Histogram.create ();
    write_hist = Histogram.create ();
    destage_backlog_us = 0.0;
    destage_drain_mark = 0.0;
  }

let service_us t bytes =
  ((t.cfg.seek_ms +. t.cfg.rotate_ms) *. 1000.0)
  +. (float_of_int bytes /. (t.cfg.transfer_mb_s *. 1024.0 *. 1024.0 /. 1e6))

(* Pick the least-loaded of two random spindles (striping abstracted). *)
let pick_disk t =
  let a = Rng.int t.rng t.cfg.disks and b = Rng.int t.rng t.cfg.disks in
  if t.disk_free_at.(a) <= t.disk_free_at.(b) then a else b

let read t ~bytes k =
  let now = Clock.now t.clock in
  if Rng.float t.rng 1.0 < t.cfg.read_cache_hit then begin
    Histogram.record t.read_hist t.cfg.cache_hit_us;
    Clock.schedule t.clock ~delay:t.cfg.cache_hit_us k
  end
  else begin
    let d = pick_disk t in
    let start = Float.max now t.disk_free_at.(d) in
    let finish = start +. service_us t bytes in
    t.disk_free_at.(d) <- finish;
    Histogram.record t.read_hist (finish -. now);
    Clock.schedule_at t.clock ~at:finish k
  end

(* Writes ack from battery-backed RAM; destaging consumes reserved spindle
   time. When the backlog exceeds what the reserved fraction can drain,
   writes stall behind it (cache-full back-pressure). *)
let write t ~bytes k =
  let now = Clock.now t.clock in
  (* drain the backlog model *)
  let drained = (now -. t.destage_drain_mark) *. t.cfg.destage_fraction *. float_of_int t.cfg.disks in
  t.destage_backlog_us <- Float.max 0.0 (t.destage_backlog_us -. drained);
  t.destage_drain_mark <- now;
  t.destage_backlog_us <- t.destage_backlog_us +. service_us t bytes;
  let capacity_us = 50_000.0 *. float_of_int t.cfg.disks in
  let stall =
    if t.destage_backlog_us > capacity_us then
      (t.destage_backlog_us -. capacity_us) /. (t.cfg.destage_fraction *. float_of_int t.cfg.disks)
    else 0.0
  in
  let latency = t.cfg.write_cache_us +. stall in
  Histogram.record t.write_hist latency;
  Clock.schedule t.clock ~delay:latency k

let read_lat t = t.read_hist
let write_lat t = t.write_hist

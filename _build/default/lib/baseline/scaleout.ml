type deployment = {
  service : string;
  scale : string;
  year : int;
  scope : string;
  apps : string;
  nodes : int;
  demand : [ `Ops_per_s of float | `Capacity_pb of float ];
}

(* The paper's Table 2 inputs (nodes use the stated values; Spanner's
   10^3-10^4 range is represented by its geometric shape via 3000). *)
let paper_deployments =
  [
    {
      service = "PNUTS";
      scale = "1.6M op/s (design target)";
      year = 2010;
      scope = "Data center";
      apps = "1000";
      nodes = 1000;
      demand = `Ops_per_s 1.6e6;
    };
    {
      service = "Spanner";
      scale = "1-10 PB (design target)";
      year = 2010;
      scope = "Data center";
      apps = "300";
      nodes = 3000;
      demand = `Capacity_pb 5.5;
    };
    {
      service = "S3";
      scale = "1.5M op/s (peak)";
      year = 2013;
      scope = "Global";
      apps = "-";
      nodes = 900;
      demand = `Ops_per_s 1.5e6;
    };
    {
      service = "DynamoDB";
      scale = "2.6M op/s (mean)";
      year = 2014;
      scope = "Region";
      apps = "-";
      nodes = 1600;
      demand = `Ops_per_s 2.6e6;
    };
  ]

type fa450 = { ops_per_s : float; effective_tb : float }

let fa450 = { ops_per_s = 200_000.0; effective_tb = 250.0 }

type row = { deployment : deployment; arrays_needed : float; nodes_per_array : float }

let consolidate ?(array_spec = fa450) d =
  let arrays =
    match d.demand with
    | `Ops_per_s ops -> ops /. array_spec.ops_per_s
    | `Capacity_pb pb -> pb *. 1000.0 /. array_spec.effective_tb
  in
  let arrays = Float.max arrays 1.0 in
  { deployment = d; arrays_needed = arrays; nodes_per_array = float_of_int d.nodes /. arrays }

let table ?array_spec () = List.map (consolidate ?array_spec) paper_deployments

let pp_table ppf rows =
  Fmt.pf ppf "@[<v>%-10s %-28s %-6s %-12s %8s %10s %12s@,"
    "Service" "Scale" "Year" "Scope" "Nodes" "~FA-450s" "Nodes/array";
  List.iter
    (fun r ->
      Fmt.pf ppf "%-10s %-28s %-6d %-12s %8d %10.1f %12.0f@," r.deployment.service
        r.deployment.scale r.deployment.year r.deployment.scope r.deployment.nodes
        r.arrays_needed r.nodes_per_array)
    rows;
  Fmt.pf ppf "@]"

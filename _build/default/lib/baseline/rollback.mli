(** §5.2.1's transaction-rollback argument, as a small analytic model.

    "As latencies increase, so too does transaction concurrency and
    runtime, increasing the probability of transaction rollbacks. It is
    well known that these effects lead to non-linear increases in
    rollback rates [Gray et al. 96] ... Purity decreases request
    latencies by an order of magnitude, potentially reducing rollback
    rates by more than 10x."

    The classic model: a transaction holds its locks for a duration
    dominated by its storage waits; with [tps] transactions per second
    each touching [locks_per_txn] of [db_locks] lockable objects, the
    per-transaction conflict (rollback) probability is approximately
    1 - exp(-(tps × hold_s) × locks² / db_locks); rolled-back
    transactions retry, inflating the offered load, so the model solves
    the fixed point — that feedback is what makes rollback rates
    super-linear in storage latency. *)

type params = {
  tps : float;  (** offered transactions per second *)
  locks_per_txn : float;
  db_locks : float;  (** lockable objects in the database *)
  think_s : float;  (** CPU time per transaction (latency-independent) *)
  ios_per_txn : float;  (** synchronous storage waits per transaction *)
}

val default_params : params
(** 15k TPS, 10 locks over 1M objects, 0.1 ms CPU, 8 I/Os per txn — a
    busy I/O-bound OLTP system near its disk-era conflict ceiling. *)

val rollback_probability : params -> storage_latency_s:float -> float
(** Per-transaction rollback probability at the given storage latency. *)

val series : params -> (float * float) list
(** (storage latency seconds, rollback probability) over 0.1–10 ms. *)

val improvement : params -> disk_latency_s:float -> flash_latency_s:float -> float
(** Rollback-rate ratio disk/flash — the paper's "more than 10x". *)

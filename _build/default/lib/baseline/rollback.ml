type params = {
  tps : float;
  locks_per_txn : float;
  db_locks : float;
  think_s : float;
  ios_per_txn : float;
}

let default_params =
  { tps = 15000.0; locks_per_txn = 10.0; db_locks = 1e6; think_s = 0.0001; ios_per_txn = 8.0 }

let rollback_probability p ~storage_latency_s =
  let hold = p.think_s +. (p.ios_per_txn *. storage_latency_s) in
  (* rolled-back transactions retry, inflating the offered load — the
     feedback loop behind the paper's super-linear warning; solve the
     fixed point lambda' = lambda / (1 - p(lambda')) *)
  let prob lambda =
    let concurrent = lambda *. hold in
    let rate = concurrent *. p.locks_per_txn *. p.locks_per_txn /. p.db_locks in
    1.0 -. exp (-.rate)
  in
  let rec fixpoint lambda n =
    let pr = prob lambda in
    if n = 0 || pr > 0.9 then Float.min pr 0.99
    else begin
      let lambda' = p.tps /. (1.0 -. pr) in
      if abs_float (lambda' -. lambda) < 1.0 then pr else fixpoint lambda' (n - 1)
    end
  in
  fixpoint p.tps 50

let series p =
  List.map
    (fun ms -> (ms /. 1000.0, rollback_probability p ~storage_latency_s:(ms /. 1000.0)))
    [ 0.1; 0.2; 0.5; 1.0; 2.0; 5.0; 10.0 ]

let improvement p ~disk_latency_s ~flash_latency_s =
  rollback_probability p ~storage_latency_s:disk_latency_s
  /. rollback_probability p ~storage_latency_s:flash_latency_s

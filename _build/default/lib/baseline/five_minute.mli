(** Figure 7: the five-minute rule, recomputed for data-reducing flash.

    The cost of keeping a piece of data on a tier is the capacity it
    occupies plus the device time its accesses consume (Gray & Graefe's
    framing). For each tier the model computes cost per object as a
    function of access interval; dividing by the RAM cost gives the
    paper's "relative cost" curves, whose crossings yield the rules of
    thumb (data reduction moves flash's break-even with RAM from the
    five-minute range to roughly half an hour). *)

type tier = {
  name : string;
  dollars_per_gb : float;  (** effective $ per GB of usable capacity *)
  accesses_per_sec : float;  (** device op rate a $-unit of hardware buys *)
  dollars_per_device : float;  (** price of the unit delivering that rate *)
}

val purity : reduction:float -> tier
(** A Purity array at a given data-reduction factor (paper: 1x, 4x RDBMS,
    10x MongoDB) using Table 1's $5/GB and 200k IOPS figures. *)

val hard_disk : tier
(** Performance disk from Table 1: $18/GB usable, 65k IOPS array. *)

val ecc_dimm : tier
(** $1000 per 64 GiB LR-DIMM; accesses are free (no device time). *)

val cost_per_gb_hour :
  tier -> object_bytes:int -> access_interval_s:float -> float
(** Total cost rate of holding one GB of such objects on the tier,
    accessed once per [access_interval_s] each. *)

val relative_cost :
  tier -> baseline:tier -> object_bytes:int -> access_interval_s:float -> float
(** Figure 7's y-axis: cost on [tier] / cost on [baseline] (RAM). *)

val crossover_interval_s :
  tier -> baseline:tier -> object_bytes:int -> float option
(** Access interval at which the tier becomes cheaper than the baseline
    (binary search over 1 s – 1 year); [None] if never. *)

val figure7_series :
  unit -> (string * (float * float) list) list
(** The five curves of Figure 7: for each tier, (interval seconds,
    relative cost vs ECC DIMM) over the paper's 1 s – 1 yr x-axis, with
    55 KiB objects (the paper's mean I/O size). *)

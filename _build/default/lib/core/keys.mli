(** Key encodings for the metadata pyramids.

    Keys sort bytewise inside patches, so multi-part keys are fixed-width
    big-endian — (medium, block) ranges scan in block order, and the
    elide rule can extract the medium id from any block key. *)

val block_key : medium:int -> block:int -> string
(** 16-byte key for the block index. *)

val block_key_medium : string -> int
(** Elide rule: medium id of a block key. *)

val block_key_block : string -> int

val medium_key : int -> string
(** 8-byte key for the medium table. *)

val medium_key_id : string -> int

val segment_key : int -> string
val segment_key_id : string -> int

(** The boot region (paper §4.3, Figure 5).

    "The boot region is a tiny percentage of the total storage, and
    contains the locations of the relations and allocator state for the
    main region." It is the only piece of storage with a fixed location,
    so recovery can read it in O(1) before anything else is known.

    Modelled as a small mirrored blob with page-write latencies charged
    to the shared clock; its contents survive controller failover (they
    live in the shelf, not the controller). *)

type t

val create : ?write_us:float -> ?read_us:float -> clock:Purity_sim.Clock.t -> unit -> t
(** Defaults: 600 us per write (a few pages mirrored to two drives),
    250 us per read. *)

val write : t -> string -> (unit -> unit) -> unit
(** Atomically replace the blob; callback at durability. *)

val read : t -> (string option -> unit) -> unit
(** [None] before the first write (a factory-fresh array). *)

val writes : t -> int
(** Total boot-region writes — the "<1% of writes" bookkeeping. *)

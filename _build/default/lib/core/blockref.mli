(** Block references: the values of the block-index pyramid.

    Purity keeps "a single mapping structure for all user data" (§4.5)
    from (medium, block) to the physical home of the data. A reference
    names the cblock — (segment, payload offset, stored length) — plus
    which 512 B slice of the cblock's logical data is this block.
    Deduplicated blocks simply carry a reference into someone else's
    cblock (§4.7: "a mapping from the new logical address to the
    (segment, offset) of the existing data"). *)

type t = {
  segment : int;
  off : int;  (** payload offset of the cblock frame within the segment *)
  stored_len : int;  (** frame length on media: one exact read *)
  index : int;  (** 512 B block position within the cblock's logical data *)
}

val encode : t -> string
val decode : string -> t
(** @raise Invalid_argument on malformed input. *)

val same_cblock : t -> t -> bool
(** Do two references point into the same physical cblock? *)

val pp : t Fmt.t

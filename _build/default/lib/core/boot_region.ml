module Clock = Purity_sim.Clock

type t = {
  clock : Clock.t;
  write_us : float;
  read_us : float;
  mutable blob : string option;
  mutable write_count : int;
  mutable free_at : float;
}

let create ?(write_us = 600.0) ?(read_us = 250.0) ~clock () =
  { clock; write_us; read_us; blob = None; write_count = 0; free_at = 0.0 }

let reserve t dur =
  let start = Float.max (Clock.now t.clock) t.free_at in
  let finish = start +. dur in
  t.free_at <- finish;
  finish

let write t blob k =
  t.blob <- Some blob;
  t.write_count <- t.write_count + 1;
  Clock.schedule_at t.clock ~at:(reserve t t.write_us) k

let read t k =
  let blob = t.blob in
  Clock.schedule_at t.clock ~at:(reserve t t.read_us) (fun () -> k blob)

let writes t = t.write_count

let be64 v =
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 (Int64.of_int v);
  Bytes.unsafe_to_string b

let read_be64 s pos = Int64.to_int (Bytes.get_int64_be (Bytes.unsafe_of_string s) pos)

let block_key ~medium ~block = be64 medium ^ be64 block
let block_key_medium k = read_be64 k 0
let block_key_block k = read_be64 k 8

let medium_key id = be64 id
let medium_key_id k = read_be64 k 0

let segment_key id = be64 id
let segment_key_id k = read_be64 k 0

module Varint = Purity_util.Varint

type t = { segment : int; off : int; stored_len : int; index : int }

let encode t =
  let buf = Buffer.create 12 in
  Varint.write buf t.segment;
  Varint.write buf t.off;
  Varint.write buf t.stored_len;
  Varint.write buf t.index;
  Buffer.contents buf

let decode s =
  let buf = Bytes.unsafe_of_string s in
  let segment, p = Varint.read buf ~pos:0 in
  let off, p = Varint.read buf ~pos:p in
  let stored_len, p = Varint.read buf ~pos:p in
  let index, _ = Varint.read buf ~pos:p in
  { segment; off; stored_len; index }

let same_cblock a b = a.segment = b.segment && a.off = b.off

let pp ppf t = Fmt.pf ppf "seg%d@%d+%d[%d]" t.segment t.off t.stored_len t.index

(** Snapshot protection policies.

    The paper's arrays take snapshots and off-site copies on behalf of
    applications as a matter of course ("enterprise storage users
    frequently make clones, snapshots, and off-site copies of volumes to
    provide data resiliency", §1; automation is a selling point, §5.4).
    This scheduler snapshots protected volumes on a per-volume cadence
    and retains the newest [keep] snapshots — each expiry is a medium
    drop, i.e. one elide insert.

    Snapshots are named [<volume>.auto-<n>]; [n] never repeats.

    An active policy reschedules itself forever, so drive the clock with
    {!Purity_sim.Clock.run_until} — [Clock.run] would never return. *)

type policy = {
  every_us : float;  (** snapshot cadence in simulated microseconds *)
  keep : int;  (** retained snapshots (> 0) *)
}

type t

val create : Flash_array.t -> t

val protect : t -> volume:string -> policy -> (unit, [ `No_such_volume | `Already ]) result
(** Start snapshotting the volume on its cadence (first snapshot one
    period from now). *)

val unprotect : t -> volume:string -> unit
(** Stop scheduling; existing snapshots are kept. *)

val stop : t -> unit
(** Stop all scheduling (the ticker also stops when nothing is
    protected). *)

val snapshots : t -> volume:string -> string list
(** Retained automatic snapshots, oldest first. *)

val taken : t -> int
(** Total automatic snapshots ever taken. *)

lib/core/protection.ml: Flash_array Hashtbl List Printf Purity_sim

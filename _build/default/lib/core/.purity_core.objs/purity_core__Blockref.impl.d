lib/core/blockref.ml: Buffer Bytes Fmt Purity_util

lib/core/scrub.ml: Array Clock Drive Gc Hashtbl Lazy List Segment Shelf State Writer

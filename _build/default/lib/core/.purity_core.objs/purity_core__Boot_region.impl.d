lib/core/boot_region.ml: Float Purity_sim

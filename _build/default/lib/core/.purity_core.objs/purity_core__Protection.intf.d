lib/core/protection.mli: Flash_array

lib/core/gc.ml: Allocator Array Blockref Bytes Checkpoint Clock Dedup Drive Float Hashtbl Io Keys List Medium Purity_util Pyramid Segment Shelf State String Writer

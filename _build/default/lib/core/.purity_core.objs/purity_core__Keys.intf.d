lib/core/keys.mli:

lib/core/checkpoint.ml: Allocator Array Boot_region Clock Drive Hashtbl Int Keys Layout List Medium Patch Purity_encoding Pyramid Segment Shelf State String Writer

lib/core/read_path.ml: Blockref Bytes Cblock Clock Hashtbl Io List Purity_util State String Writer

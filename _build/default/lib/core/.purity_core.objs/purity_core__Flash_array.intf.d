lib/core/flash_array.mli: Checkpoint Gc Purity_dedup Purity_sched Purity_sim Purity_ssd Purity_util Read_path Recovery Scrub State Write_path

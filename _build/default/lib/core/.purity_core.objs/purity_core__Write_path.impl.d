lib/core/write_path.ml: Array Blockref Buffer Bytes Cblock Clock Dedup Hashtbl Keys List Medium Nvram Purity_pyramid Purity_util State String Varint

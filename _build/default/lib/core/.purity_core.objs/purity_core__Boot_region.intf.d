lib/core/boot_region.mli: Purity_sim

lib/core/blockref.mli: Fmt

lib/core/keys.ml: Bytes Int64

lib/replication/replication.mli: Purity_core

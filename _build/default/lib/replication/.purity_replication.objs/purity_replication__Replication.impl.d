lib/replication/replication.ml: Float Hashtbl Int List Option Printf Purity_core Purity_medium Purity_pyramid Purity_sim Set String

lib/pyramid/fact.ml: Buffer Bytes Fmt Int64 Purity_util String

lib/pyramid/patch.mli: Fact

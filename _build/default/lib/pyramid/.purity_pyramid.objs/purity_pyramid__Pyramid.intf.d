lib/pyramid/pyramid.mli: Fact Patch Purity_encoding

lib/pyramid/seqno.mli:

lib/pyramid/patch.ml: Array Buffer Bytes Char Fact Int32 Int64 List Purity_util Seq String

lib/pyramid/fact.mli: Buffer Fmt

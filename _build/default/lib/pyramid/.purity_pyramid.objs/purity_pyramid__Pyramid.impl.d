lib/pyramid/pyramid.ml: Fact Hashtbl Int64 List Option Patch Purity_encoding String

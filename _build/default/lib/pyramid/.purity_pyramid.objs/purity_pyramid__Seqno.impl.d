lib/pyramid/seqno.ml: Int64

module Varint = Purity_util.Varint
module Crc32c = Purity_util.Crc32c

type t = Fact.t array (* sorted by (key asc, seq desc), no (key,seq) dups *)

let empty = [||]
let count = Array.length
let is_empty t = Array.length t = 0

let dedup_sorted facts =
  (* facts sorted by compare_key_seq; drop exact (key, seq) duplicates. *)
  let out = ref [] in
  Array.iter
    (fun f ->
      match !out with
      | prev :: _ when prev.Fact.key = f.Fact.key && Int64.equal prev.Fact.seq f.Fact.seq -> ()
      | _ -> out := f :: !out)
    facts;
  Array.of_list (List.rev !out)

let of_facts facts =
  let a = Array.of_list facts in
  Array.sort Fact.compare_key_seq a;
  dedup_sorted a

let seq_range t =
  if is_empty t then None
  else begin
    let lo = ref (t.(0)).Fact.seq and hi = ref (t.(0)).Fact.seq in
    Array.iter
      (fun f ->
        if Int64.compare f.Fact.seq !lo < 0 then lo := f.Fact.seq;
        if Int64.compare f.Fact.seq !hi > 0 then hi := f.Fact.seq)
      t;
    Some (!lo, !hi)
  end

let key_range t =
  if is_empty t then None else Some ((t.(0)).Fact.key, (t.(Array.length t - 1)).Fact.key)

(* Index of the first fact with key >= [key]. *)
let lower_bound t key =
  let lo = ref 0 and hi = ref (Array.length t) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if String.compare (t.(mid)).Fact.key key < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let find t key =
  let i = ref (lower_bound t key) in
  let acc = ref [] in
  while !i < Array.length t && (t.(!i)).Fact.key = key do
    acc := t.(!i) :: !acc;
    incr i
  done;
  List.rev !acc

let find_latest t key =
  let i = lower_bound t key in
  if i < Array.length t && (t.(i)).Fact.key = key then Some t.(i) else None

let iter t f = Array.iter f t
let fold f init t = Array.fold_left f init t
let to_list t = Array.to_list t
let get t i = t.(i)

let range t ~lo ~hi =
  let i = ref (lower_bound t lo) in
  let acc = ref [] in
  while !i < Array.length t && String.compare (t.(!i)).Fact.key hi <= 0 do
    acc := t.(!i) :: !acc;
    incr i
  done;
  List.rev !acc

let merge a b =
  (* Linear merge of two sorted runs, dropping (key, seq) duplicates. *)
  let na = Array.length a and nb = Array.length b in
  let out = ref [] in
  let push f =
    match !out with
    | prev :: _ when prev.Fact.key = f.Fact.key && Int64.equal prev.Fact.seq f.Fact.seq -> ()
    | _ -> out := f :: !out
  in
  let i = ref 0 and j = ref 0 in
  while !i < na || !j < nb do
    if !i >= na then begin
      push b.(!j);
      incr j
    end
    else if !j >= nb then begin
      push a.(!i);
      incr i
    end
    else if Fact.compare_key_seq a.(!i) b.(!j) <= 0 then begin
      push a.(!i);
      incr i
    end
    else begin
      push b.(!j);
      incr j
    end
  done;
  Array.of_list (List.rev !out)

let merge_many ts = List.fold_left merge empty ts

let filter t pred = Array.of_seq (Seq.filter pred (Array.to_seq t))

let compact_latest t ~drop_tombstones =
  let out = ref [] in
  let last_key = ref None in
  Array.iter
    (fun f ->
      let fresh = match !last_key with Some k -> k <> f.Fact.key | None -> true in
      if fresh then begin
        last_key := Some f.Fact.key;
        if not (drop_tombstones && Fact.is_tombstone f) then out := f :: !out
      end)
    t;
  Array.of_list (List.rev !out)

let serialize t =
  let body = Buffer.create (64 * Array.length t) in
  Varint.write body (Array.length t);
  Array.iter (fun f -> Fact.encode body f) t;
  let payload = Buffer.contents body in
  let out = Buffer.create (String.length payload + 8) in
  Varint.write out (String.length payload);
  let crc = Crc32c.digest_string payload in
  for shift = 0 to 3 do
    Buffer.add_char out
      (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical crc (8 * shift)) 0xFFl)))
  done;
  Buffer.add_string out payload;
  Buffer.contents out

let deserialize s =
  let buf = Bytes.unsafe_of_string s in
  let payload_len, p = Varint.read buf ~pos:0 in
  if p + 4 + payload_len > Bytes.length buf then invalid_arg "Patch.deserialize: truncated";
  let crc_stored =
    let b i = Int32.of_int (Bytes.get_uint8 buf (p + i)) in
    Int32.logor (b 0)
      (Int32.logor
         (Int32.shift_left (b 1) 8)
         (Int32.logor (Int32.shift_left (b 2) 16) (Int32.shift_left (b 3) 24)))
  in
  let payload_pos = p + 4 in
  if Crc32c.update 0l buf ~pos:payload_pos ~len:payload_len <> crc_stored then
    invalid_arg "Patch.deserialize: CRC mismatch";
  let n, pos = Varint.read buf ~pos:payload_pos in
  let facts = ref [] in
  let p = ref pos in
  for _ = 1 to n do
    let f, next = Fact.decode buf ~pos:!p in
    facts := f :: !facts;
    p := next
  done;
  of_facts (List.rev !facts)

(** Immutable facts: the only unit of persistent mutation in Purity.

    Paper §3.2: "Purity represents all persistent data as immutable facts
    (tuples). Deletions are represented as immutable retractions." Every
    fact carries a sequence number from the array-wide counter, so any set
    of facts has a well-defined most-recent state regardless of the order
    in which the facts are (re)discovered — insertion is idempotent and
    commutative, which is what makes recovery a set union (§4.3).

    A fact with [value = None] is a tombstone retraction; pyramids
    configured with elision never produce them (elide tables carry the
    retractions instead). *)

type t = { key : string; value : string option; seq : int64 }

val make : key:string -> value:string -> seq:int64 -> t
val tombstone : key:string -> seq:int64 -> t
val is_tombstone : t -> bool

val compare_key_seq : t -> t -> int
(** Order by key ascending, then sequence number descending — the patch
    layout order, which puts the newest fact for a key first. *)

val equal : t -> t -> bool

val encode : Buffer.t -> t -> unit
(** Append a self-framing binary encoding (used in NVRAM payloads and
    segment log records). *)

val decode : bytes -> pos:int -> t * int
(** Parse one encoded fact; returns it and the offset just past it.
    @raise Invalid_argument on truncated input. *)

val pp : t Fmt.t

type t = { mutable last : int64 }

let create () = { last = 0L }

let next t =
  t.last <- Int64.add t.last 1L;
  t.last

let next_batch t n =
  if n <= 0 then invalid_arg "Seqno.next_batch";
  let first = Int64.add t.last 1L in
  t.last <- Int64.add t.last (Int64.of_int n);
  (first, t.last)

let current t = t.last

let restore_at_least t seq =
  if Int64.compare seq t.last > 0 then t.last <- seq

(** Patches: the sorted immutable runs a pyramid is built from.

    Paper §4.8: "Patches are analogous to levels or components in other
    LSM-Tree implementations, and describe differences between the
    previous version of the pyramid and the new one. We track key ranges
    and sequence numbers for each patch."

    A patch is an immutable array of facts sorted by (key asc, seq desc).
    Duplicate (key, seq) facts collapse to one — re-inserting a fact is a
    no-op, the idempotence recovery relies on. *)

type t

val of_facts : Fact.t list -> t
(** Sort, deduplicate and freeze a batch of facts. *)

val empty : t
val count : t -> int
val is_empty : t -> bool

val seq_range : t -> (int64 * int64) option
(** Smallest and largest sequence number, [None] when empty. *)

val key_range : t -> (string * string) option

val find : t -> string -> Fact.t list
(** All facts for a key, newest (highest seq) first. *)

val find_latest : t -> string -> Fact.t option

val iter : t -> (Fact.t -> unit) -> unit
(** In patch order. *)

val fold : ('a -> Fact.t -> 'a) -> 'a -> t -> 'a
val to_list : t -> Fact.t list
val get : t -> int -> Fact.t

val range : t -> lo:string -> hi:string -> Fact.t list
(** Facts with [lo <= key <= hi], in patch order. *)

val merge : t -> t -> t
(** Combine two patches (the pyramid's merge operation). Commutative,
    associative and idempotent — merging a patch with itself, or replaying
    a merge, yields the same result. *)

val merge_many : t list -> t

val filter : t -> (Fact.t -> bool) -> t
(** Keep only matching facts (elide-aware flatten uses this). *)

val compact_latest : t -> drop_tombstones:bool -> t
(** Keep only the newest fact per key — valid only at the bottom of a
    pyramid, where no older level can resurrect superseded facts. With
    [drop_tombstones] the retractions themselves are discarded too. *)

val serialize : t -> string
val deserialize : string -> t
(** @raise Invalid_argument on malformed input (CRC-checked). *)

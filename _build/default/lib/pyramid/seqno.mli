(** The array-wide sequence number source.

    Paper §3.2: sequence numbers are the single "controlled source of
    non-monotonicity" — the only thing in the system whose value changes
    over time. Every persisted fact carries one; writes become visible in
    sequence order; recovery re-derives the counter as the max over all
    rediscovered facts. Sequence numbers are never reused (§4.10), which
    is what bounds elide tables. *)

type t

val create : unit -> t
(** Counter starting at 1. *)

val next : t -> int64
(** Allocate one sequence number. *)

val next_batch : t -> int -> int64 * int64
(** [next_batch t n] allocates [n] consecutive numbers and returns
    [(first, last)]; a persist operation stamps a whole batch of tuples
    this way (§4.8). [n] must be positive. *)

val current : t -> int64
(** Highest number allocated so far (0 if none). *)

val restore_at_least : t -> int64 -> unit
(** Recovery: advance the counter so it is strictly above every
    rediscovered sequence number. Never moves backwards. *)

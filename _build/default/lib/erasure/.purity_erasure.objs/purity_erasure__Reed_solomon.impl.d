lib/erasure/reed_solomon.ml: Array Bytes Gf256 List Option String

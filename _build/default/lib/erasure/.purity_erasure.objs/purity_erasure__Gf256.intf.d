lib/erasure/gf256.mli:

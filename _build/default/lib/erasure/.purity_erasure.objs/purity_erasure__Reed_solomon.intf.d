lib/erasure/reed_solomon.mli:

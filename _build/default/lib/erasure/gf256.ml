let poly = 0x11D

(* exp table doubled to avoid the mod 255 in mul's hot path. *)
let exp_table = Array.make 512 0
let log_table = Array.make 256 0

let () =
  let x = ref 1 in
  for i = 0 to 254 do
    exp_table.(i) <- !x;
    log_table.(!x) <- i;
    x := !x lsl 1;
    if !x land 0x100 <> 0 then x := !x lxor poly
  done;
  for i = 255 to 511 do
    exp_table.(i) <- exp_table.(i - 255)
  done

let add a b = a lxor b

let mul a b =
  if a = 0 || b = 0 then 0 else exp_table.(log_table.(a) + log_table.(b))

let div a b =
  if b = 0 then raise Division_by_zero
  else if a = 0 then 0
  else exp_table.(log_table.(a) - log_table.(b) + 255)

let inv a = div 1 a

let exp i =
  let i = ((i mod 255) + 255) mod 255 in
  exp_table.(i)

let mul_slice c ~src ~dst =
  let n = Bytes.length src in
  assert (Bytes.length dst = n);
  if c = 1 then
    for i = 0 to n - 1 do
      Bytes.unsafe_set dst i
        (Char.unsafe_chr
           (Char.code (Bytes.unsafe_get dst i) lxor Char.code (Bytes.unsafe_get src i)))
    done
  else if c <> 0 then begin
    let logc = log_table.(c) in
    for i = 0 to n - 1 do
      let s = Char.code (Bytes.unsafe_get src i) in
      if s <> 0 then begin
        let p = exp_table.(logc + log_table.(s)) in
        Bytes.unsafe_set dst i
          (Char.unsafe_chr (Char.code (Bytes.unsafe_get dst i) lxor p))
      end
    done
  end

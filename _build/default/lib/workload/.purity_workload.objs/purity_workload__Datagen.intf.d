lib/workload/datagen.mli:

lib/workload/datagen.ml: Array Buffer Bytes Lazy Printf Purity_util String

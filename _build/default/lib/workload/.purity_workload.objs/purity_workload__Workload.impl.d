lib/workload/workload.ml: Array Buffer Bytes Datagen Fmt Hashtbl List Option Purity_core Purity_sim Purity_util String

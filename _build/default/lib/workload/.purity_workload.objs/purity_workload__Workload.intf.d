lib/workload/workload.mli: Datagen Fmt Purity_core Purity_util

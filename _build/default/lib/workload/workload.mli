(** Workload generators and a closed-loop runner.

    Generators produce streams of block-level operations against a
    {!Purity_core.Flash_array.t}; the runner keeps a fixed number
    outstanding (a closed loop, like the iSCSI initiators in the paper's
    benchmarks) and reports simulated IOPS, bandwidth, and latency
    percentiles. *)

type op =
  | Read of { volume : string; block : int; nblocks : int }
  | Write of { volume : string; block : int; data : string }

type t
(** A workload: a stateful op generator over one or more volumes. *)

val next_op : t -> op

(** {1 Built-in workloads}

    All sizes in 512 B blocks. Each [make_*] assumes its volumes already
    exist on the array (see {!provision}). *)

val uniform :
  seed:int64 ->
  volumes:(string * int) list ->
  read_fraction:float ->
  io_blocks:int ->
  unit ->
  t
(** Uniformly random offsets, fixed I/O size, incompressible data — the
    worst case for data reduction, the baseline for performance runs
    (the paper's "32 KiB random I/O" benchmark is [io_blocks = 64]). *)

val oltp : seed:int64 -> volumes:(string * int) list -> unit -> t
(** OLTP-ish: 70% reads, Zipf-skewed 16 KiB pages (8 KiB–32 KiB mix),
    RDBMS-page data (compresses 3–8x). *)

val docstore : seed:int64 -> volumes:(string * int) list -> unit -> t
(** Document-store-ish: 50% reads, larger appends-heavy writes of JSON-ish
    data (~10x compressible). *)

val vdi :
  seed:int64 -> volumes:(string * int) list -> datagen:Datagen.t -> unit -> t
(** Virtual-desktop-ish: 80% reads; writes are OS-image blocks drawn from
    the shared pool, so concurrent desktops deduplicate heavily. *)

val provision :
  Purity_core.Flash_array.t -> volumes:(string * int) list -> unit
(** Create the volumes a workload expects.
    @raise Invalid_argument if a volume already exists. *)

(** {1 Closed-loop runner} *)

type report = {
  ops : int;
  read_ops : int;
  write_ops : int;
  errors : int;
  elapsed_us : float;  (** simulated *)
  iops : float;
  bytes_moved : int;
  throughput_mb_s : float;  (** simulated *)
  read_lat : Purity_util.Histogram.t;  (** per-op, microseconds *)
  write_lat : Purity_util.Histogram.t;
}

val run :
  Purity_core.Flash_array.t ->
  t ->
  ops:int ->
  concurrency:int ->
  (report -> unit) ->
  unit
(** Issue [ops] operations keeping [concurrency] outstanding; the
    callback fires (and the clock can be drained) when all complete. *)

val pp_report : report Fmt.t

module Rng = Purity_util.Rng
module Clock = Purity_sim.Clock
module Histogram = Purity_util.Histogram
module Fa = Purity_core.Flash_array

type op =
  | Read of { volume : string; block : int; nblocks : int }
  | Write of { volume : string; block : int; data : string }

type t = { gen : unit -> op }

let next_op t = t.gen ()

let pick_volume rng volumes =
  let n = Array.length volumes in
  volumes.(Rng.int rng n)

(* Choose an io-sized offset so ops never cross the volume end. *)
let offset_for rng size io_blocks ~zipf_skew =
  let slots = max 1 ((size - io_blocks) / io_blocks + 1) in
  let slot =
    if zipf_skew > 0.0 then Rng.zipf rng ~n:slots ~theta:zipf_skew else Rng.int rng slots
  in
  slot * io_blocks

let uniform ~seed ~volumes ~read_fraction ~io_blocks () =
  let rng = Rng.create ~seed in
  let data_rng = Rng.split rng in
  let vols = Array.of_list volumes in
  let gen () =
    let name, size = pick_volume rng vols in
    let block = offset_for rng size io_blocks ~zipf_skew:0.0 in
    if Rng.float rng 1.0 < read_fraction then Read { volume = name; block; nblocks = io_blocks }
    else
      Write
        { volume = name; block; data = Bytes.to_string (Rng.bytes data_rng (io_blocks * 512)) }
  in
  { gen }

let oltp ~seed ~volumes () =
  let rng = Rng.create ~seed in
  let dg = Datagen.create ~seed:(Rng.next_int64 rng) in
  let vols = Array.of_list volumes in
  let gen () =
    let name, size = pick_volume rng vols in
    (* 8, 16 or 32 KiB pages, skewed towards 16 *)
    let io_blocks = match Rng.int rng 4 with 0 -> 16 | 3 -> 64 | _ -> 32 in
    let block = offset_for rng size io_blocks ~zipf_skew:0.9 in
    if Rng.float rng 1.0 < 0.7 then Read { volume = name; block; nblocks = io_blocks }
    else Write { volume = name; block; data = Datagen.rdbms_page dg (io_blocks * 512) }
  in
  { gen }

let docstore ~seed ~volumes () =
  let rng = Rng.create ~seed in
  let dg = Datagen.create ~seed:(Rng.next_int64 rng) in
  let vols = Array.of_list volumes in
  let cursors = Hashtbl.create 8 in
  let gen () =
    let name, size = pick_volume rng vols in
    let io_blocks = 64 + (64 * Rng.int rng 2) in
    if Rng.float rng 1.0 < 0.5 then begin
      let block = offset_for rng size io_blocks ~zipf_skew:0.5 in
      Read { volume = name; block; nblocks = io_blocks }
    end
    else begin
      (* append-mostly write pattern, wrapping at the end *)
      let cursor = Option.value ~default:0 (Hashtbl.find_opt cursors name) in
      let block = if cursor + io_blocks > size then 0 else cursor in
      Hashtbl.replace cursors name (block + io_blocks);
      Write { volume = name; block; data = Datagen.document dg (io_blocks * 512) }
    end
  in
  { gen }

let vdi ~seed ~volumes ~datagen () =
  let rng = Rng.create ~seed in
  let vols = Array.of_list volumes in
  let gen () =
    let name, size = pick_volume rng vols in
    let io_blocks = 32 in
    let block = offset_for rng size io_blocks ~zipf_skew:0.7 in
    if Rng.float rng 1.0 < 0.8 then Read { volume = name; block; nblocks = io_blocks }
    else begin
      (* desktops rewrite OS-image content: highly duplicated across VMs *)
      let b = Buffer.create (io_blocks * 512) in
      let base = Rng.int rng 224 in
      for i = 0 to io_blocks - 1 do
        Buffer.add_string b (Datagen.os_image_block datagen (base + i))
      done;
      Write { volume = name; block; data = Buffer.contents b }
    end
  in
  { gen }

let provision array ~volumes =
  List.iter
    (fun (name, blocks) ->
      match Fa.create_volume array name ~blocks with
      | Ok () -> ()
      | Error _ -> invalid_arg ("Workload.provision: cannot create " ^ name))
    volumes

type report = {
  ops : int;
  read_ops : int;
  write_ops : int;
  errors : int;
  elapsed_us : float;
  iops : float;
  bytes_moved : int;
  throughput_mb_s : float;
  read_lat : Histogram.t;
  write_lat : Histogram.t;
}

let run array t ~ops ~concurrency k =
  let clock = Fa.clock array in
  let start = Clock.now clock in
  let issued = ref 0 in
  let completed = ref 0 in
  let reads = ref 0 and writes = ref 0 and errors = ref 0 and bytes = ref 0 in
  let read_lat = Histogram.create () and write_lat = Histogram.create () in
  let finish () =
    let elapsed = Clock.now clock -. start in
    k
      {
        ops = !completed;
        read_ops = !reads;
        write_ops = !writes;
        errors = !errors;
        elapsed_us = elapsed;
        iops = (if elapsed > 0.0 then float_of_int !completed /. (elapsed /. 1e6) else 0.0);
        bytes_moved = !bytes;
        throughput_mb_s =
          (if elapsed > 0.0 then float_of_int !bytes /. 1048576.0 /. (elapsed /. 1e6) else 0.0);
        read_lat;
        write_lat;
      }
  in
  let rec pump () =
    if !issued < ops then begin
      incr issued;
      let op_start = Clock.now clock in
      let complete hist n_bytes result =
        (match result with
        | Ok () -> Histogram.record hist (Clock.now clock -. op_start)
        | Error () -> incr errors);
        bytes := !bytes + n_bytes;
        incr completed;
        if !completed = ops then finish () else pump ()
      in
      match next_op t with
      | Read { volume; block; nblocks } ->
        incr reads;
        Fa.read array ~volume ~block ~nblocks (fun r ->
            complete read_lat (nblocks * 512)
              (match r with Ok _ -> Ok () | Error _ -> Error ()))
      | Write { volume; block; data } ->
        incr writes;
        (* back-pressure (`Backpressure = NVRAM full behind the segment
           writer) is not a failure: retry after a short pause, like an
           initiator would *)
        let rec attempt tries =
          Fa.write array ~volume ~block data (fun r ->
              match r with
              | Ok () -> complete write_lat (String.length data) (Ok ())
              | Error `Backpressure when tries < 200 ->
                Clock.schedule clock ~delay:200.0 (fun () -> attempt (tries + 1))
              | Error _ -> complete write_lat (String.length data) (Error ()))
        in
        attempt 0
    end
  in
  if ops = 0 then finish ()
  else
    for _ = 1 to min concurrency ops do
      pump ()
    done

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>ops=%d (r=%d w=%d err=%d) elapsed=%.1f ms iops=%.0f thr=%.1f MB/s@,\
     read  lat: %a@,write lat: %a@]"
    r.ops r.read_ops r.write_ops r.errors (r.elapsed_us /. 1000.0) r.iops r.throughput_mb_s
    Histogram.pp_summary r.read_lat Histogram.pp_summary r.write_lat

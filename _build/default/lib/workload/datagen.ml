module Rng = Purity_util.Rng

type t = { rng : Rng.t; os_pool : string array Lazy.t }

let block = 512

let make_os_pool rng =
  (* 256 distinct "OS file" blocks; text-like so they also compress *)
  Array.init 256 (fun i ->
      let b = Buffer.create block in
      Buffer.add_string b (Printf.sprintf "OSFILE[%03d] " i);
      while Buffer.length b < block do
        Buffer.add_string b
          (Printf.sprintf "lib%02d.so segment %04d; " (Rng.int rng 40) (Rng.int rng 9999))
      done;
      Buffer.sub b 0 block)

let create ~seed =
  let rng = Rng.create ~seed in
  let pool_rng = Rng.split rng in
  { rng; os_pool = lazy (make_os_pool pool_rng) }

let random t len = Bytes.to_string (Rng.bytes t.rng len)

let compressible t len ~target_ratio =
  if target_ratio <= 1.0 then random t len
  else begin
    (* interleave random spans (incompressible) with a repeated template;
       random fraction ~ 1/ratio gives roughly the requested ratio *)
    let template = "the-quick-brown-fox-0123456789-" in
    let random_fraction = 1.0 /. target_ratio in
    let b = Buffer.create len in
    while Buffer.length b < len do
      if Rng.float t.rng 1.0 < random_fraction then
        Buffer.add_string b (Bytes.to_string (Rng.bytes t.rng 32))
      else Buffer.add_string b template
    done;
    Buffer.sub b 0 len
  end

let rdbms_page t len =
  let b = Buffer.create len in
  Buffer.add_string b (Printf.sprintf "PAGEHDR|lsn=%016Ld|slots=064|" (Rng.next_int64 t.rng));
  let statuses = [| "ACTIVE "; "DELETED"; "PENDING" |] in
  while Buffer.length b < len * 13 / 16 do
    Buffer.add_string b
      (Printf.sprintf "row|id=%08d|st=%s|bal=%06d|name=customer_%04d|pad=%s|"
         (Rng.int t.rng 100_000_000)
         statuses.(Rng.int t.rng 3)
         (Rng.int t.rng 999_999) (Rng.int t.rng 10_000)
         (String.make 8 ' '))
  done;
  (* a little high-entropy payload, then zero free space *)
  Buffer.add_string b (Bytes.to_string (Rng.bytes t.rng (len / 32)));
  let s = Buffer.contents b in
  if String.length s >= len then String.sub s 0 len
  else s ^ String.make (len - String.length s) '\000'

let document t len =
  let b = Buffer.create len in
  let kinds = [| "click"; "view"; "purchase"; "refund" |] in
  while Buffer.length b < len do
    (* documents repeat their schema: long fixed field names and enum
       values dominate, with a few short variable fields *)
    Buffer.add_string b
      (Printf.sprintf
         "{\"_id\":\"%06x\",\"event_type\":\"%s\",\"timestamp_utc\":%d,\"session\":{\"user_identifier\":%d,\"subscription_tier\":\"gold\",\"experiment_buckets\":[\"control\",\"holdback\"],\"client\":{\"platform\":\"web\",\"locale\":\"en-US\",\"app_version\":\"4.12.0\"}},\"labels\":[\"alpha\",\"beta\",\"gamma\"],\"schema_version\":7}"
         (Rng.int t.rng 0xFFFFF)
         kinds.(Rng.int t.rng 4)
         (1700000000 + Rng.int t.rng 10000)
         (Rng.int t.rng 5000))
  done;
  Buffer.sub b 0 len

let os_image_block t i =
  let pool = Lazy.force t.os_pool in
  pool.(((i mod Array.length pool) + Array.length pool) mod Array.length pool)

let vm_image t ~blocks =
  let b = Buffer.create (blocks * block) in
  for i = 0 to blocks - 1 do
    if Rng.float t.rng 1.0 < 0.95 then
      (* shared OS content, in file-sized runs so dedup anchors land *)
      Buffer.add_string b (os_image_block t (i / 16 * 16 mod 256 + (i mod 16)))
    else
      (* machine-unique block (logs, swap, config) *)
      Buffer.add_string b (Bytes.to_string (Rng.bytes t.rng block))
  done;
  Buffer.contents b

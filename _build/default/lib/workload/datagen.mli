(** Synthetic data with controlled compressibility and duplication.

    The paper's data-reduction numbers come from workload structure:
    relational pages compress 3–8×, document stores ~10×, VDI images
    dedup up to 20× (§4.7, §5.2–5.3). These generators synthesise data
    with the same structure so the reduction experiments (E8) exercise
    the real compression/dedup machinery rather than asserting ratios. *)

type t

val create : seed:int64 -> t

val random : t -> int -> string
(** Incompressible, never-duplicated bytes. *)

val compressible : t -> int -> target_ratio:float -> string
(** Bytes that the LZ codec compresses at roughly [target_ratio]:1
    (achieved by mixing random spans into a repetitive template). *)

val rdbms_page : t -> int -> string
(** A relational-database-page lookalike: structured header, fixed-width
    rows with low-cardinality columns, zero-padded free space. Compresses
    in the paper's 3–8x band; distinct pages rarely deduplicate. *)

val document : t -> int -> string
(** JSON-ish document-store data (repeated keys, enum values): ~10x
    compressible. *)

val os_image_block : t -> int -> string
(** A block drawn from a small shared pool of "operating system file"
    contents: different VMs writing OS files produce byte-identical
    blocks, the VDI dedup driver. *)

val vm_image : t -> blocks:int -> string
(** A whole VM image: mostly shared OS blocks with a sprinkle of
    machine-unique data. Two images from the same generator deduplicate
    heavily but not perfectly. *)

(** Discrete-event simulation clock.

    The paper's performance results come from a physical appliance; this
    reproduction substitutes a simulated timeline (see DESIGN.md). Every
    device and scheduler in the repository charges latency against one
    [Clock.t]; experiments read percentiles of simulated microseconds.

    Time is a float in microseconds. Events scheduled for the same instant
    fire in insertion order, so models behave deterministically. *)

type t

val create : unit -> t
val now : t -> float
(** Current simulated time in microseconds. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Run a callback [delay] microseconds from now. Negative delays clamp to
    zero (fire on the next [run] step). *)

val schedule_at : t -> at:float -> (unit -> unit) -> unit
(** Run a callback at an absolute time; times in the past clamp to now. *)

val run : t -> unit
(** Dispatch events until the queue is empty. *)

val run_until : t -> float -> unit
(** Dispatch events with time <= the given instant, then set the clock to
    that instant. *)

val step : t -> bool
(** Dispatch the single earliest event. Returns false if none is queued. *)

val pending : t -> int
(** Number of queued events. *)

val advance : t -> float -> unit
(** Move the clock forward by a duration with no event dispatch; used by
    synchronous models that compute a latency analytically. The clock never
    moves backwards. *)

lib/sim/clock.mli:

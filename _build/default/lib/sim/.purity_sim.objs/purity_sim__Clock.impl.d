lib/sim/clock.ml: Float Int Purity_util

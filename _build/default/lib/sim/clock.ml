type event = { time : float; seq : int; action : unit -> unit }

type t = {
  queue : event Purity_util.Heap.t;
  mutable now : float;
  mutable next_seq : int;
}

let cmp_event a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create () =
  { queue = Purity_util.Heap.create ~cmp:cmp_event; now = 0.0; next_seq = 0 }

let now t = t.now

let schedule_at t ~at action =
  let time = Float.max at t.now in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Purity_util.Heap.push t.queue { time; seq; action }

let schedule t ~delay action = schedule_at t ~at:(t.now +. Float.max delay 0.0) action

let step t =
  match Purity_util.Heap.pop t.queue with
  | None -> false
  | Some ev ->
    t.now <- Float.max t.now ev.time;
    ev.action ();
    true

let run t = while step t do () done

let run_until t stop =
  let continue = ref true in
  while !continue do
    match Purity_util.Heap.peek t.queue with
    | Some ev when ev.time <= stop -> ignore (step t)
    | _ -> continue := false
  done;
  t.now <- Float.max t.now stop

let pending t = Purity_util.Heap.length t.queue

let advance t d = if d > 0.0 then t.now <- t.now +. d

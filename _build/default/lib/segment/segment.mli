(** Segment metadata and self-describing headers (paper §4.2–4.3).

    Every member AU of a segment starts with a header page carrying the
    full segment description — id, member (drive, AU) list, payload and
    log-region extents, and the sequence-number range of the log records
    inside. "Segments are self-describing": recovery can reconstruct the
    system's state by scanning headers alone, and any single surviving
    member is enough to describe the whole segment. *)

type member = { drive : int; au : int }

type t = {
  id : int;
  members : member array;  (** index = shard column (0..k-1 data, then parity) *)
  payload_len : int;  (** bytes of payload actually written *)
  log_off : int;  (** start of the log-record region within the payload *)
  log_len : int;
  seq_lo : int64;  (** lowest sequence number in the log region (0 if none) *)
  seq_hi : int64;
}

val encode_header : Layout.t -> t -> shard:int -> bytes
(** Serialise the header page for one member (CRC-framed, padded to
    [layout.header_size]). *)

val decode_header : bytes -> t option
(** Parse a header page; [None] when the page is not a valid segment
    header (unwritten AU, torn write, CRC mismatch) — recovery treats
    those AUs as free. *)

val encode_compact : t -> string
(** Compact (unpadded) serialisation — the value stored in the segment
    table pyramid and the boot region's patch directory. *)

val decode_compact : string -> t
(** @raise Invalid_argument on malformed input. *)

val pp : t Fmt.t

(** Geometry of segments (paper §4.2, Figure 3).

    A segment is one allocation unit from each of [k + m] drives. The
    first [header_size] bytes of every member AU hold a copy of the
    segment header; the rest is split into rows of [write_unit]-sized
    chunks. Payload bytes fill the [k] data shards row by row
    (horizontally striped); each row also gets [m] Reed–Solomon parity
    write units, so losing any two drives loses nothing.

    Payload addressing: payload offset [p] lives in write unit
    [w = p / write_unit], which is row [w / k], column [w mod k], at byte
    [p mod write_unit] within the write unit. *)

type t = {
  k : int;  (** data shards per segment (paper: 7) *)
  m : int;  (** parity shards (paper: 2) *)
  write_unit : int;  (** bytes written to one SSD atomically (paper: 1 MiB) *)
  au_size : int;  (** allocation unit (paper: 8 MiB) *)
  header_size : int;  (** header copy at the front of each member AU *)
}

val make : ?k:int -> ?m:int -> ?write_unit:int -> ?header_size:int -> au_size:int -> unit -> t
(** Defaults: k=7, m=2, write_unit=64 KiB, header=4 KiB. [write_unit] must
    divide [au_size - header_size]. @raise Invalid_argument otherwise. *)

val members : t -> int
(** [k + m]. *)

val rows : t -> int
(** Write-unit rows per shard. *)

val payload_capacity : t -> int
(** Application-payload bytes one segment can hold: [k * rows * write_unit]. *)

type location = {
  column : int;  (** shard index: 0..k-1 data, k..k+m-1 parity *)
  au_offset : int;  (** byte offset within the member AU *)
  length : int;
}

val locate : t -> off:int -> len:int -> location list
(** Map a payload byte range onto per-shard chunks, splitting at
    write-unit boundaries. @raise Invalid_argument when out of bounds. *)

val row_of_offset : t -> int -> int
(** Which row the payload offset falls in. *)

val row_chunk : t -> row:int -> within:int -> len:int -> column:int -> location
(** Location of the byte range [\[within, within+len)] of the write unit
    at ([row], [column]); used to read sibling shards for reconstruction. *)

type t = { k : int; m : int; write_unit : int; au_size : int; header_size : int }

let make ?(k = 7) ?(m = 2) ?(write_unit = 64 * 1024) ?(header_size = 4096) ~au_size () =
  if k <= 0 || m <= 0 then invalid_arg "Layout.make: k and m must be positive";
  if header_size >= au_size then invalid_arg "Layout.make: header exceeds AU";
  if (au_size - header_size) mod write_unit <> 0 then
    invalid_arg "Layout.make: write_unit must divide au_size - header_size";
  { k; m; write_unit; au_size; header_size }

let members t = t.k + t.m
let rows t = (t.au_size - t.header_size) / t.write_unit
let payload_capacity t = t.k * rows t * t.write_unit

type location = { column : int; au_offset : int; length : int }

let row_chunk t ~row ~within ~len ~column =
  { column; au_offset = t.header_size + (row * t.write_unit) + within; length = len }

let row_of_offset t off = off / t.write_unit / t.k

let locate t ~off ~len =
  if off < 0 || len < 0 || off + len > payload_capacity t then
    invalid_arg "Layout.locate: out of bounds";
  let acc = ref [] in
  let p = ref off in
  let remaining = ref len in
  while !remaining > 0 do
    let w = !p / t.write_unit in
    let within = !p mod t.write_unit in
    let row = w / t.k and column = w mod t.k in
    let chunk = min !remaining (t.write_unit - within) in
    acc := row_chunk t ~row ~within ~len:chunk ~column :: !acc;
    p := !p + chunk;
    remaining := !remaining - chunk
  done;
  List.rev !acc

lib/segment/layout.mli:

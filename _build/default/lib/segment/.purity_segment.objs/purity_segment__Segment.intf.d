lib/segment/segment.mli: Fmt Layout

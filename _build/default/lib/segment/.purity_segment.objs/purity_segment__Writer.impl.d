lib/segment/writer.ml: Array Buffer Bytes Int64 Layout List Purity_erasure Purity_ssd Purity_util Queue Segment String

lib/segment/scan.mli: Layout Purity_ssd Segment

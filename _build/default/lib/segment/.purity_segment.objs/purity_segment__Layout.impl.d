lib/segment/layout.ml: List

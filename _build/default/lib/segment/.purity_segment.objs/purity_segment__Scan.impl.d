lib/segment/scan.ml: Array Hashtbl Int Layout List Purity_ssd Segment

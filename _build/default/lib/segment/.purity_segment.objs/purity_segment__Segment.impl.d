lib/segment/segment.ml: Array Buffer Bytes Fmt Int32 Layout Purity_util String

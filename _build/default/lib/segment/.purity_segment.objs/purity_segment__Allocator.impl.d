lib/segment/allocator.ml: Array Buffer Bytes Hashtbl Layout List Purity_util Queue Segment

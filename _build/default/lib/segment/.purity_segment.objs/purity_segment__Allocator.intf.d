lib/segment/allocator.mli: Layout Segment

lib/segment/writer.mli: Layout Purity_erasure Purity_ssd Segment

(* Table-driven CRC-32C with the Castagnoli polynomial (reflected 0x82F63B78). *)

let table =
  lazy
    (let t = Array.make 256 0l in
     for n = 0 to 255 do
       let c = ref (Int32.of_int n) in
       for _ = 0 to 7 do
         c :=
           if Int32.logand !c 1l <> 0l then
             Int32.logxor 0x82F63B78l (Int32.shift_right_logical !c 1)
           else Int32.shift_right_logical !c 1
       done;
       t.(n) <- !c
     done;
     t)

let update crc buf ~pos ~len =
  assert (pos >= 0 && len >= 0 && pos + len <= Bytes.length buf);
  let t = Lazy.force table in
  let c = ref (Int32.logxor crc 0xFFFFFFFFl) in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Bytes.get_uint8 buf i))) 0xFFl)
    in
    c := Int32.logxor t.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.logxor !c 0xFFFFFFFFl

let digest buf ~pos ~len = update 0l buf ~pos ~len

let digest_string s =
  digest (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

let write_i64 buf v =
  let v = ref v in
  let continue = ref true in
  while !continue do
    let low = Int64.to_int (Int64.logand !v 0x7FL) in
    v := Int64.shift_right_logical !v 7;
    if !v = 0L then begin
      Buffer.add_char buf (Char.chr low);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (low lor 0x80))
  done

let write buf v =
  if v < 0 then invalid_arg "Varint.write: negative";
  write_i64 buf (Int64.of_int v)

let read_i64 buf ~pos =
  let v = ref 0L in
  let shift = ref 0 in
  let p = ref pos in
  let result = ref None in
  while !result = None do
    if !p >= Bytes.length buf then invalid_arg "Varint.read: truncated";
    if !shift > 63 then invalid_arg "Varint.read: overflow";
    let b = Bytes.get_uint8 buf !p in
    incr p;
    v := Int64.logor !v (Int64.shift_left (Int64.of_int (b land 0x7F)) !shift);
    shift := !shift + 7;
    if b land 0x80 = 0 then result := Some (!v, !p)
  done;
  Option.get !result

let read buf ~pos =
  let v, next = read_i64 buf ~pos in
  (Int64.to_int v, next)

let size v =
  if v < 0 then invalid_arg "Varint.size: negative";
  let rec go n v = if v < 0x80 then n else go (n + 1) (v lsr 7) in
  go 1 v

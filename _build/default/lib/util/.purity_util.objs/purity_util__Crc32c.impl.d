lib/util/crc32c.ml: Array Bytes Int32 Lazy String

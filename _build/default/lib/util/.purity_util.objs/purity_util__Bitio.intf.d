lib/util/bitio.mli:

lib/util/histogram.mli: Fmt

lib/util/heap.mli:

lib/util/xxhash.ml: Bytes Int64 String

lib/util/rng.ml: Array Bytes Float Hashtbl Int64

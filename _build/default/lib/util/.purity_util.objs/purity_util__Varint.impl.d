lib/util/varint.ml: Buffer Bytes Char Int64 Option

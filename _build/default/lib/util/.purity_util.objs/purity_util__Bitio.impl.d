lib/util/bitio.ml: Bytes Int64

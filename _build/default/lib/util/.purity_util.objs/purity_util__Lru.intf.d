lib/util/lru.mli:

lib/util/xxhash.mli:

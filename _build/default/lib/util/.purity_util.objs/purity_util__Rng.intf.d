lib/util/rng.mli:

(** CRC-32C (Castagnoli) checksums.

    Segment headers, cblock frames, and NVRAM log entries carry CRC-32C
    checksums so that recovery can distinguish torn or corrupted writes from
    valid data (paper §4.3: "recovery must be robust against corrupted
    pages"). *)

val digest : bytes -> pos:int -> len:int -> int32
(** Checksum of a byte slice. *)

val digest_string : string -> int32
(** Checksum of a whole string. *)

val update : int32 -> bytes -> pos:int -> len:int -> int32
(** Incremental update: [update crc buf ~pos ~len] extends a running
    checksum previously returned by {!digest} or {!update}. *)

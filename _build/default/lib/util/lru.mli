(** Fixed-capacity LRU cache.

    Used for the inline-dedup recency window (paper §4.7: "inline
    deduplication only checks for duplicates of recently written data") and
    for the secondary controller's warmed read cache. *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** [capacity] must be positive. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup; promotes the entry to most-recently-used on hit. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Membership test without promotion. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or overwrite; evicts the least-recently-used entry when full. *)

val remove : ('k, 'v) t -> 'k -> unit
val length : ('k, 'v) t -> int
val clear : ('k, 'v) t -> unit

val fold : ('k -> 'v -> 'acc -> 'acc) -> ('k, 'v) t -> 'acc -> 'acc
(** Fold over entries in most-recently-used-first order. *)

(* Hash table + intrusive doubly-linked list, head = most recent. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

type ('k, 'v) t = {
  capacity : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;
  mutable tail : ('k, 'v) node option;
}

let create ~capacity =
  assert (capacity > 0);
  { capacity; table = Hashtbl.create (min capacity 4096); head = None; tail = None }

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let find t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some node ->
    unlink t node;
    push_front t node;
    Some node.value

let mem t k = Hashtbl.mem t.table k

let remove t k =
  match Hashtbl.find_opt t.table k with
  | None -> ()
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table k

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table node.key

let add t k v =
  match Hashtbl.find_opt t.table k with
  | Some node ->
    node.value <- v;
    unlink t node;
    push_front t node
  | None ->
    if Hashtbl.length t.table >= t.capacity then evict_lru t;
    let node = { key = k; value = v; prev = None; next = None } in
    Hashtbl.replace t.table k node;
    push_front t node

let length t = Hashtbl.length t.table

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None

let fold f t init =
  let rec go acc = function
    | None -> acc
    | Some node -> go (f node.key node.value acc) node.next
  in
  go init t.head

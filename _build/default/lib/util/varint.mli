(** LEB128 variable-length integer encoding.

    Used for compact on-media framing (cblock headers, log-record lengths)
    where most values are small. *)

val write : Buffer.t -> int -> unit
(** Append the unsigned LEB128 encoding of a non-negative int. *)

val read : bytes -> pos:int -> int * int
(** [read buf ~pos] returns [(value, next_pos)].
    @raise Invalid_argument on truncated or oversized input. *)

val write_i64 : Buffer.t -> int64 -> unit
(** Unsigned LEB128 for a full 64-bit value. *)

val read_i64 : bytes -> pos:int -> int64 * int

val size : int -> int
(** Encoded length in bytes of a non-negative int. *)

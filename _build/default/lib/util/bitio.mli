(** Bit-granular readers and writers.

    The metadata page format of paper §4.9 packs every tuple into the same
    number of bits ("we treat the page as a bit stream"), so encoding and
    scanning need sub-byte addressing. Bits are written LSB-first within
    each byte, which makes a [w]-bit read at bit offset [o] a simple shift
    and mask of a 64-bit load. *)

module Writer : sig
  type t

  val create : ?capacity:int -> unit -> t
  val put : t -> int64 -> width:int -> unit
  (** Append the low [width] (0–57) bits of the value. Width 0 is a no-op,
      mirroring the paper's "W can be 0" degenerate encoding. *)

  val bit_length : t -> int
  val align_byte : t -> unit
  (** Pad with zero bits to the next byte boundary. *)

  val contents : t -> bytes
  (** Snapshot of the written bytes (final partial byte zero-padded). *)
end

module Reader : sig
  type t

  val create : bytes -> t
  val of_string : string -> t

  val get : t -> at:int -> width:int -> int64
  (** Random-access read of [width] (0–57) bits starting at bit offset
      [at]. Does not move the cursor. *)

  val read : t -> width:int -> int64
  (** Sequential read at the cursor; advances it. *)

  val seek : t -> int -> unit
  val pos : t -> int
  val bit_length : t -> int
end

let p1 = 0x9E3779B185EBCA87L
let p2 = 0xC2B2AE3D27D4EB4FL
let p3 = 0x165667B19E3779F9L
let p4 = 0x85EBCA77C2B2AE63L
let p5 = 0x27D4EB2F165667C5L

let rotl x r =
  Int64.logor (Int64.shift_left x r) (Int64.shift_right_logical x (64 - r))

let round acc input =
  let acc = Int64.add acc (Int64.mul input p2) in
  Int64.mul (rotl acc 31) p1

let merge_round acc v =
  let acc = Int64.logxor acc (round 0L v) in
  Int64.add (Int64.mul acc p1) p4

let finalize h =
  let h = Int64.(mul (logxor h (shift_right_logical h 33)) p2) in
  let h = Int64.(mul (logxor h (shift_right_logical h 29)) p3) in
  Int64.(logxor h (shift_right_logical h 32))

let hash ?(seed = 0L) buf ~pos ~len =
  assert (pos >= 0 && len >= 0 && pos + len <= Bytes.length buf);
  let stop = pos + len in
  let p = ref pos in
  let h =
    if len >= 32 then begin
      let v1 = ref (Int64.add (Int64.add seed p1) p2)
      and v2 = ref (Int64.add seed p2)
      and v3 = ref seed
      and v4 = ref (Int64.sub seed p1) in
      let limit = stop - 32 in
      while !p <= limit do
        v1 := round !v1 (Bytes.get_int64_le buf !p);
        v2 := round !v2 (Bytes.get_int64_le buf (!p + 8));
        v3 := round !v3 (Bytes.get_int64_le buf (!p + 16));
        v4 := round !v4 (Bytes.get_int64_le buf (!p + 24));
        p := !p + 32
      done;
      let h =
        Int64.add
          (Int64.add (rotl !v1 1) (rotl !v2 7))
          (Int64.add (rotl !v3 12) (rotl !v4 18))
      in
      let h = merge_round h !v1 in
      let h = merge_round h !v2 in
      let h = merge_round h !v3 in
      merge_round h !v4
    end
    else Int64.add seed p5
  in
  let h = ref (Int64.add h (Int64.of_int len)) in
  while !p + 8 <= stop do
    let k = round 0L (Bytes.get_int64_le buf !p) in
    h := Int64.add (Int64.mul (rotl (Int64.logxor !h k) 27) p1) p4;
    p := !p + 8
  done;
  if !p + 4 <= stop then begin
    let k = Int64.of_int32 (Bytes.get_int32_le buf !p) in
    let k = Int64.logand k 0xFFFFFFFFL in
    h := Int64.add (Int64.mul (rotl (Int64.logxor !h (Int64.mul k p1)) 23) p2) p3;
    p := !p + 4
  end;
  while !p < stop do
    let k = Int64.of_int (Bytes.get_uint8 buf !p) in
    h := Int64.mul (rotl (Int64.logxor !h (Int64.mul k p5)) 11) p1;
    incr p
  done;
  finalize !h

let hash_string ?seed s =
  hash ?seed (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

let truncate h ~bits =
  if bits >= 64 then h
  else Int64.logand h (Int64.sub (Int64.shift_left 1L bits) 1L)

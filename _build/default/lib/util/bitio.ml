(* Bits are stored LSB-first: bit offset b lives at byte b/8, bit b mod 8.
   Widths are capped at 57 so that any field fits inside one aligned 8-byte
   load regardless of the starting bit (57 + 7 = 64). *)

let max_width = 57

let mask width =
  if width = 0 then 0L else Int64.sub (Int64.shift_left 1L width) 1L

module Writer = struct
  type t = { mutable buf : Bytes.t; mutable bits : int }

  let create ?(capacity = 64) () =
    { buf = Bytes.make (max capacity 16) '\000'; bits = 0 }

  let ensure t extra_bits =
    let needed = ((t.bits + extra_bits + 7) / 8) + 8 in
    if needed > Bytes.length t.buf then begin
      let cap = max needed (2 * Bytes.length t.buf) in
      let nb = Bytes.make cap '\000' in
      Bytes.blit t.buf 0 nb 0 (Bytes.length t.buf);
      t.buf <- nb
    end

  let put t v ~width =
    assert (width >= 0 && width <= max_width);
    if width > 0 then begin
      ensure t width;
      let v = Int64.logand v (mask width) in
      let byte = t.bits / 8 and off = t.bits mod 8 in
      let cur = Bytes.get_int64_le t.buf byte in
      Bytes.set_int64_le t.buf byte (Int64.logor cur (Int64.shift_left v off));
      t.bits <- t.bits + width
    end

  let bit_length t = t.bits

  let align_byte t =
    let rem = t.bits mod 8 in
    if rem <> 0 then begin
      ensure t (8 - rem);
      t.bits <- t.bits + (8 - rem)
    end

  let contents t = Bytes.sub t.buf 0 ((t.bits + 7) / 8)
end

module Reader = struct
  type t = { buf : Bytes.t; padded : Bytes.t; len_bits : int; mutable cursor : int }

  (* Pad with 8 trailing zero bytes so [get] can always do an aligned
     8-byte load without bounds checks near the end. *)
  let create buf =
    let padded = Bytes.make (Bytes.length buf + 8) '\000' in
    Bytes.blit buf 0 padded 0 (Bytes.length buf);
    { buf; padded; len_bits = 8 * Bytes.length buf; cursor = 0 }

  let of_string s = create (Bytes.of_string s)

  let get t ~at ~width =
    assert (width >= 0 && width <= max_width);
    if width = 0 then 0L
    else begin
      assert (at >= 0 && at + width <= t.len_bits);
      let byte = at / 8 and off = at mod 8 in
      let word = Bytes.get_int64_le t.padded byte in
      Int64.logand (Int64.shift_right_logical word off) (mask width)
    end

  let read t ~width =
    let v = get t ~at:t.cursor ~width in
    t.cursor <- t.cursor + width;
    v

  let seek t p = t.cursor <- p
  let pos t = t.cursor
  let bit_length t = t.len_bits
end

(** xxHash64: the 64-bit non-cryptographic hash used for deduplication.

    Purity records hashes "no larger than 64 bits" for dedup candidates and
    relies on a byte-level comparison to confirm matches, so hash collisions
    affect only performance, never correctness (paper §4.7). This is a
    from-scratch implementation of the xxHash64 algorithm. *)

val hash : ?seed:int64 -> bytes -> pos:int -> len:int -> int64
(** [hash ?seed buf ~pos ~len] hashes the given slice. *)

val hash_string : ?seed:int64 -> string -> int64
(** Hash a whole string. *)

val truncate : int64 -> bits:int -> int64
(** [truncate h ~bits] keeps the low [bits] bits, emulating the short
    hashes Purity stores in its dedup index to keep the index small. *)

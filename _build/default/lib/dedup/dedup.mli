(** Inline deduplication (paper §4.7).

    Purity tracks duplicates at 512 B granularity but keeps the hash index
    small with three tricks, all reproduced here:

    - only every eighth block's hash is {e recorded}, though every
      incoming block's hash is {e looked up};
    - hashes are at most 64 bits and may collide: a hit is confirmed by a
      byte-level comparison before any mapping is recorded, so collisions
      cost a compare but never correctness;
    - a confirmed hit becomes an {e anchor} that is extended forwards and
      backwards block-by-block, detecting most duplicate runs of at least
      8 blocks (4 KiB) regardless of alignment.

    Inline dedup "only checks for duplicates of recently written data":
    the index retains the payloads of the last [window_writes] writes (an
    LRU), modelling the recency window; the garbage collector runs a
    second, exhaustive pass later (E8 measures both).

    The caller identifies writes by the dense ids this module assigns, and
    maps (write id, block) pairs back to its own storage addresses. *)

type t

type source = { write_id : int; block : int }
(** A position inside a previously registered write. *)

type hit = {
  at_block : int;  (** first duplicate block in the incoming write *)
  src : source;  (** where the identical run already lives *)
  run_blocks : int;  (** verified identical blocks, >= 1 *)
}

type config = {
  hash_bits : int;  (** truncated hash width (paper: <= 64) *)
  record_every : int;  (** record 1-in-N block hashes (paper: 8) *)
  window_writes : int;  (** recent writes retained for verification *)
  min_run : int;  (** discard runs shorter than this many blocks *)
}

val default_config : config
(** 48-bit hashes, record 1/8, 4096-write window, min run 1. *)

val block_size : int
(** 512, the paper's dedup granularity. *)

val create : ?config:config -> unit -> t

val register : t -> string -> int
(** Add a write's payload to the index (recording sampled hashes) and
    return its write id. Lengths are rounded down to whole 512 B blocks. *)

val find_duplicates : t -> string -> hit list
(** Verified, non-overlapping duplicate runs of the given payload against
    the recency window, in block order. Does not register the payload. *)

val forget : t -> write_id:int -> unit
(** Drop a write from the verification window (its hashes age out
    naturally). *)

val payload : t -> write_id:int -> string option

type stats = {
  registered_writes : int;
  recorded_hashes : int;
  lookups : int;
  hash_hits : int;
  verified_hits : int;
  false_positives : int;  (** hash matched, bytes differed *)
  duplicate_blocks : int;  (** total blocks covered by returned runs *)
}

val stats : t -> stats

lib/dedup/dedup.mli:

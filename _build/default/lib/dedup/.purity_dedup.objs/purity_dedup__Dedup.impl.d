lib/dedup/dedup.ml: Bytes Hashtbl List Option Purity_util String

type status = RO | RW

type target = Base | Underlying of { medium : int; offset : int }

type extent = {
  start_block : int;
  end_block : int;
  target : target;
  status : status;
  skip_local : bool;
}

type t = {
  mutable next_id : int;
  table : (int, extent list) Hashtbl.t; (* medium -> extents, sorted by start *)
}

let create ?(first_id = 1) () = { next_id = first_id; table = Hashtbl.create 64 }

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let extents t m = Option.value ~default:[] (Hashtbl.find_opt t.table m)
let exists t m = Hashtbl.mem t.table m

let set_extents t m es =
  let sorted = List.sort (fun a b -> Int.compare a.start_block b.start_block) es in
  Hashtbl.replace t.table m sorted

let create_base t ~blocks =
  if blocks <= 0 then invalid_arg "Medium.create_base: blocks must be positive";
  let id = fresh_id t in
  set_extents t id
    [ { start_block = 0; end_block = blocks - 1; target = Base; status = RW; skip_local = false } ];
  id

let size_blocks t m =
  List.fold_left (fun acc e -> max acc (e.end_block + 1)) 0 (extents t m)

let status t m =
  match extents t m with
  | [] -> None
  | es -> Some (if List.exists (fun e -> e.status = RW) es then RW else RO)

let freeze t m =
  set_extents t m (List.map (fun e -> { e with status = RO }) (extents t m))

let whole_reference t m ~skip_local ~status =
  let size = size_blocks t m in
  {
    start_block = 0;
    end_block = size - 1;
    target = Underlying { medium = m; offset = 0 };
    status;
    skip_local;
  }

let take_snapshot t m =
  (match status t m with
  | Some RW -> ()
  | Some RO -> invalid_arg "Medium.take_snapshot: medium is read-only"
  | None -> invalid_arg "Medium.take_snapshot: no such medium");
  freeze t m;
  (* Snapshot handles never receive writes, so they certainly own no
     cblocks: lookups skip straight through them. *)
  let snap = fresh_id t in
  set_extents t snap [ whole_reference t m ~skip_local:true ~status:RO ];
  let successor = fresh_id t in
  set_extents t successor [ whole_reference t m ~skip_local:false ~status:RW ];
  (snap, successor)

let clone t m ?range () =
  (match status t m with
  | Some RO -> ()
  | Some RW -> invalid_arg "Medium.clone: snapshot the source first"
  | None -> invalid_arg "Medium.clone: no such medium");
  let lo, hi = match range with Some r -> r | None -> (0, size_blocks t m - 1) in
  if lo < 0 || hi < lo || hi >= size_blocks t m then invalid_arg "Medium.clone: bad range";
  let id = fresh_id t in
  set_extents t id
    [
      {
        start_block = 0;
        end_block = hi - lo;
        target = Underlying { medium = m; offset = lo };
        status = RW;
        skip_local = false;
      };
    ];
  id

let extend t m ~blocks =
  (match status t m with
  | Some RW -> ()
  | Some RO -> invalid_arg "Medium.extend: read-only medium"
  | None -> invalid_arg "Medium.extend: no such medium");
  if blocks <= 0 then invalid_arg "Medium.extend: blocks must be positive";
  let size = size_blocks t m in
  set_extents t m
    (extents t m
    @ [
        {
          start_block = size;
          end_block = size + blocks - 1;
          target = Base;
          status = RW;
          skip_local = false;
        };
      ])

let referenced_by t m =
  Hashtbl.fold
    (fun id es acc ->
      let refs =
        List.exists
          (fun e -> match e.target with Underlying { medium; _ } -> medium = m | Base -> false)
          es
      in
      if refs then id :: acc else acc)
    t.table []
  |> List.sort Int.compare

let drop t m =
  if not (exists t m) then invalid_arg "Medium.drop: no such medium";
  (match referenced_by t m with
  | [] -> ()
  | _ -> invalid_arg "Medium.drop: still referenced");
  Hashtbl.remove t.table m

let live_mediums t = Hashtbl.fold (fun id _ acc -> id :: acc) t.table [] |> List.sort Int.compare

let extent_of t m ~block =
  List.find_opt (fun e -> block >= e.start_block && block <= e.end_block) (extents t m)

let resolve t m ~block =
  (* Walk the underlying chain; a malformed cyclic table would loop, so
     cap at the number of live mediums. *)
  let limit = Hashtbl.length t.table + 1 in
  let rec go m block depth acc =
    if depth > limit then List.rev acc
    else
      match extent_of t m ~block with
      | None -> List.rev acc
      | Some e ->
        let acc = if e.skip_local then acc else (m, block) :: acc in
        (match e.target with
        | Base -> List.rev acc
        | Underlying { medium; offset } ->
          go medium (block - e.start_block + offset) (depth + 1) acc)
  in
  go m block 0 []

let resolve_depth t m ~block = List.length (resolve t m ~block)

let write_target t m ~block =
  match extent_of t m ~block with
  | None -> if exists t m then Error `Out_of_range else Error `No_such_medium
  | Some e -> if e.status = RW then Ok m else Error `Read_only

let shortcut ?only t ~has_blocks =
  (* [chase medium offset len] partitions the block range
     [offset, offset+len) of [medium] into (rel, sublen, medium', offset')
     pieces, each pointing at the deepest level an extent may safely
     reference. The chase hops past a level when it is immutable (RO) and
     owns no blocks in the sub-range; ranges that mix data-bearing and
     empty sub-ranges are split binarily — that is how Figure 6's medium
     22 ends up with both a "21" row and a direct "12" shortcut row. *)
  let rec chase medium offset len =
    let stop = [ (0, len, medium, offset) ] in
    let split () =
      if len = 1 then stop
      else begin
        let half = len / 2 in
        let left = chase medium offset half in
        let right = chase medium (offset + half) (len - half) in
        left @ List.map (fun (r, l, m, o) -> (r + half, l, m, o)) right
      end
    in
    let immutable = match status t medium with Some RO -> true | Some RW | None -> false in
    if not immutable then stop
    else if has_blocks ~medium ~lo:offset ~hi:(offset + len - 1) then split ()
    else
      match extent_of t medium ~block:offset with
      | Some ({ target = Underlying { medium = next; offset = noff }; _ } as inner)
        when offset >= inner.start_block && offset + len - 1 <= inner.end_block ->
        chase next (offset - inner.start_block + noff) len
      | Some _ -> if len = 1 then stop else split ()
      | None -> stop
  in
  (* Coalesce adjacent pieces with the same target and contiguous offsets. *)
  let rec merge = function
    | (r1, l1, m1, o1) :: (r2, l2, m2, o2) :: rest
      when m1 = m2 && r1 + l1 = r2 && o1 + l1 = o2 ->
      merge ((r1, l1 + l2, m1, o1) :: rest)
    | piece :: rest -> piece :: merge rest
    | [] -> []
  in
  let reanchor e =
    match e.target with
    | Base -> [ e ]
    | Underlying { medium; offset } ->
      let len = e.end_block - e.start_block + 1 in
      let pieces = merge (chase medium offset len) in
      List.map
        (fun (rel, sublen, m', o') ->
          {
            e with
            start_block = e.start_block + rel;
            end_block = e.start_block + rel + sublen - 1;
            target = Underlying { medium = m'; offset = o' };
          })
        pieces
  in
  let selected m = match only with None -> true | Some ms -> List.mem m ms in
  let updates =
    Hashtbl.fold
      (fun m es acc -> if selected m then (m, List.concat_map reanchor es) :: acc else acc)
      t.table []
  in
  List.iter (fun (m, es) -> set_extents t m es) updates

let rows t =
  live_mediums t
  |> List.concat_map (fun m -> List.map (fun e -> (m, e)) (extents t m))

let pp_target ppf = function
  | Base -> Fmt.string ppf "none"
  | Underlying { medium; offset } -> Fmt.pf ppf "%d %d" medium offset

let pp_table ppf t =
  Fmt.pf ppf "@[<v>Source Start:End    Target Offset Status@,";
  List.iter
    (fun (m, e) ->
      let target = Fmt.str "%a" pp_target e.target in
      Fmt.pf ppf "%-6d %d:%-12d %-13s %s@," m e.start_block e.end_block target
        (match e.status with RO -> "RO" | RW -> "RW"))
    (rows t);
  Fmt.pf ppf "@]"

let encode_extents es =
  let buf = Buffer.create 64 in
  Purity_util.Varint.write buf (List.length es);
  List.iter
    (fun e ->
      Purity_util.Varint.write buf e.start_block;
      Purity_util.Varint.write buf (e.end_block - e.start_block);
      (match e.target with
      | Base -> Buffer.add_char buf '\000'
      | Underlying { medium; offset } ->
        Buffer.add_char buf '\001';
        Purity_util.Varint.write buf medium;
        Purity_util.Varint.write buf offset);
      Buffer.add_char buf (match e.status with RO -> '\000' | RW -> '\001');
      Buffer.add_char buf (if e.skip_local then '\001' else '\000'))
    es;
  Buffer.contents buf

let decode_extents s =
  let buf = Bytes.unsafe_of_string s in
  let n, pos = Purity_util.Varint.read buf ~pos:0 in
  let p = ref pos in
  let byte () =
    if !p >= Bytes.length buf then invalid_arg "Medium.decode_extents: truncated";
    let c = Bytes.get buf !p in
    incr p;
    c
  in
  List.init n (fun _ ->
      let start_block, p1 = Purity_util.Varint.read buf ~pos:!p in
      let len, p2 = Purity_util.Varint.read buf ~pos:p1 in
      p := p2;
      let target =
        match byte () with
        | '\000' -> Base
        | '\001' ->
          let medium, p3 = Purity_util.Varint.read buf ~pos:!p in
          let offset, p4 = Purity_util.Varint.read buf ~pos:p3 in
          p := p4;
          Underlying { medium; offset }
        | _ -> invalid_arg "Medium.decode_extents: bad target tag"
      in
      let status =
        match byte () with
        | '\000' -> RO
        | '\001' -> RW
        | _ -> invalid_arg "Medium.decode_extents: bad status"
      in
      let skip_local = byte () = '\001' in
      { start_block; end_block = start_block + len; target; status; skip_local })

let set_medium t m es =
  set_extents t m es;
  if m >= t.next_id then t.next_id <- m + 1

let restore ~rows ~next_id =
  let t = create ~first_id:next_id () in
  List.iter (fun (m, es) -> set_medium t m es) rows;
  if next_id >= t.next_id then t.next_id <- next_id;
  t

let peek_next_id t = t.next_id

lib/medium/medium.ml: Buffer Bytes Fmt Hashtbl Int List Option Purity_util

lib/medium/medium.mli: Fmt

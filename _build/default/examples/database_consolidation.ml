(* Database consolidation (paper §5.2): "it is much more common for
   customers to deploy dozens or even hundreds of independent database
   instances on top of each Purity array."

   This example provisions eight OLTP database volumes on one array,
   runs a mixed OLTP workload across all of them, and reports the
   aggregate IOPS, per-op latency percentiles, and the data reduction
   the relational page data achieves.

     dune exec examples/database_consolidation.exe *)

module Clock = Purity_sim.Clock
module Fa = Purity_core.Flash_array
module Wl = Purity_workload.Workload

let await clock f =
  let r = ref None in
  f (fun x -> r := Some x);
  Clock.run clock;
  Option.get !r

let () =
  let clock = Clock.create () in
  let array = Fa.create ~clock () in

  (* eight "database instances", 8 MiB each at this simulation scale *)
  let volumes = List.init 8 (fun i -> (Printf.sprintf "pgdb%02d" i, 16384)) in
  Wl.provision array ~volumes;
  Printf.printf "provisioned %d database volumes on one array\n" (List.length volumes);

  (* OLTP mix: 70%% reads, Zipf-skewed pages, RDBMS page data *)
  let wl = Wl.oltp ~seed:42L ~volumes () in
  let report = await clock (Wl.run array wl ~ops:4000 ~concurrency:16) in
  Fmt.pr "@[<v>workload report:@,%a@]@." Wl.pp_report report;

  let s = Fa.stats array in
  let reduction =
    if s.Fa.stored_bytes_written = 0 then 1.0
    else float_of_int s.Fa.logical_bytes_written /. float_of_int s.Fa.stored_bytes_written
  in
  Printf.printf "\ndata reduction on relational pages: %.1fx (paper band: 3-8x)\n" reduction;
  Printf.printf "volumes served: %d; total provisioned: %d MiB; physical used: %d MiB\n"
    (List.length (Fa.list_volumes array))
    (s.Fa.provisioned_virtual_bytes / 1048576)
    (s.Fa.physical_bytes_used / 1048576);
  Printf.printf
    "\nThe paper's point: one array, many databases — no per-volume tuning\n\
     knobs, block sizes inferred from the I/O, reduction shared across all.\n"

(* Asynchronous off-site replication and disaster recovery.

   Two arrays on one simulated timeline, linked by a 100 MB/s WAN: the
   production site replicates a database volume on a cadence; after a few
   cycles the production site is lost, and the replica site promotes its
   last consistent image.

     dune exec examples/disaster_recovery.exe *)

module Clock = Purity_sim.Clock
module Fa = Purity_core.Flash_array
module Repl = Purity_replication.Replication
module Dg = Purity_workload.Datagen

let await clock f =
  let r = ref None in
  f (fun x -> r := Some x);
  Clock.run clock;
  Option.get !r

let () =
  let clock = Clock.create () in
  let production = Fa.create ~clock () in
  let dr_site = Fa.create ~config:{ Fa.default_config with Fa.seed = 7L } ~clock () in
  let repl = Repl.create ~source:production ~target:dr_site () in
  let dg = Dg.create ~seed:99L in

  (match Fa.create_volume production "orders" ~blocks:16384 with
  | Ok () -> ()
  | Error _ -> failwith "create failed");
  (match Repl.protect repl "orders" with Ok () -> () | Error _ -> failwith "protect");

  (* initial load + first sync *)
  let write block nblocks =
    match
      await clock (Fa.write production ~volume:"orders" ~block (Dg.rdbms_page dg (nblocks * 512)))
    with
    | Ok () -> ()
    | Error _ -> failwith "write failed"
  in
  for i = 0 to 15 do
    write (i * 512) 256
  done;
  let r = await clock (fun k -> Repl.replicate_once repl "orders" k) in
  Printf.printf "cycle %d: initial sync shipped %d blocks (%.1f ms on the WAN)\n"
    r.Repl.cycle r.Repl.changed_blocks (r.Repl.duration_us /. 1000.0);

  (* steady state: small updates, small deltas *)
  for cycle = 2 to 4 do
    for _ = 1 to 4 do
      write (Random.int 40 * 256) 32
    done;
    let r = await clock (fun k -> Repl.replicate_once repl "orders" k) in
    Printf.printf "cycle %d: delta of %d blocks shipped in %.1f ms (RPO image %s)\n" cycle
      r.Repl.changed_blocks (r.Repl.duration_us /. 1000.0) r.Repl.rpo_snapshot
  done;

  (* disaster: production site gone *)
  Fa.crash production;
  print_endline "\nproduction site lost!";
  (match await clock (Fa.read dr_site ~volume:"orders" ~block:0 ~nblocks:64) with
  | Ok _ -> print_endline "DR site serves the replicated volume directly"
  | Error _ -> failwith "replica unreadable");
  (match await clock (Fa.write dr_site ~volume:"orders" ~block:0 (Dg.rdbms_page dg (32 * 512))) with
  | Ok () -> print_endline "DR site promoted to read-write: applications resume"
  | Error _ -> failwith "promotion failed");
  let s = Repl.stats repl in
  Printf.printf "\nlifetime replication: %d cycles, %d blocks, %d bytes over the wire\n"
    s.Repl.cycles s.Repl.total_changed_blocks s.Repl.total_shipped_bytes

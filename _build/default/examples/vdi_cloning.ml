(* Virtual desktop infrastructure (paper §5.3): thousands of similar VM
   images dedup 20x; clones provision instantly off a gold image.

   This example builds a gold OS image, snapshots it, clones sixteen
   desktops from the snapshot (an O(1) operation each), lets the desktops
   diverge a little, and reports provisioning time, dedup and the
   provisioned:physical ratio.

     dune exec examples/vdi_cloning.exe *)

module Clock = Purity_sim.Clock
module Fa = Purity_core.Flash_array
module Dg = Purity_workload.Datagen

let await clock f =
  let r = ref None in
  f (fun x -> r := Some x);
  Clock.run clock;
  Option.get !r

let desktops = 16
let image_blocks = 8192 (* 4 MiB gold image at simulation scale *)

let () =
  let clock = Clock.create () in
  let array = Fa.create ~clock () in
  let dg = Dg.create ~seed:7L in

  (* the gold image *)
  (match Fa.create_volume array "gold" ~blocks:image_blocks with
  | Ok () -> ()
  | Error _ -> failwith "create failed");
  let image = Dg.vm_image dg ~blocks:image_blocks in
  let t0 = Clock.now clock in
  let rec put b =
    if b < image_blocks then begin
      (match
         await clock
           (Fa.write array ~volume:"gold" ~block:b (String.sub image (b * 512) (64 * 512)))
       with
      | Ok () -> ()
      | Error _ -> failwith "image write failed");
      put (b + 64)
    end
  in
  put 0;
  Printf.printf "gold image installed (%d MiB) in %.1f simulated ms\n"
    (image_blocks * 512 / 1048576)
    ((Clock.now clock -. t0) /. 1000.0);

  (match Fa.snapshot array ~volume:"gold" ~snap:"gold@v1" with
  | Ok () -> ()
  | Error _ -> failwith "snapshot failed");

  (* clone sixteen desktops: pure metadata, no data copied *)
  let t1 = Clock.now clock in
  for i = 1 to desktops do
    match Fa.clone array ~snapshot:"gold@v1" ~volume:(Printf.sprintf "desktop%02d" i) with
    | Ok () -> ()
    | Error _ -> failwith "clone failed"
  done;
  Printf.printf "%d desktops cloned in %.3f simulated ms (metadata only)\n" desktops
    ((Clock.now clock -. t1) /. 1000.0);

  (* each desktop boots and writes a little unique state *)
  for i = 1 to desktops do
    let name = Printf.sprintf "desktop%02d" i in
    (match await clock (Fa.read array ~volume:name ~block:0 ~nblocks:128) with
    | Ok boot -> assert (boot = String.sub image 0 (128 * 512))
    | Error _ -> failwith "boot read failed");
    ignore
      (await clock (Fa.write array ~volume:name ~block:4096 (Dg.random dg (32 * 512))))
  done;
  print_endline "all desktops booted from shared blocks and diverged privately";

  let s = Fa.stats array in
  Printf.printf "\nprovisioned virtual space: %d MiB across %d volumes\n"
    (s.Fa.provisioned_virtual_bytes / 1048576)
    (List.length (Fa.list_volumes array));
  Printf.printf "physical space used:       %d MiB\n" (s.Fa.physical_bytes_used / 1048576);
  Printf.printf "provisioning ratio:        %.1fx (paper: customers provision ~12x)\n"
    (float_of_int s.Fa.provisioned_virtual_bytes /. float_of_int (max 1 s.Fa.physical_bytes_used));
  Printf.printf "dedup absorbed %d blocks of OS content within the image itself\n"
    s.Fa.dedup_blocks

examples/database_consolidation.ml: Fmt List Option Printf Purity_core Purity_sim Purity_workload

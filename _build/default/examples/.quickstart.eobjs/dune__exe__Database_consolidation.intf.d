examples/database_consolidation.mli:

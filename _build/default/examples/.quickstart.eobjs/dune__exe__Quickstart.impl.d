examples/quickstart.ml: Buffer Fmt Option Printf Purity_core Purity_sim Purity_util String

examples/failover_drill.mli:

examples/vdi_cloning.mli:

examples/failover_drill.ml: Bytes List Option Printf Purity_core Purity_sim Purity_util

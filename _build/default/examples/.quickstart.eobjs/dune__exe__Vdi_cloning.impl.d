examples/vdi_cloning.ml: List Option Printf Purity_core Purity_sim Purity_workload String

examples/disaster_recovery.mli:

examples/quickstart.mli:

(* The evaluation drill the paper describes (§1): "we encourage potential
   customers to pull drives and unplug controllers as they evaluate
   Purity and competitive products."

   This example loads data, pulls two drives mid-flight, keeps serving,
   crashes the primary controller, fails over to the spare, and verifies
   that every acknowledged write survived — then prints the availability
   accounting.

     dune exec examples/failover_drill.exe *)

module Clock = Purity_sim.Clock
module Fa = Purity_core.Flash_array
module Rng = Purity_util.Rng

let await clock f =
  let r = ref None in
  f (fun x -> r := Some x);
  Clock.run clock;
  Option.get !r

let () =
  let clock = Clock.create () in
  let array = Fa.create ~clock () in
  let rng = Rng.create ~seed:13L in

  (match Fa.create_volume array "prod" ~blocks:32768 with
  | Ok () -> ()
  | Error _ -> failwith "create failed");

  (* remember everything we ack so we can audit it after the disasters *)
  let audit : (int * string) list ref = ref [] in
  let write_and_record block nblocks =
    let data = Bytes.to_string (Rng.bytes rng (nblocks * 512)) in
    match await clock (Fa.write array ~volume:"prod" ~block data) with
    | Ok () -> audit := (block, data) :: !audit
    | Error _ -> failwith "write failed"
  in
  for i = 0 to 63 do
    write_and_record (i * 256) 128
  done;
  Printf.printf "loaded %d writes (%d MiB)\n" (List.length !audit) (64 * 128 * 512 / 1048576);

  (* pull two drives — the array must keep serving *)
  Fa.pull_drive array 2;
  Fa.pull_drive array 7;
  print_endline "pulled drives 2 and 7 (7+2 coding tolerates both)";
  for i = 64 to 79 do
    write_and_record (i * 256) 128
  done;
  print_endline "kept writing through the double failure";

  (* now kill the controller *)
  Fa.crash array;
  print_endline "primary controller crashed (volatile state gone)";
  let report = await clock (fun k -> Fa.failover array k) in
  Printf.printf
    "spare took over in %.1f simulated ms (scanned %d headers, replayed %d log records, %d NVRAM intents)\n"
    (report.Purity_core.Recovery.duration_us /. 1000.0)
    report.Purity_core.Recovery.headers_scanned report.Purity_core.Recovery.log_records
    report.Purity_core.Recovery.nvram_records;

  (* audit every acknowledged write *)
  let bad = ref 0 in
  List.iter
    (fun (block, data) ->
      match await clock (Fa.read array ~volume:"prod" ~block ~nblocks:128) with
      | Ok got -> if got <> data then incr bad
      | Error _ -> incr bad)
    !audit;
  Printf.printf "audit: %d/%d acknowledged writes intact after drive pulls + failover\n"
    (List.length !audit - !bad)
    (List.length !audit);

  (* rebuild redundancy onto the remaining drives, then replace hardware *)
  let rebuilt = await clock (fun k -> Fa.rebuild_drive array 2 (fun n -> k n)) in
  let rebuilt' = await clock (fun k -> Fa.rebuild_drive array 7 (fun n -> k n)) in
  Printf.printf "rebuilt %d segments away from the pulled drives\n" (rebuilt + rebuilt');
  Fa.replace_drive array 2;
  Fa.replace_drive array 7;
  print_endline "replacement drives inserted";

  Clock.advance clock 3.6e9 (* an hour of uptime for the availability math *);
  let s = Fa.stats array in
  Printf.printf "availability since creation: %.5f%%\n" (100.0 *. s.Fa.availability);
  if !bad = 0 then print_endline "drill PASSED: no acknowledged write was lost"
  else (print_endline "drill FAILED"; exit 1)

(* Quickstart: create an array, provision a volume, write, read, snapshot.

     dune exec examples/quickstart.exe

   Everything is asynchronous against a simulated clock: operations take
   a continuation, and [Clock.run] drains the event queue. *)

module Clock = Purity_sim.Clock
module Fa = Purity_core.Flash_array

let await clock f =
  let r = ref None in
  f (fun x -> r := Some x);
  Clock.run clock;
  Option.get !r

let () =
  (* An array with the default laptop-scale geometry: 11 simulated flash
     drives, 7+2 Reed-Solomon, compression and dedup on. *)
  let clock = Clock.create () in
  let array = Fa.create ~clock () in

  (* Volumes are block devices addressed in 512-byte blocks. *)
  (match Fa.create_volume array "demo" ~blocks:8192 with
  | Ok () -> print_endline "created volume 'demo' (4 MiB)"
  | Error _ -> failwith "create failed");

  (* Write 64 KiB of (compressible) data at block 100. *)
  let data =
    let b = Buffer.create (128 * 512) in
    let i = ref 0 in
    while Buffer.length b < 128 * 512 do
      Buffer.add_string b (Printf.sprintf "record %06d padding padding |" !i);
      incr i
    done;
    Buffer.sub b 0 (128 * 512)
  in
  (match await clock (Fa.write array ~volume:"demo" ~block:100 data) with
  | Ok () -> print_endline "wrote 64 KiB at block 100 (durable in NVRAM)"
  | Error _ -> failwith "write failed");

  (* Read it back. *)
  (match await clock (Fa.read array ~volume:"demo" ~block:100 ~nblocks:128) with
  | Ok got ->
    Printf.printf "read back %d bytes, intact: %b\n" (String.length got) (got = data)
  | Error _ -> failwith "read failed");

  (* Snapshots are O(1): they freeze the volume's medium. *)
  (match Fa.snapshot array ~volume:"demo" ~snap:"demo@noon" with
  | Ok () -> print_endline "took snapshot 'demo@noon'"
  | Error _ -> failwith "snapshot failed");

  (* Overwrite after the snapshot: the snapshot stays frozen. *)
  ignore (await clock (Fa.write array ~volume:"demo" ~block:100 (String.make (128 * 512) 'X')));
  let snap_view = await clock (Fa.read array ~volume:"demo@noon" ~block:100 ~nblocks:128) in
  (match snap_view with
  | Ok s -> Printf.printf "snapshot still reads the old data: %b\n" (s = data)
  | Error _ -> failwith "snapshot read failed");

  (* The array keeps statistics on data reduction and latency. *)
  let s = Fa.stats array in
  Printf.printf "stats: %d writes, %s logical -> %s stored (compression at work)\n"
    s.Fa.app_writes
    (string_of_int s.Fa.logical_bytes_written)
    (string_of_int s.Fa.stored_bytes_written);
  Fmt.pr "write latency (simulated us): %a@." Purity_util.Histogram.pp_summary
    s.Fa.write_latency

(* The benchmark wall clock. Every experiment that needs real elapsed
   time reads it through this module, so the tree has exactly one
   sanctioned nondeterministic clock read — the waived [Sys.time] below —
   and purity.lint can flag any other as a replay hazard. *)

let[@purity.lint.allow
     "determinism: the bench harness is the one place wall-clock reads \
      belong; everything it times runs on the deterministic sim clock"] now_s
    () =
  Sys.time ()

(* Nanosecond processor time for Kernel_stats-style cycle attribution. *)
let now_ns () = int_of_float (now_s () *. 1e9)

(* Elapsed real time, for timing multi-domain runs: [Sys.time] sums
   processor time across domains, so a perfectly-scaling 4-domain run
   would show ~zero speedup on it. *)
let[@purity.lint.allow
     "determinism: the bench harness is the one place wall-clock reads \
      belong; domain-scaling runs need elapsed (not summed-CPU) time"] now_wall_s
    () =
  Unix.gettimeofday ()

(* [time_ops] on the real-time clock: seconds of wall clock per op,
   for loops that fan out over a domain pool. *)
let time_wall ?(warmup = 2) ?(reps = 5) f =
  for _ = 1 to warmup do
    f ()
  done;
  let start = now_wall_s () in
  for _ = 1 to reps do
    f ()
  done;
  (now_wall_s () -. start) /. float_of_int reps

(* Calibrated ops/s measurement: warm up, then run [batch]-sized chunks
   until [budget_s] of processor time has elapsed. Returns
   (ops per second, nanoseconds per op). *)
let time_ops ?(warmup = 200) ?(batch = 50) ?(budget_s = 0.25) f =
  for _ = 1 to warmup do
    f ()
  done;
  let start = now_s () in
  let n = ref 0 in
  while now_s () -. start < budget_s do
    for _ = 1 to batch do
      f ()
    done;
    n := !n + batch
  done;
  let elapsed = now_s () -. start in
  let ops = float_of_int !n in
  (ops /. elapsed, elapsed *. 1e9 /. ops)

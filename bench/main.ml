(* The experiment harness: one sub-command per paper table/figure (see
   DESIGN.md's experiment index), `micro` for the Bechamel CPU suite, and
   no argument (or `--all`) to run everything — writing the output that
   EXPERIMENTS.md records. *)

let experiments =
  [
    ("e1", "Table 1: Purity vs disk array", Exp_table1.run);
    ("e2", "Table 2: scale-out consolidation", Exp_scaleout.run);
    ("e3", "Figure 5: frontier-set recovery", Exp_recovery.run);
    ("e4", "Figure 6: medium table", Exp_medium.run);
    ("e5", "Figure 7: five-minute rule", Exp_five_minute.run);
    ("e6", "Tail latency / read-around-write", Exp_tail_latency.run);
    ("e7", "Throughput through failures", Exp_degraded.run);
    ("e8", "Data reduction by workload", Exp_reduction.run);
    ("e9", "Elision vs tombstones", Exp_elision.run);
    ("e10", "Metadata page compression", Exp_metadata.run);
    ("e11", "FTL random-write pathology", Exp_ftl.run);
    ("e12", "Wear-out and scrubbing", Exp_wear.run);
    ("e13", "Replication (extension)", Exp_replication.run);
    ("e14", "Secondary cache warming", Exp_warming.run);
    ("e15", "Transaction rollback model", Exp_rollback.run);
    ("micro", "CPU micro-benchmarks", Micro.run);
    ("kernels", "Data-plane kernels, ref vs word-at-a-time", Exp_kernels.run);
  ]

(* `micro` already runs the kernel rows inside its section, so the
   all-experiments sweep skips the standalone entry. *)
let all_experiments = List.filter (fun (id, _, _) -> id <> "kernels") experiments

let usage () =
  print_endline "usage: main.exe [--all | e1 ... e15 | micro | kernels]";
  print_endline "experiments:";
  List.iter (fun (id, desc, _) -> Printf.printf "  %-6s %s\n" id desc) experiments

let () =
  match Array.to_list Sys.argv with
  | _ :: ("-h" | "--help") :: _ -> usage ()
  | [ _ ] | [ _; "--all" ] ->
    print_endline "Purity reproduction — experiment harness (all experiments)";
    print_endline "Simulated-time results; see EXPERIMENTS.md for paper-vs-measured.";
    List.iter (fun (_, _, run) -> run ()) all_experiments
  | _ :: picks ->
    List.iter
      (fun pick ->
        match List.find_opt (fun (id, _, _) -> id = pick) experiments with
        | Some (_, _, run) -> run ()
        | None ->
          Printf.eprintf "unknown experiment %S\n" pick;
          usage ();
          exit 1)
      picks
  | [] -> usage ()

(* Metadata hot path (wall clock): the bloom-fenced point probe and the
   batched run resolver against the naive per-patch scan they replaced.
   Runs inside the Micro section so its rows land in BENCH_Micro.json
   next to the other host-CPU numbers.

   The pyramid is shaped like a real block index after a sequence of
   checkpoint epochs: each epoch flushed one patch over its own block
   band (so fences are selective), within a band only even blocks were
   written (so blooms see absent-but-in-range keys), and patch sizes
   grow with age just under the tiering threshold so the stack stays
   deep instead of collapsing into one patch. *)

module Pyramid = Purity_pyramid.Pyramid
module Keys = Purity_core.Keys
module Rng = Purity_util.Rng
module Json = Purity_telemetry.Json

let medium = 7
let epochs = 10
let newest_epoch_writes = 96

(* Oldest first; each newer patch must stay under half the previous
   one's fact count or auto-compaction tiers them together. *)
let epoch_writes e =
  let f = ref newest_epoch_writes in
  for _ = e + 1 to epochs - 1 do
    f := (!f * 5 / 2) + 1
  done;
  !f

let band_base =
  let bases = Array.make (epochs + 1) 0 in
  for e = 1 to epochs do
    bases.(e) <- bases.(e - 1) + (2 * epoch_writes (e - 1))
  done;
  bases

let build () =
  let p =
    Pyramid.create ~memtable_flush_count:1_000_000 ~policy:Pyramid.Tombstones
      ~name:"blocks" ()
  in
  let seq = ref 0L in
  for e = 0 to epochs - 1 do
    for i = 0 to epoch_writes e - 1 do
      seq := Int64.add !seq 1L;
      let block = band_base.(e) + (2 * i) in
      Pyramid.insert p ~seq:!seq
        ~key:(Keys.block_key ~medium ~block)
        ~value:(string_of_int block)
    done;
    Pyramid.flush p
  done;
  p

(* Processor time is plenty at these op counts; keep the harness free of
   unix/bechamel plumbing for one experiment. *)
let time_ops f = Bclock.time_ops ~warmup:2_000 ~batch:500 f

let emit name (ops_s, ns_op) =
  Bench_util.emit_row ~kind:"bench_micro"
    [
      ("name", Json.Str name);
      ("ns_per_op", Json.Float ns_op);
      ("ops_per_sec", Json.Float ops_s);
    ];
  Printf.printf "  %-34s %12.0f ns/op %14.0f ops/s\n%!" name ns_op ops_s

let run_in_section () =
  let p = build () in
  let total_blocks = band_base.(epochs) in
  let rng = Rng.create ~seed:0xF00DL in
  let sample n pick = Array.init n (fun _ -> pick ()) in
  (* present: a written (even) block, epoch-uniform — reads have temporal
     locality, so the hot set spreads over recent (small) patches rather
     than block-uniformly over the big old ones; absent: the odd block
     next to a written one — inside every relevant fence, never written *)
  let present =
    sample 512 (fun () ->
        let e = Rng.int rng epochs in
        let block = band_base.(e) + (2 * Rng.int rng (epoch_writes e)) in
        Keys.block_key ~medium ~block)
  in
  let absent =
    sample 512 (fun () ->
        Keys.block_key ~medium ~block:((2 * Rng.int rng (total_blocks / 2)) + 1))
  in
  (* the optimised paths must be bit-identical to the scans they replace *)
  Array.iter
    (fun key ->
      if Pyramid.find p key <> Pyramid.find_naive p key then
        failwith "metadata hot path: fenced lookup diverges from naive")
    (Array.append present absent);
  let run_n = 64 in
  let run_base = band_base.(epochs - 1) in
  let run =
    Pyramid.find_run p ~n:run_n
      ~key_of:(fun i -> Keys.block_key ~medium ~block:(run_base + i))
      ~index:(fun key -> Keys.block_key_block key - run_base)
  in
  for i = 0 to run_n - 1 do
    if
      Pyramid.resolve_fact p run.(i)
      <> Pyramid.find p (Keys.block_key ~medium ~block:(run_base + i))
    then failwith "metadata hot path: find_run diverges from point lookups"
  done;
  let cursor = ref 0 in
  let next keys =
    cursor := (!cursor + 1) land 511;
    keys.(!cursor)
  in
  let naive_present = time_ops (fun () -> ignore (Pyramid.find_naive p (next present))) in
  let fast_present = time_ops (fun () -> ignore (Pyramid.find p (next present))) in
  let naive_absent = time_ops (fun () -> ignore (Pyramid.find_naive p (next absent))) in
  let fast_absent = time_ops (fun () -> ignore (Pyramid.find p (next absent))) in
  let run_point =
    time_ops (fun () ->
        for i = 0 to run_n - 1 do
          ignore (Pyramid.find p (Keys.block_key ~medium ~block:(run_base + i)))
        done)
  in
  let run_batched =
    time_ops (fun () ->
        ignore
          (Pyramid.find_run p ~n:run_n
             ~key_of:(fun i -> Keys.block_key ~medium ~block:(run_base + i))
             ~index:(fun key -> Keys.block_key_block key - run_base)))
  in
  (* a representative metadata op mix: resolve one small run (the read
     path) plus a present and an absent point probe (overwrite
     accounting, thin/dedup checks) *)
  let mix find_point resolve_run () =
    ignore (find_point p (next present));
    ignore (find_point p (next absent));
    resolve_run ()
  in
  let mixed_naive =
    time_ops
      (mix Pyramid.find_naive (fun () ->
           for i = 0 to 7 do
             ignore (Pyramid.find_naive p (Keys.block_key ~medium ~block:(run_base + i)))
           done))
  in
  let mixed_fast =
    time_ops
      (mix Pyramid.find (fun () ->
           ignore
             (Pyramid.find_run p ~n:8
                ~key_of:(fun i -> Keys.block_key ~medium ~block:(run_base + i))
                ~index:(fun key -> Keys.block_key_block key - run_base))))
  in
  Printf.printf "\n  Metadata hot path (%d-patch block index, %d mapped blocks):\n" epochs
    (total_blocks / 2);
  emit "meta-lookup-present-naive" naive_present;
  emit "meta-lookup-present-fenced" fast_present;
  emit "meta-lookup-absent-naive" naive_absent;
  emit "meta-lookup-absent-fenced" fast_absent;
  emit "meta-resolve-64-point" run_point;
  emit "meta-resolve-64-batched" run_batched;
  emit "meta-mixed-op-naive" mixed_naive;
  emit "meta-mixed-op-fenced" mixed_fast;
  let speedup_present = fst fast_present /. fst naive_present in
  let speedup_absent = fst fast_absent /. fst naive_absent in
  let speedup_run = fst run_batched /. fst run_point in
  let speedup_mixed = fst mixed_fast /. fst mixed_naive in
  let probes, fence_skips, bloom_skips = Pyramid.probe_stats p in
  Bench_util.emit_row ~kind:"bench_metadata_hotpath"
    [
      ("present_speedup", Json.Float speedup_present);
      ("absent_speedup", Json.Float speedup_absent);
      ("batched_speedup", Json.Float speedup_run);
      ("mixed_speedup", Json.Float speedup_mixed);
      ("probes", Json.Int probes);
      ("fence_skips", Json.Int fence_skips);
      ("bloom_skips", Json.Int bloom_skips);
    ];
  Printf.printf
    "  speedups: present %.1fx, absent %.1fx, 64-block resolve %.1fx, mixed op %.1fx\n\
    \  probes %d, fence skips %d, bloom skips %d (%.0f%% of probes shed)\n"
    speedup_present speedup_absent speedup_run speedup_mixed probes fence_skips
    bloom_skips
    (100.0
    *. float_of_int (fence_skips + bloom_skips)
    /. float_of_int (max 1 probes));
  Printf.printf
    "  Shape check (mixed metadata op >= 2x naive, results identical): %s\n"
    (if speedup_mixed >= 2.0 then "HOLDS" else "DIVERGES")

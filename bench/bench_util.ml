(* Shared plumbing for the experiment harness: array construction at the
   bench geometry, clock draining, and table printing. *)

module Clock = Purity_sim.Clock
module Fa = Purity_core.Flash_array
module Histogram = Purity_util.Histogram
module Drive = Purity_ssd.Drive
module Export = Purity_telemetry.Export
module Json = Purity_telemetry.Json

(* Machine-readable results: each experiment's printed rows are also
   emitted as JSONL to BENCH_<id>.json through the telemetry exporter's
   line schema, so bench artefacts and phone-home logs parse the same
   way. [section] rotates the file; the experiment id is the title's
   first token ("E1 / Table 1 — ..." -> BENCH_E1.json). *)
let jsonl_out : out_channel option ref = ref None
let current_experiment = ref "bench"
let current_subsection = ref ""

let close_jsonl () =
  match !jsonl_out with
  | Some oc ->
    close_out oc;
    jsonl_out := None
  | None -> ()

let () = at_exit close_jsonl

let emit_row ~kind fields =
  match !jsonl_out with
  | None -> ()
  | Some oc ->
    let fields =
      if !current_subsection = "" then fields
      else ("subsection", Json.Str !current_subsection) :: fields
    in
    output_string oc (Export.row ~kind ~array_id:!current_experiment fields);
    output_char oc '\n'

let section title =
  close_jsonl ();
  let id =
    match String.index_opt title ' ' with
    | Some i -> String.sub title 0 i
    | None -> title
  in
  current_experiment := id;
  current_subsection := "";
  jsonl_out := Some (open_out (Printf.sprintf "BENCH_%s.json" id));
  emit_row ~kind:"bench_section" [ ("title", Json.Str title) ];
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n%!"

let subsection title =
  current_subsection := title;
  emit_row ~kind:"bench_subsection" [ ("title", Json.Str title) ];
  Printf.printf "\n--- %s ---\n%!" title

(* Bench geometry: 11 drives, 7+2, 32 KiB write units, 8-row AUs
   (~260 KiB) — the paper's shape at laptop scale. *)
let bench_config ?(drives = 11) ?(num_aus = 192) ?(read_around_write = true)
    ?(inline_dedup = true) ?(compression = true) () =
  {
    Fa.default_config with
    Fa.drives;
    k = 7;
    m = 2;
    write_unit = 32 * 1024;
    drive_config =
      {
        Drive.default_config with
        Drive.au_size = 4096 + (8 * 32768);
        num_aus;
        dies = 8;
      };
    memtable_flush = 1_000_000;
    read_around_write;
    inline_dedup;
    compression;
  }

let make_array ?drives ?num_aus ?read_around_write ?inline_dedup ?compression () =
  let clock = Clock.create () in
  let config = bench_config ?drives ?num_aus ?read_around_write ?inline_dedup ?compression () in
  (clock, Fa.create ~config ~clock ())

(* Run an async operation to completion on the clock. *)
let await clock f =
  let result = ref None in
  f (fun r -> result := Some r);
  Clock.run clock;
  match !result with Some r -> r | None -> failwith "bench: operation never completed"

let ok = function Ok v -> v | Error _ -> failwith "bench: unexpected error"

let write_ok clock a ~volume ~block data =
  match await clock (Fa.write a ~volume ~block data) with
  | Ok () -> ()
  | Error _ -> failwith "bench: write failed"

let pp_lat name h =
  emit_row ~kind:"bench_latency"
    [
      ("name", Json.Str name);
      ("n", Json.Int (Histogram.count h));
      ("p50_us", Json.Float (Histogram.percentile h 50.0));
      ("p99_us", Json.Float (Histogram.percentile h 99.0));
      ("p999_us", Json.Float (Histogram.percentile h 99.9));
      ("max_us", Json.Float (Histogram.max_value h));
    ];
  Printf.printf "  %-24s p50=%8.0f  p99=%8.0f  p99.9=%8.0f  max=%8.0f  (us, simulated)\n" name
    (Histogram.percentile h 50.0) (Histogram.percentile h 99.0)
    (Histogram.percentile h 99.9) (Histogram.max_value h)

let row3 a b c =
  emit_row ~kind:"bench_row"
    [ ("cols", Json.Arr [ Json.Str a; Json.Str b; Json.Str c ]) ];
  Printf.printf "  %-34s %18s %18s\n" a b c

let row4 a b c d =
  emit_row ~kind:"bench_row"
    [ ("cols", Json.Arr [ Json.Str a; Json.Str b; Json.Str c; Json.Str d ]) ];
  Printf.printf "  %-30s %14s %14s %14s\n" a b c d

let human_bytes b =
  if b >= 1 lsl 30 then Printf.sprintf "%.1f GiB" (float_of_int b /. 1073741824.0)
  else if b >= 1 lsl 20 then Printf.sprintf "%.1f MiB" (float_of_int b /. 1048576.0)
  else if b >= 1 lsl 10 then Printf.sprintf "%.1f KiB" (float_of_int b /. 1024.0)
  else Printf.sprintf "%d B" b

let human_us us =
  if us >= 1e6 then Printf.sprintf "%.2f s" (us /. 1e6)
  else if us >= 1e3 then Printf.sprintf "%.2f ms" (us /. 1e3)
  else Printf.sprintf "%.0f us" us

(* CPU micro-benchmarks (Bechamel): the real host-CPU cost of the
   primitives the simulator charges simulated time for. These are the
   only wall-clock numbers in the harness. *)

open Bechamel
open Toolkit
module Rng = Purity_util.Rng
module Lz = Purity_compress.Lz
module Rs = Purity_erasure.Reed_solomon
module Xxhash = Purity_util.Xxhash
module Tp = Purity_encoding.Tuple_page
module Patch = Purity_pyramid.Patch
module Fact = Purity_pyramid.Fact

let rng = Rng.create ~seed:0xBEEFL

let incompressible_32k = Bytes.to_string (Rng.bytes rng 32768)

let textish_32k =
  let b = Buffer.create 32768 in
  while Buffer.length b < 32768 do
    Buffer.add_string b "row|id=12345678|st=ACTIVE |bal=000042|name=customer_0042|"
  done;
  Buffer.sub b 0 32768

let compressed_32k = Lz.compress textish_32k

let rs = Rs.create ~k:7 ~m:2
let shards = Array.init 7 (fun _ -> Rng.bytes rng 32768)
let coded = Array.append (Array.map Bytes.copy shards) (Rs.encode rs shards)

let erased () =
  let s = Array.map Option.some coded in
  s.(1) <- None;
  s.(5) <- None;
  s

let tuples =
  List.init 2000 (fun i ->
      [| Int64.of_int (i mod 7); Int64.of_int i; Int64.of_int (1000 + (i mod 37)) |])

let page = Tp.encode ~arity:3 tuples

let patch_a =
  Patch.of_facts
    (List.init 2000 (fun i ->
         Fact.make ~key:(Printf.sprintf "k%06d" i) ~value:"v" ~seq:(Int64.of_int i)))

let patch_b =
  Patch.of_facts
    (List.init 2000 (fun i ->
         Fact.make ~key:(Printf.sprintf "k%06d" (i + 1000)) ~value:"w"
           ~seq:(Int64.of_int (i + 2000))))

let tests =
  [
    Test.make ~name:"lz-compress-32k-text" (Staged.stage (fun () -> ignore (Lz.compress textish_32k)));
    Test.make ~name:"lz-compress-32k-random"
      (Staged.stage (fun () -> ignore (Lz.compress incompressible_32k)));
    Test.make ~name:"lz-decompress-32k"
      (Staged.stage (fun () -> ignore (Lz.decompress compressed_32k ~expected_len:32768)));
    Test.make ~name:"rs-7+2-encode-32k-shards"
      (Staged.stage (fun () -> ignore (Rs.encode rs shards)));
    Test.make ~name:"rs-7+2-decode-2-erasures"
      (Staged.stage (fun () -> ignore (Rs.decode rs (erased ()))));
    Test.make ~name:"xxhash64-32k"
      (Staged.stage (fun () ->
           ignore (Xxhash.hash (Bytes.unsafe_of_string incompressible_32k) ~pos:0 ~len:32768)));
    Test.make ~name:"tuple-page-encode-2k"
      (Staged.stage (fun () -> ignore (Tp.encode ~arity:3 tuples)));
    Test.make ~name:"tuple-page-scan-packed"
      (Staged.stage (fun () -> ignore (Tp.scan page ~field:0 ~value:3L)));
    Test.make ~name:"tuple-page-scan-naive"
      (Staged.stage (fun () -> ignore (Tp.scan_naive page ~field:0 ~value:3L)));
    Test.make ~name:"patch-merge-2x2k"
      (Staged.stage (fun () -> ignore (Patch.merge patch_a patch_b)));
  ]

let run () =
  Bench_util.section "Micro — host-CPU cost of the primitives (Bechamel, wall clock)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  let grouped = Test.make_grouped ~name:"purity" ~fmt:"%s %s" tests in
  let raw = Benchmark.all cfg instances grouped in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  (match Hashtbl.find_opt merged (Measure.label Instance.monotonic_clock) with
  | None -> Printf.printf "  (no results)\n"
  | Some per_test ->
    let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) per_test [] in
    List.iter
      (fun (name, ols_result) ->
        match Analyze.OLS.estimates ols_result with
        | Some (est :: _) ->
          let name =
            match String.index_opt name ' ' with
            | Some i -> String.sub name (i + 1) (String.length name - i - 1)
            | None -> name
          in
          Bench_util.emit_row ~kind:"bench_micro"
            [
              ("name", Purity_telemetry.Json.Str name);
              ("ns_per_op", Purity_telemetry.Json.Float est);
            ];
          Printf.printf "  %-34s %12.0f ns/op\n" name est
        | _ -> Printf.printf "  %-34s %12s\n" name "n/a")
      (List.sort compare rows));
  Printf.printf
    "\n  Note: packed scan vs naive scan shows the benefit of comparing bit\n\
    \  patterns instead of decompressing tuples (paper section 4.9).\n";
  (* kernels before the metadata hot path: the 600k-fact index that
     section builds leaves the major heap in a state that taxes the
     allocating kernel loops (rs-encode drops below its shape floor even
     after a compact), while the reverse order perturbs neither *)
  Exp_kernels.run_in_section ();
  Exp_metadata_hotpath.run_in_section ()

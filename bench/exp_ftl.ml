(* E11 — §2.1/§3.3: why Purity writes sequentially.

   A page-mapped FTL under host random writes amplifies and stalls; the
   same device under sequential (log-structured) writes does neither.
   This is the motivation experiment for the entire log-structured
   design. *)

open Bench_util
module Ftl = Purity_ssd.Ftl
module Rng = Purity_util.Rng
module Histogram = Purity_util.Histogram

let phase ftl rng ~random n =
  let hist = Histogram.create () in
  let host = Ftl.host_pages ftl in
  let cursor = ref 0 in
  for _ = 1 to n do
    let lpn =
      if random then Rng.int rng host
      else begin
        let l = !cursor in
        cursor := (l + 1) mod host;
        l
      end
    in
    Histogram.record hist (Ftl.write ftl ~lpn)
  done;
  hist

let run () =
  section "E11 / §2.1 — random writes against a page-mapped FTL (motivation)";
  let rng = Rng.create ~seed:111L in
  (* sequential (log-structured) use *)
  let seq_ftl = Ftl.create () in
  let n = 3 * Ftl.host_pages seq_ftl in
  let seq_hist = phase seq_ftl rng ~random:false n in
  (* random overwrite use *)
  let rnd_ftl = Ftl.create () in
  let _fill = phase rnd_ftl rng ~random:false (Ftl.host_pages rnd_ftl) in
  let rnd_hist = phase rnd_ftl rng ~random:true n in
  Printf.printf "  %-24s %18s %18s\n" "" "sequential writes" "random writes";
  Printf.printf "  %-24s %17.2fx %17.2fx\n" "write amplification"
    (Ftl.write_amplification seq_ftl)
    (Ftl.write_amplification rnd_ftl);
  Printf.printf "  %-24s %15.0f us %15.0f us\n" "write latency p50"
    (Histogram.percentile seq_hist 50.0)
    (Histogram.percentile rnd_hist 50.0);
  Printf.printf "  %-24s %15.0f us %15.0f us\n" "write latency p99.9"
    (Histogram.percentile seq_hist 99.9)
    (Histogram.percentile rnd_hist 99.9);
  Printf.printf "  %-24s %15.0f us %15.0f us\n" "write latency max"
    (Histogram.max_value seq_hist) (Histogram.max_value rnd_hist);
  let s = Ftl.stats rnd_ftl in
  Printf.printf "\n  random phase: %d erases, %d GC relocations for %d host writes\n"
    s.Ftl.erases s.Ftl.gc_relocations s.Ftl.host_writes;
  (* both devices join one registry under distinct prefixes; the snapshot
     rows land in BENCH_E11.json alongside the printed table *)
  let reg = Purity_telemetry.Registry.create () in
  Ftl.register_telemetry ~prefix:"ftl/sequential" seq_ftl reg;
  Ftl.register_telemetry ~prefix:"ftl/random" rnd_ftl reg;
  List.iter
    (fun (key, v) ->
      emit_row ~kind:"bench_metric"
        [
          ("key", Json.Str key);
          ("value", Purity_telemetry.Export.json_of_value v);
        ])
    (Purity_telemetry.Registry.snapshot reg);
  Printf.printf
    "\n  Paper: \"flash translation layers behave erratically when exposed to\n\
    \  random writes\" -> Purity presents drives with large sequential writes.\n";
  Printf.printf "  Shape check: random WA > 1.3x while sequential ~1.0x -> %s\n"
    (if Ftl.write_amplification rnd_ftl > 1.3 && Ftl.write_amplification seq_ftl < 1.05 then
       "HOLDS"
     else "DIVERGES");
  Printf.printf "  Shape check: random p99.9 >> sequential p99.9 -> %s\n"
    (if Histogram.percentile rnd_hist 99.9 > 5.0 *. Histogram.percentile seq_hist 99.9 then
       "HOLDS"
     else "DIVERGES")

(* E13 (§1 in-text claim) — asynchronous off-site replication.

   "A single Purity appliance can provide over 7 GiB/s of throughput ...
   even through multiple device failures, and while providing
   asynchronous off-site replication."

   We measure the same 32 KiB workload with replication cycles running
   concurrently against a WAN-linked target array, and show the delta
   protocol: after the initial sync, only changed blocks cross the wire. *)

open Bench_util
module Fa = Purity_core.Flash_array
module Wl = Purity_workload.Workload
module Repl = Purity_replication.Replication
module Clock = Purity_sim.Clock
module Ac = Purity_activecluster.Activecluster
module Histogram = Purity_util.Histogram

let setup () =
  let clock = Clock.create () in
  let cfg = bench_config () in
  let source = Fa.create ~config:cfg ~clock () in
  let target = Fa.create ~config:{ cfg with Fa.seed = 4242L } ~clock () in
  let repl = Repl.create ~source ~target () in
  (clock, source, target, repl)

let prefill clock source volumes =
  let dg = Purity_workload.Datagen.create ~seed:131L in
  List.iter
    (fun (v, size) ->
      let rec fill b =
        if b < size / 2 then begin
          write_ok clock source ~volume:v ~block:b
            (Purity_workload.Datagen.compressible dg (2048 * 512) ~target_ratio:2.0);
          fill (b + 2048)
        end
      in
      fill 0)
    volumes

let run_workload clock source volumes ~while_replicating repl =
  let wl = Wl.uniform ~seed:132L ~volumes ~read_fraction:0.7 ~io_blocks:64 () in
  let result = ref None in
  Wl.run source wl ~ops:2000 ~concurrency:16 (fun r -> result := Some r);
  if while_replicating then begin
    (* replication cycles on a cadence until the workload finishes *)
    let rec cycle () =
      if !result = None then
        Repl.replicate_all repl (fun _ ->
            Clock.schedule clock ~delay:20_000.0 (fun () ->
                if !result = None then cycle ()))
    in
    cycle ()
  end;
  Clock.run clock;
  Option.get !result

let rec run () =
  section "E13 / §1 — throughput while replicating (extension experiment)";
  let volumes = [ ("lun0", 16384); ("lun1", 16384) ] in
  (* baseline: no replication *)
  let clock, source, _target, repl = setup () in
  Wl.provision source ~volumes;
  prefill clock source volumes;
  let base = run_workload clock source volumes ~while_replicating:false repl in
  (* with replication active *)
  let clock, source, target, repl = setup () in
  Wl.provision source ~volumes;
  prefill clock source volumes;
  List.iter (fun (v, _) -> ignore (Repl.protect repl v)) volumes;
  (* initial sync before the measured window *)
  ignore (await clock (fun k -> Repl.replicate_all repl k));
  let with_repl = run_workload clock source volumes ~while_replicating:true repl in
  let s = Repl.stats repl in
  Printf.printf "  %-30s %14s %14s\n" "" "no replication" "replicating";
  Printf.printf "  %-30s %14.0f %14.0f\n" "IOPS @ 32 KiB" base.Wl.iops with_repl.Wl.iops;
  Printf.printf "  %-30s %14.0f %14.0f\n" "read p99.9 (us)"
    (Purity_util.Histogram.percentile base.Wl.read_lat 99.9)
    (Purity_util.Histogram.percentile with_repl.Wl.read_lat 99.9);
  Printf.printf "\n  replication: %d cycles, %d changed blocks, %s over the wire\n"
    s.Repl.cycles s.Repl.total_changed_blocks (human_bytes s.Repl.total_shipped_bytes);
  (* drain the workload's tail of un-replicated writes first *)
  ignore (await clock (fun k -> Repl.replicate_all repl k));
  (* delta efficiency: one more small write, one more cycle *)
  write_ok clock source ~volume:"lun0" ~block:0
    (Purity_workload.Datagen.random (Purity_workload.Datagen.create ~seed:133L) (64 * 512));
  let r = await clock (fun k -> Repl.replicate_once repl "lun0" k) in
  Printf.printf "  delta cycle after one 32 KiB write: %d blocks, %s shipped\n"
    r.Repl.changed_blocks (human_bytes r.Repl.shipped_bytes);
  Printf.printf "  target array now serves %d volumes (consistent snapshots)\n"
    (List.length (Fa.list_volumes target));
  let ratio = with_repl.Wl.iops /. base.Wl.iops in
  Printf.printf
    "\n  Paper: full service during asynchronous replication.\n";
  Printf.printf "  Shape check: replication costs < 20%% of IOPS -> %s (%.0f%%)\n"
    (if ratio > 0.8 then "HOLDS" else "DIVERGES")
    (100.0 *. ratio);
  Printf.printf "  Shape check: delta cycle ships only the change -> %s (%d blocks)\n"
    (if r.Repl.changed_blocks = 64 then "HOLDS" else "DIVERGES")
    r.Repl.changed_blocks;
  run_activecluster ()

(* Synchronous active-active (ActiveCluster): the cost of the mirror.
   Every acked write has crossed the interconnect and landed on both
   arrays, so the round trip is on the host's write path — versus the
   async protocol above, which keeps it off. We measure the same write
   stream three ways: plain single-array writes, mirrored writes in a
   stretched pod, and solo writes after a partition fenced the peer
   (mediation already decided; the RTT is gone again). *)
and run_activecluster () =
  section "Replication — synchronous active-active (stretched pod) write latency";
  let clock = Clock.create () in
  let cfg = bench_config () in
  let a = Fa.create ~config:cfg ~clock () in
  let b = Fa.create ~config:{ cfg with Fa.seed = 4242L } ~clock () in
  let ac = Ac.create ~a ~b ~pod:"pod0" () in
  (match Ac.create_stretched ac "lun0" ~blocks:16384 with
  | Ok () -> ()
  | Error _ -> failwith "bench: create_stretched failed");
  let dg = Purity_workload.Datagen.create ~seed:134L in
  let io_blocks = 64 (* 32 KiB *) in
  let measure n write =
    let h = Histogram.create () in
    for i = 0 to n - 1 do
      let block = i * io_blocks mod 16384 in
      let data = Purity_workload.Datagen.compressible dg (io_blocks * 512) ~target_ratio:2.0 in
      let t0 = Clock.now clock in
      let done_ = ref false in
      write ~block data (fun () ->
          Histogram.record h (Clock.now clock -. t0);
          done_ := true);
      Clock.run clock;
      if not !done_ then failwith "bench: mirrored write never completed"
    done;
    h
  in
  let ops = 300 in
  let local =
    measure ops (fun ~block data k ->
        Fa.write a ~volume:"lun0" ~block data (function
          | Ok () -> k ()
          | Error _ -> failwith "bench: write failed"))
  in
  let mirrored =
    measure ops (fun ~block data k ->
        Ac.write ac ~prefer:Ac.A ~volume:"lun0" ~block data (function
          | Ok () -> k ()
          | Error _ -> failwith "bench: mirrored write failed"))
  in
  (* partition: first write pays the mediation race, the rest run solo *)
  Ac.cut_link ac;
  ignore
    (await clock (fun k -> Ac.write ac ~prefer:Ac.A ~volume:"lun0" ~block:0
        (Purity_workload.Datagen.compressible dg (io_blocks * 512) ~target_ratio:2.0)
        k));
  let solo =
    measure ops (fun ~block data k ->
        Ac.write ac ~prefer:Ac.A ~volume:"lun0" ~block data (function
          | Ok () -> k ()
          | Error _ -> failwith "bench: solo write failed"))
  in
  pp_lat "local write (32 KiB)" local;
  pp_lat "mirrored write (sync)" mirrored;
  pp_lat "solo write (fenced peer)" solo;
  (* failback, for the record *)
  Ac.heal_link ac;
  (match await clock (fun k -> Ac.settle ac k) with
  | Ac.Sync, _ ->
    let c = Ac.counters ac in
    Printf.printf "\n  failback: resynced %d blocks, %d mirror writes acked\n"
      c.Ac.resync_blocks c.Ac.mirror_acked
  | st, _ -> Printf.printf "\n  failback did not reconverge (%s)\n" (Ac.status_name st));
  let p50 h = Histogram.percentile h 50.0 in
  Printf.printf "\n  Paper: ActiveCluster adds one interconnect round trip to writes.\n";
  Printf.printf "  Shape check: mirrored p50 > local p50 -> %s (%.0f vs %.0f us)\n"
    (if p50 mirrored > p50 local then "HOLDS" else "DIVERGES")
    (p50 mirrored) (p50 local);
  Printf.printf "  Shape check: solo writes shed the round trip -> %s (%.0f us)\n"
    (if p50 solo < p50 mirrored then "HOLDS" else "DIVERGES")
    (p50 solo)

(* Data-plane kernels, ref vs fast (wall clock): the word-at-a-time
   CRC32c / GF(256) / RS-encode / LZ / fingerprint kernels against the
   byte-at-a-time reference implementations they replaced, plus the
   composed segment-fill pipeline (fingerprint -> compress -> frame+CRC ->
   RS parity) with and without the reused scratch arena. Runs inside the
   Micro section so its rows land in BENCH_Micro.json next to the other
   host-CPU numbers; `main.exe -- kernels` runs it standalone.

   Every fast kernel is asserted bit-identical to its reference on the
   bench inputs before anything is timed (the qcheck suites prove the
   same over random inputs). *)

module Rng = Purity_util.Rng
module Crc32c = Purity_util.Crc32c
module Xxhash = Purity_util.Xxhash
module Kernel_stats = Purity_util.Kernel_stats
module Varint = Purity_util.Varint
module Gf256 = Purity_erasure.Gf256
module Rs = Purity_erasure.Reed_solomon
module Lz = Purity_compress.Lz
module Cblock = Purity_compress.Cblock
module Json = Purity_telemetry.Json
module Pool = Purity_par.Pool

let rng = Rng.create ~seed:0xCAFEL

let random_32k = Rng.bytes rng 32768

let textish n tag =
  let b = Buffer.create n in
  while Buffer.length b < n do
    Buffer.add_string b
      (Printf.sprintf "row|id=%08d|st=ACTIVE |bal=000042|name=customer_%04d|" tag
         (tag mod 7919))
  done;
  Buffer.sub b 0 n

let text_32k = textish 32768 12345678

(* Processor time is plenty at these op counts (same harness as the
   metadata hot-path experiment). *)
let time_ops ?warmup ?batch f = Bclock.time_ops ?warmup ?batch f

let emit name ~bytes (ops_s, ns_op) =
  let mb_s = float_of_int bytes *. ops_s /. 1e6 in
  Bench_util.emit_row ~kind:"bench_micro"
    [
      ("name", Json.Str name);
      ("ns_per_op", Json.Float ns_op);
      ("ops_per_sec", Json.Float ops_s);
      ("mb_per_s", Json.Float mb_s);
    ];
  Printf.printf "  %-34s %12.0f ns/op %12.0f MB/s\n%!" name ns_op mb_s;
  mb_s

(* ---------- the composed segment-fill pipeline ----------

   A segio's worth of application blocks through the full reduction
   pipeline: per-512B dedup fingerprints, compression, cblock framing
   with CRC, then RS parity over the filled payload rows — the ref
   variant exactly as the write path used to do it (fresh buffers and
   byte kernels per block), the fast variant on the scratch arena and the
   word kernels. Both produce the same bytes. *)

let fill_k = 7
let fill_m = 2
let fill_wu = 4096
let fill_rows_cap = 20
let fill_cap = fill_k * fill_wu * fill_rows_cap
let fill_rs = Rs.create ~k:fill_k ~m:fill_m

(* 12 compressible + 4 incompressible 32 KiB blocks *)
let fill_blocks =
  Array.init 16 (fun i ->
      if i mod 4 = 3 then Bytes.to_string (Rng.bytes rng 32768)
      else textish 32768 (1000000 + (7717 * i)))

let fingerprints_ref b =
  let bb = Bytes.unsafe_of_string b in
  for j = 0 to (String.length b / 512) - 1 do
    ignore (Xxhash.hash63_ref bb ~pos:(j * 512) ~len:512 : int)
  done

let fingerprints_fast b =
  let bb = Bytes.unsafe_of_string b in
  for j = 0 to (String.length b / 512) - 1 do
    ignore (Xxhash.hash63 bb ~pos:(j * 512) ~len:512 : int)
  done

let parity_rows encode pos out =
  let rows = (pos + (fill_k * fill_wu) - 1) / (fill_k * fill_wu) in
  Array.init rows (fun r ->
      encode fill_rs
        (Array.init fill_k (fun c -> Bytes.sub out (((r * fill_k) + c) * fill_wu) fill_wu)))

let fill_ref () =
  let out = Bytes.make fill_cap '\000' in
  let pos = ref 0 in
  Array.iter
    (fun b ->
      fingerprints_ref b;
      let n = String.length b in
      let c = Lz.compress_ref b in
      let enc, payload = if String.length c < n then ('\001', c) else ('\000', b) in
      let buf = Buffer.create (String.length payload + 16) in
      Varint.write buf n;
      Buffer.add_char buf enc;
      Varint.write buf (String.length payload);
      Buffer.add_int32_le buf
        (Crc32c.digest_ref (Bytes.unsafe_of_string payload) ~pos:0
           ~len:(String.length payload));
      Buffer.add_string buf payload;
      Buffer.blit buf 0 out !pos (Buffer.length buf);
      pos := !pos + Buffer.length buf)
    fill_blocks;
  (out, !pos, parity_rows Rs.encode_ref !pos out)

let fill_arena = (Lz.create_scratch (), Buffer.create (40 * 1024))

let fill_fast () =
  let scratch, frame = fill_arena in
  let out = Bytes.make fill_cap '\000' in
  let pos = ref 0 in
  Array.iter
    (fun b ->
      fingerprints_fast b;
      Buffer.clear frame;
      ignore (Cblock.add_frame ~scratch frame b : int);
      Buffer.blit frame 0 out !pos (Buffer.length frame);
      pos := !pos + Buffer.length frame)
    fill_blocks;
  (out, !pos, parity_rows Rs.encode !pos out)

let check_equiv () =
  (* point kernels *)
  if Crc32c.digest random_32k ~pos:0 ~len:32768 <> Crc32c.digest_ref random_32k ~pos:0 ~len:32768
  then failwith "kernels: crc32c fast diverges from ref";
  let gf_fast = Bytes.copy random_32k and gf_ref = Bytes.copy random_32k in
  Gf256.mul_slice 0x57 ~src:random_32k ~dst:gf_fast;
  Gf256.mul_slice_ref 0x57 ~src:random_32k ~dst:gf_ref;
  if gf_fast <> gf_ref then failwith "kernels: gf256 mul_slice fast diverges from ref";
  let shards = Array.init fill_k (fun _ -> Rng.bytes rng 32768) in
  if Rs.encode fill_rs shards <> Rs.encode_ref fill_rs shards then
    failwith "kernels: rs encode fast diverges from ref";
  if Lz.compress text_32k <> Lz.compress_ref text_32k then
    failwith "kernels: lz compress fast diverges from ref";
  let c = Lz.compress_ref text_32k in
  if Lz.decompress c ~expected_len:32768 <> Lz.decompress_ref c ~expected_len:32768 then
    failwith "kernels: lz decompress fast diverges from ref";
  if
    Xxhash.hash63 random_32k ~pos:0 ~len:32768
    <> Xxhash.hash63_ref random_32k ~pos:0 ~len:32768
  then failwith "kernels: hash63 fast diverges from ref";
  let ro, rn, rp = fill_ref () in
  let fo, fn, fp = fill_fast () in
  if rn <> fn || Bytes.sub ro 0 rn <> Bytes.sub fo 0 fn || rp <> fp then
    failwith "kernels: segment fill fast diverges from ref"

let shape name ok =
  Printf.printf "  Shape check (%s): %s\n" name (if ok then "HOLDS" else "DIVERGES")

(* ---------- domain-scaled segment fill ----------

   The parallel fill exactly as the write path shards it over
   Purity_par.Pool: per-block fingerprint -> LZ -> frame+CRC on a
   per-lane arena via [Pool.map] (frames return in index order), then a
   serial in-order blit and RS parity — byte-identical to the serial fill
   at every domain count, which is asserted before anything is timed.

   This host has 2 physical cores, so 4-domain wall-clock numbers cannot
   show 4-way scaling; the HOLD checks ride on the *modeled* critical
   path instead: per-lane chunk compute is measured serially (processor
   time, one lane at a time), the serial residue (blit + parity + merge)
   is measured once, and modeled speedup = (total + residue) /
   (slowest lane + residue). Wall-clock rows are emitted alongside as
   informational (they bound at ~2x here however many lanes run). *)

let par_nblocks = 64
let par_cap = 80 * fill_k * fill_wu

(* 7 of 8 compressible: compression dominates the per-block cost, the
   write path's common case *)
let par_blocks =
  Array.init par_nblocks (fun i ->
      if i mod 8 = 7 then Bytes.to_string (Rng.bytes rng 32768)
      else textish 32768 (2000000 + (7717 * i)))

let par_arenas lanes =
  Array.init lanes (fun _ -> (Lz.create_scratch (), Buffer.create (40 * 1024)))

let block_frame (scratch, frame) b =
  fingerprints_fast b;
  Buffer.clear frame;
  ignore (Cblock.add_frame ~scratch frame b : int);
  Buffer.contents frame

(* The segio buffer, preallocated and zeroed once like the real writer's:
   every fill writes the same [0, pos) prefix, so the row padding beyond
   [pos] stays zero and parity over the padded tail is deterministic. *)
let par_out = Bytes.make par_cap '\000'

(* serial middle shared by every lane count: in-order frame blit *)
let blit_frames frames =
  let pos = ref 0 in
  Array.iter
    (fun f ->
      Bytes.blit_string f 0 par_out !pos (String.length f);
      pos := !pos + String.length f)
    frames;
  !pos

let row_count pos = (pos + (fill_k * fill_wu) - 1) / (fill_k * fill_wu)

(* parity the way Writer.finalize shards it: row-major over the pool —
   rows are independent, so there is no merge stage at all *)
let parity_rows_par pool pos out =
  let shards r =
    Array.init fill_k (fun c -> Bytes.sub out (((r * fill_k) + c) * fill_wu) fill_wu)
  in
  Pool.map pool ~tasks:(row_count pos) (fun ~lane:_ r -> Rs.encode fill_rs (shards r))

let par_fill pool arenas =
  let frames =
    Pool.map pool ~tasks:par_nblocks (fun ~lane i -> block_frame arenas.(lane) par_blocks.(i))
  in
  let pos = blit_frames frames in
  (pos, parity_rows_par pool pos par_out)

let run_scaling () =
  Printf.printf "\n  Domain-scaled segment fill (%d x 32 KiB blocks, 2-core host):\n"
    par_nblocks;
  (* byte-identity first: the whole point of the deterministic pool *)
  let serial_arena = par_arenas 1 in
  let serial_frames = Array.map (block_frame serial_arena.(0)) par_blocks in
  let s_pos = blit_frames serial_frames in
  let s_snap = Bytes.sub par_out 0 s_pos in
  let s_par = parity_rows Rs.encode s_pos par_out in
  List.iter
    (fun domains ->
      let pool = Pool.create ~domains () in
      let p_pos, p_par = par_fill pool (par_arenas (Pool.lanes pool)) in
      Pool.shutdown pool;
      if s_pos <> p_pos || Bytes.sub par_out 0 p_pos <> s_snap || s_par <> p_par then
        failwith
          (Printf.sprintf "kernels: %d-domain fill diverges from serial" domains))
    [ 1; 2; 4 ];
  (* Modeled critical path: every stage the parallel fill executes is
     timed serially (one lane's work at a time, so the 2-core host does
     not distort it) and composed with the same arithmetic par_fill uses:
     - frame stage: slowest lane's chunk of blocks;
     - parity: encode_par folds ceil(k/lanes) of the k data shards per
       lane, then XOR-merges (lanes - 1) partial parity sets;
     - blit: serial, in frame order, at every lane count. *)
  let time_once f =
    let ops_s, _ = time_ops ~warmup:3 ~batch:1 (fun () -> ignore (f () : int)) in
    1.0 /. ops_s
  in
  (* Per-block frame times, all from one interleaved pass (identical GC
     conditions for every block); min over rounds, since scheduler and GC
     noise only ever inflate a timing. Lane-chunk costs are then sums of
     the same per-block numbers at every lane count, so the speedup ratio
     is not at the mercy of two timing loops drawing different noise. *)
  Gc.compact ();
  let block_times =
    let best = Array.make par_nblocks infinity in
    Array.iter (fun b -> ignore (block_frame serial_arena.(0) b : string)) par_blocks;
    for _ = 1 to 25 do
      Array.iteri
        (fun i b ->
          let s = Bclock.now_s () in
          ignore (block_frame serial_arena.(0) b : string);
          best.(i) <- Float.min best.(i) (Bclock.now_s () -. s))
        par_blocks
    done;
    best
  in
  let chunk_time lanes lane =
    let lo, len = Pool.chunk ~lanes ~tasks:par_nblocks lane in
    let t = ref 0.0 in
    for i = lo to lo + len - 1 do
      t := !t +. block_times.(i)
    done;
    !t
  in
  let blit_t = time_once (fun () -> blit_frames serial_frames) in
  let parity_t =
    time_once (fun () ->
        Array.length (parity_rows Rs.encode s_pos par_out))
  in
  let rows = row_count s_pos in
  let modeled lanes =
    (* total and slowest-lane come from the same per-chunk measurements,
       so the frame-stage term is bounded by [lanes] by construction *)
    let slowest = ref 0.0 and total = ref 0.0 in
    for lane = 0 to lanes - 1 do
      let t = chunk_time lanes lane in
      slowest := Float.max !slowest t;
      total := !total +. t
    done;
    (* row-major parity: the slowest lane encodes ceil(rows/lanes) rows *)
    let parity_frac =
      float_of_int ((rows + lanes - 1) / lanes) /. float_of_int rows
    in
    (!total +. parity_t +. blit_t)
    /. (!slowest +. (parity_t *. parity_frac) +. blit_t)
  in
  let m2 = modeled 2 and m4 = modeled 4 in
  (* wall clock, informational: real elapsed time with the lanes live *)
  let wall domains =
    let pool = Pool.create ~domains () in
    let arenas = par_arenas (Pool.lanes pool) in
    let s = Bclock.time_wall (fun () -> ignore (par_fill pool arenas)) in
    Pool.shutdown pool;
    s
  in
  let w1 = wall 1 and w2 = wall 2 and w4 = wall 4 in
  let fill_bytes = par_nblocks * 32768 in
  let emit_wall name s =
    Bench_util.emit_row ~kind:"bench_micro"
      [
        ("name", Json.Str name);
        ("ns_per_op", Json.Float (s *. 1e9));
        ("ops_per_sec", Json.Float (1.0 /. s));
        ("mb_per_s", Json.Float (float_of_int fill_bytes /. s /. 1e6));
      ];
    Printf.printf "  %-34s %12.0f ns/op %12.0f MB/s\n%!" name (s *. 1e9)
      (float_of_int fill_bytes /. s /. 1e6)
  in
  emit_wall "parfill-64x32k-1domain-wall" w1;
  emit_wall "parfill-64x32k-2domain-wall" w2;
  emit_wall "parfill-64x32k-4domain-wall" w4;
  Bench_util.emit_row ~kind:"bench_kernels"
    [
      ("fill_par_2d_modeled_speedup", Json.Float m2);
      ("fill_par_4d_modeled_speedup", Json.Float m4);
      ("fill_par_2d_wall_speedup", Json.Float (w1 /. w2));
      ("fill_par_4d_wall_speedup", Json.Float (w1 /. w4));
    ];
  Printf.printf
    "  scaling: modeled critical path %.2fx @2 domains, %.2fx @4 domains;\n\
    \  wall clock %.2fx @2, %.2fx @4 (2-core host caps wall at ~2x)\n"
    m2 m4 (w1 /. w2) (w1 /. w4);
  shape "parallel fill >= 1.8x @2 domains (modeled critical path), bytes identical"
    (m2 >= 1.8);
  shape "parallel fill >= 3.0x @4 domains (modeled critical path), bytes identical"
    (m4 >= 3.0)

let run_in_section () =
  (* earlier sections (the metadata hot path builds a 600k-fact index)
     leave a big major heap behind; compact so their GC tax doesn't land
     on the allocating kernel loops below *)
  Gc.compact ();
  check_equiv ();
  (* exercise the kernels/<k>_ns telemetry counters under a wall clock,
     then remove it so the timed loops below pay no per-call clock reads *)
  Kernel_stats.set_clock (Some Bclock.now_ns);
  ignore (fill_fast ());
  Kernel_stats.set_clock None;
  let kb k = Printf.sprintf "%s %d calls / %d bytes" k.Kernel_stats.name k.calls k.bytes in
  Printf.printf "\n  Data-plane kernels (ref = byte-at-a-time, fast = word-at-a-time):\n";
  Printf.printf "  telemetry: %s\n"
    (String.concat ", " (List.map kb [ Kernel_stats.crc; Kernel_stats.gf; Kernel_stats.fingerprint ]));

  let crc_ref =
    time_ops (fun () -> ignore (Crc32c.digest_ref random_32k ~pos:0 ~len:32768 : int32))
  in
  let crc_fast =
    time_ops (fun () -> ignore (Crc32c.digest random_32k ~pos:0 ~len:32768 : int32))
  in
  let gf_dst = Bytes.create 32768 in
  let gf_ref =
    time_ops (fun () -> Gf256.mul_slice_ref 0x57 ~src:random_32k ~dst:gf_dst)
  in
  let gf_fast = time_ops (fun () -> Gf256.mul_slice 0x57 ~src:random_32k ~dst:gf_dst) in
  let shards = Array.init fill_k (fun _ -> Rng.bytes rng 32768) in
  let rs_ref =
    time_ops ~batch:10 (fun () -> ignore (Rs.encode_ref fill_rs shards : Bytes.t array))
  in
  let rs_fast =
    time_ops ~batch:10 (fun () -> ignore (Rs.encode fill_rs shards : Bytes.t array))
  in
  let lz_c = Lz.compress_ref text_32k in
  let lz_ref =
    time_ops ~batch:10 (fun () ->
        ignore (Lz.decompress_ref (Lz.compress_ref text_32k) ~expected_len:32768 : string))
  in
  let lz_fast =
    time_ops ~batch:10 (fun () ->
        ignore (Lz.decompress (Lz.compress text_32k) ~expected_len:32768 : string))
  in
  let unz_ref =
    time_ops (fun () -> ignore (Lz.decompress_ref lz_c ~expected_len:32768 : string))
  in
  let unz_fast =
    time_ops (fun () -> ignore (Lz.decompress lz_c ~expected_len:32768 : string))
  in
  let fp_ref =
    time_ops (fun () -> ignore (Xxhash.hash63_ref random_32k ~pos:0 ~len:32768 : int))
  in
  let fp_fast =
    time_ops (fun () -> ignore (Xxhash.hash63 random_32k ~pos:0 ~len:32768 : int))
  in
  let fill_bytes = 16 * 32768 in
  let fill_ref_t =
    time_ops ~warmup:20 ~batch:2 (fun () -> ignore (fill_ref () : Bytes.t * int * Bytes.t array array))
  in
  let fill_fast_t =
    time_ops ~warmup:20 ~batch:2 (fun () -> ignore (fill_fast () : Bytes.t * int * Bytes.t array array))
  in
  ignore (emit "crc32c-32k-ref" ~bytes:32768 crc_ref : float);
  ignore (emit "crc32c-32k-fast" ~bytes:32768 crc_fast : float);
  ignore (emit "gf256-mul-slice-32k-ref" ~bytes:32768 gf_ref : float);
  ignore (emit "gf256-mul-slice-32k-fast" ~bytes:32768 gf_fast : float);
  ignore (emit "rs-7+2-encode-32k-ref" ~bytes:(fill_k * 32768) rs_ref : float);
  ignore (emit "rs-7+2-encode-32k-fast" ~bytes:(fill_k * 32768) rs_fast : float);
  ignore (emit "lz-roundtrip-32k-text-ref" ~bytes:32768 lz_ref : float);
  ignore (emit "lz-roundtrip-32k-text-fast" ~bytes:32768 lz_fast : float);
  ignore (emit "lz-decompress-32k-ref" ~bytes:32768 unz_ref : float);
  ignore (emit "lz-decompress-32k-fast" ~bytes:32768 unz_fast : float);
  ignore (emit "fingerprint-32k-ref" ~bytes:32768 fp_ref : float);
  ignore (emit "fingerprint-32k-fast" ~bytes:32768 fp_fast : float);
  ignore (emit "segment-fill-16x32k-ref" ~bytes:fill_bytes fill_ref_t : float);
  ignore (emit "segment-fill-16x32k-fast" ~bytes:fill_bytes fill_fast_t : float);
  let sp (fast_ops, _) (ref_ops, _) = fast_ops /. ref_ops in
  let crc_sp = sp crc_fast crc_ref in
  let gf_sp = sp gf_fast gf_ref in
  let rs_sp = sp rs_fast rs_ref in
  let lz_sp = sp lz_fast lz_ref in
  let unz_sp = sp unz_fast unz_ref in
  let fp_sp = sp fp_fast fp_ref in
  let fill_sp = sp fill_fast_t fill_ref_t in
  Bench_util.emit_row ~kind:"bench_kernels"
    [
      ("crc_speedup", Json.Float crc_sp);
      ("gf_speedup", Json.Float gf_sp);
      ("rs_encode_speedup", Json.Float rs_sp);
      ("lz_roundtrip_speedup", Json.Float lz_sp);
      ("lz_decompress_speedup", Json.Float unz_sp);
      ("fingerprint_speedup", Json.Float fp_sp);
      ("segment_fill_speedup", Json.Float fill_sp);
    ];
  Printf.printf
    "\n  speedups: crc %.1fx, gf %.1fx, rs-encode %.1fx, lz roundtrip %.1fx,\n\
    \  lz decompress %.1fx, fingerprint %.1fx, segment fill %.1fx\n"
    crc_sp gf_sp rs_sp lz_sp unz_sp fp_sp fill_sp;
  shape "crc32c fast >= 3x ref, results identical" (crc_sp >= 3.0);
  shape "gf256/rs-encode fast >= 3x ref, results identical" (gf_sp >= 3.0 && rs_sp >= 3.0);
  shape "lz compress+decompress fast >= 3x ref, bytes identical" (lz_sp >= 3.0);
  shape "fingerprint fast >= 3x ref, results identical" (fp_sp >= 3.0);
  shape "segment fill fast >= 1.5x ref, bytes identical" (fill_sp >= 1.5);
  run_scaling ()

let run () =
  Bench_util.section "Kernels — word-at-a-time data-plane kernels vs reference (wall clock)";
  run_in_section ()

(* Systematic RS: take a (k+m) x k Vandermonde matrix (any k rows linearly
   independent), normalise so the top k x k block is the identity; the
   bottom m rows become the parity-generation coefficients. Decoding
   inverts the k x k matrix formed by the rows of k surviving shards. *)

type t = {
  k : int;
  m : int;
  matrix : int array array; (* (k+m) x k; rows 0..k-1 are the identity *)
}

let k t = t.k
let m t = t.m

let matrix_mul a b =
  let n = Array.length a and p = Array.length b.(0) in
  let q = Array.length b in
  Array.init n (fun i ->
      Array.init p (fun j ->
          let acc = ref 0 in
          for x = 0 to q - 1 do
            acc := Gf256.add !acc (Gf256.mul a.(i).(x) b.(x).(j))
          done;
          !acc))

(* Gauss-Jordan inversion over GF(2^8). *)
let matrix_invert m0 =
  let n = Array.length m0 in
  let a = Array.map Array.copy m0 in
  let inv = Array.init n (fun i -> Array.init n (fun j -> if i = j then 1 else 0)) in
  for col = 0 to n - 1 do
    (* find pivot *)
    let pivot = ref (-1) in
    for r = col to n - 1 do
      if !pivot < 0 && a.(r).(col) <> 0 then pivot := r
    done;
    if !pivot < 0 then invalid_arg "Reed_solomon: singular matrix";
    if !pivot <> col then begin
      let tmp = a.(col) in
      a.(col) <- a.(!pivot);
      a.(!pivot) <- tmp;
      let tmp = inv.(col) in
      inv.(col) <- inv.(!pivot);
      inv.(!pivot) <- tmp
    end;
    let scale = Gf256.inv a.(col).(col) in
    for j = 0 to n - 1 do
      a.(col).(j) <- Gf256.mul a.(col).(j) scale;
      inv.(col).(j) <- Gf256.mul inv.(col).(j) scale
    done;
    for r = 0 to n - 1 do
      if r <> col && a.(r).(col) <> 0 then begin
        let factor = a.(r).(col) in
        for j = 0 to n - 1 do
          a.(r).(j) <- Gf256.add a.(r).(j) (Gf256.mul factor a.(col).(j));
          inv.(r).(j) <- Gf256.add inv.(r).(j) (Gf256.mul factor inv.(col).(j))
        done
      end
    done
  done;
  inv

let create ~k ~m =
  if k <= 0 || m <= 0 || k + m > 255 then invalid_arg "Reed_solomon.create";
  let vandermonde =
    Array.init (k + m) (fun i -> Array.init k (fun j -> Gf256.exp (i * j)))
  in
  let top = Array.sub vandermonde 0 k in
  let top_inv = matrix_invert top in
  let matrix = matrix_mul vandermonde top_inv in
  (* build every product table this code will use, on the main domain —
     [Gf256.mul_slice]'s lazy cache must not be first-populated by a pool
     worker (cross-domain publication race) *)
  Array.iter (fun row -> Array.iter Gf256.warm row) matrix;
  { k; m; matrix }

let check_shard_sizes shards =
  let size = ref (-1) in
  Array.iter
    (fun s ->
      let n = Bytes.length s in
      if !size < 0 then size := n
      else if n <> !size then invalid_arg "Reed_solomon: unequal shard sizes")
    shards;
  !size

(* rows: coefficient rows, inputs: matching shards -> outputs per row.
   Input-major loop order: each source shard is streamed once while it is
   cache-resident and folded into every output row, instead of re-reading
   all k inputs per output. XOR accumulation commutes, so the result is
   identical to the row-major order. *)
let apply_rows rows inputs size =
  let outs = Array.map (fun _ -> Bytes.make size '\000') rows in
  Array.iteri
    (fun j src ->
      Array.iteri (fun i row -> Gf256.mul_slice row.(j) ~src ~dst:outs.(i)) rows)
    inputs;
  outs

let encode t data =
  if Array.length data <> t.k then invalid_arg "Reed_solomon.encode: need k shards";
  let size = check_shard_sizes data in
  let t0 = Purity_util.Kernel_stats.tick () in
  let parity = Array.init t.m (fun _ -> Bytes.make size '\000') in
  (* one pass over the data shards: shard j feeds all m parity rows
     before the next shard is touched; the per-coefficient product
     tables inside [Gf256.mul_slice] are cached across stripes *)
  for j = 0 to t.k - 1 do
    let src = data.(j) in
    for i = 0 to t.m - 1 do
      Gf256.mul_slice t.matrix.(t.k + i).(j) ~src ~dst:parity.(i)
    done
  done;
  Purity_util.Kernel_stats.(tock rs) ~bytes:(t.k * size) ~t0;
  parity

(* Parallel encode: the k data shards split into contiguous per-lane
   chunks; each lane folds its chunk into its own partial parity buffers
   (no shared writes), then the partials merge in lane order with a
   word-wide XOR. GF(256) addition is exact XOR — commutative and
   associative bit-for-bit — so the merged parity is byte-identical to
   the serial input-major [encode] at any lane count. *)
let encode_par pool t data =
  let lanes = Purity_par.Pool.lanes pool in
  if lanes = 1 || t.k <= 1 then encode t data
  else begin
    if Array.length data <> t.k then
      invalid_arg "Reed_solomon.encode_par: need k shards";
    let size = check_shard_sizes data in
    let t0 = Purity_util.Kernel_stats.tick () in
    let partial =
      Array.init lanes (fun _ -> Array.init t.m (fun _ -> Bytes.make size '\000'))
    in
    Purity_par.Pool.run pool ~tasks:t.k (fun ~lane ~lo ~len ->
        let mine = partial.(lane) in
        for j = lo to lo + len - 1 do
          let src = data.(j) in
          for i = 0 to t.m - 1 do
            Gf256.mul_slice t.matrix.(t.k + i).(j) ~src ~dst:mine.(i)
          done
        done);
    let parity = partial.(0) in
    for lane = 1 to lanes - 1 do
      for i = 0 to t.m - 1 do
        Gf256.mul_slice 1 ~src:partial.(lane).(i) ~dst:parity.(i)
      done
    done;
    Purity_util.Kernel_stats.(tock rs) ~bytes:(t.k * size) ~t0;
    parity
  end

(* The original row-major encode over the byte-at-a-time multiply, kept
   as the reference [encode] is property-tested against. *)
let encode_ref t data =
  if Array.length data <> t.k then invalid_arg "Reed_solomon.encode: need k shards";
  let size = check_shard_sizes data in
  Array.init t.m (fun i ->
      let out = Bytes.make size '\000' in
      Array.iteri
        (fun j src -> Gf256.mul_slice_ref t.matrix.(t.k + i).(j) ~src ~dst:out)
        data;
      out)

let encode_string t s ~shard_size =
  if shard_size <= 0 then invalid_arg "Reed_solomon.encode_string";
  if String.length s > t.k * shard_size then
    invalid_arg "Reed_solomon.encode_string: buffer too large";
  let data =
    Array.init t.k (fun i ->
        let b = Bytes.make shard_size '\000' in
        let pos = i * shard_size in
        let avail = max 0 (min shard_size (String.length s - pos)) in
        if avail > 0 then Bytes.blit_string s pos b 0 avail;
        b)
  in
  let parity = encode t data in
  Array.append (Array.map Bytes.to_string data) (Array.map Bytes.to_string parity)

let decode t shards =
  if Array.length shards <> t.k + t.m then
    invalid_arg "Reed_solomon.decode: need k+m shard slots";
  (* Fast path: all data shards present. *)
  let all_data = ref true in
  for i = 0 to t.k - 1 do
    if shards.(i) = None then all_data := false
  done;
  if !all_data then Array.init t.k (fun i -> Option.get shards.(i))
  else begin
    let survivors = ref [] in
    Array.iteri
      (fun i s -> match s with Some b -> survivors := (i, b) :: !survivors | None -> ())
      shards;
    let survivors = List.rev !survivors in
    if List.length survivors < t.k then
      invalid_arg "Reed_solomon.decode: too many erasures";
    let chosen = Array.of_list (List.filteri (fun idx _ -> idx < t.k) survivors) in
    let size = check_shard_sizes (Array.map snd chosen) in
    let sub = Array.map (fun (i, _) -> Array.copy t.matrix.(i)) chosen in
    let sub_inv = matrix_invert sub in
    apply_rows sub_inv (Array.map snd chosen) size
  end

let reconstruct_shard t shards i =
  if i < 0 || i >= t.k + t.m then invalid_arg "Reed_solomon.reconstruct_shard";
  let data = decode t shards in
  if i < t.k then data.(i)
  else begin
    let size = Bytes.length data.(0) in
    let out = apply_rows [| t.matrix.(i) |] data size in
    out.(0)
  end

let parity_overhead t = float_of_int t.m /. float_of_int t.k

module Word = Purity_util.Word

(* little-endian views over Word's unchecked native-endian primitives;
   local so the non-flambda inliner folds them into the loops *)
let[@inline always] get64_le b i =
  if Sys.big_endian then Word.swap64 (Word.unsafe_get_64 b i) else Word.unsafe_get_64 b i

let[@inline always] set64_le b i v =
  Word.unsafe_set_64 b i (if Sys.big_endian then Word.swap64 v else v)

let poly = 0x11D

(* exp table doubled to avoid the mod 255 in mul's hot path. *)
let exp_table = Array.make 512 0
let log_table = Array.make 256 0

let () =
  let x = ref 1 in
  for i = 0 to 254 do
    exp_table.(i) <- !x;
    log_table.(!x) <- i;
    x := !x lsl 1;
    if !x land 0x100 <> 0 then x := !x lxor poly
  done;
  for i = 255 to 511 do
    exp_table.(i) <- exp_table.(i - 255)
  done

let add a b = a lxor b

let mul a b =
  if a = 0 || b = 0 then 0 else exp_table.(log_table.(a) + log_table.(b))

let div a b =
  if b = 0 then raise Division_by_zero
  else if a = 0 then 0
  else exp_table.(log_table.(a) - log_table.(b) + 255)

let inv a = div 1 a

let exp i =
  let i = ((i mod 255) + 255) mod 255 in
  exp_table.(i)

(* Per-coefficient product tables, built on first use and cached for the
   process lifetime (an RS code reuses the same few coefficients for
   every stripe, so each table is built once and then hit forever). This
   is the scalar stand-in for the SIMD low/high-nibble PSHUFB split
   tables (Plank et al., FAST '13): where SIMD looks up 16 nibbles in
   parallel, a 64-bit scalar core does best with one full-byte table
   lookup per byte, eight bytes per loaded word. Each coefficient keeps
   four copies of its product table pre-shifted by 0/8/16/24 bits, so
   assembling a 32-bit product half is three ORs with no shifts in the
   word loop. Worst case all 255 coefficients materialise: 255 * 4 * 256
   ints = 2 MiB; an RS code touches k + m of them. *)
let mul_tables : int array array array = Array.make 256 [||]

let mul_table c =
  let t = Array.unsafe_get mul_tables c in
  if t != [||] then t
  else begin
    let t0 = Array.init 256 (fun x -> mul c x) in
    let t =
      [| t0;
         Array.map (fun v -> v lsl 8) t0;
         Array.map (fun v -> v lsl 16) t0;
         Array.map (fun v -> v lsl 24) t0 |]
    in
    mul_tables.(c) <- t;
    t
  end

(* The cache above is built lazily on first use, which is a publication
   race if the first use happens on a pool worker: another domain could
   observe the row pointer before the table contents. [Rs.create] warms
   every coefficient its matrix uses on the main domain, before any
   parallel encode can touch them; after that, workers only read. *)
let warm c = if c > 1 then ignore (mul_table c : int array array)

let check_lengths name ~src ~dst =
  if Bytes.length dst <> Bytes.length src then
    invalid_arg (name ^ ": length mismatch")

(* XOR [c * src] into [dst], 8 bytes per step: load a 64-bit word
   (unchecked — the loop condition is the bounds proof), split it into
   two exact 32-bit halves (Int64.to_int would drop bit 63), build each
   product half from four pre-shifted table lookups, join the halves and
   XOR them into the destination word. All arithmetic after the loads is
   untagged [int]. *)
let mul_slice c ~src ~dst =
  check_lengths "Gf256.mul_slice" ~src ~dst;
  let n = Bytes.length src in
  if c = 0 then () (* 0 * x = 0: XOR-ing nothing in is a no-op *)
  else if c = 1 then begin
    let t0 = Purity_util.Kernel_stats.tick () in
    let i = ref 0 in
    while !i + 8 <= n do
      set64_le dst !i (Int64.logxor (get64_le dst !i) (get64_le src !i));
      i := !i + 8
    done;
    while !i < n do
      Bytes.unsafe_set dst !i
        (Char.unsafe_chr
           (Char.code (Bytes.unsafe_get dst !i) lxor Char.code (Bytes.unsafe_get src !i)));
      incr i
    done;
    Purity_util.Kernel_stats.(tock gf) ~bytes:n ~t0
  end
  else begin
    let t0 = Purity_util.Kernel_stats.tick () in
    let t = mul_table c in
    let ts0 = Array.unsafe_get t 0 in
    let ts8 = Array.unsafe_get t 1 in
    let ts16 = Array.unsafe_get t 2 in
    let ts24 = Array.unsafe_get t 3 in
    let i = ref 0 in
    while !i + 8 <= n do
      let s = get64_le src !i in
      let slo = Int64.to_int s land 0xFFFFFFFF in
      let shi = Int64.to_int (Int64.shift_right_logical s 32) land 0xFFFFFFFF in
      let plo =
        Array.unsafe_get ts0 (slo land 0xFF)
        lor Array.unsafe_get ts8 ((slo lsr 8) land 0xFF)
        lor Array.unsafe_get ts16 ((slo lsr 16) land 0xFF)
        lor Array.unsafe_get ts24 (slo lsr 24)
      in
      let phi =
        Array.unsafe_get ts0 (shi land 0xFF)
        lor Array.unsafe_get ts8 ((shi lsr 8) land 0xFF)
        lor Array.unsafe_get ts16 ((shi lsr 16) land 0xFF)
        lor Array.unsafe_get ts24 (shi lsr 24)
      in
      set64_le dst !i
        (Int64.logxor (get64_le dst !i)
           (Int64.logor (Int64.of_int plo) (Int64.shift_left (Int64.of_int phi) 32)));
      i := !i + 8
    done;
    while !i < n do
      let p = Array.unsafe_get ts0 (Char.code (Bytes.unsafe_get src !i)) in
      Bytes.unsafe_set dst !i
        (Char.unsafe_chr (Char.code (Bytes.unsafe_get dst !i) lxor p));
      incr i
    done;
    Purity_util.Kernel_stats.(tock gf) ~bytes:n ~t0
  end

(* ---------- reference kernel (original implementation) ---------- *)

let mul_slice_ref c ~src ~dst =
  check_lengths "Gf256.mul_slice_ref" ~src ~dst;
  let n = Bytes.length src in
  if c = 1 then
    for i = 0 to n - 1 do
      Bytes.unsafe_set dst i
        (Char.unsafe_chr
           (Char.code (Bytes.unsafe_get dst i) lxor Char.code (Bytes.unsafe_get src i)))
    done
  else if c <> 0 then begin
    let logc = log_table.(c) in
    for i = 0 to n - 1 do
      let s = Char.code (Bytes.unsafe_get src i) in
      if s <> 0 then begin
        let p = exp_table.(logc + log_table.(s)) in
        Bytes.unsafe_set dst i
          (Char.unsafe_chr (Char.code (Bytes.unsafe_get dst i) lxor p))
      end
    done
  end

(** Systematic Reed–Solomon erasure coding over GF(2^8).

    Purity stripes each segment across a write group of [k + m] drives
    using 7+2 Reed–Solomon (paper §4.2, §4.4), tolerating the loss of any
    two drives. The code here is systematic (data shards are stored
    verbatim) with a Vandermonde-derived encoding matrix, so any [k] of
    the [k + m] shards reconstruct the original data.

    The same decoder serves three of the paper's mechanisms:
    - rebuilding after drive failure;
    - "reconstruct reads" around drives that are busy writing (§4.4);
    - reconstructing data whose read came back slower than the 95th
      percentile or corrupted (§4.4, §5.1). *)

type t

val create : k:int -> m:int -> t
(** [k] data shards, [m] parity shards; [k + m <= 255], both positive. *)

val k : t -> int
val m : t -> int

val encode : t -> bytes array -> bytes array
(** [encode t data] takes [k] equal-length data shards and returns the [m]
    parity shards. One pass over the data shards, word-at-a-time GF(256)
    multiply-accumulate with cached per-coefficient tables. *)

val encode_par : Purity_par.Pool.t -> t -> bytes array -> bytes array
(** Like {!encode}, fanned input-major across the pool: each lane folds a
    contiguous chunk of the [k] data shards into private partial parity
    buffers, merged in lane order by word-wide XOR. GF(256) addition is
    exact XOR, so the result is byte-identical to {!encode} at any lane
    count; a 1-lane pool falls through to {!encode} directly. *)

val encode_ref : t -> bytes array -> bytes array
(** The original row-major byte-at-a-time encode, retained as the
    reference {!encode} is property-tested against. Same results. *)

val encode_string : t -> string -> shard_size:int -> string array
(** Convenience: split a buffer into [k] shards of [shard_size] (padding
    the tail with zeros), encode, and return all [k + m] shards. *)

val decode : t -> (bytes option) array -> bytes array
(** [decode t shards] takes the [k + m] shard slots with [None] marking
    erasures and returns the [k] data shards. At most [m] slots may be
    [None].
    @raise Invalid_argument if more than [m] shards are missing. *)

val reconstruct_shard : t -> (bytes option) array -> int -> bytes
(** Rebuild just shard [i] (data or parity) from the survivors; used for
    single-drive rebuild and reconstruct-reads. *)

val parity_overhead : t -> float
(** [m / k]: space overhead of the code (7+2 → ~0.29, versus 1.0 for the
    mirrored pairs disk arrays use). *)

module Xxhash = Purity_util.Xxhash
module Lru = Purity_util.Lru
module Itbl = Purity_util.Keytbl.Int

let block_size = 512

type source = { write_id : int; block : int }
type hit = { at_block : int; src : source; run_blocks : int }

type config = { hash_bits : int; record_every : int; window_writes : int; min_run : int }

let default_config = { hash_bits = 48; record_every = 8; window_writes = 4096; min_run = 1 }

type stats = {
  registered_writes : int;
  recorded_hashes : int;
  lookups : int;
  hash_hits : int;
  verified_hits : int;
  false_positives : int;
  duplicate_blocks : int;
}

let zero_stats =
  {
    registered_writes = 0;
    recorded_hashes = 0;
    lookups = 0;
    hash_hits = 0;
    verified_hits = 0;
    false_positives = 0;
    duplicate_blocks = 0;
  }

type t = {
  cfg : config;
  index : source list Itbl.t; (* truncated hash -> recorded anchors *)
  window : (int, string) Lru.t; (* write_id -> payload, the recency window *)
  mutable next_write_id : int;
  mutable stats : stats;
}

let create ?(config = default_config) () =
  {
    cfg = config;
    index = Itbl.create 4096;
    window = Lru.create ~capacity:config.window_writes;
    next_write_id = 0;
    stats = zero_stats;
  }

let stats t = t.stats

(* Unboxed fingerprint: hash63 probes the index with a plain [int] key,
   so the hot register/lookup loop never boxes an [int64]. Collisions are
   verified away byte-wise below, exactly as the paper requires of its
   <= 64-bit hashes (§4.7). *)
let[@purity.lint.allow
      "unsafe: read-only view of an immutable payload string; pos/len are \
       bounds-checked by the caller's block arithmetic"] block_hash t data block =
  let h =
    Xxhash.hash63 (Bytes.unsafe_of_string data) ~pos:(block * block_size) ~len:block_size
  in
  Xxhash.truncate_int h ~bits:t.cfg.hash_bits

let blocks_of data = String.length data / block_size

let register t data =
  let id = t.next_write_id in
  t.next_write_id <- id + 1;
  Lru.add t.window id data;
  let n = blocks_of data in
  let recorded = ref 0 in
  let b = ref 0 in
  while !b < n do
    let h = block_hash t data !b in
    let prev = Option.value ~default:[] (Itbl.find_opt t.index h) in
    (* keep the anchor list short: newest few only *)
    let entry = { write_id = id; block = !b } in
    Itbl.replace t.index h (entry :: (if List.length prev > 3 then [] else prev));
    incr recorded;
    b := !b + t.cfg.record_every
  done;
  t.stats <-
    {
      t.stats with
      registered_writes = t.stats.registered_writes + 1;
      recorded_hashes = t.stats.recorded_hashes + !recorded;
    };
  id

let payload t ~write_id = Lru.find t.window write_id
let forget t ~write_id = Lru.remove t.window write_id

(* Word-wise verify: 512-byte blocks compare as 64 aligned word loads.
   The XOR of the two words is tested through its two 32-bit halves —
   [Int64.to_int] alone would drop bit 63. *)
let[@purity.lint.allow
      "unsafe: read-only views for the word-wise compare; the guard above \
       bounds b2 and callers bound b1"] blocks_equal data b1 src_data b2 =
  (b2 + 1) * block_size <= String.length src_data
  &&
  let a = Bytes.unsafe_of_string data and b = Bytes.unsafe_of_string src_data in
  let pa = b1 * block_size and pb = b2 * block_size in
  let i = ref 0 in
  let eq = ref true in
  while !eq && !i < block_size do
    let x = Int64.logxor (Bytes.get_int64_le a (pa + !i)) (Bytes.get_int64_le b (pb + !i)) in
    if Int64.to_int x <> 0 || Int64.to_int (Int64.shift_right_logical x 32) <> 0 then
      eq := false;
    i := !i + 8
  done;
  !eq

(* Extend a verified anchor match forwards and backwards. *)
let extend data nblocks ~at ~(src : source) src_data =
  let src_blocks = blocks_of src_data in
  let back = ref 0 in
  while
    at - !back - 1 >= 0
    && src.block - !back - 1 >= 0
    && blocks_equal data (at - !back - 1) src_data (src.block - !back - 1)
  do
    incr back
  done;
  let fwd = ref 0 in
  while
    at + !fwd + 1 < nblocks
    && src.block + !fwd + 1 < src_blocks
    && blocks_equal data (at + !fwd + 1) src_data (src.block + !fwd + 1)
  do
    incr fwd
  done;
  {
    at_block = at - !back;
    src = { src with block = src.block - !back };
    run_blocks = !back + 1 + !fwd;
  }

let find_duplicates t data =
  let n = blocks_of data in
  let hits = ref [] in
  let covered_until = ref 0 in
  for b = 0 to n - 1 do
    if b >= !covered_until then begin
      t.stats <- { t.stats with lookups = t.stats.lookups + 1 };
      let h = block_hash t data b in
      match Itbl.find_opt t.index h with
      | None -> ()
      | Some candidates ->
        t.stats <- { t.stats with hash_hits = t.stats.hash_hits + 1 };
        (* first candidate whose bytes really match wins *)
        let verified =
          List.find_map
            (fun src ->
              match Lru.find t.window src.write_id with
              | None -> None
              | Some src_data ->
                if blocks_equal data b src_data src.block then Some (src, src_data)
                else begin
                  t.stats <- { t.stats with false_positives = t.stats.false_positives + 1 };
                  None
                end)
            candidates
        in
        (match verified with
        | None -> ()
        | Some (src, src_data) ->
          t.stats <- { t.stats with verified_hits = t.stats.verified_hits + 1 };
          let hit = extend data n ~at:b ~src src_data in
          (* clip the run to start at the first uncovered block *)
          let clip = max 0 (!covered_until - hit.at_block) in
          let hit =
            {
              at_block = hit.at_block + clip;
              src = { hit.src with block = hit.src.block + clip };
              run_blocks = hit.run_blocks - clip;
            }
          in
          if hit.run_blocks >= t.cfg.min_run then begin
            hits := hit :: !hits;
            covered_until := hit.at_block + hit.run_blocks;
            t.stats <-
              { t.stats with duplicate_blocks = t.stats.duplicate_blocks + hit.run_blocks }
          end)
    end
  done;
  List.rev !hits

module Layout = Purity_segment.Layout
module Segment = Purity_segment.Segment
module Shelf = Purity_ssd.Shelf
module Drive = Purity_ssd.Drive
module Rs = Purity_erasure.Reed_solomon
module Clock = Purity_sim.Clock
module Histogram = Purity_util.Histogram

type stats = {
  chunk_reads : int;
  direct_reads : int;
  reconstruct_reads : int;
  backup_reads : int;
  peer_reads : int;
  failures : int;
}

let zero_stats =
  {
    chunk_reads = 0;
    direct_reads = 0;
    reconstruct_reads = 0;
    backup_reads = 0;
    peer_reads = 0;
    failures = 0;
  }

type t = {
  layout : Layout.t;
  shelf : Shelf.t;
  rs : Rs.t;
  read_around_write : bool;
  p95_backup : bool;
  mutable fault : (drive:int -> bool) option;
      (* purity.check injection point: drives the predicate marks behave
         as failed for shard reads (direct and peer), forcing the
         degraded/reconstruction paths *)
  mutable stats : stats;
  latencies : Histogram.t;
  direct_latencies : Histogram.t; (* feeds the p95 hedge threshold *)
}

let create ~layout ~shelf ~rs ?(read_around_write = true) ?(p95_backup = false) () =
  {
    layout;
    shelf;
    rs;
    read_around_write;
    p95_backup;
    fault = None;
    stats = zero_stats;
    latencies = Histogram.create ();
    direct_latencies = Histogram.create ();
  }

let stats t = t.stats
let reset_stats t = t.stats <- zero_stats
let read_latencies t = t.latencies
let set_fault t f = t.fault <- f

let faulted t ~drive =
  match t.fault with Some f -> f ~drive | None -> false

let register_telemetry t reg =
  let module R = Purity_telemetry.Registry in
  R.derive_int reg "sched/chunk_reads" (fun () -> t.stats.chunk_reads);
  R.derive_int reg "sched/direct_reads" (fun () -> t.stats.direct_reads);
  R.derive_int reg "sched/reconstruct_reads" (fun () -> t.stats.reconstruct_reads);
  R.derive_int reg "sched/backup_reads" (fun () -> t.stats.backup_reads);
  R.derive_int reg "sched/peer_reads" (fun () -> t.stats.peer_reads);
  R.derive_int reg "sched/failures" (fun () -> t.stats.failures);
  R.derive_float reg "sched/read_amplification" (fun () ->
      if t.stats.chunk_reads = 0 then 1.0
      else
        float_of_int (t.stats.direct_reads + t.stats.peer_reads)
        /. float_of_int t.stats.chunk_reads);
  R.attach_histogram reg "sched/segment_read_us" t.latencies;
  R.attach_histogram reg "sched/direct_read_us" t.direct_latencies

let drive_of t seg column =
  let m = (seg.Segment.members).(column) in
  (Shelf.drive t.shelf m.Segment.drive, m.Segment.au)

(* A shard read is only meaningful if the member AU actually holds the
   range: a freshly replaced drive (or an AU torn by a crashed flush)
   reads as zeros, which must count as a missing shard — serving it
   directly, or feeding it to Reed-Solomon as a peer, would fabricate
   wrong bytes instead of degrading to reconstruction. *)
let shard_holds t seg column ~au_offset ~len =
  let drive, au = drive_of t seg column in
  Drive.au_fill drive ~au >= au_offset + len

let member_drive seg column = (seg.Segment.members).(column).Segment.drive

(* Rebuild the chunk at (row, within, len) for data column [target] from
   sibling shards. Reed-Solomon is elementwise over byte positions, so the
   sub-range of each write unit decodes independently. *)
let reconstruct_chunk t seg ~row ~within ~len ~target k =
  let nm = Layout.members t.layout in
  let needed = t.layout.Layout.k in
  (* Candidate peers: online siblings, idle drives first. *)
  let peers =
    let all = List.filter (fun c -> c <> target) (List.init nm Fun.id) in
    let usable =
      List.filter
        (fun c ->
          Drive.is_online (fst (drive_of t seg c))
          && (not (faulted t ~drive:(member_drive seg c)))
          &&
          let loc = Layout.row_chunk t.layout ~row ~within ~len ~column:c in
          shard_holds t seg c ~au_offset:loc.Layout.au_offset ~len)
        all
    in
    let idle, busy = List.partition (fun c -> not (Drive.busy_writing (fst (drive_of t seg c)))) usable in
    idle @ busy
  in
  if List.length peers < needed then begin
    k None
  end
  else begin
    let chosen = List.filteri (fun i _ -> i < needed) peers in
    let spares = ref (List.filteri (fun i _ -> i >= needed) peers) in
    let shards = Array.make nm None in
    let pending = ref (List.length chosen) in
    let failed = ref false in
    let finish () =
      if !failed then k None
      else
        match Rs.reconstruct_shard t.rs shards target with
        | shard -> k (Some shard)
        | exception Invalid_argument _ -> k None
    in
    (* A peer read can itself fail (a latently corrupt page discovered on
       the way): fall back to an unused sibling rather than giving up —
       the row is recoverable as long as any k shards are good. *)
    let rec issue c =
      let drive, au = drive_of t seg c in
      let loc = Layout.row_chunk t.layout ~row ~within ~len ~column:c in
      t.stats <- { t.stats with peer_reads = t.stats.peer_reads + 1 };
      Drive.read drive ~au ~off:loc.Layout.au_offset ~len (fun result ->
          (match result with
          | Ok data -> shards.(c) <- Some data
          | Error _ -> (
            match !spares with
            | s :: rest ->
              spares := rest;
              incr pending;
              issue s
            | [] -> failed := true));
          decr pending;
          if !pending = 0 then finish ())
    in
    List.iter issue chosen
  end

(* Serve one chunk (entirely inside one write unit). *)
let read_chunk t seg (loc : Layout.location) k =
  t.stats <- { t.stats with chunk_reads = t.stats.chunk_reads + 1 };
  let clock = Shelf.clock t.shelf in
  let column = loc.Layout.column in
  let row = (loc.Layout.au_offset - t.layout.Layout.header_size) / t.layout.Layout.write_unit in
  let within = (loc.Layout.au_offset - t.layout.Layout.header_size) mod t.layout.Layout.write_unit in
  let len = loc.Layout.length in
  let drive, au = drive_of t seg column in
  let reconstruct tag =
    (match tag with
    | `Primary -> t.stats <- { t.stats with reconstruct_reads = t.stats.reconstruct_reads + 1 }
    | `Backup -> t.stats <- { t.stats with backup_reads = t.stats.backup_reads + 1 });
    reconstruct_chunk t seg ~row ~within ~len ~target:column
  in
  let fail () =
    t.stats <- { t.stats with failures = t.stats.failures + 1 };
    k (Error `Unrecoverable)
  in
  let missing =
    faulted t ~drive:(member_drive seg column)
    || not (shard_holds t seg column ~au_offset:loc.Layout.au_offset ~len)
  in
  let avoid_busy =
    t.read_around_write && Drive.is_online drive && Drive.busy_writing drive
  in
  if (not (Drive.is_online drive)) || missing || avoid_busy then
    (* Offline, missing/injected-faulty shard, or writing: rebuild from
       siblings; if that is impossible and the drive is merely busy, wait
       it out with a direct read. *)
    reconstruct `Primary (function
      | Some data -> k (Ok data)
      | None ->
        if Drive.is_online drive && not missing then begin
          t.stats <- { t.stats with direct_reads = t.stats.direct_reads + 1 };
          Drive.read drive ~au ~off:loc.Layout.au_offset ~len (function
            | Ok data -> k (Ok data)
            | Error _ -> fail ())
        end
        else fail ())
  else begin
    t.stats <- { t.stats with direct_reads = t.stats.direct_reads + 1 };
    let start = Clock.now clock in
    let delivered = ref false in
    let deliver result =
      if not !delivered then begin
        delivered := true;
        (match result with
        | Ok _ -> Histogram.record t.direct_latencies (Clock.now clock -. start)
        | Error _ -> ());
        k result
      end
    in
    (* p95 hedge: if the direct read is slow, race a reconstruction. *)
    if t.p95_backup && Histogram.count t.direct_latencies >= 100 then begin
      let p95 = Histogram.percentile t.direct_latencies 95.0 in
      Clock.schedule clock ~delay:p95 (fun () ->
          if not !delivered then
            reconstruct `Backup (function
              | Some data -> deliver (Ok data)
              | None -> ()))
    end;
    Drive.read drive ~au ~off:loc.Layout.au_offset ~len (function
      | Ok data -> deliver (Ok data)
      | Error _ ->
        (* Corrupted or just-pulled drive: degrade to reconstruction. *)
        reconstruct `Primary (function
          | Some data -> deliver (Ok data)
          | None -> if not !delivered then fail ()))
  end

let read t seg ~off ~len k =
  let clock = Shelf.clock t.shelf in
  let start = Clock.now clock in
  if len = 0 then
    Clock.schedule clock ~delay:0.0 (fun () -> k (Ok Bytes.empty))
  else begin
    let locs = Layout.locate t.layout ~off ~len in
    let out = Bytes.create len in
    let pending = ref (List.length locs) in
    let failed = ref false in
    let cursor = ref 0 in
    let offsets =
      List.map
        (fun (loc : Layout.location) ->
          let o = !cursor in
          cursor := o + loc.Layout.length;
          o)
        locs
    in
    let finish () =
      if !failed then k (Error `Unrecoverable)
      else begin
        Histogram.record t.latencies (Clock.now clock -. start);
        k (Ok out)
      end
    in
    List.iter2
      (fun (loc : Layout.location) out_off ->
        read_chunk t seg loc (fun result ->
            (match result with
            | Ok data -> Bytes.blit data 0 out out_off (Bytes.length data)
            | Error `Unrecoverable -> failed := true);
            decr pending;
            if !pending = 0 then finish ()))
      locs offsets
  end

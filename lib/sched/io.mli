(** Segment read scheduler (paper §4.4).

    Purity schedules reads to dodge the SSD latency spikes caused by
    in-flight programs and erases:

    - {e read-around-write}: a drive that is currently writing is treated
      "as though it has failed" — the requested chunk is rebuilt from the
      other shards of its row instead of waiting out the program;
    - {e degraded reads}: chunks on offline or corrupted drives are
      rebuilt the same way (this is also how the array serves I/O through
      two drive failures);
    - {e p95 backup reads}: optionally, a direct read that exceeds the
      observed 95th-percentile latency triggers a parallel reconstruction,
      and whichever finishes first wins ("the tail at scale" hedge).

    Reconstruction reads [k] sibling shards, so a worst-case write-heavy
    workload pays ≈ [7 × 2/11 ≈ 1.3×] extra reads — the paper's cost
    bound, measurable from {!stats}. *)

type t

type stats = {
  chunk_reads : int;  (** chunks requested by callers *)
  direct_reads : int;  (** served by reading the home shard *)
  reconstruct_reads : int;  (** served by rebuilding from siblings *)
  backup_reads : int;  (** p95 hedges launched *)
  peer_reads : int;  (** total sibling-shard reads issued *)
  failures : int;  (** chunks that could not be served at all *)
}

val create :
  layout:Purity_segment.Layout.t ->
  shelf:Purity_ssd.Shelf.t ->
  rs:Purity_erasure.Reed_solomon.t ->
  ?read_around_write:bool ->
  ?p95_backup:bool ->
  unit ->
  t
(** [read_around_write] defaults to true (disable for the E6 ablation);
    [p95_backup] defaults to false. *)

val read :
  t ->
  Purity_segment.Segment.t ->
  off:int ->
  len:int ->
  ((bytes, [ `Unrecoverable ]) result -> unit) ->
  unit
(** Read a payload byte range of a segment. Splits into write-unit chunks,
    serves each by the cheapest safe path, reassembles. [`Unrecoverable]
    only when more than [m] shards of some row are unavailable. *)

val stats : t -> stats
val reset_stats : t -> unit

val set_fault : t -> (drive:int -> bool) option -> unit
(** Install (or clear) a fault predicate over shelf drive ids. A faulted
    drive's shards are treated as unreadable — direct reads degrade to
    reconstruction and the drive is excluded as a reconstruction peer —
    without touching the drive's own online state. The [purity.check]
    injection point for targeted degraded-read scenarios. *)

val read_latencies : t -> Purity_util.Histogram.t
(** Completed whole-read latencies in simulated microseconds. *)

val register_telemetry : t -> Purity_telemetry.Registry.t -> unit
(** Register the scheduler's counters (derived), the computed read
    amplification, and its latency histograms under [sched/...]. *)

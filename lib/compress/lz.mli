(** Byte-oriented LZ77 block compression.

    Purity compresses every application block before it reaches flash
    (paper §3.1): log-structured placement lets compressed blocks pack
    tightly with no alignment padding, so a "simpler, more efficient"
    byte-oriented LZ class codec suffices. This is such a codec, written
    from scratch: greedy LZ77 with a 64 KiB window, 4-byte minimum match,
    and an LZ4-style token format (so decompression is branch-light).

    Format per sequence: a token byte whose high nibble is the literal
    count and low nibble the match length minus 4 (15 in either nibble
    chains 255-valued extension bytes), then the literals, then a 2-byte
    little-endian match offset. The final sequence carries literals only
    (offset 0 terminator).

    The production compressor works a word at a time — 32-bit candidate
    probes, 8-byte match extension, sequences written into a reusable
    {!scratch} buffer through an epoch-stamped hash table, so steady-state
    compression allocates nothing. It emits byte-identical output to the
    retained original ({!compress_ref}); the property suite enforces
    this. *)

type scratch
(** Reusable compressor state: hash table plus worst-case output buffer.
    Not shared between concurrent compressions. *)

val create_scratch : unit -> scratch

val compress : ?scratch:scratch -> string -> string
(** Compress a buffer (via a module-wide scratch unless one is given).
    Output may be larger than the input for incompressible data; callers
    should use {!compress_cblock}-style framing to fall back to raw
    storage (see {!Cblock}). *)

val compress_into : scratch -> string -> int
(** Compress straight into the scratch buffer, returning the compressed
    length; the bytes live in {!scratch_bytes} until the next use. The
    zero-copy path for callers that frame the output themselves. *)

val scratch_bytes : scratch -> Bytes.t
(** The scratch output buffer holding the last {!compress_into} result. *)

val decompress : string -> expected_len:int -> string
(** Decompress; [expected_len] is the original size (stored out-of-band in
    the cblock frame). Match copies run 8 bytes per step whenever the
    offset permits (short offsets are the RLE overlap case and stay
    byte-wise).
    @raise Invalid_argument on malformed input or length mismatch. *)

val ratio : string -> float
(** [ratio s] = original size / compressed size, a quick compressibility
    probe used by workload-characterisation code. *)

(** {2 Reference kernels} *)

val compress_ref : string -> string
(** The original Buffer-based byte-at-a-time compressor. {!compress}
    produces byte-identical output. *)

val decompress_ref : string -> expected_len:int -> string
(** The original byte-at-a-time decompressor; same results and same
    error behaviour as {!decompress}. *)

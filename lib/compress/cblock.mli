(** Cblock framing: Purity's on-media unit of compressed application data.

    A cblock (paper §4.6) holds one application write's worth of data —
    512 B up to 32 KiB, sized to match the write that created it — in
    compressed form, self-framed so the segment reader can decode it from
    a byte stream. The frame records the logical length, the encoding
    (raw when compression would expand the data), a CRC-32C of the stored
    payload, and the payload itself. *)

type encoding = Raw | Lz

type t = {
  logical_len : int;  (** uncompressed application bytes *)
  encoding : encoding;
  payload : string;  (** stored bytes (possibly compressed) *)
}

val max_logical : int
(** 32 KiB: cblocks never exceed the largest inferred write size. *)

val of_data : ?scratch:Lz.scratch -> string -> t
(** Build a cblock from application data, compressing unless that would
    expand it (through [scratch] when given, so the compressor state is
    reused). @raise Invalid_argument beyond [max_logical]. *)

val data : t -> string
(** Recover the application data. *)

val stored_size : t -> int
(** Bytes the cblock occupies on media, including the frame header. *)

val encode : Buffer.t -> t -> unit
(** Append the frame to a buffer. *)

val add_frame : ?scratch:Lz.scratch -> ?compress:bool -> Buffer.t -> string -> int
(** [add_frame ?scratch ?compress buf data] frames [data] directly into
    [buf] — byte-identical to [encode buf (of_data data)] — and returns
    the frame size. With [scratch], the compressed payload moves from the
    LZ scratch buffer into the frame without an intermediate string; the
    write path's zero-allocation fill loop. [compress] defaults to
    [true]; [false] forces a raw frame (compression disabled in config).
    @raise Invalid_argument beyond [max_logical]. *)

val decode : bytes -> pos:int -> t * int
(** [decode buf ~pos] parses one frame, returning it and the offset just
    past it. @raise Invalid_argument on corruption (CRC mismatch) or
    truncation. *)

val reduction : t -> float
(** logical/stored ratio for this cblock (>= 1 unless data was
    incompressible, where the raw fallback caps expansion at the frame
    header). *)

module Kernel_stats = Purity_util.Kernel_stats
module Word = Purity_util.Word

(* little-endian views over Word's unchecked native-endian primitives;
   local so the non-flambda inliner folds them into the loops *)
let[@inline always] get64_le b i =
  if Sys.big_endian then Word.swap64 (Word.unsafe_get_64 b i) else Word.unsafe_get_64 b i

let[@inline always] set64_le b i v =
  Word.unsafe_set_64 b i (if Sys.big_endian then Word.swap64 v else v)

let[@inline always] get32_le b i =
  if Sys.big_endian then Word.swap32 (Word.unsafe_get_32 b i) else Word.unsafe_get_32 b i

let min_match = 4
let window = 65535
let hash_bits = 14
let hash_size = 1 lsl hash_bits

(* Multiplicative hash of a 4-byte little-endian value. *)
let hmul v = (v * 2654435761) lsr (32 - hash_bits) land (hash_size - 1)

(* The hash of the 4 bytes at [i], assembled byte-wise. *)
let hash4 s i =
  hmul
    (Char.code (String.unsafe_get s i)
    lor (Char.code (String.unsafe_get s (i + 1)) lsl 8)
    lor (Char.code (String.unsafe_get s (i + 2)) lsl 16)
    lor (Char.code (String.unsafe_get s (i + 3)) lsl 24))

(* Same hash from one unchecked 32-bit load (callers stay >= 4 bytes from
   the end); [land 0xFFFFFFFF] recovers the exact unsigned value [hash4]
   assembles, so the products match. *)
let hash4w b i = hmul (Int32.to_int (get32_le b i) land 0xFFFFFFFF)

(* Do bytes [p..p+7] equal bytes [q..q+7]? (bit 63 via the shifted half;
   [Int64.to_int] alone would drop it) *)
let same8 b p q =
  let x = Int64.logxor (get64_le b p) (get64_le b q) in
  Int64.to_int x = 0 && Int64.to_int (Int64.shift_right_logical x 32) = 0

(* ---------- scratch: reusable compressor state ----------

   The hash table is epoch-stamped — entry = (epoch << 32) | position,
   and a stale epoch reads as "no candidate" — so starting a new
   compression is one integer bump instead of a 128 KiB clear. The
   output buffer is sized for the format's worst case and reused, so a
   caller holding a scratch compresses with zero allocation. *)

type scratch = {
  table : int array; (* hash_size entries: (epoch << 32) | position *)
  mutable epoch : int;
  mutable out : Bytes.t;
}

(* worst case: one terminal sequence of n literals *)
let worst_size n = n + (n / 255) + 16

let create_scratch () =
  { table = Array.make hash_size 0; epoch = 0; out = Bytes.create (worst_size 4096) }

let scratch_bytes sc = sc.out

let next_epoch sc =
  (* 30 epoch bits above 32 position bits; on the (billionth-call) wrap,
     fall back to clearing the table once *)
  if sc.epoch >= 0x3FFFFFFF then begin
    Array.fill sc.table 0 hash_size 0;
    sc.epoch <- 1
  end
  else sc.epoch <- sc.epoch + 1

let ensure_out sc n =
  if Bytes.length sc.out < worst_size n then sc.out <- Bytes.create (worst_size n)

(* 15 in a nibble chains 255-valued extension bytes, LZ4-style. The
   emitter writes unchecked: [out] is sized to [worst_size] of the input,
   which bounds every sequence the loop can produce, and every value
   stored is masked or nibble-sized, so [unsafe_chr] cannot overflow. *)
let put_extension out op n =
  let rest = ref (n - 15) in
  while !rest >= 255 do
    Bytes.unsafe_set out !op '\255';
    incr op;
    rest := !rest - 255
  done;
  Bytes.unsafe_set out !op (Char.unsafe_chr !rest);
  incr op

(* One sequence: token, literal extensions, literals, [offset, match
   extensions]. [match_len] = 0 means a terminal literals-only sequence. *)
let put_sequence out op src lit_start lit_len match_off match_len =
  let lit_nib = if lit_len < 15 then lit_len else 15 in
  let match_base = if match_len = 0 then 0 else match_len - min_match in
  let match_nib = if match_base < 15 then match_base else 15 in
  Bytes.unsafe_set out !op (Char.unsafe_chr ((lit_nib lsl 4) lor match_nib));
  incr op;
  if lit_len >= 15 then put_extension out op lit_len;
  Bytes.blit_string src lit_start out !op lit_len;
  op := !op + lit_len;
  if match_len > 0 then begin
    Bytes.unsafe_set out !op (Char.unsafe_chr (match_off land 0xFF));
    incr op;
    Bytes.unsafe_set out !op (Char.unsafe_chr ((match_off lsr 8) land 0xFF));
    incr op;
    if match_base >= 15 then put_extension out op match_base
  end

(* Greedy LZ77, word-at-a-time: candidate probe is one 32-bit compare,
   match extension runs 8 bytes per compare (the byte loop afterwards
   pins down the exact mismatch), sequences are written straight into the
   scratch buffer. Emits byte-identical output to [compress_ref] — same
   hash, same candidate policy, same in-match index seeding — which the
   property suite checks. *)
let compress_into sc s =
  let n = String.length s in
  ensure_out sc n;
  let t0 = Kernel_stats.tick () in
  let out = sc.out in
  let op = ref 0 in
  if n < min_match + 1 then put_sequence out op s 0 n 0 0
  else begin
    next_epoch sc;
    let table = sc.table in
    let ep = sc.epoch in
    let eptag = ep lsl 32 in
    let b = Bytes.unsafe_of_string s in
    let anchor = ref 0 in
    let i = ref 0 in
    let limit = n - min_match in
    while !i <= limit do
      let h = hash4w b !i in
      let e = Array.unsafe_get table h in
      let cand = if e lsr 32 = ep then e land 0xFFFFFFFF else -1 in
      Array.unsafe_set table h (eptag lor !i);
      if
        cand >= 0
        && !i - cand <= window
        && Int32.to_int (get32_le b cand) = Int32.to_int (get32_le b !i)
      then begin
        let len = ref min_match in
        while !i + !len + 8 <= n && same8 b (cand + !len) (!i + !len) do
          len := !len + 8
        done;
        while
          !i + !len < n
          && Bytes.unsafe_get b (cand + !len) = Bytes.unsafe_get b (!i + !len)
        do
          incr len
        done;
        put_sequence out op s !anchor (!i - !anchor) (!i - cand) !len;
        (* Index positions inside the match so later repeats are found:
           hashes at j and j+2 share the 8 bytes at j, so one word load
           feeds both (the pair stores in the same order as the stride-2
           loop, so colliding slots end with the same winner). *)
        let stop = min (!i + !len) limit in
        let j = ref (!i + 1) in
        let pair_stop = min stop (n - 6) in
        while !j + 2 < pair_stop do
          let w = Int64.to_int (get64_le b !j) in
          Array.unsafe_set table (hmul (w land 0xFFFFFFFF)) (eptag lor !j);
          Array.unsafe_set table
            (hmul ((w lsr 16) land 0xFFFFFFFF))
            (eptag lor (!j + 2));
          j := !j + 4
        done;
        while !j < stop do
          Array.unsafe_set table (hash4w b !j) (eptag lor !j);
          j := !j + 2
        done;
        i := !i + !len;
        anchor := !i
      end
      else incr i
    done;
    put_sequence out op s !anchor (n - !anchor) 0 0
  end;
  Kernel_stats.tock Kernel_stats.lz_compress ~bytes:n ~t0;
  !op

(* module-wide scratch for callers that don't hold their own *)
let shared_scratch = create_scratch ()

let compress ?(scratch = shared_scratch) s =
  let len = compress_into scratch s in
  Bytes.sub_string scratch.out 0 len

let decompress s ~expected_len =
  let n = String.length s in
  if expected_len < 0 then invalid_arg "Lz.decompress: negative length";
  let t0 = Kernel_stats.tick () in
  let out = Bytes.create expected_len in
  let opos = ref 0 in
  let i = ref 0 in
  let fail msg = invalid_arg ("Lz.decompress: " ^ msg) in
  let read_byte () =
    if !i >= n then fail "truncated";
    let c = Char.code (String.unsafe_get s !i) in
    incr i;
    c
  in
  let read_ext base =
    if base < 15 then base
    else begin
      let total = ref base in
      let c = ref 255 in
      while !c = 255 do
        c := read_byte ();
        total := !total + !c
      done;
      !total
    end
  in
  while !i < n do
    let token = read_byte () in
    let lit_len = read_ext (token lsr 4) in
    if lit_len > 0 then begin
      if !i + lit_len > n || !opos + lit_len > expected_len then fail "bad literal run";
      Bytes.blit_string s !i out !opos lit_len;
      i := !i + lit_len;
      opos := !opos + lit_len
    end;
    if !i < n then begin
      (* explicit sequencing: argument evaluation order is unspecified *)
      let lo = read_byte () in
      let hi = read_byte () in
      let off = lo lor (hi lsl 8) in
      if off = 0 || off > !opos then fail "bad offset";
      let match_len = read_ext (token land 0xF) + min_match in
      if !opos + match_len > expected_len then fail "output overflow";
      if off >= 8 then begin
        (* non-overlapping at word granularity: copy 8 bytes per step
           (source stays >= 8 behind the write cursor throughout; the
           overflow check above bounds [opos + 8] while [rest >= 8], so
           the unchecked words stay inside [out]) *)
        let src = ref (!opos - off) in
        let rest = ref match_len in
        while !rest >= 8 do
          set64_le out !opos (get64_le out !src);
          opos := !opos + 8;
          src := !src + 8;
          rest := !rest - 8
        done;
        for _ = 1 to !rest do
          Bytes.unsafe_set out !opos (Bytes.unsafe_get out !src);
          incr src;
          incr opos
        done
      end
      else begin
        (* Byte-at-a-time copy: overlapping source/dest is the RLE case. *)
        let src = ref (!opos - off) in
        for _ = 1 to match_len do
          Bytes.unsafe_set out !opos (Bytes.unsafe_get out !src);
          incr src;
          incr opos
        done
      end
    end
  done;
  if !opos <> expected_len then fail "length mismatch";
  Kernel_stats.tock Kernel_stats.lz_decompress ~bytes:expected_len ~t0;
  Bytes.unsafe_to_string out

let ratio s =
  if String.length s = 0 then 1.0
  else float_of_int (String.length s) /. float_of_int (String.length (compress s))

(* ---------- reference kernels (original implementation) ---------- *)

let add_extension buf n =
  let rest = ref (n - 15) in
  while !rest >= 255 do
    Buffer.add_char buf '\255';
    rest := !rest - 255
  done;
  Buffer.add_char buf (Char.chr !rest)

let emit buf src lit_start lit_len match_off match_len =
  let lit_nib = if lit_len < 15 then lit_len else 15 in
  let match_base = if match_len = 0 then 0 else match_len - min_match in
  let match_nib = if match_base < 15 then match_base else 15 in
  Buffer.add_char buf (Char.chr ((lit_nib lsl 4) lor match_nib));
  if lit_len >= 15 then add_extension buf lit_len;
  Buffer.add_substring buf src lit_start lit_len;
  if match_len > 0 then begin
    Buffer.add_char buf (Char.chr (match_off land 0xFF));
    Buffer.add_char buf (Char.chr ((match_off lsr 8) land 0xFF));
    if match_base >= 15 then add_extension buf match_base
  end

let compress_ref s =
  let n = String.length s in
  let out = Buffer.create ((n / 2) + 16) in
  if n < min_match + 1 then begin
    emit out s 0 n 0 0;
    Buffer.contents out
  end
  else begin
    let table = Array.make hash_size (-1) in
    let anchor = ref 0 in
    let i = ref 0 in
    let limit = n - min_match in
    while !i <= limit do
      let h = hash4 s !i in
      let cand = table.(h) in
      table.(h) <- !i;
      if
        cand >= 0
        && !i - cand <= window
        && String.unsafe_get s cand = String.unsafe_get s !i
        && String.unsafe_get s (cand + 1) = String.unsafe_get s (!i + 1)
        && String.unsafe_get s (cand + 2) = String.unsafe_get s (!i + 2)
        && String.unsafe_get s (cand + 3) = String.unsafe_get s (!i + 3)
      then begin
        let len = ref min_match in
        while
          !i + !len < n
          && String.unsafe_get s (cand + !len) = String.unsafe_get s (!i + !len)
        do
          incr len
        done;
        emit out s !anchor (!i - !anchor) (!i - cand) !len;
        let stop = min (!i + !len) limit in
        let j = ref (!i + 1) in
        while !j < stop do
          table.(hash4 s !j) <- !j;
          j := !j + 2
        done;
        i := !i + !len;
        anchor := !i
      end
      else incr i
    done;
    emit out s !anchor (n - !anchor) 0 0;
    Buffer.contents out
  end

let decompress_ref s ~expected_len =
  let n = String.length s in
  if expected_len < 0 then invalid_arg "Lz.decompress: negative length";
  let out = Bytes.create expected_len in
  let opos = ref 0 in
  let i = ref 0 in
  let fail msg = invalid_arg ("Lz.decompress: " ^ msg) in
  let read_byte () =
    if !i >= n then fail "truncated";
    let c = Char.code (String.unsafe_get s !i) in
    incr i;
    c
  in
  let read_ext base =
    if base < 15 then base
    else begin
      let total = ref base in
      let c = ref 255 in
      while !c = 255 do
        c := read_byte ();
        total := !total + !c
      done;
      !total
    end
  in
  while !i < n do
    let token = read_byte () in
    let lit_len = read_ext (token lsr 4) in
    if lit_len > 0 then begin
      if !i + lit_len > n || !opos + lit_len > expected_len then fail "bad literal run";
      Bytes.blit_string s !i out !opos lit_len;
      i := !i + lit_len;
      opos := !opos + lit_len
    end;
    if !i < n then begin
      let lo = read_byte () in
      let hi = read_byte () in
      let off = lo lor (hi lsl 8) in
      if off = 0 || off > !opos then fail "bad offset";
      let match_len = read_ext (token land 0xF) + min_match in
      if !opos + match_len > expected_len then fail "output overflow";
      let src = ref (!opos - off) in
      for _ = 1 to match_len do
        Bytes.unsafe_set out !opos (Bytes.unsafe_get out !src);
        incr src;
        incr opos
      done
    end
  done;
  if !opos <> expected_len then fail "length mismatch";
  Bytes.unsafe_to_string out

module Varint = Purity_util.Varint
module Crc32c = Purity_util.Crc32c

type encoding = Raw | Lz

type t = { logical_len : int; encoding : encoding; payload : string }

let max_logical = 32 * 1024

let of_data ?scratch data =
  let n = String.length data in
  if n > max_logical then invalid_arg "Cblock.of_data: larger than 32 KiB";
  let compressed = Lz.compress ?scratch data in
  if String.length compressed < n then
    { logical_len = n; encoding = Lz; payload = compressed }
  else { logical_len = n; encoding = Raw; payload = data }

let data t =
  match t.encoding with
  | Raw -> t.payload
  | Lz -> Lz.decompress t.payload ~expected_len:t.logical_len

let header_size t =
  Varint.size t.logical_len + 1 + Varint.size (String.length t.payload) + 4

let stored_size t = header_size t + String.length t.payload

let encode buf t =
  Varint.write buf t.logical_len;
  Buffer.add_char buf (match t.encoding with Raw -> '\000' | Lz -> '\001');
  Varint.write buf (String.length t.payload);
  Buffer.add_int32_le buf (Crc32c.digest_string t.payload);
  Buffer.add_string buf t.payload

(* Frame application data directly into [buf] — the same bytes [of_data]
   followed by [encode] would produce, without materialising the
   intermediate cblock or its payload string: with a scratch, the
   compressed bytes go from the LZ scratch buffer straight into the
   frame. Returns the frame size. *)
let add_frame ?scratch ?(compress = true) buf data =
  let n = String.length data in
  if n > max_logical then invalid_arg "Cblock.add_frame: larger than 32 KiB";
  let start = Buffer.length buf in
  let raw () =
    Varint.write buf n;
    Buffer.add_char buf '\000';
    Varint.write buf n;
    Buffer.add_int32_le buf (Crc32c.digest_string data);
    Buffer.add_string buf data
  in
  (if not compress then raw ()
   else
     match scratch with
     | Some sc ->
       let clen = Lz.compress_into sc data in
       if clen < n then begin
         let pb = Lz.scratch_bytes sc in
         Varint.write buf n;
         Buffer.add_char buf '\001';
         Varint.write buf clen;
         Buffer.add_int32_le buf (Crc32c.digest pb ~pos:0 ~len:clen);
         Buffer.add_subbytes buf pb 0 clen
       end
       else raw ()
     | None -> encode buf (of_data data));
  Buffer.length buf - start

let decode buf ~pos =
  let logical_len, p = Varint.read buf ~pos in
  if p >= Bytes.length buf then invalid_arg "Cblock.decode: truncated";
  let encoding =
    match Bytes.get buf p with
    | '\000' -> Raw
    | '\001' -> Lz
    | _ -> invalid_arg "Cblock.decode: bad encoding byte"
  in
  let payload_len, p = Varint.read buf ~pos:(p + 1) in
  if p + 4 + payload_len > Bytes.length buf then invalid_arg "Cblock.decode: truncated";
  let crc_stored = Bytes.get_int32_le buf p in
  let payload = Bytes.sub_string buf (p + 4) payload_len in
  if Crc32c.digest_string payload <> crc_stored then
    invalid_arg "Cblock.decode: CRC mismatch";
  ({ logical_len; encoding; payload }, p + 4 + payload_len)

let reduction t =
  if stored_size t = 0 then 1.0
  else float_of_int t.logical_len /. float_of_int (stored_size t)

module Clock = Purity_sim.Clock
module Rng = Purity_util.Rng
module Xxhash = Purity_util.Xxhash

type config = {
  au_size : int;
  num_aus : int;
  page_size : int;
  dies : int;
  read_us : float;
  program_us : float;
  erase_us : float;
  channel_mb_s : float;
  pe_rating : int;
  retention_mean_us : float;
  vertical_parity : bool;
}

let year_us = 365.0 *. 86400.0 *. 1e6

let default_config =
  {
    au_size = 8 * 1024 * 1024;
    num_aus = 256;
    page_size = 4096;
    dies = 8;
    read_us = 90.0;
    program_us = 250.0;
    erase_us = 2000.0;
    channel_mb_s = 480.0;
    pe_rating = 3000;
    retention_mean_us = year_us;
    vertical_parity = false;
  }

type error = [ `Offline | `Corrupt of int ]

type stats = {
  reads : int;
  writes : int;
  bytes_read : int;
  bytes_written : int;
  trims : int;
  corrupt_reads : int;
  program_stalls : int;
}

let zero_stats =
  {
    reads = 0;
    writes = 0;
    bytes_read = 0;
    bytes_written = 0;
    trims = 0;
    corrupt_reads = 0;
    program_stalls = 0;
  }

type t = {
  cfg : config;
  clock : Clock.t;
  drive_id : int;
  salt : int64; (* per-drive hash salt for deterministic corruption draws *)
  injected : (int * int, unit) Hashtbl.t; (* (au, page) forced-corrupt marks *)
  contents : (int, Bytes.t) Hashtbl.t; (* au -> data, allocated lazily *)
  fill : int array; (* append pointer per AU *)
  pe : int array; (* P/E cycles per AU *)
  written_at : float array; (* time of first program after last erase *)
  die_free_at : float array;
  mutable channel_free_at : float;
  mutable write_busy_until : float;
  mutable online : bool;
  mutable stats : stats;
}

let create ?(config = default_config) ~clock ~rng ~id () =
  {
    cfg = config;
    clock;
    drive_id = id;
    salt = Rng.next_int64 rng;
    injected = Hashtbl.create 4;
    contents = Hashtbl.create 64;
    fill = Array.make config.num_aus 0;
    pe = Array.make config.num_aus 0;
    written_at = Array.make config.num_aus 0.0;
    die_free_at = Array.make config.dies 0.0;
    channel_free_at = 0.0;
    write_busy_until = 0.0;
    online = true;
    stats = zero_stats;
  }

let id t = t.drive_id
let config t = t.cfg
let fail t = t.online <- false
let restore t = t.online <- true

let replace t =
  Hashtbl.reset t.contents;
  Hashtbl.reset t.injected;
  Array.fill t.fill 0 t.cfg.num_aus 0;
  Array.fill t.pe 0 t.cfg.num_aus 0;
  Array.fill t.written_at 0 t.cfg.num_aus 0.0;
  t.online <- true

let is_online t = t.online
let au_fill t ~au = t.fill.(au)
let au_pe_count t ~au = t.pe.(au)
let busy_writing t = Clock.now t.clock < t.write_busy_until
let wear_to t ~pe = Array.fill t.pe 0 t.cfg.num_aus pe
let stats t = t.stats
let reset_stats t = t.stats <- zero_stats

(* Fault injection: mark one page as latently corrupt, as though its
   charge leaked. The mark behaves exactly like age-induced retention
   loss — reads surface [`Corrupt], vertical parity may repair it, and an
   erase (trim/replace) clears it — so scrub and RS repair paths see the
   same physics either way. *)
let inject_page_corruption t ~au ~page =
  if au < 0 || au >= t.cfg.num_aus then invalid_arg "Drive.inject_page_corruption: bad au";
  if page < 0 || page * t.cfg.page_size >= t.cfg.au_size then
    invalid_arg "Drive.inject_page_corruption: bad page";
  Hashtbl.replace t.injected (au, page) ()

let injected_corrupt_pages t = Hashtbl.length t.injected

(* Wear summary across the drive's AUs. *)
let pe_max t = Array.fold_left max 0 t.pe

let pe_mean t =
  if t.cfg.num_aus = 0 then 0.0
  else float_of_int (Array.fold_left ( + ) 0 t.pe) /. float_of_int t.cfg.num_aus

let register_telemetry t reg =
  let module R = Purity_telemetry.Registry in
  let p name = Printf.sprintf "ssd/drive%d/%s" t.drive_id name in
  R.derive_int reg (p "reads") (fun () -> t.stats.reads);
  R.derive_int reg (p "writes") (fun () -> t.stats.writes);
  R.derive_int reg (p "bytes_read") (fun () -> t.stats.bytes_read);
  R.derive_int reg (p "bytes_written") (fun () -> t.stats.bytes_written);
  R.derive_int reg (p "trims") (fun () -> t.stats.trims);
  R.derive_int reg (p "corrupt_reads") (fun () -> t.stats.corrupt_reads);
  R.derive_int reg (p "program_stalls") (fun () -> t.stats.program_stalls);
  R.derive_int reg (p "injected_corrupt_pages") (fun () -> injected_corrupt_pages t);
  R.derive_int reg (p "pe_max") (fun () -> pe_max t);
  R.derive_float reg (p "pe_mean") (fun () -> pe_mean t);
  R.derive_float reg (p "wear_ratio") (fun () ->
      pe_mean t /. float_of_int t.cfg.pe_rating);
  R.derive_int reg (p "online") (fun () -> if t.online then 1 else 0)

let channel_us t len =
  float_of_int len /. (t.cfg.channel_mb_s *. 1024.0 *. 1024.0 /. 1e6)

let au_buffer t au =
  match Hashtbl.find_opt t.contents au with
  | Some b -> b
  | None ->
    let b = Bytes.make t.cfg.au_size '\000' in
    Hashtbl.replace t.contents au b;
    b

(* Which die a page of an AU lives on: sequential pages stripe round-robin
   across dies, as real drives do for write bandwidth. *)
let die_of_page t ~au ~page = (au + page) mod t.cfg.dies

(* Deterministic retention model. Each page gets a "death age" drawn (by
   hashing, so re-reads agree) from an exponential whose mean shrinks as
   wear exceeds the rating; the page reads as corrupt once its age since
   the last program exceeds that draw. Below 80% of the rating flash is
   effectively immortal, matching the paper's observation that typical
   customers never approach P/E limits. *)
let page_corrupt t ~au ~page =
  if Hashtbl.mem t.injected (au, page) then true
  else
  let pe = t.pe.(au) in
  let ratio = float_of_int pe /. float_of_int t.cfg.pe_rating in
  if ratio < 0.8 then false
  else begin
    let age = Clock.now t.clock -. t.written_at.(au) in
    let wear = Float.max 0.05 (ratio -. 0.8) in
    let mean = t.cfg.retention_mean_us /. (wear /. 0.2) in
    let key = Bytes.create 24 in
    Bytes.set_int64_le key 0 (Int64.of_int au);
    Bytes.set_int64_le key 8 (Int64.of_int page);
    Bytes.set_int64_le key 16 (Int64.of_int pe);
    let h = Xxhash.hash ~seed:t.salt key ~pos:0 ~len:24 in
    let u =
      Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0
    in
    let death_age = -.mean *. log (Float.max u 1e-18) in
    age > death_age
  end

(* Reserve the channel: transfers serialise on the host interface. Returns
   the time the transfer finishes. *)
let reserve_channel t len =
  let start = Float.max (Clock.now t.clock) t.channel_free_at in
  let finish = start +. channel_us t len in
  t.channel_free_at <- finish;
  (start, finish)

let write_chunk t ~au ~off ~data k =
  if not t.online then Clock.schedule t.clock ~delay:1.0 (fun () -> k (Error `Offline))
  else begin
    if au < 0 || au >= t.cfg.num_aus then invalid_arg "Drive.write_chunk: bad au";
    if off <> t.fill.(au) then
      invalid_arg
        (Printf.sprintf "Drive.write_chunk: non-append write (au=%d off=%d fill=%d)" au off
           t.fill.(au));
    let len = Bytes.length data in
    if off + len > t.cfg.au_size then invalid_arg "Drive.write_chunk: AU overflow";
    let buf = au_buffer t au in
    Bytes.blit data 0 buf off len;
    if t.fill.(au) = 0 then t.written_at.(au) <- Clock.now t.clock;
    t.fill.(au) <- off + len;
    t.stats <- { t.stats with writes = t.stats.writes + 1; bytes_written = t.stats.bytes_written + len };
    (* Timing: transfer over the channel, then program pages striped over
       the dies; the dies run in parallel, pages on one die serialise. *)
    let _, transfer_done = reserve_channel t len in
    let pages = (len + t.cfg.page_size - 1) / t.cfg.page_size in
    let first_page = off / t.cfg.page_size in
    let per_die = Array.make t.cfg.dies 0 in
    for p = first_page to first_page + pages - 1 do
      let d = die_of_page t ~au ~page:p in
      per_die.(d) <- per_die.(d) + 1
    done;
    let finish = ref transfer_done in
    for d = 0 to t.cfg.dies - 1 do
      if per_die.(d) > 0 then begin
        let start = Float.max transfer_done t.die_free_at.(d) in
        let done_at = start +. (float_of_int per_die.(d) *. t.cfg.program_us) in
        t.die_free_at.(d) <- done_at;
        if done_at > !finish then finish := done_at
      end
    done;
    t.write_busy_until <- Float.max t.write_busy_until !finish;
    Clock.schedule_at t.clock ~at:!finish (fun () -> k (Ok ()))
  end

let read t ~au ~off ~len k =
  if not t.online then Clock.schedule t.clock ~delay:1.0 (fun () -> k (Error `Offline))
  else begin
    if au < 0 || au >= t.cfg.num_aus then invalid_arg "Drive.read: bad au";
    if off < 0 || len < 0 || off + len > t.cfg.au_size then invalid_arg "Drive.read: bad range";
    t.stats <- { t.stats with reads = t.stats.reads + 1; bytes_read = t.stats.bytes_read + len };
    let data =
      match Hashtbl.find_opt t.contents au with
      | Some buf -> Bytes.sub buf off len
      | None -> Bytes.make len '\000'
    in
    (* Corruption check per touched page. With vertical parity (paper
       4.2: "flash translation layers can quickly recover a single
       corrupted page without the need to read data from the other
       drives"), a lone bad page in its 16-page parity group is repaired
       internally at the cost of reading the group; two or more losses in
       one group surface as corruption. *)
    let first_page = off / t.cfg.page_size in
    let last_page = if len = 0 then first_page else (off + len - 1) / t.cfg.page_size in
    let corrupt = ref None in
    let internal_repairs = ref 0 in
    let group_size = 16 in
    let group_corruption page =
      let g0 = page / group_size * group_size in
      let n = ref 0 in
      for q = g0 to g0 + group_size - 1 do
        if page_corrupt t ~au ~page:q then incr n
      done;
      !n
    in
    (if t.fill.(au) > 0 then
       for p = first_page to last_page do
         if !corrupt = None && page_corrupt t ~au ~page:p then
           if t.cfg.vertical_parity && group_corruption p <= 1 then incr internal_repairs
           else corrupt := Some p
       done);
    (* Timing: sequential pages stripe across the dies, so a multi-page
       read runs its dies in parallel (pages sharing a die serialise);
       any program or erase in progress on a die is waited out. Then the
       channel transfer. *)
    let pages = max 1 (last_page - first_page + 1) in
    let per_die = Array.make t.cfg.dies 0 in
    for p = first_page to first_page + pages - 1 do
      let d = die_of_page t ~au ~page:p in
      per_die.(d) <- per_die.(d) + 1
    done;
    let now = Clock.now t.clock in
    let flash_done = ref now in
    let stalled = ref false in
    for d = 0 to t.cfg.dies - 1 do
      if per_die.(d) > 0 then begin
        if t.die_free_at.(d) > now then stalled := true;
        let start = Float.max now t.die_free_at.(d) in
        let done_at = start +. (float_of_int per_die.(d) *. t.cfg.read_us) in
        t.die_free_at.(d) <- done_at;
        if done_at > !flash_done then flash_done := done_at
      end
    done;
    (* a read queued behind an in-progress program/erase on its die — the
       latency spike Purity's scheduler reads around (§4.4) *)
    if !stalled then
      t.stats <- { t.stats with program_stalls = t.stats.program_stalls + 1 };
    (* internal parity repairs read the rest of the group *)
    let repair_us =
      float_of_int !internal_repairs *. 15.0 *. t.cfg.read_us /. float_of_int t.cfg.dies
    in
    let start = Float.max (!flash_done +. repair_us) t.channel_free_at in
    let finish = start +. channel_us t len in
    t.channel_free_at <- finish;
    let result =
      match !corrupt with
      | Some p ->
        t.stats <- { t.stats with corrupt_reads = t.stats.corrupt_reads + 1 };
        Error (`Corrupt p)
      | None -> Ok data
    in
    Clock.schedule_at t.clock ~at:finish (fun () -> k result)
  end

let trim_au t ~au =
  if au < 0 || au >= t.cfg.num_aus then invalid_arg "Drive.trim_au: bad au";
  Hashtbl.remove t.contents au;
  Hashtbl.iter
    (fun ((a, _) as key) () -> if a = au then Hashtbl.remove t.injected key)
    (Hashtbl.copy t.injected);
  t.fill.(au) <- 0;
  t.pe.(au) <- t.pe.(au) + 1;
  t.stats <- { t.stats with trims = t.stats.trims + 1 };
  (* The erase occupies the AU's dies; reads landing there meanwhile stall. *)
  let now = Clock.now t.clock in
  for d = 0 to t.cfg.dies - 1 do
    t.die_free_at.(d) <- Float.max t.die_free_at.(d) now +. (t.cfg.erase_us /. float_of_int t.cfg.dies)
  done;
  t.write_busy_until <- Float.max t.write_busy_until (now +. t.cfg.erase_us)

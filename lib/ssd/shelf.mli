(** A shelf: the drive set plus NVRAM behind both controllers.

    Paper §4.1: shelves contain 11–24 MLC drives with SAS interposers
    connecting each drive to both controllers, plus the NVRAM devices.
    Because the shelf (not the controller) owns all persistent state, the
    controllers are stateless and failover is a pure software event. *)

type t

val create :
  ?drive_config:Drive.config ->
  ?nvram_capacity:int ->
  clock:Purity_sim.Clock.t ->
  rng:Purity_util.Rng.t ->
  drives:int ->
  unit ->
  t
(** [drives] must be at least the erasure-code width used above (the paper
    uses write groups of 11 for 7+2 coding). *)

val clock : t -> Purity_sim.Clock.t
val drive_count : t -> int
val drive : t -> int -> Drive.t
val drives : t -> Drive.t array
val nvram : t -> Nvram.t

val online_drives : t -> int list
(** Indices of drives currently serving I/O. *)

val physical_bytes : t -> int
(** Raw capacity across all drives. *)

val pull_drive : t -> int -> unit
(** Simulate a human pulling drive [i] (the paper encourages evaluators to
    do exactly this). *)

val reinsert_drive : t -> int -> unit
val replace_drive : t -> int -> unit

val register_telemetry : t -> Purity_telemetry.Registry.t -> unit
(** Register every drive's metrics ([ssd/drive<i>/...]) plus shelf-wide
    derived metrics ([ssd/online_drives], [ssd/pe_max]) and the NVRAM
    fill ([nvram/used_bytes], [nvram/capacity]). *)

type config = {
  pages_per_block : int;
  num_blocks : int;
  overprovision : float;
  program_us : float;
  read_us : float;
  erase_us : float;
  gc_low_watermark : int;
}

let default_config =
  {
    pages_per_block = 256;
    num_blocks = 512;
    overprovision = 0.07;
    program_us = 250.0;
    read_us = 90.0;
    erase_us = 2000.0;
    gc_low_watermark = 4;
  }

type stats = {
  host_writes : int;
  total_programs : int;
  erases : int;
  gc_relocations : int;
}

type t = {
  cfg : config;
  host_page_count : int;
  map : int array; (* lpn -> ppn, -1 if unmapped *)
  rmap : int array; (* ppn -> lpn, -1 if free/invalid *)
  valid : int array; (* valid pages per block *)
  mutable free_blocks : int list;
  mutable open_block : int;
  mutable open_next : int; (* next page slot in the open block *)
  mutable stats : stats;
}

let default_config = default_config

let create ?(config = default_config) () =
  let physical_pages = config.num_blocks * config.pages_per_block in
  let host_page_count =
    int_of_float (float_of_int physical_pages *. (1.0 -. config.overprovision))
  in
  let free = List.init (config.num_blocks - 1) (fun i -> i + 1) in
  {
    cfg = config;
    host_page_count;
    map = Array.make host_page_count (-1);
    rmap = Array.make physical_pages (-1);
    valid = Array.make config.num_blocks 0;
    free_blocks = free;
    open_block = 0;
    open_next = 0;
    stats = { host_writes = 0; total_programs = 0; erases = 0; gc_relocations = 0 };
  }

let host_pages t = t.host_page_count

let invalidate t ppn =
  if ppn >= 0 then begin
    let block = ppn / t.cfg.pages_per_block in
    t.rmap.(ppn) <- -1;
    t.valid.(block) <- t.valid.(block) - 1
  end

(* Program a page into the open block; assumes a slot is available. *)
let program t lpn =
  let ppn = (t.open_block * t.cfg.pages_per_block) + t.open_next in
  t.open_next <- t.open_next + 1;
  invalidate t t.map.(lpn);
  t.map.(lpn) <- ppn;
  t.rmap.(ppn) <- lpn;
  t.valid.(t.open_block) <- t.valid.(t.open_block) + 1;
  t.stats <- { t.stats with total_programs = t.stats.total_programs + 1 }

(* Pick the block with the fewest valid pages (greedy), relocate its valid
   pages, erase it. Returns the latency of the work. *)
let gc_once t =
  let victim = ref (-1) and best = ref max_int in
  for b = 0 to t.cfg.num_blocks - 1 do
    if b <> t.open_block && not (List.mem b t.free_blocks) && t.valid.(b) < !best then begin
      victim := b;
      best := t.valid.(b)
    end
  done;
  if !victim < 0 then 0.0
  else begin
    let b = !victim in
    let moved = ref 0 in
    for p = 0 to t.cfg.pages_per_block - 1 do
      let ppn = (b * t.cfg.pages_per_block) + p in
      let lpn = t.rmap.(ppn) in
      if lpn >= 0 then begin
        (* Relocation may itself fill the open block mid-loop. *)
        if t.open_next >= t.cfg.pages_per_block then begin
          match t.free_blocks with
          | nb :: rest ->
            t.free_blocks <- rest;
            t.open_block <- nb;
            t.open_next <- 0
          | [] -> failwith "Ftl: out of space during GC"
        end;
        program t lpn;
        incr moved
      end
    done;
    t.valid.(b) <- 0;
    t.free_blocks <- t.free_blocks @ [ b ];
    t.stats <-
      {
        t.stats with
        erases = t.stats.erases + 1;
        gc_relocations = t.stats.gc_relocations + !moved;
      };
    (float_of_int !moved *. (t.cfg.read_us +. t.cfg.program_us)) +. t.cfg.erase_us
  end

let write t ~lpn =
  if lpn < 0 || lpn >= t.host_page_count then invalid_arg "Ftl.write: bad lpn";
  let latency = ref t.cfg.program_us in
  if t.open_next >= t.cfg.pages_per_block then begin
    (* Need a fresh open block; run GC until we are above the watermark. *)
    while List.length t.free_blocks <= t.cfg.gc_low_watermark do
      latency := !latency +. gc_once t
    done;
    match t.free_blocks with
    | nb :: rest ->
      t.free_blocks <- rest;
      t.open_block <- nb;
      t.open_next <- 0
    | [] -> failwith "Ftl: out of space"
  end;
  program t lpn;
  t.stats <- { t.stats with host_writes = t.stats.host_writes + 1 };
  !latency

let stats t = t.stats

let write_amplification t =
  if t.stats.host_writes = 0 then 1.0
  else float_of_int t.stats.total_programs /. float_of_int t.stats.host_writes

let register_telemetry ?(prefix = "ftl") t reg =
  let module R = Purity_telemetry.Registry in
  let key name = prefix ^ "/" ^ name in
  R.derive_int reg (key "host_writes") (fun () -> t.stats.host_writes);
  R.derive_int reg (key "total_programs") (fun () -> t.stats.total_programs);
  R.derive_int reg (key "erases") (fun () -> t.stats.erases);
  R.derive_int reg (key "gc_relocations") (fun () -> t.stats.gc_relocations);
  R.derive_float reg (key "write_amplification") (fun () -> write_amplification t)

module Clock = Purity_sim.Clock

type record = { seq : int64; payload : string }

type t = {
  clock : Clock.t;
  latency_us : float;
  mb_s : float;
  cap : int;
  log : record Queue.t;
  mutable used : int;
  mutable free_at : float;
  mutable losses : int;
}

let create ?(latency_us = 15.0) ?(mb_s = 700.0) ?(capacity = 16 * 1024 * 1024) ~clock () =
  {
    clock;
    latency_us;
    mb_s;
    cap = capacity;
    log = Queue.create ();
    used = 0;
    free_at = 0.0;
    losses = 0;
  }

let record_size r = String.length r.payload + 16

let commit t r k =
  let size = record_size r in
  if t.used + size > t.cap then Clock.schedule t.clock ~delay:1.0 (fun () -> k (Error `Full))
  else begin
    Queue.add r t.log;
    t.used <- t.used + size;
    let transfer = float_of_int size /. (t.mb_s *. 1024.0 *. 1024.0 /. 1e6) in
    let start = Float.max (Clock.now t.clock) t.free_at in
    let finish = start +. t.latency_us +. transfer in
    t.free_at <- finish;
    Clock.schedule_at t.clock ~at:finish (fun () -> k (Ok ()))
  end

let trim_upto t seq =
  let continue = ref true in
  while !continue do
    match Queue.peek_opt t.log with
    | Some r when Int64.compare r.seq seq <= 0 ->
      ignore (Queue.pop t.log);
      t.used <- t.used - record_size r
    | _ -> continue := false
  done

(* Fault injection: the device loses its contents (a dead SLC part).
   The part itself keeps working — later commits land normally — so the
   exposure window is exactly the records that were pending at the loss. *)
let lose t =
  Queue.clear t.log;
  t.used <- 0;
  t.losses <- t.losses + 1

let losses t = t.losses
let records t = List.of_seq (Queue.to_seq t.log)
let used_bytes t = t.used
let capacity t = t.cap

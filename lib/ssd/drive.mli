(** Simulated consumer MLC SSD.

    This is the substrate substituting for the paper's physical drives
    (DESIGN.md). It models exactly the behaviours Purity's design reacts
    to (paper §2.1, §3.3, §4.4, §5.1):

    - dies that serve reads and programs in parallel, with reads stalling
      behind in-progress program/erase operations on the same die (the
      source of SSD read-latency spikes);
    - a serial host interface of bounded bandwidth;
    - erase-before-write at allocation-unit granularity, with per-AU
      program/erase (P/E) wear accounting;
    - retention loss: pages on worn flash leak charge and become unreadable
      with age, unless rewritten (motivating Purity's scrubber);
    - whole-drive failure (a pulled drive).

    The drive enforces Purity's contract: writes within an allocation unit
    are strictly append-only, and an AU must be trimmed (erased) before it
    is rewritten. Violations raise, so the storage engine's append-only
    discipline is machine-checked rather than assumed.

    All latencies are charged to the shared {!Purity_sim.Clock.t}; results
    are delivered by callback at the operation's simulated completion. *)

type config = {
  au_size : int;  (** allocation unit in bytes (paper: 8 MiB) *)
  num_aus : int;  (** drive capacity / [au_size] *)
  page_size : int;  (** flash page in bytes *)
  dies : int;  (** independent flash dies *)
  read_us : float;  (** flash array read latency per page *)
  program_us : float;  (** program latency per page *)
  erase_us : float;  (** erase latency per erase block *)
  channel_mb_s : float;  (** host interface bandwidth *)
  pe_rating : int;  (** rated P/E cycles before wear-out *)
  retention_mean_us : float;
      (** mean data-retention time of a page written at exactly the rated
          P/E count; retention shrinks in proportion to wear beyond the
          rating and is effectively infinite below ~80% of it *)
  vertical_parity : bool;
      (** §4.2: intra-drive parity pages let the FTL repair a single lost
          page per 16-page group internally (at extra read latency)
          without involving the other drives; default off *)
}

val default_config : config
(** 8 MiB AUs, 4 KiB pages, 8 dies, 90/250/2000 us read/program/erase,
    480 MB/s channel, 3000 P/E (consumer MLC), 1-simulated-year retention
    at rating. Sized at 256 AUs (2 GiB) so tests run in-memory. *)

type error = [ `Offline | `Corrupt of int (** first corrupted page index *) ]

type t

val create :
  ?config:config -> clock:Purity_sim.Clock.t -> rng:Purity_util.Rng.t -> id:int -> unit -> t
val id : t -> int
val config : t -> config

(** {1 Availability} *)

val fail : t -> unit
(** Pull the drive: every subsequent operation completes with [`Offline]. *)

val restore : t -> unit
(** Re-insert the drive with its contents intact (an interposer path flap,
    not a replacement). *)

val replace : t -> unit
(** Swap in a fresh drive: contents erased, wear reset. *)

val is_online : t -> bool

(** {1 Data path} *)

val write_chunk : t -> au:int -> off:int -> data:bytes -> ((unit, error) result -> unit) -> unit
(** Append [data] inside allocation unit [au] starting at byte [off].
    [off] must equal the AU's current fill (append-only contract) and the
    write must not overflow the AU. Completion fires when every die
    involved finishes programming. *)

val read : t -> au:int -> off:int -> len:int -> ((bytes, error) result -> unit) -> unit
(** Read a byte range of an AU. Unwritten ranges read as zeros. Reads that
    land on a die that is currently programming or erasing wait for it —
    the latency-spike behaviour Purity's scheduler works around. *)

val trim_au : t -> au:int -> unit
(** Erase the AU (instantaneous accounting, erase latency charged to the
    dies' busy windows): contents dropped, fill reset, P/E count bumped. *)

val au_fill : t -> au:int -> int
(** Bytes currently written in the AU. *)

val au_pe_count : t -> au:int -> int

val busy_writing : t -> bool
(** True while any die is executing a program or erase — the scheduler
    treats such drives "as though they have failed" (paper §4.4). *)

(** {1 Wear & fault injection, statistics} *)

val wear_to : t -> pe:int -> unit
(** Set every AU's P/E count (building the "worn-out flash" array of
    paper §5.1 without simulating years of writes). *)

val inject_page_corruption : t -> au:int -> page:int -> unit
(** Mark one page as latently corrupt, exactly as if its charge had
    leaked: reads of the page surface [`Corrupt] (unless vertical parity
    repairs it), and an erase ({!trim_au} or {!replace}) clears the mark.
    The deterministic hook behind [purity.check]'s corruption faults. *)

val injected_corrupt_pages : t -> int
(** Injected marks still present (not yet erased away). *)

type stats = {
  reads : int;
  writes : int;
  bytes_read : int;
  bytes_written : int;
  trims : int;
  corrupt_reads : int;
  program_stalls : int;
      (** reads that queued behind an in-progress program or erase on one
          of their dies — the §4.4 latency-spike events *)
}

val stats : t -> stats
val reset_stats : t -> unit

val pe_max : t -> int
(** Highest per-AU P/E count — the wear figure fleet telemetry tracks. *)

val pe_mean : t -> float

val register_telemetry : t -> Purity_telemetry.Registry.t -> unit
(** Register this drive's counters and wear gauges under
    [ssd/drive<id>/...] as derived metrics (sampled at snapshot time). *)

(** Page-mapped FTL model — the baseline Purity's log structure avoids.

    Paper §2.1/§3.3: "flash translation layers behave erratically when
    exposed to random writes", and Purity therefore presents the drives
    with large sequential writes only. To quantify that motivation
    (experiment E11) this module models what happens *inside* a generic
    drive when a host issues page-granularity writes directly:

    - a logical→physical page map;
    - out-of-place writes into the currently open erase block;
    - greedy garbage collection (victim = fewest valid pages) when free
      blocks run low, relocating the victim's valid pages;
    - write amplification = total pages programmed / host pages written.

    The model is analytic over simulated time: each host write's latency
    includes any GC work it had to wait for, reproducing the erratic
    random-write latency the paper describes. *)

type config = {
  pages_per_block : int;
  num_blocks : int;
  overprovision : float;  (** fraction of physical space hidden from host *)
  program_us : float;
  read_us : float;
  erase_us : float;
  gc_low_watermark : int;  (** free blocks that trigger GC *)
}

val default_config : config

type t

val create : ?config:config -> unit -> t

val host_pages : t -> int
(** Logical pages exposed to the host. *)

val write : t -> lpn:int -> float
(** Write one logical page; returns the latency in microseconds, including
    any garbage-collection relocations and erases this write stalled on. *)

type stats = {
  host_writes : int;
  total_programs : int;
  erases : int;
  gc_relocations : int;
}

val stats : t -> stats

val write_amplification : t -> float
(** [total_programs / host_writes]; 1.0 until GC starts. *)

val register_telemetry : ?prefix:string -> t -> Purity_telemetry.Registry.t -> unit
(** Register the FTL's counters and write-amplification gauge under
    [prefix/...] (default [ftl/...]) as derived metrics, so several FTLs
    can share one registry. *)

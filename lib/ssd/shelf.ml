type t = {
  clock : Purity_sim.Clock.t;
  drives : Drive.t array;
  nvram : Nvram.t;
}

let create ?(drive_config = Drive.default_config) ?nvram_capacity ~clock ~rng ~drives () =
  if drives < 3 then invalid_arg "Shelf.create: need at least 3 drives";
  let mk i = Drive.create ~config:drive_config ~clock ~rng:(Purity_util.Rng.split rng) ~id:i () in
  {
    clock;
    drives = Array.init drives mk;
    nvram = Nvram.create ?capacity:nvram_capacity ~clock ();
  }

let clock t = t.clock
let drive_count t = Array.length t.drives
let drive t i = t.drives.(i)
let drives t = t.drives
let nvram t = t.nvram

let online_drives t =
  Array.to_list t.drives
  |> List.filter Drive.is_online
  |> List.map Drive.id

let physical_bytes t =
  Array.fold_left
    (fun acc d ->
      let cfg = Drive.config d in
      acc + (cfg.Drive.au_size * cfg.Drive.num_aus))
    0 t.drives

let pull_drive t i = Drive.fail t.drives.(i)
let reinsert_drive t i = Drive.restore t.drives.(i)
let replace_drive t i = Drive.replace t.drives.(i)

let register_telemetry t reg =
  let module R = Purity_telemetry.Registry in
  Array.iter (fun d -> Drive.register_telemetry d reg) t.drives;
  R.derive_int reg "ssd/online_drives" (fun () -> List.length (online_drives t));
  R.derive_int reg "ssd/pe_max" (fun () ->
      Array.fold_left (fun acc d -> max acc (Drive.pe_max d)) 0 t.drives);
  R.derive_int reg "nvram/used_bytes" (fun () -> Nvram.used_bytes t.nvram);
  R.derive_int reg "nvram/capacity" (fun () -> Nvram.capacity t.nvram)

(** Shelf NVRAM: the low-latency commit device.

    The paper's "NVRAM" is an SLC flash part with bounded latency and a
    much higher P/E rating than the MLC data drives (§4.1). Purity commits
    application writes and index insertions here first; segios are flushed
    asynchronously and the NVRAM is trimmed once the corresponding sequence
    numbers are durable in segments (§4.2, Figure 4).

    The model is an append-only record log with fixed commit latency plus
    bandwidth, living in the shelf (so it survives controller failover). *)

type t

type record = { seq : int64; payload : string }

val create :
  ?latency_us:float ->
  ?mb_s:float ->
  ?capacity:int ->
  clock:Purity_sim.Clock.t ->
  unit ->
  t
(** Defaults: 15 us commit latency, 700 MB/s, 16 MiB capacity. *)

val commit : t -> record -> ((unit, [ `Full ]) result -> unit) -> unit
(** Durably append a record; the callback fires at simulated completion.
    [`Full] means the segment writer has fallen behind and the caller must
    stall (back-pressure, as in the real system). *)

val trim_upto : t -> int64 -> unit
(** Drop records with [seq] <= the given sequence number: they are now
    persisted in segments. *)

val records : t -> record list
(** Surviving records in append order — what recovery replays. *)

val lose : t -> unit
(** Fault injection: drop every pending record (NVRAM content loss). The
    device keeps accepting commits afterwards, so only writes acked before
    the loss and not yet durable in flushed segments are exposed. *)

val losses : t -> int
(** How many times {!lose} has fired on this device. *)

val used_bytes : t -> int
val capacity : t -> int

module Clock = Purity_sim.Clock
module Fa = Purity_core.Flash_array
module State = Purity_core.State
module Keys = Purity_core.Keys
module Pyramid = Purity_pyramid.Pyramid
module Medium = Purity_medium.Medium
module Registry = Purity_telemetry.Registry
module Span = Purity_telemetry.Span

type link = { mb_s : float; rtt_us : float }

let default_link = { mb_s = 100.0; rtt_us = 20_000.0 }

type protected_vol = {
  mutable cycle : int;
  mutable last_snap : string option; (* fully applied on the target *)
  mutable in_flight : bool;
}

type stats = { cycles : int; total_shipped_bytes : int; total_changed_blocks : int }

type t = {
  link : link;
  source : Fa.t;
  target : Fa.t;
  clock : Clock.t;
  volumes : (string, protected_vol) Hashtbl.t;
  mutable link_free_at : float;
  mutable stats : stats;
}

(* Expose the replicator's counters in the source array's registry.
   Derived (not direct) on purpose: a failover hands the source a fresh
   registry, and re-deriving — idempotent, cheap — re-joins it. *)
let register_telemetry t =
  let reg = Fa.telemetry t.source in
  Registry.derive_int reg "replication/cycles" (fun () -> t.stats.cycles);
  Registry.derive_int reg "replication/shipped_bytes" (fun () ->
      t.stats.total_shipped_bytes);
  Registry.derive_int reg "replication/changed_blocks" (fun () ->
      t.stats.total_changed_blocks);
  Registry.derive_int reg "replication/protected_volumes" (fun () ->
      Hashtbl.length t.volumes)

let create ?(link = default_link) ~source ~target () =
  if Fa.clock source != Fa.clock target then
    invalid_arg "Replication.create: arrays must share one clock";
  let t =
    {
      link;
      source;
      target;
      clock = Fa.clock source;
      volumes = Hashtbl.create 8;
      link_free_at = 0.0;
      stats = { cycles = 0; total_shipped_bytes = 0; total_changed_blocks = 0 };
    }
  in
  register_telemetry t;
  t

let protect t name =
  if Hashtbl.mem t.volumes name then Error `Already
  else if not (Fa.volume_exists t.source name) then Error `No_such_volume
  else begin
    Hashtbl.replace t.volumes name { cycle = 0; last_snap = None; in_flight = false };
    Ok ()
  end

let unprotect t name = Hashtbl.remove t.volumes name

let last_replicated t name =
  match Hashtbl.find_opt t.volumes name with Some p -> p.last_snap | None -> None

let stats t = t.stats

(* Delta machinery shared with the synchronous ActiveCluster layer
   (lib/activecluster): both replication flavours reduce "what must cross
   the wire" to sorted block lists and consecutive runs. *)
module Delta = struct
  (* The frozen medium a snapshot handle references. *)
  let snap_medium st snap_name =
    match State.Stbl.find_opt st.State.volumes snap_name with
    | Some v -> (
      match Medium.extents st.State.medium_table v.State.medium with
      | [ { Medium.target = Medium.Underlying { medium; _ }; _ } ] -> Some medium
      | _ -> Some v.State.medium)
    | None -> None

  (* Mediums that accumulated writes between two replication snapshots:
     walk the successor chain [from_medium] downwards until [until]
     (exclusive). Replication successors reference whole mediums at offset
     0, so the walk is a straight line. *)
  let mediums_between st ~from_medium ~until =
    let rec go m acc =
      if Some m = until then acc
      else begin
        let acc = m :: acc in
        match Medium.extents st.State.medium_table m with
        | [ { Medium.target = Medium.Underlying { medium; offset = 0 }; start_block = 0; _ } ]
          ->
          go medium acc
        | _ -> acc
      end
    in
    go from_medium []

  (* Blocks with live facts in the given mediums, from the block index. *)
  let changed_blocks st mediums =
    let module IS = Set.Make (Int) in
    let set = ref IS.empty in
    List.iter
      (fun medium ->
        let lo = Keys.block_key ~medium ~block:0 in
        let hi = Keys.block_key ~medium ~block:max_int in
        List.iter
          (fun (key, _) -> set := IS.add (Keys.block_key_block key) !set)
          (Pyramid.range st.State.blocks ~lo ~hi))
      mediums;
    IS.elements !set

  (* Every block the medium resolves somewhere in its chain — the initial
     full-sync block list, from one batched range resolution. *)
  let live_blocks st ~medium ~blocks =
    if blocks <= 0 then []
    else begin
      let refs = State.resolve_range st ~medium ~block:0 ~nblocks:blocks in
      let acc = ref [] in
      for b = blocks - 1 downto 0 do
        match refs.(b) with Some _ -> acc := b :: !acc | None -> ()
      done;
      !acc
    end

  (* Group sorted blocks into runs of consecutive addresses, capped so one
     run is one source read / wire transfer / target write. *)
  let runs_of blocks ~max_run =
    let rec go acc current = function
      | [] -> List.rev (match current with None -> acc | Some r -> r :: acc)
      | b :: rest -> (
        match current with
        | Some (start, len) when b = start + len && len < max_run ->
          go acc (Some (start, len + 1)) rest
        | Some r -> go (r :: acc) (Some (b, 1)) rest
        | None -> go acc (Some (b, 1)) rest)
    in
    go [] None blocks
end

open Delta

let ship t bytes k =
  (* serialize transfers on the WAN; per-run RTT overhead *)
  let start = Float.max (Clock.now t.clock) t.link_free_at in
  let finish = start +. t.link.rtt_us +. (float_of_int bytes /. (t.link.mb_s *. 1.048576)) in
  t.link_free_at <- finish;
  Clock.schedule_at t.clock ~at:finish k

type cycle_report = {
  volume : string;
  cycle : int;
  changed_blocks : int;
  shipped_bytes : int;
  duration_us : float;
  rpo_snapshot : string;
}

let ensure_target_volume t name blocks =
  if Fa.volume_exists t.target name then begin
    match
      List.find_opt (fun (n, _, _) -> String.equal n name) (Fa.list_volumes t.target)
    with
    | Some (_, _, current) when blocks > current ->
      ignore (Fa.resize_volume t.target name ~blocks)
    | Some _ | None -> ()
  end
  else ignore (Fa.create_volume t.target name ~blocks)

let replicate_once t volume k =
  let p =
    match Hashtbl.find_opt t.volumes volume with
    | Some p -> p
    | None -> invalid_arg "Replication.replicate_once: volume not protected"
  in
  if p.in_flight then invalid_arg "Replication.replicate_once: cycle already in flight";
  p.in_flight <- true;
  (* the source may have failed over since the last cycle *)
  register_telemetry t;
  let started = Clock.now t.clock in
  let cycle = p.cycle + 1 in
  let cycle_span =
    Span.start (Fa.tracer t.source)
      ~tags:[ ("volume", volume); ("cycle", string_of_int (p.cycle + 1)) ]
      "replication_cycle"
  in
  let snap_name = Printf.sprintf "%s@repl-%d" volume cycle in
  (match Fa.snapshot t.source ~volume ~snap:snap_name with
  | Ok () -> ()
  | Error _ -> invalid_arg "Replication: source snapshot failed");
  let st = Fa.state t.source in
  let size =
    match State.Stbl.find_opt st.State.volumes volume with
    | Some v -> v.State.blocks
    | None -> 0
  in
  ensure_target_volume t volume size;
  let new_medium =
    match snap_medium st snap_name with
    | Some m -> m
    | None -> invalid_arg "Replication: snapshot medium missing after snapshot"
  in
  let prev_medium =
    match p.last_snap with Some s -> snap_medium st s | None -> None
  in
  let blocks =
    match p.last_snap with
    | Some _ ->
      changed_blocks st (mediums_between st ~from_medium:new_medium ~until:prev_medium)
    | None ->
      (* initial sync: every block the volume actually holds, scanned as
         one batched range resolution instead of per-block chain walks *)
      live_blocks st ~medium:new_medium ~blocks:size
  in
  let runs = runs_of blocks ~max_run:256 in
  let shipped = ref 0 in
  let finish () =
    (* target now holds the full image: cut its consistent snapshot *)
    (match Fa.snapshot t.target ~volume ~snap:snap_name with
    | Ok () -> ()
    | Error _ -> ());
    (* retire the previous replication snapshots on both sides *)
    (match p.last_snap with
    | Some old ->
      ignore (Fa.delete_snapshot t.source old);
      ignore (Fa.delete_snapshot t.target old)
    | None -> ());
    p.cycle <- cycle;
    p.last_snap <- Some snap_name;
    p.in_flight <- false;
    t.stats <-
      {
        cycles = t.stats.cycles + 1;
        total_shipped_bytes = t.stats.total_shipped_bytes + !shipped;
        total_changed_blocks = t.stats.total_changed_blocks + List.length blocks;
      };
    Span.finish
      ~tags:
        [
          ("changed_blocks", string_of_int (List.length blocks));
          ("shipped_bytes", string_of_int !shipped);
        ]
      cycle_span;
    k
      {
        volume;
        cycle;
        changed_blocks = List.length blocks;
        shipped_bytes = !shipped;
        duration_us = Clock.now t.clock -. started;
        rpo_snapshot = snap_name;
      }
  in
  let rec pump = function
    | [] -> finish ()
    | (start, len) :: rest ->
      (* read from the frozen snapshot, ship, apply on the target *)
      Fa.read t.source ~volume:snap_name ~block:start ~nblocks:len (function
        | Error _ -> pump rest (* unreadable: skip; next cycle retries *)
        | Ok data ->
          shipped := !shipped + String.length data;
          ship t (String.length data) (fun () ->
              Fa.write t.target ~volume ~block:start data (fun _ -> pump rest)))
  in
  pump runs

let replicate_all t k =
  let names = Hashtbl.fold (fun name _ acc -> name :: acc) t.volumes [] in
  let names = List.sort compare names in
  let reports = ref [] in
  let rec go = function
    | [] -> k (List.rev !reports)
    | name :: rest ->
      replicate_once t name (fun r ->
          reports := r :: !reports;
          go rest)
  in
  go names

(** Asynchronous off-site replication.

    The paper's arrays ship with "network replication ports" and sustain
    full throughput "while providing asynchronous off-site replication"
    (§1); replication is snapshot-based, riding the medium machinery:
    protected volumes are snapshotted on a cadence, and only the blocks
    that differ between consecutive replication snapshots cross the wire.

    This module links two {!Purity_core.Flash_array.t}s (on the same
    simulation clock) with a bandwidth/latency-modelled WAN and
    implements that cycle:

    - cycle n takes snapshot [volume@repl-n] on the source;
    - the delta between [repl-(n-1)] and [repl-n] is computed from the
      block index (no full-volume scan), read on the source, shipped,
      and written to the target volume;
    - the target takes its own [volume@repl-n] snapshot once the delta
      is fully applied, so it always holds a crash-consistent image even
      if the link dies mid-transfer;
    - the previous source snapshot is dropped (one elide, as always).

    Deduplication note: the wire format ships logical bytes; the target
    array re-deduplicates and re-compresses on ingest, as the real
    system does. *)

(** Delta machinery shared between this asynchronous replicator and the
    synchronous ActiveCluster layer ({!Purity_activecluster}): reducing
    "what must cross the wire" to sorted block lists and consecutive
    runs. *)
module Delta : sig
  val snap_medium : Purity_core.State.t -> string -> int option
  (** The frozen medium a snapshot handle references. *)

  val mediums_between :
    Purity_core.State.t -> from_medium:int -> until:int option -> int list
  (** Successor-chain walk from [from_medium] (inclusive) down to [until]
      (exclusive): the mediums that accumulated writes between two
      replication snapshots. *)

  val changed_blocks : Purity_core.State.t -> int list -> int list
  (** Sorted blocks with live facts in any of the given mediums, read off
      the block index (no full-volume scan). *)

  val live_blocks : Purity_core.State.t -> medium:int -> blocks:int -> int list
  (** Sorted blocks the medium resolves anywhere in its chain — the
      initial-sync block list, via one batched range resolution. *)

  val runs_of : int list -> max_run:int -> (int * int) list
  (** Group a sorted block list into [(start, len)] runs of consecutive
      addresses, each at most [max_run] long. *)
end

type link = {
  mb_s : float;  (** WAN bandwidth *)
  rtt_us : float;  (** per-transfer round-trip overhead *)
}

val default_link : link
(** 100 MB/s, 20 ms RTT. *)

type t

val create :
  ?link:link ->
  source:Purity_core.Flash_array.t ->
  target:Purity_core.Flash_array.t ->
  unit ->
  t
(** Both arrays must share one simulation clock.
    @raise Invalid_argument otherwise. *)

val protect : t -> string -> (unit, [ `No_such_volume | `Already ]) result
(** Start protecting a source volume. The target volume (same name) is
    created on first cycle if absent. *)

val unprotect : t -> string -> unit

type cycle_report = {
  volume : string;
  cycle : int;
  changed_blocks : int;
  shipped_bytes : int;  (** logical bytes over the wire *)
  duration_us : float;
  rpo_snapshot : string;  (** the consistent image now held by the target *)
}

val replicate_once : t -> string -> (cycle_report -> unit) -> unit
(** Run one replication cycle for a protected volume. Concurrent cycles
    for the same volume are rejected with an exception (the scheduler
    below never does that). *)

val replicate_all : t -> (cycle_report list -> unit) -> unit
(** One cycle for every protected volume, sequentially. *)

val last_replicated : t -> string -> string option
(** Name of the newest source snapshot fully applied on the target. *)

type stats = {
  cycles : int;
  total_shipped_bytes : int;
  total_changed_blocks : int;
}

val stats : t -> stats

(* ActiveCluster-style synchronous active-active replication.

   Two simulated arrays serve the *same* stretched volumes symmetrically
   (§1, §6: "highly available enterprise storage" beyond async snapshot
   shipping). A host write lands on either side, is applied locally and
   mirrored synchronously over the interconnect, and is acknowledged
   only when both copies are durable. When the link or an array dies,
   the survivor races to the third-party mediator; the winner keeps the
   pod and continues solo while the loser fences, and a later failback
   resynchronises the diverged blocks and returns the pod to symmetric
   service. In-flight I/O fails over transparently: a write caught by a
   partition is re-driven on whichever side won mediation, and the host
   sees one ack.

   Ordering. Concurrent writes to the same block from opposite sides are
   serialized by a per-block last-writer-wins stamp (a Lamport counter
   tagged with the side bit, merged on every mirror receive): exactly
   one of the racing writes wins on *both* arrays, so either
   serialization can be observed but divergence cannot. The purity.check
   two-array model (Ac_model) encodes exactly that contract.

   Fencing generations. Every role change (solo, freeze, failback) bumps
   [gen]; mirror messages and acks carry the generation they were sent
   under and are dropped on arrival if stale. This is what makes a
   delayed mirror from before a failover harmless after the failback
   resync has already reconciled the block.

   Convergence bookkeeping. Three block sets force eventual agreement:
   - a solo winner marks every block it acks [dirty];
   - write footprints whose outcome the host never learned (mediation,
     freeze, local error) are [tainted];
   - a double crash sets [full_resync].
   Failback copies their union from the surviving side over the
   rejoining side before lifting the fence. In the real system the loser
   ships its own divergent-LBA log during the failback handshake; here
   both sides' books live in one harness structure, which carries the
   same information without the wire format. *)

module Clock = Purity_sim.Clock
module Fa = Purity_core.Flash_array
module State = Purity_core.State
module Delta = Purity_replication.Replication.Delta
module Registry = Purity_telemetry.Registry

type side = Mediator.side = A | B

let other = Mediator.other
let side_name = Mediator.side_name
let side_bit = function A -> 0 | B -> 1

type status = Sync | Solo of side | Frozen | Down

let status_name = function
  | Sync -> "sync"
  | Solo s -> "solo-" ^ side_name s
  | Frozen -> "frozen"
  | Down -> "down"

type config = {
  mirror_timeout_us : float;  (** per-attempt wait for the peer's ack *)
  mirror_retries : int;  (** retransmits before suspecting a partition *)
  resync_run : int;  (** blocks per failback transfer *)
}

let default_config = { mirror_timeout_us = 1_500.0; mirror_retries = 2; resync_run = 64 }

(* Planted-bug hooks for the checker's self-tests: each one breaks the
   contract in a way the two-array reference model must catch. *)
type chaos = {
  mutable skip_resync : bool;
      (** failback "forgets" to copy solo-era writes: divergence *)
  mutable ack_without_peer : bool;
      (** ack the host on local persist alone: a lost ack on failover *)
}

let chaos = { skip_resync = false; ack_without_peer = false }

type io_error =
  [ `Unavailable  (** fenced/frozen/offline beyond what failover can hide *)
  | `No_such_volume
  | `Out_of_range
  | `Unaligned
  | `No_space
  | `Backpressure ]

type counters = {
  mutable mirror_writes : int;
  mutable mirror_acked : int;
  mutable mirror_timeouts : int;
  mutable mirror_stale_drops : int;
  mutable mediation_requests : int;
  mutable mediation_grants : int;
  mutable mediation_denials : int;
  mutable mediation_unreachable : int;
  mutable solo_writes : int;
  mutable redirects : int;  (** front-door I/O moved to the other side *)
  mutable fences : int;
  mutable resyncs : int;
  mutable resync_blocks : int;
}

type node = {
  ns : side;
  arr : Fa.t;
  mutable counter : int;  (* Lamport counter; monotone for the pod's life *)
  stamps : (string, int array) Hashtbl.t;  (* volume -> per-block LWW stamp *)
  dirty : (string, bool array) Hashtbl.t;  (* blocks acked while serving solo *)
}

type t = {
  clock : Clock.t;
  cfg : config;
  pod : string;
  a : node;
  b : node;
  link : Link.t;
  med : Mediator.t;
  mutable status : status;
  mutable gen : int;
  mutable vols : (string * int) list;  (* stretched volumes, name-sorted *)
  mutable inflight : (string * int * int) list;  (* un-acked write footprints *)
  mutable tainted : (string * int * int) list;  (* outcome never reported *)
  mutable full_resync : bool;
  mutable mediating : bool;
  mutable med_waiters : (unit -> unit) list;
  c : counters;
}

let node t = function A -> t.a | B -> t.b

let new_counters () =
  {
    mirror_writes = 0; mirror_acked = 0; mirror_timeouts = 0; mirror_stale_drops = 0;
    mediation_requests = 0; mediation_grants = 0; mediation_denials = 0;
    mediation_unreachable = 0; solo_writes = 0; redirects = 0; fences = 0;
    resyncs = 0; resync_blocks = 0;
  }

(* Derived (not direct) on purpose, like the async replicator's: a
   failover hands an array a fresh registry, and re-deriving after
   recovery re-joins the pod's counters to it. Registered on both sides
   so either array's phone-home stream carries them. *)
let register_telemetry t =
  let on reg =
    Registry.derive_int reg "activecluster/mirror_writes" (fun () -> t.c.mirror_writes);
    Registry.derive_int reg "activecluster/mirror_acked" (fun () -> t.c.mirror_acked);
    Registry.derive_int reg "activecluster/mirror_timeouts" (fun () -> t.c.mirror_timeouts);
    Registry.derive_int reg "activecluster/mirror_stale_drops" (fun () ->
        t.c.mirror_stale_drops);
    Registry.derive_int reg "activecluster/mediation_requests" (fun () ->
        t.c.mediation_requests);
    Registry.derive_int reg "activecluster/mediation_grants" (fun () ->
        t.c.mediation_grants);
    Registry.derive_int reg "activecluster/mediation_denials" (fun () ->
        t.c.mediation_denials);
    Registry.derive_int reg "activecluster/mediation_unreachable" (fun () ->
        t.c.mediation_unreachable);
    Registry.derive_int reg "activecluster/solo_writes" (fun () -> t.c.solo_writes);
    Registry.derive_int reg "activecluster/redirects" (fun () -> t.c.redirects);
    Registry.derive_int reg "activecluster/fences" (fun () -> t.c.fences);
    Registry.derive_int reg "activecluster/resyncs" (fun () -> t.c.resyncs);
    Registry.derive_int reg "activecluster/resync_blocks" (fun () -> t.c.resync_blocks);
    Registry.derive_int reg "activecluster/link_sent" (fun () ->
        (Link.stats t.link).Link.sent);
    Registry.derive_int reg "activecluster/link_delivered" (fun () ->
        (Link.stats t.link).Link.delivered);
    Registry.derive_int reg "activecluster/link_dropped" (fun () ->
        let s = Link.stats t.link in
        s.Link.dropped_loss + s.Link.dropped_cut)
  in
  on (Fa.telemetry t.a.arr);
  on (Fa.telemetry t.b.arr)

let create ?(config = default_config) ?link_config ?(mediator_rtt_us = 1_000.0)
    ~a ~b ~pod () =
  if Fa.clock a != Fa.clock b then
    invalid_arg "Activecluster.create: arrays must share one clock";
  let clock = Fa.clock a in
  let mknode ns arr =
    { ns; arr; counter = 0; stamps = Hashtbl.create 8; dirty = Hashtbl.create 8 }
  in
  let t =
    {
      clock;
      cfg = config;
      pod;
      a = mknode A a;
      b = mknode B b;
      link = Link.create ?config:link_config ~clock ();
      med = Mediator.create ~rtt_us:mediator_rtt_us ~clock ();
      status = Sync;
      gen = 0;
      vols = [];
      inflight = [];
      tainted = [];
      full_resync = false;
      mediating = false;
      med_waiters = [];
      c = new_counters ();
    }
  in
  register_telemetry t;
  t

let array t s = (node t s).arr
let link t = t.link
let mediator t = t.med
let status t = t.status
let counters t = t.c
let pod t = t.pod
let stretched t = t.vols

let respond t r k = Clock.schedule t.clock ~delay:0.0 (fun () -> k r)

(* ---------- stretched volumes ---------- *)

let create_stretched t name ~blocks : (unit, Fa.vol_error) result =
  if t.status <> Sync then Error `Busy
  else if List.mem_assoc name t.vols then Error `Exists
  else
    match Fa.create_volume t.a.arr name ~blocks with
    | Error _ as e -> e
    | Ok () -> (
      match Fa.create_volume t.b.arr name ~blocks with
      | Error _ as e -> e
      | Ok () ->
        t.vols <- List.sort compare ((name, blocks) :: t.vols);
        List.iter
          (fun n ->
            Hashtbl.replace n.stamps name (Array.make blocks 0);
            Hashtbl.replace n.dirty name (Array.make blocks false))
          [ t.a; t.b ];
        Ok ())

(* ---------- convergence bookkeeping ---------- *)

let mark_dirty n volume block nblocks =
  match Hashtbl.find_opt n.dirty volume with
  | None -> ()
  | Some d ->
    let hi = min (Array.length d) (block + nblocks) in
    for b = max 0 block to hi - 1 do
      d.(b) <- true
    done

let set_stamps n volume block nblocks stamp =
  match Hashtbl.find_opt n.stamps volume with
  | None -> ()
  | Some s ->
    let hi = min (Array.length s) (block + nblocks) in
    for b = max 0 block to hi - 1 do
      if stamp > s.(b) then s.(b) <- stamp
    done

let remove_one_inflight t entry =
  let rec go = function
    | [] -> []
    | e :: rest -> if e = entry then rest else e :: go rest
  in
  t.inflight <- go t.inflight

let taint t entry = t.tainted <- entry :: t.tainted

(* Fold every footprint whose outcome the host never learned into the
   winner's dirty book, so failback forces those blocks to agree. *)
let absorb_uncertain t winner =
  let n = node t winner in
  List.iter (fun (v, b, l) -> mark_dirty n v b l) t.inflight;
  List.iter (fun (v, b, l) -> mark_dirty n v b l) t.tainted;
  t.tainted <- []

(* ---------- role transitions ---------- *)

let fence_side t s =
  let n = node t s in
  if not (Fa.is_fenced n.arr) then begin
    Fa.fence n.arr;
    t.c.fences <- t.c.fences + 1
  end

let go_solo t winner =
  t.status <- Solo winner;
  t.gen <- t.gen + 1;
  fence_side t (other winner);
  absorb_uncertain t winner

let go_frozen t =
  (* nobody serves and nobody wins: keep every uncertain footprint for
     the eventual failback *)
  t.status <- Frozen;
  t.gen <- t.gen + 1;
  List.iter (fun e -> taint t e) t.inflight

(* One mediation race at a time; callers park a continuation that runs
   once the race resolves (or immediately if the role already changed —
   e.g. a second write timing out while the first one's race is won). *)
let mediate t origin waiter =
  if t.status <> Sync then Clock.schedule t.clock ~delay:0.0 waiter
  else begin
    t.med_waiters <- waiter :: t.med_waiters;
    if not t.mediating then begin
      t.mediating <- true;
      t.c.mediation_requests <- t.c.mediation_requests + 1;
      Mediator.request t.med origin (fun outcome ->
          t.mediating <- false;
          (match outcome with
          | `Granted ->
            t.c.mediation_grants <- t.c.mediation_grants + 1;
            if t.status = Sync then go_solo t origin
          | `Denied ->
            (* the peer already holds the pod (it raced first, or holds
               a stale claim from an earlier partition): we lose *)
            t.c.mediation_denials <- t.c.mediation_denials + 1;
            if t.status = Sync then begin
              t.status <- Solo (other origin);
              t.gen <- t.gen + 1;
              fence_side t origin;
              absorb_uncertain t (other origin)
            end
          | `Unreachable ->
            t.c.mediation_unreachable <- t.c.mediation_unreachable + 1;
            if t.status = Sync then go_frozen t);
          let ws = t.med_waiters in
          t.med_waiters <- [];
          List.iter (fun w -> w ()) ws)
    end
  end

(* ---------- mirror receive ---------- *)

(* Apply a mirror message at [dst]: merge the Lamport counter, apply the
   blocks this stamp wins (last-writer-wins per block), ack when every
   winning block is durable. A stale generation, a fence, or a dead
   array produces silence — the origin's timeout machinery owns the
   outcome. A half-applied mirror (local write error) is also silence:
   it must look like loss so the origin retries or mediates. *)
let deliver_mirror t dst ~gen ~stamp ~volume ~block ~data ~ack =
  let n = node t dst in
  if gen <> t.gen then t.c.mirror_stale_drops <- t.c.mirror_stale_drops + 1
  else if (not (Fa.is_online n.arr)) || Fa.is_fenced n.arr then ()
  else begin
    n.counter <- max n.counter (stamp lsr 1);
    let bs = Fa.block_size in
    let nblocks = String.length data / bs in
    let wins =
      match Hashtbl.find_opt n.stamps volume with
      | None -> []
      | Some st ->
        let acc = ref [] in
        for j = nblocks - 1 downto 0 do
          let b = block + j in
          if b < Array.length st && stamp > st.(b) then acc := b :: !acc
        done;
        !acc
    in
    match Delta.runs_of wins ~max_run:(max nblocks 1) with
    | [] -> ack ()
    | runs ->
      let pending = ref (List.length runs) in
      let applied_ok = ref true in
      List.iter
        (fun (start, len) ->
          let slice = String.sub data ((start - block) * bs) (len * bs) in
          Fa.write n.arr ~volume ~block:start slice (fun r ->
              (match r with
              | Ok () -> set_stamps n volume start len stamp
              | Error _ -> applied_ok := false);
              decr pending;
              if !pending = 0 && !applied_ok then ack ()))
        runs
  end

(* ---------- write path ---------- *)

let map_write_error (e : Fa.write_error) : io_error =
  match e with
  | `No_such_volume -> `No_such_volume
  | `Out_of_range -> `Out_of_range
  | `Unaligned -> `Unaligned
  | `No_space -> `No_space
  | `Backpressure -> `Backpressure
  | `Read_only | `Offline | `Fenced -> `Unavailable

let solo_write t s ~volume ~block data k =
  let n = node t s in
  if (not (Fa.is_online n.arr)) || Fa.is_fenced n.arr then respond t (Error `Unavailable) k
  else begin
    let nblocks = String.length data / Fa.block_size in
    t.c.solo_writes <- t.c.solo_writes + 1;
    (* dirty before issue: even an un-acked outcome must converge later *)
    mark_dirty n volume block nblocks;
    Fa.write n.arr ~volume ~block data (function
      | Ok () -> k (Ok ())
      | Error e -> k (Error (map_write_error e)))
  end

let rec write t ?(prefer = A) ~volume ~block data k =
  match t.status with
  | Down | Frozen -> respond t (Error `Unavailable) k
  | Solo s ->
    if s <> prefer then t.c.redirects <- t.c.redirects + 1;
    solo_write t s ~volume ~block data k
  | Sync ->
    let p = node t prefer in
    let origin =
      if Fa.is_online p.arr && not (Fa.is_fenced p.arr) then prefer
      else begin
        t.c.redirects <- t.c.redirects + 1;
        other prefer
      end
    in
    sync_write t origin ~volume ~block data k

and sync_write t origin ~volume ~block data k =
  let n = node t origin in
  if (not (Fa.is_online n.arr)) || Fa.is_fenced n.arr then respond t (Error `Unavailable) k
  else begin
    let nblocks = String.length data / Fa.block_size in
    let gen = t.gen in
    n.counter <- n.counter + 1;
    let stamp = (n.counter lsl 1) lor side_bit origin in
    set_stamps n volume block nblocks stamp;
    let entry = (volume, block, nblocks) in
    t.inflight <- entry :: t.inflight;
    let finished = ref false in
    let local_result : (unit, Fa.write_error) result option ref = ref None in
    let peer_acked = ref false in
    let finish_ok () =
      finished := true;
      remove_one_inflight t entry;
      (match t.status with
      | Solo s when s = origin -> mark_dirty (node t s) volume block nblocks
      | _ -> ());
      k (Ok ())
    in
    let finish_err e =
      finished := true;
      remove_one_inflight t entry;
      (* the local copy (or the mirror) may or may not have applied —
         never ack, and force later convergence *)
      taint t entry;
      k (Error e)
    in
    let maybe_complete () =
      if not !finished then
        match (t.status, !local_result) with
        | _, Some (Error e) -> finish_err (map_write_error e)
        | Solo s, Some (Ok ()) when s = origin ->
          (* the race resolved in our favour mid-write: the pod acks on
             the local persist alone now *)
          finish_ok ()
        | _, Some (Ok ()) when !peer_acked -> finish_ok ()
        | _, Some (Ok ()) when chaos.ack_without_peer ->
          (* planted bug: the host hears Ok before the mirror landed *)
          finish_ok ()
        | _ -> ()
    in
    (* after the mediation race (or any role change observed at a
       timeout) resolves: continue solo, fail over to the winner
       transparently, or surface the freeze *)
    let redispatch () =
      if not !finished then
        match t.status with
        | Solo s when s = origin ->
          mark_dirty n volume block nblocks;
          maybe_complete ()
        | Solo s ->
          (* we lost and are fenced: re-drive the same write on the
             winner; its ack is the host's ack *)
          finished := true;
          remove_one_inflight t entry;
          t.c.redirects <- t.c.redirects + 1;
          write t ~prefer:s ~volume ~block data k
        | Frozen | Down | Sync -> finish_err `Unavailable
    in
    (* local leg *)
    Fa.write n.arr ~volume ~block data (fun r ->
        local_result := Some r;
        maybe_complete ());
    (* mirror leg, with retransmits and a partition verdict *)
    let rec attempt tries =
      if (not !finished) && not !peer_acked then begin
        t.c.mirror_writes <- t.c.mirror_writes + 1;
        Link.send t.link (fun () ->
            deliver_mirror t (other origin) ~gen ~stamp ~volume ~block ~data
              ~ack:(fun () ->
                Link.send t.link (fun () ->
                    if t.gen = gen && not !peer_acked then begin
                      peer_acked := true;
                      t.c.mirror_acked <- t.c.mirror_acked + 1;
                      maybe_complete ()
                    end)));
        Clock.schedule t.clock ~delay:t.cfg.mirror_timeout_us (fun () ->
            if (not !peer_acked) && not !finished then begin
              if t.status = Sync && t.gen = gen then begin
                if tries < t.cfg.mirror_retries then attempt (tries + 1)
                else begin
                  t.c.mirror_timeouts <- t.c.mirror_timeouts + 1;
                  mediate t origin redispatch
                end
              end
              else
                (* someone else changed the pod's role while we waited *)
                redispatch ()
            end)
      end
    in
    attempt 0
  end

(* ---------- read path ---------- *)

let map_read_error (e : Fa.read_error) : io_error =
  match e with
  | `No_such_volume -> `No_such_volume
  | `Out_of_range -> `Out_of_range
  | `Offline | `Fenced | `Media_failure -> `Unavailable

(* The Ok carries the side that actually served the bytes: callers that
   shadow per-side observations (the checker's two-array model) need the
   true attribution when a preferred-side read was transparently
   redirected. *)
let read t ?(prefer = A) ~volume ~block ~nblocks k =
  match t.status with
  | Down | Frozen -> respond t (Error `Unavailable) k
  | Solo s ->
    if s <> prefer then t.c.redirects <- t.c.redirects + 1;
    let n = node t s in
    if (not (Fa.is_online n.arr)) || Fa.is_fenced n.arr then respond t (Error `Unavailable) k
    else
      Fa.read n.arr ~volume ~block ~nblocks (function
        | Ok data -> k (Ok (data, s))
        | Error e -> k (Error (map_read_error e)))
  | Sync ->
    let first =
      let p = node t prefer in
      if Fa.is_online p.arr && not (Fa.is_fenced p.arr) then prefer
      else begin
        t.c.redirects <- t.c.redirects + 1;
        other prefer
      end
    in
    let n = node t first in
    Fa.read n.arr ~volume ~block ~nblocks (function
      | Ok data -> k (Ok (data, first))
      | Error (`Offline | `Fenced) ->
        (* transparent failover mid-read: one retry on the other side *)
        t.c.redirects <- t.c.redirects + 1;
        let n' = node t (other first) in
        if (not (Fa.is_online n'.arr)) || Fa.is_fenced n'.arr then k (Error `Unavailable)
        else
          Fa.read n'.arr ~volume ~block ~nblocks (function
            | Ok data -> k (Ok (data, other first))
            | Error e -> k (Error (map_read_error e)))
      | Error e -> k (Error (map_read_error e)))

(* ---------- fault and control surface ---------- *)

let cut_link t = Link.cut t.link
let heal_link t = Link.heal t.link
let lose_mediator t = Mediator.set_reachable t.med false
let restore_mediator t = Mediator.set_reachable t.med true

let crash_side t s =
  let n = node t s in
  if Fa.is_online n.arr then Fa.crash n.arr;
  if (not (Fa.is_online t.a.arr)) && not (Fa.is_online t.b.arr) then begin
    t.status <- Down;
    t.gen <- t.gen + 1;
    t.full_resync <- true;
    List.iter (fun e -> taint t e) t.inflight
  end

let recover_side ?mode t s k =
  let n = node t s in
  if Fa.is_online n.arr then Clock.schedule t.clock ~delay:0.0 k
  else
    Fa.failover ?mode n.arr (fun (_ : Purity_core.Recovery.report) ->
        register_telemetry t;
        k ())

(* ---------- failback / settle ---------- *)

(* The side whose content wins a reconciliation: the pod holder if the
   mediator knows one, else the solo server, else A by convention (a
   never-diverged pair is identical, so the convention only picks whose
   bytes get copied). *)
let survivor_side t =
  match Mediator.holder t.med with
  | Some s -> s
  | None -> ( match t.status with Solo s -> s | _ -> A)

(* Blocks to copy during failback: the union of both sides' dirty books,
   every tainted footprint, and — after a double crash — everything the
   surviving side holds. *)
let resync_blocks_for t ~from name blocks =
  let module IS = Set.Make (Int) in
  let set = ref IS.empty in
  let add_dirty n =
    match Hashtbl.find_opt n.dirty name with
    | None -> ()
    | Some d -> Array.iteri (fun b v -> if v then set := IS.add b !set) d
  in
  add_dirty t.a;
  add_dirty t.b;
  List.iter
    (fun (v, b, l) ->
      if String.equal v name then
        for j = max 0 b to min blocks (b + l) - 1 do
          set := IS.add j !set
        done)
    t.tainted;
  if t.full_resync then begin
    let st = Fa.state (node t from).arr in
    match State.Stbl.find_opt st.State.volumes name with
    | None -> ()
    | Some v ->
      List.iter
        (fun b -> set := IS.add b !set)
        (Delta.live_blocks st ~medium:v.State.medium ~blocks:v.State.blocks)
  end;
  IS.elements !set

(* Copy runs of [volume] from the survivor to the rejoining side over
   the link. Calls [k false] (abort) if the link dies mid-resync or a
   copy fails; already-copied blocks stay dirty-marked and are simply
   re-copied by the next attempt. *)
let rec copy_runs t ~from ~into volume runs k =
  match runs with
  | [] -> k true
  | (start, len) :: rest ->
    Fa.read (node t from).arr ~volume ~block:start ~nblocks:len (function
      | Error _ -> k false
      | Ok data ->
        Link.transfer t.link ~bytes:(String.length data)
          ~fail:(fun () -> k false)
          (fun () ->
            Fa.write (node t into).arr ~volume ~block:start data (function
              | Ok () ->
                t.c.resync_blocks <- t.c.resync_blocks + len;
                copy_runs t ~from ~into volume rest k
              | Error _ -> k false)))

let rec resync_volumes t ~from ~into vols k =
  match vols with
  | [] -> k true
  | (name, blocks) :: rest ->
    let bl = resync_blocks_for t ~from name blocks in
    let runs = Delta.runs_of bl ~max_run:t.cfg.resync_run in
    copy_runs t ~from ~into name runs (fun ok ->
        if ok then resync_volumes t ~from ~into rest k else k false)

(* Reconcile and return to symmetric service: copy the divergent blocks
   from [survivor] over the other side, clear the books, lift both
   fences, release the pod claim and bump the generation (stranding any
   mirror still in flight from the old era). *)
let reconcile t ~survivor k =
  let loser = other survivor in
  List.iter (fun e -> taint t e) t.inflight;
  t.inflight <- [];
  (* the loser's front door stays shut (pod status still routes around
     it), but resync writes must land: lift its array fence for the
     copy, restoring it if the copy aborts *)
  let loser_was_fenced = Fa.is_fenced (node t loser).arr in
  Fa.unfence (node t loser).arr;
  let finish ok =
    if ok then begin
      List.iter
        (fun n ->
          Hashtbl.iter (fun _ st -> Array.fill st 0 (Array.length st) 0) n.stamps;
          Hashtbl.iter (fun _ d -> Array.fill d 0 (Array.length d) false) n.dirty)
        [ t.a; t.b ];
      let c = max t.a.counter t.b.counter in
      t.a.counter <- c;
      t.b.counter <- c;
      t.tainted <- [];
      t.full_resync <- false;
      Fa.unfence t.a.arr;
      Fa.unfence t.b.arr;
      (match Mediator.holder t.med with
      | Some h -> Mediator.release t.med h
      | None -> ());
      t.gen <- t.gen + 1;
      t.status <- Sync;
      t.c.resyncs <- t.c.resyncs + 1;
      k (Sync, Some survivor)
    end
    else begin
      if loser_was_fenced then Fa.fence (node t loser).arr;
      k (t.status, Some survivor)
    end
  in
  if chaos.skip_resync then
    (* planted bug: declare the pod synced without copying *)
    finish true
  else resync_volumes t ~from:survivor ~into:loser t.vols finish

(* Claim the pod for [s] so a half-alive pod can serve again. *)
let try_solo t s k =
  match t.status with
  | Solo h when h = s -> respond t (Solo s, Some s) k
  | _ ->
    t.c.mediation_requests <- t.c.mediation_requests + 1;
    Mediator.request t.med s (fun outcome ->
        (match outcome with
        | `Granted ->
          t.c.mediation_grants <- t.c.mediation_grants + 1;
          (match t.status with
          | Sync | Frozen | Down -> go_solo t s
          | Solo _ -> ())
        | `Denied ->
          t.c.mediation_denials <- t.c.mediation_denials + 1;
          (* the peer holds a (possibly stale) claim; serving against it
             could lose its solo-era writes, so we must not *)
          (match t.status with
          | Sync | Frozen | Down ->
            t.status <- Solo (other s);
            t.gen <- t.gen + 1;
            fence_side t s;
            absorb_uncertain t (other s)
          | Solo _ -> ())
        | `Unreachable ->
          t.c.mediation_unreachable <- t.c.mediation_unreachable + 1;
          (match t.status with Sync -> go_frozen t | Solo _ | Frozen | Down -> ()));
        k (t.status, match t.status with Solo h -> Some h | _ -> None))

(* Drive the pod toward the best status the current fault set allows:
   full failback when both sides and the link are healthy, mediated solo
   service when only one side lives, no change when nothing can improve.
   The callback reports the resulting status and, when content was (or
   would be) reconciled, whose bytes are authoritative. *)
let settle t k =
  register_telemetry t;
  let a_on = Fa.is_online t.a.arr and b_on = Fa.is_online t.b.arr in
  match t.status with
  | Down ->
    if a_on && b_on then reconcile t ~survivor:(survivor_side t) k
    else if a_on then try_solo t A k
    else if b_on then try_solo t B k
    else respond t (Down, None) k
  | Solo s ->
    if not (Fa.is_online (node t s).arr) then
      (* the solo owner is down: the peer is stale and must not take
         over; the pod waits for the owner *)
      respond t (Solo s, Some s) k
    else if Fa.is_online (node t (other s)).arr && Link.up t.link then
      reconcile t ~survivor:s k
    else respond t (Solo s, Some s) k
  | Frozen ->
    if a_on && b_on && Link.up t.link then reconcile t ~survivor:(survivor_side t) k
    else if a_on && not b_on then try_solo t A k
    else if b_on && not a_on then try_solo t B k
    else respond t (Frozen, None) k
  | Sync ->
    if a_on && b_on && Link.up t.link then begin
      if t.tainted <> [] || t.inflight <> [] || t.full_resync then
        reconcile t ~survivor:(survivor_side t) k
      else respond t (Sync, None) k
    end
    else if a_on && not b_on then try_solo t A k
    else if b_on && not a_on then try_solo t B k
    else respond t (Sync, None) k

(* The third-party mediator.

   When the replication link dies, both arrays of a stretched pod can
   still be alive and serving — the classic split brain. ActiveCluster
   resolves it with a mediator deployed in a third failure domain: each
   array races to the mediator, the winner keeps the pod and continues
   solo, the loser fences itself. The mediator's one job is to make that
   race safe: it must never let both sides win, and it must fence the
   loser *before* the winner is told to proceed.

   [Core] is the pure state machine — no clock, no messages — so the
   qcheck property suite can drive arbitrary interleavings directly.
   The outer [t] wraps it in simulated round-trip delays and a
   reachability flag (a lost mediator answers nothing; requests time
   out with [`Unreachable]).

   Every transition appends to an event log. [audit_log] checks the two
   safety properties over any log:
   - at most one side holds the pod at any point;
   - every grant is preceded by the loser being fenced (since the last
     release). *)

module Clock = Purity_sim.Clock

type side = A | B

let other = function A -> B | B -> A
let side_name = function A -> "A" | B -> "B"

type outcome = [ `Granted | `Denied | `Unreachable ]

type log_event =
  | Requested of side
  | Fenced of side  (** recorded when the mediator fences the grant's loser *)
  | Granted of side
  | Denied of side
  | Released of side
  | Reachable of bool

let pp_log_event ppf = function
  | Requested s -> Format.fprintf ppf "requested(%s)" (side_name s)
  | Fenced s -> Format.fprintf ppf "fenced(%s)" (side_name s)
  | Granted s -> Format.fprintf ppf "granted(%s)" (side_name s)
  | Denied s -> Format.fprintf ppf "denied(%s)" (side_name s)
  | Released s -> Format.fprintf ppf "released(%s)" (side_name s)
  | Reachable b -> Format.fprintf ppf "reachable(%b)" b

module Core = struct
  type t = {
    mutable holder : side option;
    mutable fenced_a : bool;
    mutable fenced_b : bool;
    mutable reachable : bool;
    mutable rev_log : log_event list;
  }

  let create () =
    { holder = None; fenced_a = false; fenced_b = false; reachable = true; rev_log = [] }

  let log t e = t.rev_log <- e :: t.rev_log
  let events t = List.rev t.rev_log
  let holder t = t.holder
  let reachable t = t.reachable
  let is_fenced t = function A -> t.fenced_a | B -> t.fenced_b

  let set_fenced t s v =
    match s with A -> t.fenced_a <- v | B -> t.fenced_b <- v

  let set_reachable t v =
    if t.reachable <> v then begin
      t.reachable <- v;
      log t (Reachable v)
    end

  (* One mediation request. The decision is atomic at the mediator:
     - unreachable mediators answer nothing (the caller times out);
     - the current holder re-requesting is re-granted (idempotence: a
       retransmitted claim must not deadlock the winner);
     - anyone else while a holder exists is denied — including a fenced
       side racing back after a heal;
     - with no holder, the requester wins: the peer is fenced FIRST,
       then the grant is recorded and returned. The order is the safety
       property: a grant response reaching the winner implies the
       mediator has already marked the loser fenced, so even if the
       loser's own request is in flight it can only be denied. *)
  let request t s : outcome =
    if not t.reachable then `Unreachable
    else begin
      log t (Requested s);
      match t.holder with
      | Some h when h = s ->
        log t (Granted s);
        `Granted
      | Some _ ->
        log t (Denied s);
        `Denied
      | None ->
        set_fenced t (other s) true;
        log t (Fenced (other s));
        t.holder <- Some s;
        log t (Granted s);
        `Granted
    end

  (* The pod returns to symmetric active-active: the holder releases its
     claim and both fences lift. Only the holder can release; a stale
     release from the fenced loser is ignored. *)
  let release t s =
    match t.holder with
    | Some h when h = s ->
      t.holder <- None;
      set_fenced t A false;
      set_fenced t B false;
      log t (Released s)
    | _ -> ()
end

(* ---------- log audit (shared by qcheck suite and the AC runner) ---------- *)

let audit_log events =
  let holder = ref None in
  let fenced_a = ref false and fenced_b = ref false in
  let fenced = function A -> !fenced_a | B -> !fenced_b in
  let set_fenced s v = match s with A -> fenced_a := v | B -> fenced_b := v in
  let err = ref None in
  let fail i e msg =
    if !err = None then
      err := Some (Format.asprintf "mediator log event %d (%a): %s" i pp_log_event e msg)
  in
  List.iteri
    (fun i e ->
      match e with
      | Granted s -> (
        match !holder with
        | Some h when h <> s -> fail i e "granted while the peer held the pod"
        | Some _ -> () (* idempotent re-grant to the holder *)
        | None ->
          if not (fenced (other s)) then
            fail i e "granted before the loser was fenced";
          if fenced s then fail i e "granted to a fenced side";
          holder := Some s)
      | Fenced s -> set_fenced s true
      | Released s ->
        if !holder <> Some s then fail i e "released by a non-holder"
        else begin
          holder := None;
          fenced_a := false;
          fenced_b := false
        end
      | Requested _ | Denied _ | Reachable _ -> ())
    events;
  match !err with Some msg -> Error msg | None -> Ok ()

(* ---------- the clocked wrapper ---------- *)

type t = {
  core : Core.t;
  clock : Clock.t;
  rtt_us : float;  (** request/response round trip to the third site *)
  timeout_us : float;  (** how long a caller waits before concluding loss *)
}

let create ?(rtt_us = 1_000.0) ?(timeout_us = 5_000.0) ~clock () =
  { core = Core.create (); clock; rtt_us; timeout_us }

let core t = t.core
let holder t = Core.holder t.core
let set_reachable t v = Core.set_reachable t.core v
let reachable t = Core.reachable t.core
let events t = Core.events t.core
let audit t = audit_log (events t)

(* An async mediation race leg: the decision lands mid-flight (after the
   request propagates to the third site), the response after the full
   round trip. An unreachable mediator answers nothing; the caller's
   verdict arrives only at [timeout_us]. *)
let request t s k =
  Clock.schedule t.clock ~delay:(t.rtt_us /. 2.0) (fun () ->
      if Core.reachable t.core then begin
        let o = Core.request t.core s in
        Clock.schedule t.clock ~delay:(t.rtt_us /. 2.0) (fun () -> k o)
      end
      else
        Clock.schedule t.clock ~delay:t.timeout_us (fun () -> k `Unreachable))

let release t s =
  Clock.schedule t.clock ~delay:(t.rtt_us /. 2.0) (fun () ->
      if Core.reachable t.core then Core.release t.core s)

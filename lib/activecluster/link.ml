(* The simulated array-to-array interconnect.

   ActiveCluster stretches a pod over two arrays joined by a dedicated
   replication link; every synchronous mirror write, mirror ack and
   resync transfer crosses it. The model is a lossy, jittery,
   partitionable message channel on the shared simulation clock:

   - each message is delayed by [latency_us] plus a uniform jitter draw
     (jitter makes reordering real: two messages sent back-to-back can
     arrive swapped);
   - a seeded coin drops messages with probability [loss_prob] — the
     retransmit/timeout machinery above must absorb this;
   - [cut]/[heal] model a hard partition. Cutting the link also destroys
     every message in flight: a partition does not buffer, it kills.

   All randomness flows through one seeded [Rng.t], so a scenario replays
   bit-for-bit per seed. *)

module Clock = Purity_sim.Clock
module Rng = Purity_util.Rng

type config = {
  latency_us : float;  (** one-way propagation *)
  jitter_us : float;  (** uniform extra delay, [0, jitter_us) *)
  loss_prob : float;  (** per-message drop probability while healthy *)
  seed : int64;
}

(* A metro-distance link: ~200 us one way, mild jitter, one message in a
   thousand lost. ActiveCluster supports up to 5 ms RTT; tests stay well
   inside it so mirror timeouts are unambiguous. *)
let default_config = { latency_us = 200.0; jitter_us = 60.0; loss_prob = 0.001; seed = 0x11CCL }

type stats = {
  sent : int;
  delivered : int;
  dropped_loss : int;  (** random loss while healthy *)
  dropped_cut : int;  (** sent or in flight across a partition *)
}

type t = {
  clock : Clock.t;
  cfg : config;
  rng : Rng.t;
  mutable up : bool;
  mutable cuts : int;  (* partition epoch: bumped on every [cut] *)
  mutable sent : int;
  mutable delivered : int;
  mutable dropped_loss : int;
  mutable dropped_cut : int;
}

let create ?(config = default_config) ~clock () =
  {
    clock;
    cfg = config;
    rng = Rng.create ~seed:config.seed;
    up = true;
    cuts = 0;
    sent = 0;
    delivered = 0;
    dropped_loss = 0;
    dropped_cut = 0;
  }

let up t = t.up
let cut t = if t.up then begin t.up <- false; t.cuts <- t.cuts + 1 end
let heal t = t.up <- true

let stats t =
  { sent = t.sent; delivered = t.delivered; dropped_loss = t.dropped_loss;
    dropped_cut = t.dropped_cut }

(* Send a message; [k] fires at delivery time. A dropped message fires
   nothing — the sender's timeout is the only way to notice. The jitter
   draw happens even for messages doomed by a partition, so the Rng
   stream depends only on the sequence of sends, not on link state. *)
let send t k =
  t.sent <- t.sent + 1;
  let delay =
    t.cfg.latency_us
    +. (if t.cfg.jitter_us > 0.0 then Rng.float t.rng t.cfg.jitter_us else 0.0)
  in
  let lost = t.cfg.loss_prob > 0.0 && Rng.float t.rng 1.0 < t.cfg.loss_prob in
  if not t.up then t.dropped_cut <- t.dropped_cut + 1
  else if lost then t.dropped_loss <- t.dropped_loss + 1
  else begin
    let epoch = t.cuts in
    Clock.schedule t.clock ~delay (fun () ->
        if t.up && t.cuts = epoch then begin
          t.delivered <- t.delivered + 1;
          k ()
        end
        else t.dropped_cut <- t.dropped_cut + 1)
  end

(* A reliable bulk transfer for resync traffic: charges the same latency
   but is immune to loss and reordering (the resync protocol above runs
   request/response with retries until the transfer lands; modelling the
   retries individually would only add clock noise). Still killed by a
   partition — resync across a cut link cannot make progress, and unlike
   [send] the sender is told ([fail]) so a failback can abort cleanly
   instead of hanging. *)
let transfer t ~bytes ~fail k =
  t.sent <- t.sent + 1;
  (* 1 GbE-class replication port: ~1 us per KiB on top of propagation *)
  let delay = t.cfg.latency_us +. (float_of_int bytes /. 1024.0) in
  if not t.up then begin
    t.dropped_cut <- t.dropped_cut + 1;
    Clock.schedule t.clock ~delay:0.0 fail
  end
  else begin
    let epoch = t.cuts in
    Clock.schedule t.clock ~delay (fun () ->
        if t.up && t.cuts = epoch then begin
          t.delivered <- t.delivered + 1;
          k ()
        end
        else begin
          t.dropped_cut <- t.dropped_cut + 1;
          fail ()
        end)
  end

module Varint = Purity_util.Varint
module Shelf = Purity_ssd.Shelf
module Drive = Purity_ssd.Drive
module Rs = Purity_erasure.Reed_solomon

type t = {
  layout : Layout.t;
  shelf : Shelf.t;
  rs : Rs.t;
  seg_id : int;
  members : Segment.member array;
  buffer : Bytes.t; (* payload_capacity bytes *)
  mutable data_len : int;
  log : Buffer.t; (* framed log records, in append order *)
  mutable seq_lo : int64;
  mutable seq_hi : int64;
  mutable sealed : bool;
  mutable aborted : bool;
}

let create ~layout ~shelf ~rs ~members ~id =
  if Array.length members <> Layout.members layout then
    invalid_arg "Writer.create: member count mismatch";
  if Rs.k rs <> layout.Layout.k || Rs.m rs <> layout.Layout.m then
    invalid_arg "Writer.create: RS geometry mismatch";
  {
    layout;
    shelf;
    rs;
    seg_id = id;
    members;
    buffer = Bytes.make (Layout.payload_capacity layout) '\000';
    data_len = 0;
    log = Buffer.create 4096;
    seq_lo = 0L;
    seq_hi = 0L;
    sealed = false;
    aborted = false;
  }

let abort t = t.aborted <- true

let set_member t ~index m =
  if t.sealed then invalid_arg "Writer.set_member: sealed";
  t.members.(index) <- m

let id t = t.seg_id
let members t = t.members
let data_len t = t.data_len
let log_len t = Buffer.length t.log
let remaining t = Layout.payload_capacity t.layout - t.data_len - Buffer.length t.log
let is_empty t = t.data_len = 0 && Buffer.length t.log = 0

let append_data t s =
  if t.sealed then invalid_arg "Writer.append_data: sealed";
  let n = String.length s in
  if n > remaining t then None
  else begin
    let off = t.data_len in
    Bytes.blit_string s 0 t.buffer off n;
    t.data_len <- off + n;
    Some off
  end

(* Same as [append_data], but blitting straight out of a caller's frame
   buffer — the write path reuses one Buffer per controller and lands
   frames here without an intermediate string. *)
let append_buffer t frame =
  if t.sealed then invalid_arg "Writer.append_buffer: sealed";
  let n = Buffer.length frame in
  if n > remaining t then None
  else begin
    let off = t.data_len in
    Buffer.blit frame 0 t.buffer off n;
    t.data_len <- off + n;
    Some off
  end

let append_log t ~seq record =
  if t.sealed then invalid_arg "Writer.append_log: sealed";
  let frame = Buffer.create (String.length record + 12) in
  Varint.write_i64 frame seq;
  Varint.write frame (String.length record);
  Buffer.add_string frame record;
  if Buffer.length frame > remaining t then false
  else begin
    Buffer.add_buffer t.log frame;
    if Int64.equal t.seq_lo 0L || Int64.compare seq t.seq_lo < 0 then t.seq_lo <- seq;
    if Int64.compare seq t.seq_hi > 0 then t.seq_hi <- seq;
    true
  end

(* Serve a read from the in-memory buffer: Purity answers reads of
   not-yet-flushed segios from RAM. Valid for the data region only. *)
let peek_payload t ~off ~len =
  if off < 0 || len < 0 || off + len > t.data_len then None
  else Some (Bytes.sub_string t.buffer off len)

let decode_log_region region =
  let acc = ref [] in
  let pos = ref 0 in
  let continue = ref true in
  while !continue && !pos < Bytes.length region do
    match
      let seq, p = Varint.read_i64 region ~pos:!pos in
      let len, p = Varint.read region ~pos:p in
      if p + len > Bytes.length region then None
      else Some (seq, Bytes.sub_string region p len, p + len)
    with
    | Some (seq, record, next) ->
      acc := (seq, record) :: !acc;
      pos := next
    | None | (exception Invalid_argument _) -> continue := false
  done;
  List.rev !acc

(* Assemble per-shard write-unit chunks for one row. Data columns slice
   the segio buffer in place — it is allocated zeroed at payload capacity
   and only ever written up to [payload_len], so the slices carry the
   zero padding for free (no per-chunk make + blit). Parity columns get
   the RS encoding of the row; parity buffers are fresh per row because
   the simulated drive writes hold them until completion. *)
let row_chunks t ~row =
  let { Layout.k; write_unit = wu; _ } = t.layout in
  let data = Array.init k (fun c -> Bytes.sub t.buffer (((row * k) + c) * wu) wu) in
  let parity = Rs.encode t.rs data in
  Array.append data parity

(* RS-encode every row. Rows are independent (each slices its own region
   of the sealed buffer and allocates its own parity), so they fan out
   across the pool as the parallel unit; [Pool.map] returns them in row
   order, making the result byte-identical to the serial loop at any
   lane count. *)
let encode_rows t pool ~rows_used =
  if Purity_par.Pool.lanes pool > 1 && rows_used > 1 then
    Purity_par.Pool.map pool ~tasks:rows_used (fun ~lane:_ row -> row_chunks t ~row)
  else Array.init rows_used (fun row -> row_chunks t ~row)

let finalize t ?pool ?(max_writers = 2) ?(remap = fun ~exclude:_ -> None) ?tracer ?parent
    k =
  if t.sealed then invalid_arg "Writer.finalize: already sealed";
  t.sealed <- true;
  let module Span = Purity_telemetry.Span in
  (* Pack log records immediately after the data region. *)
  let log_bytes = Buffer.contents t.log in
  let log_off = t.data_len in
  let log_len = String.length log_bytes in
  Bytes.blit_string log_bytes 0 t.buffer log_off log_len;
  let payload_len = log_off + log_len in
  let { Layout.k = dk; write_unit = wu; _ } = t.layout in
  let rows_used = (payload_len + (dk * wu) - 1) / (dk * wu) in
  (* [seg] shares the members array, so remaps during the flush are
     reflected in the final description (and in late header copies). *)
  let seg =
    {
      Segment.id = t.seg_id;
      members = t.members;
      payload_len;
      log_off;
      log_len;
      seq_lo = t.seq_lo;
      seq_hi = t.seq_hi;
    }
  in
  let nm = Array.length t.members in
  (* Precompute each member's row chunks (fixed per column). *)
  let encode_span =
    Option.map
      (fun tr ->
        Span.start tr ?parent
          ~tags:[ ("segment", string_of_int t.seg_id); ("rows", string_of_int rows_used) ]
          "rs_encode")
      tracer
  in
  let pool = match pool with Some p -> p | None -> Purity_par.Pool.global () in
  let row_data = encode_rows t pool ~rows_used in
  Option.iter (fun s -> Span.finish s) encode_span;
  let member_chunks i =
    List.init rows_used (fun row ->
        (t.layout.Layout.header_size + (row * wu), row_data.(row).(i)))
  in
  (* Staggered flush: at most [max_writers] members writing at once; each
     member's chunks go out strictly in order (append-only). A member
     whose drive fails before or during its writes is remapped to a fresh
     AU on a healthy drive and restarted from its header — the shard data
     is all in RAM, so the stripe still reaches full redundancy. With no
     spare drive the member is skipped and parity absorbs it. *)
  let pending_members = ref nm in
  let queue = Queue.create () in
  for i = 0 to nm - 1 do
    Queue.add i queue
  done;
  let active = ref 0 in
  (* one "program" span per member slot: started when the shard's writes
     begin, finished (with the final drive) when the shard completes *)
  let member_spans = Array.make (max 1 nm) None in
  let finish_member_span i =
    match member_spans.(i) with
    | Some s ->
      Span.tag s "drive" (string_of_int t.members.(i).Segment.drive);
      Span.finish s;
      member_spans.(i) <- None
    | None -> ()
  in
  let rec pump () =
    while !active < max_writers && not (Queue.is_empty queue) do
      let i = Queue.pop queue in
      incr active;
      start_member i
    done
  and member_done i =
    finish_member_span i;
    decr active;
    decr pending_members;
    if !pending_members = 0 then k seg else pump ()
  and try_remap i =
    let exclude =
      Array.to_list (Array.map (fun (m : Segment.member) -> m.Segment.drive) t.members)
    in
    match remap ~exclude with
    | Some repl ->
      t.members.(i) <- repl;
      (match member_spans.(i) with Some s -> Span.tag s "remapped" "true" | None -> ());
      start_member i
    | None -> member_done i
  and start_member i =
    if t.aborted then ()
    else begin
      let m = t.members.(i) in
      let drive = Shelf.drive t.shelf m.Segment.drive in
      if not (Drive.is_online drive) then try_remap i
      else begin
        (match (tracer, member_spans.(i)) with
        | Some tr, None ->
          member_spans.(i) <-
            Some
              (Span.start tr ?parent
                 ~tags:
                   [ ("segment", string_of_int t.seg_id); ("shard", string_of_int i) ]
                 "program")
        | _ -> ());
        let header = Segment.encode_header t.layout seg ~shard:i in
        run_member i ((0, header) :: member_chunks i)
      end
    end
  and run_member i chunks =
    if t.aborted then ()
    else
      match chunks with
      | [] -> member_done i
      | (off, data) :: rest ->
        let m = t.members.(i) in
        let drive = Shelf.drive t.shelf m.Segment.drive in
        if Drive.au_fill drive ~au:m.Segment.au <> off then
          (* the device was swapped for a blank one (drive replacement)
             mid-shard: its append pointer no longer matches, so the
             chunks already written are gone — restart the shard on a
             fresh AU, exactly as for a mid-flush drive death *)
          try_remap i
        else
        Drive.write_chunk drive ~au:m.Segment.au ~off ~data (function
          | Ok () -> run_member i rest
          | Error _ ->
            (* the drive died mid-flush: restart this shard elsewhere *)
            if t.aborted then () else try_remap i)
  in
  if nm = 0 then k seg else pump ()

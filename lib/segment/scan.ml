module Shelf = Purity_ssd.Shelf
module Drive = Purity_ssd.Drive

let scan_slots ~layout ~shelf ?claims slots k =
  let found : (int, Segment.t) Hashtbl.t = Hashtbl.create 64 in
  let pending = ref 0 in
  let finish () =
    let segs = Hashtbl.fold (fun _ s acc -> s :: acc) found [] in
    k (List.sort (fun a b -> Int.compare a.Segment.id b.Segment.id) segs)
  in
  let header_len = layout.Layout.header_size in
  let launch (m : Segment.member) =
    let drive = Shelf.drive shelf m.Segment.drive in
    if Drive.is_online drive then begin
      incr pending;
      Drive.read drive ~au:m.Segment.au ~off:0 ~len:header_len (fun result ->
          (match result with
          | Ok page -> (
            match Segment.decode_header page with
            | Some seg ->
              (* record which physical AU presented this header: an AU can
                 be reused by a newer segment while stale siblings keep the
                 old id, so a member list alone does not prove ownership *)
              (match claims with
              | Some c -> Purity_util.Keytbl.Ipair.replace c (m.Segment.drive, m.Segment.au) seg.Segment.id
              | None -> ());
              if not (Hashtbl.mem found seg.Segment.id) then Hashtbl.replace found seg.Segment.id seg
            | None -> ())
          | Error _ -> ());
          decr pending;
          if !pending = 0 then finish ())
    end
  in
  List.iter launch slots;
  if !pending = 0 then finish ()

let scan_all ~layout ~shelf ?claims k =
  let slots = ref [] in
  Array.iter
    (fun d ->
      if Drive.is_online d then begin
        let cfg = Drive.config d in
        for au = 0 to cfg.Drive.num_aus - 1 do
          slots := { Segment.drive = Drive.id d; au } :: !slots
        done
      end)
    (Shelf.drives shelf);
  scan_slots ~layout ~shelf ?claims !slots k

let scan_members ~layout ~shelf ?claims members k =
  scan_slots ~layout ~shelf ?claims members k

(** Recovery scans (paper §4.3, Figure 5).

    Two ways to rediscover segments after a crash or failover:

    - {!scan_all}: read the header page of every AU on every online drive.
      Self-describing segments make this always correct, but it is linear
      in array capacity — the 12-second scan that brought early Purity
      "dangerously close to the 30 second timeout".

    - {!scan_members}: read only the AUs in the persisted frontier set —
      the only places recent log records can live — plus nothing else.
      This is the 0.1-second path.

    Both report every decoded segment exactly once (headers are replicated
    on each member; duplicates collapse by segment id) and complete at the
    simulated time the last header read finishes, so the two scans'
    completion times are directly comparable (experiment E3). *)

val scan_all :
  layout:Layout.t ->
  shelf:Purity_ssd.Shelf.t ->
  ?claims:int Purity_util.Keytbl.Ipair.t ->
  (Segment.t list -> unit) ->
  unit
(** Callback receives all discovered segments, ordered by id. When
    [claims] is given, it is filled with [(drive, au) -> segment id] for
    every AU whose on-disk header decoded — the proof of which segment
    each physical AU currently belongs to (an AU can be reused by a newer
    segment while the old segment's other members still carry its id). *)

val scan_members :
  layout:Layout.t ->
  shelf:Purity_ssd.Shelf.t ->
  ?claims:int Purity_util.Keytbl.Ipair.t ->
  Segment.member list ->
  (Segment.t list -> unit) ->
  unit
(** Scan only the given (drive, AU) slots. *)

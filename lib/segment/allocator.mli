(** Allocation-unit allocator with frontier sets (paper §4.3, Figure 5).

    The allocator hands out one free AU per member drive to each new
    segment. To keep failover fast, it only allocates AUs from the
    {e persisted frontier set} — the list of AUs, durably recorded in the
    boot region, that the array "plans to use soon". Recovery therefore
    scans just those AUs for log records instead of every segment header
    in the array.

    A {e speculative set} (approximation of the next frontier) is
    persisted alongside, so the frontier only needs rewriting when both
    run dry — which is why "frontier set writes consist of well under 1%
    of writes".

    The allocator is pure state: persistence latency is charged by the
    caller (the array core writes {!encode_persisted} to the boot region
    whenever {!persist_generation} changes). *)

type t

val create :
  layout:Layout.t ->
  drives:int ->
  aus_per_drive:int ->
  ?frontier_per_drive:int ->
  unit ->
  t
(** All AUs start free. [frontier_per_drive] (default 8) is how many AUs
    per drive each frontier refill makes allocatable. *)

val allocate : t -> online:(int -> bool) -> Segment.member array option
(** Reserve [k + m] AUs on distinct online drives (least-used first),
    drawing only from the frontier (refilling it if needed). [None] when
    fewer than [k + m] drives are online or space is exhausted. *)

val allocate_one : t -> allowed:(int -> bool) -> Segment.member option
(** Reserve one AU on any drive satisfying [allowed]; used to remap a
    sealed segio's member whose drive failed before the flush. *)

val release : t -> Segment.member array -> unit
(** Return a reclaimed segment's AUs to the free pool (after the caller
    trims them); they re-enter circulation at the next frontier refill. *)

val mark_used : t -> Segment.member array -> unit
(** Recovery: record that these AUs hold a live segment. *)

val requeue_scan : t -> Segment.member array -> unit
(** Recovery: keep a rediscovered segment's members in the persisted scan
    set until the next {!checkpoint_mark} — its log records are not yet
    covered by any checkpoint, so a later failover must still scan it. *)

val free_au_count : t -> int
val used_au_count : t -> int

val persisted_frontier : t -> Segment.member list
(** Frontier ∪ speculative sets as of the last persist — exactly the AUs
    recovery must scan for recent log records. *)

val persist_generation : t -> int
(** Bumped each time the persisted sets change; the caller rewrites the
    boot region when it observes a new generation. The ratio of this
    counter to segment allocations demonstrates the "<1% of writes"
    claim. *)

val allocated_count : t -> int
(** Number of allocations recorded since the last {!checkpoint_mark} —
    the checkpoint's cut point. *)

val checkpoint_mark : t -> keep:int -> extra:Segment.member list -> unit
(** Called after a checkpoint persists all metadata facts: AUs allocated
    before the checkpoint's cut leave the persisted scan set (their facts
    are covered by checkpointed patches), keeping failover scans small.
    [keep] retains the newest allocations (made after the cut); [extra]
    pins further members, e.g. the open segio. Bumps
    {!persist_generation} so the caller rewrites the boot region. *)

val encode_persisted : t -> string
val restore_persisted : t -> string -> unit
(** Install a frontier read back from the boot region.
    @raise Invalid_argument on malformed input. *)

module Varint = Purity_util.Varint
module Crc32c = Purity_util.Crc32c

type member = { drive : int; au : int }

type t = {
  id : int;
  members : member array;
  payload_len : int;
  log_off : int;
  log_len : int;
  seq_lo : int64;
  seq_hi : int64;
}

let magic = "PSEG"

let encode_meta t ~shard =
  let buf = Buffer.create 128 in
  Varint.write buf t.id;
  Varint.write buf shard;
  Varint.write buf (Array.length t.members);
  Array.iter
    (fun m ->
      Varint.write buf m.drive;
      Varint.write buf m.au)
    t.members;
  Varint.write buf t.payload_len;
  Varint.write buf t.log_off;
  Varint.write buf t.log_len;
  Varint.write_i64 buf t.seq_lo;
  Varint.write_i64 buf t.seq_hi;
  Buffer.contents buf

let encode_header layout t ~shard =
  let meta = encode_meta t ~shard in
  let page = Bytes.make layout.Layout.header_size '\000' in
  Bytes.blit_string magic 0 page 0 4;
  let crc = Crc32c.digest_string meta in
  for i = 0 to 3 do
    Bytes.set_uint8 page (4 + i)
      (Int32.to_int (Int32.logand (Int32.shift_right_logical crc (8 * i)) 0xFFl))
  done;
  let lenbuf = Buffer.create 4 in
  Varint.write lenbuf (String.length meta);
  let len_enc = Buffer.contents lenbuf in
  if 8 + String.length len_enc + String.length meta > layout.Layout.header_size then
    invalid_arg "Segment.encode_header: header overflow";
  Bytes.blit_string len_enc 0 page 8 (String.length len_enc);
  Bytes.blit_string meta 0 page (8 + String.length len_enc) (String.length meta);
  page

let decode_header page =
  if Bytes.length page < 16 then None
  else if not (String.equal (Bytes.sub_string page 0 4) magic) then None
  else begin
    try
      let crc_stored =
        let b i = Int32.of_int (Bytes.get_uint8 page (4 + i)) in
        Int32.logor (b 0)
          (Int32.logor
             (Int32.shift_left (b 1) 8)
             (Int32.logor (Int32.shift_left (b 2) 16) (Int32.shift_left (b 3) 24)))
      in
      let meta_len, p = Varint.read page ~pos:8 in
      if p + meta_len > Bytes.length page then None
      else if not (Int32.equal (Crc32c.update 0l page ~pos:p ~len:meta_len) crc_stored) then None
      else begin
        let id, p = Varint.read page ~pos:p in
        let _shard, p = Varint.read page ~pos:p in
        let nmembers, p = Varint.read page ~pos:p in
        let pos = ref p in
        let members =
          Array.init nmembers (fun _ ->
              let drive, p1 = Varint.read page ~pos:!pos in
              let au, p2 = Varint.read page ~pos:p1 in
              pos := p2;
              { drive; au })
        in
        let payload_len, p = Varint.read page ~pos:!pos in
        let log_off, p = Varint.read page ~pos:p in
        let log_len, p = Varint.read page ~pos:p in
        let seq_lo, p = Varint.read_i64 page ~pos:p in
        let seq_hi, _ = Varint.read_i64 page ~pos:p in
        Some { id; members; payload_len; log_off; log_len; seq_lo; seq_hi }
      end
    with Invalid_argument _ -> None
  end

let pp ppf t =
  Fmt.pf ppf "@[<h>segment %d (%d members, payload=%d, log=%d@%d, seq=[%Ld,%Ld])@]" t.id
    (Array.length t.members) t.payload_len t.log_len t.log_off t.seq_lo t.seq_hi

let encode_compact t = encode_meta t ~shard:0

let decode_compact s =
  let page = Bytes.unsafe_of_string s in
  let id, p = Varint.read page ~pos:0 in
  let _shard, p = Varint.read page ~pos:p in
  let nmembers, p = Varint.read page ~pos:p in
  let pos = ref p in
  let members =
    Array.init nmembers (fun _ ->
        let drive, p1 = Varint.read page ~pos:!pos in
        let au, p2 = Varint.read page ~pos:p1 in
        pos := p2;
        { drive; au })
  in
  let payload_len, p = Varint.read page ~pos:!pos in
  let log_off, p = Varint.read page ~pos:p in
  let log_len, p = Varint.read page ~pos:p in
  let seq_lo, p = Varint.read_i64 page ~pos:p in
  let seq_hi, _ = Varint.read_i64 page ~pos:p in
  { id; members; payload_len; log_off; log_len; seq_lo; seq_hi }

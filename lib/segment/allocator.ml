module Varint = Purity_util.Varint
module Ptbl = Purity_util.Keytbl.Ipair

type t = {
  layout : Layout.t;
  drives : int;
  aus_per_drive : int;
  frontier_per_drive : int;
  free : int Queue.t array; (* per-drive free AU indices *)
  used : unit Ptbl.t; (* (drive, au) holding live segments *)
  mutable frontier : Segment.member list list;
      (* available allocation slots, grouped per refill batch; flattened view
         is the allocatable pool *)
  mutable persisted : Segment.member list; (* snapshot as of last persist *)
  mutable speculative : Segment.member list; (* pre-approved next batch *)
  mutable generation : int;
  mutable rotation : int;
  mutable allocated_since_mark : Segment.member list;
      (* segments whose facts may postdate the last checkpoint; recovery
         must scan them, so they stay in the persisted set *)
}

let create ~layout ~drives ~aus_per_drive ?(frontier_per_drive = 8) () =
  let free = Array.init drives (fun _ -> Queue.create ()) in
  Array.iter
    (fun q ->
      for au = 0 to aus_per_drive - 1 do
        Queue.add au q
      done)
    free;
  {
    layout;
    drives;
    aus_per_drive;
    frontier_per_drive;
    free;
    used = Ptbl.create 256;
    frontier = [];
    persisted = [];
    speculative = [];
    generation = 0;
    rotation = 0;
    allocated_since_mark = [];
  }

let dedupe members =
  let seen = Ptbl.create 64 in
  List.filter
    (fun (m : Segment.member) ->
      let key = (m.Segment.drive, m.Segment.au) in
      if Ptbl.mem seen key then false
      else begin
        Ptbl.replace seen key ();
        true
      end)
    members

let take_batch t =
  (* Pull up to frontier_per_drive free AUs from every drive. *)
  let batch = ref [] in
  for d = 0 to t.drives - 1 do
    for _ = 1 to t.frontier_per_drive do
      match Queue.take_opt t.free.(d) with
      | Some au -> batch := { Segment.drive = d; au } :: !batch
      | None -> ()
    done
  done;
  !batch

(* Refill: promote the speculative set to the live frontier and draw a new
   speculative batch; both become the persisted snapshot. *)
let refill t =
  let promoted = match t.speculative with [] -> take_batch t | s -> s in
  let next_spec = take_batch t in
  let non_empty = function [] -> false | _ :: _ -> true in
  if non_empty promoted || non_empty next_spec then begin
    t.frontier <- t.frontier @ [ promoted ];
    t.speculative <- next_spec;
    t.persisted <- t.allocated_since_mark @ List.concat t.frontier @ t.speculative;
    t.generation <- t.generation + 1
  end

let frontier_pool t = List.concat t.frontier

let pop_member t ~drive =
  (* Remove one frontier slot on [drive]; returns it. *)
  let found = ref None in
  let strip group =
    if Option.is_some !found then group
    else begin
      let rec go acc = function
        | [] -> List.rev acc
        | (m : Segment.member) :: rest when m.Segment.drive = drive && Option.is_none !found ->
          found := Some m;
          List.rev_append acc rest
        | m :: rest -> go (m :: acc) rest
      in
      go [] group
    end
  in
  t.frontier <- List.map strip t.frontier;
  !found

let drives_with_frontier t ~online =
  let counts = Array.make t.drives 0 in
  List.iter
    (fun (m : Segment.member) -> counts.(m.Segment.drive) <- counts.(m.Segment.drive) + 1)
    (frontier_pool t);
  let available = ref [] in
  for i = t.drives - 1 downto 0 do
    let d = (i + t.rotation) mod t.drives in
    if online d && counts.(d) > 0 then available := d :: !available
  done;
  !available

let allocate t ~online =
  let want = Layout.members t.layout in
  let attempt () =
    let candidates = drives_with_frontier t ~online in
    if List.length candidates < want then None
    else begin
      let chosen = List.filteri (fun i _ -> i < want) candidates in
      let members =
        List.map
          (fun d -> match pop_member t ~drive:d with Some m -> m | None -> assert false)
          chosen
      in
      t.rotation <- (t.rotation + 1) mod t.drives;
      let arr = Array.of_list members in
      Array.iter (fun (m : Segment.member) -> Ptbl.replace t.used (m.Segment.drive, m.Segment.au) ()) arr;
      t.allocated_since_mark <- members @ t.allocated_since_mark;
      Some arr
    end
  in
  match attempt () with
  | Some m -> Some m
  | None ->
    refill t;
    attempt ()

(* Reserve a single AU on any drive satisfying [allowed] (used to remap a
   segio member whose drive failed before the flush). *)
let allocate_one t ~allowed =
  let attempt () =
    match drives_with_frontier t ~online:allowed with
    | [] -> None
    | d :: _ ->
      let m = match pop_member t ~drive:d with Some m -> m | None -> assert false in
      Ptbl.replace t.used (m.Segment.drive, m.Segment.au) ();
      t.allocated_since_mark <- m :: t.allocated_since_mark;
      Some m
  in
  match attempt () with
  | Some m -> Some m
  | None ->
    refill t;
    attempt ()

let release t members =
  Array.iter
    (fun (m : Segment.member) ->
      Ptbl.remove t.used (m.Segment.drive, m.Segment.au);
      if m.Segment.drive >= 0 && m.Segment.drive < t.drives then
        Queue.add m.Segment.au t.free.(m.Segment.drive))
    members

let remove_free t ~drive ~au =
  let q = t.free.(drive) in
  let keep = Queue.create () in
  Queue.iter (fun a -> if a <> au then Queue.add a keep) q;
  Queue.clear q;
  Queue.transfer keep q

let mark_used t members =
  Array.iter
    (fun (m : Segment.member) ->
      if not (Ptbl.mem t.used (m.Segment.drive, m.Segment.au)) then begin
        Ptbl.replace t.used (m.Segment.drive, m.Segment.au) ();
        remove_free t ~drive:m.Segment.drive ~au:m.Segment.au;
        (* the AU may sit in the allocatable pools (recovery restores the
           frontier before segments are rediscovered): never hand it out *)
        let not_this (x : Segment.member) =
          not (x.Segment.drive = m.Segment.drive && x.Segment.au = m.Segment.au)
        in
        t.frontier <- List.map (List.filter not_this) t.frontier;
        t.speculative <- List.filter not_this t.speculative
      end)
    members

let free_au_count t = Array.fold_left (fun acc q -> acc + Queue.length q) 0 t.free
let used_au_count t = Ptbl.length t.used
let persisted_frontier t = t.persisted
let persist_generation t = t.generation

let encode_persisted t =
  let buf = Buffer.create 256 in
  Varint.write buf (List.length t.persisted);
  List.iter
    (fun (m : Segment.member) ->
      Varint.write buf m.Segment.drive;
      Varint.write buf m.Segment.au)
    t.persisted;
  Buffer.contents buf

let restore_persisted t s =
  let buf = Bytes.unsafe_of_string s in
  let n, pos = Varint.read buf ~pos:0 in
  let p = ref pos in
  let members = ref [] in
  for _ = 1 to n do
    let drive, p1 = Varint.read buf ~pos:!p in
    let au, p2 = Varint.read buf ~pos:p1 in
    members := { Segment.drive; au } :: !members;
    p := p2
  done;
  let members = dedupe (List.rev !members) in
  t.persisted <- members;
  (* Frontier members not marked used are allocatable again; exclude them
     from the free queues so they are not handed out twice. *)
  let fresh = List.filter (fun (m : Segment.member) -> not (Ptbl.mem t.used (m.Segment.drive, m.Segment.au))) members in
  List.iter (fun (m : Segment.member) -> remove_free t ~drive:m.Segment.drive ~au:m.Segment.au) fresh;
  t.frontier <- [ fresh ];
  t.speculative <- []

(* Recovery: a rediscovered segment's log records are not covered by any
   checkpoint, so its members must stay in the persisted scan set (and so
   survive the next boot-region rewrite) until a checkpoint_mark drops
   them. Appended, not prepended: these are the oldest allocations, and
   checkpoint_mark keeps the newest [keep] entries. *)
let requeue_scan t members =
  t.allocated_since_mark <- dedupe (t.allocated_since_mark @ Array.to_list members)

let allocated_count t = List.length t.allocated_since_mark

let checkpoint_mark t ~keep ~extra =
  (* A checkpoint has persisted every fact created before its cut point:
     segments allocated before the cut no longer need scanning. Entries
     are prepended on allocation, so the [keep] newest are the first
     [keep]; [extra] pins additional members (e.g. the still-open segio,
     which keeps receiving post-checkpoint log records). *)
  let kept = List.filteri (fun i _ -> i < keep) t.allocated_since_mark in
  (* [extra] (the open segio) is usually already among the kept
     allocations: deduplicate, or the persisted list would hand the same
     AU out twice after a recovery restores it as allocatable *)
  t.allocated_since_mark <- dedupe (extra @ kept);
  t.persisted <- t.allocated_since_mark @ List.concat t.frontier @ t.speculative;
  t.generation <- t.generation + 1

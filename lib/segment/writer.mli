(** Segio: the segment write buffer (paper §4.2, Figure 3).

    "A horizontal stripe of write units across the segment, called a
    segio, accumulates compressed user data from the front, and
    accumulates log records from the back. When the two sections meet,
    the segio is completed and marked for flush to SSD." A segio may also
    hold only data or only log records.

    On {!finalize} the buffer is sealed: log records are packed
    immediately after the data region, per-row Reed–Solomon parity is
    computed, and header + rows are appended to the member AUs. Writes
    are staggered so that at most [max_writers] member drives program
    simultaneously — the §4.4 discipline that keeps reconstruct-reads
    possible while a segment flushes. *)

type t

val create :
  layout:Layout.t ->
  shelf:Purity_ssd.Shelf.t ->
  rs:Purity_erasure.Reed_solomon.t ->
  members:Segment.member array ->
  id:int ->
  t
(** [rs] must match the layout's k and m. [members] length must be
    [k + m]. @raise Invalid_argument otherwise. *)

val id : t -> int
val members : t -> Segment.member array

val data_len : t -> int
val log_len : t -> int

val remaining : t -> int
(** Free bytes between the data front and the log back. *)

val is_empty : t -> bool

val append_data : t -> string -> int option
(** Append payload bytes; returns the payload offset they will occupy, or
    [None] if the segio cannot fit them (caller seals and opens a new
    segment). *)

val append_buffer : t -> Buffer.t -> int option
(** {!append_data} for a frame accumulated in a [Buffer.t]: the bytes
    blit straight from the buffer into the segio, so a caller reusing one
    frame buffer appends without building a string. *)

val append_log : t -> seq:int64 -> string -> bool
(** Append one log record from the back; false when it does not fit. The
    record is length-framed so recovery can reparse the log region. *)

val finalize :
  t ->
  ?pool:Purity_par.Pool.t ->
  ?max_writers:int ->
  ?remap:(exclude:int list -> Segment.member option) ->
  ?tracer:Purity_telemetry.Span.tracer ->
  ?parent:Purity_telemetry.Span.t ->
  (Segment.t -> unit) ->
  unit
(** Seal and flush. The callback fires at simulated completion with the
    final segment description (as also persisted in every member header).
    Per-row RS encoding fans out over [pool] (default: the global
    {!Purity_par.Pool}) — rows are independent and return in row order,
    so the flushed bytes are identical at any domain count.
    With [tracer], the flush is traced: an [rs_encode] span for parity
    computation and one [program] span per member shard (tagged with its
    final drive), all parented under [parent] so the whole multi-hop
    write is reconstructable from the trace.
    [max_writers] defaults to 2. A member whose drive is offline (or
    fails mid-flush) is re-homed via [remap] — given the drives already
    in the stripe, return a fresh AU on a healthy drive — and its shard
    restarts from the header; with no replacement available the member is
    skipped and parity absorbs it (up to [m]). Header copies written
    before a remap may list a stale member; the completion callback's
    description (also in the remapped member's own header) is final, so
    the segment-table fact written from it is authoritative. *)

val set_member : t -> index:int -> Segment.member -> unit
(** Remap one member slot to a different (drive, AU) before the flush —
    how a segio abandons a drive that failed after allocation. The shard
    data is still in RAM, so the stripe flushes at full redundancy.
    @raise Invalid_argument once sealed. *)

val abort : t -> unit
(** Stop issuing further chunk writes (controller crash): the flush halts
    where it is, the completion callback never fires, and the torn
    segment is left for recovery to ignore (its header may or may not be
    on some members; partially written AUs are rediscovered via the
    frontier scan and reclaimed by GC). *)

val peek_payload : t -> off:int -> len:int -> string option
(** Read back payload bytes from the segio's RAM buffer (valid before and
    after sealing, until the writer is dropped): how the array serves
    reads of data that has not reached the drives yet. [None] outside the
    written data region. *)

val decode_log_region : bytes -> (int64 * string) list
(** Parse a log region read back from a segment into (seq, record)
    pairs, oldest first. Tolerates a truncated tail (torn write). *)

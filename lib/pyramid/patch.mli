(** Patches: the sorted immutable runs a pyramid is built from.

    Paper §4.8: "Patches are analogous to levels or components in other
    LSM-Tree implementations, and describe differences between the
    previous version of the pyramid and the new one. We track key ranges
    and sequence numbers for each patch."

    A patch is an immutable array of facts sorted by (key asc, seq desc).
    Duplicate (key, seq) facts collapse to one — re-inserting a fact is a
    no-op, the idempotence recovery relies on. *)

type t

val of_facts : Fact.t list -> t
(** Sort, deduplicate and freeze a batch of facts. *)

val empty : t
val count : t -> int
val is_empty : t -> bool

val seq_range : t -> (int64 * int64) option
(** Smallest and largest sequence number, [None] when empty. *)

val max_seq : t -> int64
(** Highest seq in the patch; [Int64.min_int] when empty. Cached at
    construction: the lookup path seq-fences whole patches with it. *)

val min_seq : t -> int64
(** Lowest seq in the patch; [Int64.max_int] when empty. *)

val key_range : t -> (string * string) option

val find : t -> string -> Fact.t list
(** All facts for a key, newest (highest seq) first. *)

val find_latest : t -> string -> Fact.t option

val find_latest_at : t -> string -> snapshot:int64 -> Fact.t option
(** Latest fact for a key with [seq <= snapshot]; allocation-free on the
    miss path (no intermediate list). *)

(** {2 Lookup fences}

    Cheap rejections consulted before any binary search: the key range
    comes from the sorted run's ends, and patches of at least 16 facts
    carry a bloom filter over their distinct keys. *)

val fence_admits : t -> string -> bool
(** Could [key] fall inside this patch's key range? *)

val fence_overlaps : t -> lo:string -> hi:string -> bool
(** Could any key in [lo, hi] fall inside this patch's key range? *)

val bloom_admits : t -> string -> bool
(** [false] proves the key is absent; [true] means "probe the patch"
    (always [true] for small patches, which carry no filter). *)

val bloom_admits_hashed : t -> (int * int) lazy_t -> bool
(** [bloom_admits] with the key's [Bloom.hash_pair] computed at most once
    across a whole patch stack (forced only if some patch has a filter). *)

val has_bloom : t -> bool

val iter : t -> (Fact.t -> unit) -> unit
(** In patch order. *)

val fold : ('a -> Fact.t -> 'a) -> 'a -> t -> 'a
val to_list : t -> Fact.t list
val get : t -> int -> Fact.t

val range : t -> lo:string -> hi:string -> Fact.t list
(** Facts with [lo <= key <= hi], in patch order. *)

val iter_run : t -> lo:string -> hi:string -> (Fact.t -> unit) -> unit
(** Visit facts with [lo <= key <= hi] in patch order: one lower_bound
    then a sequential walk, allocating nothing. The batched-resolution
    primitive behind {!Pyramid.find_run}. *)

val exists_in_range : t -> lo:string -> hi:string -> bool
(** Is any fact's key within [lo, hi]? *)

val merge : t -> t -> t
(** Combine two patches (the pyramid's merge operation). Commutative,
    associative and idempotent — merging a patch with itself, or replaying
    a merge, yields the same result. *)

val merge_many : t list -> t

val filter : t -> (Fact.t -> bool) -> t
(** Keep only matching facts (elide-aware flatten uses this). *)

val compact_latest : t -> drop_tombstones:bool -> t
(** Keep only the newest fact per key — valid only at the bottom of a
    pyramid, where no older level can resurrect superseded facts. With
    [drop_tombstones] the retractions themselves are discarded too. *)

val serialize : t -> string
val deserialize : string -> t
(** @raise Invalid_argument on malformed input (CRC-checked). *)

module Varint = Purity_util.Varint
module Crc32c = Purity_util.Crc32c
module Bloom = Purity_util.Bloom

(* A patch is an immutable sorted run of facts plus lookup fences: the
   key range comes free from the sorted array's ends, and patches big
   enough to matter carry a bloom filter over their distinct keys so the
   point-lookup path can skip whole patches without binary-searching
   them (paper §4.9: consulting metadata pages must stay cheap as the
   pyramid deepens). *)
type t = {
  facts : Fact.t array; (* sorted by (key asc, seq desc), no (key,seq) dups *)
  bloom : Bloom.t option; (* key filter; None below [bloom_threshold] *)
  seq_lo : int64; (* min seq over facts; max_int when empty *)
  seq_hi : int64; (* max seq over facts; min_int when empty *)
}

(* Below this many facts a binary search is already a handful of
   comparisons; the filter would cost more to build than it saves. *)
let bloom_threshold = 16

(* [facts] must already be sorted and deduped. *)
let make facts =
  let n = Array.length facts in
  let bloom =
    if n < bloom_threshold then None
    else begin
      let b = Bloom.create ~expected:n () in
      let prev = ref "" in
      Array.iteri
        (fun i f ->
          if i = 0 || not (String.equal f.Fact.key !prev) then begin
            Bloom.add b f.Fact.key;
            prev := f.Fact.key
          end)
        facts;
      Some b
    end
  in
  let seq_lo = ref Int64.max_int and seq_hi = ref Int64.min_int in
  Array.iter
    (fun f ->
      if Int64.compare f.Fact.seq !seq_lo < 0 then seq_lo := f.Fact.seq;
      if Int64.compare f.Fact.seq !seq_hi > 0 then seq_hi := f.Fact.seq)
    facts;
  { facts; bloom; seq_lo = !seq_lo; seq_hi = !seq_hi }

let empty = { facts = [||]; bloom = None; seq_lo = Int64.max_int; seq_hi = Int64.min_int }
let count t = Array.length t.facts
let is_empty t = Array.length t.facts = 0

let dedup_sorted facts =
  (* facts sorted by compare_key_seq; drop exact (key, seq) duplicates. *)
  let out = ref [] in
  Array.iter
    (fun f ->
      match !out with
      | prev :: _ when String.equal prev.Fact.key f.Fact.key && Int64.equal prev.Fact.seq f.Fact.seq -> ()
      | _ -> out := f :: !out)
    facts;
  Array.of_list (List.rev !out)

let of_facts facts =
  let a = Array.of_list facts in
  Array.sort Fact.compare_key_seq a;
  make (dedup_sorted a)

let seq_range t = if is_empty t then None else Some (t.seq_lo, t.seq_hi)
let max_seq t = t.seq_hi
let min_seq t = t.seq_lo

let key_range t =
  if is_empty t then None
  else Some ((t.facts.(0)).Fact.key, (t.facts.(Array.length t.facts - 1)).Fact.key)

(* Index of the first fact with key >= [key]. *)
let lower_bound t key =
  let a = t.facts in
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if String.compare (a.(mid)).Fact.key key < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* Fence checks: cheap rejections before any binary search. *)
let fence_admits t key =
  let a = t.facts in
  let n = Array.length a in
  n > 0
  && String.compare (a.(0)).Fact.key key <= 0
  && String.compare key (a.(n - 1)).Fact.key <= 0

let fence_overlaps t ~lo ~hi =
  let a = t.facts in
  let n = Array.length a in
  n > 0
  && String.compare (a.(0)).Fact.key hi <= 0
  && String.compare lo (a.(n - 1)).Fact.key <= 0

let bloom_admits t key = match t.bloom with None -> true | Some b -> Bloom.mem b key

(* One key is tested against every patch on the lookup path: hash once,
   probe each filter with the digests. *)
let bloom_admits_hashed t hashes =
  match t.bloom with None -> true | Some b -> Bloom.mem_hashed b (Lazy.force hashes)

let has_bloom t = Option.is_some t.bloom

let find t key =
  let a = t.facts in
  let i = ref (lower_bound t key) in
  let acc = ref [] in
  while !i < Array.length a && String.equal (a.(!i)).Fact.key key do
    acc := a.(!i) :: !acc;
    incr i
  done;
  List.rev !acc

let find_latest t key =
  let i = lower_bound t key in
  if i < Array.length t.facts && String.equal (t.facts.(i)).Fact.key key then Some t.facts.(i)
  else None

(* Latest fact for [key] with seq <= [snapshot]. A key's facts sit
   newest-first, so the first admissible one wins; nothing is allocated
   on the miss path. *)
let find_latest_at t key ~snapshot =
  let a = t.facts in
  let n = Array.length a in
  let i = ref (lower_bound t key) in
  let best = ref None in
  (try
     while !i < n && String.equal (a.(!i)).Fact.key key do
       if Int64.compare (a.(!i)).Fact.seq snapshot <= 0 then begin
         best := Some a.(!i);
         raise Exit
       end;
       incr i
     done
   with Exit -> ());
  !best

let iter t f = Array.iter f t.facts
let fold f init t = Array.fold_left f init t.facts
let to_list t = Array.to_list t.facts
let get t i = t.facts.(i)

let range t ~lo ~hi =
  let a = t.facts in
  let i = ref (lower_bound t lo) in
  let acc = ref [] in
  while !i < Array.length a && String.compare (a.(!i)).Fact.key hi <= 0 do
    acc := a.(!i) :: !acc;
    incr i
  done;
  List.rev !acc

(* One lower_bound, then a sequential walk: the batched-resolution
   primitive. [f] sees every fact with lo <= key <= hi in order. *)
let iter_run t ~lo ~hi f =
  let a = t.facts in
  let n = Array.length a in
  let i = ref (lower_bound t lo) in
  while !i < n && String.compare (a.(!i)).Fact.key hi <= 0 do
    f a.(!i);
    incr i
  done

let exists_in_range t ~lo ~hi =
  let i = lower_bound t lo in
  i < Array.length t.facts && String.compare (t.facts.(i)).Fact.key hi <= 0

let merge a b =
  (* Linear merge of two sorted runs, dropping (key, seq) duplicates. *)
  let fa = a.facts and fb = b.facts in
  let na = Array.length fa and nb = Array.length fb in
  let out = ref [] in
  let push f =
    match !out with
    | prev :: _ when String.equal prev.Fact.key f.Fact.key && Int64.equal prev.Fact.seq f.Fact.seq -> ()
    | _ -> out := f :: !out
  in
  let i = ref 0 and j = ref 0 in
  while !i < na || !j < nb do
    if !i >= na then begin
      push fb.(!j);
      incr j
    end
    else if !j >= nb then begin
      push fa.(!i);
      incr i
    end
    else if Fact.compare_key_seq fa.(!i) fb.(!j) <= 0 then begin
      push fa.(!i);
      incr i
    end
    else begin
      push fb.(!j);
      incr j
    end
  done;
  make (Array.of_list (List.rev !out))

(* Balanced pairwise rounds: each fact takes part in O(log n) merges
   instead of the O(n) of a left fold that re-merges its accumulator. *)
let rec merge_many = function
  | [] -> empty
  | [ t ] -> t
  | ts ->
    let rec pairwise = function
      | a :: b :: rest -> merge a b :: pairwise rest
      | rest -> rest
    in
    merge_many (pairwise ts)

let filter t pred = make (Array.of_seq (Seq.filter pred (Array.to_seq t.facts)))

let compact_latest t ~drop_tombstones =
  let out = ref [] in
  let last_key = ref None in
  Array.iter
    (fun f ->
      let fresh =
        match !last_key with Some k -> not (String.equal k f.Fact.key) | None -> true
      in
      if fresh then begin
        last_key := Some f.Fact.key;
        if not (drop_tombstones && Fact.is_tombstone f) then out := f :: !out
      end)
    t.facts;
  make (Array.of_list (List.rev !out))

let serialize t =
  let body = Buffer.create (64 * Array.length t.facts) in
  Varint.write body (Array.length t.facts);
  Array.iter (fun f -> Fact.encode body f) t.facts;
  let payload = Buffer.contents body in
  let out = Buffer.create (String.length payload + 8) in
  Varint.write out (String.length payload);
  let crc = Crc32c.digest_string payload in
  for shift = 0 to 3 do
    Buffer.add_char out
      (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical crc (8 * shift)) 0xFFl)))
  done;
  Buffer.add_string out payload;
  Buffer.contents out

let deserialize s =
  let buf = Bytes.unsafe_of_string s in
  let payload_len, p = Varint.read buf ~pos:0 in
  if p + 4 + payload_len > Bytes.length buf then invalid_arg "Patch.deserialize: truncated";
  let crc_stored =
    let b i = Int32.of_int (Bytes.get_uint8 buf (p + i)) in
    Int32.logor (b 0)
      (Int32.logor
         (Int32.shift_left (b 1) 8)
         (Int32.logor (Int32.shift_left (b 2) 16) (Int32.shift_left (b 3) 24)))
  in
  let payload_pos = p + 4 in
  if not (Int32.equal (Crc32c.update 0l buf ~pos:payload_pos ~len:payload_len) crc_stored) then
    invalid_arg "Patch.deserialize: CRC mismatch";
  let n, pos = Varint.read buf ~pos:payload_pos in
  let facts = ref [] in
  let p = ref pos in
  for _ = 1 to n do
    let f, next = Fact.decode buf ~pos:!p in
    facts := f :: !facts;
    p := next
  done;
  of_facts (List.rev !facts)

module Ranges = Purity_encoding.Ranges
module Stbl = Purity_util.Keytbl.Str

type policy = Elide of (Fact.t -> int) | Tombstones

type elide_entry = { eseq : int64; lo : int; hi : int }

type t = {
  name : string;
  policy : policy;
  flush_count : int;
  memtable : Fact.t list Stbl.t; (* key -> facts, newest first *)
  mutable memtable_count : int;
  mutable patches : Patch.t list; (* shallowest (newest) first *)
  mutable elide_log : elide_entry list; (* newest first *)
  mutable elide_ranges : Ranges.t; (* union of elide_log ranges *)
  mutable elide_index : (int64 array * Ranges.t array) option;
      (* eseq-sorted entries with cumulative unions, for snapshot reads;
         rebuilt lazily after any elide mutation *)
  mutable max_seq : int64;
  (* fast-path accounting, read back through the telemetry registry *)
  mutable stat_probes : int; (* patch consults attempted *)
  mutable stat_fence_skips : int; (* rejected by key-range fence *)
  mutable stat_bloom_skips : int; (* rejected by bloom filter *)
}

let create ?(memtable_flush_count = 1024) ~policy ~name () =
  {
    name;
    policy;
    flush_count = memtable_flush_count;
    memtable = Stbl.create 64;
    memtable_count = 0;
    patches = [];
    elide_log = [];
    elide_ranges = Ranges.empty;
    elide_index = None;
    max_seq = 0L;
    stat_probes = 0;
    stat_fence_skips = 0;
    stat_bloom_skips = 0;
  }

let name t = t.name
let policy_is_elision t = match t.policy with Elide _ -> true | Tombstones -> false

let bump_seq t seq = if Int64.compare seq t.max_seq > 0 then t.max_seq <- seq

(* Size-tiered maintenance: after a flush, merge the shallowest patches
   while the newer one has grown to at least half the older one's size.
   This keeps the patch count logarithmic in the number of flushes, like
   the background merge strategies of the LSM literature the paper cites
   (elided facts are dropped by the merges along the way). *)
let rec auto_compact t =
  match t.patches with
  | a :: b :: rest when 2 * Patch.count a >= Patch.count b ->
    let merged =
      match t.policy with
      | Tombstones -> Patch.merge a b
      | Elide _ ->
        Patch.filter (Patch.merge a b) (fun f ->
            match t.policy with
            | Elide rule -> not (Ranges.mem t.elide_ranges (rule f))
            | Tombstones -> true)
    in
    t.patches <- merged :: rest;
    auto_compact t
  | _ -> ()

let flush t =
  if t.memtable_count > 0 then begin
    let facts = Stbl.fold (fun _ fs acc -> List.rev_append fs acc) t.memtable [] in
    t.patches <- Patch.of_facts facts :: t.patches;
    Stbl.reset t.memtable;
    t.memtable_count <- 0;
    auto_compact t
  end

let insert_fact t f =
  let prev = Option.value ~default:[] (Stbl.find_opt t.memtable f.Fact.key) in
  (* Idempotence at the earliest point: drop exact (key, seq) repeats. *)
  if not (List.exists (fun g -> Int64.equal g.Fact.seq f.Fact.seq) prev) then begin
    Stbl.replace t.memtable f.Fact.key (f :: prev);
    t.memtable_count <- t.memtable_count + 1;
    bump_seq t f.Fact.seq;
    if t.memtable_count >= t.flush_count then flush t
  end

let insert t ~seq ~key ~value = insert_fact t (Fact.make ~key ~value ~seq)

let delete t ~seq ~key =
  match t.policy with
  | Tombstones -> insert_fact t (Fact.tombstone ~key ~seq)
  | Elide _ -> invalid_arg "Pyramid.delete: elision-policy table; use elide_range"

let elide_range t ~seq ~lo ~hi =
  match t.policy with
  | Tombstones -> invalid_arg "Pyramid.elide_range: tombstone-policy table; use delete"
  | Elide _ ->
    if lo > hi then invalid_arg "Pyramid.elide_range: lo > hi";
    t.elide_log <- { eseq = seq; lo; hi } :: t.elide_log;
    t.elide_ranges <- Ranges.add_range t.elide_ranges ~lo ~hi;
    t.elide_index <- None;
    bump_seq t seq

let elide_id t ~seq id = elide_range t ~seq ~lo:id ~hi:id

(* Elide ids are never reused, so filtering against the full table is
   always safe; snapshot reads restrict to entries committed by then.
   The snapshot path binary-searches an eseq-sorted index of cumulative
   range unions instead of scanning the whole log per fact. *)
let elide_index t =
  match t.elide_index with
  | Some ix -> ix
  | None ->
    let entries = Array.of_list t.elide_log in
    Array.sort (fun a b -> Int64.compare a.eseq b.eseq) entries;
    let n = Array.length entries in
    let seqs = Array.make n 0L in
    let cums = Array.make n Ranges.empty in
    let acc = ref Ranges.empty in
    Array.iteri
      (fun i e ->
        acc := Ranges.add_range !acc ~lo:e.lo ~hi:e.hi;
        seqs.(i) <- e.eseq;
        cums.(i) <- !acc)
      entries;
    let ix = (seqs, cums) in
    t.elide_index <- Some ix;
    ix

let elided_at t ~snapshot f =
  match t.policy with
  | Tombstones -> false
  | Elide rule ->
    let id = rule f in
    if Int64.compare snapshot t.max_seq >= 0 then Ranges.mem t.elide_ranges id
    else begin
      let seqs, cums = elide_index t in
      (* largest i with seqs.(i) <= snapshot *)
      let lo = ref 0 and hi = ref (Array.length seqs) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if Int64.compare seqs.(mid) snapshot <= 0 then lo := mid + 1 else hi := mid
      done;
      !lo > 0 && Ranges.mem cums.(!lo - 1) id
    end

let no_snapshot = Int64.max_int

(* Latest fact for a key with seq <= snapshot, across memtable and every
   patch. Patches may overlap in sequence ranges after recovery, so all
   sources are consulted and the global maximum wins. Patches whose key
   fence or bloom filter excludes the key are skipped without a search,
   and the per-patch probe allocates nothing. *)
let latest_fact t ~snapshot key =
  let best = ref None in
  let consider f =
    match !best with
    | Some b when Int64.compare b.Fact.seq f.Fact.seq >= 0 -> ()
    | _ -> best := Some f
  in
  (match Stbl.find_opt t.memtable key with
  | Some fs ->
    List.iter (fun f -> if Int64.compare f.Fact.seq snapshot <= 0 then consider f) fs
  | None -> ());
  let hashes = lazy (Purity_util.Bloom.hash_pair key) in
  List.iter
    (fun p ->
      t.stat_probes <- t.stat_probes + 1;
      (* seq fence first (two int64 compares): a patch whose newest fact
         is already dominated by the best so far — or whose oldest fact
         postdates the snapshot — cannot contribute *)
      let dominated =
        match !best with
        | Some b -> Int64.compare b.Fact.seq (Patch.max_seq p) >= 0
        | None -> false
      in
      if dominated || Int64.compare snapshot (Patch.min_seq p) < 0 then
        t.stat_fence_skips <- t.stat_fence_skips + 1
      else if not (Patch.fence_admits p key) then t.stat_fence_skips <- t.stat_fence_skips + 1
      else if not (Patch.bloom_admits_hashed p hashes) then
        t.stat_bloom_skips <- t.stat_bloom_skips + 1
      else
        match Patch.find_latest_at p key ~snapshot with
        | Some f -> consider f
        | None -> ())
    t.patches;
  !best

(* The pre-filter lookup, kept as the reference implementation: the
   equivalence properties in test_pyramid.ml and the before/after rows
   of bench/exp_metadata_hotpath.ml compare against it. *)
let latest_fact_naive t ~snapshot key =
  let best = ref None in
  let consider f =
    if Int64.compare f.Fact.seq snapshot <= 0 then
      match !best with
      | Some b when Int64.compare b.Fact.seq f.Fact.seq >= 0 -> ()
      | _ -> best := Some f
  in
  (match Stbl.find_opt t.memtable key with
  | Some fs -> List.iter consider fs
  | None -> ());
  List.iter (fun p -> List.iter consider (Patch.find p key)) t.patches;
  !best

let resolve t ~snapshot ~ignore_retractions fact =
  match fact with
  | None -> None
  | Some f ->
    if ignore_retractions then f.Fact.value
    else if Fact.is_tombstone f then None
    else if elided_at t ~snapshot f then None
    else f.Fact.value

let find ?(snapshot = no_snapshot) t key =
  resolve t ~snapshot ~ignore_retractions:false (latest_fact t ~snapshot key)

let find_ignoring_retractions ?(snapshot = no_snapshot) t key =
  match latest_fact t ~snapshot key with
  | Some f when not (Fact.is_tombstone f) -> f.Fact.value
  | Some _ | None -> None

let find_naive ?(snapshot = no_snapshot) t key =
  resolve t ~snapshot ~ignore_retractions:false (latest_fact_naive t ~snapshot key)

let resolve_fact ?(snapshot = no_snapshot) t fact =
  resolve t ~snapshot ~ignore_retractions:false fact

(* Batched lookup for [n] consecutive keys: one lower_bound then a
   sequential walk per patch, instead of n independent binary searches.
   [key_of i] names slot i's key (keys must be ascending in i); [index]
   inverts it, mapping a stored key back to its slot (return anything
   out of [0, n) for keys that belong to no slot). Returns the latest
   in-snapshot fact per slot; retractions are NOT applied — feed each
   slot through [resolve]. *)
let find_run ?(snapshot = no_snapshot) t ~n ~key_of ~index =
  let best = Array.make n None in
  let consider slot f =
    if slot >= 0 && slot < n && Int64.compare f.Fact.seq snapshot <= 0 then
      match best.(slot) with
      | Some b when Int64.compare b.Fact.seq f.Fact.seq >= 0 -> ()
      | _ -> best.(slot) <- Some f
  in
  for i = 0 to n - 1 do
    match Stbl.find_opt t.memtable (key_of i) with
    | Some fs -> List.iter (consider i) fs
    | None -> ()
  done;
  if n > 0 then begin
    let lo = key_of 0 and hi = key_of (n - 1) in
    List.iter
      (fun p ->
        t.stat_probes <- t.stat_probes + 1;
        if
          Int64.compare snapshot (Patch.min_seq p) < 0
          || not (Patch.fence_overlaps p ~lo ~hi)
        then t.stat_fence_skips <- t.stat_fence_skips + 1
        else Patch.iter_run p ~lo ~hi (fun f -> consider (index f.Fact.key) f))
      t.patches
  end;
  best

let memtable_patch t =
  Patch.of_facts (Stbl.fold (fun _ fs acc -> List.rev_append fs acc) t.memtable [])

let merged_view t = Patch.merge_many (memtable_patch t :: t.patches)

let iter_live ?(snapshot = no_snapshot) t f =
  let view = merged_view t in
  let current_key = ref None in
  let emitted = ref false in
  Patch.iter view (fun fact ->
      let same_key =
        match !current_key with
        | Some k -> String.equal k fact.Fact.key
        | None -> false
      in
      (if not same_key then begin
         current_key := Some fact.Fact.key;
         emitted := false
       end);
      if (not !emitted) && Int64.compare fact.Fact.seq snapshot <= 0 then begin
        emitted := true;
        (* first in-snapshot fact for the key = its latest version *)
        if not (Fact.is_tombstone fact) && not (elided_at t ~snapshot fact) then
          match fact.Fact.value with
          | Some value -> f ~key:fact.Fact.key ~value
          | None -> ()
      end)

let range ?(snapshot = no_snapshot) t ~lo ~hi =
  let acc = ref [] in
  iter_live ~snapshot t (fun ~key ~value ->
      if String.compare key lo >= 0 && String.compare key hi <= 0 then
        acc := (key, value) :: !acc);
  List.rev !acc

(* Does any key in [lo, hi] resolve to a live value? Unlike [range]
   (which merges the entire pyramid just to filter it), this walks only
   the facts inside the fence of each overlapping patch and keeps the
   per-key winner in a scratch table — maintenance paths (medium
   flattening, GC) call it in loops. *)
let exists_live_in_range ?(snapshot = no_snapshot) t ~lo ~hi =
  let best : Fact.t Stbl.t = Stbl.create 32 in
  let consider f =
    if
      Int64.compare f.Fact.seq snapshot <= 0
      && String.compare f.Fact.key lo >= 0
      && String.compare f.Fact.key hi <= 0
    then
      match Stbl.find_opt best f.Fact.key with
      | Some b when Int64.compare b.Fact.seq f.Fact.seq >= 0 -> ()
      | _ -> Stbl.replace best f.Fact.key f
  in
  Stbl.iter (fun _ fs -> List.iter consider fs) t.memtable;
  List.iter
    (fun p -> if Patch.fence_overlaps p ~lo ~hi then Patch.iter_run p ~lo ~hi consider)
    t.patches;
  try
    Stbl.iter
      (fun _ f ->
        if
          (not (Fact.is_tombstone f))
          && (not (elided_at t ~snapshot f))
          && Option.is_some f.Fact.value
        then raise Exit)
      best;
    false
  with Exit -> true

let not_elided t f = not (elided_at t ~snapshot:no_snapshot f)

let merge_step t =
  match t.patches with
  | a :: b :: rest ->
    let merged = Patch.filter (Patch.merge a b) (not_elided t) in
    t.patches <- merged :: rest;
    true
  | _ -> false

let flatten t =
  flush t;
  let all = Patch.merge_many t.patches in
  let live = Patch.filter all (not_elided t) in
  let bottom = Patch.compact_latest live ~drop_tombstones:true in
  t.patches <- (if Patch.is_empty bottom then [] else [ bottom ])

let patch_count t = List.length t.patches

let fact_count t =
  t.memtable_count + List.fold_left (fun acc p -> acc + Patch.count p) 0 t.patches

let live_key_count t =
  let n = ref 0 in
  iter_live t (fun ~key:_ ~value:_ -> incr n);
  !n

let memtable_size t = t.memtable_count
let elide_table t = t.elide_ranges
let elide_range_count t = Ranges.range_count t.elide_ranges
let max_seq t = t.max_seq
let patches t = t.patches

(* (probes attempted, skipped by fence, skipped by bloom) since creation. *)
let probe_stats t = (t.stat_probes, t.stat_fence_skips, t.stat_bloom_skips)

let replace_patches t ps =
  t.patches <- ps;
  List.iter
    (fun p -> match Patch.seq_range p with Some (_, hi) -> bump_seq t hi | None -> ())
    ps

let restore_elides t ranges =
  match t.policy with
  | Tombstones -> invalid_arg "Pyramid.restore_elides: tombstone-policy table"
  | Elide _ ->
    Ranges.fold
      (fun ~lo ~hi () -> t.elide_log <- { eseq = 0L; lo; hi } :: t.elide_log)
      ranges ();
    t.elide_ranges <- Ranges.union t.elide_ranges ranges;
    t.elide_index <- None

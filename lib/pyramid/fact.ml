module Varint = Purity_util.Varint

type t = { key : string; value : string option; seq : int64 }

let make ~key ~value ~seq = { key; value = Some value; seq }
let tombstone ~key ~seq = { key; value = None; seq }
let is_tombstone t = Option.is_none t.value

let compare_key_seq a b =
  let c = String.compare a.key b.key in
  if c <> 0 then c else Int64.compare b.seq a.seq

let equal a b =
  String.equal a.key b.key
  && Option.equal String.equal a.value b.value
  && Int64.equal a.seq b.seq

let encode buf t =
  Varint.write_i64 buf t.seq;
  Varint.write buf (String.length t.key);
  Buffer.add_string buf t.key;
  (match t.value with
  | None -> Buffer.add_char buf '\000'
  | Some v ->
    Buffer.add_char buf '\001';
    Varint.write buf (String.length v);
    Buffer.add_string buf v)

let decode buf ~pos =
  let seq, p = Varint.read_i64 buf ~pos in
  let klen, p = Varint.read buf ~pos:p in
  if p + klen > Bytes.length buf then invalid_arg "Fact.decode: truncated key";
  let key = Bytes.sub_string buf p klen in
  let p = p + klen in
  if p >= Bytes.length buf then invalid_arg "Fact.decode: truncated tag";
  match Bytes.get buf p with
  | '\000' -> ({ key; value = None; seq }, p + 1)
  | '\001' ->
    let vlen, p = Varint.read buf ~pos:(p + 1) in
    if p + vlen > Bytes.length buf then invalid_arg "Fact.decode: truncated value";
    ({ key; value = Some (Bytes.sub_string buf p vlen); seq }, p + vlen)
  | _ -> invalid_arg "Fact.decode: bad tag"

let pp ppf t =
  match t.value with
  | Some v -> Fmt.pf ppf "@[<h>%S=%S@%Ld@]" t.key v t.seq
  | None -> Fmt.pf ppf "@[<h>%S=⊥@%Ld@]" t.key t.seq

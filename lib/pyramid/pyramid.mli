(** Pyramids: Purity's log-structured merge trees (paper §4.8, §4.10).

    A pyramid indexes one relation. Insertions go to a mutable memtable;
    {!flush} freezes it into a {!Patch.t}; {!merge_step} combines patches
    with contiguous sequence ranges; {!flatten} compacts everything to a
    single bottom patch. Merge and flatten are idempotent and always safe,
    mirroring the paper's lock-free maintenance claim (re-running either
    never changes the result).

    Deletion policy is chosen at creation time:

    - {e Elision} (Purity's novel mechanism): the pyramid carries an elide
      table of dense integer ids plus a rule mapping each fact to its id.
      Inserting an id (or range) into the elide table atomically retracts
      every matching fact, present and — because ids are never reused —
      harmless against future ones. Readers filter against the table;
      merges drop elided facts immediately, reclaiming space without
      waiting for a retraction to sink through the levels.

    - {e Tombstones} (the baseline the paper compares against): deletes
      insert per-key tombstone facts that shadow older values and are only
      discarded when a flatten reaches the bottom level.

    Reads are snapshot-consistent: passing [~snapshot:s] observes exactly
    the facts (and elide entries) with sequence number <= s. *)

type policy =
  | Elide of (Fact.t -> int)
      (** Rule mapping a fact to its elide-table id. The motivating example
          (mediums): key encodes [(medium, offset)], rule extracts
          [medium], and dropping a medium is one elide-range insert. *)
  | Tombstones

type t

val create : ?memtable_flush_count:int -> policy:policy -> name:string -> unit -> t
(** [memtable_flush_count] (default 1024) bounds the memtable before
    {!insert} auto-flushes. *)

val name : t -> string
val policy_is_elision : t -> bool

(** {1 Writes — monotone fact insertion} *)

val insert : t -> seq:int64 -> key:string -> value:string -> unit
val insert_fact : t -> Fact.t -> unit
(** Idempotent: re-inserting an already-present (key, seq) fact is a
    no-op after the next merge. Used verbatim by recovery replay. *)

val delete : t -> seq:int64 -> key:string -> unit
(** Tombstone-policy deletion.
    @raise Invalid_argument under the elision policy. *)

val elide_id : t -> seq:int64 -> int -> unit
val elide_range : t -> seq:int64 -> lo:int -> hi:int -> unit
(** Atomically retract every fact whose rule id falls in the range —
    "atomic predicate-based tuple elision".
    @raise Invalid_argument under the tombstone policy. *)

(** {1 Reads} *)

val find : ?snapshot:int64 -> t -> string -> string option
(** Latest live value for a key: tombstoned and elided facts read as
    absent. Patches whose key fence or bloom filter excludes the key are
    skipped without a search. *)

val find_naive : ?snapshot:int64 -> t -> string -> string option
(** Reference implementation of {!find} that probes every patch with the
    list-building [Patch.find]. Exists so tests and the metadata
    micro-benchmark can compare the fenced fast path against it; results
    are always identical. *)

val find_run :
  ?snapshot:int64 -> t -> n:int -> key_of:(int -> string) -> index:(string -> int) ->
  Fact.t option array
(** Batched lookup for [n] consecutive keys: one lower_bound then a
    sequential walk per patch instead of [n] independent searches.
    [key_of i] is slot [i]'s key (ascending in [i]); [index] maps a
    stored key back to its slot (anything outside [0, n) is ignored).
    Returns the latest in-snapshot fact per slot with retractions NOT
    applied — pass each slot through {!resolve_fact} if liveness
    matters. *)

val resolve_fact : ?snapshot:int64 -> t -> Fact.t option -> string option
(** Apply tombstone/elide filtering to a looked-up fact (e.g. a
    {!find_run} slot), yielding its live value. *)

val find_ignoring_retractions : ?snapshot:int64 -> t -> string -> string option
(** The paper's relaxed consistency mode: "readers are allowed to run in a
    relaxed consistency mode that simply ignores retractions, allowing
    them to observe tuples that no longer exist." *)

val iter_live : ?snapshot:int64 -> t -> (key:string -> value:string -> unit) -> unit
(** Visit each key's latest live value, in key order. *)

val range : ?snapshot:int64 -> t -> lo:string -> hi:string -> (string * string) list
(** Live (key, value) pairs with [lo <= key <= hi]. *)

val exists_live_in_range : ?snapshot:int64 -> t -> lo:string -> hi:string -> bool
(** Does any key in [lo, hi] resolve to a live value? Equivalent to
    [range t ~lo ~hi <> []] but walks only the facts inside each
    overlapping patch's fence instead of merging the whole pyramid. *)

(** {1 Maintenance} *)

val flush : t -> unit
(** Freeze the memtable into a new top patch (no-op when empty), then run
    size-tiered maintenance: shallow patches of similar size merge, so the
    patch count stays logarithmic in the number of flushes. *)

val merge_step : t -> bool
(** Merge the two shallowest adjacent patches; false if fewer than two
    patches exist. Elided facts encountered are dropped immediately. *)

val flatten : t -> unit
(** Full compaction to a single bottom patch: superseded facts, elided
    facts, and (tombstone policy) the tombstones themselves are dropped. *)

(** {1 Introspection & persistence} *)

val patch_count : t -> int
val fact_count : t -> int
(** Stored facts across memtable and patches, including shadowed ones. *)

val live_key_count : t -> int
val memtable_size : t -> int
val elide_table : t -> Purity_encoding.Ranges.t
val elide_range_count : t -> int
val max_seq : t -> int64
(** Highest sequence number stored (0 when empty). *)

val patches : t -> Patch.t list
(** Shallowest first; for the segment writer to persist. *)

val probe_stats : t -> int * int * int
(** [(probes, fence_skips, bloom_skips)] since creation: patch consults
    attempted by the lookup paths, and how many were rejected by the key
    fence or the bloom filter without a search. *)

val replace_patches : t -> Patch.t list -> unit
(** Install persisted patches at recovery (shallowest first). *)

val restore_elides : t -> Purity_encoding.Ranges.t -> unit
(** Recovery: re-install a checkpointed elide table. Restored entries are
    visible to every snapshot (sequence 0 — elide ids are never reused, so
    this is always safe). @raise Invalid_argument on tombstone tables. *)

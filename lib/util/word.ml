(* Unchecked word access for the data-plane kernels. The externals live
   in the .mli so call sites compile them as inline primitives — see the
   interface for the reasoning and the bounds contract. *)

external unsafe_get_64 : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external unsafe_set_64 : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"
external unsafe_get_32 : Bytes.t -> int -> int32 = "%caml_bytes_get32u"
external swap64 : int64 -> int64 = "%bswap_int64"
external swap32 : int32 -> int32 = "%bswap_int32"

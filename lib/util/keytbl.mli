(** Specialized hash tables for the hot paths: [Hashtbl.Make]
    instantiations whose [equal]/[hash] are bound at the key type, so
    probes avoid the polymorphic structural-comparison primitives. Hash
    values agree with [Hashtbl.hash], so bucket layout (and therefore
    iteration order) is identical to the generic tables they replace. *)

module Str : Hashtbl.S with type key = string
module Int : Hashtbl.S with type key = int
module I64 : Hashtbl.S with type key = int64
module Ipair : Hashtbl.S with type key = int * int

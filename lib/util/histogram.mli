(** Log-bucketed latency histograms with percentile queries.

    Purity's headline numbers are latency percentiles ("typical
    installations have 99.9% latencies under 1 ms"). This histogram uses
    HDR-style logarithmic bucketing: values are grouped into buckets whose
    width grows geometrically, giving a bounded relative error over many
    orders of magnitude with constant memory. *)

type t

val create : unit -> t
(** Empty histogram covering values from 1 to ~2^62 with ~1.5% relative
    error. Units are whatever the caller records (we use microseconds of
    simulated time). *)

val record : t -> float -> unit
(** Record a non-negative sample (values < 1 count in the first bucket). *)

val record_n : t -> float -> int -> unit
(** Record the same sample [n] times. *)

val count : t -> int
(** Number of recorded samples. *)

val mean : t -> float
(** Arithmetic mean of recorded samples (exact, tracked separately). *)

val max_value : t -> float
(** Largest recorded sample (exact). *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [\[0, 100\]]: smallest bucket upper bound
    such that at least [p]% of samples fall at or below it. Returns 0 for
    an empty histogram. *)

val to_buckets : t -> (float * int) list
(** Occupied buckets as (upper bound, count) pairs in ascending bound
    order — the serialisation the telemetry exporter ships, from which the
    distribution (and any percentile) can be reconstructed without access
    to this module's internals. Empty buckets are omitted. *)

val quantiles : t -> float list -> float list
(** [quantiles t qs] for quantile fractions in [\[0, 1\]]: each result is
    [percentile t (q *. 100.)]. @raise Invalid_argument outside the
    range. *)

val merge_into : src:t -> dst:t -> unit
(** Add all of [src]'s samples into [dst]. *)

val clear : t -> unit

val pp_summary : t Fmt.t
(** Render "n=… mean=… p50=… p99=… p99.9=… max=…". *)

(** xxHash64: the 64-bit non-cryptographic hash used for deduplication.

    Purity records hashes "no larger than 64 bits" for dedup candidates and
    relies on a byte-level comparison to confirm matches, so hash collisions
    affect only performance, never correctness (paper §4.7). This is a
    from-scratch implementation of the xxHash64 algorithm. *)

val hash : ?seed:int64 -> bytes -> pos:int -> len:int -> int64
(** [hash ?seed buf ~pos ~len] hashes the given slice. *)

val hash_string : ?seed:int64 -> string -> int64
(** Hash a whole string. *)

val truncate : int64 -> bits:int -> int64
(** [truncate h ~bits] keeps the low [bits] bits, emulating the short
    hashes Purity stores in its dedup index to keep the index small. *)

(** {2 hash63: unboxed fingerprints}

    An xxh-style hash defined over the native [int] width (63 bits on a
    64-bit platform): words are folded as two exact 32-bit limbs with
    untagged arithmetic, so fingerprinting a block allocates nothing.
    Used by the dedup index, which stores truncated hashes and always
    byte-verifies candidates, so the narrower width costs nothing but a
    marginally higher (still verified-away) collision rate. *)

val hash63 : ?seed:int -> bytes -> pos:int -> len:int -> int
(** Fingerprint a slice; the result uses the full native-int range and
    may be negative. @raise Invalid_argument on a bad range. *)

val hash63_string : ?seed:int -> string -> int

val hash63_ref : ?seed:int -> bytes -> pos:int -> len:int -> int
(** Byte-at-a-time reference for {!hash63}; property-tested identical. *)

val truncate_int : int -> bits:int -> int
(** Keep the low [bits] bits of a {!hash63} fingerprint (non-negative for
    [bits < 63]). *)

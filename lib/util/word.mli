(** Unchecked word access for the data-plane kernels.

    The word-at-a-time kernels validate their ranges once on entry and
    then touch every word of the buffer; these primitives skip the
    per-access bounds check the [Bytes] accessors repeat. They are
    declared [external] in this interface on purpose: compiler
    primitives compile inline at every call site, where an ordinary
    cross-module function would cost a call and box its [int64] result
    under the non-flambda ocamlopt this repo builds with. Accesses are
    native-endian — each kernel pairs them with a local
    [if Sys.big_endian then swap64 ...] wrapper (small same-module
    functions do inline), mirroring how the stdlib builds its checked
    little-endian accessors.

    {b The caller owns the bounds proof}: reading or writing past the
    buffer is undefined behaviour, exactly as with [Bytes.unsafe_get]. *)

external unsafe_get_64 : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
(** Load 8 native-endian bytes. Requires [i >= 0 && i + 8 <= length b]. *)

external unsafe_set_64 : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"
(** Store 8 native-endian bytes. Requires [i >= 0 && i + 8 <= length b]. *)

external unsafe_get_32 : Bytes.t -> int -> int32 = "%caml_bytes_get32u"
(** Load 4 native-endian bytes. Requires [i >= 0 && i + 4 <= length b]. *)

external swap64 : int64 -> int64 = "%bswap_int64"
(** Byte-swap, for little-endian semantics on big-endian hosts. *)

external swap32 : int32 -> int32 = "%bswap_int32"
(** Byte-swap, for little-endian semantics on big-endian hosts. *)

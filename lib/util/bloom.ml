(* Bloom filter over string keys, used to fence metadata-pyramid patches
   (paper §4.9: metadata pages must be cheap to consult — most lookups
   should touch only the patches that can actually contain the key).

   Double hashing (Kirsch–Mitzenmacher): two xxhash64 passes with
   different seeds generate all k probe positions, so a membership test
   costs two hashes regardless of k and allocates nothing. *)

type t = {
  bits : Bytes.t;
  nbits : int;
  k : int; (* probes per key *)
  mutable entries : int;
}

let seed2 = 0x9E3779B97F4A7C15L

let create ?(fp_rate = 0.01) ~expected () =
  if fp_rate <= 0. || fp_rate >= 1. then invalid_arg "Bloom.create: fp_rate";
  let n = max 1 expected in
  (* optimal bits: m = -n ln p / (ln 2)^2; optimal probes: k = m/n ln 2 *)
  let m = int_of_float (ceil (-.float_of_int n *. log fp_rate /. (log 2. *. log 2.))) in
  let nbytes = max 8 ((m + 7) / 8) in
  let nbits = nbytes * 8 in
  let k =
    let ideal = Float.round (float_of_int nbits /. float_of_int n *. log 2.) in
    min 16 (max 1 (int_of_float ideal))
  in
  { bits = Bytes.make nbytes '\000'; nbits; k; entries = 0 }

let set_bit bits i =
  let byte = i lsr 3 and bit = i land 7 in
  Bytes.unsafe_set bits byte
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get bits byte) lor (1 lsl bit)))

let get_bit bits i =
  let byte = i lsr 3 and bit = i land 7 in
  Char.code (Bytes.unsafe_get bits byte) land (1 lsl bit) <> 0

let hash_pair key =
  let b = Bytes.unsafe_of_string key in
  let len = String.length key in
  let h1 = Int64.to_int (Xxhash.hash b ~pos:0 ~len) land max_int in
  let h2 = Int64.to_int (Xxhash.hash ~seed:seed2 b ~pos:0 ~len) land max_int in
  (h1, h2)

let add t key =
  let h1, h2 = hash_pair key in
  let m = t.nbits in
  let step = 1 + (h2 mod (m - 1)) in
  let idx = ref (h1 mod m) in
  for _ = 1 to t.k do
    set_bit t.bits !idx;
    idx := !idx + step;
    if !idx >= m then idx := !idx - m
  done;
  t.entries <- t.entries + 1

let mem_hashed t (h1, h2) =
  let m = t.nbits in
  let step = 1 + (h2 mod (m - 1)) in
  let idx = ref (h1 mod m) in
  let hit = ref true in
  (try
     for _ = 1 to t.k do
       if not (get_bit t.bits !idx) then raise Exit;
       idx := !idx + step;
       if !idx >= m then idx := !idx - m
     done
   with Exit -> hit := false);
  !hit

let mem t key = mem_hashed t (hash_pair key)

let nbits t = t.nbits
let hash_count t = t.k
let entries t = t.entries

let fill_ratio t =
  let set = ref 0 in
  Bytes.iter
    (fun c ->
      let b = Char.code c in
      for i = 0 to 7 do
        if b land (1 lsl i) <> 0 then incr set
      done)
    t.bits;
  float_of_int !set /. float_of_int t.nbits

(* HDR-style bucketing: a sample v >= 1 is placed by (exponent, mantissa
   slice). We use [sub_bits] bits of sub-bucket resolution per power of two,
   giving relative error <= 2^-sub_bits. Values below 1 share bucket 0. *)

let sub_bits = 6
let sub_count = 1 lsl sub_bits
let max_exp = 62
let bucket_count = (max_exp + 1) * sub_count

type t = {
  buckets : int array;
  mutable total : int;
  mutable sum : float;
  mutable max_seen : float;
}

let create () =
  { buckets = Array.make bucket_count 0; total = 0; sum = 0.0; max_seen = 0.0 }

let index_of v =
  if v < 1.0 then 0
  else begin
    let iv = int_of_float v in
    let exp =
      (* position of the highest set bit *)
      let rec find e x = if x <= 1 then e else find (e + 1) (x lsr 1) in
      find 0 iv
    in
    if exp < sub_bits then iv (* small values get exact buckets *)
    else begin
      let shift = exp - sub_bits in
      let sub = (iv lsr shift) land (sub_count - 1) in
      ((exp - sub_bits + 1) * sub_count) + sub
    end
  end

(* Upper bound of the bucket containing index i: inverse of [index_of]. *)
let bound_of i =
  if i < sub_count then float_of_int i
  else begin
    let exp = (i / sub_count) + sub_bits - 1 in
    let sub = i mod sub_count in
    let shift = exp - sub_bits in
    float_of_int (((sub lor sub_count) lsl shift) lor ((1 lsl shift) - 1))
  end

let record_n t v n =
  let v = if Float.is_nan v || v < 0.0 then 0.0 else v in
  let i = min (bucket_count - 1) (index_of v) in
  t.buckets.(i) <- t.buckets.(i) + n;
  t.total <- t.total + n;
  t.sum <- t.sum +. (v *. float_of_int n);
  if v > t.max_seen then t.max_seen <- v

let record t v = record_n t v 1

let count t = t.total
let mean t = if t.total = 0 then 0.0 else t.sum /. float_of_int t.total
let max_value t = t.max_seen

let percentile t p =
  if t.total = 0 then 0.0
  else begin
    let target =
      let x = int_of_float (ceil (p /. 100.0 *. float_of_int t.total)) in
      if x < 1 then 1 else min x t.total
    in
    let rec scan i acc =
      if i >= bucket_count then t.max_seen
      else begin
        let acc = acc + t.buckets.(i) in
        if acc >= target then Float.min (bound_of i) t.max_seen else scan (i + 1) acc
      end
    in
    scan 0 0
  end

let to_buckets t =
  let acc = ref [] in
  for i = bucket_count - 1 downto 0 do
    if t.buckets.(i) > 0 then acc := (bound_of i, t.buckets.(i)) :: !acc
  done;
  !acc

let quantiles t qs =
  List.map
    (fun q ->
      if q < 0.0 || q > 1.0 then invalid_arg "Histogram.quantiles: q outside [0, 1]";
      percentile t (q *. 100.0))
    qs

let merge_into ~src ~dst =
  Array.iteri (fun i n -> dst.buckets.(i) <- dst.buckets.(i) + n) src.buckets;
  dst.total <- dst.total + src.total;
  dst.sum <- dst.sum +. src.sum;
  if src.max_seen > dst.max_seen then dst.max_seen <- src.max_seen

let clear t =
  Array.fill t.buckets 0 bucket_count 0;
  t.total <- 0;
  t.sum <- 0.0;
  t.max_seen <- 0.0

let pp_summary ppf t =
  Fmt.pf ppf "n=%d mean=%.1f p50=%.0f p99=%.0f p99.9=%.0f max=%.0f" t.total
    (mean t) (percentile t 50.0) (percentile t 99.0) (percentile t 99.9)
    t.max_seen

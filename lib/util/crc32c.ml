(* CRC-32C with the Castagnoli polynomial (reflected 0x82F63B78).

   Two kernels share one set of tables:
   - [update] is the production kernel: slicing-by-8 over
     [Bytes.get_int64_le], all arithmetic in untagged [int] (the 64-bit
     word is split into two exact 32-bit halves, so no [Int32] boxing and
     no lost bit 63). Eight bytes cost eight table lookups and one load.
   - [update_ref] is the original byte-at-a-time [Int32] kernel, kept as
     the reference the fast path is property-tested against.

   Tables are built eagerly at module init: [lazy] put a force (and a
   branch) on every call of a kernel that runs on every stored byte. *)

(* table.(0) is the classic byte table; table.(k).(n) extends it so that
   table.(k).(n) = crc of byte n followed by k zero bytes — the identity
   slicing-by-8 needs to consume 8 bytes per step. *)
let table =
  let t = Array.make_matrix 8 256 0 in
  for n = 0 to 255 do
    let c = ref n in
    for _ = 0 to 7 do
      c := if !c land 1 <> 0 then 0x82F63B78 lxor (!c lsr 1) else !c lsr 1
    done;
    t.(0).(n) <- !c
  done;
  for k = 1 to 7 do
    for n = 0 to 255 do
      let prev = t.(k - 1).(n) in
      t.(k).(n) <- t.(0).(prev land 0xFF) lxor (prev lsr 8)
    done
  done;
  t

(* little-endian view over Word's unchecked native-endian load; local so
   the non-flambda inliner folds it into the loop *)
let[@inline always] get64_le b i =
  if Sys.big_endian then Word.swap64 (Word.unsafe_get_64 b i) else Word.unsafe_get_64 b i

let t0 = table.(0)
let t1 = table.(1)
let t2 = table.(2)
let t3 = table.(3)
let t4 = table.(4)
let t5 = table.(5)
let t6 = table.(6)
let t7 = table.(7)

let update crc buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Crc32c.update";
  let started = Kernel_stats.tick () in
  let stop = pos + len in
  let c = ref (Int32.to_int crc land 0xFFFFFFFF lxor 0xFFFFFFFF) in
  let i = ref pos in
  while !i + 8 <= stop do
    (* unchecked load: the loop condition is the bounds proof *)
    let w = get64_le buf !i in
    let lo = Int64.to_int w land 0xFFFFFFFF lxor !c in
    let hi = Int64.to_int (Int64.shift_right_logical w 32) land 0xFFFFFFFF in
    c :=
      Array.unsafe_get t7 (lo land 0xFF)
      lxor Array.unsafe_get t6 ((lo lsr 8) land 0xFF)
      lxor Array.unsafe_get t5 ((lo lsr 16) land 0xFF)
      lxor Array.unsafe_get t4 (lo lsr 24)
      lxor Array.unsafe_get t3 (hi land 0xFF)
      lxor Array.unsafe_get t2 ((hi lsr 8) land 0xFF)
      lxor Array.unsafe_get t1 ((hi lsr 16) land 0xFF)
      lxor Array.unsafe_get t0 (hi lsr 24);
    i := !i + 8
  done;
  while !i < stop do
    c := Array.unsafe_get t0 ((!c lxor Bytes.get_uint8 buf !i) land 0xFF) lxor (!c lsr 8);
    incr i
  done;
  Kernel_stats.tock Kernel_stats.crc ~bytes:len ~t0:started;
  Int32.of_int (!c lxor 0xFFFFFFFF)

(* digest/digest_string are thin wrappers so every caller funnels through
   the one combine path above. *)
let digest buf ~pos ~len = update 0l buf ~pos ~len

let digest_string s =
  update 0l (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

(* ---------- reference kernel (original implementation) ---------- *)

let table_ref =
  let t = Array.make 256 0l in
  for n = 0 to 255 do
    t.(n) <- Int32.of_int table.(0).(n)
  done;
  t

let update_ref crc buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Crc32c.update_ref";
  let t = table_ref in
  let c = ref (Int32.logxor crc 0xFFFFFFFFl) in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Bytes.get_uint8 buf i))) 0xFFl)
    in
    c := Int32.logxor t.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.logxor !c 0xFFFFFFFFl

let digest_ref buf ~pos ~len = update_ref 0l buf ~pos ~len

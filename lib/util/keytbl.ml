(* Specialized hash tables for the data/metadata hot paths. The generic
   [Hashtbl] interface hashes and compares through the polymorphic runtime
   primitives — a structural-traversal C call per probe, dispatching on the
   value's runtime shape. These instantiations bind [equal]/[hash] at the
   key type, so probes on the hot paths monomorphize.

   The hash functions are deliberately value-identical to [Hashtbl.hash]
   ([String.hash] is specified to agree with it), so swapping a polymorphic
   table for one of these preserves bucket layout and therefore iteration
   order — behaviour stays byte-identical, which the pyramid/dedup qcheck
   suites assert. *)

module Str = Hashtbl.Make (struct
  type t = string

  let equal = String.equal
  let hash = String.hash
end)

module Int = Hashtbl.Make (struct
  type t = int

  let equal = Stdlib.Int.equal
  let hash = Hashtbl.hash
end)

module I64 = Hashtbl.Make (struct
  type t = int64

  let equal = Int64.equal
  let hash = Hashtbl.hash
end)

module Ipair = Hashtbl.Make (struct
  type t = int * int

  let equal (a1, b1) (a2, b2) = a1 = a2 && b1 = b2
  let hash = Hashtbl.hash
end)

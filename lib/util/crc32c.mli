(** CRC-32C (Castagnoli) checksums.

    Segment headers, cblock frames, and NVRAM log entries carry CRC-32C
    checksums so that recovery can distinguish torn or corrupted writes from
    valid data (paper §4.3: "recovery must be robust against corrupted
    pages").

    The production kernel is slicing-by-8 over 64-bit little-endian loads
    with untagged [int] arithmetic; the original byte-at-a-time [Int32]
    kernel is retained as [update_ref]/[digest_ref] and the two are
    property-tested bit-identical. *)

val digest : bytes -> pos:int -> len:int -> int32
(** Checksum of a byte slice. @raise Invalid_argument on a bad range. *)

val digest_string : string -> int32
(** Checksum of a whole string. *)

val update : int32 -> bytes -> pos:int -> len:int -> int32
(** Incremental update: [update crc buf ~pos ~len] extends a running
    checksum previously returned by {!digest} or {!update}. *)

(** {2 Reference kernel} *)

val update_ref : int32 -> bytes -> pos:int -> len:int -> int32
(** The original byte-at-a-time kernel; same results as {!update}. *)

val digest_ref : bytes -> pos:int -> len:int -> int32

(** Deterministic pseudo-random number generation (SplitMix64).

    All randomness in the simulator flows through explicitly-seeded [Rng.t]
    values so that every experiment is reproducible bit-for-bit. SplitMix64
    is small, fast, and passes BigCrush; it is also splittable, which lets
    independent subsystems derive non-overlapping streams from one seed. *)

type t
(** Mutable generator state. *)

val create : seed:int64 -> t
(** [create ~seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t]. *)

val next_int64 : t -> int64
(** Next 64-bit value, uniform over all 2^64 values. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin flip. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed value with the given mean (inter-arrival
    times for open-loop workloads). *)

val pareto : t -> shape:float -> scale:float -> float
(** Pareto-distributed value; used for heavy-tailed object popularity. *)

val zipf : t -> n:int -> theta:float -> int
(** [zipf t ~n ~theta] samples a rank in [\[0, n)] under a Zipfian
    distribution with skew [theta] (0 = uniform), using the rejection
    method of Gray et al. as popularised by YCSB. *)

val bytes : t -> int -> bytes
(** [bytes t len] is a fresh buffer of [len] uniformly random bytes. *)

val fill_bytes : t -> bytes -> pos:int -> len:int -> unit
(** Fill a slice of an existing buffer with random bytes. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val with_seed_report : seed:int64 -> (t -> 'a) -> 'a
(** [with_seed_report ~seed f] runs [f] with a fresh generator seeded by
    [seed].  If [f] raises (a failing assertion, say), the seed is printed
    to stderr before the exception propagates — so a failing randomized
    test always tells you how to reproduce it. *)

(** Polymorphic binary min-heap.

    Backs the discrete-event simulator's pending-event queue and the
    garbage collector's "emptiest segment first" victim selection. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit
val peek : 'a t -> 'a option
val pop : 'a t -> 'a option
(** Remove and return the minimum. The vacated slot is overwritten and
    the backing array shrunk at quarter occupancy, so retained memory is
    bounded by the live contents, not the high-water mark. *)

val clear : 'a t -> unit
val to_list : 'a t -> 'a list
(** Elements in arbitrary (heap) order; the heap is unchanged. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = seed }

(* Finalizer from the SplitMix64 reference implementation. *)
let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = next_int64 t in
  { state = mix seed }

let int t bound =
  assert (bound > 0);
  (* shift by 2: a 62-bit value always fits in OCaml's 63-bit positive int *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

let float t bound =
  (* 53 high bits -> uniform float in [0,1). *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let exponential t ~mean =
  let u = float t 1.0 in
  -.mean *. log (1.0 -. u)

let pareto t ~shape ~scale =
  let u = float t 1.0 in
  scale /. ((1.0 -. u) ** (1.0 /. shape))

(* Zipfian sampling after Gray et al., "Quickly generating billion-record
   synthetic databases"; constants computed per call site would be wasteful,
   so we memoise on (n, theta). *)
let zipf_cache : (int * float, float * float * float) Hashtbl.t = Hashtbl.create 7

let zipf_constants n theta =
  match Hashtbl.find_opt zipf_cache (n, theta) with
  | Some c -> c
  | None ->
    let zetan = ref 0.0 in
    for i = 1 to n do
      zetan := !zetan +. (1.0 /. (Float.of_int i ** theta))
    done;
    let zeta2 = 1.0 +. (1.0 /. (2.0 ** theta)) in
    let alpha = 1.0 /. (1.0 -. theta) in
    let eta =
      (1.0 -. ((2.0 /. Float.of_int n) ** (1.0 -. theta)))
      /. (1.0 -. (zeta2 /. !zetan))
    in
    let c = (alpha, eta, !zetan) in
    Hashtbl.replace zipf_cache (n, theta) c;
    c

let zipf t ~n ~theta =
  assert (n > 0);
  if theta <= 0.0 then int t n
  else begin
    let alpha, eta, zetan = zipf_constants n theta in
    let u = float t 1.0 in
    let uz = u *. zetan in
    if uz < 1.0 then 0
    else if uz < 1.0 +. (0.5 ** theta) then 1
    else
      let rank =
        Float.of_int n *. (((eta *. u) -. eta +. 1.0) ** alpha)
      in
      min (n - 1) (int_of_float rank)
  end

let fill_bytes t buf ~pos ~len =
  let i = ref pos in
  let stop = pos + len in
  while !i + 8 <= stop do
    Bytes.set_int64_le buf !i (next_int64 t);
    i := !i + 8
  done;
  if !i < stop then begin
    let v = ref (next_int64 t) in
    while !i < stop do
      Bytes.set_uint8 buf !i (Int64.to_int (Int64.logand !v 0xFFL));
      v := Int64.shift_right_logical !v 8;
      incr i
    done
  end

let bytes t len =
  let buf = Bytes.create len in
  fill_bytes t buf ~pos:0 ~len;
  buf

let with_seed_report ~seed f =
  try f (create ~seed)
  with exn ->
    Printf.eprintf "  [rng] failing seed: %LdL — rerun with this seed to reproduce\n%!" seed;
    raise exn

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

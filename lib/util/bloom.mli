(** Bloom filter over string keys.

    Backs the per-patch key filters on the metadata pyramids: a negative
    [mem] proves the key is absent from the patch, so the lookup path can
    skip its binary search entirely. False positives only cost a wasted
    probe; there are no false negatives. *)

type t

val create : ?fp_rate:float -> expected:int -> unit -> t
(** [create ~expected ()] sizes the filter for [expected] distinct keys
    at the target false-positive rate (default 1%). *)

val add : t -> string -> unit
val mem : t -> string -> bool
(** Allocation-free membership probe: [false] means definitely absent. *)

val hash_pair : string -> int * int
(** The two digests all probe positions derive from. Callers testing one
    key against many filters hash once and reuse the pair. *)

val mem_hashed : t -> int * int -> bool
(** [mem] with a precomputed [hash_pair] of the key. *)

val nbits : t -> int
val hash_count : t -> int
val entries : t -> int
(** Number of [add] calls so far. *)

val fill_ratio : t -> float
(** Fraction of bits set — diagnostic for tests. *)

let p1 = 0x9E3779B185EBCA87L
let p2 = 0xC2B2AE3D27D4EB4FL
let p3 = 0x165667B19E3779F9L
let p4 = 0x85EBCA77C2B2AE63L
let p5 = 0x27D4EB2F165667C5L

let rotl x r =
  Int64.logor (Int64.shift_left x r) (Int64.shift_right_logical x (64 - r))

let round acc input =
  let acc = Int64.add acc (Int64.mul input p2) in
  Int64.mul (rotl acc 31) p1

let merge_round acc v =
  let acc = Int64.logxor acc (round 0L v) in
  Int64.add (Int64.mul acc p1) p4

let finalize h =
  let h = Int64.(mul (logxor h (shift_right_logical h 33)) p2) in
  let h = Int64.(mul (logxor h (shift_right_logical h 29)) p3) in
  Int64.(logxor h (shift_right_logical h 32))

let hash ?(seed = 0L) buf ~pos ~len =
  assert (pos >= 0 && len >= 0 && pos + len <= Bytes.length buf);
  let stop = pos + len in
  let p = ref pos in
  let h =
    if len >= 32 then begin
      let v1 = ref (Int64.add (Int64.add seed p1) p2)
      and v2 = ref (Int64.add seed p2)
      and v3 = ref seed
      and v4 = ref (Int64.sub seed p1) in
      let limit = stop - 32 in
      while !p <= limit do
        v1 := round !v1 (Bytes.get_int64_le buf !p);
        v2 := round !v2 (Bytes.get_int64_le buf (!p + 8));
        v3 := round !v3 (Bytes.get_int64_le buf (!p + 16));
        v4 := round !v4 (Bytes.get_int64_le buf (!p + 24));
        p := !p + 32
      done;
      let h =
        Int64.add
          (Int64.add (rotl !v1 1) (rotl !v2 7))
          (Int64.add (rotl !v3 12) (rotl !v4 18))
      in
      let h = merge_round h !v1 in
      let h = merge_round h !v2 in
      let h = merge_round h !v3 in
      merge_round h !v4
    end
    else Int64.add seed p5
  in
  let h = ref (Int64.add h (Int64.of_int len)) in
  while !p + 8 <= stop do
    let k = round 0L (Bytes.get_int64_le buf !p) in
    h := Int64.add (Int64.mul (rotl (Int64.logxor !h k) 27) p1) p4;
    p := !p + 8
  done;
  if !p + 4 <= stop then begin
    let k = Int64.of_int32 (Bytes.get_int32_le buf !p) in
    let k = Int64.logand k 0xFFFFFFFFL in
    h := Int64.add (Int64.mul (rotl (Int64.logxor !h (Int64.mul k p1)) 23) p2) p3;
    p := !p + 4
  end;
  while !p < stop do
    let k = Int64.of_int (Bytes.get_uint8 buf !p) in
    h := Int64.mul (rotl (Int64.logxor !h (Int64.mul k p5)) 11) p1;
    incr p
  done;
  finalize !h

let hash_string ?seed s =
  hash ?seed (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

let truncate h ~bits =
  if bits >= 64 then h
  else Int64.logand h (Int64.sub (Int64.shift_left 1L bits) 1L)

(* ---------- hash63: the dedup fingerprint kernel ----------

   xxh64 proper cannot be computed in untagged [int]s — its 64-bit
   rotations pull bit 63 back in, and a native int only has 63. Dedup does
   not need xxh64 specifically (the paper stores hashes "no larger than 64
   bits" and always byte-verifies), so fingerprinting gets its own
   xxh-style kernel defined directly over the native int width: all
   arithmetic wraps mod 2^63 for free, and nothing boxes. Like xxh64 it
   runs four independent lanes over 32-byte stripes — the mix chain is
   multiply-latency-bound, so one serial lane would leave the multiplier
   idle between folds. Each fold consumes a whole 63-bit-truncated word:
   an unchecked load plus [Int64.to_int] on the fast path, eight byte
   loads assembled with shifts in [hash63_ref] (a shift past bit 62 wraps
   mod 2^63 exactly as the truncated load does, so the two agree bit for
   bit — the property suite keeps them that way). *)

(* little-endian view over Word's unchecked native-endian load; local so
   the non-flambda inliner folds it into the loops *)
let[@inline always] get64_le b i =
  if Sys.big_endian then Word.swap64 (Word.unsafe_get_64 b i) else Word.unsafe_get_64 b i

(* odd multipliers below 2^62 so the literals are portable native ints *)
let q1 = 0x2545F4914F6CDD1D
let q2 = 0x27220A95FE8DB6E5
let q3 = 0x165667B19E3779F9

(* fold one word into a lane (63-bit rotate + multiply) *)
let mix63 h w =
  let h = h lxor (w * q1) in
  let h = (h lsl 27) lor (h lsr 36) in
  h * q2

let finalize63 h =
  let h = (h lxor (h lsr 33)) * q1 in
  let h = (h lxor (h lsr 29)) * q3 in
  h lxor (h lsr 32)

(* merge the four lane states ahead of finalization *)
let merge63 h1 h2 h3 h4 =
  let a = h1 lxor ((h2 lsl 24) lor (h2 lsr 39)) in
  let b = h3 lxor ((h4 lsl 41) lor (h4 lsr 22)) in
  finalize63 ((a * q1) lxor ((b lsl 13) lor (b lsr 50)))

let hash63 ?(seed = 0) buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Xxhash.hash63";
  let t0 = Kernel_stats.tick () in
  let stop = pos + len in
  let h1 = ref (seed + (len * q2) + q3)
  and h2 = ref ((seed lxor q1) + (len * q3) + q2)
  and h3 = ref (seed + (len * q1) + q2)
  and h4 = ref ((seed lxor q3) + (len * q2) + q1) in
  let i = ref pos in
  while !i + 32 <= stop do
    h1 := mix63 !h1 (Int64.to_int (get64_le buf !i));
    h2 := mix63 !h2 (Int64.to_int (get64_le buf (!i + 8)));
    h3 := mix63 !h3 (Int64.to_int (get64_le buf (!i + 16)));
    h4 := mix63 !h4 (Int64.to_int (get64_le buf (!i + 24)));
    i := !i + 32
  done;
  while !i + 8 <= stop do
    h1 := mix63 !h1 (Int64.to_int (get64_le buf !i));
    i := !i + 8
  done;
  if !i < stop then begin
    (* 1..7 trailing bytes as one partial word; len is already mixed in *)
    let v = ref 0 and shift = ref 0 in
    while !i < stop do
      v := !v lor (Bytes.get_uint8 buf !i lsl !shift);
      shift := !shift + 8;
      incr i
    done;
    h2 := mix63 !h2 !v
  end;
  Kernel_stats.tock Kernel_stats.fingerprint ~bytes:len ~t0;
  merge63 !h1 !h2 !h3 !h4

let hash63_string ?seed s =
  hash63 ?seed (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

let hash63_ref ?(seed = 0) buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Xxhash.hash63_ref";
  let stop = pos + len in
  let word at =
    Bytes.get_uint8 buf at
    lor (Bytes.get_uint8 buf (at + 1) lsl 8)
    lor (Bytes.get_uint8 buf (at + 2) lsl 16)
    lor (Bytes.get_uint8 buf (at + 3) lsl 24)
    lor (Bytes.get_uint8 buf (at + 4) lsl 32)
    lor (Bytes.get_uint8 buf (at + 5) lsl 40)
    lor (Bytes.get_uint8 buf (at + 6) lsl 48)
    lor (Bytes.get_uint8 buf (at + 7) lsl 56)
  in
  let h1 = ref (seed + (len * q2) + q3)
  and h2 = ref ((seed lxor q1) + (len * q3) + q2)
  and h3 = ref (seed + (len * q1) + q2)
  and h4 = ref ((seed lxor q3) + (len * q2) + q1) in
  let i = ref pos in
  while !i + 32 <= stop do
    h1 := mix63 !h1 (word !i);
    h2 := mix63 !h2 (word (!i + 8));
    h3 := mix63 !h3 (word (!i + 16));
    h4 := mix63 !h4 (word (!i + 24));
    i := !i + 32
  done;
  while !i + 8 <= stop do
    h1 := mix63 !h1 (word !i);
    i := !i + 8
  done;
  if !i < stop then begin
    let v = ref 0 and shift = ref 0 in
    while !i < stop do
      v := !v lor (Bytes.get_uint8 buf !i lsl !shift);
      shift := !shift + 8;
      incr i
    done;
    h2 := mix63 !h2 !v
  end;
  merge63 !h1 !h2 !h3 !h4

let truncate_int h ~bits =
  if bits >= Sys.int_size then h else h land ((1 lsl bits) - 1)

type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
}

let create ~cmp = { cmp; data = [||]; size = 0 }

let length t = t.size
let is_empty t = t.size = 0

let grow t x =
  let cap = Array.length t.data in
  if t.size >= cap then begin
    let ncap = max 16 (2 * cap) in
    let nd = Array.make ncap x in
    Array.blit t.data 0 nd 0 t.size;
    t.data <- nd
  end

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.data.(i) t.data.(parent) < 0 then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.cmp t.data.(l) t.data.(!smallest) < 0 then smallest := l;
  if r < t.size && t.cmp t.data.(r) t.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t x =
  grow t x;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some t.data.(0)

(* Slots in data[size..cap) must never hold the only reference to a dead
   element: the sim's event queue pops millions of events, and a popped
   closure pinned by its vacated slot lives until that slot happens to be
   overwritten by a later push. Pop therefore overwrites the vacated slot
   with a live element (the root it just moved), shrinks the array at
   quarter occupancy, and drops it entirely when empty — so the heap
   retains at most O(live) elements, never O(high-water mark). *)
let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      t.data.(t.size) <- t.data.(0);
      sift_down t 0;
      let cap = Array.length t.data in
      if cap > 16 && t.size * 4 < cap then
        t.data <- Array.sub t.data 0 (max 16 (2 * t.size))
    end
    else t.data <- [||];
    Some top
  end

let clear t =
  t.size <- 0;
  t.data <- [||]

let to_list t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (t.data.(i) :: acc) in
  go (t.size - 1) []

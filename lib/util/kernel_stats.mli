(** Throughput counters for the word-at-a-time data-plane kernels.

    Every fast kernel (CRC32c, GF(256) multiply-accumulate, RS encode, LZ
    compress/decompress, dedup fingerprint) bumps its cell here, so a
    controller can export [kernels/<name>_bytes] / [kernels/<name>_ns]
    telemetry and the bench harness can report MB/s without wrapping the
    kernels in timing shims. [bytes]/[calls] are always counted;
    [ns] accumulates only while a clock is installed via {!set_clock}
    (the registry sits below [purity.telemetry] in the dependency order,
    so the bridge lives in [State.register_derived_telemetry]). *)

type kernel = {
  name : string;
  mutable bytes : int;
  mutable calls : int;
  mutable ns : int;
}

val crc : kernel
val gf : kernel
val rs : kernel
val lz_compress : kernel
val lz_decompress : kernel
val fingerprint : kernel

val all : kernel list
(** Every kernel above, for telemetry registration loops. *)

val set_clock : (unit -> int) option -> unit
(** Install (or remove) a wall-clock nanosecond source. While installed,
    kernels also accumulate [ns]. *)

val tick : unit -> int
(** Read the clock (0 when none is installed); pair with {!tock}. *)

val tock : kernel -> bytes:int -> t0:int -> unit
(** Record one kernel invocation: [bytes] processed, started at [tick]
    result [t0]. *)

val reset : unit -> unit
(** Zero every cell (bench isolation). *)

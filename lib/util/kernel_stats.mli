(** Throughput counters for the word-at-a-time data-plane kernels.

    Every fast kernel (CRC32c, GF(256) multiply-accumulate, RS encode, LZ
    compress/decompress, dedup fingerprint) bumps its cell here, so a
    controller can export [kernels/<name>_bytes] / [kernels/<name>_ns]
    telemetry and the bench harness can report MB/s without wrapping the
    kernels in timing shims. [bytes]/[calls] are always counted;
    [ns] accumulates only while a clock is installed via {!set_clock}
    (the registry sits below [purity.telemetry] in the dependency order,
    so the bridge lives in [State.register_derived_telemetry]).

    The named cells belong to the main domain. Kernels invoked on a
    [Purity_par.Pool] worker accumulate into a domain-local shadow
    instead; the pool moves those shadows back via {!drain_shadow} (on
    the worker, after its chunk) and {!absorb} (on the submitter, after
    the join), so totals stay race-free and identical to a serial run. *)

type kernel = {
  name : string;
  index : int;  (** slot in the per-domain shadow array *)
  mutable bytes : int;
  mutable calls : int;
  mutable ns : int;
}

val crc : kernel
val gf : kernel
val rs : kernel
val lz_compress : kernel
val lz_decompress : kernel
val fingerprint : kernel

val all : kernel list
(** Every kernel above, for telemetry registration loops. *)

val set_clock : (unit -> int) option -> unit
(** Install (or remove) a wall-clock nanosecond source. While installed,
    kernels also accumulate [ns]. The source must be safe to call from
    any domain. *)

val tick : unit -> int
(** Read the clock (0 when none is installed); pair with {!tock}. *)

val tock : kernel -> bytes:int -> t0:int -> unit
(** Record one kernel invocation: [bytes] processed, started at [tick]
    result [t0]. On the main domain this updates the kernel cell
    directly; on any other domain it updates the domain-local shadow. *)

val shadow_cells : int
(** Size of a shadow export array ([3 * number of kernels]). *)

val drain_shadow : into:int array -> unit
(** Add the calling domain's shadow into [into] (length
    {!shadow_cells}) and zero the shadow. Called by pool workers after
    each batch chunk. *)

val absorb : int array -> unit
(** Fold a drained shadow array into the main kernel cells and zero it.
    Main domain only. *)

val reset : unit -> unit
(** Zero every cell (bench isolation). *)

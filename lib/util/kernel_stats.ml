(* Per-kernel throughput accounting for the data-plane kernels (CRC32c,
   GF(256) XOR-multiply, LZ, fingerprinting). Bytes and call counts are
   always maintained — a couple of int stores per kernel invocation, noise
   next to the word loops they sit beside. Nanosecond totals need a real
   clock; the simulator has no business paying a syscall per cblock, so
   [ns] only accumulates while a wall-clock source is installed (the bench
   harness installs one around its runs). *)

type kernel = {
  name : string;
  mutable bytes : int;  (* payload bytes processed by the fast kernel *)
  mutable calls : int;
  mutable ns : int;  (* wall-clock ns, only while a clock is installed *)
}

let make name = { name; bytes = 0; calls = 0; ns = 0 }
let crc = make "crc"
let gf = make "gf"
let rs = make "rs"
let lz_compress = make "lz_compress"
let lz_decompress = make "lz_decompress"
let fingerprint = make "fingerprint"
let all = [ crc; gf; rs; lz_compress; lz_decompress; fingerprint ]

(* wall-clock ns source; [None] outside bench runs *)
let clock : (unit -> int) option ref = ref None

let set_clock c = clock := c

let tick () = match !clock with None -> 0 | Some now -> now ()

let tock k ~bytes ~t0 =
  k.bytes <- k.bytes + bytes;
  k.calls <- k.calls + 1;
  match !clock with None -> () | Some now -> k.ns <- k.ns + now () - t0

let reset () =
  List.iter
    (fun k ->
      k.bytes <- 0;
      k.calls <- 0;
      k.ns <- 0)
    all

(* Per-kernel throughput accounting for the data-plane kernels (CRC32c,
   GF(256) XOR-multiply, LZ, fingerprinting). Bytes and call counts are
   always maintained — a couple of int stores per kernel invocation, noise
   next to the word loops they sit beside. Nanosecond totals need a real
   clock; the simulator has no business paying a syscall per cblock, so
   [ns] only accumulates while a wall-clock source is installed (the bench
   harness installs one around its runs).

   Domain safety: the named cells below belong to the main domain. A
   kernel invoked on a pool worker must not race on them, so off-main
   [tock]s accumulate into a domain-local shadow array instead
   (3 ints per kernel, indexed by [kernel.index]); the pool drains each
   worker's shadow into a per-lane slot at the end of every batch
   ({!drain_shadow}) and the submitting domain folds those slots back
   into the main cells ({!absorb}). Totals are sums, so the aggregate is
   independent of lane scheduling — parallel runs report the same
   bytes/calls as serial ones. *)

type kernel = {
  name : string;
  index : int;  (* slot in the per-domain shadow array *)
  mutable bytes : int;  (* payload bytes processed by the fast kernel *)
  mutable calls : int;
  mutable ns : int;  (* wall-clock ns, only while a clock is installed *)
}

let make name index = { name; index; bytes = 0; calls = 0; ns = 0 }
let crc = make "crc" 0
let gf = make "gf" 1
let rs = make "rs" 2
let lz_compress = make "lz_compress" 3
let lz_decompress = make "lz_decompress" 4
let fingerprint = make "fingerprint" 5
let all = [ crc; gf; rs; lz_compress; lz_decompress; fingerprint ]

(* bytes, calls, ns per kernel *)
let shadow_cells = 3 * List.length all

let shadow_key : int array Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Array.make shadow_cells 0)

(* wall-clock ns source; [None] outside bench runs. Atomic because pool
   workers read it while the bench harness (main) may swap it. *)
let clock : (unit -> int) option Atomic.t = Atomic.make None

let set_clock c = Atomic.set clock c

let tick () = match Atomic.get clock with None -> 0 | Some now -> now ()

let tock k ~bytes ~t0 =
  if Domain.is_main_domain () then begin
    k.bytes <- k.bytes + bytes;
    k.calls <- k.calls + 1;
    match Atomic.get clock with
    | None -> ()
    | Some now -> k.ns <- k.ns + now () - t0
  end
  else begin
    let s = Domain.DLS.get shadow_key in
    let b = k.index * 3 in
    s.(b) <- s.(b) + bytes;
    s.(b + 1) <- s.(b + 1) + 1;
    match Atomic.get clock with
    | None -> ()
    | Some now -> s.(b + 2) <- s.(b + 2) + now () - t0
  end

let drain_shadow ~into =
  let s = Domain.DLS.get shadow_key in
  for i = 0 to shadow_cells - 1 do
    into.(i) <- into.(i) + s.(i);
    s.(i) <- 0
  done

let absorb cells =
  List.iter
    (fun k ->
      let b = k.index * 3 in
      k.bytes <- k.bytes + cells.(b);
      k.calls <- k.calls + cells.(b + 1);
      k.ns <- k.ns + cells.(b + 2);
      cells.(b) <- 0;
      cells.(b + 1) <- 0;
      cells.(b + 2) <- 0)
    all

let reset () =
  List.iter
    (fun k ->
      k.bytes <- 0;
      k.calls <- 0;
      k.ns <- 0)
    all

(** Single-writer epoch-published snapshots.

    The owning (single-writer) domain {!publish}es immutable snapshot
    values; any domain may {!read} wait-free and always observes a
    complete snapshot with a monotonically increasing {!epoch} tag.
    Publishing from more than one domain is a protocol violation (the
    epoch counter would race); the data plane keeps the metadata plane
    single-writer precisely so this cell is enough. *)

type 'a t

val create : 'a -> 'a t
(** Initial snapshot, epoch 0. *)

val publish : 'a t -> 'a -> unit
(** Atomically replace the snapshot and bump the epoch. Single writer only. *)

val read : 'a t -> 'a
(** Wait-free: one atomic load. *)

val epoch : 'a t -> int
val read_tagged : 'a t -> 'a * int

(* A deterministic domain pool for the data plane.

   Purity's controllers saturate multi-core Xeons (paper §2); the
   simulator's data plane — fingerprint, LZ, frame+CRC, RS parity — is
   embarrassingly parallel per block/row, but the whole engine must stay
   byte-for-byte replayable per seed: purity.check digest-compares double
   executions, and torture failures shrink by re-running seeds. So the
   pool trades scheduling freedom for determinism:

   - fixed size: [lanes] parallel lanes decided at creation, never grown;
   - static chunking: a batch of [tasks] work items is split into
     contiguous per-lane chunks by {!chunk} — pure arithmetic over
     (lanes, tasks, lane), independent of timing;
   - no work stealing: a lane only ever runs its own chunk;
   - join in submission order: {!run} returns only after every lane
     finished, and {!map} results land at their task index, so callers
     observe completion order, not scheduling order;
   - seeded per-lane state: {!lane_seed} derives a per-lane RNG seed from
     the pool seed, so any lane-local randomness replays.

   Lane 0 is the submitting (main) domain itself — it executes its own
   chunk while the [lanes - 1] worker domains run theirs, so a pool of n
   lanes uses exactly n cores and a 1-lane pool runs inline with zero
   synchronisation. Exceptions propagate deterministically: after the
   join, the lowest-lane exception (main first) is re-raised.

   Kernel-stats containment: worker domains must not race on the shared
   [Purity_util.Kernel_stats] cells, so kernels called off-main
   accumulate into domain-local shadow cells; each worker drains its
   shadow into a per-lane slot at the end of every batch, and the
   submitter folds the slots into the main cells after the join — totals
   are sums, so they are independent of execution order. *)

module Kernel_stats = Purity_util.Kernel_stats

type batch = {
  b_id : int;
  b_tasks : int;
  b_run : int -> int -> int -> unit; (* lane, lo, len *)
}

type t = {
  lanes : int;
  seed : int64;
  m : Mutex.t;
  wake : Condition.t; (* workers: a new batch is published *)
  idle : Condition.t; (* submitter: the last worker finished *)
  mutable batch : batch option;
  mutable next_batch : int;
  mutable pending : int;
  mutable live : bool;
  errors : exn option array; (* per lane; read by the submitter after join *)
  stats : int array array; (* per-lane drained kernel-stat shadow cells *)
  mutable domains : unit Domain.t array;
}

let lanes t = t.lanes
let is_live t = t.live

(* Static chunking: contiguous [lo, lo+len) per lane, remainder spread
   over the lowest lanes. Pure in (lanes, tasks, lane). *)
let chunk ~lanes ~tasks lane =
  let q = tasks / lanes and r = tasks mod lanes in
  ((lane * q) + min lane r, q + if lane < r then 1 else 0)

let rec worker_loop t lane last =
  Mutex.lock t.m;
  let rec next () =
    if not t.live then None
    else
      match t.batch with
      | Some b when b.b_id > last -> Some b
      | _ ->
        Condition.wait t.wake t.m;
        next ()
  in
  let b = next () in
  Mutex.unlock t.m;
  match b with
  | None -> () (* shutdown *)
  | Some b ->
    let lo, len = chunk ~lanes:t.lanes ~tasks:b.b_tasks lane in
    (try if len > 0 then b.b_run lane lo len with e -> t.errors.(lane) <- Some e);
    Kernel_stats.drain_shadow ~into:t.stats.(lane);
    Mutex.lock t.m;
    t.pending <- t.pending - 1;
    if t.pending = 0 then Condition.signal t.idle;
    Mutex.unlock t.m;
    worker_loop t lane b.b_id

let create ?(seed = 0x9A11E7L) ~domains () =
  if domains < 1 || domains > 64 then invalid_arg "Pool.create: 1 <= domains <= 64";
  let t =
    {
      lanes = domains;
      seed;
      m = Mutex.create ();
      wake = Condition.create ();
      idle = Condition.create ();
      batch = None;
      next_batch = 1;
      pending = 0;
      live = true;
      errors = Array.make domains None;
      stats = Array.init domains (fun _ -> Array.make Kernel_stats.shadow_cells 0);
      domains = [||];
    }
  in
  t.domains <-
    Array.init (domains - 1) (fun i -> Domain.spawn (fun () -> worker_loop t (i + 1) 0));
  t

let shutdown t =
  if t.live then begin
    Mutex.lock t.m;
    t.live <- false;
    Condition.broadcast t.wake;
    Mutex.unlock t.m;
    Array.iter Domain.join t.domains;
    t.domains <- [||]
  end

let run t ~tasks f =
  if tasks < 0 then invalid_arg "Pool.run: negative tasks";
  if t.lanes = 1 || tasks <= 1 then begin
    if tasks > 0 then f ~lane:0 ~lo:0 ~len:tasks
  end
  else begin
    if not t.live then invalid_arg "Pool.run: pool is shut down";
    Mutex.lock t.m;
    let id = t.next_batch in
    t.next_batch <- id + 1;
    t.batch <- Some { b_id = id; b_tasks = tasks; b_run = (fun lane lo len -> f ~lane ~lo ~len) };
    t.pending <- t.lanes - 1;
    Condition.broadcast t.wake;
    Mutex.unlock t.m;
    (* lane 0 = this domain *)
    let lo, len = chunk ~lanes:t.lanes ~tasks 0 in
    (try if len > 0 then f ~lane:0 ~lo ~len with e -> t.errors.(0) <- Some e);
    Mutex.lock t.m;
    while t.pending > 0 do
      Condition.wait t.idle t.m
    done;
    t.batch <- None;
    Mutex.unlock t.m;
    (* fold worker kernel counters into the main cells; totals are sums,
       so the aggregate is independent of lane scheduling *)
    for lane = 1 to t.lanes - 1 do
      Kernel_stats.absorb t.stats.(lane)
    done;
    (* deterministic error propagation: lowest lane wins *)
    let exn = ref None in
    for lane = t.lanes - 1 downto 0 do
      (match t.errors.(lane) with Some e -> exn := Some e | None -> ());
      t.errors.(lane) <- None
    done;
    match !exn with Some e -> raise e | None -> ()
  end

let map t ~tasks f =
  if tasks < 0 then invalid_arg "Pool.map: negative tasks";
  if tasks = 0 then [||]
  else begin
    let out = Array.make tasks None in
    (* distinct indices per lane: no two domains touch the same slot *)
    run t ~tasks (fun ~lane ~lo ~len ->
        for i = lo to lo + len - 1 do
          out.(i) <- Some (f ~lane i)
        done);
    Array.map (function Some v -> v | None -> assert false) out
  end

(* SplitMix-style per-lane seed derivation: stable in (pool seed, lane). *)
let lane_seed t lane =
  if lane < 0 || lane >= t.lanes then invalid_arg "Pool.lane_seed";
  Int64.logxor t.seed (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (lane + 1)))

(* ---------- the process-global pool ---------- *)

let domains_from_env () =
  match Sys.getenv_opt "PURITY_DOMAINS" with
  | None -> 1
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> min n 64
    | _ -> 1)

let global_pool = ref None

let global () =
  match !global_pool with
  | Some p when p.live -> p
  | _ ->
    let p = create ~domains:(domains_from_env ()) () in
    global_pool := Some p;
    p

let set_global_domains domains =
  (match !global_pool with Some p -> shutdown p | None -> ());
  global_pool := Some (create ~domains ())

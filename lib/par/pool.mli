(** Deterministic fixed-size domain pool.

    Work is split into contiguous per-lane chunks by pure arithmetic (no
    work stealing), results join in submission order, and per-lane seeds
    derive from the pool seed — so a parallel run produces byte-identical
    output to a serial run of the same code, and per-seed replay /
    purity.check's digest-compared double execution survive parallelism.

    Lane 0 is the calling domain; a pool with [domains = 1] executes
    everything inline with zero synchronisation. *)

type t

val create : ?seed:int64 -> domains:int -> unit -> t
(** Spawn [domains - 1] worker domains ([1 <= domains <= 64]). *)

val lanes : t -> int
(** Number of parallel lanes, including the calling domain. *)

val is_live : t -> bool

val shutdown : t -> unit
(** Join all worker domains. Idempotent; the pool is unusable after. *)

val chunk : lanes:int -> tasks:int -> int -> int * int
(** [chunk ~lanes ~tasks lane] is the [(lo, len)] contiguous slice of
    [0..tasks-1] owned by [lane] — pure arithmetic, exposed for tests
    and for callers sizing per-lane scratch. *)

val run : t -> tasks:int -> (lane:int -> lo:int -> len:int -> unit) -> unit
(** Execute one batch: each lane [l] runs [f ~lane:l ~lo ~len] on its
    static chunk; returns after every lane finished (worker kernel-stat
    shadows are folded into the main cells first). If any lane raised,
    the lowest lane's exception is re-raised — deterministically. *)

val map : t -> tasks:int -> (lane:int -> int -> 'a) -> 'a array
(** [map t ~tasks f] computes [|f ~lane i|] for [i = 0..tasks-1] with
    each index on its statically-owned lane; result order is index
    order regardless of scheduling. *)

val lane_seed : t -> int -> int64
(** Per-lane RNG seed, a pure function of (pool seed, lane). *)

(** {1 Process-global pool}

    Sized by the [PURITY_DOMAINS] environment variable (default 1 —
    fully inline). Fetch it at use sites rather than caching it so
    test-time {!set_global_domains} swaps take effect. *)

val domains_from_env : unit -> int
val global : unit -> t

val set_global_domains : int -> unit
(** Replace the global pool (shutting down the old one) — for tests and
    benches that compare domain counts within one process. *)

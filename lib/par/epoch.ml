(* Single-writer epoch-published snapshots.

   The pyramid/metadata plane stays single-writer under domains; readers
   on other domains (telemetry, stats derivation) must never lock it or
   observe a half-updated view. The writer publishes an immutable
   snapshot value tagged with a monotonically increasing epoch into one
   [Atomic.t] cell; a read is a single atomic load, so it is wait-free
   and always sees some fully-published epoch. *)

type 'a t = ('a * int) Atomic.t

let create v = Atomic.make (v, 0)

let publish t v =
  let _, e = Atomic.get t in
  Atomic.set t (v, e + 1)

let read t = fst (Atomic.get t)
let epoch t = snd (Atomic.get t)
let read_tagged t = Atomic.get t

(* Recovery (paper §4.3, Figure 5): runs on a freshly created State.t over
   the surviving shelf + boot region, after a crash or during controller
   failover.

   1. read the boot region: frontier set, counters, checkpoint directory;
   2. load the checkpointed patches into the pyramids;
   3. scan segment headers for log records — either the whole array
      (`Full_scan`, the paper's early 12 s path) or just the persisted
      frontier set (`Frontier_scan`, the 0.1 s path);
   4. replay discovered log records into the pyramids (facts are
      idempotent, so re-inserting already-checkpointed ones is harmless);
   5. replay NVRAM intents (writes acked but not yet in a flushed segio);
   6. rebuild the volatile derived state (medium table, volumes, segment
      metas, allocator occupancy, sequence counter). *)

open State
module Ptbl = Purity_util.Keytbl.Ipair

type mode = Frontier_scan | Full_scan

type report = {
  mode : mode;
  duration_us : float;
  cold : bool; (* factory-fresh array: nothing to recover *)
  headers_scanned : int;
  segments_found : int;
  log_records : int;
  nvram_records : int;
  checkpoint_bytes : int;
}

(* Deliberate-bug switches for validating purity.check itself: a checker
   that cannot catch a recovery that "forgets" step 5 is not checking the
   durability contract. Never set outside tests. *)
type chaos = { mutable skip_nvram_replay : bool }

let chaos = { skip_nvram_replay = false }

let replay_log_record t record =
  let buf = Bytes.unsafe_of_string record in
  if Bytes.length buf = 0 then 0
  else begin
    let route tag =
      match tag with
      | 'B' -> Some t.blocks
      | 'M' -> Some t.mediums_pyr
      | 'S' -> Some t.segments_pyr
      | 'V' -> Some t.volumes_pyr
      | _ -> None
    in
    match Bytes.get buf 0 with
    | 'e' ->
      (* elide record: 'e' tag seq lo hi *)
      if Bytes.length buf < 2 then 0
      else begin
        match route (Bytes.get buf 1) with
        | None -> 0
        | Some pyr ->
          let seq, p = Varint.read_i64 buf ~pos:2 in
          let lo, p = Varint.read buf ~pos:p in
          let hi, _ = Varint.read buf ~pos:p in
          (try Pyramid.elide_range pyr ~seq ~lo ~hi with Invalid_argument _ -> ());
          1
      end
    | tag -> (
      match route tag with
      | None -> 0
      | Some pyr -> (
        match Fact.decode buf ~pos:1 with
        | fact, _ ->
          Pyramid.insert_fact pyr fact;
          1
        | exception Invalid_argument _ -> 0))
  end

(* Rebuild volatile state from the recovered pyramids. *)
let rebuild_derived t ~medium_next_hint =
  (* segment metas *)
  Pyramid.iter_live t.segments_pyr (fun ~key ~value ->
      let id = Keys.segment_key_id key in
      match Segment.decode_compact value with
      | meta ->
        (* the segment-table fact is written at flush completion with the
           final member list (mid-flush remaps included), so it overrides
           any stale header copy the scan decoded *)
        Hashtbl.replace t.segment_metas id meta
      | exception Invalid_argument _ -> ());
  (* A checkpoint can list a segment that was released right after it: GC
     releases victims only once the covering checkpoint completes, so the
     release tombstone always postdates the patches and arrives via log or
     NVRAM replay. The tombstone wins — drop the meta, or GC would release
     the dead segment a second time and trim AUs long since reused by
     newer segments. (Its already-marked AUs stay out of circulation; the
     overlap with live segments makes releasing them here unsafe.) *)
  let dead =
    Hashtbl.fold
      (fun id _ acc ->
        let key = Keys.segment_key id in
        if
          Option.is_none (Pyramid.find t.segments_pyr key)
          && Option.is_some (Pyramid.find_ignoring_retractions t.segments_pyr key)
        then id :: acc
        else acc)
      t.segment_metas []
  in
  List.iter (Hashtbl.remove t.segment_metas) dead;
  Hashtbl.iter
    (fun id meta ->
      Allocator.mark_used t.alloc meta.Segment.members;
      if id >= t.next_segment_id then t.next_segment_id <- id + 1)
    t.segment_metas;
  (* medium table *)
  let rows = ref [] in
  let max_medium = ref 0 in
  Pyramid.iter_live t.mediums_pyr (fun ~key ~value ->
      let id = Keys.medium_key_id key in
      if id > !max_medium then max_medium := id;
      match Medium.decode_extents value with
      | extents -> rows := (id, extents) :: !rows
      | exception Invalid_argument _ -> ());
  (* An elided medium id is permanently dead — its elide range outlives the
     crash — so a freshly allocated medium must never reuse one: the range
     would silently swallow the new medium's facts at the next failover.
     The boot-region hint only advances at checkpoints; the elide table is
     the authority in between. *)
  let max_elided =
    Purity_encoding.Ranges.fold
      (fun ~lo:_ ~hi acc -> max hi acc)
      (Pyramid.elide_table t.mediums_pyr) 0
  in
  let next_id = max medium_next_hint (max (!max_medium + 1) (max_elided + 1)) in
  t.medium_table <- Medium.restore ~rows:!rows ~next_id;
  t.medium_next_id <- next_id;
  (* volumes *)
  Stbl.reset t.volumes;
  Pyramid.iter_live t.volumes_pyr (fun ~key ~value ->
      match decode_volume_value value with
      | v -> Stbl.replace t.volumes key v
      | exception Invalid_argument _ -> ());
  (* the sequence counter must move past everything rediscovered *)
  List.iter
    (fun pyr -> Seqno.restore_at_least t.seqno (Pyramid.max_seq pyr))
    [ t.blocks; t.mediums_pyr; t.segments_pyr; t.volumes_pyr ]

(* Fallback commit evidence for a scanned segment: every member AU on a
   reachable drive holds the complete shard (header plus every data row
   the header's payload length implies).  A member on an offline drive is
   unknowable and does not condemn the segment; a short member on an
   online drive marks the flush as torn.  (A freshly replaced drive also
   reads short — segments that predate the replacement need one of the
   stronger proofs, which is why the 'S' commit record is NVRAM-backed.) *)
let scanned_segment_complete t ~claims (seg : Segment.t) =
  let k = t.layout.Layout.k in
  let wu = t.layout.Layout.write_unit in
  let rows = (seg.Segment.payload_len + (k * wu) - 1) / (k * wu) in
  let expected = t.layout.Layout.header_size + (rows * wu) in
  Array.for_all
    (fun (m : Segment.member) ->
      let d = Shelf.drive t.shelf m.Segment.drive in
      (not (Drive.is_online d))
      || ((* the AU's own header must name this segment: a full AU is no
             proof when it was reused by a newer segment while this stale
             sibling kept the old id *)
          (match Ptbl.find_opt claims (m.Segment.drive, m.Segment.au) with
           | Some id -> id = seg.Segment.id
           | None -> false)
         && Drive.au_fill d ~au:m.Segment.au >= expected))
    seg.Segment.members

let recover ?(mode = Frontier_scan) t k =
  let start = Clock.now t.clock in
  let c_runs = Registry.counter t.tel "recovery/runs" in
  let c_headers = Registry.counter t.tel "recovery/headers_scanned" in
  let c_log_records = Registry.counter t.tel "recovery/log_records" in
  let c_nvram_records = Registry.counter t.tel "recovery/nvram_records" in
  let h_recover_us = Registry.histogram t.tel "recovery/duration_us" in
  let rspan =
    Span.start t.tracer
      ~tags:[ ("mode", match mode with Frontier_scan -> "frontier" | Full_scan -> "full") ]
      "recovery"
  in
  let finish ~cold ~headers ~segments ~log_records ~nvram_records ~ckpt_bytes =
    t.online <- true;
    t.boot_time <- Clock.now t.clock;
    (* recovery rewrote next_segment_id/unflushed wholesale: republish the
       flush-pipeline snapshot before anyone reads it *)
    publish_control_view t;
    let duration_us = Clock.now t.clock -. start in
    Registry.incr c_runs;
    Registry.add c_headers headers;
    Registry.add c_log_records log_records;
    Registry.add c_nvram_records nvram_records;
    Histogram.record h_recover_us duration_us;
    Span.finish
      ~tags:
        [ ("cold", string_of_bool cold); ("segments", string_of_int segments) ]
      rspan;
    k
      {
        mode;
        duration_us;
        cold;
        headers_scanned = headers;
        segments_found = segments;
        log_records;
        nvram_records;
        checkpoint_bytes = ckpt_bytes;
      }
  in
  Boot_region.read t.boot (function
    | None ->
      (* factory-fresh array *)
      finish ~cold:true ~headers:0 ~segments:0 ~log_records:0 ~nvram_records:0 ~ckpt_bytes:0
    | Some blob ->
      let bb = decode_boot blob in
      Allocator.restore_persisted t.alloc bb.bb_frontier;
      t.next_segment_id <- bb.bb_next_segment;
      (* ids are never reused: pin the medium counter before anything can
         allocate and rewrite the boot region *)
      t.medium_next_id <- bb.bb_medium_next;
      t.medium_table <- Medium.restore ~rows:[] ~next_id:bb.bb_medium_next;
      Seqno.restore_at_least t.seqno bb.bb_seq;
      (* The boot counter can be stale, and the newest surviving facts can
         undercount the dead generation's allocations when they rode a torn
         segment.  NVRAM outlives the crash, so the counter must also clear
         every record it holds — reusing a dead generation's sequence
         numbers would let its stale stashes outrank this generation's new
         facts. *)
      List.iter
        (fun (r : Nvram.record) -> Seqno.restore_at_least t.seqno r.Nvram.seq)
        (Nvram.records (nvram t));
      t.checkpoint_dir <- bb.bb_dir;
      t.checkpoint_seq <- bb.bb_ckpt_seq;
      t.boot_generation_written <- Allocator.persist_generation t.alloc;
      (* load checkpoint patches *)
      let ckpt_bytes = ref 0 in
      let pyr_of_name name =
        List.find_opt
          (fun p -> String.equal (Pyramid.name p) name)
          [ t.blocks; t.mediums_pyr; t.segments_pyr; t.volumes_pyr ]
      in
      let ckpt_segments = ref [] in
      let load_chunks chunks k =
        let parts = Array.make (List.length chunks) "" in
        let pending = ref (List.length chunks) in
        if !pending = 0 then k ""
        else
          List.iteri
            (fun i (meta_enc, off, len) ->
              let meta = Segment.decode_compact meta_enc in
              if not (Hashtbl.mem t.segment_metas meta.Segment.id) then begin
                Hashtbl.replace t.segment_metas meta.Segment.id meta;
                Allocator.mark_used t.alloc meta.Segment.members;
                ckpt_segments := meta.Segment.id :: !ckpt_segments
              end;
              Io.read t.io meta ~off ~len (fun result ->
                  (match result with
                  | Ok data -> parts.(i) <- Bytes.to_string data
                  | Error `Unrecoverable -> ());
                  decr pending;
                  if !pending = 0 then k (String.concat "" (Array.to_list parts))))
            chunks
      in
      let rec load_dir dir k =
        match dir with
        | [] -> k ()
        | (name, ranges, chunks) :: rest -> (
          match pyr_of_name name with
          | None -> load_dir rest k
          | Some pyr ->
            load_chunks chunks (fun blob ->
                ckpt_bytes := !ckpt_bytes + String.length blob;
                (if String.length blob > 0 then
                   match Patch.deserialize blob with
                   | patch -> Pyramid.replace_patches pyr [ patch ]
                   | exception Invalid_argument _ -> ());
                (if String.length ranges > 0 && Pyramid.policy_is_elision pyr then
                   match Purity_encoding.Ranges.decode ranges with
                   | r -> Pyramid.restore_elides pyr r
                   | exception Invalid_argument _ -> ());
                load_dir rest k))
      in
      load_dir bb.bb_dir (fun () ->
          t.checkpoint_segments <- List.sort_uniq Int.compare !ckpt_segments;
          (* scan for log records; [claims] records which segment each
             physical AU's on-disk header actually names *)
          let claims = Ptbl.create 64 in
          let scan k =
            match mode with
            | Full_scan ->
              let headers =
                Array.fold_left
                  (fun acc d ->
                    if Drive.is_online d then acc + (Drive.config d).Drive.num_aus else acc)
                  0 (Shelf.drives t.shelf)
              in
              Scan.scan_all ~layout:t.layout ~shelf:t.shelf ~claims (fun segs ->
                  k (headers, segs))
            | Frontier_scan ->
              let slots = Allocator.persisted_frontier t.alloc in
              Scan.scan_members ~layout:t.layout ~shelf:t.shelf ~claims slots (fun segs ->
                  k (List.length slots, segs))
          in
          scan (fun (headers, segs) ->
              (* A scanned id is burned even when the segment turns out to
                 be torn and is dropped: its header stays on disk until the
                 AU is erased for reuse, and a new segment under the same id
                 would be shadowed by the stale header at the next
                 failover's scan (first copy wins). *)
              List.iter
                (fun (s : Segment.t) ->
                  if s.Segment.id >= t.next_segment_id then
                    t.next_segment_id <- s.Segment.id + 1)
                segs;
              (* Only segments whose flush provably completed may be
                 installed and have their log regions replayed: a torn
                 flush can leave the log region readable (it lives on the
                 members that finished) while the data rows are gone, so
                 replaying its records would point blockrefs at
                 unreconstructable rows — shadowing the still-live copies
                 they were relocating.  Commit proof: the segment is in
                 the checkpoint, in the segments pyramid, or has a live
                 'S' stash in NVRAM; log replay of a trusted segment can
                 commit further segments, so the trust rounds iterate to a
                 fixpoint.  Failing all that, a fully-present on-disk
                 image (every online member holds header + all rows) is
                 accepted — the fallback when NVRAM contents were lost. *)
              let nvram_commits = Hashtbl.create 16 in
              List.iter
                (fun (r : Nvram.record) ->
                  let p = r.Nvram.payload in
                  (* stashes at or below the checkpoint watermark carry no
                     information the patches don't: in particular a released
                     segment's stale 'S' stash must not count as commit
                     proof *)
                  if
                    Int64.compare r.Nvram.seq t.checkpoint_seq > 0
                    && String.length p >= 2
                    && p.[0] = 'F'
                    && p.[1] = 'S'
                  then
                    match Fact.decode (Bytes.unsafe_of_string p) ~pos:2 with
                    | fact, _ ->
                      if Option.is_some fact.Fact.value then
                        Hashtbl.replace nvram_commits
                          (Keys.segment_key_id fact.Fact.key) ()
                    | exception Invalid_argument _ -> ())
                (Nvram.records (nvram t));
              let committed (seg : Segment.t) =
                Hashtbl.mem t.segment_metas seg.Segment.id
                || Option.is_some (Pyramid.find t.segments_pyr (Keys.segment_key seg.Segment.id))
                || Hashtbl.mem nvram_commits seg.Segment.id
                || scanned_segment_complete t ~claims seg
              in
              let log_records = ref 0 in
              let trusted = ref [] in
              let install (seg : Segment.t) =
                trusted := seg :: !trusted;
                if not (Hashtbl.mem t.segment_metas seg.Segment.id) then begin
                  Hashtbl.replace t.segment_metas seg.Segment.id seg;
                  Allocator.mark_used t.alloc seg.Segment.members
                end;
                (* The log records just replayed from this segment are not
                   covered by any checkpoint yet: keep its members in the
                   scan set, or the next boot-region rewrite would hide
                   them from a later failover's frontier scan. *)
                Allocator.requeue_scan t.alloc seg.Segment.members
              in
              let rec replay_logs segs k =
                match segs with
                | [] -> k ()
                | (seg : Segment.t) :: rest ->
                  if seg.Segment.log_len = 0 then replay_logs rest k
                  else
                    Io.read t.io seg ~off:seg.Segment.log_off ~len:seg.Segment.log_len
                      (fun result ->
                        (match result with
                        | Ok region ->
                          let rs = Writer.decode_log_region region in
                          List.iter
                            (fun (seq, record) ->
                              (* records at or below the checkpoint watermark
                                 are covered by the patches — and worse, their
                                 tombstones may have been dropped by the
                                 checkpoint's full compaction, so replaying
                                 them would resurrect deleted facts (e.g. a
                                 released segment's commit record, whose
                                 re-release would trim AUs reused by live
                                 segments) *)
                              if Int64.compare seq t.checkpoint_seq > 0 then
                                log_records := !log_records + replay_log_record t record)
                            rs
                        | Error `Unrecoverable -> ());
                        replay_logs rest k)
              in
              let rec trust_rounds pending k =
                match List.partition committed pending with
                | [], later -> k later
                | now, later ->
                  List.iter install now;
                  replay_logs now (fun () -> trust_rounds later k)
              in
              let after_logs () =
                rebuild_derived t ~medium_next_hint:bb.bb_medium_next;
                (* Segments known only from their scanned headers (their
                   'S' fact was in an unflushed segio at the crash) must be
                   re-persisted, or the next checkpoint would drop their
                   AUs from the scan set and a later failover would lose
                   them entirely. *)
                List.iter
                  (fun (seg : Segment.t) ->
                    let key = Keys.segment_key seg.Segment.id in
                    (* absent only — a tombstoned key means the segment was
                       released after the covering checkpoint; re-inserting
                       its fact would resurrect a dead segment over its own
                       tombstone *)
                    if
                      Option.is_none (Pyramid.find t.segments_pyr key)
                      && Option.is_none (Pyramid.find_ignoring_retractions t.segments_pyr key)
                    then
                      try ignore (put t t.segments_pyr ~key ~value:(Segment.encode_compact seg))
                      with Out_of_space -> ())
                  !trusted;
                (* NVRAM intents: writes acked but possibly not in any
                   flushed segio; reapply them through the write path *)
                let records =
                  if chaos.skip_nvram_replay then [] else Nvram.records (nvram t)
                in
                let n = List.length records in
                let route tag =
                  match tag with
                  | 'M' -> Some t.mediums_pyr
                  | 'V' -> Some t.volumes_pyr
                  | 'S' -> Some t.segments_pyr
                  | _ -> None
                in
                (* Replayed metadata must become durable again: its NVRAM
                   record will be trimmed at the next segio flush, and the
                   bare replay would leave the fact memtable-only.  It is
                   re-inserted, re-logged and re-stashed under its ORIGINAL
                   sequence number — re-putting with a fresh one would let
                   a stale stash outrank newer facts recovered from the
                   patches or the segment logs. *)
                let replay_meta payload =
                  let buf = Bytes.unsafe_of_string payload in
                  if Bytes.length buf >= 2 then
                    match route (Bytes.get buf 1) with
                    | None -> ()
                    | Some pyr -> (
                      match Fact.decode buf ~pos:2 with
                      | fact, _ ->
                        Pyramid.insert_fact pyr fact;
                        let tag = Bytes.get buf 1 in
                        (try
                           log_fact t tag fact;
                           stash_fact t tag fact
                         with Out_of_space -> ())
                      | exception Invalid_argument _ -> ())
                in
                let replay_elide payload =
                  let buf = Bytes.unsafe_of_string payload in
                  if Bytes.length buf >= 2 then
                    match route (Bytes.get buf 1) with
                    | None -> ()
                    | Some pyr -> (
                      match
                        let seq, p = Varint.read_i64 buf ~pos:2 in
                        let lo, p = Varint.read buf ~pos:p in
                        let hi, _ = Varint.read buf ~pos:p in
                        (seq, lo, hi)
                      with
                      | seq, lo, hi ->
                        (try Pyramid.elide_range pyr ~seq ~lo ~hi
                         with Invalid_argument _ -> ());
                        let tag = Bytes.get buf 1 in
                        (try
                           log_elide t tag ~seq ~lo ~hi;
                           stash_elide t tag ~seq ~lo ~hi
                         with Out_of_space -> ())
                      | exception Invalid_argument _ -> ())
                in
                List.iter
                  (fun (r : Nvram.record) ->
                    let payload = r.Nvram.payload in
                    if String.length payload > 0 then
                      match payload.[0] with
                      | 'W' -> (
                        match Write_path.decode_intent payload with
                        | medium, block, data ->
                          (try Write_path.apply_write t ~medium ~block data
                           with Out_of_space -> ());
                          t.last_applied_intent <- r.Nvram.seq
                        | exception Invalid_argument _ -> ())
                      (* metadata stashes below the checkpoint watermark are
                         already in the patches (or deliberately compacted
                         away); re-putting them with a fresh seq would shadow
                         newer state *)
                      | 'F' when Int64.compare r.Nvram.seq t.checkpoint_seq > 0 ->
                        replay_meta payload
                      | 'E' when Int64.compare r.Nvram.seq t.checkpoint_seq > 0 ->
                        replay_elide payload
                      | _ -> ())
                  records;
                (* derived state again: replayed intents may have grown things *)
                rebuild_derived t ~medium_next_hint:bb.bb_medium_next;
                finish ~cold:false ~headers ~segments:(List.length !trusted)
                  ~log_records:!log_records ~nvram_records:n ~ckpt_bytes:!ckpt_bytes
              in
              trust_rounds segs (fun torn ->
                  (* Torn segments are simply dropped: their AUs return to
                     the pool via erase-before-reuse, acked writes they
                     held are still covered by NVRAM intents (the trim
                     only runs at flush completion), and relocated data
                     still has its source segment (released only after a
                     covering checkpoint). *)
                  ignore torn;
                  after_logs ()))))

(* Recovery (paper §4.3, Figure 5): runs on a freshly created State.t over
   the surviving shelf + boot region, after a crash or during controller
   failover.

   1. read the boot region: frontier set, counters, checkpoint directory;
   2. load the checkpointed patches into the pyramids;
   3. scan segment headers for log records — either the whole array
      (`Full_scan`, the paper's early 12 s path) or just the persisted
      frontier set (`Frontier_scan`, the 0.1 s path);
   4. replay discovered log records into the pyramids (facts are
      idempotent, so re-inserting already-checkpointed ones is harmless);
   5. replay NVRAM intents (writes acked but not yet in a flushed segio);
   6. rebuild the volatile derived state (medium table, volumes, segment
      metas, allocator occupancy, sequence counter). *)

open State

type mode = Frontier_scan | Full_scan

type report = {
  mode : mode;
  duration_us : float;
  cold : bool; (* factory-fresh array: nothing to recover *)
  headers_scanned : int;
  segments_found : int;
  log_records : int;
  nvram_records : int;
  checkpoint_bytes : int;
}

let replay_log_record t record =
  let buf = Bytes.unsafe_of_string record in
  if Bytes.length buf = 0 then 0
  else begin
    let route tag =
      match tag with
      | 'B' -> Some t.blocks
      | 'M' -> Some t.mediums_pyr
      | 'S' -> Some t.segments_pyr
      | 'V' -> Some t.volumes_pyr
      | _ -> None
    in
    match Bytes.get buf 0 with
    | 'e' ->
      (* elide record: 'e' tag seq lo hi *)
      if Bytes.length buf < 2 then 0
      else begin
        match route (Bytes.get buf 1) with
        | None -> 0
        | Some pyr ->
          let seq, p = Varint.read_i64 buf ~pos:2 in
          let lo, p = Varint.read buf ~pos:p in
          let hi, _ = Varint.read buf ~pos:p in
          (try Pyramid.elide_range pyr ~seq ~lo ~hi with Invalid_argument _ -> ());
          1
      end
    | tag -> (
      match route tag with
      | None -> 0
      | Some pyr -> (
        match Fact.decode buf ~pos:1 with
        | fact, _ ->
          Pyramid.insert_fact pyr fact;
          1
        | exception Invalid_argument _ -> 0))
  end

(* Rebuild volatile state from the recovered pyramids. *)
let rebuild_derived t ~medium_next_hint =
  (* segment metas *)
  Pyramid.iter_live t.segments_pyr (fun ~key ~value ->
      let id = Keys.segment_key_id key in
      match Segment.decode_compact value with
      | meta ->
        (* the segment-table fact is written at flush completion with the
           final member list (mid-flush remaps included), so it overrides
           any stale header copy the scan decoded *)
        Hashtbl.replace t.segment_metas id meta
      | exception Invalid_argument _ -> ());
  Hashtbl.iter
    (fun id meta ->
      Allocator.mark_used t.alloc meta.Segment.members;
      if id >= t.next_segment_id then t.next_segment_id <- id + 1)
    t.segment_metas;
  (* medium table *)
  let rows = ref [] in
  let max_medium = ref 0 in
  Pyramid.iter_live t.mediums_pyr (fun ~key ~value ->
      let id = Keys.medium_key_id key in
      if id > !max_medium then max_medium := id;
      match Medium.decode_extents value with
      | extents -> rows := (id, extents) :: !rows
      | exception Invalid_argument _ -> ());
  let next_id = max medium_next_hint (!max_medium + 1) in
  t.medium_table <- Medium.restore ~rows:!rows ~next_id;
  t.medium_next_id <- next_id;
  (* volumes *)
  Hashtbl.reset t.volumes;
  Pyramid.iter_live t.volumes_pyr (fun ~key ~value ->
      match decode_volume_value value with
      | v -> Hashtbl.replace t.volumes key v
      | exception Invalid_argument _ -> ());
  (* the sequence counter must move past everything rediscovered *)
  List.iter
    (fun pyr -> Seqno.restore_at_least t.seqno (Pyramid.max_seq pyr))
    [ t.blocks; t.mediums_pyr; t.segments_pyr; t.volumes_pyr ]

let recover ?(mode = Frontier_scan) t k =
  let start = Clock.now t.clock in
  let c_runs = Registry.counter t.tel "recovery/runs" in
  let c_headers = Registry.counter t.tel "recovery/headers_scanned" in
  let c_log_records = Registry.counter t.tel "recovery/log_records" in
  let c_nvram_records = Registry.counter t.tel "recovery/nvram_records" in
  let h_recover_us = Registry.histogram t.tel "recovery/duration_us" in
  let rspan =
    Span.start t.tracer
      ~tags:[ ("mode", match mode with Frontier_scan -> "frontier" | Full_scan -> "full") ]
      "recovery"
  in
  let finish ~cold ~headers ~segments ~log_records ~nvram_records ~ckpt_bytes =
    t.online <- true;
    t.boot_time <- Clock.now t.clock;
    let duration_us = Clock.now t.clock -. start in
    Registry.incr c_runs;
    Registry.add c_headers headers;
    Registry.add c_log_records log_records;
    Registry.add c_nvram_records nvram_records;
    Histogram.record h_recover_us duration_us;
    Span.finish
      ~tags:
        [ ("cold", string_of_bool cold); ("segments", string_of_int segments) ]
      rspan;
    k
      {
        mode;
        duration_us;
        cold;
        headers_scanned = headers;
        segments_found = segments;
        log_records;
        nvram_records;
        checkpoint_bytes = ckpt_bytes;
      }
  in
  Boot_region.read t.boot (function
    | None ->
      (* factory-fresh array *)
      finish ~cold:true ~headers:0 ~segments:0 ~log_records:0 ~nvram_records:0 ~ckpt_bytes:0
    | Some blob ->
      let bb = decode_boot blob in
      Allocator.restore_persisted t.alloc bb.bb_frontier;
      t.next_segment_id <- bb.bb_next_segment;
      (* ids are never reused: pin the medium counter before anything can
         allocate and rewrite the boot region *)
      t.medium_next_id <- bb.bb_medium_next;
      t.medium_table <- Medium.restore ~rows:[] ~next_id:bb.bb_medium_next;
      Seqno.restore_at_least t.seqno bb.bb_seq;
      t.checkpoint_dir <- bb.bb_dir;
      t.boot_generation_written <- Allocator.persist_generation t.alloc;
      (* load checkpoint patches *)
      let ckpt_bytes = ref 0 in
      let pyr_of_name name =
        List.find_opt
          (fun p -> Pyramid.name p = name)
          [ t.blocks; t.mediums_pyr; t.segments_pyr; t.volumes_pyr ]
      in
      let ckpt_segments = ref [] in
      let load_chunks chunks k =
        let parts = Array.make (List.length chunks) "" in
        let pending = ref (List.length chunks) in
        if !pending = 0 then k ""
        else
          List.iteri
            (fun i (meta_enc, off, len) ->
              let meta = Segment.decode_compact meta_enc in
              if not (Hashtbl.mem t.segment_metas meta.Segment.id) then begin
                Hashtbl.replace t.segment_metas meta.Segment.id meta;
                Allocator.mark_used t.alloc meta.Segment.members;
                ckpt_segments := meta.Segment.id :: !ckpt_segments
              end;
              Io.read t.io meta ~off ~len (fun result ->
                  (match result with
                  | Ok data -> parts.(i) <- Bytes.to_string data
                  | Error `Unrecoverable -> ());
                  decr pending;
                  if !pending = 0 then k (String.concat "" (Array.to_list parts))))
            chunks
      in
      let rec load_dir dir k =
        match dir with
        | [] -> k ()
        | (name, ranges, chunks) :: rest -> (
          match pyr_of_name name with
          | None -> load_dir rest k
          | Some pyr ->
            load_chunks chunks (fun blob ->
                ckpt_bytes := !ckpt_bytes + String.length blob;
                (if blob <> "" then
                   match Patch.deserialize blob with
                   | patch -> Pyramid.replace_patches pyr [ patch ]
                   | exception Invalid_argument _ -> ());
                (if ranges <> "" && Pyramid.policy_is_elision pyr then
                   match Purity_encoding.Ranges.decode ranges with
                   | r -> Pyramid.restore_elides pyr r
                   | exception Invalid_argument _ -> ());
                load_dir rest k))
      in
      load_dir bb.bb_dir (fun () ->
          t.checkpoint_segments <- List.sort_uniq Int.compare !ckpt_segments;
          (* scan for log records *)
          let scan k =
            match mode with
            | Full_scan ->
              let headers =
                Array.fold_left
                  (fun acc d ->
                    if Drive.is_online d then acc + (Drive.config d).Drive.num_aus else acc)
                  0 (Shelf.drives t.shelf)
              in
              Scan.scan_all ~layout:t.layout ~shelf:t.shelf (fun segs -> k (headers, segs))
            | Frontier_scan ->
              let slots = Allocator.persisted_frontier t.alloc in
              Scan.scan_members ~layout:t.layout ~shelf:t.shelf slots (fun segs ->
                  k (List.length slots, segs))
          in
          scan (fun (headers, segs) ->
              (* install scanned segments and replay their log regions *)
              List.iter
                (fun (seg : Segment.t) ->
                  if not (Hashtbl.mem t.segment_metas seg.Segment.id) then begin
                    Hashtbl.replace t.segment_metas seg.Segment.id seg;
                    Allocator.mark_used t.alloc seg.Segment.members
                  end)
                segs;
              let with_logs =
                List.filter (fun (s : Segment.t) -> s.Segment.log_len > 0) segs
              in
              let log_records = ref 0 in
              let rec replay_logs = function
                | [] -> after_logs ()
                | (seg : Segment.t) :: rest ->
                  Io.read t.io seg ~off:seg.Segment.log_off ~len:seg.Segment.log_len
                    (fun result ->
                      (match result with
                      | Ok region ->
                        List.iter
                          (fun (_seq, record) ->
                            log_records := !log_records + replay_log_record t record)
                          (Writer.decode_log_region region)
                      | Error `Unrecoverable -> ());
                      replay_logs rest)
              and after_logs () =
                rebuild_derived t ~medium_next_hint:bb.bb_medium_next;
                (* Segments known only from their scanned headers (their
                   'S' fact was in an unflushed segio at the crash) must be
                   re-persisted, or the next checkpoint would drop their
                   AUs from the scan set and a later failover would lose
                   them entirely. *)
                List.iter
                  (fun (seg : Segment.t) ->
                    let key = Keys.segment_key seg.Segment.id in
                    if Pyramid.find t.segments_pyr key = None then
                      try ignore (put t t.segments_pyr ~key ~value:(Segment.encode_compact seg))
                      with Out_of_space -> ())
                  segs;
                (* NVRAM intents: writes acked but possibly not in any
                   flushed segio; reapply them through the write path *)
                let records = Nvram.records (nvram t) in
                let n = List.length records in
                let route tag =
                  match tag with
                  | 'M' -> Some t.mediums_pyr
                  | 'V' -> Some t.volumes_pyr
                  | _ -> None
                in
                (* Replayed metadata must become durable again: its NVRAM
                   record will be trimmed at the next segio flush, and the
                   bare replay would leave the fact memtable-only. Going
                   through [put]/[put_delete]/[put_elide] re-logs it into
                   the new segio and re-stashes it with a fresh sequence
                   number, so a second crash cannot lose it. *)
                let replay_meta payload =
                  let buf = Bytes.unsafe_of_string payload in
                  if Bytes.length buf >= 2 then
                    match route (Bytes.get buf 1) with
                    | None -> ()
                    | Some pyr -> (
                      match Fact.decode buf ~pos:2 with
                      | fact, _ -> (
                        match fact.Fact.value with
                        | Some value ->
                          (try ignore (put t pyr ~key:fact.Fact.key ~value)
                           with Out_of_space -> Pyramid.insert_fact pyr fact)
                        | None ->
                          (try ignore (put_delete t pyr ~key:fact.Fact.key)
                           with Out_of_space -> Pyramid.insert_fact pyr fact))
                      | exception Invalid_argument _ -> ())
                in
                let replay_elide payload =
                  let buf = Bytes.unsafe_of_string payload in
                  if Bytes.length buf >= 2 then
                    match route (Bytes.get buf 1) with
                    | None -> ()
                    | Some pyr -> (
                      match
                        let _seq, p = Varint.read_i64 buf ~pos:2 in
                        let lo, p = Varint.read buf ~pos:p in
                        let hi, _ = Varint.read buf ~pos:p in
                        (lo, hi)
                      with
                      | lo, hi -> (
                        try ignore (put_elide t pyr ~lo ~hi)
                        with Out_of_space ->
                          Pyramid.elide_range pyr ~seq:(Seqno.next t.seqno) ~lo ~hi)
                      | exception Invalid_argument _ -> ())
                in
                List.iter
                  (fun (r : Nvram.record) ->
                    let payload = r.Nvram.payload in
                    if String.length payload > 0 then
                      match payload.[0] with
                      | 'W' -> (
                        match Write_path.decode_intent payload with
                        | medium, block, data ->
                          (try Write_path.apply_write t ~medium ~block data
                           with Out_of_space -> ());
                          t.last_applied_intent <- r.Nvram.seq
                        | exception Invalid_argument _ -> ())
                      | 'F' -> replay_meta payload
                      | 'E' -> replay_elide payload
                      | _ -> ())
                  records;
                (* derived state again: replayed intents may have grown things *)
                rebuild_derived t ~medium_next_hint:bb.bb_medium_next;
                finish ~cold:false ~headers ~segments:(List.length segs)
                  ~log_records:!log_records ~nvram_records:n ~ckpt_bytes:!ckpt_bytes
              in
              replay_logs with_logs)))

(* The write path (paper §4.2, Figure 4, §4.6, §4.7):

   application write -> NVRAM commit (durability ack) -> inline dedup ->
   compression into cblocks -> segio append + block-index facts (also
   logged into the segio) -> asynchronous segment flush.

   A write's data is split into <= 32 KiB chunks (cblocks are "sized to
   match application writes, up to 32 KiB"); inline dedup carves verified
   duplicate runs out of each chunk, and only the fresh remainder is
   compressed and stored. *)

open State
module Fact = Purity_pyramid.Fact

type error =
  [ `No_such_volume
  | `Read_only
  | `Out_of_range
  | `Unaligned
  | `Backpressure  (** NVRAM full: the segment writer has fallen behind *)
  | `No_space
  | `Offline ]

let encode_intent ~medium ~block data =
  let buf = Buffer.create (String.length data + 16) in
  Buffer.add_char buf 'W';
  Varint.write buf medium;
  Varint.write buf block;
  Varint.write buf (String.length data);
  Buffer.add_string buf data;
  Buffer.contents buf

let decode_intent s =
  let buf = Bytes.unsafe_of_string s in
  if Bytes.length buf = 0 || Bytes.get buf 0 <> 'W' then
    invalid_arg "decode_intent: not a write intent";
  let medium, p = Varint.read buf ~pos:1 in
  let block, p = Varint.read buf ~pos:p in
  let len, p = Varint.read buf ~pos:p in
  if p + len > Bytes.length buf then invalid_arg "decode_intent: truncated";
  (medium, block, Bytes.sub_string buf p len)

(* Record one block-index fact (and its log record). *)
let put_block t ~medium ~block (r : Blockref.t) =
  ignore (put t t.blocks ~key:(Keys.block_key ~medium ~block) ~value:(Blockref.encode r))

(* Store one fresh run of blocks as a cblock; returns its home. The
   frame is built in the controller's arena — compression runs in the
   reused LZ scratch and the frame bytes blit from the reused Buffer
   straight into the segio, so storing a block allocates nothing. *)
let store_run t data =
  let arena = t.arenas.(0) in
  let frame = arena.Arena.frame in
  Buffer.clear frame;
  let stored_len =
    Cblock.add_frame ~scratch:arena.Arena.lz ~compress:t.cfg.compression frame data
  in
  let segment, off = store_frame t frame in
  Registry.add t.ws.stored_bytes stored_len;
  { Blockref.segment; off; stored_len; index = 0 }

(* Store a frame already built (by a pool lane) in some lane's arena.
   [store_blob]'s roll-the-segment decision uses the same length the
   serial [store_frame] would, and the frame bytes are the deterministic
   output of [Cblock.add_frame] on the run — so the segio contents are
   byte-identical to the serial path's. *)
let store_prepared t ~frame ~stored_len =
  let segment, off = store_blob t frame in
  Registry.add t.ws.stored_bytes stored_len;
  { Blockref.segment; off; stored_len; index = 0 }

(* Compress the uncovered runs in parallel, one pool lane per contiguous
   chunk of runs, each lane in its own scratch arena. Returns the framed
   cblocks (with their stored lengths) in run order; [None] means stay on
   the serial zero-alloc path. Compression is a pure function of the run
   bytes (the LZ scratch is epoch-stamped), so the frames — and
   everything stored from them — are byte-identical at any lane count. *)
let compress_runs_par t data runs =
  let pool = Purity_par.Pool.global () in
  let lanes = Purity_par.Pool.lanes pool in
  let nruns = Array.length runs in
  if lanes <= 1 || nruns <= 1 then None
  else begin
    let arenas = lane_arenas t ~lanes in
    Some
      (Purity_par.Pool.map pool ~tasks:nruns (fun ~lane r ->
           let start, run_blocks = runs.(r) in
           let run = String.sub data (start * block_size) (run_blocks * block_size) in
           let arena = arenas.(lane) in
           let frame = arena.Arena.frame in
           Buffer.clear frame;
           let stored_len =
             Cblock.add_frame ~scratch:arena.Arena.lz ~compress:t.cfg.compression frame
               run
           in
           (Buffer.contents frame, stored_len)))
  end

(* Apply one <=32 KiB chunk: dedup the duplicate runs, store the rest. *)
let apply_chunk t ~medium ~first_block data =
  let nblocks = String.length data / block_size in
  let hits = if t.cfg.inline_dedup then Dedup.find_duplicates t.dedup data else [] in
  (* translate hits whose source cblock still exists; drop the rest *)
  let hits =
    List.filter_map
      (fun (h : Dedup.hit) ->
        match Hashtbl.find_opt t.dedup_locs h.Dedup.src.Dedup.write_id with
        | Some base
          when Hashtbl.mem t.segment_metas base.Blockref.segment
               || Hashtbl.mem t.unflushed base.Blockref.segment ->
          Some (h, base)
        | _ -> None)
      hits
  in
  let covered = Array.make nblocks false in
  List.iter
    (fun ((h : Dedup.hit), (base : Blockref.t)) ->
      for i = 0 to h.Dedup.run_blocks - 1 do
        let blk = h.Dedup.at_block + i in
        covered.(blk) <- true;
        put_block t ~medium ~block:(first_block + blk)
          { base with Blockref.index = h.Dedup.src.Dedup.block + i };
        Registry.incr t.ws.dedup_blocks
      done)
    hits;
  (* collect the uncovered runs — [covered] is fully determined above, so
     gathering first and storing after is the same traversal the old
     fused loop made *)
  let runs = ref [] in
  let i = ref 0 in
  while !i < nblocks do
    if covered.(!i) then incr i
    else begin
      let start = !i in
      while !i < nblocks && not covered.(!i) do
        incr i
      done;
      runs := (start, !i - start) :: !runs
    end
  done;
  let runs = Array.of_list (List.rev !runs) in
  (* compress in parallel when a pool is live and there is enough work;
     store serially, in run order, either way *)
  let frames = compress_runs_par t data runs in
  Array.iteri
    (fun r (start, run_blocks) ->
      let run = String.sub data (start * block_size) (run_blocks * block_size) in
      let base =
        match frames with
        | Some fr ->
          let frame, stored_len = fr.(r) in
          store_prepared t ~frame ~stored_len
        | None -> store_run t run
      in
      (* register the fresh run so future writes can dedup against it *)
      if t.cfg.inline_dedup then begin
        let wid = Dedup.register t.dedup run in
        Hashtbl.replace t.dedup_locs wid base
      end;
      for b = 0 to run_blocks - 1 do
        put_block t ~medium ~block:(first_block + start + b)
          { base with Blockref.index = b }
      done)
    runs

let apply_write ?(io_blocks = Cblock.max_logical / block_size) t ~medium ~block data =
  let len = String.length data in
  (* cblocks are "sized to match application writes, up to 32 KiB": chunk
     at the volume's inferred write size so small rereads hit one cblock *)
  let chunk = max block_size (min Cblock.max_logical (io_blocks * block_size)) in
  let off = ref 0 in
  while !off < len do
    let n = min chunk (len - !off) in
    apply_chunk t ~medium ~first_block:(block + (!off / block_size))
      (String.sub data !off n);
    off := !off + n
  done

(* Public entry: write [data] (a multiple of 512 B) at [block] of [volume].
   The callback fires when the write is durable (NVRAM commit complete). *)
let write t ~volume ~block data k =
  let start = Clock.now t.clock in
  let fail e = Clock.schedule t.clock ~delay:0.0 (fun () -> k (Error e)) in
  if not t.online then fail `Offline
  else
    match Stbl.find_opt t.volumes volume with
    | None -> fail `No_such_volume
    | Some { kind = Snapshot; _ } -> fail `Read_only
    | Some v ->
      let len = String.length data in
      if len = 0 || len mod block_size <> 0 then fail `Unaligned
      else if block < 0 || block + (len / block_size) > v.blocks then fail `Out_of_range
      else begin
        observe_write v.observer ~nblocks:(len / block_size);
        match Medium.write_target t.medium_table v.medium ~block with
        | Error `Read_only -> fail `Read_only
        | Error (`Out_of_range | `No_such_medium) -> fail `Out_of_range
        | Ok medium ->
          let intent = encode_intent ~medium ~block data in
          (* trace the multi-hop write: the NVRAM commit and memtable apply
             are children of one [write] span (segio flush/program spans
             hang off the asynchronous pump instead) *)
          let wspan =
            Span.start t.tracer
              ~tags:[ ("volume", volume); ("bytes", string_of_int len) ]
              "write"
          in
          let commit_span = Span.start t.tracer ~parent:wspan "nvram_commit" in
          (* intents consume sequence numbers like any other fact; NVRAM
             commit callbacks fire in seq order, so the applied watermark
             is monotone *)
          let intent_seq = Purity_pyramid.Seqno.next t.seqno in
          Nvram.commit (nvram t) { Nvram.seq = intent_seq; payload = intent } (function
            | Error `Full ->
              Span.finish ~tags:[ ("error", "backpressure") ] commit_span;
              Span.finish wspan;
              (* NVRAM drains when segios flush; push the current one out
                 if nothing is already flushing, then report backpressure *)
              if t.pending_flush_count = 0 then (try seal_current t with Out_of_space -> ());
              k (Error `Backpressure)
            | Ok () when not t.online ->
              Span.finish ~tags:[ ("error", "offline") ] commit_span;
              Span.finish wspan;
              (* the controller died between commit and apply: the intent
                 is in NVRAM and will replay at failover *)
              k (Error `Offline)
            | Ok () -> (
              Histogram.record t.ws.nvram_commit_us (Clock.now t.clock -. start);
              Span.finish commit_span;
              let apply_span = Span.start t.tracer ~parent:wspan "apply" in
              match
                apply_write ~io_blocks:(inferred_io_blocks v.observer) t ~medium ~block data
              with
              | () ->
                Span.finish apply_span;
                Span.finish wspan;
                t.last_applied_intent <- intent_seq;
                Registry.incr t.ws.app_writes;
                Registry.add t.ws.logical_bytes len;
                t.writes_since_checkpoint <- t.writes_since_checkpoint + 1;
                Histogram.record t.write_lat (Clock.now t.clock -. start);
                k (Ok ())
              | exception Out_of_space ->
                Span.finish ~tags:[ ("error", "no_space") ] apply_span;
                Span.finish wspan;
                k (Error `No_space)))
      end

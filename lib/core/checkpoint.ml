(* Checkpoints: persist every pyramid as patch blobs in dedicated
   segments and point the boot region at them (Figure 4's "time-bounded
   indexes" stream joining the commit stream). After a checkpoint the
   allocator shrinks its persisted scan set — failover only replays log
   records newer than the checkpoint. *)

open State

type report = {
  patch_bytes : int;
  segments_used : int;
  duration_us : float;
}

(* Chunk size below segment capacity so multiple chunks plus framing fit. *)
let chunk_size t = min (256 * 1024) (Layout.payload_capacity t.layout / 2)

let run t k =
  let start = Clock.now t.clock in
  if not t.online then
    (* A dead controller cannot checkpoint. Don't continue [k] either:
       callers release relocated victims right after a checkpoint returns,
       which must never happen without one. The continuation simply hangs,
       like a flush waiter at a crash — failover abandons it. *)
    ()
  else begin
  (* Quiesce first: once every sealed segio has flushed, its segment-table
     facts are in the pyramids and will be covered by the patches. *)
  seal_current t;
  when_flushed t (fun () ->
      if not t.online then ()
      else begin
      let first_ckpt_segment = t.next_segment_id in
      (* cut point: allocations after this stay in the recovery scan set *)
      let cut = Allocator.allocated_count t.alloc in
      (* seq watermark: every fact at or below this is about to be covered
         by the patches (the flattens below run synchronously, so nothing
         slips in between).  Installed into [t.checkpoint_seq] only once
         the new directory is, so a crash mid-checkpoint leaves the old
         (dir, watermark) pair intact. *)
      let cut_seq = Seqno.current t.seqno in
      let pyramids = [ t.blocks; t.mediums_pyr; t.segments_pyr; t.volumes_pyr ] in
      let total_bytes = ref 0 in
      let dir =
        List.map
          (fun pyr ->
            Pyramid.flatten pyr;
            let patch =
              match Pyramid.patches pyr with [] -> Patch.empty | p :: _ -> p
            in
            let blob = Patch.serialize patch in
            total_bytes := !total_bytes + String.length blob;
            let ranges =
              if Pyramid.policy_is_elision pyr then
                Purity_encoding.Ranges.encode (Pyramid.elide_table pyr)
              else ""
            in
            let chunks = ref [] in
            let csize = chunk_size t in
            let off = ref 0 in
            while !off < String.length blob do
              let len = min csize (String.length blob - !off) in
              let seg, seg_off = store_blob t (String.sub blob !off len) in
              chunks := (seg, seg_off, len) :: !chunks;
              off := !off + len
            done;
            (Pyramid.name pyr, ranges, List.rev !chunks))
          pyramids
      in
      (* Flush the checkpoint segments, then write the boot region. *)
      seal_current t;
      when_flushed t (fun () ->
          if not t.online then ()
          else begin
          let resolve_chunks chunks =
            List.map
              (fun (seg_id, off, len) ->
                match Hashtbl.find_opt t.segment_metas seg_id with
                | Some meta -> (Segment.encode_compact meta, off, len)
                | None -> invalid_arg "checkpoint: segment meta missing")
              chunks
          in
          let old_ckpt = t.checkpoint_segments in
          t.checkpoint_seq <- cut_seq;
          t.checkpoint_dir <-
            List.map
              (fun (name, ranges, chunks) -> (name, ranges, resolve_chunks chunks))
              dir;
          t.checkpoint_segments <-
            List.sort_uniq Int.compare
              (List.concat_map (fun (_, _, chunks) -> List.map (fun (s, _, _) -> s) chunks) dir);
          (* shrink the scan set: drop pre-cut allocations, keep post-cut
             ones plus the currently open segio (it will keep receiving
             post-checkpoint log records) *)
          let keep = Allocator.allocated_count t.alloc - cut in
          let extra =
            match t.open_writer with
            | Some w -> Array.to_list (Writer.members w)
            | None -> []
          in
          Allocator.checkpoint_mark t.alloc ~keep ~extra;
          t.medium_next_id <- max t.medium_next_id (Medium.peek_next_id t.medium_table);
          t.boot_generation_written <- Allocator.persist_generation t.alloc;
          Boot_region.write t.boot (encode_boot t) (fun () ->
              if not t.online then ()
                (* crash landed while the boot region was in flight: the
                   dead controller must neither mutate metadata nor let the
                   caller release victims — hang, failover abandons us *)
              else begin
              (* previous checkpoint's segments are now garbage *)
              List.iter
                (fun seg_id ->
                  match Hashtbl.find_opt t.segment_metas seg_id with
                  | None -> ()
                  | Some meta ->
                    Hashtbl.remove t.segment_metas seg_id;
                    ignore (put_delete t t.segments_pyr ~key:(Keys.segment_key seg_id));
                    Array.iter
                      (fun (m : Segment.member) ->
                        let d = Shelf.drive t.shelf m.Segment.drive in
                        if Drive.is_online d then Drive.trim_au d ~au:m.Segment.au)
                      meta.Segment.members;
                    Allocator.release t.alloc meta.Segment.members)
                (List.filter (fun s -> not (List.mem s t.checkpoint_segments)) old_ckpt);
              t.writes_since_checkpoint <- 0;
              let segments_used = t.next_segment_id - first_ckpt_segment in
              k
                {
                  patch_bytes = !total_bytes;
                  segments_used;
                  duration_us = Clock.now t.clock -. start;
                }
              end)
          end)
      end)
  end

(* Scrubbing (paper §5.1): "Purity periodically scrubs the underlying
   storage to proactively detect data loss. Worn-out flash leaks charge
   faster than new flash ... periodically scrubbing and rewriting data
   ensures that the worn-out flash is rewritten more frequently than the
   P/E calculations assumed."

   The scrubber reads every member AU of every live segment directly
   (bypassing the read scheduler so latent corruption is actually
   observed) and relocates any segment with a corrupt page — the rewrite
   both repairs the copy via Reed-Solomon and resets the data's retention
   clock. *)

open State

type report = {
  segments_checked : int;
  members_read : int;
  corrupt_members : int;
  segments_relocated : int;
  duration_us : float;
}

(* Check a segment's members; true if any read came back corrupt. *)
let check_segment t (meta : Segment.t) k =
  let pending = ref 0 in
  let corrupt = ref 0 in
  let members_read = ref 0 in
  let finish () = k (!corrupt, !members_read) in
  Array.iter
    (fun (m : Segment.member) ->
      let d = Shelf.drive t.shelf m.Segment.drive in
      if Drive.is_online d then begin
        let fill = Drive.au_fill d ~au:m.Segment.au in
        if fill > 0 then begin
          incr pending;
          incr members_read;
          Drive.read d ~au:m.Segment.au ~off:0 ~len:fill (fun result ->
              (match result with Error (`Corrupt _) -> incr corrupt | _ -> ());
              decr pending;
              if !pending = 0 then finish ())
        end
      end)
    meta.Segment.members;
  if !pending = 0 then finish ()

let run t k =
  let start = Clock.now t.clock in
  let c_passes = Registry.counter t.tel "scrub/passes" in
  let c_checked = Registry.counter t.tel "scrub/segments_checked" in
  let c_members = Registry.counter t.tel "scrub/members_read" in
  let c_corrupt = Registry.counter t.tel "scrub/corrupt_members" in
  let c_relocated = Registry.counter t.tel "scrub/segments_relocated" in
  let h_pass_us = Registry.histogram t.tel "scrub/pass_us" in
  let scrub_span = Span.start t.tracer "scrub_pass" in
  let open_id = match t.open_writer with Some w -> Writer.id w | None -> -1 in
  let targets =
    Hashtbl.fold (fun id m acc -> if id = open_id then acc else (id, m) :: acc) t.segment_metas []
  in
  let live = lazy (Gc.liveness t) in
  let checked = ref 0 and members = ref 0 and corrupt = ref 0 in
  let to_relocate = ref [] in
  let rec scan = function
    | [] -> relocate ()
    | (seg_id, meta) :: rest ->
      incr checked;
      check_segment t meta (fun (c, reads) ->
          members := !members + reads;
          if c > 0 then begin
            corrupt := !corrupt + c;
            to_relocate := seg_id :: !to_relocate
          end;
          scan rest)
  and relocate () =
    let content_cache = Gc.I64tbl.create 16 in
    let counters = (ref 0, ref 0, ref 0) in
    let released = ref [] in
    let rec go = function
      | [] ->
        if not t.online then ()
          (* crash landed between relocation steps; abandon the pass *)
        else begin
        seal_current t;
        when_flushed t (fun () ->
            (* Destroying a victim also destroys its header log records,
               which may hold the only durable copy of metadata facts
               whose NVRAM records were already trimmed. As in GC, a
               checkpoint must cover them before the segment goes away. *)
            let release k =
              match !released with
              | [] -> k ()
              | _ :: _ ->
                Checkpoint.run t (fun _ckpt ->
                    List.iter (Gc.release_segment t) !released;
                    maybe_persist_boot t;
                    k ())
            in
            release (fun () ->
            let duration_us = Clock.now t.clock -. start in
            Registry.incr c_passes;
            Registry.add c_checked !checked;
            Registry.add c_members !members;
            Registry.add c_corrupt !corrupt;
            Registry.add c_relocated (List.length !released);
            Histogram.record h_pass_us duration_us;
            Span.finish
              ~tags:
                [
                  ("checked", string_of_int !checked);
                  ("corrupt", string_of_int !corrupt);
                ]
              scrub_span;
            k
              {
                segments_checked = !checked;
                members_read = !members;
                corrupt_members = !corrupt;
                segments_relocated = List.length !released;
                duration_us;
              }))
        end
      | seg_id :: rest ->
        Gc.relocate_segment t ~live:(Lazy.force live) ~content_cache ~counters seg_id
          (fun ok ->
            if ok then released := seg_id :: !released;
            go rest)
    in
    go !to_relocate
  in
  scan targets

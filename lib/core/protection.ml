module Clock = Purity_sim.Clock
module Stbl = Purity_util.Keytbl.Str

type policy = { every_us : float; keep : int }

type entry = {
  policy : policy;
  mutable counter : int;
  mutable retained : string list; (* oldest first *)
  mutable active : bool;
}

type t = {
  array : Flash_array.t;
  entries : entry Stbl.t;
  mutable stopped : bool;
  mutable total_taken : int;
}

let create array = { array; entries = Stbl.create 8; stopped = false; total_taken = 0 }

let tick t volume entry =
  if (not t.stopped) && entry.active && Flash_array.volume_exists t.array volume then begin
    entry.counter <- entry.counter + 1;
    let snap = Printf.sprintf "%s.auto-%d" volume entry.counter in
    (match Flash_array.snapshot t.array ~volume ~snap with
    | Ok () ->
      t.total_taken <- t.total_taken + 1;
      entry.retained <- entry.retained @ [ snap ];
      (* expire beyond the retention window: one medium drop each *)
      while List.length entry.retained > entry.policy.keep do
        match entry.retained with
        | oldest :: rest ->
          ignore (Flash_array.delete_snapshot t.array oldest);
          entry.retained <- rest
        | [] -> ()
      done
    | Error _ -> () (* e.g. array offline mid-failover: retry next tick *));
    true
  end
  else false

let rec schedule t volume entry =
  Clock.schedule (Flash_array.clock t.array) ~delay:entry.policy.every_us (fun () ->
      if tick t volume entry then schedule t volume entry)

let protect t ~volume policy =
  if Stbl.mem t.entries volume then Error `Already
  else if not (Flash_array.volume_exists t.array volume) then Error `No_such_volume
  else if policy.keep <= 0 || policy.every_us <= 0.0 then
    invalid_arg "Protection.protect: keep and cadence must be positive"
  else begin
    let entry = { policy; counter = 0; retained = []; active = true } in
    Stbl.replace t.entries volume entry;
    schedule t volume entry;
    Ok ()
  end

let unprotect t ~volume =
  (match Stbl.find_opt t.entries volume with
  | Some e -> e.active <- false
  | None -> ());
  Stbl.remove t.entries volume

let stop t = t.stopped <- true

let snapshots t ~volume =
  match Stbl.find_opt t.entries volume with Some e -> e.retained | None -> []

let taken t = t.total_taken

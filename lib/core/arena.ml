(* Per-controller scratch arena for the segment-fill loop.

   The write path's checksum -> compress -> dedup -> RS fill pipeline used
   to allocate per block: a fresh 128 KiB LZ hash table, a Buffer, the
   compressed payload string, and the framed string, all just to blit the
   bytes into the segio and drop them. The arena owns one LZ scratch
   (epoch-stamped table + worst-case output buffer) and one frame Buffer,
   both reused for every block the controller stores, so the steady-state
   fill loop allocates nothing per block. A controller is single-threaded
   over its write path (the simulated clock serialises everything), so
   one arena per lane needs no further discipline: the serial path uses
   arena 0 only, and a parallel fill replicates the arena per pool lane
   (State.lane_arenas) so each lane compresses into private scratch. *)

type t = {
  lz : Purity_compress.Lz.scratch;
  frame : Buffer.t; (* cleared and refilled per cblock frame *)
}

let create () =
  { lz = Purity_compress.Lz.create_scratch (); frame = Buffer.create (40 * 1024) }

open State

type config = State.config = {
  drives : int;
  drive_config : Purity_ssd.Drive.config;
  k : int;
  m : int;
  write_unit : int;
  nvram_capacity : int;
  memtable_flush : int;
  read_around_write : bool;
  p95_backup : bool;
  max_segment_writers : int;
  inline_dedup : bool;
  compression : bool;
  dedup_config : Purity_dedup.Dedup.config;
  checkpoint_every_writes : int;
  read_cache_entries : int;
  map_cache_entries : int;
  secondary_warming : bool;
  seed : int64;
}

let default_config = State.default_config
let block_size = State.block_size

type t = {
  config : config;
  clk : Clock.t;
  mutable st : State.t;
  mutable app_reads : int;
  mutable crash_time : float option;
  mutable total_downtime : float;
  mutable fenced : bool;
  created_at : float;
}

(* Array-level derived metrics. Registered against the *current*
   controller's registry — re-run after every failover, since the spare
   boots with a fresh namespace (path counters reset, exactly as before
   telemetry existed) while these array-lifetime levels persist. *)
let register_array_telemetry t =
  let reg = t.st.tel in
  Registry.derive_int reg "array/app_reads" (fun () -> t.app_reads);
  Registry.derive_int reg "array/boot_region_writes" (fun () ->
      Boot_region.writes t.st.boot);
  Registry.derive_int reg "array/physical_bytes_used" (fun () ->
      Allocator.used_au_count t.st.alloc * t.st.cfg.drive_config.Drive.au_size);
  Registry.derive_int reg "array/physical_capacity" (fun () ->
      Shelf.physical_bytes t.st.shelf);
  Registry.derive_int reg "array/live_logical_bytes" (fun () ->
      Pyramid.live_key_count t.st.blocks * block_size);
  Registry.derive_int reg "array/provisioned_bytes" (fun () ->
      State.Stbl.fold
        (fun _ (v : State.volume) acc -> acc + (v.State.blocks * block_size))
        t.st.volumes 0);
  Registry.derive_float reg "array/data_reduction" (fun () ->
      let used = Allocator.used_au_count t.st.alloc * t.st.cfg.drive_config.Drive.au_size in
      if used = 0 then 1.0
      else float_of_int (Pyramid.live_key_count t.st.blocks * block_size) /. float_of_int used);
  Registry.derive_float reg "array/availability" (fun () ->
      let elapsed = Clock.now t.clk -. t.created_at in
      let down =
        t.total_downtime
        +. (match t.crash_time with Some at -> Clock.now t.clk -. at | None -> 0.0)
      in
      if elapsed <= 0.0 then 1.0 else (elapsed -. down) /. elapsed)

let create ?(config = default_config) ~clock () =
  let t =
    { config; clk = clock; st = State.create ~config ~clock (); app_reads = 0;
      crash_time = None; total_downtime = 0.0; fenced = false;
      created_at = Clock.now clock }
  in
  register_array_telemetry t;
  t

let clock t = t.clk
let shelf t = t.st.shelf
let state t = t.st
let is_online t = t.st.online
let telemetry t = t.st.tel
let tracer t = t.st.tracer

type vol_error = [ `Exists | `No_such_volume | `Busy | `Is_snapshot | `Is_volume ]
type write_error = [ Write_path.error | `Fenced ]
type read_error = [ Read_path.error | `Fenced ]

(* Cluster-level fencing (ActiveCluster split-brain resolution): a fenced
   array refuses host I/O at the front door until the cluster layer
   unfences it. The flag lives outside [st] on purpose — it is imposed on
   the appliance, not on a controller, so a failover boots the spare
   still fenced. Maintenance (GC, scrub, rebuild, checkpoint) keeps
   running: fencing stops the host, not the array. *)
let fence t = t.fenced <- true
let unfence t = t.fenced <- false
let is_fenced t = t.fenced

(* ---------- volumes ---------- *)

let create_volume t name ~blocks =
  let st = t.st in
  if State.Stbl.mem st.volumes name then Error `Exists
  else if blocks <= 0 then invalid_arg "create_volume: blocks must be positive"
  else begin
    let medium = Medium.create_base st.medium_table ~blocks in
    st.medium_next_id <- Medium.peek_next_id st.medium_table;
    let v = { medium; blocks; kind = Volume; observer = fresh_observer () } in
    State.Stbl.replace st.volumes name v;
    persist_medium st medium;
    persist_volume st name v;
    maybe_persist_boot st;
    Ok ()
  end

(* Is a medium the current medium of any volume or snapshot? *)
let medium_in_use st medium =
  State.Stbl.fold (fun _ v acc -> acc || v.medium = medium) st.volumes false

(* Drop a medium and cascade into ancestors that become unreferenced.
   Each drop is one elide insert per table — the paper's point. *)
let rec drop_medium_cascade st medium =
  if
    Medium.exists st.medium_table medium
    && (not (medium_in_use st medium))
    && (match Medium.referenced_by st.medium_table medium with [] -> true | _ :: _ -> false)
  then begin
    let targets =
      Medium.extents st.medium_table medium
      |> List.filter_map (fun (e : Medium.extent) ->
             match e.Medium.target with
             | Medium.Underlying { medium = m; _ } -> Some m
             | Medium.Base -> None)
      |> List.sort_uniq Int.compare
    in
    Medium.drop st.medium_table medium;
    ignore (put_elide st st.mediums_pyr ~lo:medium ~hi:medium);
    ignore (put_elide st st.blocks ~lo:medium ~hi:medium);
    List.iter (drop_medium_cascade st) targets
  end

let delete_volume t name =
  let st = t.st in
  match State.Stbl.find_opt st.volumes name with
  | None -> Error `No_such_volume
  | Some { kind = Snapshot; _ } -> Error `Is_snapshot
  | Some v ->
    State.Stbl.remove st.volumes name;
    ignore (put_delete st st.volumes_pyr ~key:name);
    drop_medium_cascade st v.medium;
    Ok ()

let resize_volume t name ~blocks =
  let st = t.st in
  match State.Stbl.find_opt st.volumes name with
  | None -> Error `No_such_volume
  | Some { kind = Snapshot; _ } -> Error `Is_snapshot
  | Some v ->
    if blocks < v.blocks then Error `Shrink
    else begin
      if blocks > v.blocks then begin
        Medium.extend st.medium_table v.medium ~blocks:(blocks - v.blocks);
        v.blocks <- blocks;
        persist_medium st v.medium;
        persist_volume st name v
      end;
      Ok ()
    end

let snapshot t ~volume ~snap =
  let st = t.st in
  match State.Stbl.find_opt st.volumes volume with
  | None -> Error `No_such_volume
  | Some { kind = Snapshot; _ } -> Error `Is_snapshot
  | Some v ->
    if State.Stbl.mem st.volumes snap then Error `Exists
    else begin
      let frozen = v.medium in
      let snap_medium, successor = Medium.take_snapshot st.medium_table frozen in
      st.medium_next_id <- Medium.peek_next_id st.medium_table;
      v.medium <- successor;
      let s = { medium = snap_medium; blocks = v.blocks; kind = Snapshot; observer = fresh_observer () } in
      State.Stbl.replace st.volumes snap s;
      persist_medium st frozen;
      persist_medium st snap_medium;
      persist_medium st successor;
      persist_volume st volume v;
      persist_volume st snap s;
      Ok ()
    end

let clone t ~snapshot:snap_name ~volume =
  let st = t.st in
  match State.Stbl.find_opt st.volumes snap_name with
  | None -> Error `No_such_volume
  | Some { kind = Volume; _ } -> Error `Is_volume
  | Some s ->
    if State.Stbl.mem st.volumes volume then Error `Exists
    else begin
      (* clone the medium the snapshot references (its frozen parent): the
         snapshot handle itself is an empty pass-through layer *)
      let parent =
        match Medium.extents st.medium_table s.medium with
        | [ { Medium.target = Medium.Underlying { medium; _ }; _ } ] -> medium
        | _ -> s.medium
      in
      let medium = Medium.clone st.medium_table parent () in
      st.medium_next_id <- Medium.peek_next_id st.medium_table;
      let v = { medium; blocks = s.blocks; kind = Volume; observer = fresh_observer () } in
      State.Stbl.replace st.volumes volume v;
      persist_medium st medium;
      persist_volume st volume v;
      Ok ()
    end

let delete_snapshot t name =
  let st = t.st in
  match State.Stbl.find_opt st.volumes name with
  | None -> Error `No_such_volume
  | Some { kind = Volume; _ } -> Error `Is_volume
  | Some v ->
    State.Stbl.remove st.volumes name;
    ignore (put_delete st st.volumes_pyr ~key:name);
    drop_medium_cascade st v.medium;
    Ok ()

let list_volumes t =
  State.Stbl.fold
    (fun name v acc ->
      (name, (match v.kind with Volume -> `Volume | Snapshot -> `Snapshot), v.blocks) :: acc)
    t.st.volumes []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let volume_exists t name = State.Stbl.mem t.st.volumes name

let inferred_io_blocks t name =
  match State.Stbl.find_opt t.st.volumes name with
  | Some v -> Some (State.inferred_io_blocks v.State.observer)
  | None -> None

(* ---------- data path ---------- *)

let write t ~volume ~block data k =
  if t.fenced then Clock.schedule t.clk ~delay:0.0 (fun () -> k (Error `Fenced))
  else
    Write_path.write t.st ~volume ~block data (fun r ->
        maybe_persist_boot t.st;
        (match (r, t.st.cfg.checkpoint_every_writes) with
        | Ok (), n when n > 0 && t.st.writes_since_checkpoint >= n ->
          t.st.writes_since_checkpoint <- 0;
          Checkpoint.run t.st (fun _ -> ())
        | _ -> ());
        k (r :> (unit, write_error) result))

let read t ~volume ~block ~nblocks k =
  if t.fenced then Clock.schedule t.clk ~delay:0.0 (fun () -> k (Error `Fenced))
  else begin
    t.app_reads <- t.app_reads + 1;
    Read_path.read t.st ~volume ~block ~nblocks (fun r ->
        k (r :> (string, read_error) result))
  end

let flush t k =
  (try seal_current t.st with Out_of_space -> ());
  when_flushed t.st k

(* ---------- maintenance ---------- *)

let checkpoint t k = Checkpoint.run t.st k
let gc ?min_dead_ratio ?max_victims t k = Gc.run ?min_dead_ratio ?max_victims t.st k
let scrub t k = Scrub.run t.st k

(* ---------- faults ---------- *)

let pull_drive t i = Shelf.pull_drive t.st.shelf i
let reinsert_drive t i = Shelf.reinsert_drive t.st.shelf i
let replace_drive t i = Shelf.replace_drive t.st.shelf i

let inject_page_corruption t ~drive ~au ~page =
  Drive.inject_page_corruption (Shelf.drive t.st.shelf drive) ~au ~page

let lose_nvram t = Nvram.lose (Shelf.nvram t.st.shelf)
let set_read_fault t f = Io.set_fault t.st.io f

let rebuild_drive t drive k =
  let st = t.st in
  (* flush the open segio first so every segment touching the drive is a
     sealed, relocatable victim *)
  (try seal_current st with Out_of_space -> ());
  when_flushed st (fun () ->
  let victims =
    Hashtbl.fold
      (fun id (meta : Segment.t) acc ->
        let touches =
          Array.exists (fun (m : Segment.member) -> m.Segment.drive = drive) meta.Segment.members
        in
        if touches then id :: acc else acc)
      st.segment_metas []
  in
  let live = Gc.liveness st in
  let content_cache = Purity_util.Keytbl.I64.create 16 in
  let counters = (ref 0, ref 0, ref 0) in
  let released = ref [] in
  let rec go = function
    | [] ->
      (try seal_current st with Out_of_space -> ());
      when_flushed st (fun () ->
          match !released with
          | [] -> k 0
          | _ :: _ ->
            (* as in GC and scrub: a checkpoint must cover the victims'
               log records before their headers are destroyed *)
            Checkpoint.run st (fun _ckpt ->
                List.iter (Gc.release_segment st) !released;
                maybe_persist_boot st;
                k (List.length !released)))
    | seg :: rest ->
      Gc.relocate_segment st ~live ~content_cache ~counters seg (fun ok ->
          if ok then released := seg :: !released;
          go rest)
  in
  go victims)

let crash t =
  t.st.online <- false;
  State.halt_device_activity t.st;
  t.crash_time <- Some (Clock.now t.clk)

let failover ?mode t k =
  if t.st.online then crash t;
  let st' =
    State.create_over ~config:t.config ~clock:t.clk ~shelf:t.st.shelf ~boot:t.st.boot ()
  in
  let old_st = t.st in
  Recovery.recover ?mode st' (fun report ->
      State.warm_cache ~from:old_st ~into:st';
      t.st <- st';
      (* the spare controller's registry is fresh: re-derive the
         array-lifetime metrics over the new state *)
      register_array_telemetry t;
      (match t.crash_time with
      | Some at ->
        t.total_downtime <- t.total_downtime +. (Clock.now t.clk -. at);
        t.crash_time <- None
      | None -> ());
      k report)

(* ---------- statistics ---------- *)

type stats = {
  app_writes : int;
  app_reads : int;
  logical_bytes_written : int;
  stored_bytes_written : int;
  live_logical_bytes : int;
  physical_bytes_used : int;
  physical_capacity : int;
  data_reduction : float;
  provisioned_virtual_bytes : int;
  dedup_blocks : int;
  gc_dedup_blocks : int;
  write_latency : Purity_util.Histogram.t;
  read_latency : Purity_util.Histogram.t;
  io : Purity_sched.Io.stats;
  boot_region_writes : int;
  segments_live : int;
  availability : float;
  cache_hits : int;
  cache_misses : int;
}

let stats t =
  let st = t.st in
  let au = st.cfg.drive_config.Drive.au_size in
  let live_logical = Pyramid.live_key_count st.blocks * block_size in
  let physical_used = Allocator.used_au_count st.alloc * au in
  let capacity = Shelf.physical_bytes st.shelf in
  let provisioned =
    State.Stbl.fold
      (fun _ (v : State.volume) acc -> acc + (v.State.blocks * block_size))
      st.volumes 0
  in
  let elapsed = Clock.now t.clk -. t.created_at in
  let down =
    t.total_downtime
    +. (match t.crash_time with Some at -> Clock.now t.clk -. at | None -> 0.0)
  in
  (* the path counters live in the telemetry registry now; [stats] reads
     them back through their handles, so both views always agree *)
  {
    app_writes = Registry.value st.ws.app_writes;
    app_reads = t.app_reads;
    logical_bytes_written = Registry.value st.ws.logical_bytes;
    stored_bytes_written = Registry.value st.ws.stored_bytes;
    live_logical_bytes = live_logical;
    physical_bytes_used = physical_used;
    physical_capacity = capacity;
    data_reduction =
      (if physical_used = 0 then 1.0
       else float_of_int live_logical /. float_of_int physical_used);
    provisioned_virtual_bytes = provisioned;
    dedup_blocks = Registry.value st.ws.dedup_blocks;
    gc_dedup_blocks = Registry.value st.ws.gc_dedup_blocks;
    write_latency = st.write_lat;
    read_latency = st.read_lat;
    io = Io.stats st.io;
    boot_region_writes = Boot_region.writes st.boot;
    segments_live = Hashtbl.length st.segment_metas;
    availability = (if elapsed <= 0.0 then 1.0 else (elapsed -. down) /. elapsed);
    cache_hits = Registry.value st.ws.cache_hits;
    cache_misses = Registry.value st.ws.cache_misses;
  }

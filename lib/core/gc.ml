(* The garbage collector (paper §4.5, §4.7, §4.10):

   - exact liveness scan of the block index (the paper keeps approximate
     counters and "fixes them up by issuing additional reads at runtime";
     the scan is those reads);
   - victim selection: live segments with the highest dead ratio
     (unordered log-structured cleaning);
   - relocation of live cblocks into the current segio, collapsing
     byte-identical cblocks on the way (the background dedup pass);
   - medium-tree flattening via shortcuts so reads stay within the
     three-cblock bound;
   - pyramid compaction, which is where elided facts actually vanish;
   - victims' AUs trimmed and returned to the allocator only after the
     relocated data has reached the drives. *)

open State
module I64tbl = Purity_util.Keytbl.I64
module Xxhash = Purity_util.Xxhash

type report = {
  victims : int list;
  relocated_cblocks : int;
  relocated_bytes : int;
  reclaimed_bytes : int;
  gc_dedup_hits : int;
  shared_cblocks : int;
      (* cblocks with more references than logical blocks, segregated into
         their own segments (paper 4.7: multiply-referenced blocks are
         less likely to die, so mixing them with ordinary data would make
         future segments harder to clean) *)
  duration_us : float;
}

(* Map segment -> (cblock off -> (stored_len, [(medium, block, index)])). *)
let liveness t =
  let table : (int, (int, int * (int * int * int) list ref) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 64
  in
  Pyramid.iter_live t.blocks (fun ~key ~value ->
      let r = Blockref.decode value in
      let medium = Keys.block_key_medium key and block = Keys.block_key_block key in
      let per_seg =
        match Hashtbl.find_opt table r.Blockref.segment with
        | Some h -> h
        | None ->
          let h = Hashtbl.create 16 in
          Hashtbl.replace table r.Blockref.segment h;
          h
      in
      (match Hashtbl.find_opt per_seg r.Blockref.off with
      | Some (_, refs) -> refs := (medium, block, r.Blockref.index) :: !refs
      | None ->
        Hashtbl.replace per_seg r.Blockref.off
          (r.Blockref.stored_len, ref [ (medium, block, r.Blockref.index) ])));
  table

let live_bytes_of per_seg = Hashtbl.fold (fun _ (len, _) acc -> acc + len) per_seg 0

(* Relocate every live cblock of one segment; calls [k true] when every
   live cblock was moved (data durability is the caller's seal+flush),
   [k false] if any read failed — the victim must then be kept alive, or
   the surviving references would dangle. *)
let relocate_segment t ~live ~content_cache ~counters seg_id k =
  match (Hashtbl.find_opt t.segment_metas seg_id, Hashtbl.find_opt live seg_id) with
  | None, _ -> k true
  | Some _, None -> k true
  | Some meta, Some per_seg ->
    (* shared first: a cblock with more references than ~logical blocks is
       deduplicated; segregating the phases clusters such cblocks together
       (the caller seals between phases across victims) *)
    let entries = Hashtbl.fold (fun off v acc -> (off, v) :: acc) per_seg [] in
    let shared, plain =
      List.partition
        (fun (_, (stored_len, refs)) ->
          List.length !refs > max 1 (stored_len / 512))
        entries
    in
    let entries = shared @ plain in
    let relocated, rel_bytes, dedup_hits = counters in
    let all_ok = ref true in
    let rec go = function
      | [] -> k !all_ok
      | (off, (stored_len, refs)) :: rest ->
        Io.read t.io meta ~off ~len:stored_len (fun result ->
            (match result with
            | Error `Unrecoverable ->
              (* cannot move this cblock right now (too many drives out or
                 busy): keep the victim; a later pass retries *)
              all_ok := false
            | Ok frame -> (
              (* [store_blob]/[put] raise Out_of_space if the controller
                 died while the read was in flight (dead controllers
                 allocate nothing); the victim is then simply kept *)
              try
                let fingerprint = Xxhash.hash frame ~pos:0 ~len:(Bytes.length frame) in
                let base =
                  match I64tbl.find_opt content_cache fingerprint with
                  | Some (base, cached) when String.equal cached (Bytes.to_string frame) ->
                    incr dedup_hits;
                    Registry.incr t.ws.gc_dedup_blocks;
                    base
                  | _ ->
                    let segment, new_off = store_blob t (Bytes.to_string frame) in
                    let base =
                      { Blockref.segment; off = new_off; stored_len; index = 0 }
                    in
                    I64tbl.replace content_cache fingerprint (base, Bytes.to_string frame);
                    incr relocated;
                    rel_bytes := !rel_bytes + stored_len;
                    base
                in
                List.iter
                  (fun (medium, block, index) ->
                    ignore
                      (put t t.blocks
                         ~key:(Keys.block_key ~medium ~block)
                         ~value:(Blockref.encode { base with Blockref.index })))
                  !refs
              with Out_of_space -> all_ok := false));
            go rest)
    in
    go entries

let release_segment t seg_id =
  match Hashtbl.find_opt t.segment_metas seg_id with
  | None -> ()
  | Some meta ->
    Hashtbl.remove t.segment_metas seg_id;
    ignore (put_delete t t.segments_pyr ~key:(Keys.segment_key seg_id));
    Array.iter
      (fun (m : Segment.member) ->
        let d = Shelf.drive t.shelf m.Segment.drive in
        if Drive.is_online d then Drive.trim_au d ~au:m.Segment.au)
      meta.Segment.members;
    Allocator.release t.alloc meta.Segment.members;
    (* inline-dedup sources living in the victim are gone *)
    let stale =
      Hashtbl.fold
        (fun wid (r : Blockref.t) acc -> if r.Blockref.segment = seg_id then wid :: acc else acc)
        t.dedup_locs []
    in
    List.iter
      (fun wid ->
        Hashtbl.remove t.dedup_locs wid;
        Dedup.forget t.dedup ~write_id:wid)
      stale

let flatten_mediums t =
  Medium.shortcut t.medium_table ~has_blocks:(fun ~medium ~lo ~hi ->
      medium_has_blocks t ~medium ~lo ~hi);
  List.iter (fun m -> persist_medium t m) (Medium.live_mediums t.medium_table)

let run ?(min_dead_ratio = 0.25) ?(max_victims = 4) t k =
  let start = Clock.now t.clock in
  (* pass-level telemetry (registration is idempotent, so grabbing the
     handles here keeps them tied to the current controller's registry) *)
  let c_passes = Registry.counter t.tel "gc/passes" in
  let c_victims = Registry.counter t.tel "gc/victim_segments" in
  let c_relocated = Registry.counter t.tel "gc/relocated_cblocks" in
  let c_rel_bytes = Registry.counter t.tel "gc/relocated_bytes" in
  let c_reclaimed = Registry.counter t.tel "gc/reclaimed_bytes" in
  let h_pass_us = Registry.histogram t.tel "gc/pass_us" in
  let gc_span = Span.start t.tracer "gc_pass" in
  let live = liveness t in
  let open_id = match t.open_writer with Some w -> Writer.id w | None -> -1 in
  let protected_ = open_id :: t.checkpoint_segments in
  let candidates =
    Hashtbl.fold
      (fun seg_id (meta : Segment.t) acc ->
        if List.mem seg_id protected_ then acc
        else begin
          let data_bytes = meta.Segment.payload_len in
          if data_bytes = 0 then acc
          else begin
            let lb =
              match Hashtbl.find_opt live seg_id with
              | Some per_seg -> live_bytes_of per_seg
              | None -> 0
            in
            let dead_ratio = 1.0 -. (float_of_int lb /. float_of_int data_bytes) in
            if dead_ratio >= min_dead_ratio then (seg_id, dead_ratio) :: acc else acc
          end
        end)
      t.segment_metas []
  in
  let victims =
    List.sort (fun (_, a) (_, b) -> Float.compare b a) candidates
    |> List.filteri (fun i _ -> i < max_victims)
    |> List.map fst
  in
  let content_cache = I64tbl.create 64 in
  let relocated = ref 0 and rel_bytes = ref 0 and dedup_hits = ref 0 in
  let counters = (relocated, rel_bytes, dedup_hits) in
  let releasable = ref [] in
  (* 4.7 segregation: relocate multiply-referenced cblocks in their own
     phase, sealing the segio in between, so deduplicated data clusters in
     dedicated segments *)
  let shared_count = ref 0 in
  let rec relocate_all = function
    | [] ->
      (* flatten medium trees, then checkpoint: the checkpoint both
         persists the relocation facts and makes every victim's log
         records redundant (they are covered by the new patches), so the
         victims can be destroyed without losing recovery information *)
      if not t.online then ()
        (* crash landed between relocation steps; abandon the pass *)
      else begin
      flatten_mediums t;
      Checkpoint.run t (fun _ckpt ->
          let releasable = List.rev !releasable in
          let reclaimed =
            List.fold_left
              (fun acc seg_id ->
                match Hashtbl.find_opt t.segment_metas seg_id with
                | Some meta ->
                  acc
                  + (Array.length meta.Segment.members
                    * t.cfg.drive_config.Drive.au_size)
                | None -> acc)
              0 releasable
          in
          List.iter (release_segment t) releasable;
          maybe_persist_boot t;
          let duration_us = Clock.now t.clock -. start in
          Registry.incr c_passes;
          Registry.add c_victims (List.length releasable);
          Registry.add c_relocated !relocated;
          Registry.add c_rel_bytes !rel_bytes;
          Registry.add c_reclaimed reclaimed;
          Histogram.record h_pass_us duration_us;
          Span.finish
            ~tags:
              [
                ("victims", string_of_int (List.length releasable));
                ("relocated", string_of_int !relocated);
              ]
            gc_span;
          k
            {
              victims = releasable;
              relocated_cblocks = !relocated;
              relocated_bytes = !rel_bytes;
              reclaimed_bytes = reclaimed;
              gc_dedup_hits = !dedup_hits;
              shared_cblocks = !shared_count;
              duration_us;
            })
      end
    | seg_id :: rest ->
      relocate_segment t ~live ~content_cache ~counters seg_id (fun ok ->
          if ok then releasable := seg_id :: !releasable;
          relocate_all rest)
  in
  (* count the shared cblocks for the report (segregation happens inside
     relocate_segment's two-phase ordering) *)
  List.iter
    (fun seg_id ->
      match Hashtbl.find_opt live seg_id with
      | None -> ()
      | Some per_seg ->
        Hashtbl.iter
          (fun _ (stored_len, refs) ->
            if List.length !refs > max 1 (stored_len / 512) then incr shared_count)
          per_seg)
    victims;
  relocate_all victims

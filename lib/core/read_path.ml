(* The read path: (volume, block range) -> medium chain resolution
   (paper §4.5) -> block references -> coalesced cblock reads through the
   scheduler (read-around-write, reconstruction) -> decompress -> copy the
   requested 512 B slices out.

   Blocks with no reference anywhere in the chain read as zeros (thin
   provisioning); the paper's note that small reads "generally retrieve a
   single cblock" falls out of cblock sizing, visible in the coalescing
   statistics. *)

open State

type error = [ `No_such_volume | `Out_of_range | `Offline | `Media_failure ]

(* One physical cblock fetch serving several requested blocks. *)
type fetch = {
  ref_ : Blockref.t; (* index field unused here: whole-cblock fetch *)
  mutable slices : (int * int) list; (* (output block position, cblock index) *)
}

let plan t ~medium ~block ~nblocks =
  (* Resolve the whole range in one batched pass (each medium level does
     one lower_bound + walk per patch instead of a binary search per
     block), then group consecutive blocks that live in the same cblock
     into one fetch. *)
  let refs = resolve_range t ~medium ~block ~nblocks in
  let fetches : fetch list ref = ref [] in
  let zeros = ref [] in
  for i = 0 to nblocks - 1 do
    match refs.(i) with
    | None -> zeros := i :: !zeros
    | Some r -> (
      match !fetches with
      | f :: _ when Blockref.same_cblock f.ref_ r ->
        f.slices <- (i, r.Blockref.index) :: f.slices
      | _ -> fetches := { ref_ = r; slices = [ (i, r.Blockref.index) ] } :: !fetches)
  done;
  (List.rev !fetches, !zeros)

let read t ~volume ~block ~nblocks k =
  let start = Clock.now t.clock in
  let fail e = Clock.schedule t.clock ~delay:0.0 (fun () -> k (Error e)) in
  if not t.online then fail `Offline
  else
    match Stbl.find_opt t.volumes volume with
    | None -> fail `No_such_volume
    | Some v ->
      if nblocks <= 0 || block < 0 || block + nblocks > v.blocks then fail `Out_of_range
      else begin
        let out = Bytes.make (nblocks * block_size) '\000' in
        let fetches, _zeros = plan t ~medium:v.medium ~block ~nblocks in
        let rspan =
          Span.start t.tracer
            ~tags:
              [
                ("volume", volume);
                ("blocks", string_of_int nblocks);
                ("fetches", string_of_int (List.length fetches));
              ]
            "read"
        in
        let pending = ref (List.length fetches) in
        let failed = ref false in
        let finish () =
          if !failed then begin
            Span.finish ~tags:[ ("error", "media_failure") ] rspan;
            k (Error `Media_failure)
          end
          else begin
            Span.finish rspan;
            Histogram.record t.read_lat (Clock.now t.clock -. start);
            k (Ok (Bytes.unsafe_to_string out))
          end
        in
        match fetches with
        | [] ->
          (* all-zero read: charge a trivial metadata-only latency *)
          Clock.schedule t.clock ~delay:1.0 finish
        | _ :: _ ->
          List.iter
            (fun f ->
              match Hashtbl.find_opt t.unflushed f.ref_.Blockref.segment with
              | Some w -> (
                (* data still in the segio's RAM buffer: DRAM-speed read *)
                match
                  Writer.peek_payload w ~off:f.ref_.Blockref.off
                    ~len:f.ref_.Blockref.stored_len
                with
                | None ->
                  failed := true;
                  decr pending;
                  if !pending = 0 then finish ()
                | Some frame ->
                  Clock.schedule t.clock ~delay:2.0 (fun () ->
                      (match Cblock.decode (Bytes.unsafe_of_string frame) ~pos:0 with
                      | exception Invalid_argument _ -> failed := true
                      | cb, _ ->
                        let data = Cblock.data cb in
                        List.iter
                          (fun (out_block, cb_index) ->
                            let src = cb_index * block_size in
                            if src + block_size <= String.length data then
                              Bytes.blit_string data src out (out_block * block_size)
                                block_size
                            else failed := true)
                          f.slices);
                      decr pending;
                      if !pending = 0 then finish ()))
              | None -> (
                let cache_key = (f.ref_.Blockref.segment, f.ref_.Blockref.off) in
                let deliver_frame frame =
                  match Cblock.decode frame ~pos:0 with
                  | exception Invalid_argument _ -> failed := true
                  | cb, _ ->
                    let data = Cblock.data cb in
                    List.iter
                      (fun (out_block, cb_index) ->
                        let src = cb_index * block_size in
                        if src + block_size <= String.length data then
                          Bytes.blit_string data src out (out_block * block_size)
                            block_size
                        else failed := true)
                      f.slices
                in
                match
                  if t.cfg.read_cache_entries > 0 then
                    Purity_util.Lru.find t.read_cache cache_key
                  else None
                with
                | Some frame ->
                  (* controller-DRAM hit *)
                  Registry.incr t.ws.cache_hits;
                  Clock.schedule t.clock ~delay:2.0 (fun () ->
                      deliver_frame (Bytes.unsafe_of_string frame);
                      decr pending;
                      if !pending = 0 then finish ())
                | None -> (
                  Registry.incr t.ws.cache_misses;
                  match find_segment t f.ref_.Blockref.segment with
                  | None ->
                    failed := true;
                    decr pending;
                    if !pending = 0 then finish ()
                  | Some seg ->
                    Io.read t.io seg ~off:f.ref_.Blockref.off
                      ~len:f.ref_.Blockref.stored_len (fun result ->
                        (match result with
                        | Error `Unrecoverable -> failed := true
                        | Ok frame ->
                          if t.cfg.read_cache_entries > 0 then
                            Purity_util.Lru.add t.read_cache cache_key
                              (Bytes.to_string frame);
                          deliver_frame frame);
                        decr pending;
                        if !pending = 0 then finish ()))))
            fetches
      end

(** The Purity array: the public API of this reproduction.

    One [Flash_array.t] is a simulated Pure Storage appliance: a shelf of
    flash drives plus NVRAM behind a controller running the Purity
    storage engine — log-structured segments with 7+2 Reed–Solomon
    striping, pyramids (LSM trees) with predicate elision for all
    metadata, mediums for snapshots/clones, inline compression and
    deduplication, frontier-set crash recovery, and controller failover.

    All I/O is asynchronous against the shared simulation clock: calls
    take a continuation that fires at the operation's simulated
    completion time. Drive the clock with {!Purity_sim.Clock.run} (or
    [run_until]) to make progress.

    {2 Quickstart}

    {[
      let clock = Purity_sim.Clock.create () in
      let array = Flash_array.create ~clock () in
      Flash_array.create_volume array "db" ~blocks:4096 |> Result.get_ok;
      Flash_array.write array ~volume:"db" ~block:0 data (fun _ -> ());
      Flash_array.read array ~volume:"db" ~block:0 ~nblocks:8 (fun r -> ...);
      Purity_sim.Clock.run clock
    ]} *)

type t

type config = State.config = {
  drives : int;  (** shelf width (paper: 11–24) *)
  drive_config : Purity_ssd.Drive.config;
  k : int;  (** Reed–Solomon data shards (paper: 7) *)
  m : int;  (** parity shards (paper: 2) *)
  write_unit : int;
  nvram_capacity : int;
  memtable_flush : int;
  read_around_write : bool;  (** §4.4 scheduling (E6 ablation switch) *)
  p95_backup : bool;  (** hedged reads at the observed p95 *)
  max_segment_writers : int;  (** concurrent programming drives per segio *)
  inline_dedup : bool;
  compression : bool;
  dedup_config : Purity_dedup.Dedup.config;
  checkpoint_every_writes : int;  (** 0 = checkpoint manually *)
  read_cache_entries : int;
      (** cblock frames cached in controller DRAM (0 disables) *)
  map_cache_entries : int;
      (** logical->blockref mapping-cache slots (0 disables) *)
  secondary_warming : bool;
      (** §4.3: the primary warms the spare's cache, so failover starts
          warm (E14 ablation switch) *)
  seed : int64;
}

val default_config : config
(** 11 drives of ~64 MiB (128 AUs of 516 KiB), 7+2, 32 KiB write units —
    a laptop-scale array preserving the paper's geometry ratios. *)

val create : ?config:config -> clock:Purity_sim.Clock.t -> unit -> t

val block_size : int
(** 512 bytes — the paper's minimum unit of I/O, dedup and compression. *)

(** {1 Volumes and snapshots}

    Volumes and snapshots share one namespace. Snapshots are read-only.
    All sizes and addresses are in 512-byte blocks. *)

type vol_error = [ `Exists | `No_such_volume | `Busy | `Is_snapshot | `Is_volume ]

val create_volume : t -> string -> blocks:int -> (unit, vol_error) result
val delete_volume : t -> string -> (unit, vol_error) result
(** Deletes the volume and elides every medium that becomes unreferenced —
    a handful of elide-table inserts, not a per-block walk (§4.10). *)

val resize_volume : t -> string -> blocks:int -> (unit, [ vol_error | `Shrink ]) result
(** Grow only. *)

val snapshot : t -> volume:string -> snap:string -> (unit, vol_error) result
(** O(1): freezes the volume's medium and redirects new writes to a fresh
    successor medium (§4.5). *)

val clone : t -> snapshot:string -> volume:string -> (unit, vol_error) result
(** Writable clone of a snapshot; shares all unmodified data. *)

val delete_snapshot : t -> string -> (unit, vol_error) result

val list_volumes : t -> (string * [ `Volume | `Snapshot ] * int) list
(** (name, kind, size in blocks), sorted by name. *)

val volume_exists : t -> string -> bool

val inferred_io_blocks : t -> string -> int option
(** §4.6: the volume's observed dominant write size (in 512 B blocks),
    which the write path uses to size cblocks — "instead of having
    administrators guess optimal block sizes, Purity infers optimal
    transfer sizes by observing I/O requests". 64 (32 KiB) until enough
    writes have been observed. *)

(** {1 Data path} *)

type write_error = [ Write_path.error | `Fenced ]
type read_error = [ Read_path.error | `Fenced ]
(** [`Fenced]: the array has been fenced by the cluster layer (see
    {!fence}) and refuses host I/O at the front door. *)

val write :
  t -> volume:string -> block:int -> string -> ((unit, write_error) result -> unit) -> unit
(** Write data (length a positive multiple of 512) at a block address.
    The continuation fires when the write is durable (NVRAM commit). *)

val read :
  t ->
  volume:string ->
  block:int ->
  nblocks:int ->
  ((string, read_error) result -> unit) ->
  unit
(** Read blocks from a volume or snapshot; unwritten blocks are zeros. *)

val flush : t -> (unit -> unit) -> unit
(** Seal the open segio and wait for every in-flight segment flush —
    quiesce before maintenance or planned failover. *)

(** {1 Maintenance} *)

val checkpoint : t -> (Checkpoint.report -> unit) -> unit
(** Persist all pyramids and rewrite the boot region; shrinks the set of
    segments failover must scan. *)

val gc : ?min_dead_ratio:float -> ?max_victims:int -> t -> (Gc.report -> unit) -> unit
(** One garbage-collection pass: relocate live data out of the emptiest
    segments, flatten medium trees, compact pyramids, reclaim AUs. *)

val scrub : t -> (Scrub.report -> unit) -> unit
(** Proactive media scrub: read every member AU, relocate segments with
    corrupt pages (repairing via Reed–Solomon and refreshing retention). *)

(** {1 Faults and availability} *)

val pull_drive : t -> int -> unit
val reinsert_drive : t -> int -> unit
val replace_drive : t -> int -> unit

val rebuild_drive : t -> int -> (int -> unit) -> unit
(** Relocate every segment that had a member on the given (failed or
    replaced) drive, restoring full 7+2 redundancy; the callback receives
    the number of segments rebuilt. *)

val inject_page_corruption : t -> drive:int -> au:int -> page:int -> unit
(** Deterministic fault injection: mark one flash page latently corrupt,
    as if its charge had leaked (cleared when the AU is next erased). The
    hook behind [purity.check]'s corruption faults; scrub and degraded
    reads must repair around it. *)

val lose_nvram : t -> unit
(** Fault injection: the NVRAM device drops every pending record. Writes
    acked but not yet durable in flushed segments are the exposure — the
    reference model treats them as legitimately lost at the next crash. *)

val set_read_fault : t -> (drive:int -> bool) option -> unit
(** Install (or clear) a read-fault predicate on the segment scheduler:
    matching drives serve no shards, forcing degraded reads. Installed on
    the *current* controller — a failover boots the spare with no fault
    predicate, so re-install after {!failover} if still wanted. *)

val crash : t -> unit
(** Simulate controller loss: all volatile state is gone; the shelf
    (drives, NVRAM, boot region) survives. The array rejects I/O until
    {!failover} completes. *)

val failover : ?mode:Recovery.mode -> t -> (Recovery.report -> unit) -> unit
(** Bring up the (stateless) peer controller: run recovery over the shelf
    and resume service. Time from {!crash} to completion counts as
    downtime. Acked writes and all metadata survive. *)

val is_online : t -> bool

val fence : t -> unit
(** Cluster-level fencing (ActiveCluster §6-style split-brain
    resolution): refuse all host reads and writes with [`Fenced] until
    {!unfence}. The fence is a property of the appliance, not of a
    controller — it survives {!crash}/{!failover}. Maintenance (GC,
    scrub, rebuild, checkpoint, replication ingest driven internally)
    is unaffected. *)

val unfence : t -> unit
val is_fenced : t -> bool

(** {1 Statistics} *)

type stats = {
  app_writes : int;
  app_reads : int;
  logical_bytes_written : int;
  stored_bytes_written : int;  (** cblock frames after reduction *)
  live_logical_bytes : int;
  physical_bytes_used : int;  (** occupied AUs, parity included *)
  physical_capacity : int;
  data_reduction : float;  (** live logical / physical used (§1: 5.4×) *)
  provisioned_virtual_bytes : int;
  dedup_blocks : int;
  gc_dedup_blocks : int;
  write_latency : Purity_util.Histogram.t;
  read_latency : Purity_util.Histogram.t;
  io : Purity_sched.Io.stats;
  boot_region_writes : int;
  segments_live : int;
  availability : float;  (** uptime fraction since creation *)
  cache_hits : int;  (** controller-DRAM read cache *)
  cache_misses : int;
}

val stats : t -> stats
(** Point-in-time statistics. The counter-valued fields are read back
    from the {!telemetry} registry (the write/read paths record straight
    into it), so this record and a registry snapshot always agree. *)

(** {1 Telemetry} *)

val telemetry : t -> Purity_telemetry.Registry.t
(** The current controller's metric registry: every subsystem (write
    path, read path, GC, scrub, recovery, scheduler, drives, NVRAM)
    records here under hierarchical keys. Replaced on {!failover} — the
    spare boots with fresh path counters, while array-lifetime levels
    ([array/...]) are re-derived over the new state. *)

val tracer : t -> Purity_telemetry.Span.tracer
(** The span tracer: write/read/flush/GC/scrub/recovery hops land here.
    Also replaced on failover. *)

(** {1 Internals (benchmarks, tests)} *)

val clock : t -> Purity_sim.Clock.t
val shelf : t -> Purity_ssd.Shelf.t
val state : t -> State.t
(** The live internal state; benchmark harnesses use it to reach the
    pyramids and scheduler directly. Treat as read-only. *)

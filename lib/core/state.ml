(* Shared state of one Purity array (controller-resident volatile state
   plus handles to the shelf's persistent devices). The public facade is
   {!Array_}; the write/read/GC/recovery paths live in sibling modules
   operating over this record. *)

module Clock = Purity_sim.Clock
module Stbl = Purity_util.Keytbl.Str
module Rng = Purity_util.Rng
module Histogram = Purity_util.Histogram
module Varint = Purity_util.Varint
module Shelf = Purity_ssd.Shelf
module Drive = Purity_ssd.Drive
module Nvram = Purity_ssd.Nvram
module Rs = Purity_erasure.Reed_solomon
module Layout = Purity_segment.Layout
module Segment = Purity_segment.Segment
module Allocator = Purity_segment.Allocator
module Writer = Purity_segment.Writer
module Scan = Purity_segment.Scan
module Io = Purity_sched.Io
module Pyramid = Purity_pyramid.Pyramid
module Fact = Purity_pyramid.Fact
module Patch = Purity_pyramid.Patch
module Seqno = Purity_pyramid.Seqno
module Medium = Purity_medium.Medium
module Dedup = Purity_dedup.Dedup
module Cblock = Purity_compress.Cblock
module Registry = Purity_telemetry.Registry
module Span = Purity_telemetry.Span

let block_size = 512
let max_cblock_blocks = Cblock.max_logical / block_size

type config = {
  drives : int;
  drive_config : Drive.config;
  k : int;
  m : int;
  write_unit : int;
  nvram_capacity : int;
  memtable_flush : int;
  read_around_write : bool;
  p95_backup : bool;
  max_segment_writers : int;
  inline_dedup : bool;
  compression : bool;
  dedup_config : Dedup.config;
  checkpoint_every_writes : int; (* 0 = manual checkpoints only *)
  read_cache_entries : int; (* cblock frames cached in controller DRAM; 0 = off *)
  map_cache_entries : int; (* logical->blockref mapping cache slots; 0 = off *)
  secondary_warming : bool;
      (* paper 4.3: the primary asynchronously warms the spare's cache, so
         a failover starts warm instead of cold *)
  seed : int64;
}

let default_config =
  {
    drives = 11;
    drive_config =
      {
        Drive.default_config with
        (* header page + 16 rows of 32 KiB write units *)
        Drive.au_size = 4096 + (16 * 32768);
        num_aus = 128;
        dies = 8;
      };
    k = 7;
    m = 2;
    write_unit = 32 * 1024;
    nvram_capacity = 16 * 1024 * 1024;
    memtable_flush = 4096;
    read_around_write = true;
    p95_backup = false;
    max_segment_writers = 2;
    inline_dedup = true;
    compression = true;
    dedup_config = Dedup.default_config;
    checkpoint_every_writes = 0;
    read_cache_entries = 4096;
    map_cache_entries = 8192;
    secondary_warming = true;
    seed = 0x5EEDL;
  }

type volume_kind = Volume | Snapshot

(* Flush-pipeline control state, epoch-published for cross-domain readers.
   The metadata plane is single-writer (the simulated clock serialises the
   controller), but derived telemetry and future off-main observers read
   these fields; publishing an immutable snapshot through
   [Purity_par.Epoch] keeps those reads wait-free and tear-free. *)
type control_view = {
  cv_next_segment : int;
  cv_unflushed : int;
  cv_pending_flushes : int;
}

(* Paper 4.6: instead of per-volume block-size tuning knobs, the array
   observes each volume's write sizes and sizes cblocks to match, so
   later reads (which overwhelmingly use the same size and alignment as
   the write that created the data) fetch a single cblock. *)
type io_observer = {
  mutable size_counts : int array; (* histogram over power-of-two block counts 1..64 *)
  mutable observed : int;
}

type volume = {
  mutable medium : int;
  mutable blocks : int;
  kind : volume_kind;
  observer : io_observer;
}

let fresh_observer () = { size_counts = Array.make 7 0; observed = 0 }

let observe_write obs ~nblocks =
  (* bucket by power of two: 1,2,4,8,16,32,64 blocks (512 B - 32 KiB) *)
  let rec bucket i cap = if nblocks <= cap || i = 6 then i else bucket (i + 1) (cap * 2) in
  let b = bucket 0 1 in
  obs.size_counts.(b) <- obs.size_counts.(b) + 1;
  obs.observed <- obs.observed + 1

(* The dominant write size (in 512 B blocks), defaulting to the 32 KiB
   maximum until enough evidence accumulates. *)
let inferred_io_blocks obs =
  if obs.observed < 16 then 64
  else begin
    let best = ref 6 and best_count = ref 0 in
    Array.iteri
      (fun i c ->
        if c > !best_count then begin
          best := i;
          best_count := c
        end)
      obs.size_counts;
    1 lsl !best
  end

(* The write/read-path counters, as registry handles: the telemetry
   registry owns the cells, the hot paths record through them, and
   Flash_array.stats (and the phone-home exporter) read them back. *)
type write_stats = {
  app_writes : Registry.counter;
  logical_bytes : Registry.counter; (* application bytes ever written *)
  stored_bytes : Registry.counter; (* cblock frames appended to segments *)
  dedup_blocks : Registry.counter; (* 512B blocks absorbed by inline dedup *)
  gc_dedup_blocks : Registry.counter; (* cblocks collapsed by the GC pass *)
  cache_hits : Registry.counter; (* controller-DRAM read cache *)
  cache_misses : Registry.counter;
  map_hits : Registry.counter; (* logical->blockref mapping cache *)
  map_misses : Registry.counter;
  nvram_commit_us : Histogram.t; (* write intent -> durability ack *)
}

type t = {
  cfg : config;
  clock : Clock.t;
  tel : Registry.t;
  tracer : Span.tracer;
  shelf : Shelf.t;
  layout : Layout.t;
  rs : Rs.t;
  io : Io.t;
  alloc : Allocator.t;
  boot : Boot_region.t;
  seqno : Seqno.t;
  (* relations *)
  blocks : Pyramid.t; (* (medium, block) -> Blockref; elide by medium *)
  mediums_pyr : Pyramid.t; (* medium -> extents; elide by medium *)
  segments_pyr : Pyramid.t; (* segment -> compact meta; tombstones *)
  volumes_pyr : Pyramid.t; (* name -> (kind, medium, blocks); tombstones *)
  (* volatile derived state *)
  mutable medium_table : Medium.t;
  volumes : volume Stbl.t;
  segment_metas : (int, Segment.t) Hashtbl.t;
  mutable checkpoint_segments : int list; (* hold the current checkpoint *)
  mutable next_segment_id : int;
  mutable open_writer : Writer.t option;
  unflushed : (int, Writer.t) Hashtbl.t;
      (* segios (open or sealed) whose bytes are not yet on the drives;
         reads of their payload are served from RAM *)
  mutable flushes_in_order : (int * int64) Queue.t; (* seg id, seal seq *)
  flushed : (int, unit) Hashtbl.t;
  mutable writes_since_checkpoint : int;
  mutable last_applied_intent : int64;
      (* highest NVRAM intent fully applied to segios; the safe trim
         watermark when the current segio seals *)
  mutable pending_flush_count : int;
  mutable flush_waiters : (unit -> unit) list;
  flush_queue : Writer.t Queue.t;
      (* sealed segios awaiting flush: flushed one at a time so that at
         most [max_segment_writers] drives in the whole array are
         programming simultaneously (the §4.4 discipline that keeps
         read-around-write amplification near the paper's 1.3x) *)
  mutable flush_active : bool;
  mutable checkpoint_dir : (string * string * (string * int * int) list) list;
      (* last checkpoint's patch directory: pyramid name, encoded elide
         ranges (empty for tombstone tables), chunks as (compact segment
         meta, payload off, len) *)
  mutable checkpoint_seq : int64;
      (* seq watermark of the last completed checkpoint: every fact with a
         sequence number at or below it is covered by the patches, and its
         tombstone (if any) may have been dropped by the checkpoint's full
         compaction — so recovery must never replay log records this old,
         or compacted-away deletions would resurrect *)
  mutable medium_next_id : int;
  mutable boot_generation_written : int;
  dedup : Dedup.t;
  dedup_locs : (int, Blockref.t) Hashtbl.t; (* dedup write id -> cblock home *)
  mutable arenas : Arena.t array;
      (* per-lane compress/frame scratch for the fill loop: index 0 is the
         controller's own (serial) arena; grown to the pool's lane count
         on first parallel fill (lane_arenas) *)
  control_view : control_view Purity_par.Epoch.t;
      (* single-writer epoch snapshot of the flush pipeline, republished
         at every mutation of the fields it mirrors *)
  read_cache : (int * int, string) Purity_util.Lru.t; (* (segment, off) -> frame *)
  map_cache : (int * int, Blockref.t option) Purity_util.Lru.t;
      (* (medium, block) -> memoized block-pyramid lookup, negative
         results included (thin-provisioned upper levels miss constantly).
         Each entry mirrors exactly one pyramid key, so invalidation is
         exact: any fact or elide landing on the key evicts it. Never
         consulted for snapshot reads — those carry their own seq bound. *)
  (* accounting *)
  write_lat : Histogram.t;
  read_lat : Histogram.t;
  ws : write_stats;
  mutable online : bool;
  mutable crashed_at : float option;
  mutable downtime_us : float;
  mutable boot_time : float;
}

let blocks_policy = Pyramid.Elide (fun f -> Keys.block_key_medium f.Fact.key)
let mediums_policy = Pyramid.Elide (fun f -> Keys.medium_key_id f.Fact.key)

let fresh_volatile cfg clock =
  let memtable_flush_count = cfg.memtable_flush in
  ( Pyramid.create ~memtable_flush_count ~policy:blocks_policy ~name:"blocks" (),
    Pyramid.create ~memtable_flush_count ~policy:mediums_policy ~name:"mediums" (),
    Pyramid.create ~memtable_flush_count ~policy:Pyramid.Tombstones ~name:"segments" (),
    Pyramid.create ~memtable_flush_count ~policy:Pyramid.Tombstones ~name:"volumes" (),
    ignore clock )

(* Derived metrics over controller state: sampled at snapshot time, so
   the registry exposes live table sizes without per-mutation recording. *)
let register_derived_telemetry t =
  let reg = t.tel in
  Registry.derive_int reg "segments/live" (fun () -> Hashtbl.length t.segment_metas);
  (* flush-pipeline metrics read the epoch snapshot, not the live record:
     a snapshot read is wait-free and safe from any domain *)
  Registry.derive_int reg "segments/unflushed" (fun () ->
      (Purity_par.Epoch.read t.control_view).cv_unflushed);
  Registry.derive_int reg "segments/pending_flushes" (fun () ->
      (Purity_par.Epoch.read t.control_view).cv_pending_flushes);
  Registry.derive_int reg "segments/next_id" (fun () ->
      (Purity_par.Epoch.read t.control_view).cv_next_segment);
  Registry.derive_int reg "volumes/count" (fun () -> Stbl.length t.volumes);
  Registry.derive_int reg "pyramid/blocks_facts" (fun () -> Pyramid.fact_count t.blocks);
  Registry.derive_int reg "pyramid/blocks_patches" (fun () -> Pyramid.patch_count t.blocks);
  Registry.derive_int reg "pyramid/blocks_probes" (fun () ->
      let p, _, _ = Pyramid.probe_stats t.blocks in
      p);
  Registry.derive_int reg "pyramid/blocks_fence_skips" (fun () ->
      let _, f, _ = Pyramid.probe_stats t.blocks in
      f);
  Registry.derive_int reg "pyramid/blocks_bloom_skips" (fun () ->
      let _, _, b = Pyramid.probe_stats t.blocks in
      b);
  Registry.derive_int reg "read_path/map_cache_entries" (fun () ->
      Purity_util.Lru.length t.map_cache);
  Registry.derive_int reg "trace/dropped_spans" (fun () -> Span.dropped t.tracer);
  (* data-plane kernel throughput: process-wide cells (the kernels sit
     below the telemetry library in the dependency order), re-derived
     into whichever controller registry is current *)
  List.iter
    (fun (k : Purity_util.Kernel_stats.kernel) ->
      Registry.derive_int reg ("kernels/" ^ k.name ^ "_bytes") (fun () -> k.bytes);
      Registry.derive_int reg ("kernels/" ^ k.name ^ "_calls") (fun () -> k.calls);
      Registry.derive_int reg ("kernels/" ^ k.name ^ "_ns") (fun () -> k.ns))
    Purity_util.Kernel_stats.all

let create_over ~config ~clock ~shelf ~boot () =
  let layout =
    Layout.make ~k:config.k ~m:config.m ~write_unit:config.write_unit
      ~au_size:config.drive_config.Drive.au_size ()
  in
  let rs = Rs.create ~k:config.k ~m:config.m in
  let io =
    Io.create ~layout ~shelf ~rs ~read_around_write:config.read_around_write
      ~p95_backup:config.p95_backup ()
  in
  let alloc =
    Allocator.create ~layout ~drives:config.drives
      ~aus_per_drive:config.drive_config.Drive.num_aus ()
  in
  let blocks, mediums_pyr, segments_pyr, volumes_pyr, () = fresh_volatile config clock in
  (* The controller's metric namespace: a fresh registry per controller
     generation (a failover boots the spare with zeroed path counters,
     exactly as the old per-field ints behaved). *)
  let tel = Registry.create () in
  let tracer = Span.create_tracer ~clock () in
  Shelf.register_telemetry shelf tel;
  Io.register_telemetry io tel;
  let t =
    {
    cfg = config;
    clock;
    tel;
    tracer;
    shelf;
    layout;
    rs;
    io;
    alloc;
    boot;
    seqno = Seqno.create ();
    blocks;
    mediums_pyr;
    segments_pyr;
    volumes_pyr;
    medium_table = Medium.create ();
    volumes = Stbl.create 16;
    segment_metas = Hashtbl.create 64;
    checkpoint_segments = [];
    next_segment_id = 1;
    open_writer = None;
    unflushed = Hashtbl.create 8;
    flushes_in_order = Queue.create ();
    flushed = Hashtbl.create 16;
    writes_since_checkpoint = 0;
    last_applied_intent = 0L;
    pending_flush_count = 0;
    flush_waiters = [];
    flush_queue = Queue.create ();
    flush_active = false;
    checkpoint_dir = [];
    checkpoint_seq = 0L;
    medium_next_id = 1;
    boot_generation_written = 0;
    dedup = Dedup.create ~config:config.dedup_config ();
    dedup_locs = Hashtbl.create 1024;
    arenas = [| Arena.create () |];
    control_view =
      Purity_par.Epoch.create
        { cv_next_segment = 1; cv_unflushed = 0; cv_pending_flushes = 0 };
    read_cache = Purity_util.Lru.create ~capacity:(max 1 config.read_cache_entries);
    map_cache = Purity_util.Lru.create ~capacity:(max 1 config.map_cache_entries);
    write_lat = Registry.histogram tel "write_path/latency_us";
    read_lat = Registry.histogram tel "read_path/latency_us";
    ws =
      {
        app_writes = Registry.counter tel "write_path/app_writes";
        logical_bytes = Registry.counter tel "write_path/logical_bytes";
        stored_bytes = Registry.counter tel "write_path/stored_bytes";
        dedup_blocks = Registry.counter tel "dedup/inline_blocks";
        gc_dedup_blocks = Registry.counter tel "dedup/gc_blocks";
        cache_hits = Registry.counter tel "read_path/cache_hits";
        cache_misses = Registry.counter tel "read_path/cache_misses";
        map_hits = Registry.counter tel "read_path/map_cache_hits";
        map_misses = Registry.counter tel "read_path/map_cache_misses";
        nvram_commit_us = Registry.histogram tel "write_path/nvram_commit_us";
      };
    online = true;
    crashed_at = None;
    downtime_us = 0.0;
    boot_time = Clock.now clock;
    }
  in
  register_derived_telemetry t;
  t

let create ?(config = default_config) ~clock () =
  let rng = Rng.create ~seed:config.seed in
  let shelf =
    Shelf.create ~drive_config:config.drive_config ~nvram_capacity:config.nvram_capacity
      ~clock ~rng ~drives:config.drives ()
  in
  let boot = Boot_region.create ~clock () in
  create_over ~config ~clock ~shelf ~boot ()

let nvram t = Shelf.nvram t.shelf

(* Re-publish the flush-pipeline snapshot; call after any mutation of
   next_segment_id / unflushed / pending_flush_count. Main domain only
   (the Epoch cell is single-writer). *)
let publish_control_view t =
  Purity_par.Epoch.publish t.control_view
    {
      cv_next_segment = t.next_segment_id;
      cv_unflushed = Hashtbl.length t.unflushed;
      cv_pending_flushes = t.pending_flush_count;
    }

(* The per-lane scratch arenas for a parallel segment fill, grown (on the
   main domain, before any fan-out) to at least the pool's lane count.
   Lane 0 is the controller's own serial arena. *)
let lane_arenas t ~lanes =
  if Array.length t.arenas < lanes then begin
    let old = t.arenas in
    t.arenas <-
      Array.init lanes (fun i ->
          if i < Array.length old then old.(i) else Arena.create ())
  end;
  t.arenas

(* Metadata of the volume/medium tables is additionally committed to
   NVRAM (fire-and-forget: the model's log state mutates at call time), so
   namespace operations survive a crash even when their segio log records
   were still in RAM. Block facts don't need this: the write intent that
   produced them is already in NVRAM. Segment-table facts are backed too,
   but for a different reason — the 'S' fact written at flush completion
   is the segment's commit record, and recovery refuses to replay log
   records out of a segment with no surviving proof of commit (a torn
   flush can leave the log region readable while data rows are gone). *)
let nvram_backed tag = tag = 'M' || tag = 'V' || tag = 'S'

let stash_fact t tag fact =
  if nvram_backed tag then begin
    let buf = Buffer.create 64 in
    Buffer.add_char buf 'F';
    Buffer.add_char buf tag;
    Fact.encode buf fact;
    Nvram.commit (nvram t)
      { Nvram.seq = fact.Fact.seq; payload = Buffer.contents buf }
      (fun _ -> ())
  end
let online_drive t d = Drive.is_online (Shelf.drive t.shelf d)

(* ---------- fact logging: every metadata mutation is also a log record
   in the current segio, so recovery can rediscover it (Figure 4). ---- *)

let table_tag pyr_name =
  match pyr_name with
  | "blocks" -> 'B'
  | "mediums" -> 'M'
  | "segments" -> 'S'
  | "volumes" -> 'V'
  | _ -> invalid_arg "unknown table"

exception Out_of_space

(* Forward reference: writer_with_room must persist the boot region when
   an allocation changed the frontier, but the encoder is defined below. *)
let boot_persist_hook : (t -> unit) ref = ref (fun _ -> ())

(* Reserve a single replacement AU on a healthy drive (for segio member
   remaps), erasing any stale contents before use. *)
let allocate_replacement t ~exclude =
  match
    Allocator.allocate_one t.alloc ~allowed:(fun d ->
        online_drive t d && not (List.mem d exclude))
  with
  | None -> None
  | Some (m : Segment.member) ->
    let d = Shelf.drive t.shelf m.Segment.drive in
    if Drive.is_online d && Drive.au_fill d ~au:m.Segment.au > 0 then
      Drive.trim_au d ~au:m.Segment.au;
    Some m

(* Open (allocating if needed) a segment writer with room for [need] more
   payload bytes. Sealing the previous writer is asynchronous; its pages
   are already staged so ordering is preserved. *)
let rec writer_with_room t ~need =
  if not t.online then raise Out_of_space (* dead controllers allocate nothing *);
  if need > Layout.payload_capacity t.layout then
    invalid_arg "writer_with_room: larger than a segment";
  let fresh () =
    match Allocator.allocate t.alloc ~online:(online_drive t) with
    | None -> raise Out_of_space
    | Some members ->
      let id = t.next_segment_id in
      t.next_segment_id <- id + 1;
      (* erase-before-reuse: an AU can reach the pool still holding data
         (released while its drive was offline, or torn by a crashed
         controller's aborted flush); trim it now so the append-only
         contract holds *)
      Array.iter
        (fun (m : Segment.member) ->
          let d = Shelf.drive t.shelf m.Segment.drive in
          if Drive.is_online d && Drive.au_fill d ~au:m.Segment.au > 0 then
            Drive.trim_au d ~au:m.Segment.au)
        members;
      let w = Writer.create ~layout:t.layout ~shelf:t.shelf ~rs:t.rs ~members ~id in
      t.open_writer <- Some w;
      Hashtbl.replace t.unflushed id w;
      publish_control_view t;
      (* a refill may have changed the persisted frontier: rewrite the
         boot region before this segment accumulates log records *)
      !boot_persist_hook t;
      w
  in
  match t.open_writer with
  | None -> fresh ()
  | Some w ->
    (* a member drive failing after allocation abandons the segio for new
       appends: writes shift to a fully-online write group *)
    let members_online =
      Array.for_all
        (fun (m : Segment.member) -> online_drive t m.Segment.drive)
        (Writer.members w)
    in
    if Writer.remaining w >= need && members_online then w
    else begin
      seal_current t;
      writer_with_room t ~need
    end

(* Seal the open segio: flush it to the drives, register its meta, trim
   the NVRAM records it covers. *)
and seal_current t =
  match t.open_writer with
  | None -> ()
  | Some w ->
    t.open_writer <- None;
    if Writer.is_empty w then begin
      (* never written: hand the AUs back *)
      Hashtbl.remove t.unflushed (Writer.id w);
      Allocator.release t.alloc (Writer.members w);
      publish_control_view t
    end
    else begin
      (* Members whose drive failed since allocation are remapped to fresh
         AUs on healthy drives — the shard data is still in RAM, so the
         stripe reaches the media at full 7+2 redundancy instead of
         flushing already-degraded. *)
      let members = Writer.members w in
      Array.iteri
        (fun i (m : Segment.member) ->
          if not (online_drive t m.Segment.drive) then begin
            let exclude =
              Array.to_list (Array.map (fun (x : Segment.member) -> x.Segment.drive) members)
            in
            match allocate_replacement t ~exclude with
            | Some repl ->
              Allocator.release t.alloc [| m |];
              Writer.set_member w ~index:i repl
            | None -> () (* no healthy spare drive: flush degraded *)
          end)
        members;
      (* Only intents fully applied before this seal are guaranteed to be
         inside this (or an earlier) segio; later intents must stay in
         NVRAM until their own segio flushes. *)
      let seal_seq = t.last_applied_intent in
      Queue.add (Writer.id w, seal_seq) t.flushes_in_order;
      t.pending_flush_count <- t.pending_flush_count + 1;
      publish_control_view t;
      Queue.add w t.flush_queue;
      pump_flush t
    end

(* Flush sealed segios one at a time (array-wide write staggering). *)
and pump_flush t =
  if t.online && (not t.flush_active) && not (Queue.is_empty t.flush_queue) then begin
    t.flush_active <- true;
    let w = Queue.pop t.flush_queue in
    let remap ~exclude = allocate_replacement t ~exclude in
    let flush_span =
      Span.start t.tracer
        ~tags:
          [
            ("segment", string_of_int (Writer.id w));
            ("data_len", string_of_int (Writer.data_len w));
            ("log_len", string_of_int (Writer.log_len w));
          ]
        "segio_flush"
    in
    Writer.finalize w ~max_writers:t.cfg.max_segment_writers ~remap ~tracer:t.tracer
      ~parent:flush_span (fun seg ->
        Span.finish flush_span;
        Hashtbl.replace t.segment_metas seg.Segment.id seg;
        Hashtbl.remove t.unflushed seg.Segment.id;
        (* The segment table fact describes the sealed segment; it doubles
           as the commit record, so it is stashed in NVRAM as well — until
           a later flushed segio carries the log copy, the stash is the
           only proof that this segment's contents may be trusted. *)
        let seq = Seqno.next t.seqno in
        let fact =
          Fact.make ~key:(Keys.segment_key seg.Segment.id)
            ~value:(Segment.encode_compact seg) ~seq
        in
        Pyramid.insert t.segments_pyr ~seq ~key:(Keys.segment_key seg.Segment.id)
          ~value:(Segment.encode_compact seg);
        log_fact t 'S' fact;
        stash_fact t 'S' fact;
        (* in-order NVRAM trim *)
        Hashtbl.replace t.flushed seg.Segment.id ();
        let continue = ref true in
        while !continue do
          match Queue.peek_opt t.flushes_in_order with
          | Some (id, upto) when Hashtbl.mem t.flushed id ->
            ignore (Queue.pop t.flushes_in_order);
            Hashtbl.remove t.flushed id;
            Nvram.trim_upto (nvram t) upto
          | _ -> continue := false
        done;
        t.pending_flush_count <- t.pending_flush_count - 1;
        publish_control_view t;
        t.flush_active <- false;
        pump_flush t;
        if t.pending_flush_count = 0 then begin
          (* stored newest-first; fired as stored (see when_flushed) *)
          let waiters = t.flush_waiters in
          t.flush_waiters <- [];
          List.iter (fun f -> f ()) waiters
        end)
  end

(* Append one framed log record, rolling segments as needed. *)
and append_log_record t ~seq record =
  let need = String.length record + 16 in
  let w = writer_with_room t ~need in
  if not (Writer.append_log w ~seq record) then begin
    seal_current t;
    let w = writer_with_room t ~need in
    if not (Writer.append_log w ~seq record) then raise Out_of_space
  end

and log_fact t tag fact =
  let buf = Buffer.create 64 in
  Buffer.add_char buf tag;
  Fact.encode buf fact;
  append_log_record t ~seq:fact.Fact.seq (Buffer.contents buf)

(* Store a data blob (cblock frame or patch chunk) in the current segio.
   Returns (segment id, payload offset). *)
let store_blob t data =
  let need = String.length data + 16 in
  if need > Layout.payload_capacity t.layout then invalid_arg "store_blob: blob too large";
  let w = writer_with_room t ~need in
  match Writer.append_data w data with
  | Some off -> (Writer.id w, off)
  | None -> (
    seal_current t;
    let w = writer_with_room t ~need in
    match Writer.append_data w data with
    | Some off -> (Writer.id w, off)
    | None -> raise Out_of_space)

(* [store_blob] for a frame accumulated in a reusable Buffer (the write
   path's arena): the bytes blit straight into the segio. *)
let store_frame t frame =
  let need = Buffer.length frame + 16 in
  if need > Layout.payload_capacity t.layout then invalid_arg "store_frame: blob too large";
  let w = writer_with_room t ~need in
  match Writer.append_buffer w frame with
  | Some off -> (Writer.id w, off)
  | None -> (
    seal_current t;
    let w = writer_with_room t ~need in
    match Writer.append_buffer w frame with
    | Some off -> (Writer.id w, off)
    | None -> raise Out_of_space)

let log_elide t tag ~seq ~lo ~hi =
  let buf = Buffer.create 16 in
  Buffer.add_char buf 'e';
  Buffer.add_char buf tag;
  Varint.write_i64 buf seq;
  Varint.write buf lo;
  Varint.write buf hi;
  append_log_record t ~seq (Buffer.contents buf)

let stash_elide t tag ~seq ~lo ~hi =
  if nvram_backed tag then begin
    let buf = Buffer.create 24 in
    Buffer.add_char buf 'E';
    Buffer.add_char buf tag;
    Varint.write_i64 buf seq;
    Varint.write buf lo;
    Varint.write buf hi;
    Nvram.commit (nvram t) { Nvram.seq = seq; payload = Buffer.contents buf } (fun _ -> ())
  end

(* Mapping-cache invalidation. Every mutation of the block pyramid flows
   through put/put_delete/put_elide below (the write path's overwrites,
   GC relocation, TRIM, medium retirement); recovery replays into a
   brand-new state whose cache is empty, so replayed facts need no
   eviction. An entry caches exactly one pyramid key, making point
   eviction exact. *)
let invalidate_block_mapping t key =
  Purity_util.Lru.remove t.map_cache
    (Keys.block_key_medium key, Keys.block_key_block key)

(* Medium ids are the blocks pyramid's elide ids: retiring mediums
   [lo..hi] kills every cached mapping they own. Rare (volume/snapshot
   deletion), so a full cache sweep is fine. *)
let invalidate_medium_mappings t ~lo ~hi =
  let victims =
    Purity_util.Lru.fold
      (fun ((m, _) as k) _ acc -> if m >= lo && m <= hi then k :: acc else acc)
      t.map_cache []
  in
  List.iter (Purity_util.Lru.remove t.map_cache) victims

(* Insert + log helpers used by all mutation paths. *)
let put t pyr ~key ~value =
  if pyr == t.blocks then invalidate_block_mapping t key;
  let seq = Seqno.next t.seqno in
  let fact = Fact.make ~key ~value ~seq in
  Pyramid.insert_fact pyr fact;
  let tag = table_tag (Pyramid.name pyr) in
  log_fact t tag fact;
  stash_fact t tag fact;
  seq

let put_delete t pyr ~key =
  if pyr == t.blocks then invalidate_block_mapping t key;
  let seq = Seqno.next t.seqno in
  let fact = Fact.tombstone ~key ~seq in
  Pyramid.insert_fact pyr fact;
  let tag = table_tag (Pyramid.name pyr) in
  log_fact t tag fact;
  stash_fact t tag fact;
  seq

let put_elide t pyr ~lo ~hi =
  if pyr == t.blocks then invalidate_medium_mappings t ~lo ~hi;
  let seq = Seqno.next t.seqno in
  Pyramid.elide_range pyr ~seq ~lo ~hi;
  let tag = table_tag (Pyramid.name pyr) in
  log_elide t tag ~seq ~lo ~hi;
  stash_elide t tag ~seq ~lo ~hi;
  seq

(* Persist the current extent rows of a medium as a fact. *)
let persist_medium t id =
  let extents = Medium.extents t.medium_table id in
  ignore (put t t.mediums_pyr ~key:(Keys.medium_key id) ~value:(Medium.encode_extents extents))

let encode_volume_value v =
  let buf = Buffer.create 8 in
  Buffer.add_char buf (match v.kind with Volume -> 'V' | Snapshot -> 'S');
  Varint.write buf v.medium;
  Varint.write buf v.blocks;
  Buffer.contents buf

let decode_volume_value s =
  let buf = Bytes.unsafe_of_string s in
  let kind = match Bytes.get buf 0 with 'V' -> Volume | 'S' -> Snapshot | _ -> invalid_arg "volume value" in
  let medium, p = Varint.read buf ~pos:1 in
  let blocks, _ = Varint.read buf ~pos:p in
  { medium; blocks; kind; observer = fresh_observer () }

let persist_volume t name v =
  ignore (put t t.volumes_pyr ~key:name ~value:(encode_volume_value v))

let lookup_blockref_uncached t ~medium ~block =
  match Pyramid.find t.blocks (Keys.block_key ~medium ~block) with
  | Some v -> Some (Blockref.decode v)
  | None -> None

let lookup_blockref t ~medium ~block =
  if t.cfg.map_cache_entries = 0 then lookup_blockref_uncached t ~medium ~block
  else
    match Purity_util.Lru.find t.map_cache (medium, block) with
    | Some cached ->
      Registry.incr t.ws.map_hits;
      cached
    | None ->
      Registry.incr t.ws.map_misses;
      let r = lookup_blockref_uncached t ~medium ~block in
      Purity_util.Lru.add t.map_cache (medium, block) r;
      r

(* Nearest level of the medium chain holding this block. *)
let resolve_block t ~medium ~block =
  let chain = Medium.resolve t.medium_table medium ~block in
  List.find_map (fun (med, blk) -> lookup_blockref t ~medium:med ~block:blk) chain

(* The reference path the correctness sweeps compare against: same chain
   walk, every pyramid probe done from scratch. *)
let resolve_block_uncached t ~medium ~block =
  let chain = Medium.resolve t.medium_table medium ~block in
  List.find_map (fun (med, blk) -> lookup_blockref_uncached t ~medium:med ~block:blk) chain

(* Batched resolution for [nblocks] consecutive logical blocks:
   equivalent to calling [resolve_block] per block, but each medium
   level consulted does one lower_bound + sequential walk per patch
   (Pyramid.find_run) for all its unresolved blocks instead of per-block
   binary searches. Sub-ranges are split along extent boundaries and
   recursed level by level, respecting [skip_local] exactly as
   Medium.resolve does. *)
let resolve_range t ~medium ~block ~nblocks =
  let out = Array.make nblocks None in
  let resolved = Array.make nblocks false in
  let use_cache = t.cfg.map_cache_entries > 0 in
  (* one level of one extent piece: fill [off .. off+len-1] from the
     cache, then one batched pyramid run for the misses *)
  let lookup_level ~medium ~block ~len ~off =
    let pending = Array.make len false in
    let first = ref len and last = ref (-1) in
    for i = 0 to len - 1 do
      if not resolved.(off + i) then begin
        let cached =
          if use_cache then Purity_util.Lru.find t.map_cache (medium, block + i) else None
        in
        match cached with
        | Some r ->
          Registry.incr t.ws.map_hits;
          (match r with
          | Some _ ->
            out.(off + i) <- r;
            resolved.(off + i) <- true
          | None -> () (* this level known empty; deeper levels may serve *))
        | None ->
          if use_cache then Registry.incr t.ws.map_misses;
          pending.(i) <- true;
          if i < !first then first := i;
          last := i
      end
    done;
    if !last >= !first then begin
      let base = block + !first in
      let n = !last - !first + 1 in
      let run =
        Pyramid.find_run t.blocks ~n
          ~key_of:(fun i -> Keys.block_key ~medium ~block:(base + i))
          ~index:(fun key ->
            if Keys.block_key_medium key = medium then Keys.block_key_block key - base
            else -1)
      in
      for i = !first to !last do
        if pending.(i) then begin
          let v = Pyramid.resolve_fact t.blocks run.(i - !first) in
          let r = Option.map Blockref.decode v in
          if use_cache then Purity_util.Lru.add t.map_cache (medium, block + i) r;
          match r with
          | Some _ ->
            out.(off + i) <- r;
            resolved.(off + i) <- true
          | None -> ()
        end
      done
    end
  in
  let limit = List.length (Medium.live_mediums t.medium_table) + 1 in
  let rec go ~medium ~block ~n ~off depth =
    if n > 0 && depth <= limit then
      match Medium.extent_of t.medium_table medium ~block with
      | None ->
        (* out of range at this level: the chain for this block ends *)
        go ~medium ~block:(block + 1) ~n:(n - 1) ~off:(off + 1) depth
      | Some e ->
        let len = min n (e.Medium.end_block - block + 1) in
        if not e.Medium.skip_local then lookup_level ~medium ~block ~len ~off;
        (match e.Medium.target with
        | Medium.Base -> ()
        | Medium.Underlying { medium = under; offset } ->
          (* recurse for each contiguous run of still-unresolved slots *)
          let i = ref 0 in
          while !i < len do
            if resolved.(off + !i) then incr i
            else begin
              let j = ref !i in
              while !j < len && not resolved.(off + !j) do
                incr j
              done;
              go ~medium:under
                ~block:(block - e.Medium.start_block + offset + !i)
                ~n:(!j - !i) ~off:(off + !i) (depth + 1);
              i := !j
            end
          done);
        go ~medium ~block:(block + len) ~n:(n - len) ~off:(off + len) depth
  in
  go ~medium ~block ~n:nblocks ~off:0 0;
  out

let find_segment t id = Hashtbl.find_opt t.segment_metas id

(* A medium "has blocks" in [lo..hi] iff the block index holds a live fact
   there — the predicate the GC feeds to Medium.shortcut. *)
let medium_has_blocks t ~medium ~lo ~hi =
  Pyramid.exists_live_in_range t.blocks
    ~lo:(Keys.block_key ~medium ~block:lo)
    ~hi:(Keys.block_key ~medium ~block:hi)

(* Run [k] once every sealed segio has finished flushing to the drives.
   Prepend (O(1) per registration); pump_flush fires the list as stored,
   preserving the firing order of the old append+rev pairing. *)
let when_flushed t k =
  if t.pending_flush_count = 0 then Clock.schedule t.clock ~delay:0.0 k
  else t.flush_waiters <- k :: t.flush_waiters

(* ---------- boot-region blob ---------- *)

let encode_boot t =
  let buf = Buffer.create 512 in
  Varint.write buf 1;
  let frontier = Allocator.encode_persisted t.alloc in
  Varint.write buf (String.length frontier);
  Buffer.add_string buf frontier;
  Varint.write buf t.next_segment_id;
  Varint.write buf t.medium_next_id;
  Varint.write_i64 buf (Seqno.current t.seqno);
  Varint.write_i64 buf t.checkpoint_seq;
  Varint.write buf (List.length t.checkpoint_dir);
  List.iter
    (fun (name, ranges, chunks) ->
      Varint.write buf (String.length name);
      Buffer.add_string buf name;
      Varint.write buf (String.length ranges);
      Buffer.add_string buf ranges;
      Varint.write buf (List.length chunks);
      List.iter
        (fun (meta, off, len) ->
          Varint.write buf (String.length meta);
          Buffer.add_string buf meta;
          Varint.write buf off;
          Varint.write buf len)
        chunks)
    t.checkpoint_dir;
  Buffer.contents buf

type boot_blob = {
  bb_frontier : string;
  bb_next_segment : int;
  bb_medium_next : int;
  bb_seq : int64;
  bb_ckpt_seq : int64;
  bb_dir : (string * string * (string * int * int) list) list;
}

let decode_boot s =
  let buf = Bytes.unsafe_of_string s in
  let _v, p = Varint.read buf ~pos:0 in
  let flen, p = Varint.read buf ~pos:p in
  let frontier = Bytes.sub_string buf p flen in
  let p = p + flen in
  let next_segment, p = Varint.read buf ~pos:p in
  let medium_next, p = Varint.read buf ~pos:p in
  let seq, p = Varint.read_i64 buf ~pos:p in
  let ckpt_seq, p = Varint.read_i64 buf ~pos:p in
  let ndirs, p = Varint.read buf ~pos:p in
  let pos = ref p in
  let read_str () =
    let len, p1 = Varint.read buf ~pos:!pos in
    let s = Bytes.sub_string buf p1 len in
    pos := p1 + len;
    s
  in
  let dir =
    List.init ndirs (fun _ ->
        let name = read_str () in
        let ranges = read_str () in
        let nchunks, p1 = Varint.read buf ~pos:!pos in
        pos := p1;
        let chunks =
          List.init nchunks (fun _ ->
              let meta = read_str () in
              let off, p2 = Varint.read buf ~pos:!pos in
              let len, p3 = Varint.read buf ~pos:p2 in
              pos := p3;
              (meta, off, len))
        in
        (name, ranges, chunks))
  in
  {
    bb_frontier = frontier;
    bb_next_segment = next_segment;
    bb_medium_next = medium_next;
    bb_seq = seq;
    bb_ckpt_seq = ckpt_seq;
    bb_dir = dir;
  }

(* Rewrite the boot region when the allocator's persisted sets changed
   (fire-and-forget; frontier refills run well before the fresh AUs are
   written, so the window between refill and durability is tiny — see
   DESIGN.md). *)
let maybe_persist_boot t =
  (* a dead controller must never clobber the live one's boot region *)
  let gen = Allocator.persist_generation t.alloc in
  if t.online && gen <> t.boot_generation_written then begin
    t.boot_generation_written <- gen;
    t.medium_next_id <- max t.medium_next_id (Medium.peek_next_id t.medium_table);
    Boot_region.write t.boot (encode_boot t) (fun () -> ())
  end

let () = boot_persist_hook := maybe_persist_boot

(* Controller death: stop every in-flight flush and queued segio. Called
   by Flash_array.crash after clearing [online]. *)
let halt_device_activity t =
  Hashtbl.iter (fun _ w -> Writer.abort w) t.unflushed;
  Queue.clear t.flush_queue;
  t.flush_active <- false;
  publish_control_view t

(* Paper 4.3: "the primary controller asynchronously warms the cache of
   the secondary". At failover the spare therefore starts with (most of)
   the primary's read cache instead of a cold one. *)
let warm_cache ~from ~into =
  if into.cfg.secondary_warming then
    Purity_util.Lru.fold
      (fun key frame () -> Purity_util.Lru.add into.read_cache key frame)
      from.read_cache ()

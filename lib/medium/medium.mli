(** Mediums: Purity's coarse-grained storage virtualisation (paper §4.5,
    Figure 6).

    All user data lives in numbered {e mediums}; volumes are just names
    for a current RW medium. Each medium is described by extents mapping
    block ranges either to an underlying (medium, offset) — snapshots and
    clones — or to nothing (a base range). A block read resolves through
    the chain until a written block is found; writes land only in RW
    mediums, as a patch over whatever is underneath.

    Because mediums are only ever created, frozen (RO) and dropped, and
    their ids are a dense monotone sequence, dropping one is a single
    elide-table insert in the medium pyramid — they are "the motivating
    example for elision" (§4.10).

    Block addressing is in 512-byte logical blocks, matching the paper's
    minimum unit. The table itself is pure metadata: the owner maps each
    (medium, block) to actual cblocks elsewhere. *)

type status = RO | RW

type target =
  | Base  (** no underlying data: unwritten blocks read as zeros *)
  | Underlying of { medium : int; offset : int }
      (** block [b] of this extent maps to block [b - start + offset] of
          the underlying medium *)

type extent = {
  start_block : int;
  end_block : int;  (** inclusive, like the paper's "0:3999" *)
  target : target;
  status : status;
  skip_local : bool;
      (** flag: this medium certainly has no cblocks of its own in the
          range, so lookups skip straight to the target — one of the
          "flags that reduce the number of references" of §4.5 *)
}

type t

val create : ?first_id:int -> unit -> t
(** Medium ids count up from [first_id] (default 1) and are never
    reused. *)

val create_base : t -> blocks:int -> int
(** A fresh RW medium of [blocks] blocks over nothing (a new volume). *)

val take_snapshot : t -> int -> int * int
(** [take_snapshot t m] freezes RW medium [m] (it becomes RO) and returns
    [(snap, successor)]: [snap] is the immutable snapshot handle and
    [successor] the new RW medium that now receives the volume's writes —
    both reference [m]. @raise Invalid_argument if [m] is not RW. *)

val clone : t -> int -> ?range:int * int -> unit -> int
(** [clone t m ~range:(lo, hi)] makes a new RW medium whose blocks 0..hi-lo
    map onto blocks lo..hi of [m] ([m] must be RO — snapshot first, as the
    real array does). Default range: all of [m]. *)

val extend : t -> int -> blocks:int -> unit
(** Grow a RW medium with a fresh base extent (e.g. resizing a volume; how
    Figure 6's medium 22 gets its 1000:1999 range). *)

val drop : t -> int -> unit
(** Forget a medium (volume/snapshot deletion). Its table rows vanish; the
    caller elides its data facts. @raise Invalid_argument if other
    mediums still reference it. *)

val status : t -> int -> status option
val exists : t -> int -> bool
val size_blocks : t -> int -> int
val live_mediums : t -> int list
val referenced_by : t -> int -> int list
(** Mediums with an extent targeting the given one. *)

val extent_of : t -> int -> block:int -> extent option
(** The extent of a medium covering [block], if any — lets batched
    resolution split a block range along extent boundaries and walk the
    chain one level at a time. *)

val resolve : t -> int -> block:int -> (int * int) list
(** Lookup chain for (medium, block): the (medium, block) pairs that may
    hold the data, nearest patch first, ending at the base layer. Skips
    [skip_local] levels. Empty when the block is out of range. *)

val resolve_depth : t -> int -> block:int -> int
(** Chain length — the "never more than three cblocks" metric (E4/GC). *)

val write_target : t -> int -> block:int -> (int, [ `Read_only | `Out_of_range | `No_such_medium ]) result
(** Where a write to (medium, block) must record its data: the medium
    itself when RW. *)

val shortcut : ?only:int list -> t -> has_blocks:(medium:int -> lo:int -> hi:int -> bool) -> unit
(** GC flattening (§4.5–4.6): for every extent, follow the underlying
    chain past immutable intermediate mediums that own no blocks in the
    mapped range and repoint (pieces of) the extent at the deepest such
    target — producing exactly Figure 6's "22 can refer directly to 12"
    shortcut, including the extent splitting its three-row form implies.
    [has_blocks ~medium ~lo ~hi] asks whether [medium] owns any block in
    the inclusive range [lo..hi]. Idempotent given the same predicate.
    [only] restricts rewriting to the listed mediums — the garbage
    collector flattens medium trees incrementally, one medium at a time,
    which is why tables like Figure 6 show partially flattened states. *)

val rows : t -> (int * extent) list
(** All (medium, extent) rows, ordered by medium id then start block —
    Figure 6's table. *)

val pp_table : t Fmt.t
(** Render in the layout of Figure 6. *)

(** {1 Persistence} *)

val encode_extents : extent list -> string
(** Serialise one medium's extents (the value of its fact in the medium
    pyramid). *)

val decode_extents : string -> extent list
(** @raise Invalid_argument on malformed input. *)

val restore : rows:(int * extent list) list -> next_id:int -> t
(** Rebuild a table at recovery from persisted rows. [next_id] must
    exceed every id ever issued (ids are never reused). *)

val extents : t -> int -> extent list
(** The raw extent rows of one medium (empty when absent). *)

val set_medium : t -> int -> extent list -> unit
(** Recovery/replay: install a medium's extents verbatim, bumping the id
    counter past it. *)

val peek_next_id : t -> int
(** The next id that will be issued (for boot-region persistence). *)

(* Fault plans for the ActiveCluster torture suite.

   Same philosophy as {!Plan}: a plan is a seed plus a self-contained
   event list, so dropping events during shrinking never changes the
   meaning of the events that remain. The vocabulary is the stretched
   pod's: writes and reads landing on a chosen side, racing writes
   landing on both at once, link partitions, mediator loss, single and
   double array crashes, recoveries and settles (failback attempts).

   The generator emits recipes rather than isolated faults — a cut link
   with writes behind it so the mediation race actually runs, a timed
   cut armed to land in the middle of a write, a crash with traffic on
   the surviving side — and always appends a compensating tail (heal,
   restore, recover, settle) so every scenario ends in a state the final
   audit can reach. *)

module Rng = Purity_util.Rng

type side = Purity_activecluster.Mediator.side = A | B

let side_name = Purity_activecluster.Mediator.side_name

type fault =
  | Cut_link
  | Heal_link
  | Lose_mediator
  | Restore_mediator
  | Crash of side
  | Crash_both

type op =
  | Write of { side : side; view : string; block : int; nblocks : int; wid : int }
  | Write_racing of { view : string; block : int; nblocks : int; wid_a : int; wid_b : int }
      (* issued concurrently, one from each side, same range: the LWW
         mirror protocol must make both arrays agree on one winner *)
  | Read of { side : side; view : string; block : int; nblocks : int }
  | Settle  (* drive the pod toward the healthiest reachable status *)
  | Recover of side

type event =
  | Op of op
  | Fault of fault
  | Timed of { delay_us : float; fault : fault }
      (* armed on the clock when reached: fires mid-way through whatever
         runs next — the straddling-write scenarios *)

type t = {
  seed : int64;
  vols : (string * int) list;  (* stretched volumes the runner pre-creates *)
  events : event list;
}

(* ---------- pretty-printing (failure reports) ---------- *)

let pp_fault ppf = function
  | Cut_link -> Format.fprintf ppf "cut replication link"
  | Heal_link -> Format.fprintf ppf "heal replication link"
  | Lose_mediator -> Format.fprintf ppf "lose mediator"
  | Restore_mediator -> Format.fprintf ppf "restore mediator"
  | Crash s -> Format.fprintf ppf "crash array %s" (side_name s)
  | Crash_both -> Format.fprintf ppf "crash both arrays"

let pp_op ppf = function
  | Write { side; view; block; nblocks; wid } ->
    Format.fprintf ppf "write#%d %s[%d..%d] via %s" wid view block
      (block + nblocks - 1) (side_name side)
  | Write_racing { view; block; nblocks; wid_a; wid_b } ->
    Format.fprintf ppf "race write#%d(A) vs write#%d(B) on %s[%d..%d]" wid_a wid_b view
      block (block + nblocks - 1)
  | Read { side; view; block; nblocks } ->
    Format.fprintf ppf "read %s[%d..%d] via %s" view block (block + nblocks - 1)
      (side_name side)
  | Settle -> Format.fprintf ppf "settle"
  | Recover s -> Format.fprintf ppf "recover array %s" (side_name s)

let pp_event ppf = function
  | Op op -> pp_op ppf op
  | Fault f -> Format.fprintf ppf "! %a" pp_fault f
  | Timed { delay_us; fault } ->
    Format.fprintf ppf "! after %.0fus: %a" delay_us pp_fault fault

let pp ppf { seed; vols; events } =
  Format.fprintf ppf "@[<v>seed %Ld, vols [%s], %d events:@," seed
    (String.concat "; " (List.map (fun (n, b) -> Printf.sprintf "%s:%d" n b) vols))
    (List.length events);
  List.iteri (fun i e -> Format.fprintf ppf "%3d. %a@," i pp_event e) events;
  Format.fprintf ppf "@]"

(* ---------- generation ---------- *)

type gen_config = {
  steps : int;  (** generation rounds; recipes emit several events *)
  vols : int;  (** stretched volumes *)
  vol_blocks : int;
  io_blocks : int;  (** nominal write size in 512 B blocks *)
}

let default_gen = { steps = 30; vols = 2; vol_blocks = 192; io_blocks = 8 }

let generate ?(cfg = default_gen) seed =
  let rng = Rng.create ~seed in
  let vols =
    List.init (max 1 cfg.vols) (fun i ->
        (Printf.sprintf "p%d" i, cfg.vol_blocks / 2 * (1 + Rng.int rng 2)))
  in
  let rev_events = ref [] in
  let emit e = rev_events := e :: !rev_events in
  let wid_ctr = ref 0 in
  let fresh_wid () =
    incr wid_ctr;
    !wid_ctr
  in
  let any_side () = if Rng.bool rng then A else B in
  let range () =
    let view, blocks = List.nth vols (Rng.int rng (List.length vols)) in
    let nblocks = min blocks (1 + Rng.int rng cfg.io_blocks) in
    let block = Rng.int rng (blocks - nblocks + 1) in
    (view, block, nblocks)
  in
  let write_somewhere ?side () =
    let view, block, nblocks = range () in
    let side = match side with Some s -> s | None -> any_side () in
    emit (Op (Write { side; view; block; nblocks; wid = fresh_wid () }))
  in
  let read_somewhere () =
    let view, block, nblocks = range () in
    emit (Op (Read { side = any_side (); view; block; nblocks }))
  in
  let race_somewhere () =
    let view, block, nblocks = range () in
    emit
      (Op
         (Write_racing
            { view; block; nblocks; wid_a = fresh_wid (); wid_b = fresh_wid () }))
  in
  (* seed content so partitions have something to diverge over *)
  for _ = 1 to 3 do
    write_somewhere ()
  done;
  for _ = 1 to cfg.steps do
    match Rng.int rng 100 with
    | n when n < 26 -> write_somewhere ()
    | n when n < 40 -> read_somewhere ()
    | n when n < 48 -> race_somewhere ()
    | n when n < 60 ->
      (* partition recipe: cut, traffic on one or both sides (the mirror
         timeout drives mediation), optional racing pair, heal, failback *)
      emit (Fault Cut_link);
      let writer = any_side () in
      for _ = 1 to 1 + Rng.int rng 2 do
        write_somewhere ~side:writer ()
      done;
      if Rng.int rng 3 = 0 then race_somewhere ();
      if Rng.bool rng then read_somewhere ();
      emit (Fault Heal_link);
      emit (Op Settle)
    | n when n < 68 ->
      (* straddling write: the cut lands mid-flight, inside the mirror
         round trip, so the write must fail over transparently *)
      emit (Timed { delay_us = 50.0 +. Rng.float rng 2_000.0; fault = Cut_link });
      write_somewhere ();
      write_somewhere ();
      emit (Fault Heal_link);
      emit (Op Settle)
    | n when n < 76 ->
      (* mediator loss during a partition: nobody can win, the pod must
         freeze (reject I/O) rather than risk split brain *)
      emit (Fault Lose_mediator);
      emit (Fault Cut_link);
      write_somewhere ();
      read_somewhere ();
      emit (Fault Restore_mediator);
      emit (Fault Heal_link);
      emit (Op Settle)
    | n when n < 86 ->
      (* array crash: traffic continues on the survivor via mediation,
         then the dead side returns and the pod fails back *)
      let victim = any_side () in
      emit (Fault (Crash victim));
      for _ = 1 to 1 + Rng.int rng 2 do
        write_somewhere ()
      done;
      if Rng.bool rng then read_somewhere ();
      emit (Op (Recover victim));
      emit (Op Settle)
    | n when n < 91 ->
      (* simultaneous crash: everything volatile dies; both recover and
         the pod reconciles from the pod holder's content *)
      emit (Fault Crash_both);
      emit (Op (Recover A));
      emit (Op (Recover B));
      emit (Op Settle)
    | n when n < 96 -> emit (Op Settle)
    | _ -> read_somewhere ()
  done;
  (* compensating tail: end every scenario in a reachable-audit state *)
  emit (Fault Heal_link);
  emit (Fault Restore_mediator);
  emit (Op (Recover A));
  emit (Op (Recover B));
  emit (Op Settle);
  { seed; vols; events = List.rev !rev_events }

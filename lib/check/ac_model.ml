(* Two-array reference model for the ActiveCluster contract.

   The single-array model ({!Model}) answers "may this read return these
   bytes?" for one durability timeline. A stretched pod needs a wider
   question: two arrays serve the same blocks, concurrent writes from
   opposite sides may be serialized either way, a partition lets exactly
   one side keep serving, and a failback must reconverge the pair. The
   contract this model enforces:

   - an acknowledged write while the pod is in sync is on BOTH arrays
     and can never be lost or reverted (lost-ack detection);
   - an acknowledged write while one side serves solo is on that side
     and must survive the failback (the survivor's bytes win);
   - concurrent writes to the same block may resolve to either writer —
     but to the SAME writer on both arrays (divergence detection);
   - within one array, an observed value can only change when a write,
     a race resolution, or a reconciliation permits it.

   Each block is a cell holding the candidate value set plus per-side
   observations. While the pair is converged a single observation (from
   either side) collapses the cell globally — so reading block 7 as
   write#12 on array A and later as write#9 on array B is a violation.
   While diverged, each side collapses independently; [settled] (a
   completed failback) declares the survivor's view global again.

   Payload rendering is delegated to an embedded {!Model.t}: the same
   seeded, self-identifying block bytes, so failure reports can name the
   exact write a wrong byte came from. *)

type side = Purity_activecluster.Mediator.side = A | B

let side_name = Purity_activecluster.Mediator.side_name

type cell = {
  mutable cands : Model.token list;  (* values the history permits *)
  mutable obs_a : Model.token option;  (* what array A was seen to hold *)
  mutable obs_b : Model.token option;
  mutable converged : bool;  (* both arrays guaranteed identical *)
}

type t = {
  oracle : Model.t;  (* payload render/describe only; no cells of its own *)
  views : (string, cell array) Hashtbl.t;
  block_size : int;
}

let create ~seed ~block_size () =
  {
    oracle = Model.create ~seed ~block_size ();
    views = Hashtbl.create 8;
    block_size;
  }

let payload t ~wid ~nblocks = Model.payload t.oracle ~wid ~nblocks

let create_volume t name ~blocks =
  let mk _ = { cands = [ Model.Zero ]; obs_a = None; obs_b = None; converged = true } in
  Hashtbl.replace t.views name (Array.init blocks mk)

let blocks t name = Option.map Array.length (Hashtbl.find_opt t.views name)

let cells_of t view block nblocks =
  match Hashtbl.find_opt t.views view with
  | None -> None
  | Some cells ->
    if block < 0 || block + nblocks > Array.length cells then None
    else Some cells

(* An acked in-sync write: one value, both arrays, irrevocable. An acked
   solo write: one value, not yet on the peer. An unacked write: the new
   value joins the old candidates — the write may or may not have landed
   on either side. *)
let write_result t ~view ~block ~nblocks ~wid ~acked ~in_sync =
  match cells_of t view block nblocks with
  | None -> ()
  | Some cells ->
    for j = 0 to nblocks - 1 do
      let tok = Model.Data { wid; idx = j } in
      let c = cells.(block + j) in
      if acked then
        cells.(block + j) <-
          { cands = [ tok ]; obs_a = None; obs_b = None; converged = in_sync }
      else begin
        (* the old observations stay valid candidates; fold them in *)
        let olds =
          List.sort_uniq compare
            (c.cands
            @ (match c.obs_a with Some o -> [ o ] | None -> [])
            @ (match c.obs_b with Some o -> [ o ] | None -> []))
        in
        cells.(block + j) <-
          { cands = tok :: olds; obs_a = None; obs_b = None; converged = false }
      end
    done

(* Two racing writes to the same range, one from each side. Last-writer-
   wins may pick either, so both are candidates; if both were acked and
   the pod stayed in sync, the arrays agree on ONE of them (collapsed by
   the first read). If neither was acked the old value remains possible
   too. *)
let write_racing_result t ~view ~block ~nblocks ~wid_a ~wid_b ~acked_a ~acked_b ~in_sync =
  match cells_of t view block nblocks with
  | None -> ()
  | Some cells ->
    for j = 0 to nblocks - 1 do
      let ta = Model.Data { wid = wid_a; idx = j } in
      let tb = Model.Data { wid = wid_b; idx = j } in
      let c = cells.(block + j) in
      let olds =
        if acked_a || acked_b then []
        else
          List.sort_uniq compare
            (c.cands
            @ (match c.obs_a with Some o -> [ o ] | None -> [])
            @ (match c.obs_b with Some o -> [ o ] | None -> []))
      in
      cells.(block + j) <-
        {
          cands = ta :: tb :: olds;
          obs_a = None;
          obs_b = None;
          converged = acked_a && acked_b && in_sync;
        }
    done

let obs c = function A -> c.obs_a | B -> c.obs_b

let set_obs c side tok =
  match side with A -> c.obs_a <- Some tok | B -> c.obs_b <- Some tok

(* Audit bytes array [side] returned for a range. A converged cell
   collapses globally on first observation: both arrays are then pinned
   to that value, which is exactly what catches divergence (the other
   array disagreeing) and lost acks (the acked value being the only
   candidate). A diverged cell collapses per side. *)
let check_read t ~side ~view ~block ~nblocks data =
  match cells_of t view block nblocks with
  | None -> Error (Printf.sprintf "read of unknown range %s[%d..%d]" view block (block + nblocks - 1))
  | Some cells ->
    if String.length data <> nblocks * t.block_size then
      Error
        (Printf.sprintf "read %s[%d..%d] on %s: got %d bytes, wanted %d" view block
           (block + nblocks - 1) (side_name side) (String.length data)
           (nblocks * t.block_size))
    else begin
      let violation = ref None in
      (try
         for j = 0 to nblocks - 1 do
           let got = String.sub data (j * t.block_size) t.block_size in
           let c = cells.(block + j) in
           let fail expected =
             violation :=
               Some
                 (Printf.sprintf "%s[%d] on array %s: expected %s, got %s" view (block + j)
                    (side_name side) expected
                    (Model.describe_bytes t.oracle got));
             raise Exit
           in
           match obs c side with
           | Some tok ->
             if Model.render t.oracle tok <> got then fail (Model.describe_token tok)
           | None -> (
             match List.find_opt (fun tok -> Model.render t.oracle tok = got) c.cands with
             | Some tok ->
               if c.converged then begin
                 c.cands <- [ tok ];
                 c.obs_a <- Some tok;
                 c.obs_b <- Some tok
               end
               else set_obs c side tok
             | None ->
               fail (String.concat " or " (List.map Model.describe_token c.cands)))
         done
       with Exit -> ());
      match !violation with Some msg -> Error msg | None -> Ok ()
    end

(* A failback completed with [survivor]'s content authoritative: every
   diverged cell becomes converged, pinned to whatever the survivor was
   last seen to hold (or still ambiguous, globally, if never read). *)
let settled t ~survivor =
  Hashtbl.iter
    (fun _ cells ->
      Array.iter
        (fun c ->
          if not c.converged then begin
            (match obs c survivor with Some tok -> c.cands <- [ tok ] | None -> ());
            c.converged <- true;
            c.obs_a <- None;
            c.obs_b <- None
          end)
        cells)
    t.views

let volumes t =
  Hashtbl.fold (fun name cells acc -> (name, Array.length cells) :: acc) t.views []
  |> List.sort compare

(* Reference model for the durability contract.

   The model shadows the array's logical state — volumes, snapshots,
   clones, and the bytes behind every block — precisely enough to decide,
   for any read the array serves, whether the bytes are ones the history
   permits.

   Crash uncertainty is the interesting part. An acknowledged write must
   survive a controller crash (NVRAM replay), so a plain crash loses the
   model nothing. NVRAM content loss is different: writes acked since
   their data last reached flushed segments were depending on the lost
   records, so a *subsequent* crash may legitimately revert them. Each
   block is therefore a [cell] carrying its pre-write lineage:

   - [durable]: persisted under a completed flush/checkpoint barrier —
     immune to both crash and NVRAM loss;
   - [fragile]: its NVRAM record was lost while not yet durable — the
     next crash may revert it;
   - [maybe]: a crash (or a torn write) actually made it ambiguous — a
     read may return this value or anything down the [parent] chain, and
     the first read to observe the block collapses the ambiguity.

   Cells are shared by reference between a volume and its snapshots and
   clones, so a collapse observed through one view constrains the others
   — which is also what makes "snapshots stay frozen" checkable: once a
   snapshot block collapses, any later disagreement is a violation. *)

type token = Zero | Data of { wid : int; idx : int }

type cell = {
  mutable v : token;
  mutable durable : bool;
  mutable fragile : bool;
  mutable maybe : bool;
  mutable parent : cell option;
}

type kind = Volume | Snapshot

type view = {
  kind : kind;
  mutable cells : cell array;
  mutable ns_fragile : bool;
      (* a namespace fact of this view (creation, resize, lineage) was in
         NVRAM records that got lost: the next crash may undo it *)
  mutable ns_durable : bool;
  mutable size_floor : int;  (* size at the last completed barrier *)
}

type tombstone = {
  t_view : view;
  mutable t_fragile : bool;  (* the delete record itself was lost *)
}

type t = {
  seed : int64;
  block_size : int;
  views : (string, view) Hashtbl.t;
  tombs : (string, tombstone) Hashtbl.t;
  zero_cell : cell;
  renders : (token, string) Hashtbl.t;
  mutable acked_writes : int;  (* Ok-acked app writes since last failover *)
  mutable nvram_losses : int;
}

let create ?(seed = 0L) ~block_size () =
  {
    seed;
    block_size;
    views = Hashtbl.create 16;
    tombs = Hashtbl.create 16;
    zero_cell = { v = Zero; durable = true; fragile = false; maybe = false; parent = None };
    renders = Hashtbl.create 256;
    acked_writes = 0;
    nvram_losses = 0;
  }

(* ---------- payloads ---------- *)

(* The bytes of write [wid], block [idx] are a pure function of the plan
   seed — not of any execution-time stream — so dropping events during
   trace shrinking never changes the payloads of the events that remain.
   The identity is embedded verbatim in the head of the block, making
   payloads collision-free and letting a failure report name the write a
   wrong byte actually came from. wid 0 renders as zeros (a deliberate
   zero-write, indistinguishable from unwritten space — as it should be). *)
let render t tok =
  match Hashtbl.find_opt t.renders tok with
  | Some s -> s
  | None ->
    let s =
      match tok with
      | Zero | Data { wid = 0; _ } -> String.make t.block_size '\000'
      | Data { wid; idx } ->
        let b = Bytes.create t.block_size in
        let mix =
          Int64.logxor t.seed (Int64.of_int (((wid + 1) * 0x10003) + idx))
        in
        let rng = Purity_util.Rng.create ~seed:mix in
        Purity_util.Rng.fill_bytes rng b ~pos:0 ~len:t.block_size;
        Bytes.set_int32_le b 0 (Int32.of_int wid);
        Bytes.set_int32_le b 4 (Int32.of_int idx);
        Bytes.unsafe_to_string b
    in
    Hashtbl.replace t.renders tok s;
    s

let payload t ~wid ~nblocks =
  String.concat ""
    (List.init nblocks (fun idx -> render t (Data { wid; idx })))

let describe_token = function
  | Zero -> "zeros"
  | Data { wid; idx } -> Printf.sprintf "write#%d+%d" wid idx

(* Best-effort naming of bytes the model did not expect, using the
   embedded identity. *)
let describe_bytes t s =
  if s = String.make t.block_size '\000' then "zeros"
  else if String.length s >= 8 then
    let wid = Int32.to_int (String.get_int32_le s 0) in
    let idx = Int32.to_int (String.get_int32_le s 4) in
    if wid > 0 && wid < 1_000_000 && idx >= 0 && idx < 65536
       && s = render t (Data { wid; idx })
    then Printf.sprintf "bytes of write#%d+%d" wid idx
    else "unrecognised bytes"
  else "unrecognised bytes"

(* ---------- namespace ---------- *)

let find t name = Hashtbl.find_opt t.views name
let exists t name = Hashtbl.mem t.views name

let kind t name =
  match find t name with
  | Some v -> Some (match v.kind with Volume -> `Volume | Snapshot -> `Snapshot)
  | None -> None

let blocks t name = Option.map (fun v -> Array.length v.cells) (find t name)

let listing t =
  Hashtbl.fold
    (fun name v acc ->
      ( name,
        (match v.kind with Volume -> `Volume | Snapshot -> `Snapshot),
        Array.length v.cells )
      :: acc)
    t.views []
  |> List.sort compare

let create_volume t name ~blocks =
  Hashtbl.replace t.views name
    {
      kind = Volume;
      cells = Array.make blocks t.zero_cell;
      ns_fragile = false;
      ns_durable = false;
      size_floor = blocks;
    }

let delete t name =
  match Hashtbl.find_opt t.views name with
  | None -> ()
  | Some v ->
    Hashtbl.remove t.views name;
    Hashtbl.replace t.tombs name { t_view = v; t_fragile = false }

let resize_volume t name ~blocks =
  match find t name with
  | None -> ()
  | Some v ->
    let old = Array.length v.cells in
    if blocks > old then begin
      let cells = Array.make blocks t.zero_cell in
      Array.blit v.cells 0 cells 0 old;
      v.cells <- cells
    end

let snapshot t ~volume ~snap =
  match find t volume with
  | None -> ()
  | Some v ->
    Hashtbl.replace t.views snap
      {
        kind = Snapshot;
        cells = Array.copy v.cells;
        ns_fragile = false;
        ns_durable = false;
        size_floor = Array.length v.cells;
      }

let clone t ~snapshot ~volume =
  match find t snapshot with
  | None -> ()
  | Some s ->
    Hashtbl.replace t.views volume
      {
        kind = Volume;
        cells = Array.copy s.cells;
        ns_fragile = false;
        ns_durable = false;
        size_floor = Array.length s.cells;
      }

(* ---------- data ---------- *)

let write t ~view ~block ~wid ~nblocks ~acked =
  match find t view with
  | None -> ()
  | Some v ->
    if acked then t.acked_writes <- t.acked_writes + 1;
    for j = 0 to nblocks - 1 do
      let old = v.cells.(block + j) in
      v.cells.(block + j) <-
        {
          v = Data { wid; idx = j };
          durable = false;
          fragile = false;
          (* an unacked outcome (controller died mid-write, or the write
             tore on allocation failure) is ambiguous from the start *)
          maybe = not acked;
          parent = Some old;
        }
    done

let candidates cell =
  let rec go c acc =
    let acc = c.v :: acc in
    if c.maybe then
      match c.parent with
      | Some p -> go p acc
      | None -> Zero :: acc (* defensive: accept the empty history *)
    else acc
  in
  List.rev (go cell [])

let check_read t ~view ~block ~nblocks data =
  match find t view with
  | None -> Error (Printf.sprintf "read of unknown view %s returned data" view)
  | Some v ->
    if String.length data <> nblocks * t.block_size then
      Error
        (Printf.sprintf "read %s[%d..%d]: got %d bytes, wanted %d" view block
           (block + nblocks - 1) (String.length data) (nblocks * t.block_size))
    else begin
      let violation = ref None in
      (try
         for j = 0 to nblocks - 1 do
           let got = String.sub data (j * t.block_size) t.block_size in
           let cell = v.cells.(block + j) in
           let cands = candidates cell in
           match List.find_opt (fun c -> render t c = got) cands with
           | Some c ->
             (* observation collapses the ambiguity — for every view
                sharing this cell, including frozen snapshots *)
             cell.v <- c;
             cell.maybe <- false
           | None ->
             violation :=
               Some
                 (Printf.sprintf "%s[%d]: expected %s, got %s" view (block + j)
                    (String.concat " or " (List.map describe_token cands))
                    (describe_bytes t got));
             raise Exit
         done
       with Exit -> ());
      match !violation with Some msg -> Error msg | None -> Ok ()
    end

(* ---------- fault transitions ---------- *)

let iter_cells t f =
  let seen_view v = Array.iter f v.cells in
  Hashtbl.iter (fun _ v -> seen_view v) t.views;
  Hashtbl.iter (fun _ tb -> seen_view tb.t_view) t.tombs

let nvram_lost t =
  t.nvram_losses <- t.nvram_losses + 1;
  iter_cells t (fun c -> if not c.durable then c.fragile <- true);
  Hashtbl.iter
    (fun _ v -> if not v.ns_durable then v.ns_fragile <- true)
    t.views;
  Hashtbl.iter (fun _ tb -> tb.t_fragile <- true) t.tombs

let crashed t =
  iter_cells t (fun c ->
      if c.fragile then begin
        c.fragile <- false;
        c.maybe <- true
      end)

(* A flush or checkpoint completed with the controller up: everything the
   model has seen is now in flushed segments, beyond the reach of both
   crash and NVRAM loss. Ambiguity from *past* crashes persists — the
   array's current value is durable, but we still don't know which
   candidate it is until a read tells us. *)
let stabilized t =
  iter_cells t (fun c ->
      c.durable <- true;
      c.fragile <- false;
      if not c.maybe then c.parent <- None);
  Hashtbl.iter
    (fun _ v ->
      v.ns_durable <- true;
      v.ns_fragile <- false;
      v.size_floor <- Array.length v.cells)
    t.views;
  Hashtbl.reset t.tombs

let failed_over t = t.acked_writes <- 0

(* Post-failover reconciliation: the array's volume listing is ground
   truth for everything the model holds only uncertainly. Certain state
   must match exactly — a missing volume, a resurrected one, or a size
   the history cannot produce is a violation. *)
let reconcile t arr_listing =
  failed_over t;
  let err = ref None in
  let fail msg = if !err = None then err := Some msg in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (name, akind, ablocks) ->
      Hashtbl.replace seen name ();
      match Hashtbl.find_opt t.views name with
      | Some v ->
        let mkind = match v.kind with Volume -> `Volume | Snapshot -> `Snapshot in
        if mkind <> akind then
          fail (Printf.sprintf "%s changed kind across failover" name)
        else begin
          let len = Array.length v.cells in
          if ablocks = len then ()
          else if v.ns_fragile && ablocks >= v.size_floor && ablocks < len then
            (* a fragile resize was lost with the NVRAM records: accept
               the reverted size and forget the truncated tail *)
            v.cells <- Array.sub v.cells 0 ablocks
          else
            fail
              (Printf.sprintf "%s is %d blocks after failover, model has %d (floor %d)"
                 name ablocks len v.size_floor);
          (* it survived this crash; recovery re-logged its facts, so it
             is crash-safe again until the next NVRAM loss *)
          v.ns_fragile <- false
        end
      | None -> (
        match Hashtbl.find_opt t.tombs name with
        | Some tb when tb.t_fragile ->
          (* the delete itself was lost: the view legitimately returns,
             with every non-durable block back in doubt *)
          Array.iter
            (fun c -> if not c.durable then c.maybe <- true)
            tb.t_view.cells;
          tb.t_view.ns_fragile <- false;
          Hashtbl.remove t.tombs name;
          Hashtbl.replace t.views name tb.t_view
        | Some _ -> fail (Printf.sprintf "deleted view %s resurrected by failover" name)
        | None -> fail (Printf.sprintf "failover invented view %s" name)))
    arr_listing;
  Hashtbl.iter
    (fun name (v : view) ->
      if not (Hashtbl.mem seen name) then
        if v.ns_fragile then Hashtbl.remove t.views name
        else fail (Printf.sprintf "view %s lost by failover" name))
    (Hashtbl.copy t.views);
  Hashtbl.reset t.tombs;
  match !err with Some msg -> Error msg | None -> Ok ()

let acked_writes t = t.acked_writes
let nvram_losses t = t.nvram_losses

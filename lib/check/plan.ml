module Rng = Purity_util.Rng

type mode = Fast | Full

type fault =
  | Pull_drive of int
  | Reinsert_drive of int
  | Replace_drive of int
  | Corrupt_page of { drive : int; au_rank : int; page_rank : int }
      (* resolved at execution time: the [au_rank]-th currently-written AU
         of the drive, the [page_rank]-th written page inside it — keeps
         the event self-contained so trace shrinking stays deterministic *)
  | Lose_nvram
  | Crash of mode

type op =
  | Create_volume of { name : string; blocks : int }
  | Delete_volume of string
  | Resize_volume of { name : string; blocks : int }
  | Snapshot of { volume : string; snap : string }
  | Clone of { snapshot : string; volume : string }
  | Delete_snapshot of string
  | Write of { view : string; block : int; nblocks : int; wid : int }
  | Read of { view : string; block : int; nblocks : int }
  | Flush
  | Checkpoint
  | Gc
  | Scrub
  | Rebuild of int

type event =
  | Op of op
  | Fault of fault
  | Timed of { delay_us : float; fault : fault }
      (* armed on the simulation clock when reached, so the fault fires in
         the middle of whatever runs next (a rebuild, a GC pass, ...) *)

type t = { seed : int64; events : event list }

(* ---------- pretty-printing (failure reports) ---------- *)

let pp_mode ppf = function
  | Fast -> Format.fprintf ppf "fast"
  | Full -> Format.fprintf ppf "full"

let pp_fault ppf = function
  | Pull_drive d -> Format.fprintf ppf "pull drive %d" d
  | Reinsert_drive d -> Format.fprintf ppf "reinsert drive %d" d
  | Replace_drive d -> Format.fprintf ppf "replace drive %d" d
  | Corrupt_page { drive; au_rank; page_rank } ->
    Format.fprintf ppf "corrupt page (drive %d, au#%d, page#%d)" drive au_rank page_rank
  | Lose_nvram -> Format.fprintf ppf "lose NVRAM contents"
  | Crash mode -> Format.fprintf ppf "crash + failover (%a recovery)" pp_mode mode

let pp_op ppf = function
  | Create_volume { name; blocks } -> Format.fprintf ppf "create %s (%d blocks)" name blocks
  | Delete_volume name -> Format.fprintf ppf "delete volume %s" name
  | Resize_volume { name; blocks } -> Format.fprintf ppf "resize %s to %d blocks" name blocks
  | Snapshot { volume; snap } -> Format.fprintf ppf "snapshot %s of %s" snap volume
  | Clone { snapshot; volume } -> Format.fprintf ppf "clone %s from %s" volume snapshot
  | Delete_snapshot name -> Format.fprintf ppf "delete snapshot %s" name
  | Write { view; block; nblocks; wid } ->
    Format.fprintf ppf "write#%d %s[%d..%d]" wid view block (block + nblocks - 1)
  | Read { view; block; nblocks } ->
    Format.fprintf ppf "read %s[%d..%d]" view block (block + nblocks - 1)
  | Flush -> Format.fprintf ppf "flush"
  | Checkpoint -> Format.fprintf ppf "checkpoint"
  | Gc -> Format.fprintf ppf "gc"
  | Scrub -> Format.fprintf ppf "scrub"
  | Rebuild d -> Format.fprintf ppf "rebuild drive %d" d

let pp_event ppf = function
  | Op op -> pp_op ppf op
  | Fault f -> Format.fprintf ppf "! %a" pp_fault f
  | Timed { delay_us; fault } ->
    Format.fprintf ppf "! after %.0fus: %a" delay_us pp_fault fault

let pp ppf { seed; events } =
  Format.fprintf ppf "@[<v>seed %Ld, %d events:@," seed (List.length events);
  List.iteri (fun i e -> Format.fprintf ppf "%3d. %a@," i pp_event e) events;
  Format.fprintf ppf "@]"

(* ---------- generation ---------- *)

type gen_config = {
  steps : int;  (** generation rounds; most emit one event, recipes a few *)
  drives : int;
  fault_units : int;  (** the array's [m]: concurrent repairable faults *)
  vol_blocks : int;  (** nominal volume size in 512 B blocks *)
  io_blocks : int;  (** preferred write size in blocks *)
  max_views : int;  (** volumes + snapshots ceiling *)
  allow_nvram_loss : bool;
}

let default_gen =
  {
    steps = 60;
    drives = 7;
    fault_units = 2;
    vol_blocks = 512;
    io_blocks = 16;
    max_views = 6;
    allow_nvram_loss = true;
  }

(* Scheduled faults never exceed the erasure-code tolerance: concurrent
   pulled drives + replaced-but-not-rebuilt drives + outstanding injected
   corruptions stay <= fault_units, so every generated scenario is one the
   array is contractually able to survive. The runner re-checks the same
   budget at execution time (shrinking can reorder what survives). *)
let generate ?(cfg = default_gen) seed =
  let rng = Rng.create ~seed in
  let rev_events = ref [] in
  let emit e = rev_events := e :: !rev_events in
  let vol_ctr = ref 0 and snap_ctr = ref 0 and wid_ctr = ref 0 in
  let volumes = ref [] (* (name, blocks ref), writable *) in
  let snaps = ref [] (* (name, blocks) *) in
  let pulled = ref [] in
  let unrebuilt = ref [] in
  let corrupts = ref 0 in
  let budget_left () =
    cfg.fault_units - (List.length !pulled + List.length !unrebuilt + !corrupts)
  in
  let views () = List.length !volumes + List.length !snaps in
  let pick xs = List.nth xs (Rng.int rng (List.length xs)) in
  let fresh_wid () =
    incr wid_ctr;
    (* reusing an id reuses its bytes verbatim: the dedup path under test *)
    if !wid_ctr > 4 && Rng.int rng 10 = 0 then 1 + Rng.int rng !wid_ctr
    else !wid_ctr
  in
  let any_mode () = if Rng.bool rng then Fast else Full in
  let free_drive () =
    let busy = !pulled @ !unrebuilt in
    let d = Rng.int rng cfg.drives in
    if List.mem d busy then None else Some d
  in
  let new_volume () =
    let name = Printf.sprintf "v%d" !vol_ctr in
    incr vol_ctr;
    let blocks = cfg.vol_blocks / 2 * (1 + Rng.int rng 2) in
    volumes := (name, ref blocks) :: !volumes;
    emit (Op (Create_volume { name; blocks }))
  in
  let write_somewhere () =
    let name, blocks = pick !volumes in
    let nblocks =
      match Rng.int rng 8 with
      | 0 -> 1 + Rng.int rng cfg.io_blocks
      | 1 -> cfg.io_blocks * 2
      | _ -> cfg.io_blocks
    in
    let nblocks = min nblocks !blocks in
    let block = Rng.int rng (!blocks - nblocks + 1) in
    emit (Op (Write { view = name; block; nblocks; wid = fresh_wid () }))
  in
  let read_somewhere () =
    let all = List.map (fun (n, b) -> (n, !b)) !volumes @ !snaps in
    let name, blocks = pick all in
    let nblocks = min cfg.io_blocks blocks in
    let block = Rng.int rng (blocks - nblocks + 1) in
    emit (Op (Read { view = name; block; nblocks }))
  in
  new_volume ();
  for _ = 1 to 4 do
    write_somewhere ()
  done;
  for _ = 1 to cfg.steps do
    match Rng.int rng 100 with
    | n when n < 34 -> write_somewhere ()
    | n when n < 54 -> read_somewhere ()
    | n when n < 60 -> (
      (* crash recipe; sometimes with NVRAM content loss first, in which
         case a flush bounds the exposure to the recipe's own writes *)
      let lose = cfg.allow_nvram_loss && Rng.int rng 3 = 0 in
      if lose then begin
        emit (Op Flush);
        emit (Fault Lose_nvram)
      end;
      for _ = 1 to Rng.int rng 4 do
        write_somewhere ()
      done;
      match Rng.int rng 4 with
      | 0 ->
        (* mid-maintenance crash: armed just before a GC or checkpoint *)
        emit (Timed { delay_us = 200.0 +. Rng.float rng 3000.0; fault = Crash (any_mode ()) });
        emit (Op (if Rng.bool rng then Gc else Checkpoint))
      | _ -> emit (Fault (Crash (any_mode ()))))
    | n when n < 68 -> (
      (* drive pull / reinsert *)
      match !pulled with
      | d :: rest when List.length !pulled >= 2 || Rng.bool rng ->
        emit (Fault (Reinsert_drive d));
        pulled := rest
      | _ when budget_left () > 0 -> (
        match free_drive () with
        | Some d ->
          emit (Fault (Pull_drive d));
          pulled := d :: !pulled
        | None -> read_somewhere ())
      | _ -> read_somewhere ())
    | n when n < 73 && budget_left () > 0 -> (
      (* replace + rebuild recipe, optionally faulted mid-rebuild *)
      match free_drive () with
      | None -> read_somewhere ()
      | Some d ->
        emit (Fault (Replace_drive d));
        unrebuilt := d :: !unrebuilt;
        for _ = 1 to Rng.int rng 3 do
          write_somewhere ()
        done;
        (match Rng.int rng 4 with
        | 0 when budget_left () > 0 -> (
          (* a second drive drops out in the middle of the rebuild *)
          match free_drive () with
          | Some d2 ->
            emit (Timed { delay_us = 500.0 +. Rng.float rng 5000.0; fault = Pull_drive d2 });
            pulled := d2 :: !pulled
          | None -> ())
        | 1 ->
          (* controller dies mid-rebuild; the runner finishes the rebuild
             after failover before anything is audited *)
          emit (Timed { delay_us = 500.0 +. Rng.float rng 5000.0; fault = Crash (any_mode ()) })
        | _ -> ());
        emit (Op (Rebuild d));
        unrebuilt := List.filter (( <> ) d) !unrebuilt)
    | n when n < 79 && budget_left () > 0 ->
      (* latent corruption, read back degraded, then scrubbed away *)
      let count = min (1 + Rng.int rng 2) (budget_left ()) in
      for _ = 1 to count do
        emit
          (Fault
             (Corrupt_page
                {
                  drive = Rng.int rng cfg.drives;
                  au_rank = Rng.int rng 64;
                  page_rank = Rng.int rng 64;
                }));
        incr corrupts
      done;
      for _ = 1 to 2 do
        read_somewhere ()
      done;
      emit (Op Scrub);
      corrupts := 0
    | n when n < 85 ->
      (* namespace churn *)
      if views () < cfg.max_views then begin
        match Rng.int rng 4 with
        | 0 -> new_volume ()
        | 1 ->
          let volume, blocks = pick !volumes in
          let snap = Printf.sprintf "s%d" !snap_ctr in
          incr snap_ctr;
          snaps := (snap, !blocks) :: !snaps;
          emit (Op (Snapshot { volume; snap }))
        | 2 when !snaps <> [] ->
          let snapshot, blocks = pick !snaps in
          let volume = Printf.sprintf "v%d" !vol_ctr in
          incr vol_ctr;
          volumes := (volume, ref blocks) :: !volumes;
          emit (Op (Clone { snapshot; volume }))
        | _ ->
          let name, blocks = pick !volumes in
          let blocks' = !blocks + (cfg.io_blocks * (1 + Rng.int rng 4)) in
          blocks := blocks';
          emit (Op (Resize_volume { name; blocks = blocks' }))
      end
      else begin
        (* prune: delete a snapshot or a surplus volume *)
        match (!snaps, !volumes) with
        | (s, _) :: rest, _ when Rng.bool rng ->
          snaps := rest;
          emit (Op (Delete_snapshot s))
        | _, (v, _) :: rest when List.length !volumes > 1 ->
          volumes := rest;
          emit (Op (Delete_volume v))
        | _ -> read_somewhere ()
      end
    | n when n < 91 -> emit (Op Gc)
    | n when n < 95 -> emit (Op Checkpoint)
    | n when n < 98 -> emit (Op Flush)
    | _ -> emit (Op Scrub)
  done;
  (* close out: reinsert surviving pulls so the final audit runs at full
     redundancy headroom (the runner independently finishes rebuilds) *)
  List.iter (fun d -> emit (Fault (Reinsert_drive d))) !pulled;
  { seed; events = List.rev !rev_events }

(* Scenario runner: executes a fault plan against a real array while the
   reference model shadows it, audits the durability contract, and on
   failure shrinks the event trace to a minimal reproduction.

   Everything is deterministic per plan: payloads derive from the plan
   seed, faults resolve from execution state, and the runner adds no
   randomness of its own — so re-running a (possibly shrunk) event list
   reproduces the failure bit-for-bit. *)

module Clock = Purity_sim.Clock
module Fa = Purity_core.Flash_array
module State = Purity_core.State
module Recovery = Purity_core.Recovery
module Shelf = Purity_ssd.Shelf
module Drive = Purity_ssd.Drive
module Nvram = Purity_ssd.Nvram

exception Violation of string

(* The laptop-scale geometry the crash tests have always used: 7 drives,
   3+2 Reed-Solomon, small AUs so GC and rebuild have real work. *)
let default_config =
  {
    Fa.default_config with
    Fa.drives = 7;
    k = 3;
    m = 2;
    write_unit = 8 * 1024;
    drive_config =
      {
        Drive.default_config with
        Drive.au_size = 4096 + (8 * 8192);
        num_aus = 512;
        dies = 4;
      };
    memtable_flush = 1_000_000;
  }

type ctx = {
  clock : Clock.t;
  arr : Fa.t;
  model : Model.t;
  cfg : Fa.config;
  mutable step : int;
  mutable pulled : int list;
  mutable unrebuilt : int list;  (* replaced, rebuild not yet completed *)
  mutable corrupt_units : int;
  mutable pending_crash_mode : Plan.mode option;
  mutable reads_issued : int;
  mutable losses : int;
}

let await ctx f =
  let r = ref None in
  f (fun x -> r := Some x);
  Clock.run ctx.clock;
  !r

(* Live fault budget: the same ceiling the generator respects, re-checked
   at execution time because shrinking can remove the event that would
   have cleared a unit. A fault that would exceed the array's erasure
   tolerance is skipped — the scenario must stay one the contract covers. *)
let units ctx =
  List.length ctx.pulled + List.length ctx.unrebuilt + ctx.corrupt_units

let residual_corrupt_units ctx =
  let n = ref 0 in
  for d = 0 to ctx.cfg.Fa.drives - 1 do
    if Drive.injected_corrupt_pages (Shelf.drive (Fa.shelf ctx.arr) d) > 0 then incr n
  done;
  !n

let apply_fault ctx (fault : Plan.fault) =
  match fault with
  | Plan.Lose_nvram ->
    Nvram.lose (Shelf.nvram (Fa.shelf ctx.arr));
    Model.nvram_lost ctx.model;
    ctx.losses <- ctx.losses + 1
  | Plan.Crash mode ->
    if Fa.is_online ctx.arr then begin
      ctx.pending_crash_mode <- Some mode;
      Fa.crash ctx.arr
    end
  | Plan.Pull_drive d ->
    if (not (List.mem d ctx.pulled))
       && (not (List.mem d ctx.unrebuilt))
       && units ctx < ctx.cfg.Fa.m
    then begin
      Fa.pull_drive ctx.arr d;
      ctx.pulled <- d :: ctx.pulled
    end
  | Plan.Reinsert_drive d ->
    if List.mem d ctx.pulled then begin
      Fa.reinsert_drive ctx.arr d;
      ctx.pulled <- List.filter (( <> ) d) ctx.pulled
    end
  | Plan.Replace_drive d ->
    let freed = if List.mem d ctx.pulled then 1 else 0 in
    if (not (List.mem d ctx.unrebuilt)) && units ctx - freed < ctx.cfg.Fa.m
    then begin
      Fa.replace_drive ctx.arr d;
      ctx.pulled <- List.filter (( <> ) d) ctx.pulled;
      ctx.unrebuilt <- d :: ctx.unrebuilt
    end
  | Plan.Corrupt_page { drive; au_rank; page_rank } ->
    if (not (List.mem drive ctx.pulled))
       && (not (List.mem drive ctx.unrebuilt))
       && units ctx < ctx.cfg.Fa.m
    then begin
      let dr = Shelf.drive (Fa.shelf ctx.arr) drive in
      let dcfg = ctx.cfg.Fa.drive_config in
      let filled = ref [] in
      for au = dcfg.Drive.num_aus - 1 downto 0 do
        if Drive.au_fill dr ~au > 0 then filled := au :: !filled
      done;
      match !filled with
      | [] -> ()
      | aus ->
        let au = List.nth aus (au_rank mod List.length aus) in
        let pages = max 1 (Drive.au_fill dr ~au / dcfg.Drive.page_size) in
        Drive.inject_page_corruption dr ~au ~page:(page_rank mod pages);
        ctx.corrupt_units <- ctx.corrupt_units + 1
    end

let handle_offline ctx =
  Model.crashed ctx.model;
  let mode =
    match ctx.pending_crash_mode with
    | Some Plan.Full -> Recovery.Full_scan
    | _ -> Recovery.Frontier_scan
  in
  ctx.pending_crash_mode <- None;
  match await ctx (fun k -> Fa.failover ~mode ctx.arr k) with
  | None -> raise (Violation "failover never completed")
  | Some (_ : Recovery.report) -> (
    match Model.reconcile ctx.model (Fa.list_volumes ctx.arr) with
    | Ok () -> ()
    | Error msg -> raise (Violation msg))

(* A timed fault can re-crash the array as soon as failover finishes; the
   loop is bounded because every armed fault fires at most once. *)
let settle ctx =
  let guard = ref 10 in
  while not (Fa.is_online ctx.arr) do
    decr guard;
    if !guard < 0 then raise (Violation "array never settles after crashes");
    handle_offline ctx
  done

let pp_listing ppf l =
  Format.fprintf ppf "[%s]"
    (String.concat "; "
       (List.map
          (fun (n, k, b) ->
            Printf.sprintf "%s:%s:%d" n (match k with `Volume -> "vol" | `Snapshot -> "snap") b)
          l))

let vol_err_name = function
  | `Exists -> "Exists"
  | `No_such_volume -> "No_such_volume"
  | `Busy -> "Busy"
  | `Is_snapshot -> "Is_snapshot"
  | `Is_volume -> "Is_volume"
  | `Shrink -> "Shrink"

(* Namespace calls are synchronous; run one and hold the array to the
   outcome the model predicts. *)
let ns_op ~what ~expect_ok actual ~on_ok =
  match (actual, expect_ok) with
  | Ok (), true -> on_ok ()
  | Error _, false -> ()
  | Ok (), false -> raise (Violation (what ^ ": succeeded but the model forbids it"))
  | Error e, true ->
    raise (Violation (Printf.sprintf "%s: unexpected %s" what (vol_err_name e)))

let do_read ctx ~view ~block ~nblocks =
  ctx.reads_issued <- ctx.reads_issued + 1;
  let m = ctx.model in
  let expect =
    match Model.blocks m view with
    | None -> `No_such
    | Some b when block + nblocks > b -> `Out_of_range
    | Some _ -> `Data
  in
  match await ctx (Fa.read ctx.arr ~volume:view ~block ~nblocks) with
  | None -> ()  (* interrupted by a crash; nothing was promised *)
  | Some (Ok data) -> (
    if expect <> `Data then
      raise
        (Violation
           (Printf.sprintf "read %s[%d..%d] succeeded but the model forbids it" view block
              (block + nblocks - 1)));
    match Model.check_read m ~view ~block ~nblocks data with
    | Ok () -> ()
    | Error msg -> raise (Violation msg))
  | Some (Error `No_such_volume) ->
    if expect <> `No_such then raise (Violation ("spurious No_such_volume reading " ^ view))
  | Some (Error `Out_of_range) ->
    if expect <> `Out_of_range then raise (Violation ("spurious Out_of_range reading " ^ view))
  | Some (Error `Offline) -> ()  (* crash landed mid-read *)
  | Some (Error `Fenced) ->
    (* single-array plans never fence: only the ActiveCluster layer does *)
    raise (Violation ("spurious Fenced reading " ^ view))
  | Some (Error `Media_failure) ->
    raise
      (Violation
         (Printf.sprintf "read %s[%d..%d]: Media_failure inside the fault budget" view block
            (block + nblocks - 1)))

let exec_op ctx (op : Plan.op) =
  let m = ctx.model in
  match op with
  | Plan.Create_volume { name; blocks } ->
    ns_op ~what:("create " ^ name)
      ~expect_ok:(not (Model.exists m name))
      (Fa.create_volume ctx.arr name ~blocks)
      ~on_ok:(fun () -> Model.create_volume m name ~blocks)
  | Plan.Delete_volume name ->
    ns_op ~what:("delete " ^ name)
      ~expect_ok:(Model.kind m name = Some `Volume)
      (Fa.delete_volume ctx.arr name)
      ~on_ok:(fun () -> Model.delete m name)
  | Plan.Resize_volume { name; blocks } ->
    let expect_ok =
      match Model.blocks m name with
      | Some b when Model.kind m name = Some `Volume -> blocks >= b
      | _ -> false
    in
    ns_op ~what:("resize " ^ name) ~expect_ok
      (Fa.resize_volume ctx.arr name ~blocks)
      ~on_ok:(fun () -> Model.resize_volume m name ~blocks)
  | Plan.Snapshot { volume; snap } ->
    ns_op
      ~what:(Printf.sprintf "snapshot %s of %s" snap volume)
      ~expect_ok:(Model.kind m volume = Some `Volume && not (Model.exists m snap))
      (Fa.snapshot ctx.arr ~volume ~snap)
      ~on_ok:(fun () -> Model.snapshot m ~volume ~snap)
  | Plan.Clone { snapshot; volume } ->
    ns_op
      ~what:(Printf.sprintf "clone %s from %s" volume snapshot)
      ~expect_ok:(Model.kind m snapshot = Some `Snapshot && not (Model.exists m volume))
      (Fa.clone ctx.arr ~snapshot ~volume)
      ~on_ok:(fun () -> Model.clone m ~snapshot ~volume)
  | Plan.Delete_snapshot name ->
    ns_op ~what:("delete snapshot " ^ name)
      ~expect_ok:(Model.kind m name = Some `Snapshot)
      (Fa.delete_snapshot ctx.arr name)
      ~on_ok:(fun () -> Model.delete m name)
  | Plan.Write { view; block; nblocks; wid } -> (
    let expect =
      match Model.kind m view with
      | None -> `No_such
      | Some `Snapshot -> `Read_only
      | Some `Volume ->
        if block + nblocks > Option.get (Model.blocks m view) then `Out_of_range else `Ok
    in
    let data = Model.payload m ~wid ~nblocks in
    match await ctx (Fa.write ctx.arr ~volume:view ~block data) with
    | None ->
      (* controller died mid-write: not acked, outcome ambiguous *)
      if expect = `Ok then Model.write m ~view ~block ~wid ~nblocks ~acked:false
    | Some (Ok ()) ->
      if expect <> `Ok then
        raise (Violation (Printf.sprintf "write#%d to %s succeeded but the model forbids it" wid view));
      Model.write m ~view ~block ~wid ~nblocks ~acked:true
    | Some (Error `Backpressure) -> ()  (* not acked, no state change promised *)
    | Some (Error `Offline) ->
      if expect = `Ok then Model.write m ~view ~block ~wid ~nblocks ~acked:false
    | Some (Error `No_space) ->
      (* allocation failed partway: blocks may be torn between old and new *)
      if expect = `Ok then Model.write m ~view ~block ~wid ~nblocks ~acked:false
    | Some (Error `No_such_volume) ->
      if expect <> `No_such then raise (Violation ("spurious No_such_volume writing " ^ view))
    | Some (Error `Read_only) ->
      if expect <> `Read_only then raise (Violation ("spurious Read_only writing " ^ view))
    | Some (Error `Out_of_range) ->
      if expect <> `Out_of_range then raise (Violation ("spurious Out_of_range writing " ^ view))
    | Some (Error `Unaligned) -> raise (Violation "spurious Unaligned write")
    | Some (Error `Fenced) -> raise (Violation ("spurious Fenced writing " ^ view)))
  | Plan.Read { view; block; nblocks } -> do_read ctx ~view ~block ~nblocks
  | Plan.Flush -> (
    match await ctx (fun k -> Fa.flush ctx.arr (fun () -> k ())) with
    | Some () when Fa.is_online ctx.arr -> Model.stabilized ctx.model
    | _ -> ())
  | Plan.Checkpoint -> (
    match await ctx (fun k -> Fa.checkpoint ctx.arr k) with
    | Some _ when Fa.is_online ctx.arr -> Model.stabilized ctx.model
    | _ -> ())
  | Plan.Gc -> ignore (await ctx (fun k -> Fa.gc ~min_dead_ratio:0.2 ~max_victims:8 ctx.arr k))
  | Plan.Scrub -> (
    match await ctx (fun k -> Fa.scrub ctx.arr k) with
    | Some _ when Fa.is_online ctx.arr ->
      (* scrub relocated what it found; re-derive the live corruption
         budget from the marks actually left on the drives *)
      ctx.corrupt_units <- residual_corrupt_units ctx
    | _ -> ())
  | Plan.Rebuild d -> (
    match await ctx (fun k -> Fa.rebuild_drive ctx.arr d k) with
    | Some (_ : int) when Fa.is_online ctx.arr ->
      ctx.unrebuilt <- List.filter (( <> ) d) ctx.unrebuilt
    | _ -> () (* interrupted: still missing shards; finalize retries *))

let exec_event ctx (ev : Plan.event) =
  (match ev with
  | Plan.Op op -> exec_op ctx op
  | Plan.Fault f -> apply_fault ctx f
  | Plan.Timed { delay_us; fault } ->
    Clock.schedule ctx.clock ~delay:delay_us (fun () -> apply_fault ctx fault));
  if not (Fa.is_online ctx.arr) then settle ctx

(* ---------- audits ---------- *)

let audit_namespace ctx =
  let arr_l = Fa.list_volumes ctx.arr in
  let mod_l = Model.listing ctx.model in
  if arr_l <> mod_l then
    raise
      (Violation
         (Format.asprintf "namespace drift: array %a, model %a" pp_listing arr_l pp_listing
            mod_l))

let audit_data ctx =
  let chunk = 16 in
  List.iter
    (fun (name, _, blocks) ->
      let block = ref 0 in
      while !block < blocks do
        let nblocks = min chunk (blocks - !block) in
        do_read ctx ~view:name ~block:!block ~nblocks;
        block := !block + nblocks
      done)
    (Model.listing ctx.model)

(* The mapping cache and batched range resolution are pure performance
   artifacts: for every block of every view they must agree exactly with
   a from-scratch chain walk, no matter what faults (crashes, GC,
   elides, medium retirement) the scenario threw at the cache's
   invalidation hooks. *)
let audit_mapping_cache ctx =
  let st = Fa.state ctx.arr in
  State.Stbl.iter
    (fun name (v : State.volume) ->
      let medium = v.State.medium and blocks = v.State.blocks in
      if blocks > 0 then begin
        let refs = State.resolve_range st ~medium ~block:0 ~nblocks:blocks in
        for b = 0 to blocks - 1 do
          let cached = State.resolve_block st ~medium ~block:b in
          let uncached = State.resolve_block_uncached st ~medium ~block:b in
          if cached <> uncached then
            raise
              (Violation
                 (Printf.sprintf
                    "mapping-cache drift: %s block %d cached and uncached resolution disagree"
                    name b));
          if refs.(b) <> uncached then
            raise
              (Violation
                 (Printf.sprintf
                    "batched-resolution drift: %s block %d resolve_range disagrees with \
                     per-block resolution"
                    name b))
        done
      end)
    st.State.volumes

let audit_counters ctx =
  let s = Fa.stats ctx.arr in
  let shelf_losses = Nvram.losses (Shelf.nvram (Fa.shelf ctx.arr)) in
  if shelf_losses <> ctx.losses then
    raise
      (Violation
         (Printf.sprintf "NVRAM loss counter %d, runner injected %d" shelf_losses ctx.losses));
  if s.Fa.app_reads <> ctx.reads_issued then
    raise
      (Violation
         (Printf.sprintf "stats.app_reads = %d but %d reads were issued" s.Fa.app_reads
            ctx.reads_issued));
  if s.Fa.app_writes <> Model.acked_writes ctx.model then
    raise
      (Violation
         (Printf.sprintf
            "stats.app_writes = %d but %d writes were acked since the last failover"
            s.Fa.app_writes
            (Model.acked_writes ctx.model)));
  if s.Fa.availability < 0.0 || s.Fa.availability > 1.0 then
    raise (Violation (Printf.sprintf "availability %f out of range" s.Fa.availability));
  if s.Fa.physical_bytes_used > s.Fa.physical_capacity then
    raise (Violation "physical_bytes_used exceeds capacity")

let finalize ctx =
  Clock.run ctx.clock;
  settle ctx;
  (* finish interrupted rebuilds so the audit runs at full redundancy *)
  let guard = ref 10 in
  while ctx.unrebuilt <> [] do
    decr guard;
    if !guard < 0 then raise (Violation "rebuild never completes");
    let d = List.hd ctx.unrebuilt in
    (match await ctx (fun k -> Fa.rebuild_drive ctx.arr d k) with
    | Some (_ : int) when Fa.is_online ctx.arr ->
      ctx.unrebuilt <- List.filter (( <> ) d) ctx.unrebuilt
    | _ -> ());
    settle ctx
  done;
  audit_namespace ctx;
  audit_data ctx;
  audit_mapping_cache ctx;
  (* and once more through a clean failover: recovery must reproduce the
     same state from the shelf alone *)
  Fa.crash ctx.arr;
  settle ctx;
  audit_namespace ctx;
  audit_data ctx;
  audit_mapping_cache ctx;
  audit_counters ctx

(* ---------- plan execution ---------- *)

let run_plan ?(config = default_config) (plan : Plan.t) =
  let model_seed = plan.Plan.seed in
  let clock = Clock.create () in
  let arr = Fa.create ~config ~clock () in
  let ctx =
    {
      clock;
      arr;
      model = Model.create ~seed:model_seed ~block_size:Fa.block_size ();
      cfg = config;
      step = 0;
      pulled = [];
      unrebuilt = [];
      corrupt_units = 0;
      pending_crash_mode = None;
      reads_issued = 0;
      losses = 0;
    }
  in
  try
    List.iteri
      (fun i ev ->
        ctx.step <- i;
        exec_event ctx ev)
      plan.Plan.events;
    ctx.step <- List.length plan.Plan.events;
    finalize ctx;
    Ok ()
  with
  | Violation msg -> Error (ctx.step, msg)
  | exn -> Error (ctx.step, "exception: " ^ Printexc.to_string exn)

(* ---------- shrinking ---------- *)

let remove_slice l i n = List.filteri (fun j _ -> j < i || j >= i + n) l

(* Greedy delta-debugging: try dropping ever-smaller slices, keeping any
   removal after which the scenario still fails. [fails] must be a pure
   function of the event list — which it is, because events are
   self-contained (payload ids, ranks) rather than positions in a shared
   random stream. *)
let shrink ?(budget = 250) ~fails events failure =
  let evs = ref events and last = ref failure and left = ref budget in
  let changed = ref true in
  while !changed && !left > 0 do
    changed := false;
    let size = ref (max 1 (List.length !evs / 2)) in
    while !size >= 1 && !left > 0 do
      let i = ref 0 in
      while !i + !size <= List.length !evs && !left > 0 do
        decr left;
        let cand = remove_slice !evs !i !size in
        match fails cand with
        | Some failure ->
          evs := cand;
          last := failure;
          changed := true
        | None -> i := !i + !size
      done;
      size := !size / 2
    done
  done;
  (!evs, !last)

(* ---------- reports ---------- *)

type report = {
  seed : int64;
  step : int;  (** event index the (shrunk) run failed at *)
  violation : string;
  trace : Plan.event list;  (** shrunk reproduction *)
  original_events : int;
}

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>durability violation at seed %Ld (step %d):@,  %s@,%a@,reproduce with: Runner.run_plan { seed = %LdL; events }  (or re-run this seed)@]"
    r.seed r.step r.violation Plan.pp
    { Plan.seed = r.seed; events = r.trace }
    r.seed

let report_to_string r = Format.asprintf "%a" pp_report r

let check_seed ?(gen = Plan.default_gen) ?(config = default_config) ?(shrink_budget = 250)
    seed =
  let plan = Plan.generate ~cfg:gen seed in
  match run_plan ~config plan with
  | Ok () -> Ok ()
  | Error failure ->
    let fails evs =
      match run_plan ~config { plan with Plan.events = evs } with
      | Ok () -> None
      | Error f -> Some f
    in
    let trace, (step, violation) = shrink ~budget:shrink_budget ~fails plan.Plan.events failure in
    Error { seed; step; violation; trace; original_events = List.length plan.Plan.events }

(* Run seeds [base, base+count); return the first failure, shrunk. *)
let sweep ?gen ?config ?shrink_budget ~base ~count () =
  let rec go i =
    if i >= count then None
    else
      let seed = Int64.add base (Int64.of_int i) in
      match check_seed ?gen ?config ?shrink_budget seed with
      | Ok () -> go (i + 1)
      | Error report -> Some report
  in
  go 0

(* Scenario runner for the ActiveCluster torture suite.

   Executes an {!Ac_plan} against a real stretched pod — two full
   simulated arrays, the lossy interconnect, the mediator — while
   {!Ac_model} shadows every write's outcome. On a violation the trace
   is shrunk with the same greedy delta-debugging as the single-array
   runner.

   Determinism is itself an audited property: [check_seed] executes each
   passing plan twice and compares execution digests (a fold over final
   content, counters and the simulated clock), so a nondeterministic
   replay fails the sweep even when no byte is wrong. That is what makes
   "reproduce with this seed" a real promise for distributed scenarios.

   The final audit heals every fault, drives a failback, then reads
   every block of every stretched volume from BOTH arrays directly
   (below the front door). The model requires the two arrays to agree
   block-for-block — first observation pins the value, the second array
   must match — which is the divergence check; and an acked write is its
   cell's only candidate, which is the lost-ack check. *)

module Clock = Purity_sim.Clock
module Fa = Purity_core.Flash_array
module Ac = Purity_activecluster.Activecluster
module Link = Purity_activecluster.Link
module Mediator = Purity_activecluster.Mediator
module Acm = Ac_model

exception Violation = Runner.Violation

type ctx = {
  clock : Clock.t;
  ac : Ac.t;
  model : Acm.t;
  mutable step : int;
  mutable crashed : Ac.side list;
  mutable digest : int;
}

let mix ctx v = ctx.digest <- (ctx.digest * 31) + (Hashtbl.hash v land 0xFFFFFF)

let await ctx f =
  let r = ref None in
  f (fun x -> r := Some x);
  Clock.run ctx.clock;
  !r

(* No outstanding fault and the pod in sync: I/O has no excuse to fail. *)
let healthy ctx =
  Ac.status ctx.ac = Ac.Sync
  && ctx.crashed = []
  && Link.up (Ac.link ctx.ac)
  && Mediator.reachable (Ac.mediator ctx.ac)

let in_sync ctx = Ac.status ctx.ac = Ac.Sync

let apply_fault ctx (fault : Ac_plan.fault) =
  match fault with
  | Ac_plan.Cut_link -> Ac.cut_link ctx.ac
  | Ac_plan.Heal_link -> Ac.heal_link ctx.ac
  | Ac_plan.Lose_mediator -> Ac.lose_mediator ctx.ac
  | Ac_plan.Restore_mediator -> Ac.restore_mediator ctx.ac
  | Ac_plan.Crash s ->
    Ac.crash_side ctx.ac s;
    if not (List.mem s ctx.crashed) then ctx.crashed <- s :: ctx.crashed
  | Ac_plan.Crash_both ->
    Ac.crash_side ctx.ac A;
    Ac.crash_side ctx.ac B;
    ctx.crashed <- [ A; B ]

let exec_op ctx (op : Ac_plan.op) =
  match op with
  | Ac_plan.Write { side; view; block; nblocks; wid } -> (
    let data = Acm.payload ctx.model ~wid ~nblocks in
    match await ctx (fun k -> Ac.write ctx.ac ~prefer:side ~volume:view ~block data k) with
    | None ->
      (* never completed (e.g. the origin died under it): not acked *)
      Acm.write_result ctx.model ~view ~block ~nblocks ~wid ~acked:false ~in_sync:false
    | Some (Ok ()) ->
      Acm.write_result ctx.model ~view ~block ~nblocks ~wid ~acked:true
        ~in_sync:(in_sync ctx)
    | Some (Error `Unavailable) when healthy ctx ->
      raise (Violation (Printf.sprintf "write#%d Unavailable on a healthy pod" wid))
    | Some (Error (`No_such_volume | `Out_of_range | `Unaligned)) ->
      raise (Violation (Printf.sprintf "write#%d rejected as malformed" wid))
    | Some (Error (`Unavailable | `No_space | `Backpressure)) ->
      (* not acked; the blocks may be torn on either side *)
      Acm.write_result ctx.model ~view ~block ~nblocks ~wid ~acked:false ~in_sync:false)
  | Ac_plan.Write_racing { view; block; nblocks; wid_a; wid_b } ->
    (* both writes enter before the clock runs: their mirrors genuinely
       cross on the link *)
    let da = Acm.payload ctx.model ~wid:wid_a ~nblocks in
    let db = Acm.payload ctx.model ~wid:wid_b ~nblocks in
    let ra = ref None and rb = ref None in
    Ac.write ctx.ac ~prefer:A ~volume:view ~block da (fun r -> ra := Some r);
    Ac.write ctx.ac ~prefer:B ~volume:view ~block db (fun r -> rb := Some r);
    Clock.run ctx.clock;
    let acked r = match !r with Some (Ok ()) -> true | _ -> false in
    Acm.write_racing_result ctx.model ~view ~block ~nblocks ~wid_a ~wid_b
      ~acked_a:(acked ra) ~acked_b:(acked rb) ~in_sync:(in_sync ctx)
  | Ac_plan.Read { side; view; block; nblocks } -> (
    match await ctx (fun k -> Ac.read ctx.ac ~prefer:side ~volume:view ~block ~nblocks k) with
    | None -> ()
    | Some (Ok (data, served)) -> (
      match Acm.check_read ctx.model ~side:served ~view ~block ~nblocks data with
      | Ok () -> ()
      | Error msg -> raise (Violation msg))
    | Some (Error `Unavailable) ->
      if healthy ctx then raise (Violation "read Unavailable on a healthy pod")
    | Some (Error _) ->
      raise (Violation (Printf.sprintf "spurious error reading %s[%d]" view block)))
  | Ac_plan.Settle -> (
    match await ctx (fun k -> Ac.settle ctx.ac k) with
    | Some (Ac.Sync, Some s) -> Acm.settled ctx.model ~survivor:s
    | Some (_, _) | None -> ())
  | Ac_plan.Recover s -> (
    match await ctx (fun k -> Ac.recover_side ctx.ac s k) with
    | Some () -> ctx.crashed <- List.filter (( <> ) s) ctx.crashed
    | None -> raise (Violation ("recovery of array " ^ Ac.side_name s ^ " never completed")))

let exec_event ctx (ev : Ac_plan.event) =
  match ev with
  | Ac_plan.Op op -> exec_op ctx op
  | Ac_plan.Fault f -> apply_fault ctx f
  | Ac_plan.Timed { delay_us; fault } ->
    Clock.schedule ctx.clock ~delay:delay_us (fun () -> apply_fault ctx fault)

(* ---------- final audit ---------- *)

(* Read a whole volume from one array, below the pod's front door, and
   hold it to the model. After a successful failback every cell is
   converged, so A's observation pins the value B must reproduce. *)
let audit_array ctx side name blocks =
  let arr = Ac.array ctx.ac side in
  let chunk = 16 in
  let block = ref 0 in
  while !block < blocks do
    let nblocks = min chunk (blocks - !block) in
    (match await ctx (fun k -> Fa.read arr ~volume:name ~block:!block ~nblocks k) with
    | Some (Ok data) -> (
      mix ctx data;
      match Acm.check_read ctx.model ~side ~view:name ~block:!block ~nblocks data with
      | Ok () -> ()
      | Error msg -> raise (Violation msg))
    | Some (Error _) | None ->
      raise
        (Violation
           (Printf.sprintf "final audit: array %s failed reading %s[%d]" (Ac.side_name side)
              name !block)));
    block := !block + nblocks
  done

let finalize ctx (plan : Ac_plan.t) =
  Clock.run ctx.clock;
  (* heal the world, then fail back *)
  Ac.heal_link ctx.ac;
  Ac.restore_mediator ctx.ac;
  List.iter
    (fun s -> ignore (await ctx (fun k -> Ac.recover_side ctx.ac s k)))
    [ Ac.A; Ac.B ];
  ctx.crashed <- [];
  let rec drive attempts =
    match await ctx (fun k -> Ac.settle ctx.ac k) with
    | Some (Ac.Sync, sv) -> (
      match sv with Some s -> Acm.settled ctx.model ~survivor:s | None -> ())
    | (Some _ | None) when attempts > 0 -> drive (attempts - 1)
    | Some (st, _) ->
      raise
        (Violation
           ("pod failed to return to sync after all faults healed: " ^ Ac.status_name st))
    | None -> raise (Violation "settle never completed")
  in
  drive 2;
  (* safety of the mediation history itself *)
  (match Mediator.audit (Ac.mediator ctx.ac) with
  | Ok () -> ()
  | Error msg -> raise (Violation msg));
  if Fa.is_fenced (Ac.array ctx.ac A) || Fa.is_fenced (Ac.array ctx.ac B) then
    raise (Violation "an array is still fenced after failback");
  (* divergence / lost-ack audit: every block, both arrays *)
  List.iter
    (fun (name, blocks) ->
      audit_array ctx A name blocks;
      audit_array ctx B name blocks)
    plan.Ac_plan.vols;
  (* fold the pod's externally visible end state into the replay digest *)
  let c = Ac.counters ctx.ac in
  mix ctx
    ( c.Ac.mirror_writes, c.Ac.mirror_acked, c.Ac.mirror_timeouts,
      c.Ac.mediation_requests, c.Ac.mediation_grants, c.Ac.mediation_denials,
      c.Ac.solo_writes, c.Ac.resync_blocks );
  let ls = Link.stats (Ac.link ctx.ac) in
  mix ctx (ls.Link.sent, ls.Link.delivered, ls.Link.dropped_loss, ls.Link.dropped_cut);
  mix ctx (List.length (Mediator.events (Ac.mediator ctx.ac)));
  mix ctx (int_of_float (Clock.now ctx.clock))

(* ---------- plan execution ---------- *)

let run_plan ?(config = Runner.default_config) (plan : Ac_plan.t) =
  let clock = Clock.create () in
  let a = Fa.create ~config ~clock () in
  let b = Fa.create ~config ~clock () in
  let ac = Ac.create ~a ~b ~pod:"pod0" () in
  let model = Acm.create ~seed:plan.Ac_plan.seed ~block_size:Fa.block_size () in
  let ctx = { clock; ac; model; step = 0; crashed = []; digest = 0 } in
  try
    List.iter
      (fun (name, blocks) ->
        match Ac.create_stretched ac name ~blocks with
        | Ok () -> Acm.create_volume model name ~blocks
        | Error _ -> raise (Violation ("failed to create stretched volume " ^ name)))
      plan.Ac_plan.vols;
    List.iteri
      (fun i ev ->
        ctx.step <- i;
        exec_event ctx ev)
      plan.Ac_plan.events;
    ctx.step <- List.length plan.Ac_plan.events;
    finalize ctx plan;
    Ok ctx.digest
  with
  | Violation msg -> Error (ctx.step, msg)
  | exn -> Error (ctx.step, "exception: " ^ Printexc.to_string exn)

(* ---------- reports ---------- *)

type report = {
  seed : int64;
  step : int;  (** event index the (shrunk) run failed at *)
  violation : string;
  vols : (string * int) list;
  trace : Ac_plan.event list;  (** shrunk reproduction *)
  original_events : int;
}

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>activecluster violation at seed %Ld (step %d):@,  %s@,%a@,reproduce with: Ac_runner.run_plan { seed = %LdL; vols; events }  (or re-run this seed)@]"
    r.seed r.step r.violation Ac_plan.pp
    { Ac_plan.seed = r.seed; vols = r.vols; events = r.trace }
    r.seed

let report_to_string r = Format.asprintf "%a" pp_report r

let check_seed ?(gen = Ac_plan.default_gen) ?(config = Runner.default_config)
    ?(shrink_budget = 200) seed =
  let plan = Ac_plan.generate ~cfg:gen seed in
  let shrunk failure =
    let fails evs =
      match run_plan ~config { plan with Ac_plan.events = evs } with
      | Ok _ -> None
      | Error f -> Some f
    in
    let trace, (step, violation) =
      Runner.shrink ~budget:shrink_budget ~fails plan.Ac_plan.events failure
    in
    {
      seed;
      step;
      violation;
      vols = plan.Ac_plan.vols;
      trace;
      original_events = List.length plan.Ac_plan.events;
    }
  in
  match run_plan ~config plan with
  | Error failure -> Error (shrunk failure)
  | Ok d1 -> (
    (* replay determinism is part of the contract: same plan, same world *)
    match run_plan ~config plan with
    | Ok d2 when d2 = d1 -> Ok ()
    | Ok _ ->
      Error
        {
          seed;
          step = List.length plan.Ac_plan.events;
          violation = "nondeterministic replay: execution digests differ";
          vols = plan.Ac_plan.vols;
          trace = plan.Ac_plan.events;
          original_events = List.length plan.Ac_plan.events;
        }
    | Error failure -> Error (shrunk failure))

(* Run seeds [base, base+count); return the first failure, shrunk. *)
let sweep ?gen ?config ?shrink_budget ~base ~count () =
  let rec go i =
    if i >= count then None
    else
      let seed = Int64.add base (Int64.of_int i) in
      match check_seed ?gen ?config ?shrink_budget seed with
      | Ok () -> go (i + 1)
      | Error report -> Some report
  in
  go 0

(** Metrics registry: the array's single namespace of counters, gauges and
    latency histograms.

    The paper's evaluation is built on fleet telemetry phoned home from
    deployed arrays (§1, §5); this registry is the reproduction's
    equivalent of the per-array metric table those logs sample. Every
    subsystem registers its counters under a hierarchical slash-separated
    key ([write_path/nvram_commit_us], [ssd/drive3/program_stalls], ...)
    and records through the handle it got back — an [Atomic.t] cell, so
    hot-path recording is one uncontended atomic store and pool worker
    domains can record without racing the main domain (registration and
    snapshots remain main-domain-only: the key table is not synchronised).

    Three metric families are recorded directly:
    - {e counters}: monotone ints ([incr]/[add]);
    - {e gauges}: level-valued floats ([set]);
    - {e histograms}: {!Purity_util.Histogram} latency distributions.

    Two more are {e derived}: registered as closures and sampled only at
    {!snapshot} time, so pre-existing statistics structs (drive stats, IO
    scheduler stats, medium-table sizes) can join the namespace without
    rewriting their recording sites.

    Registration is idempotent per key: re-registering the same key with
    the same family returns the original handle; a family mismatch raises
    [Invalid_argument] (two subsystems fighting over one name is a bug
    worth failing loudly on). *)

type t
type counter
type gauge

val create : unit -> t

(** {1 Registration} *)

val counter : t -> string -> counter
val gauge : t -> string -> gauge

val histogram : t -> string -> Purity_util.Histogram.t
(** A registry-owned histogram; record into it directly with
    {!Purity_util.Histogram.record}. *)

val attach_histogram : t -> string -> Purity_util.Histogram.t -> unit
(** Adopt an existing histogram under a key (zero-copy: snapshots read the
    live histogram). Re-attaching the same instance is a no-op; attaching
    a different instance to an occupied key raises. *)

val derive_int : t -> string -> (unit -> int) -> unit
(** A computed counter, sampled at snapshot time. Re-registration
    replaces the closure (a failover re-derives over fresh state). *)

val derive_float : t -> string -> (unit -> float) -> unit
(** A computed gauge, sampled at snapshot time. *)

(** {1 Hot-path recording} *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int
val set : gauge -> float -> unit
val get : gauge -> float

(** {1 Introspection} *)

val mem : t -> string -> bool
val keys : t -> string list
(** All registered keys, sorted. *)

(** {1 Snapshots} *)

type hist_snapshot = {
  h_count : int;
  h_sum : float;
  h_mean : float;
  h_max : float;
  h_p50 : float;
  h_p90 : float;
  h_p99 : float;
  h_p999 : float;
  h_buckets : (float * int) list;  (** occupied (upper bound, count) *)
}

type value_snapshot = Int of int | Float of float | Hist of hist_snapshot

type snapshot = (string * value_snapshot) list
(** Key-sorted point-in-time sample. Counters and derived-int metrics
    appear as [Int], gauges and derived-float as [Float]. *)

val snapshot : t -> snapshot

val find : snapshot -> string -> value_snapshot option

val filter_prefix : snapshot -> prefix:string -> snapshot
(** Entries whose key is [prefix] or starts with [prefix ^ "/"]. *)

val diff : base:snapshot -> current:snapshot -> snapshot
(** Activity between two snapshots of the same registry: counters and
    histogram buckets subtract (percentiles are recomputed over the
    interval's samples); gauges are levels, so the current value is kept.
    Keys absent from [base] pass through unchanged. *)

val reset : t -> unit
(** Zero all counters and clear all histograms. Gauges and derived
    metrics are levels over live state and are left alone. *)

val pp_value : value_snapshot Fmt.t
val pp_snapshot : snapshot Fmt.t
(** Grouped, aligned rendering for the CLI's [stats] subcommand. *)

(** Phone-home exporter: periodic JSONL snapshots of a registry.

    The paper's headline numbers (latency percentiles, 5.4× reduction,
    99.999% availability) come from logs phoned home by deployed arrays
    and aggregated fleet-wide (§1, §5). This exporter mirrors that
    methodology in the simulator: on a clock timer it samples the metrics
    registry (and drains the span ring, if a tracer is attached) and
    emits one self-describing JSON object per line to a pluggable sink.

    Every line carries ["kind"], ["array"], ["seq"] and ["ts_us"] fields;
    metric snapshots are [kind = "phone_home"], spans [kind = "span"].
    {!row} exposes the same line format for other producers (the bench
    harness emits its result rows through it), so all JSONL artefacts in
    the repo share one schema. *)

type sink = string -> unit
(** Receives one complete JSONL line (no trailing newline). *)

type t

val create :
  ?interval_us:float ->
  ?array_id:string ->
  ?tracer:Span.tracer ->
  clock:Purity_sim.Clock.t ->
  registry:Registry.t ->
  sink:sink ->
  unit ->
  t
(** [interval_us] defaults to 1e6 (one simulated second); [array_id]
    (default ["array0"]) labels every line, standing in for the fleet's
    array serial number. *)

val sample : t -> unit
(** Emit one snapshot line now (plus one line per drained span). *)

val start : t -> unit
(** Begin periodic sampling on the clock. Each tick reschedules the next,
    so drive the clock with [run_until] (not [run], which would chase the
    timer forever) and call {!stop} when done. *)

val stop : t -> unit
val emitted : t -> int
(** Total lines emitted (snapshots + spans). *)

(** {1 Line construction} *)

val json_of_value : Registry.value_snapshot -> Json.t
val json_of_snapshot : Registry.snapshot -> Json.t
(** The ["metrics"] object: key -> number or histogram summary. *)

val row : kind:string -> ?array_id:string -> ?ts_us:float -> (string * Json.t) list -> string
(** One schema-conformant JSONL line with the given extra fields. *)

val buffer_sink : Buffer.t -> sink
(** Appends each line + ["\n"] to the buffer. *)

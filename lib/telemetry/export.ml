module Clock = Purity_sim.Clock

type sink = string -> unit

type t = {
  clock : Clock.t;
  registry : Registry.t;
  tracer : Span.tracer option;
  interval_us : float;
  array_id : string;
  sink : sink;
  mutable running : bool;
  mutable seq : int;
  mutable emitted : int;
}

let create ?(interval_us = 1e6) ?(array_id = "array0") ?tracer ~clock ~registry ~sink () =
  if interval_us <= 0.0 then invalid_arg "Export.create: interval must be positive";
  {
    clock;
    registry;
    tracer;
    interval_us;
    array_id;
    sink;
    running = false;
    seq = 0;
    emitted = 0;
  }

let json_of_value = function
  | Registry.Int n -> Json.Int n
  | Registry.Float f -> Json.Float f
  | Registry.Hist h ->
    Json.Obj
      [
        ("count", Json.Int h.Registry.h_count);
        ("sum", Json.Float h.Registry.h_sum);
        ("mean", Json.Float h.Registry.h_mean);
        ("max", Json.Float h.Registry.h_max);
        ("p50", Json.Float h.Registry.h_p50);
        ("p90", Json.Float h.Registry.h_p90);
        ("p99", Json.Float h.Registry.h_p99);
        ("p999", Json.Float h.Registry.h_p999);
        ( "buckets",
          Json.Arr
            (List.map
               (fun (bound, n) -> Json.Arr [ Json.Float bound; Json.Int n ])
               h.Registry.h_buckets) );
      ]

let json_of_snapshot snap =
  Json.Obj (List.map (fun (key, v) -> (key, json_of_value v)) snap)

let row ~kind ?(array_id = "array0") ?ts_us fields =
  Json.to_string
    (Json.Obj
       ([ ("kind", Json.Str kind); ("array", Json.Str array_id) ]
       @ (match ts_us with Some ts -> [ ("ts_us", Json.Float ts) ] | None -> [])
       @ fields))

let emit t line =
  t.emitted <- t.emitted + 1;
  t.sink line

let sample t =
  let now = Clock.now t.clock in
  t.seq <- t.seq + 1;
  let seq = t.seq in
  (* spans first: they describe activity leading up to this snapshot *)
  (match t.tracer with
  | None -> ()
  | Some tracer ->
    List.iter
      (fun span ->
        emit t
          (Json.to_string
             (Json.Obj
                [
                  ("kind", Json.Str "span");
                  ("array", Json.Str t.array_id);
                  ("seq", Json.Int seq);
                  ("ts_us", Json.Float now);
                  ("data", Span.to_json span);
                ])))
      (Span.drain tracer));
  emit t
    (Json.to_string
       (Json.Obj
          [
            ("kind", Json.Str "phone_home");
            ("array", Json.Str t.array_id);
            ("seq", Json.Int seq);
            ("ts_us", Json.Float now);
            ("metrics", json_of_snapshot (Registry.snapshot t.registry));
          ]))

let rec tick t =
  Clock.schedule t.clock ~delay:t.interval_us (fun () ->
      if t.running then begin
        sample t;
        tick t
      end)

let start t =
  if not t.running then begin
    t.running <- true;
    tick t
  end

let stop t = t.running <- false
let emitted t = t.emitted

let buffer_sink buf line =
  Buffer.add_string buf line;
  Buffer.add_char buf '\n'

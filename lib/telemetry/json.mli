(** Minimal JSON tree and serialiser.

    The phone-home exporter emits one JSON object per line (JSONL), the
    format the paper's fleet telemetry pipeline ingests. This module is
    deliberately tiny — encode only, no parser — so the telemetry layer
    stays dependency-free. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering. Non-finite floats serialise as [null]
    (JSON has no NaN/Infinity); strings are escaped per RFC 8259. *)

val pp : t Fmt.t

module Histogram = Purity_util.Histogram

(* Atomic-backed so pool worker domains can record without racing the
   main domain's reads; uncontended atomic ops are plain stores with a
   fence, so the hot path stays a couple of ns. *)
type counter = int Atomic.t
type gauge = float Atomic.t

type metric =
  | Counter of counter
  | Gauge of gauge
  | Hist of Histogram.t
  | Derived_int of (unit -> int)
  | Derived_float of (unit -> float)

type t = { metrics : (string, metric) Hashtbl.t }

let create () = { metrics = Hashtbl.create 64 }

let family = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Hist _ -> "histogram"
  | Derived_int _ -> "derived-int"
  | Derived_float _ -> "derived-float"

let clash key existing wanted =
  invalid_arg
    (Printf.sprintf "Telemetry.Registry: %S is a %s, not a %s" key (family existing) wanted)

let counter t key =
  match Hashtbl.find_opt t.metrics key with
  | Some (Counter c) -> c
  | Some m -> clash key m "counter"
  | None ->
    let c = Atomic.make 0 in
    Hashtbl.replace t.metrics key (Counter c);
    c

let gauge t key =
  match Hashtbl.find_opt t.metrics key with
  | Some (Gauge g) -> g
  | Some m -> clash key m "gauge"
  | None ->
    let g = Atomic.make 0.0 in
    Hashtbl.replace t.metrics key (Gauge g);
    g

let histogram t key =
  match Hashtbl.find_opt t.metrics key with
  | Some (Hist h) -> h
  | Some m -> clash key m "histogram"
  | None ->
    let h = Histogram.create () in
    Hashtbl.replace t.metrics key (Hist h);
    h

let attach_histogram t key h =
  match Hashtbl.find_opt t.metrics key with
  | Some (Hist h') when h' == h -> ()
  | Some m -> clash key m "histogram"
  | None -> Hashtbl.replace t.metrics key (Hist h)

let derive_int t key f =
  match Hashtbl.find_opt t.metrics key with
  | Some (Derived_int _) | None -> Hashtbl.replace t.metrics key (Derived_int f)
  | Some m -> clash key m "derived-int"

let derive_float t key f =
  match Hashtbl.find_opt t.metrics key with
  | Some (Derived_float _) | None -> Hashtbl.replace t.metrics key (Derived_float f)
  | Some m -> clash key m "derived-float"

let incr c = Atomic.incr c
let add c n = ignore (Atomic.fetch_and_add c n)
let value c = Atomic.get c
let set g v = Atomic.set g v
let get g = Atomic.get g

let mem t key = Hashtbl.mem t.metrics key

let keys t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.metrics [] |> List.sort String.compare

(* ---------- snapshots ---------- *)

type hist_snapshot = {
  h_count : int;
  h_sum : float;
  h_mean : float;
  h_max : float;
  h_p50 : float;
  h_p90 : float;
  h_p99 : float;
  h_p999 : float;
  h_buckets : (float * int) list;
}

type value_snapshot = Int of int | Float of float | Hist of hist_snapshot

type snapshot = (string * value_snapshot) list

(* Percentile over a (bound, count) bucket list — the same "smallest bound
   covering p% of samples" rule Histogram.percentile uses, so snapshot and
   diff percentiles agree with the live histogram's. *)
let bucket_percentile buckets ~total ~max_v p =
  if total = 0 then 0.0
  else begin
    let target =
      let x = int_of_float (ceil (p /. 100.0 *. float_of_int total)) in
      if x < 1 then 1 else min x total
    in
    let rec scan acc = function
      | [] -> max_v
      | (bound, n) :: rest ->
        let acc = acc + n in
        if acc >= target then Float.min bound max_v else scan acc rest
    in
    scan 0 buckets
  end

let hist_snapshot_of ~count ~sum ~max_v ~buckets =
  let pct = bucket_percentile buckets ~total:count ~max_v in
  {
    h_count = count;
    h_sum = sum;
    h_mean = (if count = 0 then 0.0 else sum /. float_of_int count);
    h_max = max_v;
    h_p50 = pct 50.0;
    h_p90 = pct 90.0;
    h_p99 = pct 99.0;
    h_p999 = pct 99.9;
    h_buckets = buckets;
  }

let snapshot_hist h =
  let count = Histogram.count h in
  hist_snapshot_of ~count
    ~sum:(Histogram.mean h *. float_of_int count)
    ~max_v:(Histogram.max_value h) ~buckets:(Histogram.to_buckets h)

let snapshot t =
  keys t
  |> List.map (fun key ->
         let v =
           match Hashtbl.find t.metrics key with
           | Counter c -> Int (Atomic.get c)
           | Gauge g -> Float (Atomic.get g)
           | Hist h -> Hist (snapshot_hist h)
           | Derived_int f -> Int (f ())
           | Derived_float f -> Float (f ())
         in
         (key, v))

let find snap key = List.assoc_opt key snap

let filter_prefix snap ~prefix =
  let slash = prefix ^ "/" in
  List.filter
    (fun (k, _) -> String.equal k prefix || String.starts_with ~prefix:slash k)
    snap

let diff_hist ~base ~current =
  let base_count bound =
    match List.assoc_opt bound base.h_buckets with Some n -> n | None -> 0
  in
  let buckets =
    List.filter_map
      (fun (bound, n) ->
        let d = n - base_count bound in
        if d > 0 then Some (bound, d) else None)
      current.h_buckets
  in
  let count = max 0 (current.h_count - base.h_count) in
  hist_snapshot_of ~count
    ~sum:(Float.max 0.0 (current.h_sum -. base.h_sum))
    ~max_v:current.h_max ~buckets

let diff ~base ~current =
  List.map
    (fun (key, v) ->
      match (v, find base key) with
      | Int n, Some (Int b) -> (key, Int (n - b))
      | Hist h, Some (Hist bh) -> (key, Hist (diff_hist ~base:bh ~current:h))
      | _ -> (key, v))
    current

let reset t =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> Atomic.set c 0
      | Hist h -> Histogram.clear h
      | Gauge _ | Derived_int _ | Derived_float _ -> ())
    t.metrics

(* ---------- pretty printing ---------- *)

let pp_value ppf = function
  | Int n -> Fmt.int ppf n
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then Fmt.pf ppf "%.0f" f
    else Fmt.pf ppf "%.4g" f
  | Hist h ->
    Fmt.pf ppf "n=%d mean=%.1f p50=%.0f p90=%.0f p99=%.0f p99.9=%.0f max=%.0f" h.h_count
      h.h_mean h.h_p50 h.h_p90 h.h_p99 h.h_p999 h.h_max

let top_segment key =
  match String.index_opt key '/' with
  | Some i -> String.sub key 0 i
  | None -> key

let pp_snapshot ppf snap =
  Fmt.pf ppf "@[<v>";
  let last_group = ref "" in
  List.iter
    (fun (key, v) ->
      let group = top_segment key in
      if group <> !last_group then begin
        if !last_group <> "" then Fmt.pf ppf "@,";
        Fmt.pf ppf "[%s]@," group;
        last_group := group
      end;
      Fmt.pf ppf "  %-42s %a@," key pp_value v)
    snap;
  Fmt.pf ppf "@]"

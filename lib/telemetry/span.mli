(** Tracing spans over simulated time.

    A span is one timed hop of a request — NVRAM commit, memtable apply,
    segio flush, per-drive program — stamped against the shared
    {!Purity_sim.Clock}. Spans carry a parent link and free-form tags, so
    a multi-hop write can be reconstructed end to end from the trace.

    Finished spans land in the tracer's bounded ring buffer (oldest
    evicted first) and, when one is installed, are handed to a pluggable
    sink — the hook the phone-home exporter uses to stream spans out as
    JSONL. Start/finish are cheap enough for hot paths: a record
    allocation and two clock reads. *)

type tracer
type t

val create_tracer : ?capacity:int -> clock:Purity_sim.Clock.t -> unit -> tracer
(** [capacity] (default 1024, min 1) bounds the finished-span ring. *)

val start : tracer -> ?parent:t -> ?tags:(string * string) list -> string -> t
(** Open a span named [name] starting now (simulated time). *)

val finish : ?tags:(string * string) list -> t -> unit
(** Close the span at the current simulated time, append it to the ring
    buffer and feed the sink. Finishing twice is a no-op. *)

val tag : t -> string -> string -> unit
(** Attach a tag to a live or finished span. *)

(** {1 Accessors} *)

val id : t -> int
val name : t -> string
val parent_id : t -> int option
val start_us : t -> float
val end_us : t -> float option
(** [None] until finished. *)

val duration_us : t -> float option
val tags : t -> (string * string) list

(** {1 The ring buffer} *)

val finished : tracer -> t list
(** Finished spans still in the ring, oldest first. *)

val drain : tracer -> t list
(** [finished] + empty the ring — what a periodic exporter calls. *)

val dropped : tracer -> int
(** Finished spans evicted by ring overflow since creation. *)

val clear : tracer -> unit

val set_sink : tracer -> (t -> unit) option -> unit
(** Called synchronously on every {!finish}; [None] uninstalls. *)

val to_json : t -> Json.t
(** [{"span":id,"name":...,"parent":...,"start_us":...,"end_us":...,
    "tags":{...}}] *)

module Clock = Purity_sim.Clock

type t = {
  tracer : tracer;
  span_id : int;
  span_name : string;
  parent : int option;
  started : float;
  mutable ended : float option;
  mutable span_tags : (string * string) list;  (* reverse insertion order *)
}

and tracer = {
  clock : Clock.t;
  capacity : int;
  ring : t option array;
  mutable head : int;  (* next write slot *)
  mutable len : int;
  mutable next_id : int;
  mutable evicted : int;
  mutable sink : (t -> unit) option;
}

let create_tracer ?(capacity = 1024) ~clock () =
  let capacity = max 1 capacity in
  {
    clock;
    capacity;
    ring = Array.make capacity None;
    head = 0;
    len = 0;
    next_id = 1;
    evicted = 0;
    sink = None;
  }

let start tracer ?parent ?(tags = []) name =
  let id = tracer.next_id in
  tracer.next_id <- id + 1;
  {
    tracer;
    span_id = id;
    span_name = name;
    parent = Option.map (fun p -> p.span_id) parent;
    started = Clock.now tracer.clock;
    ended = None;
    span_tags = List.rev tags;
  }

let tag t k v = t.span_tags <- (k, v) :: t.span_tags

let finish ?(tags = []) t =
  match t.ended with
  | Some _ -> ()
  | None ->
    List.iter (fun (k, v) -> tag t k v) tags;
    let tr = t.tracer in
    t.ended <- Some (Clock.now tr.clock);
    if tr.ring.(tr.head) <> None then tr.evicted <- tr.evicted + 1;
    tr.ring.(tr.head) <- Some t;
    tr.head <- (tr.head + 1) mod tr.capacity;
    if tr.len < tr.capacity then tr.len <- tr.len + 1;
    match tr.sink with Some f -> f t | None -> ()

let id t = t.span_id
let name t = t.span_name
let parent_id t = t.parent
let start_us t = t.started
let end_us t = t.ended
let duration_us t = Option.map (fun e -> e -. t.started) t.ended
let tags t = List.rev t.span_tags

let finished tracer =
  let acc = ref [] in
  (* the ring's oldest entry sits at head - len (mod capacity) *)
  for i = tracer.len - 1 downto 0 do
    let slot = (tracer.head - tracer.len + i + (2 * tracer.capacity)) mod tracer.capacity in
    match tracer.ring.(slot) with Some s -> acc := s :: !acc | None -> ()
  done;
  !acc

let clear tracer =
  Array.fill tracer.ring 0 tracer.capacity None;
  tracer.head <- 0;
  tracer.len <- 0

let drain tracer =
  let spans = finished tracer in
  clear tracer;
  spans

let dropped tracer = tracer.evicted
let set_sink tracer sink = tracer.sink <- sink

let to_json t =
  Json.Obj
    ([
       ("span", Json.Int t.span_id);
       ("name", Json.Str t.span_name);
     ]
    @ (match t.parent with Some p -> [ ("parent", Json.Int p) ] | None -> [])
    @ [ ("start_us", Json.Float t.started) ]
    @ (match t.ended with Some e -> [ ("end_us", Json.Float e) ] | None -> [])
    @
    match tags t with
    | [] -> []
    | kvs -> [ ("tags", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) kvs)) ])

# Convenience targets; everything is plain dune underneath.

.PHONY: all check test torture bench clean

all:
	dune build

# The tier-1 gate: full build plus every test suite.
check:
	dune build && dune runtest

test:
	dune runtest

# Extended fault-injection sweep (~1000 random scenarios through
# purity.check); minutes, not seconds — deliberately outside tier-1.
torture:
	dune build @torture

bench:
	dune exec bench/main.exe

clean:
	dune clean

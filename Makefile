# Convenience targets; everything is plain dune underneath.

.PHONY: all check test bench clean

all:
	dune build

# The tier-1 gate: full build plus every test suite.
check:
	dune build && dune runtest

test:
	dune runtest

bench:
	dune exec bench/main.exe

clean:
	dune clean

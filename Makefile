# Convenience targets; everything is plain dune underneath.

.PHONY: all check test lint torture torture-ac bench bench-micro bench-kernels clean

all:
	dune build

# The tier-1 gate: full build plus every test suite plus static analysis.
check:
	dune build && dune runtest && dune build @lint

test:
	dune runtest

# purity.lint: typed-AST checks for determinism, unsafe-access
# containment and hot-path hygiene. Fails on any unwaived finding;
# writes _build/default/lint_report.jsonl.
lint:
	dune build @lint

# Extended fault-injection sweep (~1000 random scenarios through
# purity.check); minutes, not seconds — deliberately outside tier-1.
torture:
	dune build @torture

# Stretched-pod (ActiveCluster) sweep: partitions, mediator loss and
# crashes over the fixed seed range 1..200 CI gates on, audited by the
# two-array model. Seconds, not minutes.
torture-ac:
	dune build @torture-ac

bench:
	dune exec bench/main.exe

# Just the wall-clock CPU suite (Bechamel primitives + the metadata
# hot-path before/after rows); writes BENCH_Micro.json.
bench-micro:
	dune exec bench/main.exe -- micro

# Only the data-plane kernel rows (ref vs word-at-a-time CRC32c /
# GF(256) / RS / LZ / fingerprint + the composed segment fill); writes
# BENCH_Kernels.json.
bench-kernels:
	dune exec bench/main.exe -- kernels

clean:
	dune clean

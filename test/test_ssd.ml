module Clock = Purity_sim.Clock
module Drive = Purity_ssd.Drive
module Nvram = Purity_ssd.Nvram
module Ftl = Purity_ssd.Ftl
module Shelf = Purity_ssd.Shelf
module Rng = Purity_util.Rng

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let small_config =
  {
    Drive.default_config with
    Drive.au_size = 64 * 1024;
    num_aus = 32;
    page_size = 4096;
    dies = 4;
  }

let make_drive ?(config = small_config) () =
  let clock = Clock.create () in
  let rng = Rng.create ~seed:123L in
  let d = Drive.create ~config ~clock ~rng ~id:0 () in
  (clock, d)

(* Run the clock and return the result delivered by an async op. *)
let await clock f =
  let result = ref None in
  f (fun r -> result := Some r);
  Clock.run clock;
  match !result with Some r -> r | None -> Alcotest.fail "operation never completed"

let test_drive_write_read_roundtrip () =
  let clock, d = make_drive () in
  let data = Bytes.of_string (String.init 8192 (fun i -> Char.chr (i mod 256))) in
  (match await clock (Drive.write_chunk d ~au:0 ~off:0 ~data) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "write failed");
  match await clock (fun k -> Drive.read d ~au:0 ~off:0 ~len:8192 k) with
  | Ok got -> check Alcotest.bytes "data back" data got
  | Error _ -> Alcotest.fail "read failed"

let test_drive_unwritten_reads_zero () =
  let clock, d = make_drive () in
  match await clock (fun k -> Drive.read d ~au:5 ~off:100 ~len:64 k) with
  | Ok got -> check Alcotest.bytes "zeros" (Bytes.make 64 '\000') got
  | Error _ -> Alcotest.fail "read failed"

let test_drive_append_only_enforced () =
  let clock, d = make_drive () in
  let data = Bytes.make 4096 'a' in
  ignore (await clock (Drive.write_chunk d ~au:0 ~off:0 ~data));
  (* Rewriting offset 0 without a trim must raise. *)
  match Drive.write_chunk d ~au:0 ~off:0 ~data ignore with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "in-place overwrite accepted"

let test_drive_append_continues () =
  let clock, d = make_drive () in
  let a = Bytes.make 4096 'a' and b = Bytes.make 4096 'b' in
  ignore (await clock (Drive.write_chunk d ~au:0 ~off:0 ~data:a));
  ignore (await clock (Drive.write_chunk d ~au:0 ~off:4096 ~data:b));
  check int "fill" 8192 (Drive.au_fill d ~au:0);
  match await clock (fun k -> Drive.read d ~au:0 ~off:4096 ~len:4096 k) with
  | Ok got -> check Alcotest.bytes "second chunk" b got
  | Error _ -> Alcotest.fail "read failed"

let test_drive_trim_resets_and_wears () =
  let clock, d = make_drive () in
  ignore (await clock (Drive.write_chunk d ~au:0 ~off:0 ~data:(Bytes.make 4096 'x')));
  check int "pe before" 0 (Drive.au_pe_count d ~au:0);
  Drive.trim_au d ~au:0;
  check int "fill reset" 0 (Drive.au_fill d ~au:0);
  check int "pe bumped" 1 (Drive.au_pe_count d ~au:0);
  (* AU is writable again from offset 0. *)
  ignore (await clock (Drive.write_chunk d ~au:0 ~off:0 ~data:(Bytes.make 4096 'y')))

let test_drive_offline_errors () =
  let clock, d = make_drive () in
  Drive.fail d;
  (match await clock (fun k -> Drive.read d ~au:0 ~off:0 ~len:16 k) with
  | Error `Offline -> ()
  | _ -> Alcotest.fail "expected Offline");
  Drive.restore d;
  match await clock (fun k -> Drive.read d ~au:0 ~off:0 ~len:16 k) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "restored drive should serve"

let test_drive_replace_clears () =
  let clock, d = make_drive () in
  ignore (await clock (Drive.write_chunk d ~au:0 ~off:0 ~data:(Bytes.make 4096 'x')));
  Drive.wear_to d ~pe:5000;
  Drive.replace d;
  check int "fill cleared" 0 (Drive.au_fill d ~au:0);
  check int "wear cleared" 0 (Drive.au_pe_count d ~au:0)

let test_drive_read_latency_vs_write_stall () =
  (* A read issued while the drive is programming must take much longer
     than an idle-drive read: the latency-spike behaviour of paper 4.4. *)
  let clock, d = make_drive () in
  (* idle read latency *)
  let t0 = Clock.now clock in
  ignore (await clock (fun k -> Drive.read d ~au:1 ~off:0 ~len:4096 k));
  let idle_latency = Clock.now clock -. t0 in
  (* now read while a large write is in flight on the same dies *)
  let data = Bytes.make (64 * 1024) 'w' in
  let t1 = Clock.now clock in
  let write_done = ref false and read_done_at = ref 0.0 in
  Drive.write_chunk d ~au:2 ~off:0 ~data (fun _ -> write_done := true);
  check bool "busy while writing" true (Drive.busy_writing d);
  (* Touch every die by reading the AU being written. *)
  Drive.read d ~au:2 ~off:0 ~len:4096 (fun _ -> read_done_at := Clock.now clock);
  Clock.run clock;
  let stalled_latency = !read_done_at -. t1 in
  check bool "write completed" true !write_done;
  check bool "stalled read at least 3x slower" true (stalled_latency > 3.0 *. idle_latency)

let test_drive_wear_out_corrupts_after_aging () =
  let config = { small_config with Drive.retention_mean_us = 1e6 } in
  let clock, d = make_drive ~config () in
  Drive.wear_to d ~pe:(2 * config.Drive.pe_rating);
  ignore (await clock (Drive.write_chunk d ~au:0 ~off:0 ~data:(Bytes.make 65536 'd')));
  (* age the data far beyond the (shrunken) retention mean *)
  Clock.advance clock 1e9;
  let corrupt = ref 0 in
  for au_off = 0 to 15 do
    match await clock (fun k -> Drive.read d ~au:0 ~off:(au_off * 4096) ~len:4096 k) with
    | Error (`Corrupt _) -> incr corrupt
    | _ -> ()
  done;
  check bool "worn, aged flash loses pages" true (!corrupt > 0)

let test_drive_fresh_flash_never_corrupts () =
  let clock, d = make_drive () in
  ignore (await clock (Drive.write_chunk d ~au:0 ~off:0 ~data:(Bytes.make 65536 'd')));
  Clock.advance clock 1e12;
  let corrupt = ref 0 in
  for au_off = 0 to 15 do
    match await clock (fun k -> Drive.read d ~au:0 ~off:(au_off * 4096) ~len:4096 k) with
    | Error (`Corrupt _) -> incr corrupt
    | _ -> ()
  done;
  check int "no corruption below rating" 0 !corrupt

let test_drive_stats () =
  let clock, d = make_drive () in
  ignore (await clock (Drive.write_chunk d ~au:0 ~off:0 ~data:(Bytes.make 4096 'x')));
  ignore (await clock (fun k -> Drive.read d ~au:0 ~off:0 ~len:4096 k));
  let s = Drive.stats d in
  check int "writes" 1 s.Drive.writes;
  check int "reads" 1 s.Drive.reads;
  check int "bytes written" 4096 s.Drive.bytes_written;
  Drive.reset_stats d;
  check int "reset" 0 (Drive.stats d).Drive.reads

let test_vertical_parity_repairs_single_page_losses () =
  (* identical wear and age; the parity-equipped drive hides losses the
     plain drive surfaces (single pages per 16-page group), at extra
     latency *)
  let run ~vertical_parity =
    let config = { small_config with Drive.retention_mean_us = 1e6; vertical_parity } in
    let clock, d = make_drive ~config () in
    Drive.wear_to d ~pe:config.Drive.pe_rating;
    ignore (await clock (Drive.write_chunk d ~au:0 ~off:0 ~data:(Bytes.make 65536 'd')));
    (* age for a ~6% per-page loss rate: mostly single losses per group *)
    Clock.advance clock 6e4;
    let corrupt = ref 0 in
    for off = 0 to 15 do
      match await clock (fun k -> Drive.read d ~au:0 ~off:(off * 4096) ~len:4096 k) with
      | Error (`Corrupt _) -> incr corrupt
      | _ -> ()
    done;
    !corrupt
  in
  let plain = run ~vertical_parity:false in
  let protected_ = run ~vertical_parity:true in
  check bool
    (Printf.sprintf "parity hides losses (%d -> %d)" plain protected_)
    true
    (plain > 0 && protected_ < plain)

(* ---------- NVRAM ---------- *)

let test_nvram_commit_replay () =
  let clock = Clock.create () in
  let nv = Nvram.create ~clock () in
  let committed = ref 0 in
  for i = 1 to 10 do
    Nvram.commit nv { Nvram.seq = Int64.of_int i; payload = Printf.sprintf "record-%d" i }
      (function Ok () -> incr committed | Error `Full -> Alcotest.fail "full")
  done;
  Clock.run clock;
  check int "all committed" 10 !committed;
  check int "all replayable" 10 (List.length (Nvram.records nv))

let test_nvram_trim () =
  let clock = Clock.create () in
  let nv = Nvram.create ~clock () in
  for i = 1 to 10 do
    Nvram.commit nv { Nvram.seq = Int64.of_int i; payload = "x" } ignore
  done;
  Clock.run clock;
  Nvram.trim_upto nv 7L;
  let left = Nvram.records nv in
  check int "three left" 3 (List.length left);
  check Alcotest.int64 "first surviving" 8L (List.hd left).Nvram.seq

let test_nvram_full_backpressure () =
  let clock = Clock.create () in
  let nv = Nvram.create ~capacity:100 ~clock () in
  let full = ref false in
  Nvram.commit nv { Nvram.seq = 1L; payload = String.make 80 'a' } ignore;
  Nvram.commit nv { Nvram.seq = 2L; payload = String.make 80 'b' }
    (function Error `Full -> full := true | Ok () -> ());
  Clock.run clock;
  check bool "backpressure" true !full

let test_nvram_bounded_latency () =
  let clock = Clock.create () in
  let nv = Nvram.create ~latency_us:15.0 ~clock () in
  let t0 = Clock.now clock in
  let done_at = ref 0.0 in
  Nvram.commit nv { Nvram.seq = 1L; payload = String.make 512 'p' }
    (fun _ -> done_at := Clock.now clock);
  Clock.run clock;
  let latency = !done_at -. t0 in
  check bool "low latency commit" true (latency < 100.0)

(* ---------- FTL baseline ---------- *)

let test_ftl_sequential_no_amplification () =
  let ftl = Ftl.create () in
  let n = Ftl.host_pages ftl in
  for lpn = 0 to n - 1 do
    ignore (Ftl.write ftl ~lpn)
  done;
  check (Alcotest.float 0.01) "first fill WA=1" 1.0 (Ftl.write_amplification ftl)

let test_ftl_random_writes_amplify () =
  Rng.with_seed_report ~seed:99L (fun rng ->
      let ftl = Ftl.create () in
      let n = Ftl.host_pages ftl in
      (* fill once sequentially, then hammer with random overwrites *)
      for lpn = 0 to n - 1 do
        ignore (Ftl.write ftl ~lpn)
      done;
      for _ = 1 to 3 * n do
        ignore (Ftl.write ftl ~lpn:(Rng.int rng n))
      done;
      let wa = Ftl.write_amplification ftl in
      check bool (Printf.sprintf "random overwrites amplify (wa=%.2f)" wa) true (wa > 1.3))

let test_ftl_gc_latency_spikes () =
  Rng.with_seed_report ~seed:100L (fun rng ->
      let ftl = Ftl.create () in
      let n = Ftl.host_pages ftl in
      for lpn = 0 to n - 1 do
        ignore (Ftl.write ftl ~lpn)
      done;
      let base = ref 0.0 and worst = ref 0.0 in
      for _ = 1 to 2 * n do
        let l = Ftl.write ftl ~lpn:(Rng.int rng n) in
        base := Float.min (if !base = 0.0 then l else !base) l;
        worst := Float.max !worst l
      done;
      check bool "GC causes >10x latency spikes" true (!worst > 10.0 *. !base))

let test_ftl_stats_consistent () =
  let ftl = Ftl.create () in
  for lpn = 0 to 99 do
    ignore (Ftl.write ftl ~lpn)
  done;
  let s = Ftl.stats ftl in
  check int "host writes" 100 s.Ftl.host_writes;
  check bool "programs >= host writes" true (s.Ftl.total_programs >= s.Ftl.host_writes)

(* ---------- Shelf ---------- *)

let test_shelf_basics () =
  Rng.with_seed_report ~seed:5L (fun rng ->
      let clock = Clock.create () in
      let shelf = Shelf.create ~drive_config:small_config ~clock ~rng ~drives:11 () in
      check int "drive count" 11 (Shelf.drive_count shelf);
      check int "online" 11 (List.length (Shelf.online_drives shelf));
      check int "physical bytes" (11 * 32 * 64 * 1024) (Shelf.physical_bytes shelf))

let test_shelf_pull_and_reinsert () =
  Rng.with_seed_report ~seed:6L (fun rng ->
      let clock = Clock.create () in
      let shelf = Shelf.create ~drive_config:small_config ~clock ~rng ~drives:11 () in
      Shelf.pull_drive shelf 3;
      Shelf.pull_drive shelf 7;
      check int "two pulled" 9 (List.length (Shelf.online_drives shelf));
      check bool "3 offline" false (Drive.is_online (Shelf.drive shelf 3));
      Shelf.reinsert_drive shelf 3;
      check int "back online" 10 (List.length (Shelf.online_drives shelf)))

let test_shelf_distinct_drive_salts () =
  (* Drives must get independent rngs (different corruption draws). *)
  Rng.with_seed_report ~seed:7L (fun rng ->
      let clock = Clock.create () in
      let shelf = Shelf.create ~drive_config:small_config ~clock ~rng ~drives:3 () in
      check bool "distinct ids" true
        (Drive.id (Shelf.drive shelf 0) <> Drive.id (Shelf.drive shelf 1)
        && Drive.id (Shelf.drive shelf 1) <> Drive.id (Shelf.drive shelf 2)))

let () =
  Alcotest.run "ssd"
    [
      ( "drive",
        [
          Alcotest.test_case "write/read roundtrip" `Quick test_drive_write_read_roundtrip;
          Alcotest.test_case "unwritten reads zero" `Quick test_drive_unwritten_reads_zero;
          Alcotest.test_case "append-only enforced" `Quick test_drive_append_only_enforced;
          Alcotest.test_case "append continues" `Quick test_drive_append_continues;
          Alcotest.test_case "trim resets and wears" `Quick test_drive_trim_resets_and_wears;
          Alcotest.test_case "offline errors" `Quick test_drive_offline_errors;
          Alcotest.test_case "replace clears" `Quick test_drive_replace_clears;
          Alcotest.test_case "read stalls behind writes" `Quick test_drive_read_latency_vs_write_stall;
          Alcotest.test_case "worn flash corrupts with age" `Quick test_drive_wear_out_corrupts_after_aging;
          Alcotest.test_case "fresh flash never corrupts" `Quick test_drive_fresh_flash_never_corrupts;
          Alcotest.test_case "stats" `Quick test_drive_stats;
          Alcotest.test_case "vertical parity" `Quick
            test_vertical_parity_repairs_single_page_losses;
        ] );
      ( "nvram",
        [
          Alcotest.test_case "commit & replay" `Quick test_nvram_commit_replay;
          Alcotest.test_case "trim" `Quick test_nvram_trim;
          Alcotest.test_case "full backpressure" `Quick test_nvram_full_backpressure;
          Alcotest.test_case "bounded latency" `Quick test_nvram_bounded_latency;
        ] );
      ( "ftl",
        [
          Alcotest.test_case "sequential WA=1" `Quick test_ftl_sequential_no_amplification;
          Alcotest.test_case "random writes amplify" `Quick test_ftl_random_writes_amplify;
          Alcotest.test_case "GC latency spikes" `Quick test_ftl_gc_latency_spikes;
          Alcotest.test_case "stats consistent" `Quick test_ftl_stats_consistent;
        ] );
      ( "shelf",
        [
          Alcotest.test_case "basics" `Quick test_shelf_basics;
          Alcotest.test_case "pull and reinsert" `Quick test_shelf_pull_and_reinsert;
          Alcotest.test_case "distinct drives" `Quick test_shelf_distinct_drive_salts;
        ] );
    ]

module Gf = Purity_erasure.Gf256
module Rs = Purity_erasure.Reed_solomon

let check = Alcotest.check
let int = Alcotest.int

(* ---------- GF(256) ---------- *)

let test_gf_add_is_xor () =
  check int "add" (0xA5 lxor 0x5A) (Gf.add 0xA5 0x5A);
  check int "self-inverse" 0 (Gf.add 0x42 0x42)

let test_gf_mul_identity () =
  for a = 0 to 255 do
    check int "x*1" a (Gf.mul a 1);
    check int "x*0" 0 (Gf.mul a 0)
  done

let test_gf_mul_commutative_associative () =
  let vals = [ 1; 2; 3; 7; 0x53; 0xCA; 255 ] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          check int "commutative" (Gf.mul a b) (Gf.mul b a);
          List.iter
            (fun c ->
              check int "associative" (Gf.mul (Gf.mul a b) c) (Gf.mul a (Gf.mul b c)))
            vals)
        vals)
    vals

let test_gf_known_product () =
  (* 0x53 * 0xCA = 0x01 in GF(2^8)/0x11D is a classic check pair for 0x11B;
     for 0x11D compute via distributivity instead: verify inverse law. *)
  for a = 1 to 255 do
    check int "a * inv a = 1" 1 (Gf.mul a (Gf.inv a))
  done

let test_gf_div () =
  for a = 1 to 255 do
    check int "(a*b)/b = a" a (Gf.div (Gf.mul a 0x9D) 0x9D)
  done;
  Alcotest.check_raises "div by zero" Division_by_zero (fun () -> ignore (Gf.div 5 0))

let test_gf_distributive () =
  let vals = [ 0; 1; 5; 0x80; 0xFF ] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          List.iter
            (fun c ->
              check int "a*(b+c) = a*b + a*c"
                (Gf.mul a (Gf.add b c))
                (Gf.add (Gf.mul a b) (Gf.mul a c)))
            vals)
        vals)
    vals

let test_gf_mul_slice () =
  let src = Bytes.of_string "\x01\x02\x03\x04" in
  let dst = Bytes.make 4 '\000' in
  Gf.mul_slice 0x02 ~src ~dst;
  for i = 0 to 3 do
    check int "slice mul" (Gf.mul 0x02 (i + 1)) (Bytes.get_uint8 dst i)
  done;
  (* XOR-in semantics: applying again cancels. *)
  Gf.mul_slice 0x02 ~src ~dst;
  for i = 0 to 3 do
    check int "cancelled" 0 (Bytes.get_uint8 dst i)
  done

let test_gf_mul_slice_zero_noop () =
  (* c = 0 contributes nothing, so the destination must be untouched. *)
  let src = Bytes.of_string "\xde\xad\xbe\xef\x01\x02\x03\x04\x05" in
  let dst = Bytes.of_string "\x11\x22\x33\x44\x55\x66\x77\x88\x99" in
  let before = Bytes.copy dst in
  Gf.mul_slice 0 ~src ~dst;
  check Alcotest.bytes "dst untouched" before dst

let test_gf_mul_slice_length_mismatch () =
  let src = Bytes.create 8 in
  let dst = Bytes.create 9 in
  Alcotest.check_raises "fast kernel"
    (Invalid_argument "Gf256.mul_slice: length mismatch") (fun () ->
      Gf.mul_slice 3 ~src ~dst);
  Alcotest.check_raises "ref kernel"
    (Invalid_argument "Gf256.mul_slice_ref: length mismatch") (fun () ->
      Gf.mul_slice_ref 3 ~src ~dst)

let prop_gf_mul_slice_fast_equals_ref =
  (* Word kernel vs byte kernel over every coefficient class (0, 1,
     general) and odd lengths that exercise the scalar tail. *)
  QCheck.Test.make ~name:"mul_slice word kernel equals byte kernel" ~count:300
    QCheck.(triple (int_bound 255) (int_bound 100) int)
    (fun (c, n, seed) ->
      let local = Purity_util.Rng.create ~seed:(Int64.of_int seed) in
      let src = Purity_util.Rng.bytes local n in
      let dst0 = Purity_util.Rng.bytes local n in
      let dst_fast = Bytes.copy dst0 in
      let dst_ref = Bytes.copy dst0 in
      Gf.mul_slice c ~src ~dst:dst_fast;
      Gf.mul_slice_ref c ~src ~dst:dst_ref;
      Bytes.equal dst_fast dst_ref)

(* ---------- Reed-Solomon ---------- *)

let rng = Purity_util.Rng.create ~seed:0xE7A5L

let random_shards k size =
  Array.init k (fun _ -> Purity_util.Rng.bytes rng size)

let test_rs_roundtrip_no_loss () =
  let rs = Rs.create ~k:7 ~m:2 in
  let data = random_shards 7 128 in
  let parity = Rs.encode rs data in
  check int "parity count" 2 (Array.length parity);
  let shards = Array.map Option.some (Array.append data parity) in
  let decoded = Rs.decode rs shards in
  Array.iteri (fun i d -> check Alcotest.bytes "shard" data.(i) d) decoded

let test_rs_all_double_erasures () =
  (* 7+2 must survive ANY two losses: try all 36 pairs. *)
  let rs = Rs.create ~k:7 ~m:2 in
  let data = random_shards 7 64 in
  let parity = Rs.encode rs data in
  let all = Array.append data parity in
  for i = 0 to 8 do
    for j = i + 1 to 8 do
      let shards = Array.map Option.some all in
      shards.(i) <- None;
      shards.(j) <- None;
      let decoded = Rs.decode rs shards in
      Array.iteri
        (fun x d -> check Alcotest.bytes (Printf.sprintf "lose(%d,%d) shard %d" i j x) data.(x) d)
        decoded
    done
  done

let test_rs_triple_erasure_rejected () =
  let rs = Rs.create ~k:7 ~m:2 in
  let data = random_shards 7 32 in
  let parity = Rs.encode rs data in
  let shards = Array.map Option.some (Array.append data parity) in
  shards.(0) <- None;
  shards.(3) <- None;
  shards.(8) <- None;
  Alcotest.check_raises "too many erasures"
    (Invalid_argument "Reed_solomon.decode: too many erasures") (fun () ->
      ignore (Rs.decode rs shards))

let test_rs_reconstruct_single_shard () =
  let rs = Rs.create ~k:7 ~m:2 in
  let data = random_shards 7 64 in
  let parity = Rs.encode rs data in
  let all = Array.append data parity in
  for target = 0 to 8 do
    let shards = Array.map Option.some all in
    shards.(target) <- None;
    let rebuilt = Rs.reconstruct_shard rs shards target in
    check Alcotest.bytes (Printf.sprintf "rebuild %d" target) all.(target) rebuilt
  done

let test_rs_encode_string () =
  let rs = Rs.create ~k:4 ~m:2 in
  let payload = String.init 1000 (fun i -> Char.chr (i mod 251)) in
  let shards = Rs.encode_string rs payload ~shard_size:256 in
  check int "shard count" 6 (Array.length shards);
  (* drop two shards, recover, reassemble *)
  let slots = Array.map (fun s -> Some (Bytes.of_string s)) shards in
  slots.(1) <- None;
  slots.(4) <- None;
  let data = Rs.decode rs slots in
  let joined = String.concat "" (Array.to_list (Array.map Bytes.to_string data)) in
  check Alcotest.string "payload recovered" payload (String.sub joined 0 1000)

let test_rs_parity_overhead () =
  let rs = Rs.create ~k:7 ~m:2 in
  check (Alcotest.float 0.001) "7+2 overhead" (2.0 /. 7.0) (Rs.parity_overhead rs)

let test_rs_bad_args () =
  Alcotest.check_raises "k=0" (Invalid_argument "Reed_solomon.create") (fun () ->
      ignore (Rs.create ~k:0 ~m:2));
  let rs = Rs.create ~k:3 ~m:2 in
  Alcotest.check_raises "wrong shard count"
    (Invalid_argument "Reed_solomon.encode: need k shards") (fun () ->
      ignore (Rs.encode rs [| Bytes.create 4 |]))

let prop_rs_encode_fast_equals_ref =
  (* The input-major word encoder must produce byte-identical parity to
     the original byte-at-a-time encoder, including odd shard sizes. *)
  QCheck.Test.make ~name:"rs encode word kernel equals byte kernel" ~count:80
    QCheck.(triple (int_range 2 10) (int_range 1 4) (int_range 1 100))
    (fun (k, m, size) ->
      let rs = Rs.create ~k ~m in
      let local = Purity_util.Rng.create ~seed:(Int64.of_int ((k * 7919) + (m * 131) + size)) in
      let data = Array.init k (fun _ -> Purity_util.Rng.bytes local size) in
      Array.for_all2 Bytes.equal (Rs.encode rs data) (Rs.encode_ref rs data))

let test_rs_odd_size_double_erasure () =
  (* Odd shard size drives decode's mul_slice tail through the word path. *)
  let rs = Rs.create ~k:5 ~m:2 in
  let data = random_shards 5 77 in
  let parity = Rs.encode rs data in
  let shards = Array.map Option.some (Array.append data parity) in
  shards.(2) <- None;
  shards.(5) <- None;
  let decoded = Rs.decode rs shards in
  Array.iteri (fun i d -> check Alcotest.bytes "shard" data.(i) d) decoded

let prop_rs_random_erasures =
  QCheck.Test.make ~name:"random k/m/erasures recover" ~count:60
    QCheck.(triple (int_range 2 10) (int_range 1 4) (int_range 1 64))
    (fun (k, m, size) ->
      let rs = Rs.create ~k ~m in
      let local = Purity_util.Rng.create ~seed:(Int64.of_int ((k * 1000) + (m * 10) + size)) in
      let data = Array.init k (fun _ -> Purity_util.Rng.bytes local size) in
      let parity = Rs.encode rs data in
      let all = Array.append data parity in
      let shards = Array.map Option.some all in
      (* knock out m random distinct shards *)
      let idx = Array.init (k + m) Fun.id in
      Purity_util.Rng.shuffle local idx;
      for i = 0 to m - 1 do
        shards.(idx.(i)) <- None
      done;
      let decoded = Rs.decode rs shards in
      Array.for_all2 Bytes.equal data decoded)

let () =
  Alcotest.run "erasure"
    [
      ( "gf256",
        [
          Alcotest.test_case "add is xor" `Quick test_gf_add_is_xor;
          Alcotest.test_case "mul identity" `Quick test_gf_mul_identity;
          Alcotest.test_case "mul comm/assoc" `Quick test_gf_mul_commutative_associative;
          Alcotest.test_case "inverse law" `Quick test_gf_known_product;
          Alcotest.test_case "div" `Quick test_gf_div;
          Alcotest.test_case "distributive" `Quick test_gf_distributive;
          Alcotest.test_case "mul_slice" `Quick test_gf_mul_slice;
          Alcotest.test_case "mul_slice zero noop" `Quick test_gf_mul_slice_zero_noop;
          Alcotest.test_case "mul_slice length mismatch" `Quick test_gf_mul_slice_length_mismatch;
          QCheck_alcotest.to_alcotest prop_gf_mul_slice_fast_equals_ref;
        ] );
      ( "reed_solomon",
        [
          Alcotest.test_case "roundtrip no loss" `Quick test_rs_roundtrip_no_loss;
          Alcotest.test_case "all double erasures" `Quick test_rs_all_double_erasures;
          Alcotest.test_case "triple erasure rejected" `Quick test_rs_triple_erasure_rejected;
          Alcotest.test_case "reconstruct single shard" `Quick test_rs_reconstruct_single_shard;
          Alcotest.test_case "encode_string" `Quick test_rs_encode_string;
          Alcotest.test_case "parity overhead" `Quick test_rs_parity_overhead;
          Alcotest.test_case "bad args" `Quick test_rs_bad_args;
          Alcotest.test_case "odd-size double erasure" `Quick test_rs_odd_size_double_erasure;
          QCheck_alcotest.to_alcotest prop_rs_encode_fast_equals_ref;
          QCheck_alcotest.to_alcotest prop_rs_random_erasures;
        ] );
    ]

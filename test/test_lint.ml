(* purity.lint engine tests: lint the planted-violation fixtures in
   test/lint_fixtures/ (excluded from the real @lint run) under a config
   that treats them as hot-path / recovery / audited code, and assert that
   every rule class fires at the planted file:line, that in-source waivers
   suppress exactly their finding, that stale waivers error, and that the
   baseline machinery suppresses and goes stale correctly. *)

(* Under `dune runtest` the cwd is _build/default/test; under
   `dune exec test/test_lint.exe` it is the project root. *)
let fixture_objs =
  let rel = "lint_fixtures/.lint_fixtures.objs/byte" in
  let candidates = [ rel; "test/" ^ rel; "_build/default/test/" ^ rel ] in
  match List.find_opt Sys.file_exists candidates with
  | Some d -> d
  | None -> rel

let cmt_for name =
  let want = String.lowercase_ascii name ^ ".cmt" in
  let files = Array.to_list (Sys.readdir fixture_objs) in
  match
    List.find_opt
      (fun f ->
        let f = String.lowercase_ascii f in
        String.length f >= String.length want
        && String.sub f (String.length f - String.length want) (String.length want)
           = want)
      files
  with
  | Some f -> Filename.concat fixture_objs f
  | None -> Alcotest.failf "no %s cmt under %s" name fixture_objs

let cfg =
  {
    Lint.Rules.hot_path_dirs = [ "lint_fixtures/" ];
    recovery_files = [ "fx_partial.ml" ];
    audited_unsafe = [ "fx_audited.ml" ];
    audited_domains = [ "fx_audited.ml" ];
    exclude = [];
  }

let check name =
  match Lint.Engine.check_cmt cfg (cmt_for name) with
  | Ok (Some (file, r)) -> (file, r)
  | Ok None -> Alcotest.failf "%s: cmt holds no implementation" name
  | Error e -> Alcotest.fail e

let fired (r : Lint.Engine.result) =
  List.map (fun (f : Lint.Finding.t) -> (Lint.Finding.rule_name f.rule, f.line)) r.findings

let rules_at = Alcotest.(list (pair string int))

let test_determinism () =
  let file, r = check "fx_determinism" in
  Alcotest.(check bool) "file recorded" true (Filename.basename file = "fx_determinism.ml");
  Alcotest.check rules_at "wall clock and global Random fire; seeded state does not"
    [ ("determinism", 3); ("determinism", 5) ]
    (fired r)

let test_unsafe () =
  let _, r = check "fx_unsafe" in
  Alcotest.check rules_at "unaudited unsafe_get fires" [ ("unsafe", 3) ] (fired r)

let test_domain () =
  let _, r = check "fx_domain" in
  Alcotest.check rules_at
    "Atomic.make and Domain.spawn fire outside audited modules; pure chunk \
     arithmetic does not"
    [ ("domain", 3); ("domain", 5) ]
    (fired r);
  List.iter
    (fun (f : Lint.Finding.t) ->
      Alcotest.(check string) "domain is an error" "error"
        (Lint.Finding.severity_name f.severity))
    r.findings

let test_audited () =
  let _, r = check "fx_audited" in
  Alcotest.check rules_at "audited module is exempt" [] (fired r)

let test_hotpath () =
  let _, r = check "fx_hotpath" in
  Alcotest.check rules_at
    "poly =/compare/hash and string-keyed Hashtbl fire; immediates do not"
    [ ("hotpath", 3); ("hotpath", 5); ("hotpath", 7); ("hotpath", 9); ("hotpath", 11) ]
    (fired r)

let test_partial () =
  let _, r = check "fx_partial" in
  Alcotest.check rules_at "List.hd and Option.get fire in recovery code"
    [ ("partial", 3); ("partial", 5) ]
    (fired r)

let test_waiver_suppresses () =
  let _, r = check "fx_waived" in
  Alcotest.check rules_at "waived finding is suppressed, no stale error" [] (fired r);
  Alcotest.(check int) "one finding waived" 1 r.waived;
  Alcotest.(check int) "one waiver present" 1 r.waivers

let test_stale_waiver () =
  let _, r = check "fx_stale" in
  (match r.findings with
  | [ f ] ->
    Alcotest.(check string) "stale waiver errors" "waiver" (Lint.Finding.rule_name f.rule);
    Alcotest.(check string) "stale waiver is an error severity" "error"
      (Lint.Finding.severity_name f.severity)
  | fs -> Alcotest.failf "expected exactly one stale-waiver finding, got %d" (List.length fs));
  Alcotest.(check int) "nothing waived" 0 r.waived

let test_severities () =
  let _, r = check "fx_determinism" in
  List.iter
    (fun (f : Lint.Finding.t) ->
      Alcotest.(check string) "determinism is an error" "error"
        (Lint.Finding.severity_name f.severity))
    r.findings;
  let _, r = check "fx_hotpath" in
  List.iter
    (fun (f : Lint.Finding.t) ->
      Alcotest.(check string) "hotpath is a warning" "warning"
        (Lint.Finding.severity_name f.severity))
    r.findings

(* ---- baseline machinery, on in-memory entries ---- *)

let baseline_lines =
  [
    "# comment";
    "";
    "unsafe lint_fixtures/fx_unsafe.ml -- planted";
    "partial lint_fixtures/fx_never.ml -- never fires";
  ]

let test_baseline_apply () =
  let entries, errors = Lint.Baseline.parse ~path:"baseline.txt" baseline_lines in
  Alcotest.(check int) "baseline parses clean" 0 (List.length errors);
  Alcotest.(check int) "two entries" 2 (List.length entries);
  let _, r = check "fx_unsafe" in
  let kept, suppressed = Lint.Baseline.apply entries r.findings in
  Alcotest.(check int) "unsafe finding suppressed by baseline" 1 suppressed;
  Alcotest.check rules_at "nothing kept" [] (fired { r with findings = kept });
  let stale = Lint.Baseline.stale ~path:"baseline.txt" entries in
  (match stale with
  | [ f ] ->
    Alcotest.(check string) "unused entry goes stale" "waiver"
      (Lint.Finding.rule_name f.rule);
    Alcotest.(check int) "stale report points at the baseline line" 4 f.line
  | fs -> Alcotest.failf "expected one stale entry, got %d" (List.length fs))

let test_baseline_rejects_unwaivable () =
  let entries, errors =
    Lint.Baseline.parse ~path:"baseline.txt" [ "waiver lib/core/state.ml" ]
  in
  Alcotest.(check int) "waiver rule cannot be baselined" 0 (List.length entries);
  Alcotest.(check int) "malformed entry reported" 1 (List.length errors)

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "unsafe" `Quick test_unsafe;
          Alcotest.test_case "domain" `Quick test_domain;
          Alcotest.test_case "audited exemption" `Quick test_audited;
          Alcotest.test_case "hotpath" `Quick test_hotpath;
          Alcotest.test_case "partial" `Quick test_partial;
          Alcotest.test_case "severities" `Quick test_severities;
        ] );
      ( "waivers",
        [
          Alcotest.test_case "waiver suppresses" `Quick test_waiver_suppresses;
          Alcotest.test_case "stale waiver errors" `Quick test_stale_waiver;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "apply + stale" `Quick test_baseline_apply;
          Alcotest.test_case "unwaivable rules rejected" `Quick test_baseline_rejects_unwaivable;
        ] );
    ]

module Fact = Purity_pyramid.Fact
module Patch = Purity_pyramid.Patch
module Pyramid = Purity_pyramid.Pyramid
module Seqno = Purity_pyramid.Seqno

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let str_opt = Alcotest.option Alcotest.string

(* ---------- Seqno ---------- *)

let test_seqno_monotone () =
  let s = Seqno.create () in
  check Alcotest.int64 "first" 1L (Seqno.next s);
  check Alcotest.int64 "second" 2L (Seqno.next s);
  check Alcotest.int64 "current" 2L (Seqno.current s)

let test_seqno_batch () =
  let s = Seqno.create () in
  let lo, hi = Seqno.next_batch s 10 in
  check Alcotest.int64 "lo" 1L lo;
  check Alcotest.int64 "hi" 10L hi;
  check Alcotest.int64 "next after batch" 11L (Seqno.next s)

let test_seqno_restore () =
  let s = Seqno.create () in
  Seqno.restore_at_least s 500L;
  check Alcotest.int64 "restored" 501L (Seqno.next s);
  Seqno.restore_at_least s 10L;
  check Alcotest.int64 "never backwards" 502L (Seqno.next s)

(* ---------- Fact ---------- *)

let test_fact_encode_roundtrip () =
  let facts =
    [
      Fact.make ~key:"volume/7/block/42" ~value:"payload bytes" ~seq:99L;
      Fact.tombstone ~key:"k" ~seq:1L;
      Fact.make ~key:"" ~value:"" ~seq:Int64.max_int;
    ]
  in
  let buf = Buffer.create 64 in
  List.iter (Fact.encode buf) facts;
  let raw = Buffer.to_bytes buf in
  let rec decode_all pos acc =
    if pos >= Bytes.length raw then List.rev acc
    else begin
      let f, next = Fact.decode raw ~pos in
      decode_all next (f :: acc)
    end
  in
  let got = decode_all 0 [] in
  check int "count" 3 (List.length got);
  List.iter2 (fun a b -> check bool "fact equal" true (Fact.equal a b)) facts got

let test_fact_ordering () =
  let a = Fact.make ~key:"a" ~value:"1" ~seq:5L in
  let a_newer = Fact.make ~key:"a" ~value:"2" ~seq:9L in
  let b = Fact.make ~key:"b" ~value:"3" ~seq:1L in
  check bool "key order first" true (Fact.compare_key_seq a b < 0);
  check bool "newer seq first within key" true (Fact.compare_key_seq a_newer a < 0)

(* ---------- Patch ---------- *)

let mk key value seq = Fact.make ~key ~value ~seq

let test_patch_sorted_dedup () =
  let p = Patch.of_facts [ mk "b" "1" 2L; mk "a" "2" 1L; mk "b" "1" 2L; mk "a" "3" 5L ] in
  check int "dedup to 3" 3 (Patch.count p);
  match Patch.to_list p with
  | [ f1; f2; f3 ] ->
    check Alcotest.string "a newest first" "3" (Option.get f1.Fact.value);
    check Alcotest.string "a older" "2" (Option.get f2.Fact.value);
    check Alcotest.string "b" "1" (Option.get f3.Fact.value)
  | _ -> Alcotest.fail "wrong shape"

let test_patch_find () =
  let p = Patch.of_facts [ mk "k" "v1" 1L; mk "k" "v2" 2L; mk "z" "zz" 3L ] in
  (match Patch.find_latest p "k" with
  | Some f -> check Alcotest.string "latest wins" "v2" (Option.get f.Fact.value)
  | None -> Alcotest.fail "missing");
  check int "all versions" 2 (List.length (Patch.find p "k"));
  check int "absent" 0 (List.length (Patch.find p "nope"))

let test_patch_merge_idempotent () =
  let p = Patch.of_facts [ mk "a" "1" 1L; mk "b" "2" 2L ] in
  let q = Patch.of_facts [ mk "b" "2" 2L; mk "c" "3" 3L ] in
  let m1 = Patch.merge p q in
  let m2 = Patch.merge m1 m1 in
  check int "merge dedups" 3 (Patch.count m1);
  check int "self-merge is identity" 3 (Patch.count m2);
  let m_comm = Patch.merge q p in
  check bool "commutative" true
    (List.for_all2 Fact.equal (Patch.to_list m1) (Patch.to_list m_comm))

let test_patch_ranges () =
  let p = Patch.of_facts [ mk "a" "1" 5L; mk "m" "2" 3L; mk "z" "3" 9L ] in
  check (Alcotest.option (Alcotest.pair Alcotest.int64 Alcotest.int64)) "seq range"
    (Some (3L, 9L)) (Patch.seq_range p);
  check (Alcotest.option (Alcotest.pair Alcotest.string Alcotest.string)) "key range"
    (Some ("a", "z")) (Patch.key_range p);
  check int "range query" 2 (List.length (Patch.range p ~lo:"a" ~hi:"m"))

let test_patch_compact () =
  let p =
    Patch.of_facts
      [ mk "a" "old" 1L; mk "a" "new" 2L; Fact.tombstone ~key:"b" ~seq:3L; mk "b" "dead" 1L ]
  in
  let c = Patch.compact_latest p ~drop_tombstones:true in
  check int "one survivor" 1 (Patch.count c);
  check Alcotest.string "newest a" "new" (Option.get (Patch.get c 0).Fact.value);
  let c2 = Patch.compact_latest p ~drop_tombstones:false in
  check int "tombstone kept" 2 (Patch.count c2)

let test_patch_serialize_roundtrip () =
  let p = Patch.of_facts [ mk "alpha" "1" 1L; Fact.tombstone ~key:"beta" ~seq:2L ] in
  let p2 = Patch.deserialize (Patch.serialize p) in
  check bool "roundtrip" true (List.for_all2 Fact.equal (Patch.to_list p) (Patch.to_list p2))

let test_patch_serialize_corruption () =
  let p = Patch.of_facts [ mk "key" "value" 7L ] in
  let s = Bytes.of_string (Patch.serialize p) in
  Bytes.set_uint8 s (Bytes.length s - 1) (Bytes.get_uint8 s (Bytes.length s - 1) lxor 1);
  match Patch.deserialize (Bytes.to_string s) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "corruption undetected"

let prop_patch_merge_equals_union =
  QCheck.Test.make ~name:"patch merge = set union of facts" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(0 -- 30) (pair (string_of_size Gen.(1 -- 4)) (int_bound 20)))
        (list_of_size Gen.(0 -- 30) (pair (string_of_size Gen.(1 -- 4)) (int_bound 20))))
    (fun (xs, ys) ->
      let facts l = List.map (fun (k, s) -> mk k (k ^ string_of_int s) (Int64.of_int (s + 1))) l in
      let p = Patch.of_facts (facts xs) and q = Patch.of_facts (facts ys) in
      let merged = Patch.merge p q in
      let expect = Patch.of_facts (facts xs @ facts ys) in
      List.length (Patch.to_list merged) = List.length (Patch.to_list expect)
      && List.for_all2 Fact.equal (Patch.to_list merged) (Patch.to_list expect))

(* ---------- Pyramid: tombstone policy ---------- *)

let tomb_pyramid () = Pyramid.create ~policy:Pyramid.Tombstones ~name:"t" ()

let test_pyr_insert_find () =
  let p = tomb_pyramid () in
  Pyramid.insert p ~seq:1L ~key:"a" ~value:"1";
  Pyramid.insert p ~seq:2L ~key:"b" ~value:"2";
  check str_opt "a" (Some "1") (Pyramid.find p "a");
  check str_opt "b" (Some "2") (Pyramid.find p "b");
  check str_opt "absent" None (Pyramid.find p "c")

let test_pyr_overwrite_latest_wins () =
  let p = tomb_pyramid () in
  Pyramid.insert p ~seq:1L ~key:"k" ~value:"old";
  Pyramid.insert p ~seq:5L ~key:"k" ~value:"new";
  check str_opt "latest" (Some "new") (Pyramid.find p "k");
  Pyramid.flush p;
  check str_opt "after flush" (Some "new") (Pyramid.find p "k")

let test_pyr_out_of_order_seq () =
  (* "confused or lagging writers may safely reorder inserts" *)
  let p = tomb_pyramid () in
  Pyramid.insert p ~seq:5L ~key:"k" ~value:"new";
  Pyramid.insert p ~seq:1L ~key:"k" ~value:"old";
  check str_opt "seq decides, not arrival" (Some "new") (Pyramid.find p "k")

let test_pyr_tombstone_delete () =
  let p = tomb_pyramid () in
  Pyramid.insert p ~seq:1L ~key:"k" ~value:"v";
  Pyramid.delete p ~seq:2L ~key:"k";
  check str_opt "deleted" None (Pyramid.find p "k");
  (* reinsertion after delete *)
  Pyramid.insert p ~seq:3L ~key:"k" ~value:"back";
  check str_opt "reinserted" (Some "back") (Pyramid.find p "k")

let test_pyr_snapshot_reads () =
  let p = tomb_pyramid () in
  Pyramid.insert p ~seq:1L ~key:"k" ~value:"v1";
  Pyramid.insert p ~seq:5L ~key:"k" ~value:"v2";
  Pyramid.delete p ~seq:9L ~key:"k";
  check str_opt "at 1" (Some "v1") (Pyramid.find ~snapshot:1L p "k");
  check str_opt "at 4" (Some "v1") (Pyramid.find ~snapshot:4L p "k");
  check str_opt "at 5" (Some "v2") (Pyramid.find ~snapshot:5L p "k");
  check str_opt "at 9 deleted" None (Pyramid.find ~snapshot:9L p "k");
  check str_opt "snapshot before create" None (Pyramid.find ~snapshot:0L p "k")

let test_pyr_flush_merge_flatten_preserve_reads () =
  let p = tomb_pyramid () in
  for i = 1 to 50 do
    Pyramid.insert p ~seq:(Int64.of_int i) ~key:(Printf.sprintf "k%02d" (i mod 10))
      ~value:(string_of_int i)
  done;
  Pyramid.flush p;
  for i = 51 to 100 do
    Pyramid.insert p ~seq:(Int64.of_int i) ~key:(Printf.sprintf "k%02d" (i mod 10))
      ~value:(string_of_int i)
  done;
  Pyramid.flush p;
  let before = List.init 10 (fun i -> Pyramid.find p (Printf.sprintf "k%02d" i)) in
  while Pyramid.merge_step p do () done;
  let after_merge = List.init 10 (fun i -> Pyramid.find p (Printf.sprintf "k%02d" i)) in
  check (Alcotest.list str_opt) "merge preserves" before after_merge;
  Pyramid.flatten p;
  let after_flatten = List.init 10 (fun i -> Pyramid.find p (Printf.sprintf "k%02d" i)) in
  check (Alcotest.list str_opt) "flatten preserves" before after_flatten;
  check int "single patch" 1 (Pyramid.patch_count p);
  check int "flatten drops shadowed facts" 10 (Pyramid.fact_count p)

let test_pyr_tombstones_discarded_at_bottom () =
  let p = tomb_pyramid () in
  Pyramid.insert p ~seq:1L ~key:"k" ~value:"v";
  Pyramid.delete p ~seq:2L ~key:"k";
  Pyramid.flatten p;
  check int "nothing left" 0 (Pyramid.fact_count p);
  check str_opt "still deleted" None (Pyramid.find p "k")

let test_pyr_auto_flush () =
  let p = Pyramid.create ~memtable_flush_count:10 ~policy:Pyramid.Tombstones ~name:"t" () in
  for i = 1 to 25 do
    Pyramid.insert p ~seq:(Int64.of_int i) ~key:(string_of_int i) ~value:"x"
  done;
  (* two auto-flushes happened; tiered maintenance may have merged them *)
  check bool "auto-flushed" true (Pyramid.patch_count p >= 1);
  check int "memtable small" 5 (Pyramid.memtable_size p);
  check int "all facts present" 25 (Pyramid.fact_count p)

let test_pyr_tiered_compaction_bounds_patches () =
  (* many equal-sized flushes must not produce many patches *)
  let p = Pyramid.create ~memtable_flush_count:1_000_000 ~policy:Pyramid.Tombstones ~name:"t" () in
  let seq = ref 0L in
  for round = 0 to 63 do
    for i = 0 to 31 do
      seq := Int64.add !seq 1L;
      Pyramid.insert p ~seq:!seq ~key:(Printf.sprintf "%d-%d" round i) ~value:"x"
    done;
    Pyramid.flush p
  done;
  check bool
    (Printf.sprintf "patch count %d is logarithmic" (Pyramid.patch_count p))
    true
    (Pyramid.patch_count p <= 8);
  check int "no facts lost" 2048 (Pyramid.fact_count p)

let test_pyr_replay_idempotent () =
  (* Recovery replays NVRAM facts on top of already-persisted state. *)
  let p = tomb_pyramid () in
  let facts =
    [ Fact.make ~key:"a" ~value:"1" ~seq:1L; Fact.make ~key:"b" ~value:"2" ~seq:2L ]
  in
  List.iter (Pyramid.insert_fact p) facts;
  Pyramid.flush p;
  (* replay the same facts, twice, out of order *)
  List.iter (Pyramid.insert_fact p) (List.rev facts);
  List.iter (Pyramid.insert_fact p) facts;
  Pyramid.flatten p;
  check int "no duplicates" 2 (Pyramid.fact_count p);
  check str_opt "a" (Some "1") (Pyramid.find p "a")

(* ---------- Pyramid: elision policy ---------- *)

(* Keys "medium:offset"; the elide rule extracts the medium id. *)
let medium_of_fact f =
  match String.index_opt f.Fact.key ':' with
  | Some i -> int_of_string (String.sub f.Fact.key 0 i)
  | None -> -1

let elide_pyramid () = Pyramid.create ~policy:(Pyramid.Elide medium_of_fact) ~name:"m" ()

let test_elide_basic () =
  let p = elide_pyramid () in
  Pyramid.insert p ~seq:1L ~key:"7:0" ~value:"a";
  Pyramid.insert p ~seq:2L ~key:"7:1" ~value:"b";
  Pyramid.insert p ~seq:3L ~key:"8:0" ~value:"c";
  Pyramid.elide_id p ~seq:4L 7;
  check str_opt "7:0 elided" None (Pyramid.find p "7:0");
  check str_opt "7:1 elided" None (Pyramid.find p "7:1");
  check str_opt "8:0 alive" (Some "c") (Pyramid.find p "8:0")

let test_elide_is_atomic_over_all_matches () =
  let p = elide_pyramid () in
  for i = 0 to 99 do
    Pyramid.insert p ~seq:(Int64.of_int (i + 1)) ~key:(Printf.sprintf "5:%d" i) ~value:"x"
  done;
  Pyramid.elide_id p ~seq:200L 5;
  check int "all hundred retracted" 0 (Pyramid.live_key_count p)

let test_elide_range () =
  let p = elide_pyramid () in
  for m = 0 to 9 do
    Pyramid.insert p ~seq:(Int64.of_int (m + 1)) ~key:(Printf.sprintf "%d:0" m) ~value:"x"
  done;
  Pyramid.elide_range p ~seq:100L ~lo:3 ~hi:6;
  check int "six left" 6 (Pyramid.live_key_count p);
  check str_opt "2 alive" (Some "x") (Pyramid.find p "2:0");
  check str_opt "4 dead" None (Pyramid.find p "4:0")

let test_elide_snapshot () =
  let p = elide_pyramid () in
  Pyramid.insert p ~seq:1L ~key:"7:0" ~value:"a";
  Pyramid.elide_id p ~seq:5L 7;
  check str_opt "before elide" (Some "a") (Pyramid.find ~snapshot:4L p "7:0");
  check str_opt "after elide" None (Pyramid.find ~snapshot:5L p "7:0")

let test_elide_relaxed_reader_sees_ghosts () =
  let p = elide_pyramid () in
  Pyramid.insert p ~seq:1L ~key:"7:0" ~value:"ghost";
  Pyramid.elide_id p ~seq:2L 7;
  check str_opt "strict read" None (Pyramid.find p "7:0");
  check str_opt "relaxed read observes retracted tuple" (Some "ghost")
    (Pyramid.find_ignoring_retractions p "7:0")

let test_elide_reclaims_space_on_merge () =
  let p = elide_pyramid () in
  for i = 0 to 49 do
    Pyramid.insert p ~seq:(Int64.of_int (i + 1)) ~key:(Printf.sprintf "1:%d" i) ~value:"x"
  done;
  Pyramid.flush p;
  for i = 0 to 49 do
    Pyramid.insert p ~seq:(Int64.of_int (i + 100)) ~key:(Printf.sprintf "2:%d" i) ~value:"x"
  done;
  Pyramid.flush p;
  (* tiered maintenance already combined the two flushes into one patch *)
  Pyramid.elide_id p ~seq:500L 1;
  check int "facts still stored" 100 (Pyramid.fact_count p);
  (* the next ordinary merge (triggered by a comparable-size flush) drops
     the elided facts immediately: no waiting for a tombstone to reach the
     bottom level *)
  for i = 0 to 49 do
    Pyramid.insert p ~seq:(Int64.of_int (i + 200)) ~key:(Printf.sprintf "3:%d" i) ~value:"x"
  done;
  Pyramid.flush p;
  check int "elided facts reclaimed by routine merging" 100 (Pyramid.fact_count p)

let test_elide_table_collapses () =
  let p = elide_pyramid () in
  for m = 0 to 999 do
    Pyramid.elide_id p ~seq:(Int64.of_int (m + 1)) m
  done;
  check int "1000 dense elides collapse to 1 range" 1 (Pyramid.elide_range_count p)

let test_elide_delete_raises () =
  let p = elide_pyramid () in
  match Pyramid.delete p ~seq:1L ~key:"x" with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "delete should be rejected under elision"

let test_tombstone_elide_raises () =
  let p = tomb_pyramid () in
  match Pyramid.elide_id p ~seq:1L 5 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "elide should be rejected under tombstones"

let test_pyr_iter_live_ordered () =
  let p = tomb_pyramid () in
  Pyramid.insert p ~seq:1L ~key:"c" ~value:"3";
  Pyramid.insert p ~seq:2L ~key:"a" ~value:"1";
  Pyramid.insert p ~seq:3L ~key:"b" ~value:"2";
  Pyramid.delete p ~seq:4L ~key:"b";
  let keys = ref [] in
  Pyramid.iter_live p (fun ~key ~value:_ -> keys := key :: !keys);
  check (Alcotest.list Alcotest.string) "sorted, live only" [ "a"; "c" ] (List.rev !keys)

let test_pyr_range () =
  let p = tomb_pyramid () in
  List.iteri
    (fun i k -> Pyramid.insert p ~seq:(Int64.of_int (i + 1)) ~key:k ~value:k)
    [ "apple"; "banana"; "cherry"; "date" ];
  let r = Pyramid.range p ~lo:"b" ~hi:"cz" in
  check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string)) "range"
    [ ("banana", "banana"); ("cherry", "cherry") ]
    r

(* ---------- metadata fast path: fences, blooms, batched runs ---------- *)

let test_patch_bloom_fences () =
  let p =
    Patch.of_facts (List.init 100 (fun i -> mk (Printf.sprintf "k%03d" i) "v" (Int64.of_int (i + 1))))
  in
  check bool "large patch carries a bloom" true (Patch.has_bloom p);
  check bool "fence admits interior key" true (Patch.fence_admits p "k050");
  check bool "fence rejects below" false (Patch.fence_admits p "a");
  check bool "fence rejects above" false (Patch.fence_admits p "z");
  check bool "bloom admits member" true (Patch.bloom_admits p "k042");
  check bool "fence overlap" true (Patch.fence_overlaps p ~lo:"k090" ~hi:"zzz");
  check bool "fence no overlap" false (Patch.fence_overlaps p ~lo:"l" ~hi:"m");
  (* a tiny patch has no bloom and must admit everything *)
  let small = Patch.of_facts [ mk "a" "1" 1L ] in
  check bool "small patch: no bloom" false (Patch.has_bloom small);
  check bool "small patch admits any key" true (Patch.bloom_admits small "whatever")

let test_patch_find_latest_at () =
  let p = Patch.of_facts [ mk "k" "v1" 1L; mk "k" "v2" 5L; mk "k" "v3" 9L; mk "z" "w" 3L ] in
  let value_at snap =
    Option.map (fun f -> Option.get f.Fact.value) (Patch.find_latest_at p "k" ~snapshot:snap)
  in
  check str_opt "latest" (Some "v3") (value_at 100L);
  check str_opt "mid" (Some "v2") (value_at 7L);
  check str_opt "exact" (Some "v1") (value_at 1L);
  check str_opt "before" None (value_at 0L);
  check bool "absent key" true (Patch.find_latest_at p "nope" ~snapshot:100L = None)

let test_probe_counters_and_skips () =
  let p = Pyramid.create ~memtable_flush_count:1_000_000 ~policy:Pyramid.Tombstones ~name:"t" () in
  let seq = ref 0L in
  (* two disjoint-key patches, big enough for blooms *)
  for i = 0 to 63 do
    seq := Int64.add !seq 1L;
    Pyramid.insert p ~seq:!seq ~key:(Printf.sprintf "a%04d" i) ~value:"x"
  done;
  Pyramid.flush p;
  for i = 0 to 31 do
    seq := Int64.add !seq 1L;
    Pyramid.insert p ~seq:!seq ~key:(Printf.sprintf "b%04d" i) ~value:"y"
  done;
  Pyramid.flush p;
  (* auto-compaction may have tiered the two flushes into one patch, so
     only assert patch-count-independent lower bounds *)
  let p0, f0, _ = Pyramid.probe_stats p in
  ignore (Pyramid.find p "a0007");
  ignore (Pyramid.find p "zzzz");
  (* "zzzz" is above every fence -> at least one fence skip *)
  let p1, f1, b1 = Pyramid.probe_stats p in
  check bool "probes counted" true (p1 - p0 >= 2);
  check bool "fence skips counted" true (f1 - f0 >= 1);
  (* a key inside a fence but absent: the bloom rejects it (with ~1%
     false-positive slack, so probe several) *)
  for i = 0 to 49 do
    ignore (Pyramid.find p (Printf.sprintf "a%04d-absent" i))
  done;
  let _, _, b2 = Pyramid.probe_stats p in
  check bool "bloom skips counted" true (b2 - b1 >= 40);
  check bool "results unaffected" true
    (Pyramid.find p "a0007" = Some "x" && Pyramid.find p "zzzz" = None)

let test_exists_live_in_range () =
  let p = tomb_pyramid () in
  List.iteri
    (fun i k -> Pyramid.insert p ~seq:(Int64.of_int (i + 1)) ~key:k ~value:k)
    [ "apple"; "banana"; "cherry" ];
  Pyramid.delete p ~seq:10L ~key:"banana";
  Pyramid.flush p;
  let agree ~lo ~hi =
    check bool
      (Printf.sprintf "exists agrees with range on [%s,%s]" lo hi)
      (Pyramid.range p ~lo ~hi <> [])
      (Pyramid.exists_live_in_range p ~lo ~hi)
  in
  agree ~lo:"a" ~hi:"z";
  agree ~lo:"b" ~hi:"bz";
  (* banana is deleted: live-exists must say no *)
  agree ~lo:"aa" ~hi:"az";
  agree ~lo:"d" ~hi:"z"

let test_elide_snapshot_indexed () =
  (* several elides at distinct seqs; snapshot reads must respect exactly
     the entries committed by then (exercises the eseq index) *)
  let p = elide_pyramid () in
  for m = 0 to 9 do
    Pyramid.insert p ~seq:(Int64.of_int (m + 1)) ~key:(Printf.sprintf "%d:0" m) ~value:"x"
  done;
  Pyramid.elide_id p ~seq:20L 2;
  Pyramid.elide_id p ~seq:30L 5;
  Pyramid.elide_id p ~seq:40L 7;
  check str_opt "snap 15: 2 alive" (Some "x") (Pyramid.find ~snapshot:15L p "2:0");
  check str_opt "snap 20: 2 dead" None (Pyramid.find ~snapshot:20L p "2:0");
  check str_opt "snap 25: 5 alive" (Some "x") (Pyramid.find ~snapshot:25L p "5:0");
  check str_opt "snap 35: 5 dead, 7 alive" None (Pyramid.find ~snapshot:35L p "5:0");
  check str_opt "snap 35: 7 alive" (Some "x") (Pyramid.find ~snapshot:35L p "7:0");
  check str_opt "snap 40: 7 dead" None (Pyramid.find ~snapshot:40L p "7:0");
  (* a later elide invalidates the index; rebuilt answers stay right *)
  Pyramid.elide_id p ~seq:50L 9;
  check str_opt "snap 45 after rebuild: 9 alive" (Some "x") (Pyramid.find ~snapshot:45L p "9:0");
  check str_opt "snap 50 after rebuild: 9 dead" None (Pyramid.find ~snapshot:50L p "9:0")

let pyramid_ops_gen =
  QCheck.Gen.(
    list_size (0 -- 150)
      (oneof
         [
           map
             (fun (k, v) -> `Insert (k, v))
             (pair (string_size ~gen:(char_range 'a' 'f') (1 -- 3)) (int_bound 100));
           map (fun k -> `Delete k) (string_size ~gen:(char_range 'a' 'f') (1 -- 3));
           return `Flush;
           return `Merge;
           return `Flatten;
         ]))

let apply_ops p ops =
  let seq = ref 0L in
  List.iter
    (function
      | `Insert (k, v) ->
        seq := Int64.add !seq 1L;
        Pyramid.insert p ~seq:!seq ~key:k ~value:(string_of_int v)
      | `Delete k ->
        seq := Int64.add !seq 1L;
        Pyramid.delete p ~seq:!seq ~key:k
      | `Flush -> Pyramid.flush p
      | `Merge -> ignore (Pyramid.merge_step p)
      | `Flatten -> Pyramid.flatten p)
    ops;
  !seq

let prop_fast_find_equals_naive =
  (* the bloom-fenced lookup must be bit-identical to the per-patch scan,
     for present keys, absent keys and every snapshot *)
  QCheck.Test.make ~name:"fenced find = naive find (keys x snapshots)" ~count:150
    (QCheck.make pyramid_ops_gen)
    (fun ops ->
      let p = Pyramid.create ~memtable_flush_count:8 ~policy:Pyramid.Tombstones ~name:"t" () in
      let max_seq = apply_ops p ops in
      let keys =
        (* the op alphabet, plus keys no op can generate *)
        List.concat_map (fun a -> List.map (fun b -> a ^ b) [ ""; "a"; "f"; "zz" ])
          [ "a"; "b"; "c"; "d"; "e"; "f"; "g" ]
      in
      let snapshots =
        [ 0L; 1L; Int64.div max_seq 2L; max_seq; Int64.add max_seq 5L; Int64.max_int ]
      in
      List.for_all
        (fun key ->
          List.for_all
            (fun snapshot ->
              Pyramid.find ~snapshot p key = Pyramid.find_naive ~snapshot p key)
            snapshots)
        keys)

let prop_find_run_equals_point =
  (* batched range lookup = per-key point lookup over a sliding window *)
  QCheck.Test.make ~name:"find_run = per-key find" ~count:150
    (QCheck.make
       QCheck.Gen.(
         list_size (0 -- 120)
           (oneof
              [
                map (fun (b, v) -> `Insert (b, v)) (pair (int_bound 30) (int_bound 100));
                map (fun b -> `Delete b) (int_bound 30);
                return `Flush;
                return `Merge;
              ])))
    (fun ops ->
      let key_of_block b = Printf.sprintf "%04d" b in
      let p = Pyramid.create ~memtable_flush_count:16 ~policy:Pyramid.Tombstones ~name:"t" () in
      let seq = ref 0L in
      List.iter
        (function
          | `Insert (b, v) ->
            seq := Int64.add !seq 1L;
            Pyramid.insert p ~seq:!seq ~key:(key_of_block b) ~value:(string_of_int v)
          | `Delete b ->
            seq := Int64.add !seq 1L;
            Pyramid.delete p ~seq:!seq ~key:(key_of_block b)
          | `Flush -> Pyramid.flush p
          | `Merge -> ignore (Pyramid.merge_step p))
        ops;
      let n = 12 in
      List.for_all
        (fun base ->
          let run =
            Pyramid.find_run p ~n
              ~key_of:(fun i -> key_of_block (base + i))
              ~index:(fun key -> int_of_string key - base)
          in
          List.for_all
            (fun i ->
              Pyramid.resolve_fact p run.(i) = Pyramid.find p (key_of_block (base + i)))
            (List.init n Fun.id))
        [ 0; 7; 25 ])

let prop_merge_many_equals_fold =
  QCheck.Test.make ~name:"pairwise merge_many = left-fold merge" ~count:100
    (QCheck.make
       QCheck.Gen.(
         list_size (0 -- 8)
           (list_size (0 -- 20)
              (pair (string_size ~gen:(char_range 'a' 'd') (1 -- 2)) (int_bound 20)))))
    (fun patch_specs ->
      let patches =
        List.map
          (fun spec ->
            Patch.of_facts
              (List.map (fun (k, s) -> mk k (k ^ string_of_int s) (Int64.of_int (s + 1))) spec))
          patch_specs
      in
      let fast = Patch.merge_many patches in
      let slow = List.fold_left Patch.merge Patch.empty patches in
      List.length (Patch.to_list fast) = List.length (Patch.to_list slow)
      && List.for_all2 Fact.equal (Patch.to_list fast) (Patch.to_list slow))

let prop_pyramid_matches_model =
  (* Pyramid vs a naive Map model under random insert/delete/flush/merge. *)
  QCheck.Test.make ~name:"pyramid agrees with naive map model" ~count:150
    (QCheck.make
       QCheck.Gen.(
         list_size (0 -- 120)
           (oneof
              [
                map
                  (fun (k, v) -> `Insert (k, v))
                  (pair (string_size ~gen:(char_range 'a' 'e') (1 -- 2)) (int_bound 100));
                map (fun k -> `Delete k) (string_size ~gen:(char_range 'a' 'e') (1 -- 2));
                return `Flush;
                return `Merge;
                return `Flatten;
              ])))
    (fun ops ->
      let p = tomb_pyramid () in
      let model = ref [] in
      let seq = ref 0L in
      let next () =
        seq := Int64.add !seq 1L;
        !seq
      in
      List.iter
        (function
          | `Insert (k, v) ->
            Pyramid.insert p ~seq:(next ()) ~key:k ~value:(string_of_int v);
            model := (k, Some (string_of_int v)) :: List.remove_assoc k !model
          | `Delete k ->
            Pyramid.delete p ~seq:(next ()) ~key:k;
            model := (k, None) :: List.remove_assoc k !model
          | `Flush -> Pyramid.flush p
          | `Merge -> ignore (Pyramid.merge_step p)
          | `Flatten -> Pyramid.flatten p)
        ops;
      List.for_all (fun (k, v) -> Pyramid.find p k = v) !model)

let () =
  Alcotest.run "pyramid"
    [
      ( "seqno",
        [
          Alcotest.test_case "monotone" `Quick test_seqno_monotone;
          Alcotest.test_case "batch" `Quick test_seqno_batch;
          Alcotest.test_case "restore" `Quick test_seqno_restore;
        ] );
      ( "fact",
        [
          Alcotest.test_case "encode roundtrip" `Quick test_fact_encode_roundtrip;
          Alcotest.test_case "ordering" `Quick test_fact_ordering;
        ] );
      ( "patch",
        [
          Alcotest.test_case "sorted dedup" `Quick test_patch_sorted_dedup;
          Alcotest.test_case "find" `Quick test_patch_find;
          Alcotest.test_case "merge idempotent/commutative" `Quick test_patch_merge_idempotent;
          Alcotest.test_case "ranges" `Quick test_patch_ranges;
          Alcotest.test_case "compact" `Quick test_patch_compact;
          Alcotest.test_case "serialize roundtrip" `Quick test_patch_serialize_roundtrip;
          Alcotest.test_case "serialize corruption" `Quick test_patch_serialize_corruption;
          QCheck_alcotest.to_alcotest prop_patch_merge_equals_union;
        ] );
      ( "pyramid",
        [
          Alcotest.test_case "insert/find" `Quick test_pyr_insert_find;
          Alcotest.test_case "latest wins" `Quick test_pyr_overwrite_latest_wins;
          Alcotest.test_case "out-of-order seq" `Quick test_pyr_out_of_order_seq;
          Alcotest.test_case "tombstone delete" `Quick test_pyr_tombstone_delete;
          Alcotest.test_case "snapshot reads" `Quick test_pyr_snapshot_reads;
          Alcotest.test_case "flush/merge/flatten preserve" `Quick
            test_pyr_flush_merge_flatten_preserve_reads;
          Alcotest.test_case "tombstones dropped at bottom" `Quick
            test_pyr_tombstones_discarded_at_bottom;
          Alcotest.test_case "auto flush" `Quick test_pyr_auto_flush;
          Alcotest.test_case "tiered compaction" `Quick test_pyr_tiered_compaction_bounds_patches;
          Alcotest.test_case "replay idempotent" `Quick test_pyr_replay_idempotent;
          Alcotest.test_case "iter_live ordered" `Quick test_pyr_iter_live_ordered;
          Alcotest.test_case "range" `Quick test_pyr_range;
          QCheck_alcotest.to_alcotest prop_pyramid_matches_model;
          Alcotest.test_case "patch fences + bloom" `Quick test_patch_bloom_fences;
          Alcotest.test_case "patch find_latest_at" `Quick test_patch_find_latest_at;
          Alcotest.test_case "probe counters + skips" `Quick test_probe_counters_and_skips;
          Alcotest.test_case "exists_live_in_range" `Quick test_exists_live_in_range;
          QCheck_alcotest.to_alcotest prop_fast_find_equals_naive;
          QCheck_alcotest.to_alcotest prop_find_run_equals_point;
          QCheck_alcotest.to_alcotest prop_merge_many_equals_fold;
        ] );
      ( "elision",
        [
          Alcotest.test_case "basic" `Quick test_elide_basic;
          Alcotest.test_case "atomic over matches" `Quick test_elide_is_atomic_over_all_matches;
          Alcotest.test_case "range" `Quick test_elide_range;
          Alcotest.test_case "snapshot" `Quick test_elide_snapshot;
          Alcotest.test_case "relaxed reader" `Quick test_elide_relaxed_reader_sees_ghosts;
          Alcotest.test_case "merge reclaims immediately" `Quick test_elide_reclaims_space_on_merge;
          Alcotest.test_case "table collapses" `Quick test_elide_table_collapses;
          Alcotest.test_case "delete raises" `Quick test_elide_delete_raises;
          Alcotest.test_case "elide raises on tombstone table" `Quick test_tombstone_elide_raises;
          Alcotest.test_case "snapshot via eseq index" `Quick test_elide_snapshot_indexed;
        ] );
    ]

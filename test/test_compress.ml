module Lz = Purity_compress.Lz
module Cblock = Purity_compress.Cblock

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let str = Alcotest.string

let roundtrip s =
  let c = Lz.compress s in
  Lz.decompress c ~expected_len:(String.length s)

let test_lz_empty () = check str "empty" "" (roundtrip "")
let test_lz_single_byte () = check str "one byte" "x" (roundtrip "x")
let test_lz_short () = check str "short" "abc" (roundtrip "abc")

let test_lz_repetitive_compresses () =
  let s = String.concat "" (List.init 200 (fun _ -> "the quick brown fox ")) in
  let c = Lz.compress s in
  check str "roundtrip" s (Lz.decompress c ~expected_len:(String.length s));
  check bool "compresses >5x" true (String.length c * 5 < String.length s)

let test_lz_rle_overlap () =
  (* Overlapping-copy case: long run of one byte. *)
  let s = String.make 10_000 'z' in
  let c = Lz.compress s in
  check str "roundtrip" s (Lz.decompress c ~expected_len:10_000);
  check bool "tiny output" true (String.length c < 100)

let test_lz_incompressible () =
  let rng = Purity_util.Rng.create ~seed:55L in
  let s = Bytes.to_string (Purity_util.Rng.bytes rng 4096) in
  check str "roundtrip random" s (roundtrip s)

let test_lz_long_literal_run () =
  (* >15 literals forces length extension bytes. *)
  let s = String.init 300 (fun i -> Char.chr ((i * 7) mod 256)) in
  check str "roundtrip" s (roundtrip s)

let test_lz_long_match () =
  (* Match length >> 19 forces match extension bytes. *)
  let unit = "abcdefgh" in
  let s = "prefix-" ^ String.concat "" (List.init 1000 (fun _ -> unit)) in
  check str "roundtrip" s (roundtrip s)

let test_lz_binary_with_zeros () =
  let s = String.make 100 '\000' ^ "data" ^ String.make 100 '\000' in
  check str "roundtrip" s (roundtrip s)

let test_lz_bad_input_rejected () =
  (* An offset pointing before the start of output must be rejected. *)
  let bogus = "\x04AAAA\x10\x00" in
  (match Lz.decompress bogus ~expected_len:100 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection");
  (* Wrong expected length must be rejected. *)
  let c = Lz.compress "hello world" in
  match Lz.decompress c ~expected_len:5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected length mismatch rejection"

let test_lz_ratio () =
  check bool "compressible ratio > 2" true (Lz.ratio (String.make 1000 'a') > 2.0);
  check bool "empty ratio 1" true (Lz.ratio "" = 1.0)

let prop_lz_roundtrip_random =
  QCheck.Test.make ~name:"lz roundtrip arbitrary strings" ~count:500
    QCheck.(string_of_size Gen.(0 -- 2000))
    (fun s -> roundtrip s = s)

let prop_lz_roundtrip_structured =
  (* Strings built from a tiny alphabet create pathological match patterns. *)
  QCheck.Test.make ~name:"lz roundtrip low-entropy strings" ~count:500
    QCheck.(string_gen_of_size Gen.(0 -- 3000) (Gen.oneofl [ 'a'; 'b' ]))
    (fun s -> roundtrip s = s)

(* The fast and reference kernels must produce byte-identical output —
   not just roundtrip-equal — so one generator is shared across several
   input shapes (random, low-entropy, RLE, text-like). *)
let fast_equals_ref s =
  let c_fast = Lz.compress s in
  let c_ref = Lz.compress_ref s in
  c_fast = c_ref
  && Lz.decompress c_fast ~expected_len:(String.length s)
     = Lz.decompress_ref c_fast ~expected_len:(String.length s)

let prop_lz_fast_equals_ref_random =
  QCheck.Test.make ~name:"lz word kernel equals byte kernel (random)" ~count:300
    QCheck.(string_of_size Gen.(0 -- 2000))
    fast_equals_ref

let prop_lz_fast_equals_ref_low_entropy =
  QCheck.Test.make ~name:"lz word kernel equals byte kernel (low entropy)" ~count:300
    QCheck.(string_gen_of_size Gen.(0 -- 3000) (Gen.oneofl [ 'a'; 'b' ]))
    fast_equals_ref

let test_lz_fast_equals_ref_shapes () =
  let texty =
    String.concat ""
      (List.init 40 (fun i ->
           Printf.sprintf "row|id=%08d|st=ACTIVE |bal=000042|name=customer_%04d|" i (i mod 7919)))
  in
  let rng = Purity_util.Rng.create ~seed:77L in
  List.iter
    (fun s -> check bool "identical output" true (fast_equals_ref s))
    [
      String.make 10_000 'z';
      (* odd lengths around the word-loop boundaries *)
      String.sub texty 0 63;
      String.sub texty 3 129;
      texty;
      Bytes.to_string (Purity_util.Rng.bytes rng 4097);
    ]

let test_lz_scratch_reuse_deterministic () =
  (* Reusing one scratch across many inputs must not leak state between
     calls: each compress must equal a fresh-scratch compress. *)
  let scratch = Lz.create_scratch () in
  let rng = Purity_util.Rng.create ~seed:99L in
  for i = 0 to 20 do
    let s =
      if i mod 3 = 0 then Bytes.to_string (Purity_util.Rng.bytes rng (17 * (i + 1)))
      else String.concat "" (List.init (i + 1) (fun j -> Printf.sprintf "chunk-%d-%d " i j))
    in
    check str "scratch reuse" (Lz.compress s) (Lz.compress ~scratch s)
  done

(* ---------- Cblock ---------- *)

let test_cblock_roundtrip_compressible () =
  let data = String.concat "" (List.init 64 (fun _ -> "0123456789abcdef")) in
  let cb = Cblock.of_data data in
  check bool "chose lz" true (cb.Cblock.encoding = Cblock.Lz);
  check str "data back" data (Cblock.data cb);
  check bool "reduction > 1" true (Cblock.reduction cb > 1.0)

let test_cblock_raw_fallback () =
  let rng = Purity_util.Rng.create ~seed:77L in
  let data = Bytes.to_string (Purity_util.Rng.bytes rng 512) in
  let cb = Cblock.of_data data in
  check bool "fell back to raw" true (cb.Cblock.encoding = Cblock.Raw);
  check str "data back" data (Cblock.data cb)

let test_cblock_frame_roundtrip () =
  let blocks = [ "hello"; String.make 512 'q'; ""; "final block of data" ] in
  let buf = Buffer.create 256 in
  List.iter (fun d -> Cblock.encode buf (Cblock.of_data d)) blocks;
  let raw = Buffer.to_bytes buf in
  let rec decode_all pos acc =
    if pos >= Bytes.length raw then List.rev acc
    else begin
      let cb, next = Cblock.decode raw ~pos in
      decode_all next (Cblock.data cb :: acc)
    end
  in
  check (Alcotest.list str) "all frames" blocks (decode_all 0 [])

let test_cblock_crc_detects_corruption () =
  let buf = Buffer.create 64 in
  Cblock.encode buf (Cblock.of_data (String.make 256 'k'));
  let raw = Buffer.to_bytes buf in
  (* flip a payload byte (last byte is always payload for non-empty data) *)
  let n = Bytes.length raw in
  Bytes.set_uint8 raw (n - 1) (Bytes.get_uint8 raw (n - 1) lxor 0xFF);
  match Cblock.decode raw ~pos:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "corruption not detected"

let test_cblock_max_size_enforced () =
  Alcotest.check_raises "33 KiB rejected"
    (Invalid_argument "Cblock.of_data: larger than 32 KiB") (fun () ->
      ignore (Cblock.of_data (String.make ((32 * 1024) + 1) 'x')))

let test_cblock_512b_min_granularity () =
  (* Paper: 512 B is the minimum dedup/compress unit; a 512 B cblock works. *)
  let data = String.make 512 '\000' in
  let cb = Cblock.of_data data in
  check int "logical len" 512 cb.Cblock.logical_len;
  check str "roundtrip" data (Cblock.data cb)

let prop_cblock_roundtrip =
  QCheck.Test.make ~name:"cblock roundtrip arbitrary data" ~count:300
    QCheck.(string_of_size Gen.(0 -- 4096))
    (fun s ->
      let buf = Buffer.create 64 in
      Cblock.encode buf (Cblock.of_data s);
      let cb, consumed = Cblock.decode (Buffer.to_bytes buf) ~pos:0 in
      Cblock.data cb = s && consumed = Buffer.length buf)

let prop_cblock_never_expands_much =
  (* Raw fallback bounds expansion to the frame header. *)
  QCheck.Test.make ~name:"cblock stored size bounded" ~count:200
    QCheck.(string_of_size Gen.(1 -- 4096))
    (fun s ->
      let cb = Cblock.of_data s in
      Cblock.stored_size cb <= String.length s + 16)

let prop_cblock_add_frame_equals_encode =
  (* The zero-alloc framing path must be byte-identical to the boxed
     [of_data] + [encode] path, including the raw-fallback branch. *)
  QCheck.Test.make ~name:"cblock add_frame equals encode (of_data)" ~count:200
    QCheck.(string_of_size Gen.(0 -- 4096))
    (fun s ->
      let scratch = Lz.create_scratch () in
      let direct = Buffer.create 64 in
      let n = Cblock.add_frame ~scratch direct s in
      let boxed = Buffer.create 64 in
      Cblock.encode boxed (Cblock.of_data s);
      n = Buffer.length direct && Buffer.contents direct = Buffer.contents boxed)

let () =
  Alcotest.run "compress"
    [
      ( "lz",
        [
          Alcotest.test_case "empty" `Quick test_lz_empty;
          Alcotest.test_case "single byte" `Quick test_lz_single_byte;
          Alcotest.test_case "short" `Quick test_lz_short;
          Alcotest.test_case "repetitive compresses" `Quick test_lz_repetitive_compresses;
          Alcotest.test_case "rle overlap" `Quick test_lz_rle_overlap;
          Alcotest.test_case "incompressible" `Quick test_lz_incompressible;
          Alcotest.test_case "long literal run" `Quick test_lz_long_literal_run;
          Alcotest.test_case "long match" `Quick test_lz_long_match;
          Alcotest.test_case "binary zeros" `Quick test_lz_binary_with_zeros;
          Alcotest.test_case "bad input rejected" `Quick test_lz_bad_input_rejected;
          Alcotest.test_case "ratio" `Quick test_lz_ratio;
          QCheck_alcotest.to_alcotest prop_lz_roundtrip_random;
          QCheck_alcotest.to_alcotest prop_lz_roundtrip_structured;
          Alcotest.test_case "fast equals ref shapes" `Quick test_lz_fast_equals_ref_shapes;
          Alcotest.test_case "scratch reuse deterministic" `Quick test_lz_scratch_reuse_deterministic;
          QCheck_alcotest.to_alcotest prop_lz_fast_equals_ref_random;
          QCheck_alcotest.to_alcotest prop_lz_fast_equals_ref_low_entropy;
        ] );
      ( "cblock",
        [
          Alcotest.test_case "roundtrip compressible" `Quick test_cblock_roundtrip_compressible;
          Alcotest.test_case "raw fallback" `Quick test_cblock_raw_fallback;
          Alcotest.test_case "frame stream" `Quick test_cblock_frame_roundtrip;
          Alcotest.test_case "crc detects corruption" `Quick test_cblock_crc_detects_corruption;
          Alcotest.test_case "max size enforced" `Quick test_cblock_max_size_enforced;
          Alcotest.test_case "512B granularity" `Quick test_cblock_512b_min_granularity;
          QCheck_alcotest.to_alcotest prop_cblock_roundtrip;
          QCheck_alcotest.to_alcotest prop_cblock_never_expands_much;
          QCheck_alcotest.to_alcotest prop_cblock_add_frame_equals_encode;
        ] );
    ]

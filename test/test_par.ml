(* purity.par: the deterministic domain pool, epoch snapshots, and the
   parallel data plane built on them. The load-bearing property everywhere
   is byte-identity: a parallel run must produce exactly the bytes a
   serial run produces, at every domain count, so per-seed replay and
   purity.check's digest-compared double execution survive sharding. *)

module Pool = Purity_par.Pool
module Epoch = Purity_par.Epoch
module Rs = Purity_erasure.Reed_solomon
module Clock = Purity_sim.Clock
module Drive = Purity_ssd.Drive
module Shelf = Purity_ssd.Shelf
module Layout = Purity_segment.Layout
module Segment = Purity_segment.Segment
module Allocator = Purity_segment.Allocator
module Writer = Purity_segment.Writer
module Io = Purity_sched.Io
module Fa = Purity_core.Flash_array
module State = Purity_core.State
module Rng = Purity_util.Rng

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let with_pool ~domains f =
  let p = Pool.create ~domains () in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

(* ---------- chunking ---------- *)

let prop_chunk_partitions =
  QCheck.Test.make ~name:"chunks partition 0..tasks-1 contiguously" ~count:500
    QCheck.(pair (int_range 1 8) (int_range 0 200))
    (fun (lanes, tasks) ->
      let covered = Array.make (max tasks 1) 0 in
      let ok = ref true in
      let next = ref 0 in
      for lane = 0 to lanes - 1 do
        let lo, len = Pool.chunk ~lanes ~tasks lane in
        (* contiguous: each lane starts where the previous ended *)
        if lo <> !next then ok := false;
        next := lo + len;
        (* balanced: lane sizes differ by at most one *)
        if len < tasks / lanes || len > (tasks / lanes) + 1 then ok := false;
        for i = lo to lo + len - 1 do
          covered.(i) <- covered.(i) + 1
        done
      done;
      if !next <> tasks then ok := false;
      for i = 0 to tasks - 1 do
        if covered.(i) <> 1 then ok := false
      done;
      !ok)

(* ---------- map: order and lane ownership ---------- *)

let test_map_order () =
  List.iter
    (fun domains ->
      with_pool ~domains (fun p ->
          let expected = Array.init 53 (fun i -> i * i) in
          let got = Pool.map p ~tasks:53 (fun ~lane:_ i -> i * i) in
          check bool
            (Printf.sprintf "map @%d domains returns index order" domains)
            true
            (got = expected);
          (* each index runs on its statically-owned lane *)
          let owned = Pool.map p ~tasks:53 (fun ~lane i ->
              let lo, len = Pool.chunk ~lanes:(Pool.lanes p) ~tasks:53 lane in
              lo <= i && i < lo + len)
          in
          check bool
            (Printf.sprintf "lane ownership @%d domains matches chunk" domains)
            true
            (Array.for_all Fun.id owned)))
      [ 1; 2; 4 ]

let test_run_covers_all_tasks () =
  with_pool ~domains:4 (fun p ->
      let tasks = 101 in
      let hit = Array.make tasks 0 in
      Pool.run p ~tasks (fun ~lane:_ ~lo ~len ->
          for i = lo to lo + len - 1 do
            hit.(i) <- hit.(i) + 1
          done);
      check bool "every task ran exactly once" true
        (Array.for_all (fun n -> n = 1) hit))

exception Lane_fail of int

let test_run_reraises_lowest_lane () =
  with_pool ~domains:4 (fun p ->
      (match
         Pool.run p ~tasks:8 (fun ~lane ~lo:_ ~len:_ ->
             if lane >= 2 then raise (Lane_fail lane))
       with
      | () -> Alcotest.fail "expected an exception"
      | exception Lane_fail l -> check int "lowest failing lane wins" 2 l);
      (* the pool survives a failed batch *)
      let got = Pool.map p ~tasks:8 (fun ~lane:_ i -> i) in
      check bool "pool usable after failure" true (got = Array.init 8 Fun.id))

let test_lane_seeds () =
  with_pool ~domains:4 (fun p ->
      let seeds = List.init 4 (Pool.lane_seed p) in
      let distinct = List.sort_uniq compare seeds in
      check int "lane seeds distinct" 4 (List.length distinct);
      with_pool ~domains:4 (fun q ->
          check bool "lane seeds are a pure function of (seed, lane)" true
            (List.init 4 (Pool.lane_seed q) = seeds)))

(* ---------- epoch snapshots ---------- *)

let test_epoch_basics () =
  let e = Epoch.create 10 in
  check int "initial value" 10 (Epoch.read e);
  check int "initial epoch" 0 (Epoch.epoch e);
  Epoch.publish e 11;
  Epoch.publish e 12;
  check int "latest value" 12 (Epoch.read e);
  check int "epoch counts publishes" 2 (Epoch.epoch e);
  check bool "tagged read is consistent" true (Epoch.read_tagged e = (12, 2))

(* Lane 0 publishes value = epoch while the other lanes hammer
   [read_tagged]: every snapshot a reader observes must be internally
   consistent (value and tag from the same publish). *)
let test_epoch_cross_domain_consistency () =
  with_pool ~domains:4 (fun p ->
      let e = Epoch.create 0 in
      let rounds = 20_000 in
      let torn = Array.make 4 0 in
      Pool.run p ~tasks:4 (fun ~lane ~lo:_ ~len:_ ->
          if lane = 0 then
            for i = 1 to rounds do
              Epoch.publish e i
            done
          else
            for _ = 1 to rounds do
              let v, tag = Epoch.read_tagged e in
              if v <> tag then torn.(lane) <- torn.(lane) + 1
            done);
      check int "no torn snapshot observed" 0 (Array.fold_left ( + ) 0 torn);
      check int "all publishes landed" rounds (Epoch.read e))

(* ---------- RS encode: parallel == serial, byte for byte ---------- *)

let prop_encode_par_matches_serial =
  QCheck.Test.make ~name:"encode_par == encode at 2 and 4 domains" ~count:30
    QCheck.(triple (int_range 1 8) (int_range 1 4) (int_range 1 257))
    (fun (k, m, shard_size) ->
      let rng = Rng.create ~seed:(Int64.of_int ((k * 1009) + (m * 31) + shard_size)) in
      let data = Array.init k (fun _ -> Rng.bytes rng shard_size) in
      let rs = Rs.create ~k ~m in
      let serial = Rs.encode rs data in
      List.for_all
        (fun domains ->
          with_pool ~domains (fun p ->
              let par = Rs.encode_par p rs data in
              Array.length par = Array.length serial
              && Array.for_all2 (fun a b -> Bytes.equal a b) par serial))
        [ 2; 4 ])

(* ---------- segment fill: parallel == serial, byte for byte ---------- *)

let au_size = 64 * 1024
let layout = Layout.make ~k:3 ~m:2 ~write_unit:4096 ~header_size:4096 ~au_size ()

let drive_config =
  { Drive.default_config with Drive.au_size; num_aus = 64; dies = 4 }

type env = { clock : Clock.t; shelf : Shelf.t; rs : Rs.t; alloc : Allocator.t }

let make_env () =
  let clock = Clock.create () in
  let rng = Rng.create ~seed:2024L in
  let shelf = Shelf.create ~drive_config ~clock ~rng ~drives:6 () in
  let rs = Rs.create ~k:3 ~m:2 in
  let alloc = Allocator.create ~layout ~drives:6 ~aus_per_drive:64 () in
  { clock; shelf; rs; alloc }

let await env f =
  let result = ref None in
  f (fun r -> result := Some r);
  Clock.run env.clock;
  match !result with Some r -> r | None -> Alcotest.fail "operation never completed"

(* Fill one segment with a deterministic payload + log mix, flush it with
   the given pool, and dump every member AU back off the drives. *)
let flush_and_dump ~pool =
  let env = make_env () in
  let online d = Drive.is_online (Shelf.drive env.shelf d) in
  let members = Option.get (Allocator.allocate env.alloc ~online) in
  let w = Writer.create ~layout ~shelf:env.shelf ~rs:env.rs ~members ~id:7 in
  let rng = Rng.create ~seed:0xF111L in
  let n = ref 0 in
  let full = ref false in
  while not !full do
    let s = Bytes.to_string (Rng.bytes rng (1024 + (!n * 131 mod 3000))) in
    (match Writer.append_data w s with Some _ -> incr n | None -> full := true);
    if !n mod 3 = 0 then
      ignore (Writer.append_log w ~seq:(Int64.of_int !n) (string_of_int !n))
  done;
  let seg = await env (fun cb -> Writer.finalize w ~pool cb) in
  let dump =
    Array.map
      (fun (m : Segment.member) ->
        await env (fun cb -> Drive.read (Shelf.drive env.shelf m.Segment.drive)
                     ~au:m.Segment.au ~off:0 ~len:au_size cb))
      seg.Segment.members
  in
  Array.map (function Ok b -> Bytes.to_string b | Error _ -> Alcotest.fail "read failed") dump

let test_segment_fill_par_matches_serial () =
  let serial = with_pool ~domains:1 (fun p -> flush_and_dump ~pool:p) in
  List.iter
    (fun domains ->
      let par = with_pool ~domains (fun p -> flush_and_dump ~pool:p) in
      check bool
        (Printf.sprintf "flushed members byte-identical @%d domains" domains)
        true (par = serial))
    [ 2; 4 ]

(* ---------- whole-array byte-equality across domain counts ---------- *)

let bs = Fa.block_size

let test_config =
  {
    Fa.default_config with
    Fa.drives = 6;
    k = 3;
    m = 2;
    write_unit = 8 * 1024;
    drive_config =
      {
        Purity_ssd.Drive.default_config with
        Purity_ssd.Drive.au_size = 64 * 1024 + 4096;
        num_aus = 256;
        dies = 4;
      };
    memtable_flush = 100_000;
  }

(* Run a fixed multi-block workload through a full array with the global
   pool at [domains], and fold everything externally observable — every
   read-back byte plus the epoch-published control plane — into a digest. *)
let workload_digest domains =
  Pool.set_global_domains domains;
  let clock = Clock.create () in
  let a = Fa.create ~config:test_config ~clock () in
  (match Fa.create_volume a "v" ~blocks:1024 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "create_volume failed");
  let awaitc f =
    let result = ref None in
    f (fun r -> result := Some r);
    Clock.run clock;
    match !result with Some r -> r | None -> Alcotest.fail "operation never completed"
  in
  let data_for i nblocks =
    if i mod 3 = 0 then begin
      (* compressible, so the parallel LZ path does real work *)
      let unit = Printf.sprintf "segment %d rides the parallel fill path. " i in
      let b = Buffer.create (nblocks * bs) in
      while Buffer.length b < nblocks * bs do
        Buffer.add_string b unit
      done;
      Buffer.sub b 0 (nblocks * bs)
    end
    else
      Bytes.to_string (Rng.bytes (Rng.create ~seed:(Int64.of_int (0xA0 + i))) (nblocks * bs))
  in
  for i = 0 to 11 do
    match awaitc (Fa.write a ~volume:"v" ~block:(i * 16) (data_for i 8)) with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "write failed"
  done;
  (* overwrites, so dedup/GC state moves too *)
  for i = 0 to 3 do
    match awaitc (Fa.write a ~volume:"v" ~block:(i * 32) (data_for (20 + i) 8)) with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "write failed"
  done;
  awaitc (fun cb -> Fa.flush a (fun () -> cb ()));
  let digest = ref 0 in
  let mix v = digest := (!digest * 31) + (Hashtbl.hash v land 0xFFFFFF) in
  for i = 0 to 11 do
    match awaitc (Fa.read a ~volume:"v" ~block:(i * 16) ~nblocks:8) with
    | Ok data -> mix data
    | Error _ -> Alcotest.fail "read failed"
  done;
  let cv = Epoch.read (Fa.state a).State.control_view in
  mix cv.State.cv_next_segment;
  mix cv.State.cv_unflushed;
  mix cv.State.cv_pending_flushes;
  !digest

let test_array_digest_stable_across_domains () =
  let serial = workload_digest 1 in
  Fun.protect
    ~finally:(fun () -> Pool.set_global_domains 1)
    (fun () ->
      List.iter
        (fun domains ->
          check int
            (Printf.sprintf "whole-array digest @%d domains == serial" domains)
            serial (workload_digest domains))
        [ 2; 4 ])

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          QCheck_alcotest.to_alcotest prop_chunk_partitions;
          Alcotest.test_case "map order" `Quick test_map_order;
          Alcotest.test_case "run covers all tasks" `Quick test_run_covers_all_tasks;
          Alcotest.test_case "lowest-lane exception" `Quick test_run_reraises_lowest_lane;
          Alcotest.test_case "lane seeds" `Quick test_lane_seeds;
        ] );
      ( "epoch",
        [
          Alcotest.test_case "basics" `Quick test_epoch_basics;
          Alcotest.test_case "cross-domain consistency" `Quick
            test_epoch_cross_domain_consistency;
        ] );
      ( "byte-identity",
        [
          QCheck_alcotest.to_alcotest prop_encode_par_matches_serial;
          Alcotest.test_case "segment fill" `Quick test_segment_fill_par_matches_serial;
          Alcotest.test_case "whole array" `Quick test_array_digest_stable_across_domains;
        ] );
    ]

(* purity.telemetry: registry, spans, phone-home exporter. *)

module Clock = Purity_sim.Clock
module Histogram = Purity_util.Histogram
module Registry = Purity_telemetry.Registry
module Span = Purity_telemetry.Span
module Export = Purity_telemetry.Export
module Json = Purity_telemetry.Json

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

(* ---------- registry ---------- *)

let test_registry_counters () =
  let reg = Registry.create () in
  let c = Registry.counter reg "write_path/app_writes" in
  Registry.incr c;
  Registry.add c 4;
  check int "counter value" 5 (Registry.value c);
  (* same key, same family: the original handle comes back *)
  let c' = Registry.counter reg "write_path/app_writes" in
  Registry.incr c';
  check int "shared cell" 6 (Registry.value c)

let test_registry_gauges () =
  let reg = Registry.create () in
  let g = Registry.gauge reg "nvram/fill" in
  Registry.set g 0.75;
  check (Alcotest.float 1e-9) "gauge value" 0.75 (Registry.get g)

let test_registry_duplicate_family_clash () =
  let reg = Registry.create () in
  ignore (Registry.counter reg "x/key");
  (match Registry.gauge reg "x/key" with
  | _ -> Alcotest.fail "family mismatch must raise"
  | exception Invalid_argument _ -> ());
  match Registry.histogram reg "x/key" with
  | _ -> Alcotest.fail "family mismatch must raise"
  | exception Invalid_argument _ -> ()

let test_registry_keys_and_mem () =
  let reg = Registry.create () in
  ignore (Registry.counter reg "b/two");
  ignore (Registry.counter reg "a/one");
  Registry.derive_int reg "c/three" (fun () -> 3);
  check bool "mem" true (Registry.mem reg "a/one");
  check bool "not mem" false (Registry.mem reg "nope");
  check (Alcotest.list string) "sorted keys" [ "a/one"; "b/two"; "c/three" ]
    (Registry.keys reg)

let test_registry_derived () =
  let reg = Registry.create () in
  let v = ref 10 in
  Registry.derive_int reg "derived/x" (fun () -> !v);
  let snap1 = Registry.snapshot reg in
  v := 25;
  let snap2 = Registry.snapshot reg in
  (match (Registry.find snap1 "derived/x", Registry.find snap2 "derived/x") with
  | Some (Registry.Int 10), Some (Registry.Int 25) -> ()
  | _ -> Alcotest.fail "derived metric must sample at snapshot time");
  (* re-registration replaces the closure *)
  Registry.derive_int reg "derived/x" (fun () -> 99);
  match Registry.find (Registry.snapshot reg) "derived/x" with
  | Some (Registry.Int 99) -> ()
  | _ -> Alcotest.fail "re-derivation must replace"

let test_snapshot_diff () =
  let reg = Registry.create () in
  let c = Registry.counter reg "ops/total" in
  let g = Registry.gauge reg "fill/level" in
  let h = Registry.histogram reg "lat/us" in
  Registry.add c 10;
  Registry.set g 1.0;
  Histogram.record h 100.0;
  Histogram.record h 200.0;
  let base = Registry.snapshot reg in
  Registry.add c 7;
  Registry.set g 2.5;
  Histogram.record h 400.0;
  let current = Registry.snapshot reg in
  let d = Registry.diff ~base ~current in
  (match Registry.find d "ops/total" with
  | Some (Registry.Int 7) -> ()
  | _ -> Alcotest.fail "counter diff must subtract");
  (match Registry.find d "fill/level" with
  | Some (Registry.Float f) -> check (Alcotest.float 1e-9) "gauge keeps level" 2.5 f
  | _ -> Alcotest.fail "gauge diff must keep current");
  match Registry.find d "lat/us" with
  | Some (Registry.Hist hs) ->
    check int "interval count" 1 hs.Registry.h_count;
    (* the one sample in the interval was 400us; its log-bucket upper
       bound is what the percentile reports *)
    check bool "interval p50 covers 400" true (hs.Registry.h_p50 >= 400.0)
  | _ -> Alcotest.fail "histogram diff must subtract buckets"

let test_filter_prefix () =
  let reg = Registry.create () in
  ignore (Registry.counter reg "ssd/drive0/reads");
  ignore (Registry.counter reg "ssd/drive1/reads");
  ignore (Registry.counter reg "sched/reads");
  let snap = Registry.snapshot reg in
  check int "prefix matches subtree" 2
    (List.length (Registry.filter_prefix snap ~prefix:"ssd"));
  (* "ssd" must not match "sched" nor a key-prefix like "ssd/drive0" of
     "ssd/drive0/reads" unless on a segment boundary *)
  check int "deep prefix" 1 (List.length (Registry.filter_prefix snap ~prefix:"ssd/drive0"))

let test_reset () =
  let reg = Registry.create () in
  let c = Registry.counter reg "a/c" in
  let h = Registry.histogram reg "a/h" in
  Registry.add c 5;
  Histogram.record h 10.0;
  Registry.reset reg;
  check int "counter zeroed" 0 (Registry.value c);
  check int "histogram cleared" 0 (Histogram.count h)

(* ---------- histogram satellites ---------- *)

let test_histogram_to_buckets () =
  let h = Histogram.create () in
  Histogram.record h 3.0;
  Histogram.record h 3.0;
  Histogram.record h 1000.0;
  let buckets = Histogram.to_buckets h in
  check int "total count" 3 (List.fold_left (fun a (_, c) -> a + c) 0 buckets);
  check bool "bounds ascend" true
    (List.sort compare buckets = buckets && List.for_all (fun (_, c) -> c > 0) buckets)

let test_histogram_quantiles () =
  let h = Histogram.create () in
  for i = 1 to 100 do
    Histogram.record h (float_of_int i)
  done;
  (match Histogram.quantiles h [ 0.5; 0.99 ] with
  | [ q50; q99 ] ->
    check (Alcotest.float 1e-9) "q50 = p50" (Histogram.percentile h 50.0) q50;
    check (Alcotest.float 1e-9) "q99 = p99" (Histogram.percentile h 99.0) q99
  | _ -> Alcotest.fail "two quantiles in, two out");
  match Histogram.quantiles h [ 1.5 ] with
  | _ -> Alcotest.fail "q > 1 must raise"
  | exception Invalid_argument _ -> ()

(* ---------- spans ---------- *)

let test_span_parentage () =
  let clock = Clock.create () in
  let tr = Span.create_tracer ~clock () in
  let parent = Span.start tr "write" in
  Clock.advance clock 5.0;
  let child = Span.start tr ~parent ~tags:[ ("seq", "1") ] "nvram_commit" in
  Clock.advance clock 7.0;
  Span.finish child;
  Span.finish parent;
  check (Alcotest.option int) "child links parent" (Some (Span.id parent))
    (Span.parent_id child);
  check (Alcotest.option int) "root has no parent" None (Span.parent_id parent);
  (match Span.duration_us child with
  | Some d -> check (Alcotest.float 1e-9) "child duration" 7.0 d
  | None -> Alcotest.fail "finished span has a duration");
  (match Span.duration_us parent with
  | Some d -> check (Alcotest.float 1e-9) "parent spans both hops" 12.0 d
  | None -> Alcotest.fail "finished span has a duration");
  (* ring holds both, oldest (first finished) first *)
  match Span.finished tr with
  | [ a; b ] ->
    check string "oldest first" "nvram_commit" (Span.name a);
    check string "then parent" "write" (Span.name b)
  | l -> Alcotest.failf "expected 2 finished spans, got %d" (List.length l)

let test_span_ring_eviction () =
  let clock = Clock.create () in
  let tr = Span.create_tracer ~capacity:4 ~clock () in
  for i = 1 to 10 do
    Span.finish (Span.start tr (Printf.sprintf "s%d" i))
  done;
  let names = List.map Span.name (Span.finished tr) in
  check (Alcotest.list string) "newest 4 survive, oldest first"
    [ "s7"; "s8"; "s9"; "s10" ] names;
  check int "evictions counted" 6 (Span.dropped tr);
  check int "drain empties" 4 (List.length (Span.drain tr));
  check int "ring empty after drain" 0 (List.length (Span.finished tr))

let test_span_sink_and_double_finish () =
  let clock = Clock.create () in
  let tr = Span.create_tracer ~clock () in
  let seen = ref [] in
  Span.set_sink tr (Some (fun s -> seen := Span.name s :: !seen));
  let s = Span.start tr "once" in
  Span.finish s;
  Span.finish s;
  (* idempotent: no double entry in ring or sink *)
  check int "sink fired once" 1 (List.length !seen);
  check int "ring holds one" 1 (List.length (Span.finished tr))

(* ---------- exporter ---------- *)

(* A tiny structural validator: every line must parse as a single JSON
   object with the shared schema fields. We re-parse with a minimal
   checker rather than a full parser: balanced braces/strings plus
   required keys. *)
let line_is_object line =
  String.length line > 1
  && line.[0] = '{'
  && line.[String.length line - 1] = '}'
  (* no raw newline inside: one object per line *)
  && not (String.contains line '\n')

let test_exporter_jsonl () =
  let clock = Clock.create () in
  let reg = Registry.create () in
  let c = Registry.counter reg "ops/total" in
  let h = Registry.histogram reg "lat/us" in
  let tr = Span.create_tracer ~clock () in
  let buf = Buffer.create 256 in
  let ex =
    Export.create ~interval_us:1000.0 ~array_id:"arrayX" ~tracer:tr ~clock ~registry:reg
      ~sink:(Export.buffer_sink buf) ()
  in
  Registry.add c 3;
  Histogram.record h 42.0;
  Span.finish (Span.start tr "hop");
  Export.start ex;
  Clock.run_until clock 3500.0;
  Export.stop ex;
  Clock.run clock;
  let lines =
    String.split_on_char '\n' (Buffer.contents buf) |> List.filter (fun l -> l <> "")
  in
  (* 3 ticks in 3500us at 1000us cadence + 1 span line *)
  check bool "several lines" true (List.length lines >= 3);
  check int "emitted counts lines" (List.length lines) (Export.emitted ex);
  List.iter
    (fun line ->
      check bool "one JSON object per line" true (line_is_object line);
      check bool "kind field" true
        (String.length line > 8 && String.sub line 0 8 = {|{"kind":|});
      check bool "array id present" true
        (let re = {|"array":"arrayX"|} in
         let rec find i =
           if i + String.length re > String.length line then false
           else String.sub line i (String.length re) = re || find (i + 1)
         in
         find 0))
    lines;
  check bool "a span line was emitted" true
    (List.exists
       (fun l -> String.length l > 16 && String.sub l 0 15 = {|{"kind":"span",|})
       lines)

let test_json_encoding () =
  check string "escaping"
    {|{"s":"a\"b\\c\nd","n":null,"inf":null,"t":true,"arr":[1,2.5]}|}
    (Json.to_string
       (Json.Obj
          [
            ("s", Json.Str "a\"b\\c\nd");
            ("n", Json.Null);
            ("inf", Json.Float infinity);
            ("t", Json.Bool true);
            ("arr", Json.Arr [ Json.Int 1; Json.Float 2.5 ]);
          ]))

(* ---------- the instrumented array ---------- *)

let await clock f =
  let r = ref None in
  f (fun x -> r := Some x);
  Clock.run clock;
  Option.get !r

let test_array_stats_match_registry () =
  let module Fa = Purity_core.Flash_array in
  let clock = Clock.create () in
  let a = Fa.create ~clock () in
  (match Fa.create_volume a "v" ~blocks:4096 with Ok () -> () | Error _ -> assert false);
  let data = String.init (64 * 512) (fun i -> Char.chr (i land 0xff)) in
  for i = 0 to 7 do
    match await clock (Fa.write a ~volume:"v" ~block:(i * 64) data) with
    | Ok () -> ()
    | Error _ -> assert false
  done;
  (match await clock (Fa.read a ~volume:"v" ~block:0 ~nblocks:64) with
  | Ok got -> check string "roundtrip" data got
  | Error _ -> assert false);
  let s = Fa.stats a in
  let snap = Registry.snapshot (Fa.telemetry a) in
  let reg_int key =
    match Registry.find snap key with
    | Some (Registry.Int n) -> n
    | _ -> Alcotest.failf "missing int metric %s" key
  in
  check int "app_writes agree" s.Fa.app_writes (reg_int "write_path/app_writes");
  check int "logical bytes agree" s.Fa.logical_bytes_written
    (reg_int "write_path/logical_bytes");
  check int "stored bytes agree" s.Fa.stored_bytes_written
    (reg_int "write_path/stored_bytes");
  check int "app_reads derived" s.Fa.app_reads (reg_int "array/app_reads");
  check int "dedup agree" s.Fa.dedup_blocks (reg_int "dedup/inline_blocks");
  (* per-drive metrics exist for the whole shelf *)
  for d = 0 to 10 do
    check bool
      (Printf.sprintf "drive %d wear metric" d)
      true
      (Registry.mem (Fa.telemetry a) (Printf.sprintf "ssd/drive%d/wear_ratio" d))
  done;
  (* latency histograms flow into the registry *)
  (match Registry.find snap "write_path/latency_us" with
  | Some (Registry.Hist hs) -> check int "write samples" 8 hs.Registry.h_count
  | _ -> Alcotest.fail "write latency histogram missing");
  (* the multi-hop write trace is reconstructable: spans exist with
     correct parentage *)
  let spans = Span.finished (Fa.tracer a) in
  let by_name n = List.filter (fun s -> Span.name s = n) spans in
  check bool "write spans" true (List.length (by_name "write") >= 8);
  check bool "commit spans" true (List.length (by_name "nvram_commit") >= 8);
  let commit = List.hd (by_name "nvram_commit") in
  check bool "commit parented under a write" true
    (match Span.parent_id commit with
    | Some pid -> List.exists (fun s -> Span.id s = pid) (by_name "write")
    | None -> false)

let test_metadata_hotpath_counters () =
  (* smoke: after a mixed write/read workload with flushed patches, the
     metadata fast-path counters must all have moved — probes attempted,
     fences/blooms actually skipping work, and the mapping cache both
     missing (cold) and hitting (warm re-read) *)
  let module Fa = Purity_core.Flash_array in
  let clock = Clock.create () in
  let cfg = { Fa.default_config with Fa.memtable_flush = 64 } in
  let a = Fa.create ~config:cfg ~clock () in
  (match Fa.create_volume a "v" ~blocks:8192 with Ok () -> () | Error _ -> assert false);
  let data = String.init (64 * 512) (fun i -> Char.chr (i land 0xff)) in
  for i = 0 to 7 do
    match await clock (Fa.write a ~volume:"v" ~block:(i * 64) data) with
    | Ok () -> ()
    | Error _ -> assert false
  done;
  (* cold read (cache misses), warm re-read (cache hits), and a thin
     never-written block far above the written range (fence skip) *)
  ignore (await clock (Fa.read a ~volume:"v" ~block:0 ~nblocks:64));
  ignore (await clock (Fa.read a ~volume:"v" ~block:0 ~nblocks:64));
  ignore (await clock (Fa.read a ~volume:"v" ~block:8000 ~nblocks:8));
  let snap = Registry.snapshot (Fa.telemetry a) in
  let reg_int key =
    match Registry.find snap key with
    | Some (Registry.Int n) -> n
    | _ -> Alcotest.failf "missing int metric %s" key
  in
  check bool "patch probes attempted" true (reg_int "pyramid/blocks_probes" > 0);
  check bool "fences/blooms skipped work" true
    (reg_int "pyramid/blocks_fence_skips" + reg_int "pyramid/blocks_bloom_skips" > 0);
  check bool "mapping cache missed cold" true (reg_int "read_path/map_cache_misses" > 0);
  check bool "mapping cache hit warm" true (reg_int "read_path/map_cache_hits" > 0);
  check bool "mapping cache populated" true (reg_int "read_path/map_cache_entries" > 0)

let test_kernel_counters () =
  (* smoke: a mixed write/read workload must move the data-plane kernel
     counters through the registry bridge — every stored byte is
     fingerprinted, compressed, CRC-framed and RS-encoded, and reads pull
     the same bytes back through CRC + decompress. *)
  let module Fa = Purity_core.Flash_array in
  Purity_util.Kernel_stats.reset ();
  let clock = Clock.create () in
  let a = Fa.create ~clock () in
  (match Fa.create_volume a "v" ~blocks:4096 with Ok () -> () | Error _ -> assert false);
  let data =
    String.init (64 * 512)
      (fun i -> Char.chr (if i land 7 = 0 then i land 0xff else 0x20))
  in
  for i = 0 to 3 do
    match await clock (Fa.write a ~volume:"v" ~block:(i * 64) data) with
    | Ok () -> ()
    | Error _ -> assert false
  done;
  (* sealing the open segio forces the RS parity path (gf + rs cells) *)
  ignore (await clock (fun k -> Fa.flush a k));
  ignore (await clock (Fa.read a ~volume:"v" ~block:0 ~nblocks:64));
  let snap = Registry.snapshot (Fa.telemetry a) in
  let reg_int key =
    match Registry.find snap key with
    | Some (Registry.Int n) -> n
    | _ -> Alcotest.failf "missing int metric %s" key
  in
  List.iter
    (fun k ->
      check bool (k ^ " bytes moved") true (reg_int ("kernels/" ^ k ^ "_bytes") > 0);
      check bool (k ^ " calls moved") true (reg_int ("kernels/" ^ k ^ "_calls") > 0);
      (* ns only accumulates under an installed clock; here just present *)
      check bool (k ^ " ns exported") true (reg_int ("kernels/" ^ k ^ "_ns") >= 0))
    [ "crc"; "fingerprint"; "lz_compress"; "lz_decompress"; "gf"; "rs" ]

let test_failover_resets_registry () =
  let module Fa = Purity_core.Flash_array in
  let clock = Clock.create () in
  let a = Fa.create ~clock () in
  (match Fa.create_volume a "v" ~blocks:4096 with Ok () -> () | Error _ -> assert false);
  let data = String.make (64 * 512) 'x' in
  (match await clock (Fa.write a ~volume:"v" ~block:0 data) with
  | Ok () -> ()
  | Error _ -> assert false);
  ignore (await clock (Fa.read a ~volume:"v" ~block:0 ~nblocks:1));
  let before = Fa.telemetry a in
  ignore (await clock (fun k -> Fa.failover a k));
  let after = Fa.telemetry a in
  check bool "fresh registry per controller" true (before != after);
  let snap = Registry.snapshot after in
  (match Registry.find snap "write_path/app_writes" with
  | Some (Registry.Int 0) -> ()
  | _ -> Alcotest.fail "path counters reset at failover");
  (* array-lifetime levels were re-derived over the new state *)
  match Registry.find snap "array/app_reads" with
  | Some (Registry.Int n) -> check int "app_reads persists" 1 n
  | _ -> Alcotest.fail "array metrics re-registered after failover"

let () =
  Alcotest.run "telemetry"
    [
      ( "registry",
        [
          Alcotest.test_case "counters" `Quick test_registry_counters;
          Alcotest.test_case "gauges" `Quick test_registry_gauges;
          Alcotest.test_case "duplicate family clash" `Quick
            test_registry_duplicate_family_clash;
          Alcotest.test_case "keys and mem" `Quick test_registry_keys_and_mem;
          Alcotest.test_case "derived metrics" `Quick test_registry_derived;
          Alcotest.test_case "snapshot diff" `Quick test_snapshot_diff;
          Alcotest.test_case "filter prefix" `Quick test_filter_prefix;
          Alcotest.test_case "reset" `Quick test_reset;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "to_buckets" `Quick test_histogram_to_buckets;
          Alcotest.test_case "quantiles" `Quick test_histogram_quantiles;
        ] );
      ( "span",
        [
          Alcotest.test_case "parentage" `Quick test_span_parentage;
          Alcotest.test_case "ring eviction" `Quick test_span_ring_eviction;
          Alcotest.test_case "sink + idempotent finish" `Quick
            test_span_sink_and_double_finish;
        ] );
      ( "export",
        [
          Alcotest.test_case "JSONL schema" `Quick test_exporter_jsonl;
          Alcotest.test_case "JSON encoding" `Quick test_json_encoding;
        ] );
      ( "array",
        [
          Alcotest.test_case "stats match registry" `Quick
            test_array_stats_match_registry;
          Alcotest.test_case "metadata hot-path counters" `Quick
            test_metadata_hotpath_counters;
          Alcotest.test_case "kernel counters" `Quick test_kernel_counters;
          Alcotest.test_case "failover resets registry" `Quick
            test_failover_resets_registry;
        ] );
    ]

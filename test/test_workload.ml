module Clock = Purity_sim.Clock
module Fa = Purity_core.Flash_array
module Wl = Purity_workload.Workload
module Dg = Purity_workload.Datagen
module Lz = Purity_compress.Lz
module Disk = Purity_baseline.Disk_array
module Scaleout = Purity_baseline.Scaleout
module Fm = Purity_baseline.Five_minute
module Rb = Purity_baseline.Rollback

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

module Rng = Purity_util.Rng

(* The generators here take scalar seeds; [seeded] makes a failing test
   print the seed it ran under so the run can be reproduced. *)
let seeded seed f = Rng.with_seed_report ~seed (fun _ -> f ())

(* ---------- Datagen ---------- *)

let dg = Dg.create ~seed:77L

let test_random_incompressible () =
  seeded 77L (fun () ->
    let s = Dg.random dg 8192 in
    check bool "ratio ~1" true (Lz.ratio s < 1.2))

let test_compressible_hits_target () =
  seeded 77L (fun () ->
    let s = Dg.compressible dg 16384 ~target_ratio:4.0 in
    let r = Lz.ratio s in
    check bool (Printf.sprintf "ratio %.1f in band" r) true (r > 2.0 && r < 8.0))

let test_rdbms_page_band () =
  seeded 77L (fun () ->
    let s = Dg.rdbms_page dg 16384 in
    let r = Lz.ratio s in
    check bool (Printf.sprintf "rdbms ratio %.1f in 3-8x" r) true (r >= 2.5 && r <= 10.0))

let test_document_band () =
  seeded 77L (fun () ->
    let s = Dg.document dg 16384 in
    let r = Lz.ratio s in
    check bool (Printf.sprintf "docstore ratio %.1f ~10x" r) true (r >= 5.0))

let test_vm_images_share_blocks () =
  seeded 77L (fun () ->
    let a = Dg.vm_image dg ~blocks:128 in
    let b = Dg.vm_image dg ~blocks:128 in
    (* count identical 512B blocks at the same offsets across two images *)
    let same = ref 0 in
    for i = 0 to 127 do
      if String.sub a (i * 512) 512 = String.sub b (i * 512) 512 then incr same
    done;
    check bool (Printf.sprintf "%d/128 shared" !same) true (!same > 64))

(* ---------- Workload runner ---------- *)

let small_config =
  {
    Fa.default_config with
    Fa.drives = 6;
    k = 3;
    m = 2;
    write_unit = 8 * 1024;
    drive_config =
      {
        Purity_ssd.Drive.default_config with
        Purity_ssd.Drive.au_size = 64 * 1024 + 4096;
        num_aus = 512;
        dies = 4;
      };
    memtable_flush = 1_000_000;
  }

let run_workload wl_of ~ops =
  let clock = Clock.create () in
  let a = Fa.create ~config:small_config ~clock () in
  let volumes = [ ("wl0", 4096); ("wl1", 4096) ] in
  Wl.provision a ~volumes;
  let wl = wl_of volumes in
  let result = ref None in
  Wl.run a wl ~ops ~concurrency:8 (fun r -> result := Some r);
  Clock.run clock;
  (a, Option.get !result)

let test_uniform_completes_all_ops () =
  seeded 1L (fun () ->
    let _a, r =
      run_workload (fun volumes -> Wl.uniform ~seed:1L ~volumes ~read_fraction:0.5 ~io_blocks:64 ())
        ~ops:200
    in
    check int "all ops" 200 r.Wl.ops;
    check int "no errors" 0 r.Wl.errors;
    check int "split" 200 (r.Wl.read_ops + r.Wl.write_ops);
    check bool "simulated time advanced" true (r.Wl.elapsed_us > 0.0);
    check bool "iops computed" true (r.Wl.iops > 0.0))

let test_oltp_mix () =
  seeded 2L (fun () ->
    let _a, r = run_workload (fun volumes -> Wl.oltp ~seed:2L ~volumes ()) ~ops:400 in
    check int "no errors" 0 r.Wl.errors;
    let read_frac = float_of_int r.Wl.read_ops /. float_of_int r.Wl.ops in
    check bool (Printf.sprintf "read fraction %.2f ~0.7" read_frac) true
      (read_frac > 0.6 && read_frac < 0.8))

let test_oltp_reduces () =
  seeded 3L (fun () ->
    let a, _r = run_workload (fun volumes -> Wl.oltp ~seed:3L ~volumes ()) ~ops:400 in
    let s = Fa.stats a in
    if s.Fa.logical_bytes_written > 0 then
      check bool "rdbms data compresses >2x" true
        (s.Fa.stored_bytes_written * 2 < s.Fa.logical_bytes_written))

let test_vdi_dedups () =
  seeded 9L (fun () ->
    let clock = Clock.create () in
    let a = Fa.create ~config:small_config ~clock () in
    let volumes = [ ("desk0", 4096); ("desk1", 4096); ("desk2", 4096) ] in
    Wl.provision a ~volumes;
    let datagen = Dg.create ~seed:9L in
    let wl = Wl.vdi ~seed:9L ~volumes ~datagen () in
    let result = ref None in
    Wl.run a wl ~ops:300 ~concurrency:4 (fun r -> result := Some r);
    Clock.run clock;
    let r = Option.get !result in
    check int "no errors" 0 r.Wl.errors;
    check bool "vdi writes deduplicate" true ((Fa.stats a).Fa.dedup_blocks > 0))

(* ---------- Disk array baseline ---------- *)

let test_disk_read_latency_ms () =
  seeded 4L (fun () ->
    let clock = Clock.create () in
    let d = Disk.create ~clock ~seed:4L () in
    let done_ = ref 0 in
    for _ = 1 to 200 do
      Disk.read d ~bytes:32768 (fun () -> incr done_)
    done;
    Clock.run clock;
    check int "all reads" 200 !done_;
    let p50 = Purity_util.Histogram.percentile (Disk.read_lat d) 50.0 in
    (* the paper's Table 1: ~5 ms disk latency *)
    check bool (Printf.sprintf "p50 %.0f us in ms range" p50) true (p50 > 2000.0 && p50 < 15000.0))

let test_disk_writes_cached_then_stall () =
  seeded 5L (fun () ->
    let clock = Clock.create () in
    let d = Disk.create ~clock ~seed:5L () in
    (* first writes are RAM-speed *)
    Disk.write d ~bytes:32768 (fun () -> ());
    Clock.run clock;
    let fast = Purity_util.Histogram.max_value (Disk.write_lat d) in
    check bool "cached write fast" true (fast < 1000.0);
    (* sustained flood eventually exceeds destage bandwidth *)
    for _ = 1 to 200_000 do
      Disk.write d ~bytes:32768 (fun () -> ())
    done;
    Clock.run clock;
    let worst = Purity_util.Histogram.max_value (Disk.write_lat d) in
    check bool "flooded writes stall" true (worst > 10.0 *. fast))

(* ---------- Scale-out model ---------- *)

let test_scaleout_ratios_match_paper () =
  let rows = Scaleout.table () in
  check int "four deployments" 4 (List.length rows);
  List.iter
    (fun r ->
      (* the paper's estimate: 100-250:1 consolidation ratios *)
      check bool
        (Printf.sprintf "%s ratio %.0f in band" r.Scaleout.deployment.Scaleout.service
           r.Scaleout.nodes_per_array)
        true
        (r.Scaleout.nodes_per_array >= 75.0 && r.Scaleout.nodes_per_array <= 300.0))
    rows;
  (* PNUTS: 1.6M op/s / 200k = 8 arrays, 1000 nodes -> 125:1 *)
  let pnuts = List.hd rows in
  check (Alcotest.float 0.01) "pnuts arrays" 8.0 pnuts.Scaleout.arrays_needed

(* ---------- Five-minute rule ---------- *)

let test_five_minute_shapes () =
  let obj = 55 * 1024 in
  let dimm = Fm.ecc_dimm in
  (* hot data: RAM wins against everything *)
  List.iter
    (fun tier ->
      check bool (tier.Fm.name ^ " loses for 1s data") true
        (Fm.relative_cost tier ~baseline:dimm ~object_bytes:obj ~access_interval_s:1.0 > 1.0))
    [ Fm.purity ~reduction:1.0; Fm.purity ~reduction:10.0; Fm.hard_disk ];
  (* cold data: reduced flash is much cheaper than RAM *)
  check bool "cold 10x flash ≪ RAM" true
    (Fm.relative_cost (Fm.purity ~reduction:10.0) ~baseline:dimm ~object_bytes:obj
       ~access_interval_s:86400.0
    < 0.2)

let test_five_minute_crossovers () =
  let obj = 55 * 1024 in
  let cross tier = Fm.crossover_interval_s tier ~baseline:Fm.ecc_dimm ~object_bytes:obj in
  let c10 = Option.get (cross (Fm.purity ~reduction:10.0)) in
  let c4 = Option.get (cross (Fm.purity ~reduction:4.0)) in
  let c1 = Option.get (cross (Fm.purity ~reduction:1.0)) in
  (* paper's rules of thumb: with reduction, the break-even is minutes to
     half an hour; ordering must hold: more reduction -> earlier *)
  check bool "ordering" true (c10 < c4 && c4 < c1);
  check bool (Printf.sprintf "10x crossover %.0fs under 30min" c10) true (c10 < 1800.0);
  check bool (Printf.sprintf "4x crossover %.0fs under 1h" c4) true (c4 < 3600.0)

let test_five_minute_reduction_monotone () =
  let obj = 55 * 1024 in
  let at tier = Fm.relative_cost tier ~baseline:Fm.ecc_dimm ~object_bytes:obj ~access_interval_s:3600.0 in
  check bool "more reduction = cheaper" true
    (at (Fm.purity ~reduction:10.0) < at (Fm.purity ~reduction:4.0)
    && at (Fm.purity ~reduction:4.0) < at (Fm.purity ~reduction:1.0))

let test_figure7_series_shape () =
  let series = Fm.figure7_series () in
  check int "five curves" 5 (List.length series);
  List.iter
    (fun (_, points) ->
      (* relative cost is non-increasing in access interval *)
      let rec mono = function
        | (_, a) :: ((_, b) :: _ as rest) -> a >= b -. 1e-9 && mono rest
        | _ -> true
      in
      check bool "monotone curves" true (mono points))
    series

(* ---------- Rollback model (5.2.1) ---------- *)

let test_rollback_monotone_in_latency () =
  let p = Rb.default_params in
  let probs = List.map snd (Rb.series p) in
  let rec mono = function
    | a :: (b :: _ as rest) -> a <= b && mono rest
    | _ -> true
  in
  check bool "monotone" true (mono probs);
  List.iter (fun pr -> check bool "valid probability" true (pr >= 0.0 && pr <= 1.0)) probs

let test_rollback_superlinear () =
  (* 10x latency improvement must buy at least 10x fewer rollbacks *)
  let p = Rb.default_params in
  let imp = Rb.improvement p ~disk_latency_s:0.005 ~flash_latency_s:0.0005 in
  check bool (Printf.sprintf "improvement %.1fx >= 10x" imp) true (imp >= 10.0)

let test_rollback_zero_latency_floor () =
  let p = Rb.default_params in
  let pr = Rb.rollback_probability p ~storage_latency_s:0.0 in
  (* CPU-only hold time still conflicts occasionally, but rarely *)
  check bool "tiny but positive" true (pr > 0.0 && pr < 0.01)

let () =
  Alcotest.run "workload+baseline"
    [
      ( "datagen",
        [
          Alcotest.test_case "random incompressible" `Quick test_random_incompressible;
          Alcotest.test_case "compressible target" `Quick test_compressible_hits_target;
          Alcotest.test_case "rdbms band" `Quick test_rdbms_page_band;
          Alcotest.test_case "document band" `Quick test_document_band;
          Alcotest.test_case "vm images share" `Quick test_vm_images_share_blocks;
        ] );
      ( "runner",
        [
          Alcotest.test_case "uniform completes" `Quick test_uniform_completes_all_ops;
          Alcotest.test_case "oltp mix" `Quick test_oltp_mix;
          Alcotest.test_case "oltp reduces" `Quick test_oltp_reduces;
          Alcotest.test_case "vdi dedups" `Quick test_vdi_dedups;
        ] );
      ( "disk_array",
        [
          Alcotest.test_case "read latency ms-class" `Quick test_disk_read_latency_ms;
          Alcotest.test_case "write cache then stall" `Quick test_disk_writes_cached_then_stall;
        ] );
      ( "scaleout",
        [ Alcotest.test_case "paper ratios" `Quick test_scaleout_ratios_match_paper ] );
      ( "five_minute",
        [
          Alcotest.test_case "shapes" `Quick test_five_minute_shapes;
          Alcotest.test_case "crossovers" `Quick test_five_minute_crossovers;
          Alcotest.test_case "reduction monotone" `Quick test_five_minute_reduction_monotone;
          Alcotest.test_case "figure7 series" `Quick test_figure7_series_shape;
        ] );
      ( "rollback",
        [
          Alcotest.test_case "monotone in latency" `Quick test_rollback_monotone_in_latency;
          Alcotest.test_case "superlinear improvement" `Quick test_rollback_superlinear;
          Alcotest.test_case "zero-latency floor" `Quick test_rollback_zero_latency_floor;
        ] );
    ]

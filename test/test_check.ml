(* Tests for purity.check itself: the checker must catch the violations
   it exists to catch. The reference model is fed deliberately wrong
   observations (a lost write, wrong bytes, a thawed snapshot); the
   shrinker is driven by a synthetic failure predicate and must converge
   to the minimal trace; and a deliberately planted recovery bug —
   skipping NVRAM replay — must be caught by the same smoke sweep that
   gates tier-1, with a reproducing seed and a shrunk trace. *)

module Model = Purity_check.Model
module Plan = Purity_check.Plan
module Runner = Purity_check.Runner
module Recovery = Purity_core.Recovery

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let bs = 512

let fresh_model () =
  let m = Model.create ~seed:7L ~block_size:bs () in
  Model.create_volume m "v" ~blocks:64;
  m

let expect_violation what = function
  | Error (_ : string) -> ()
  | Ok () -> Alcotest.failf "model failed to detect %s" what

let expect_ok what = function
  | Ok () -> ()
  | Error msg -> Alcotest.failf "model rejected %s: %s" what msg

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* ---------- the model detects planted violations ---------- *)

let test_detects_lost_write () =
  let m = fresh_model () in
  Model.write m ~view:"v" ~block:0 ~wid:1 ~nblocks:4 ~acked:true;
  (* the array "loses" the acked write and serves zeros *)
  expect_violation "a lost write"
    (Model.check_read m ~view:"v" ~block:0 ~nblocks:4 (String.make (4 * bs) '\000'));
  (* whereas the actual bytes pass *)
  expect_ok "the write's own bytes"
    (Model.check_read m ~view:"v" ~block:0 ~nblocks:4 (Model.payload m ~wid:1 ~nblocks:4))

let test_detects_wrong_bytes () =
  let m = fresh_model () in
  Model.write m ~view:"v" ~block:8 ~wid:3 ~nblocks:2 ~acked:true;
  (* bytes of a different write: must be refused and named in the report *)
  match
    Model.check_read m ~view:"v" ~block:8 ~nblocks:2 (Model.payload m ~wid:4 ~nblocks:2)
  with
  | Ok () -> Alcotest.fail "model accepted another write's bytes"
  | Error msg ->
    check bool
      (Printf.sprintf "report names the foreign write (%s)" msg)
      true (contains msg "write#4")

let test_detects_thawed_snapshot () =
  let m = fresh_model () in
  Model.write m ~view:"v" ~block:0 ~wid:1 ~nblocks:4 ~acked:true;
  Model.snapshot m ~volume:"v" ~snap:"s";
  Model.write m ~view:"v" ~block:0 ~wid:2 ~nblocks:4 ~acked:true;
  (* the volume moved on... *)
  expect_ok "the volume's new bytes"
    (Model.check_read m ~view:"v" ~block:0 ~nblocks:4 (Model.payload m ~wid:2 ~nblocks:4));
  (* ...but the snapshot serving the new bytes means it thawed *)
  expect_violation "a thawed snapshot"
    (Model.check_read m ~view:"s" ~block:0 ~nblocks:4 (Model.payload m ~wid:2 ~nblocks:4));
  expect_ok "the frozen image"
    (Model.check_read m ~view:"s" ~block:0 ~nblocks:4 (Model.payload m ~wid:1 ~nblocks:4))

let test_ambiguity_collapses_on_first_read () =
  (* an acked-but-not-durable write whose NVRAM record was lost becomes
     ambiguous at the next crash: either outcome is acceptable once, but
     the first observation pins it for good *)
  let m = fresh_model () in
  Model.write m ~view:"v" ~block:0 ~wid:1 ~nblocks:1 ~acked:true;
  Model.nvram_lost m;
  Model.crashed m;
  expect_ok "the reverted outcome"
    (Model.check_read m ~view:"v" ~block:0 ~nblocks:1 (String.make bs '\000'));
  (* the block collapsed to zeros; the write's bytes are no longer valid *)
  expect_violation "a flip-flopping block"
    (Model.check_read m ~view:"v" ~block:0 ~nblocks:1 (Model.payload m ~wid:1 ~nblocks:1))

let test_durable_write_survives_crash () =
  (* after a barrier, neither NVRAM loss nor crash may revert the write *)
  let m = fresh_model () in
  Model.write m ~view:"v" ~block:0 ~wid:1 ~nblocks:1 ~acked:true;
  Model.stabilized m;
  Model.nvram_lost m;
  Model.crashed m;
  expect_violation "a reverted durable write"
    (Model.check_read m ~view:"v" ~block:0 ~nblocks:1 (String.make bs '\000'));
  expect_ok "the durable bytes"
    (Model.check_read m ~view:"v" ~block:0 ~nblocks:1 (Model.payload m ~wid:1 ~nblocks:1))

(* ---------- shrinking ---------- *)

let test_shrink_converges () =
  (* synthetic failure: the scenario "fails" iff both needles are
     present; 38 filler events around them must all be shaved off *)
  let needle1 = Plan.Op (Plan.Write { view = "v"; block = 0; nblocks = 1; wid = 13 }) in
  let needle2 = Plan.Fault Plan.Lose_nvram in
  let filler i = Plan.Op (Plan.Read { view = "v"; block = i; nblocks = 1 }) in
  let events =
    List.init 40 (fun i -> if i = 7 then needle1 else if i = 29 then needle2 else filler i)
  in
  let fails evs =
    if List.mem needle1 evs && List.mem needle2 evs then Some (0, "synthetic") else None
  in
  let trace, (_, violation) = Runner.shrink ~fails events (0, "synthetic") in
  check int "shrunk to the two needles" 2 (List.length trace);
  check bool "needles survive shrinking" true
    (List.mem needle1 trace && List.mem needle2 trace);
  check Alcotest.string "violation carried through" "synthetic" violation

(* ---------- determinism ---------- *)

let test_per_seed_determinism () =
  let plan = Plan.generate 31337L in
  let r1 = Runner.run_plan plan in
  let r2 = Runner.run_plan plan in
  check bool "same plan, same outcome" true (r1 = r2);
  let plan' = Plan.generate 31337L in
  check bool "same seed, same plan" true (plan = plan')

(* ---------- the harness catches a planted recovery bug ---------- *)

let test_planted_bug_is_caught () =
  (* skip NVRAM replay during recovery: acked writes that had not reached
     flushed segments silently vanish at the next crash. The default
     smoke sweep must catch it and produce an actionable report. *)
  Recovery.(chaos.skip_nvram_replay <- true);
  Fun.protect
    ~finally:(fun () -> Recovery.(chaos.skip_nvram_replay <- false))
    (fun () ->
      match Runner.sweep ~shrink_budget:80 ~base:1L ~count:12 () with
      | None -> Alcotest.fail "planted NVRAM-replay bug escaped the smoke sweep"
      | Some r ->
        check bool "trace shrunk below the original plan" true
          (List.length r.Runner.trace < r.Runner.original_events);
        let report = Runner.report_to_string r in
        check bool
          (Printf.sprintf "report names the seed (%Ld)" r.Runner.seed)
          true
          (contains report (Printf.sprintf "seed %Ld" r.Runner.seed)))

(* ---------- smoke sweep (tier-1 gate) ---------- *)

let test_smoke_sweep () =
  (* ~50 random scenarios on every `dune runtest`; the extended sweep
     lives behind `make torture` *)
  match Runner.sweep ~base:101L ~count:50 () with
  | None -> ()
  | Some r -> Alcotest.failf "%s" (Runner.report_to_string r)

let () =
  Alcotest.run "check"
    [
      ( "model-detects",
        [
          Alcotest.test_case "lost write" `Quick test_detects_lost_write;
          Alcotest.test_case "wrong bytes" `Quick test_detects_wrong_bytes;
          Alcotest.test_case "thawed snapshot" `Quick test_detects_thawed_snapshot;
          Alcotest.test_case "ambiguity collapses once" `Quick
            test_ambiguity_collapses_on_first_read;
          Alcotest.test_case "durable writes stay put" `Quick
            test_durable_write_survives_crash;
        ] );
      ( "machinery",
        [
          Alcotest.test_case "shrinking converges" `Quick test_shrink_converges;
          Alcotest.test_case "per-seed determinism" `Quick test_per_seed_determinism;
          Alcotest.test_case "planted recovery bug is caught" `Quick
            test_planted_bug_is_caught;
        ] );
      ("smoke", [ Alcotest.test_case "50-scenario sweep" `Slow test_smoke_sweep ]);
    ]

(* A waiver with nothing to waive: purity.lint must report it stale. *)
let[@purity.lint.allow "determinism: nothing here reads a clock"] add a b =
  a + b

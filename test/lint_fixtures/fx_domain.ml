(* Planted cross-domain shared-mutable-state violations: line numbers are
   asserted by test_lint.ml — keep the banned calls on lines 3 and 5. *)
let counter = Atomic.make 0

let spawn f = Domain.spawn f

(* Pure chunk arithmetic over ints is allowed: must NOT fire. *)
let chunk ~lanes ~tasks lane = (lane * (tasks / lanes), tasks / lanes)

(* Planted determinism violations: line numbers are asserted by
   test_lint.ml — keep the banned calls on lines 3 and 5. *)
let wall () = Unix.gettimeofday ()

let dice () = Random.int 6

(* Seeded state is allowed: must NOT fire. *)
let ok () = Random.State.int (Random.State.make [| 42 |]) 6

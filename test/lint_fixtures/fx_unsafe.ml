(* Planted unsafe access in a module the test config does NOT audit:
   the unsafe_get on line 3 must fire. *)
let first b = Bytes.unsafe_get b 0

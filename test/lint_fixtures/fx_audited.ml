(* Same unsafe access as fx_unsafe.ml, but the test config lists this
   basename as audited — nothing may fire here. *)
let first b = Bytes.unsafe_get b 0

(* Planted partial functions; the test config lists this file under
   recovery_files. Lines asserted by test_lint.ml. *)
let head xs = List.hd xs

let got x = Option.get x

(* Total equivalents: must NOT fire. *)
let head_opt xs = match xs with [] -> None | x :: _ -> Some x

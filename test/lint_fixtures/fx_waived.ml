(* A violation identical to fx_unsafe.ml's, but waived in source: the
   finding must be suppressed and counted as waived, with no stale
   error. *)
let[@purity.lint.allow "unsafe: planted fixture, alias never mutated"] first b =
  Bytes.unsafe_get b 0

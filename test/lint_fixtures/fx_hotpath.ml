(* Planted hot-path hygiene violations (the test config marks this
   directory hot). Lines asserted by test_lint.ml. *)
let eq_str (a : string) (b : string) = a = b

let cmp_pair (a : int * int) (b : int * int) = compare a b

let hash_str (s : string) = Hashtbl.hash s

let table : (string, int) Hashtbl.t = Hashtbl.create 16

let probe k = Hashtbl.find_opt table k

(* Immediate keys and immediate compares are fine: must NOT fire. *)
let eq_int (a : int) (b : int) = a = b

let itable : (int, int) Hashtbl.t = Hashtbl.create 16

let iprobe k = Hashtbl.find_opt itable k

(* Whole-system fault injection, on top of purity.check.

   Random scenarios come from [Plan.generate] and are executed by
   [Runner.run_plan] against the reference model; directed scenarios are
   hand-written event lists covering the multi-fault orderings the RAID
   literature calls out: a crash landing mid-GC, a second drive dropping
   out during a rebuild, NVRAM content loss just before (and just
   without) a checkpoint barrier, and latent corruption discovered while
   reading degraded. A lineage property sweep exercises snapshot / clone /
   resize ancestry under crashes, including a resize racing a checkpoint.

   Every scenario is deterministic per seed; failures print the seed and
   a shrunk reproducing trace. *)

module Fa = Purity_core.Flash_array
module Clock = Purity_sim.Clock
module Rng = Purity_util.Rng
module Plan = Purity_check.Plan
module Runner = Purity_check.Runner

let check = Alcotest.check
let bool = Alcotest.bool

(* Run a hand-built plan; on violation, shrink and fail with the full
   report so the trace lands in the test output. *)
let expect_clean ?config (plan : Plan.t) =
  match Runner.run_plan ?config plan with
  | Ok () -> ()
  | Error failure ->
    let fails evs =
      match Runner.run_plan ?config { plan with Plan.events = evs } with
      | Ok () -> None
      | Error f -> Some f
    in
    let trace, (step, violation) =
      Runner.shrink ~fails plan.Plan.events failure
    in
    Alcotest.failf "%s"
      (Runner.report_to_string
         {
           Runner.seed = plan.Plan.seed;
           step;
           violation;
           trace;
           original_events = List.length plan.Plan.events;
         })

let run_seed ?gen seed () =
  match Runner.check_seed ?gen seed with
  | Ok () -> ()
  | Error r -> Alcotest.failf "%s" (Runner.report_to_string r)

(* ---------- directed multi-fault orderings ---------- *)

let v name blocks = Plan.Op (Plan.Create_volume { name; blocks })
let w ?(view = "v0") ~wid block nblocks = Plan.Op (Plan.Write { view; block; nblocks; wid })
let r ?(view = "v0") block nblocks = Plan.Op (Plan.Read { view; block; nblocks })

(* Crash arriving in the middle of a GC pass: relocation half done, the
   covering checkpoint possibly unfinished — no victim may have been
   released without it. *)
let test_crash_during_gc () =
  let overwrite_rounds wid0 =
    List.concat_map
      (fun round -> List.init 6 (fun i -> w ~wid:(wid0 + (round * 6) + i) (i * 16) 16))
      [ 0; 1; 2 ]
  in
  expect_clean
    {
      Plan.seed = 0x6C01L;
      events =
        [ v "v0" 512 ]
        @ overwrite_rounds 1
        @ [ Plan.Op Plan.Flush ]
        @ overwrite_rounds 20
        @ [
            Plan.Timed { delay_us = 500.0; fault = Plan.Crash Plan.Fast };
            Plan.Op Plan.Gc;
            w ~wid:90 64 16;
            Plan.Timed { delay_us = 900.0; fault = Plan.Crash Plan.Full };
            Plan.Op Plan.Gc;
            r 0 16;
          ];
    }

(* A second drive is pulled while a replaced drive is still rebuilding:
   reads run at the full m=2 degradation until the rebuild completes. *)
let test_pull_during_rebuild () =
  expect_clean
    {
      Plan.seed = 0xB41DL;
      events =
        [ v "v0" 512 ]
        @ List.init 8 (fun i -> w ~wid:(i + 1) (i * 32) 32)
        @ [
            Plan.Op Plan.Flush;
            Plan.Fault (Plan.Replace_drive 2);
            Plan.Timed { delay_us = 800.0; fault = Plan.Pull_drive 5 };
            Plan.Op (Plan.Rebuild 2);
            r 0 16;
            r 240 16;
            Plan.Fault (Plan.Reinsert_drive 5);
            Plan.Fault (Plan.Crash Plan.Fast);
          ];
    }

(* NVRAM content loss: writes acked before the loss whose data had not
   reached flushed segments may revert on the next crash — unless a
   checkpoint barrier lands in between, which makes them durable. *)
let test_nvram_loss_before_checkpoint () =
  expect_clean
    {
      Plan.seed = 0x4EAL;
      events =
        [ v "v0" 512 ]
        @ List.init 6 (fun i -> w ~wid:(i + 1) (i * 16) 16)
        @ [
            Plan.Fault Plan.Lose_nvram;
            w ~wid:10 0 16;
            w ~wid:11 256 16;
            (* barrier: everything above survives the crash below *)
            Plan.Op Plan.Checkpoint;
            w ~wid:12 128 16;
            Plan.Fault (Plan.Crash Plan.Fast);
            r 0 16;
            r 256 16;
          ];
    }

let test_nvram_loss_without_barrier () =
  (* same shape, no checkpoint: the model must accept either outcome for
     the post-loss writes once the crash lands *)
  expect_clean
    {
      Plan.seed = 0x4EBL;
      events =
        [ v "v0" 512 ]
        @ List.init 6 (fun i -> w ~wid:(i + 1) (i * 16) 16)
        @ [
            Plan.Op Plan.Flush;
            Plan.Fault Plan.Lose_nvram;
            w ~wid:10 0 16;
            w ~wid:11 256 16;
            Plan.Fault (Plan.Crash Plan.Full);
            r 0 16;
            r 256 16;
            Plan.Fault (Plan.Crash Plan.Fast);
            r 0 16;
          ];
    }

(* Latent corruption discovered while reading degraded: one drive is
   pulled, a page on a surviving drive is corrupted, and reads must
   reconstruct around both before a scrub repairs the damage. *)
let test_corruption_during_degraded_read () =
  expect_clean
    {
      Plan.seed = 0xC0DEL;
      events =
        [ v "v0" 512 ]
        @ List.init 8 (fun i -> w ~wid:(i + 1) (i * 32) 32)
        @ [
            Plan.Op Plan.Flush;
            Plan.Fault (Plan.Pull_drive 1);
            Plan.Fault (Plan.Corrupt_page { drive = 4; au_rank = 3; page_rank = 7 });
            r 0 16;
            r 96 16;
            r 224 16;
            Plan.Op Plan.Scrub;
            Plan.Fault (Plan.Reinsert_drive 1);
            Plan.Fault (Plan.Crash Plan.Fast);
            r 0 16;
          ];
    }

(* ---------- snapshot / clone / resize lineage ---------- *)

(* Snapshots must stay frozen across overwrites of their parent, clones
   must diverge independently, and all three views must agree with the
   model after crashes. *)
let test_snapshot_clone_lineage_under_crash () =
  expect_clean
    {
      Plan.seed = 0x11AEL;
      events =
        [ v "v0" 256 ]
        @ List.init 4 (fun i -> w ~wid:(i + 1) (i * 64) 64)
        @ [
            Plan.Op (Plan.Snapshot { volume = "v0"; snap = "s0" });
            w ~wid:10 0 64;
            (* clone sees the snapshot image, not the new write *)
            Plan.Op (Plan.Clone { snapshot = "s0"; volume = "v1" });
            w ~view:"v1" ~wid:11 64 64;
            Plan.Fault (Plan.Crash Plan.Fast);
            r ~view:"s0" 0 16;
            r ~view:"v0" 0 16;
            r ~view:"v1" 64 16;
            Plan.Op Plan.Checkpoint;
            Plan.Fault Plan.Lose_nvram;
            Plan.Fault (Plan.Crash Plan.Full);
            r ~view:"s0" 0 16;
            r ~view:"v1" 0 16;
          ];
    }

(* The hard interleaving: a resize whose facts are in flight while a
   crash lands mid-checkpoint. The extended tail must neither vanish
   while the resize is durable nor resurrect stale pre-resize state. *)
let test_resize_racing_checkpoint () =
  expect_clean
    {
      Plan.seed = 0x5122L;
      events =
        [ v "v0" 256 ]
        @ List.init 4 (fun i -> w ~wid:(i + 1) (i * 64) 64)
        @ [
            Plan.Op Plan.Checkpoint;
            Plan.Op (Plan.Resize_volume { name = "v0"; blocks = 384 });
            w ~wid:10 256 64;
            w ~wid:11 320 64;
            Plan.Timed { delay_us = 600.0; fault = Plan.Crash Plan.Full };
            Plan.Op Plan.Checkpoint;
            w ~wid:12 256 64;
            Plan.Fault (Plan.Crash Plan.Fast);
            r 256 16;
            r 320 16;
          ];
    }

(* Property sweep: randomized lineage-heavy plans (snapshot / clone /
   resize / delete churn with crashes and barriers interleaved), the
   runner's final audit checking every surviving view against the model. *)
let lineage_plan seed =
  let rng = Rng.create ~seed in
  let rev = ref [] in
  let emit e = rev := e :: !rev in
  let wid = ref 0 in
  let vols = ref [ ("v0", ref 256) ] in
  let snaps = ref [] in
  let vol_ctr = ref 1 and snap_ctr = ref 0 in
  let pick xs = List.nth xs (Rng.int rng (List.length xs)) in
  let write () =
    let name, blocks = pick !vols in
    incr wid;
    let block = Rng.int rng (!blocks - 16 + 1) in
    emit (Plan.Op (Plan.Write { view = name; block; nblocks = 16; wid = !wid }))
  in
  emit (v "v0" 256);
  write ();
  write ();
  for _ = 1 to 40 do
    match Rng.int rng 100 with
    | n when n < 30 -> write ()
    | n when n < 42 ->
      let all = List.map (fun (n, b) -> (n, !b)) !vols @ !snaps in
      let name, blocks = pick all in
      emit
        (Plan.Op
           (Plan.Read { view = name; block = Rng.int rng (blocks - 16 + 1); nblocks = 16 }))
    | n when n < 54 && List.length !vols + List.length !snaps < 6 ->
      let volume, blocks = pick !vols in
      let snap = Printf.sprintf "s%d" !snap_ctr in
      incr snap_ctr;
      snaps := (snap, !blocks) :: !snaps;
      emit (Plan.Op (Plan.Snapshot { volume; snap }))
    | n when n < 62 && !snaps <> [] && List.length !vols + List.length !snaps < 6 ->
      let snapshot, blocks = pick !snaps in
      let volume = Printf.sprintf "v%d" !vol_ctr in
      incr vol_ctr;
      vols := (volume, ref blocks) :: !vols;
      emit (Plan.Op (Plan.Clone { snapshot; volume }))
    | n when n < 72 ->
      let name, blocks = pick !vols in
      blocks := !blocks + 64;
      emit (Plan.Op (Plan.Resize_volume { name; blocks = !blocks }))
    | n when n < 78 && !snaps <> [] ->
      let s, _ = List.hd !snaps in
      snaps := List.tl !snaps;
      emit (Plan.Op (Plan.Delete_snapshot s))
    | n when n < 86 -> (
      match Rng.int rng 3 with
      | 0 ->
        (* resize-vs-checkpoint race under a timed crash *)
        let name, blocks = pick !vols in
        blocks := !blocks + 64;
        emit (Plan.Op (Plan.Resize_volume { name; blocks = !blocks }));
        emit
          (Plan.Timed
             { delay_us = 200.0 +. Rng.float rng 2000.0; fault = Plan.Crash Plan.Full });
        emit (Plan.Op Plan.Checkpoint)
      | 1 -> emit (Plan.Fault (Plan.Crash Plan.Fast))
      | _ -> emit (Plan.Fault (Plan.Crash Plan.Full)))
    | n when n < 92 -> emit (Plan.Op Plan.Checkpoint)
    | n when n < 96 -> emit (Plan.Op Plan.Flush)
    | _ ->
      emit (Plan.Op Plan.Flush);
      emit (Plan.Fault Plan.Lose_nvram)
  done;
  { Plan.seed; events = List.rev !rev }

let test_lineage_property () =
  for i = 1 to 12 do
    expect_clean (lineage_plan (Int64.of_int (0x2000 + i)))
  done

(* ---------- directed stretched-pod (ActiveCluster) orderings ---------- *)

(* Hand-built Ac_plan traces audited by the two-array model; the runner's
   final audit additionally reads every block of both arrays below the
   front door. *)

module Ac_plan = Purity_check.Ac_plan
module Ac_runner = Purity_check.Ac_runner

let expect_ac_clean (plan : Ac_plan.t) =
  match Ac_runner.run_plan plan with
  | Ok _ -> ()
  | Error failure ->
    let fails evs =
      match Ac_runner.run_plan { plan with Ac_plan.events = evs } with
      | Ok _ -> None
      | Error f -> Some f
    in
    let trace, (step, violation) = Runner.shrink ~fails plan.Ac_plan.events failure in
    Alcotest.failf "%s"
      (Ac_runner.report_to_string
         {
           Ac_runner.seed = plan.Ac_plan.seed;
           step;
           violation;
           vols = plan.Ac_plan.vols;
           trace;
           original_events = List.length plan.Ac_plan.events;
         })

let aw ~side ~wid block nblocks =
  Ac_plan.Op (Ac_plan.Write { side; view = "p0"; block; nblocks; wid })

let ar ~side block nblocks =
  Ac_plan.Op (Ac_plan.Read { side; view = "p0"; block; nblocks })

(* A write acked while one side serves solo behind a partition is a
   durability promise: it must still be there — on BOTH arrays — after
   the failback resync. *)
let test_ac_ack_after_partition () =
  expect_ac_clean
    {
      Ac_plan.seed = 0x3A01L;
      vols = [ ("p0", 128) ];
      events =
        [
          aw ~side:Ac_plan.A ~wid:1 0 8;
          Ac_plan.Fault Ac_plan.Cut_link;
          (* mirror times out, A wins mediation, the ack is solo-era *)
          aw ~side:Ac_plan.A ~wid:2 16 8;
          ar ~side:Ac_plan.A 16 8;
          (* I/O aimed at the fenced side must redirect, not fail *)
          aw ~side:Ac_plan.B ~wid:3 32 8;
          Ac_plan.Fault Ac_plan.Heal_link;
          Ac_plan.Op Ac_plan.Settle;
          (* after resync the loser serves the solo-era writes itself *)
          ar ~side:Ac_plan.B 16 8;
          ar ~side:Ac_plan.B 32 8;
        ];
    }

(* The cut lands inside the mirror round trip: the in-flight write must
   fail over transparently to whichever side mediation picks, and the
   host sees exactly one outcome. *)
let test_ac_write_straddling_failover () =
  expect_ac_clean
    {
      Ac_plan.seed = 0x3A02L;
      vols = [ ("p0", 128) ];
      events =
        [
          aw ~side:Ac_plan.A ~wid:1 0 8;
          Ac_plan.Timed { delay_us = 250.0; fault = Ac_plan.Cut_link };
          aw ~side:Ac_plan.A ~wid:2 32 8;
          aw ~side:Ac_plan.B ~wid:3 64 8;
          Ac_plan.Fault Ac_plan.Heal_link;
          Ac_plan.Op Ac_plan.Settle;
          ar ~side:Ac_plan.A 32 8;
          ar ~side:Ac_plan.B 64 8;
        ];
    }

(* Failback resync: solo-era writes — including an overwrite of a block
   both sides already hold — flow back to the rejoining array, and a
   racing pair resolves to the same winner on both. *)
let test_ac_failback_resync () =
  expect_ac_clean
    {
      Ac_plan.seed = 0x3A03L;
      vols = [ ("p0", 128) ];
      events =
        [
          aw ~side:Ac_plan.A ~wid:1 0 16;
          aw ~side:Ac_plan.B ~wid:2 40 16;
          Ac_plan.Fault Ac_plan.Cut_link;
          aw ~side:Ac_plan.B ~wid:3 80 16;
          aw ~side:Ac_plan.B ~wid:4 0 16;
          Ac_plan.Fault Ac_plan.Heal_link;
          Ac_plan.Op Ac_plan.Settle;
          Ac_plan.Op
            (Ac_plan.Write_racing
               { view = "p0"; block = 8; nblocks = 8; wid_a = 5; wid_b = 6 });
          ar ~side:Ac_plan.A 0 16;
          ar ~side:Ac_plan.A 80 16;
          ar ~side:Ac_plan.B 0 16;
          ar ~side:Ac_plan.B 8 8;
        ];
    }

(* ---------- randomized full-mix scenarios ---------- *)

let test_long_haul () = run_seed ~gen:{ Plan.default_gen with Plan.steps = 220 } 424242L ()

(* ---------- space reclamation (no model needed) ---------- *)

let test_no_crash_heavy_gc () =
  (* overwrite churn with frequent GC: space must keep being reclaimed *)
  let config = Runner.default_config in
  let vol_blocks = 2048 in
  let io_blocks = 16 in
  let clock = Clock.create () in
  let a = Fa.create ~config ~clock () in
  Rng.with_seed_report ~seed:77L (fun rng ->
      (match Fa.create_volume a "v" ~blocks:vol_blocks with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "create");
      let await f =
        let r = ref None in
        f (fun x -> r := Some x);
        Clock.run clock;
        Option.get !r
      in
      for round = 1 to 12 do
        for _ = 1 to 32 do
          let slot = Rng.int rng (vol_blocks / io_blocks) in
          let data = Bytes.to_string (Rng.bytes rng (io_blocks * 512)) in
          ignore (await (Fa.write a ~volume:"v" ~block:(slot * io_blocks) data))
        done;
        if round mod 3 = 0 then
          ignore
            (await (fun k -> Fa.gc ~min_dead_ratio:0.3 ~max_victims:16 a (fun r -> k r)))
      done;
      let s = Fa.stats a in
      check bool "array not leaking space" true
        (s.Fa.physical_bytes_used < s.Fa.physical_capacity / 2))

let () =
  Alcotest.run "crash-consistency"
    [
      ( "directed-orderings",
        [
          Alcotest.test_case "crash during GC" `Quick test_crash_during_gc;
          Alcotest.test_case "drive pull during rebuild" `Quick test_pull_during_rebuild;
          Alcotest.test_case "NVRAM loss before checkpoint" `Quick
            test_nvram_loss_before_checkpoint;
          Alcotest.test_case "NVRAM loss without barrier" `Quick
            test_nvram_loss_without_barrier;
          Alcotest.test_case "corruption during degraded read" `Quick
            test_corruption_during_degraded_read;
        ] );
      ( "lineage",
        [
          Alcotest.test_case "snapshot/clone lineage under crash" `Quick
            test_snapshot_clone_lineage_under_crash;
          Alcotest.test_case "resize racing a checkpoint" `Quick
            test_resize_racing_checkpoint;
          Alcotest.test_case "lineage property sweep" `Quick test_lineage_property;
        ] );
      ( "activecluster-directed",
        [
          Alcotest.test_case "ack after partition survives failback" `Quick
            test_ac_ack_after_partition;
          Alcotest.test_case "write straddling failover" `Quick
            test_ac_write_straddling_failover;
          Alcotest.test_case "failback resync + racing pair" `Quick
            test_ac_failback_resync;
        ] );
      ( "fault-injection",
        [
          Alcotest.test_case "seed 1" `Quick (run_seed 1L);
          Alcotest.test_case "seed 2" `Quick (run_seed 2L);
          Alcotest.test_case "seed 3" `Quick (run_seed 3L);
          Alcotest.test_case "seed 4" `Quick (run_seed 4L);
          Alcotest.test_case "long haul" `Slow test_long_haul;
          Alcotest.test_case "heavy GC churn" `Quick test_no_crash_heavy_gc;
        ] );
    ]

module Clock = Purity_sim.Clock
module Fa = Purity_core.Flash_array
module Recovery = Purity_core.Recovery
module Rng = Purity_util.Rng

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let bs = Fa.block_size

(* Small geometry: 6 drives, 3+2, 64 KiB AUs, 8 KiB write units. *)
let test_config =
  {
    Fa.default_config with
    Fa.drives = 6;
    k = 3;
    m = 2;
    write_unit = 8 * 1024;
    drive_config =
      {
        Purity_ssd.Drive.default_config with
        Purity_ssd.Drive.au_size = 64 * 1024 + 4096;
        num_aus = 256;
        dies = 4;
      };
    memtable_flush = 100_000;
  }

let make_array ?(config = test_config) () =
  let clock = Clock.create () in
  let a = Fa.create ~config ~clock () in
  (clock, a)

let await clock f =
  let result = ref None in
  f (fun r -> result := Some r);
  Clock.run clock;
  match !result with Some r -> r | None -> Alcotest.fail "operation never completed"

let ok = function Ok v -> v | Error _ -> Alcotest.fail "unexpected error"

let write_ok clock a ~volume ~block data =
  match await clock (Fa.write a ~volume ~block data) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "write failed"

let read_ok clock a ~volume ~block ~nblocks =
  match await clock (Fa.read a ~volume ~block ~nblocks) with
  | Ok data -> data
  | Error _ -> Alcotest.fail "read failed"

let rng = Rng.create ~seed:0xC0DEL
let random_data nblocks = Bytes.to_string (Rng.bytes rng (nblocks * bs))

(* compressible but non-trivial data *)
let textish nblocks =
  let unit = "all work and no play makes jack a dull boy. " in
  let need = nblocks * bs in
  let b = Buffer.create need in
  while Buffer.length b < need do
    Buffer.add_string b unit
  done;
  Buffer.sub b 0 need

(* ---------- volume management ---------- *)

let test_volume_lifecycle () =
  let _clock, a = make_array () in
  ok (Fa.create_volume a "db" ~blocks:256);
  check bool "exists" true (Fa.volume_exists a "db");
  (match Fa.create_volume a "db" ~blocks:10 with
  | Error `Exists -> ()
  | _ -> Alcotest.fail "duplicate accepted");
  check (Alcotest.list (Alcotest.triple Alcotest.string Alcotest.bool int)) "list"
    [ ("db", true, 256) ]
    (List.map (fun (n, k, b) -> (n, k = `Volume, b)) (Fa.list_volumes a));
  ok (Fa.delete_volume a "db");
  check bool "gone" false (Fa.volume_exists a "db")

let test_write_read_roundtrip () =
  let clock, a = make_array () in
  ok (Fa.create_volume a "v" ~blocks:256);
  let data = random_data 16 in
  write_ok clock a ~volume:"v" ~block:10 data;
  let got = read_ok clock a ~volume:"v" ~block:10 ~nblocks:16 in
  check bool "data back" true (got = data)

let test_unwritten_blocks_read_zero () =
  let clock, a = make_array () in
  ok (Fa.create_volume a "v" ~blocks:64);
  let got = read_ok clock a ~volume:"v" ~block:0 ~nblocks:8 in
  check bool "zeros" true (got = String.make (8 * bs) '\000')

let test_overwrite_latest_wins () =
  let clock, a = make_array () in
  ok (Fa.create_volume a "v" ~blocks:64);
  write_ok clock a ~volume:"v" ~block:0 (String.make (4 * bs) 'a');
  write_ok clock a ~volume:"v" ~block:0 (String.make (4 * bs) 'b');
  let got = read_ok clock a ~volume:"v" ~block:0 ~nblocks:4 in
  check bool "second write wins" true (got = String.make (4 * bs) 'b')

let test_partial_overwrite () =
  let clock, a = make_array () in
  ok (Fa.create_volume a "v" ~blocks:64);
  let base = random_data 16 in
  write_ok clock a ~volume:"v" ~block:0 base;
  let patch = random_data 2 in
  write_ok clock a ~volume:"v" ~block:5 patch;
  let got = read_ok clock a ~volume:"v" ~block:0 ~nblocks:16 in
  let expect =
    String.sub base 0 (5 * bs) ^ patch ^ String.sub base (7 * bs) (9 * bs)
  in
  check bool "patched view" true (got = expect)

let test_large_write_spans_segments () =
  let clock, a = make_array () in
  ok (Fa.create_volume a "v" ~blocks:4096);
  (* 512 KiB write: many cblocks, several segios at this geometry *)
  let data = random_data 1024 in
  write_ok clock a ~volume:"v" ~block:0 data;
  let got = read_ok clock a ~volume:"v" ~block:0 ~nblocks:1024 in
  check bool "large roundtrip" true (got = data)

let test_write_errors () =
  let clock, a = make_array () in
  ok (Fa.create_volume a "v" ~blocks:16);
  (match await clock (Fa.write a ~volume:"nope" ~block:0 (String.make bs 'x')) with
  | Error `No_such_volume -> ()
  | _ -> Alcotest.fail "missing volume");
  (match await clock (Fa.write a ~volume:"v" ~block:0 "short") with
  | Error `Unaligned -> ()
  | _ -> Alcotest.fail "unaligned accepted");
  (match await clock (Fa.write a ~volume:"v" ~block:15 (String.make (2 * bs) 'x')) with
  | Error `Out_of_range -> ()
  | _ -> Alcotest.fail "overflow accepted");
  match await clock (Fa.read a ~volume:"v" ~block:0 ~nblocks:17) with
  | Error `Out_of_range -> ()
  | _ -> Alcotest.fail "read overflow accepted"

(* ---------- snapshots & clones ---------- *)

let test_snapshot_isolation () =
  let clock, a = make_array () in
  ok (Fa.create_volume a "v" ~blocks:64);
  let original = random_data 8 in
  write_ok clock a ~volume:"v" ~block:0 original;
  ok (Fa.snapshot a ~volume:"v" ~snap:"v@1");
  (* overwrite after snapshot *)
  write_ok clock a ~volume:"v" ~block:0 (String.make (8 * bs) 'n');
  let snap_view = read_ok clock a ~volume:"v@1" ~block:0 ~nblocks:8 in
  let live_view = read_ok clock a ~volume:"v" ~block:0 ~nblocks:8 in
  check bool "snapshot frozen" true (snap_view = original);
  check bool "volume sees new data" true (live_view = String.make (8 * bs) 'n')

let test_snapshot_read_only () =
  let clock, a = make_array () in
  ok (Fa.create_volume a "v" ~blocks:16);
  ok (Fa.snapshot a ~volume:"v" ~snap:"s");
  match await clock (Fa.write a ~volume:"s" ~block:0 (String.make bs 'x')) with
  | Error `Read_only -> ()
  | _ -> Alcotest.fail "snapshot writable"

let test_clone_shares_then_diverges () =
  let clock, a = make_array () in
  ok (Fa.create_volume a "gold" ~blocks:64);
  let image = textish 32 in
  write_ok clock a ~volume:"gold" ~block:0 image;
  ok (Fa.snapshot a ~volume:"gold" ~snap:"gold@1");
  ok (Fa.clone a ~snapshot:"gold@1" ~volume:"vm1");
  (* the clone reads the shared image *)
  let v = read_ok clock a ~volume:"vm1" ~block:0 ~nblocks:32 in
  check bool "clone sees image" true (v = image);
  (* divergence is private *)
  write_ok clock a ~volume:"vm1" ~block:0 (String.make (2 * bs) 'z');
  let gold = read_ok clock a ~volume:"gold" ~block:0 ~nblocks:2 in
  check bool "gold untouched" true (gold = String.sub image 0 (2 * bs))

let test_many_snapshots_chain () =
  let clock, a = make_array () in
  ok (Fa.create_volume a "v" ~blocks:16);
  let versions =
    List.init 5 (fun i ->
        let d = String.make (4 * bs) (Char.chr (Char.code 'a' + i)) in
        write_ok clock a ~volume:"v" ~block:0 d;
        ok (Fa.snapshot a ~volume:"v" ~snap:(Printf.sprintf "v@%d" i));
        d)
  in
  List.iteri
    (fun i d ->
      let got = read_ok clock a ~volume:(Printf.sprintf "v@%d" i) ~block:0 ~nblocks:4 in
      check bool (Printf.sprintf "snapshot %d intact" i) true (got = d))
    versions

let test_delete_snapshot_keeps_volume () =
  let clock, a = make_array () in
  ok (Fa.create_volume a "v" ~blocks:16);
  let data = random_data 4 in
  write_ok clock a ~volume:"v" ~block:0 data;
  ok (Fa.snapshot a ~volume:"v" ~snap:"s");
  ok (Fa.delete_snapshot a "s");
  check bool "snapshot gone" false (Fa.volume_exists a "s");
  let got = read_ok clock a ~volume:"v" ~block:0 ~nblocks:4 in
  check bool "volume data intact" true (got = data)

(* ---------- data reduction ---------- *)

let test_compression_reduces_stored_bytes () =
  let clock, a = make_array () in
  ok (Fa.create_volume a "v" ~blocks:1024);
  write_ok clock a ~volume:"v" ~block:0 (textish 512);
  let s = Fa.stats a in
  check bool "stored << logical" true
    (s.Fa.stored_bytes_written * 3 < s.Fa.logical_bytes_written)

let test_dedup_absorbs_identical_writes () =
  let clock, a = make_array () in
  ok (Fa.create_volume a "v" ~blocks:4096);
  let image = random_data 64 in
  write_ok clock a ~volume:"v" ~block:0 image;
  let stored_after_first = (Fa.stats a).Fa.stored_bytes_written in
  (* the same image at 9 more places (VDI-style) *)
  for i = 1 to 9 do
    write_ok clock a ~volume:"v" ~block:(i * 64) image
  done;
  let s = Fa.stats a in
  check bool "dedup found blocks" true (s.Fa.dedup_blocks >= 9 * 56);
  check bool "stored grew sub-linearly" true
    (s.Fa.stored_bytes_written < 3 * stored_after_first);
  (* and the data is still correct everywhere *)
  for i = 0 to 9 do
    let got = read_ok clock a ~volume:"v" ~block:(i * 64) ~nblocks:64 in
    check bool (Printf.sprintf "copy %d intact" i) true (got = image)
  done

let test_dedup_disabled_config () =
  let clock, a =
    make_array ~config:{ test_config with Fa.inline_dedup = false } ()
  in
  ok (Fa.create_volume a "v" ~blocks:1024);
  let image = random_data 64 in
  write_ok clock a ~volume:"v" ~block:0 image;
  write_ok clock a ~volume:"v" ~block:64 image;
  check int "no dedup" 0 (Fa.stats a).Fa.dedup_blocks

(* ---------- fault tolerance ---------- *)

let test_reads_through_two_drive_failures () =
  let clock, a = make_array () in
  ok (Fa.create_volume a "v" ~blocks:1024);
  let data = random_data 256 in
  write_ok clock a ~volume:"v" ~block:0 data;
  ignore (await clock (fun k -> Fa.flush a (fun () -> k (Ok ()))));
  Fa.pull_drive a 0;
  Fa.pull_drive a 3;
  let got = read_ok clock a ~volume:"v" ~block:0 ~nblocks:256 in
  check bool "all data through double failure" true (got = data)

let test_writes_continue_after_drive_pull () =
  let clock, a = make_array () in
  ok (Fa.create_volume a "v" ~blocks:1024);
  Fa.pull_drive a 2;
  let data = random_data 64 in
  write_ok clock a ~volume:"v" ~block:0 data;
  let got = read_ok clock a ~volume:"v" ~block:0 ~nblocks:64 in
  check bool "degraded write ok" true (got = data)

let test_rebuild_drive () =
  let clock, a = make_array () in
  ok (Fa.create_volume a "v" ~blocks:1024);
  let data = random_data 128 in
  write_ok clock a ~volume:"v" ~block:0 data;
  ignore (await clock (fun k -> Fa.flush a (fun () -> k (Ok ()))));
  Fa.pull_drive a 1;
  let rebuilt = await clock (fun k -> Fa.rebuild_drive a 1 (fun n -> k n)) in
  check bool "segments rebuilt" true (rebuilt > 0);
  (* now pull two MORE drives: data must still be served because nothing
     depends on drive 1 anymore *)
  Fa.pull_drive a 2;
  Fa.pull_drive a 4;
  let got = read_ok clock a ~volume:"v" ~block:0 ~nblocks:128 in
  check bool "redundancy restored" true (got = data)

(* ---------- recovery & failover ---------- *)

let test_failover_preserves_acked_writes () =
  let clock, a = make_array () in
  ok (Fa.create_volume a "v" ~blocks:256);
  let d1 = random_data 32 and d2 = random_data 8 in
  write_ok clock a ~volume:"v" ~block:0 d1;
  write_ok clock a ~volume:"v" ~block:100 d2;
  (* crash with data still in NVRAM/open segio *)
  Fa.crash a;
  (match await clock (Fa.read a ~volume:"v" ~block:0 ~nblocks:1) with
  | Error `Offline -> ()
  | _ -> Alcotest.fail "crashed array served a read");
  let report = await clock (fun k -> Fa.failover a k) in
  check bool "came back" true (Fa.is_online a);
  check bool "not cold" true (not report.Recovery.cold);
  let got1 = read_ok clock a ~volume:"v" ~block:0 ~nblocks:32 in
  let got2 = read_ok clock a ~volume:"v" ~block:100 ~nblocks:8 in
  check bool "write 1 survived" true (got1 = d1);
  check bool "write 2 survived" true (got2 = d2)

let test_failover_after_checkpoint () =
  let clock, a = make_array () in
  ok (Fa.create_volume a "v" ~blocks:1024);
  let d1 = random_data 128 in
  write_ok clock a ~volume:"v" ~block:0 d1;
  ignore (await clock (fun k -> Fa.checkpoint a (fun r -> k r)));
  (* more writes after the checkpoint *)
  let d2 = random_data 16 in
  write_ok clock a ~volume:"v" ~block:512 d2;
  Fa.crash a;
  ignore (await clock (fun k -> Fa.failover a k));
  check bool "pre-checkpoint data" true (read_ok clock a ~volume:"v" ~block:0 ~nblocks:128 = d1);
  check bool "post-checkpoint data" true
    (read_ok clock a ~volume:"v" ~block:512 ~nblocks:16 = d2)

let test_failover_preserves_snapshots_and_volumes () =
  let clock, a = make_array () in
  ok (Fa.create_volume a "v" ~blocks:64);
  let original = random_data 8 in
  write_ok clock a ~volume:"v" ~block:0 original;
  ok (Fa.snapshot a ~volume:"v" ~snap:"v@1");
  write_ok clock a ~volume:"v" ~block:0 (String.make (8 * bs) 'n');
  ignore (await clock (fun k -> Fa.checkpoint a (fun r -> k r)));
  Fa.crash a;
  ignore (await clock (fun k -> Fa.failover a k));
  check bool "volumes restored" true (Fa.volume_exists a "v" && Fa.volume_exists a "v@1");
  let snap_view = read_ok clock a ~volume:"v@1" ~block:0 ~nblocks:8 in
  check bool "snapshot content survived failover" true (snap_view = original)

let test_double_failover () =
  let clock, a = make_array () in
  ok (Fa.create_volume a "v" ~blocks:64);
  let d = random_data 8 in
  write_ok clock a ~volume:"v" ~block:0 d;
  ignore (await clock (fun k -> Fa.failover a k));
  write_ok clock a ~volume:"v" ~block:8 d;
  ignore (await clock (fun k -> Fa.failover a k));
  check bool "both writes alive after two failovers" true
    (read_ok clock a ~volume:"v" ~block:0 ~nblocks:8 = d
    && read_ok clock a ~volume:"v" ~block:8 ~nblocks:8 = d)

let test_frontier_recovery_faster_than_full () =
  let clock, a = make_array () in
  ok (Fa.create_volume a "v" ~blocks:2048);
  write_ok clock a ~volume:"v" ~block:0 (random_data 512);
  ignore (await clock (fun k -> Fa.checkpoint a (fun r -> k r)));
  write_ok clock a ~volume:"v" ~block:1024 (random_data 16);
  Fa.crash a;
  let r_frontier = await clock (fun k -> Fa.failover ~mode:Recovery.Frontier_scan a k) in
  Fa.crash a;
  let r_full = await clock (fun k -> Fa.failover ~mode:Recovery.Full_scan a k) in
  check bool
    (Printf.sprintf "frontier %.0fus vs full %.0fus" r_frontier.Recovery.duration_us
       r_full.Recovery.duration_us)
    true
    (r_frontier.Recovery.duration_us *. 2.0 < r_full.Recovery.duration_us);
  check bool "frontier scanned far fewer headers" true
    (r_frontier.Recovery.headers_scanned * 4 < r_full.Recovery.headers_scanned)

let test_availability_accounting () =
  let clock, a = make_array () in
  ok (Fa.create_volume a "v" ~blocks:64);
  write_ok clock a ~volume:"v" ~block:0 (random_data 8);
  Clock.advance clock 1e7;
  Fa.crash a;
  ignore (await clock (fun k -> Fa.failover a k));
  Clock.advance clock 1e7;
  let s = Fa.stats a in
  check bool "high availability" true (s.Fa.availability > 0.99 && s.Fa.availability <= 1.0)

(* ---------- GC ---------- *)

let test_gc_reclaims_overwritten_space () =
  let clock, a = make_array () in
  ok (Fa.create_volume a "v" ~blocks:2048);
  (* write then overwrite everything, twice: most early segments are dead *)
  for _ = 1 to 3 do
    let d = random_data 1024 in
    write_ok clock a ~volume:"v" ~block:0 d
  done;
  ignore (await clock (fun k -> Fa.flush a (fun () -> k (Ok ()))));
  let used_before = (Fa.stats a).Fa.physical_bytes_used in
  let report = await clock (fun k -> Fa.gc ~min_dead_ratio:0.2 ~max_victims:64 a (fun r -> k r)) in
  check bool "victims found" true (report.Purity_core.Gc.victims <> []);
  let used_after = (Fa.stats a).Fa.physical_bytes_used in
  check bool
    (Printf.sprintf "space reclaimed (%d -> %d)" used_before used_after)
    true (used_after < used_before);
  (* data still correct after GC *)
  let s = Fa.stats a in
  check bool "reduction sane" true (s.Fa.data_reduction > 0.0)

let test_gc_preserves_data () =
  let clock, a = make_array () in
  ok (Fa.create_volume a "v" ~blocks:512);
  let keep = random_data 64 in
  write_ok clock a ~volume:"v" ~block:0 keep;
  (* churn elsewhere to create dead segments *)
  for _ = 1 to 4 do
    write_ok clock a ~volume:"v" ~block:128 (random_data 128)
  done;
  ignore (await clock (fun k -> Fa.flush a (fun () -> k (Ok ()))));
  ignore (await clock (fun k -> Fa.gc ~min_dead_ratio:0.1 ~max_victims:64 a (fun r -> k r)));
  let got = read_ok clock a ~volume:"v" ~block:0 ~nblocks:64 in
  check bool "live data survived GC" true (got = keep)

let test_delete_volume_then_gc_reclaims () =
  let clock, a = make_array () in
  ok (Fa.create_volume a "temp" ~blocks:2048);
  write_ok clock a ~volume:"temp" ~block:0 (random_data 2048);
  ignore (await clock (fun k -> Fa.flush a (fun () -> k (Ok ()))));
  let used_full = (Fa.stats a).Fa.physical_bytes_used in
  ok (Fa.delete_volume a "temp");
  (* elision makes the facts dead; GC reclaims the segments *)
  ignore (await clock (fun k -> Fa.gc ~min_dead_ratio:0.5 ~max_victims:128 a (fun r -> k r)));
  let used_after = (Fa.stats a).Fa.physical_bytes_used in
  (* the volume's data segments come back; a handful of segments of GC /
     checkpoint bookkeeping remain *)
  check bool
    (Printf.sprintf "deleted volume reclaimed (%d -> %d)" used_full used_after)
    true
    (used_after * 2 < used_full)

let test_gc_after_failover () =
  let clock, a = make_array () in
  ok (Fa.create_volume a "v" ~blocks:256);
  for _ = 1 to 3 do
    write_ok clock a ~volume:"v" ~block:0 (random_data 128)
  done;
  ignore (await clock (fun k -> Fa.failover a k));
  ignore (await clock (fun k -> Fa.gc ~min_dead_ratio:0.2 ~max_victims:32 a (fun r -> k r)));
  let s = Fa.stats a in
  check bool "array functional after failover+gc" true (s.Fa.segments_live > 0)

(* ---------- scrub ---------- *)

let test_scrub_clean_array () =
  let clock, a = make_array () in
  ok (Fa.create_volume a "v" ~blocks:256);
  write_ok clock a ~volume:"v" ~block:0 (random_data 128);
  ignore (await clock (fun k -> Fa.flush a (fun () -> k (Ok ()))));
  let r = await clock (fun k -> Fa.scrub a (fun r -> k r)) in
  check bool "segments checked" true (r.Purity_core.Scrub.segments_checked > 0);
  check int "no corruption on fresh flash" 0 r.Purity_core.Scrub.corrupt_members

let test_scrub_repairs_worn_flash () =
  let config =
    {
      test_config with
      Fa.drive_config =
        { test_config.Fa.drive_config with Purity_ssd.Drive.retention_mean_us = 5e8 };
    }
  in
  let clock, a = make_array ~config () in
  ok (Fa.create_volume a "v" ~blocks:512);
  let data = random_data 256 in
  write_ok clock a ~volume:"v" ~block:0 data;
  ignore (await clock (fun k -> Fa.flush a (fun () -> k (Ok ()))));
  (* wear the flash to its rating, then age it enough that a noticeable
     fraction of pages leak but rows remain reconstructable *)
  Array.iter
    (fun d -> Purity_ssd.Drive.wear_to d ~pe:3000)
    (Purity_ssd.Shelf.drives (Fa.shelf a));
  Clock.advance clock 3e7;
  let r = await clock (fun k -> Fa.scrub a (fun r -> k r)) in
  check bool "scrub found corruption" true (r.Purity_core.Scrub.corrupt_members > 0);
  check bool "scrub relocated" true (r.Purity_core.Scrub.segments_relocated > 0);
  (* the data survives because scrub rewrote it before total loss *)
  let got = read_ok clock a ~volume:"v" ~block:0 ~nblocks:256 in
  check bool "data repaired" true (got = data)

(* ---------- data reduction stats ---------- *)

let test_data_reduction_ratio_vdi_like () =
  let clock, a = make_array () in
  ok (Fa.create_volume a "gold" ~blocks:256);
  write_ok clock a ~volume:"gold" ~block:0 (textish 256);
  ok (Fa.snapshot a ~volume:"gold" ~snap:"gold@1");
  for i = 1 to 8 do
    ok (Fa.clone a ~snapshot:"gold@1" ~volume:(Printf.sprintf "vm%d" i))
  done;
  (* clones share everything: provisioned virtual space is ~9x physical *)
  let s = Fa.stats a in
  check bool "provisioning ratio" true
    (s.Fa.provisioned_virtual_bytes > 5 * s.Fa.live_logical_bytes)

(* ---------- read cache & secondary warming (paper 4.3) ---------- *)

let test_cache_hits_speed_up_rereads () =
  let clock, a = make_array () in
  ok (Fa.create_volume a "v" ~blocks:256);
  let d = random_data 64 in
  write_ok clock a ~volume:"v" ~block:0 d;
  ignore (await clock (fun k -> Fa.flush a (fun () -> k (Ok ()))));
  (* first read fills the cache, second hits it *)
  ignore (read_ok clock a ~volume:"v" ~block:0 ~nblocks:64);
  let t0 = Clock.now clock in
  let got = read_ok clock a ~volume:"v" ~block:0 ~nblocks:64 in
  let hit_latency = Clock.now clock -. t0 in
  check bool "cached read correct" true (got = d);
  let s = Fa.stats a in
  check bool "cache hits recorded" true (s.Fa.cache_hits > 0);
  check bool (Printf.sprintf "hit is DRAM speed (%.1f us)" hit_latency) true
    (hit_latency < 50.0)

let test_cache_disabled () =
  let clock, a = make_array ~config:{ test_config with Fa.read_cache_entries = 0 } () in
  ok (Fa.create_volume a "v" ~blocks:64);
  write_ok clock a ~volume:"v" ~block:0 (random_data 16);
  ignore (await clock (fun k -> Fa.flush a (fun () -> k (Ok ()))));
  ignore (read_ok clock a ~volume:"v" ~block:0 ~nblocks:16);
  ignore (read_ok clock a ~volume:"v" ~block:0 ~nblocks:16);
  check int "no hits when disabled" 0 (Fa.stats a).Fa.cache_hits

let test_cache_serves_fresh_data_after_overwrite () =
  let clock, a = make_array () in
  ok (Fa.create_volume a "v" ~blocks:64);
  write_ok clock a ~volume:"v" ~block:0 (random_data 16);
  ignore (await clock (fun k -> Fa.flush a (fun () -> k (Ok ()))));
  ignore (read_ok clock a ~volume:"v" ~block:0 ~nblocks:16);
  (* overwrite: new facts point at a new cblock, so the stale cache entry
     is unreachable *)
  let fresh = random_data 16 in
  write_ok clock a ~volume:"v" ~block:0 fresh;
  let got = read_ok clock a ~volume:"v" ~block:0 ~nblocks:16 in
  check bool "overwrite wins over cache" true (got = fresh)

let test_secondary_warming_preserves_hits () =
  let clock, a = make_array () in
  ok (Fa.create_volume a "v" ~blocks:512);
  let d = random_data 256 in
  write_ok clock a ~volume:"v" ~block:0 d;
  ignore (await clock (fun k -> Fa.checkpoint a (fun r -> k r)));
  (* warm the working set *)
  ignore (read_ok clock a ~volume:"v" ~block:0 ~nblocks:256);
  Fa.crash a;
  ignore (await clock (fun k -> Fa.failover a k));
  let t0 = Clock.now clock in
  let got = read_ok clock a ~volume:"v" ~block:0 ~nblocks:256 in
  let warm_latency = Clock.now clock -. t0 in
  check bool "data intact" true (got = d);
  let s = Fa.stats a in
  check bool "spare took over warm" true (s.Fa.cache_hits > 0);
  check bool (Printf.sprintf "warm post-failover read fast (%.1f us)" warm_latency) true
    (warm_latency < 100.0)

let test_cold_failover_without_warming () =
  let clock, a =
    make_array ~config:{ test_config with Fa.secondary_warming = false } ()
  in
  ok (Fa.create_volume a "v" ~blocks:512);
  write_ok clock a ~volume:"v" ~block:0 (random_data 256);
  ignore (await clock (fun k -> Fa.checkpoint a (fun r -> k r)));
  ignore (read_ok clock a ~volume:"v" ~block:0 ~nblocks:256);
  Fa.crash a;
  ignore (await clock (fun k -> Fa.failover a k));
  ignore (read_ok clock a ~volume:"v" ~block:0 ~nblocks:256);
  let s = Fa.stats a in
  check int "cold spare misses" 0 s.Fa.cache_hits

(* ---------- 4.6: inferred transfer sizes ---------- *)

let test_inference_tracks_write_size () =
  let clock, a = make_array () in
  ok (Fa.create_volume a "db" ~blocks:4096);
  check (Alcotest.option int) "default before evidence" (Some 64)
    (Fa.inferred_io_blocks a "db");
  (* an 8 KiB-page database *)
  for i = 0 to 39 do
    write_ok clock a ~volume:"db" ~block:(i * 16) (random_data 16)
  done;
  check (Alcotest.option int) "inferred 16-block pages" (Some 16)
    (Fa.inferred_io_blocks a "db")

let test_inference_sizes_cblocks_for_single_fetch_reads () =
  let config = { test_config with Fa.read_cache_entries = 0 } in
  let clock, a = make_array ~config () in
  ok (Fa.create_volume a "db" ~blocks:4096);
  (* train the observer, then write the block we will measure *)
  for i = 0 to 39 do
    write_ok clock a ~volume:"db" ~block:(i * 16) (random_data 16)
  done;
  write_ok clock a ~volume:"db" ~block:2048 (random_data 16);
  ignore (await clock (fun k -> Fa.flush a (fun () -> k (Ok ()))));
  let st = Fa.state a in
  let before = (Purity_sched.Io.stats st.Purity_core.State.io).Purity_sched.Io.chunk_reads in
  ignore (read_ok clock a ~volume:"db" ~block:2048 ~nblocks:16);
  let after = (Purity_sched.Io.stats st.Purity_core.State.io).Purity_sched.Io.chunk_reads in
  (* a page-sized read retrieves a single page-sized cblock (at most two
     write-unit chunks when the frame straddles a boundary) — not the
     4+ chunks a 32 KiB cblock would cost *)
  check bool (Printf.sprintf "page read cost %d chunks" (after - before)) true
    (after - before <= 2)

let test_inference_per_volume () =
  let clock, a = make_array () in
  ok (Fa.create_volume a "small" ~blocks:4096);
  ok (Fa.create_volume a "large" ~blocks:4096);
  for i = 0 to 19 do
    write_ok clock a ~volume:"small" ~block:(i * 8) (random_data 8);
    write_ok clock a ~volume:"large" ~block:(i * 64) (random_data 64)
  done;
  check (Alcotest.option int) "small volume" (Some 8) (Fa.inferred_io_blocks a "small");
  check (Alcotest.option int) "large volume" (Some 64) (Fa.inferred_io_blocks a "large")

let test_gc_segregates_shared_cblocks () =
  (* two volumes holding the same image (deduped) plus unique churn; GC
     must report the multiply-referenced cblocks it segregates *)
  let clock, a = make_array () in
  ok (Fa.create_volume a "a" ~blocks:512);
  ok (Fa.create_volume a "b" ~blocks:512);
  let image = random_data 128 in
  write_ok clock a ~volume:"a" ~block:0 image;
  write_ok clock a ~volume:"b" ~block:0 image;
  (* unique churn to create dead space *)
  for _ = 1 to 3 do
    write_ok clock a ~volume:"a" ~block:256 (random_data 128)
  done;
  ignore (await clock (fun k -> Fa.flush a (fun () -> k (Ok ()))));
  let r = await clock (fun k -> Fa.gc ~min_dead_ratio:0.05 ~max_victims:64 a (fun x -> k x)) in
  check bool "shared cblocks recognised" true (r.Purity_core.Gc.shared_cblocks > 0);
  (* both volumes still read the image *)
  check bool "a intact" true (read_ok clock a ~volume:"a" ~block:0 ~nblocks:128 = image);
  check bool "b intact" true (read_ok clock a ~volume:"b" ~block:0 ~nblocks:128 = image)

(* ---------- p95 hedged reads (4.4) ---------- *)

let test_p95_backup_reads () =
  let config = { test_config with Fa.p95_backup = true; read_cache_entries = 0 } in
  let clock, a = make_array ~config () in
  ok (Fa.create_volume a "v" ~blocks:2048);
  write_ok clock a ~volume:"v" ~block:0 (random_data 1024);
  ignore (await clock (fun k -> Fa.flush a (fun () -> k (Ok ()))));
  (* train the p95 estimator with plenty of reads, then keep reading while
     a flush keeps drives slow; backup reconstructions may fire *)
  for i = 0 to 127 do
    ignore (read_ok clock a ~volume:"v" ~block:(i * 8) ~nblocks:8)
  done;
  (* a concurrent write makes some direct reads slow *)
  let done_w = ref false in
  Fa.write a ~volume:"v" ~block:1024 (random_data 512) (fun _ -> done_w := true);
  for i = 0 to 63 do
    ignore (read_ok clock a ~volume:"v" ~block:(i * 8) ~nblocks:8)
  done;
  Clock.run clock;
  check bool "write completed" true !done_w;
  let io = Purity_sched.Io.stats (Fa.state a).Purity_core.State.io in
  (* the hedge must never lose data and is allowed to fire *)
  check bool "reads all served" true (io.Purity_sched.Io.failures = 0);
  check bool "hedge plumbing alive" true (io.Purity_sched.Io.backup_reads >= 0)

(* ---------- whole-array consistency property ---------- *)

let prop_array_matches_model =
  (* random overlapping writes + reads against a naive byte-array model,
     with periodic flush/gc; every read must match the model exactly *)
  QCheck.Test.make ~name:"array agrees with naive model (no faults)" ~count:12
    QCheck.(int_bound 10_000)
    (fun seed ->
      let clock, a = make_array () in
      (match Fa.create_volume a "v" ~blocks:1024 with Ok () -> () | Error _ -> assert false);
      Rng.with_seed_report ~seed:(Int64.of_int (seed + 77)) @@ fun rng ->
      let model = Bytes.make (1024 * bs) '\000' in
      let okay = ref true in
      for step = 1 to 60 do
        let block = Rng.int rng 960 in
        let nblocks = 1 + Rng.int rng 64 in
        if Rng.int rng 100 < 55 then begin
          let data = Bytes.to_string (Rng.bytes rng (nblocks * bs)) in
          match await clock (Fa.write a ~volume:"v" ~block data) with
          | Ok () -> Bytes.blit_string data 0 model (block * bs) (String.length data)
          | Error `Backpressure -> ()
          | Error _ -> okay := false
        end
        else begin
          match await clock (Fa.read a ~volume:"v" ~block ~nblocks) with
          | Ok got ->
            if got <> Bytes.sub_string model (block * bs) (nblocks * bs) then okay := false
          | Error _ -> okay := false
        end;
        if step mod 20 = 0 then
          ignore (await clock (fun k -> Fa.gc ~min_dead_ratio:0.3 ~max_victims:8 a (fun r -> k r)))
      done;
      !okay)

(* ---------- protection policies (automatic snapshots) ---------- *)

module Protection = Purity_core.Protection

let test_protection_cadence_and_retention () =
  let clock, a = make_array () in
  ok (Fa.create_volume a "db" ~blocks:256);
  (* note: a protection policy reschedules itself forever, so these tests
     drive the clock with run_until, never Clock.run *)
  write_ok clock a ~volume:"db" ~block:0 (random_data 8);
  let p = Protection.create a in
  (match Protection.protect p ~volume:"db" { Protection.every_us = 1000.0; keep = 3 } with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "protect failed");
  Clock.run_until clock (Clock.now clock +. 7_500.0);
  (* 7 ticks, keep 3 *)
  check int "seven taken" 7 (Protection.taken p);
  let snaps = Protection.snapshots p ~volume:"db" in
  check (Alcotest.list Alcotest.string) "newest three retained"
    [ "db.auto-5"; "db.auto-6"; "db.auto-7" ] snaps;
  (* expired snapshots are gone; retained ones exist *)
  check bool "auto-1 expired" false (Fa.volume_exists a "db.auto-1");
  check bool "auto-7 exists" true (Fa.volume_exists a "db.auto-7");
  Protection.stop p

let test_protection_snapshot_content () =
  let clock, a = make_array () in
  ok (Fa.create_volume a "db" ~blocks:64);
  let v1 = random_data 8 in
  write_ok clock a ~volume:"db" ~block:0 v1;
  let p = Protection.create a in
  ignore (Protection.protect p ~volume:"db" { Protection.every_us = 1000.0; keep = 2 });
  Clock.run_until clock (Clock.now clock +. 1_500.0);
  (* overwrite after the first automatic snapshot *)
  let wrote = ref false in
  Fa.write a ~volume:"db" ~block:0 (random_data 8) (fun r -> wrote := r = Ok ());
  Clock.run_until clock (Clock.now clock +. 500.0);
  check bool "overwrite acked" true !wrote;
  let got = ref None in
  Fa.read a ~volume:"db.auto-1" ~block:0 ~nblocks:8 (fun r -> got := Some r);
  Clock.run_until clock (Clock.now clock +. 500.0);
  (match !got with
  | Some (Ok data) -> check bool "auto snapshot froze v1" true (data = v1)
  | _ -> Alcotest.fail "snapshot read failed");
  Protection.stop p

let test_protection_unprotect_stops () =
  let clock, a = make_array () in
  ok (Fa.create_volume a "db" ~blocks:64);
  let p = Protection.create a in
  ignore (Protection.protect p ~volume:"db" { Protection.every_us = 1000.0; keep = 2 });
  Clock.run_until clock (Clock.now clock +. 2_500.0);
  let before = Protection.taken p in
  Protection.unprotect p ~volume:"db";
  Clock.run_until clock (Clock.now clock +. 10_000.0);
  check int "no more snapshots" before (Protection.taken p)

let test_protection_errors () =
  let _clock, a = make_array () in
  let p = Protection.create a in
  (match Protection.protect p ~volume:"ghost" { Protection.every_us = 1000.0; keep = 1 } with
  | Error `No_such_volume -> ()
  | _ -> Alcotest.fail "missing volume accepted");
  ok (Fa.create_volume a "db" ~blocks:64);
  ignore (Protection.protect p ~volume:"db" { Protection.every_us = 1000.0; keep = 1 });
  match Protection.protect p ~volume:"db" { Protection.every_us = 1000.0; keep = 1 } with
  | Error `Already -> Protection.stop p
  | _ -> Alcotest.fail "double protect accepted"

let () =
  Alcotest.run "core"
    [
      ( "volumes",
        [
          Alcotest.test_case "lifecycle" `Quick test_volume_lifecycle;
          Alcotest.test_case "write/read roundtrip" `Quick test_write_read_roundtrip;
          Alcotest.test_case "unwritten reads zero" `Quick test_unwritten_blocks_read_zero;
          Alcotest.test_case "overwrite" `Quick test_overwrite_latest_wins;
          Alcotest.test_case "partial overwrite" `Quick test_partial_overwrite;
          Alcotest.test_case "large write" `Quick test_large_write_spans_segments;
          Alcotest.test_case "error surface" `Quick test_write_errors;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "isolation" `Quick test_snapshot_isolation;
          Alcotest.test_case "read only" `Quick test_snapshot_read_only;
          Alcotest.test_case "clone diverges" `Quick test_clone_shares_then_diverges;
          Alcotest.test_case "snapshot chain" `Quick test_many_snapshots_chain;
          Alcotest.test_case "delete snapshot" `Quick test_delete_snapshot_keeps_volume;
        ] );
      ( "reduction",
        [
          Alcotest.test_case "compression" `Quick test_compression_reduces_stored_bytes;
          Alcotest.test_case "dedup" `Quick test_dedup_absorbs_identical_writes;
          Alcotest.test_case "dedup disabled" `Quick test_dedup_disabled_config;
          Alcotest.test_case "vdi provisioning" `Quick test_data_reduction_ratio_vdi_like;
        ] );
      ( "faults",
        [
          Alcotest.test_case "two drive failures" `Quick test_reads_through_two_drive_failures;
          Alcotest.test_case "write with pulled drive" `Quick test_writes_continue_after_drive_pull;
          Alcotest.test_case "rebuild drive" `Quick test_rebuild_drive;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "acked writes survive" `Quick test_failover_preserves_acked_writes;
          Alcotest.test_case "after checkpoint" `Quick test_failover_after_checkpoint;
          Alcotest.test_case "snapshots survive" `Quick test_failover_preserves_snapshots_and_volumes;
          Alcotest.test_case "double failover" `Quick test_double_failover;
          Alcotest.test_case "frontier faster than full" `Quick
            test_frontier_recovery_faster_than_full;
          Alcotest.test_case "availability accounting" `Quick test_availability_accounting;
        ] );
      ( "gc",
        [
          Alcotest.test_case "reclaims overwrites" `Quick test_gc_reclaims_overwritten_space;
          Alcotest.test_case "preserves data" `Quick test_gc_preserves_data;
          Alcotest.test_case "delete volume reclaim" `Quick test_delete_volume_then_gc_reclaims;
          Alcotest.test_case "after failover" `Quick test_gc_after_failover;
          Alcotest.test_case "segregates shared cblocks" `Quick test_gc_segregates_shared_cblocks;
        ] );
      ( "scrub",
        [
          Alcotest.test_case "clean array" `Quick test_scrub_clean_array;
          Alcotest.test_case "repairs worn flash" `Quick test_scrub_repairs_worn_flash;
        ] );
      ( "sched",
        [ Alcotest.test_case "p95 hedged reads" `Quick test_p95_backup_reads ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_array_matches_model ]);
      ( "protection",
        [
          Alcotest.test_case "cadence and retention" `Quick test_protection_cadence_and_retention;
          Alcotest.test_case "snapshot content" `Quick test_protection_snapshot_content;
          Alcotest.test_case "unprotect stops" `Quick test_protection_unprotect_stops;
          Alcotest.test_case "errors" `Quick test_protection_errors;
        ] );
      ( "inference",
        [
          Alcotest.test_case "tracks write size" `Quick test_inference_tracks_write_size;
          Alcotest.test_case "single-fetch reads" `Quick
            test_inference_sizes_cblocks_for_single_fetch_reads;
          Alcotest.test_case "per volume" `Quick test_inference_per_volume;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hits speed up rereads" `Quick test_cache_hits_speed_up_rereads;
          Alcotest.test_case "disabled" `Quick test_cache_disabled;
          Alcotest.test_case "overwrite wins" `Quick test_cache_serves_fresh_data_after_overwrite;
          Alcotest.test_case "secondary warming" `Quick test_secondary_warming_preserves_hits;
          Alcotest.test_case "cold without warming" `Quick test_cold_failover_without_warming;
        ] );
    ]

module Clock = Purity_sim.Clock
module Drive = Purity_ssd.Drive
module Shelf = Purity_ssd.Shelf
module Rs = Purity_erasure.Reed_solomon
module Layout = Purity_segment.Layout
module Segment = Purity_segment.Segment
module Allocator = Purity_segment.Allocator
module Writer = Purity_segment.Writer
module Scan = Purity_segment.Scan
module Io = Purity_sched.Io
module Rng = Purity_util.Rng

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* Small geometry: 64 KiB AUs, 4 KiB header, 4 KiB write units, 3+2. *)
let au_size = 64 * 1024

let layout = Layout.make ~k:3 ~m:2 ~write_unit:4096 ~header_size:4096 ~au_size ()

let drive_config =
  { Drive.default_config with Drive.au_size; num_aus = 64; dies = 4 }

type env = {
  clock : Clock.t;
  shelf : Shelf.t;
  rs : Rs.t;
  alloc : Allocator.t;
  io : Io.t;
}

let env_seed = 2024L

let make_env ?(drives = 6) ?read_around_write () =
  let clock = Clock.create () in
  let rng = Rng.create ~seed:env_seed in
  let shelf = Shelf.create ~drive_config ~clock ~rng ~drives () in
  let rs = Rs.create ~k:3 ~m:2 in
  let alloc = Allocator.create ~layout ~drives ~aus_per_drive:64 () in
  let io = Io.create ~layout ~shelf ~rs ?read_around_write () in
  { clock; shelf; rs; alloc; io }

let await env f =
  let result = ref None in
  f (fun r -> result := Some r);
  Clock.run env.clock;
  match !result with Some r -> r | None -> Alcotest.fail "operation never completed"

let online env d = Drive.is_online (Shelf.drive env.shelf d)

let write_segment env ~id payload logs =
  let members = Option.get (Allocator.allocate env.alloc ~online:(online env)) in
  let w = Writer.create ~layout ~shelf:env.shelf ~rs:env.rs ~members ~id in
  List.iter (fun s -> ignore (Writer.append_data w s)) payload;
  List.iter (fun (seq, r) -> ignore (Writer.append_log w ~seq r)) logs;
  await env (Writer.finalize w)

(* ---------- Layout ---------- *)

let test_layout_geometry () =
  check int "members" 5 (Layout.members layout);
  check int "rows" 15 (Layout.rows layout);
  check int "payload capacity" (3 * 15 * 4096) (Layout.payload_capacity layout)

let test_layout_locate_single () =
  match Layout.locate layout ~off:0 ~len:100 with
  | [ loc ] ->
    check int "column" 0 loc.Layout.column;
    check int "au offset" 4096 loc.Layout.au_offset;
    check int "length" 100 loc.Layout.length
  | _ -> Alcotest.fail "expected one chunk"

let test_layout_locate_striping () =
  (* Offset exactly one write unit in goes to column 1, same row. *)
  match Layout.locate layout ~off:4096 ~len:10 with
  | [ loc ] ->
    check int "column 1" 1 loc.Layout.column;
    check int "same row au offset" 4096 loc.Layout.au_offset
  | _ -> Alcotest.fail "expected one chunk"

let test_layout_locate_row_advance () =
  (* Offset k write-units in wraps to column 0, next row. *)
  match Layout.locate layout ~off:(3 * 4096) ~len:10 with
  | [ loc ] ->
    check int "column 0" 0 loc.Layout.column;
    check int "next row" (4096 + 4096) loc.Layout.au_offset
  | _ -> Alcotest.fail "expected one chunk"

let test_layout_locate_split () =
  let locs = Layout.locate layout ~off:4000 ~len:8192 in
  check int "three chunks" 3 (List.length locs);
  let total = List.fold_left (fun acc l -> acc + l.Layout.length) 0 locs in
  check int "lengths sum" 8192 total

let test_layout_bounds () =
  Alcotest.check_raises "oob" (Invalid_argument "Layout.locate: out of bounds") (fun () ->
      ignore (Layout.locate layout ~off:(Layout.payload_capacity layout) ~len:1))

let test_layout_bad_geometry () =
  match Layout.make ~k:3 ~m:2 ~write_unit:5000 ~header_size:4096 ~au_size () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "indivisible write unit accepted"

(* ---------- Segment headers ---------- *)

let sample_segment =
  {
    Segment.id = 42;
    members = [| { Segment.drive = 0; au = 3 }; { Segment.drive = 1; au = 7 } |];
    payload_len = 12345;
    log_off = 12000;
    log_len = 345;
    seq_lo = 17L;
    seq_hi = 99L;
  }

let test_header_roundtrip () =
  let page = Segment.encode_header layout sample_segment ~shard:1 in
  check int "page size" 4096 (Bytes.length page);
  match Segment.decode_header page with
  | Some seg ->
    check int "id" 42 seg.Segment.id;
    check int "members" 2 (Array.length seg.Segment.members);
    check int "payload" 12345 seg.Segment.payload_len;
    check Alcotest.int64 "seq_hi" 99L seg.Segment.seq_hi
  | None -> Alcotest.fail "decode failed"

let test_header_rejects_garbage () =
  check bool "zeros" true (Segment.decode_header (Bytes.make 4096 '\000') = None);
  check bool "short" true (Segment.decode_header (Bytes.make 4 'P') = None);
  let page = Segment.encode_header layout sample_segment ~shard:0 in
  Bytes.set_uint8 page 20 (Bytes.get_uint8 page 20 lxor 0xFF);
  check bool "corrupted" true (Segment.decode_header page = None)

(* ---------- Allocator ---------- *)

let test_alloc_distinct_drives () =
  let env = make_env () in
  match Allocator.allocate env.alloc ~online:(online env) with
  | None -> Alcotest.fail "allocation failed"
  | Some members ->
    check int "k+m members" 5 (Array.length members);
    let drives = Array.to_list (Array.map (fun m -> m.Segment.drive) members) in
    check int "distinct drives" 5 (List.length (List.sort_uniq compare drives))

let test_alloc_skips_offline () =
  let env = make_env () in
  Shelf.pull_drive env.shelf 0;
  match Allocator.allocate env.alloc ~online:(online env) with
  | None -> Alcotest.fail "allocation failed"
  | Some members ->
    Array.iter (fun m -> check bool "not drive 0" true (m.Segment.drive <> 0)) members

let test_alloc_fails_with_too_few_drives () =
  let env = make_env () in
  Shelf.pull_drive env.shelf 0;
  Shelf.pull_drive env.shelf 1;
  (* 4 online < 5 needed *)
  check bool "cannot allocate" true (Allocator.allocate env.alloc ~online:(online env) = None)

let test_alloc_from_frontier_only () =
  let env = make_env () in
  let m1 = Option.get (Allocator.allocate env.alloc ~online:(online env)) in
  let persisted = Allocator.persisted_frontier env.alloc in
  Array.iter
    (fun m ->
      check bool "allocated AU was in persisted frontier" true
        (List.exists
           (fun f -> f.Segment.drive = m.Segment.drive && f.Segment.au = m.Segment.au)
           persisted))
    m1

let test_alloc_persist_rarely () =
  let env = make_env () in
  let gens = ref [] in
  for _ = 1 to 16 do
    ignore (Allocator.allocate env.alloc ~online:(online env));
    gens := Allocator.persist_generation env.alloc :: !gens
  done;
  let final_gen = List.hd !gens in
  check bool "frontier persisted far less than once per allocation" true (final_gen <= 4)

let test_alloc_release_recycles () =
  let env = make_env () in
  let m = Option.get (Allocator.allocate env.alloc ~online:(online env)) in
  check int "used" 5 (Allocator.used_au_count env.alloc);
  let free_before = Allocator.free_au_count env.alloc in
  Allocator.release env.alloc m;
  check int "unused" 0 (Allocator.used_au_count env.alloc);
  check int "released AUs rejoin the free pool" (free_before + 5)
    (Allocator.free_au_count env.alloc)

let test_alloc_exhaustion () =
  let env = make_env () in
  (* 6 drives x 64 AUs = 384 AUs; each segment takes 5 -> at most 76. *)
  let count = ref 0 in
  let continue = ref true in
  while !continue do
    match Allocator.allocate env.alloc ~online:(online env) with
    | Some _ -> incr count
    | None -> continue := false
  done;
  check bool "allocated most of the array" true (!count >= 70 && !count <= 76)

let test_alloc_frontier_roundtrip () =
  let env = make_env () in
  ignore (Allocator.allocate env.alloc ~online:(online env));
  let encoded = Allocator.encode_persisted env.alloc in
  let fresh = Allocator.create ~layout ~drives:6 ~aus_per_drive:64 () in
  Allocator.restore_persisted fresh encoded;
  let a = Allocator.persisted_frontier env.alloc in
  let b = Allocator.persisted_frontier fresh in
  check int "same frontier size" (List.length a) (List.length b)

(* ---------- Writer + Scan + Io end to end ---------- *)

let test_segment_write_read_roundtrip () =
  let env = make_env () in
  let payload = String.init 20000 (fun i -> Char.chr ((i * 13) mod 256)) in
  let seg = write_segment env ~id:1 [ payload ] [] in
  check int "payload recorded" 20000 seg.Segment.payload_len;
  match await env (Io.read env.io seg ~off:0 ~len:20000) with
  | Ok data -> check Alcotest.string "roundtrip" payload (Bytes.to_string data)
  | Error `Unrecoverable -> Alcotest.fail "read failed"

let test_segment_partial_reads () =
  let env = make_env () in
  let payload = String.init 30000 (fun i -> Char.chr ((i * 7) mod 256)) in
  let seg = write_segment env ~id:2 [ payload ] [] in
  List.iter
    (fun (off, len) ->
      match await env (Io.read env.io seg ~off ~len) with
      | Ok data ->
        check Alcotest.string
          (Printf.sprintf "slice %d+%d" off len)
          (String.sub payload off len) (Bytes.to_string data)
      | Error `Unrecoverable -> Alcotest.fail "read failed")
    [ (0, 1); (4095, 2); (10000, 12288); (29990, 10) ]

let test_segment_read_with_two_failures () =
  let env = make_env () in
  let payload = String.init 25000 (fun i -> Char.chr ((i * 31) mod 256)) in
  let seg = write_segment env ~id:3 [ payload ] [] in
  (* Pull two member drives: any data must still be readable (7+2 in the
     paper, 3+2 here). *)
  Shelf.pull_drive env.shelf seg.Segment.members.(0).Segment.drive;
  Shelf.pull_drive env.shelf seg.Segment.members.(1).Segment.drive;
  (match await env (Io.read env.io seg ~off:0 ~len:25000) with
  | Ok data -> check Alcotest.string "degraded read" payload (Bytes.to_string data)
  | Error `Unrecoverable -> Alcotest.fail "degraded read failed");
  check bool "reconstruction used" true ((Io.stats env.io).Io.reconstruct_reads > 0)

let test_segment_read_three_failures_unrecoverable () =
  let env = make_env () in
  let payload = String.make 20000 'q' in
  let seg = write_segment env ~id:4 [ payload ] [] in
  Shelf.pull_drive env.shelf seg.Segment.members.(0).Segment.drive;
  Shelf.pull_drive env.shelf seg.Segment.members.(1).Segment.drive;
  Shelf.pull_drive env.shelf seg.Segment.members.(2).Segment.drive;
  match await env (Io.read env.io seg ~off:0 ~len:100) with
  | Error `Unrecoverable -> ()
  | Ok _ -> Alcotest.fail "three losses with m=2 must be unrecoverable"

let test_log_records_roundtrip () =
  let env = make_env () in
  let logs = List.init 20 (fun i -> (Int64.of_int (i + 1), Printf.sprintf "log-record-%03d" i)) in
  let seg = write_segment env ~id:5 [ String.make 5000 'd' ] logs in
  check Alcotest.int64 "seq_lo" 1L seg.Segment.seq_lo;
  check Alcotest.int64 "seq_hi" 20L seg.Segment.seq_hi;
  check int "log after data" 5000 seg.Segment.log_off;
  match await env (Io.read env.io seg ~off:seg.Segment.log_off ~len:seg.Segment.log_len) with
  | Ok region ->
    let got = Writer.decode_log_region region in
    check int "all records" 20 (List.length got);
    List.iter2
      (fun (eseq, er) (gseq, gr) ->
        check Alcotest.int64 "seq" eseq gseq;
        check Alcotest.string "record" er gr)
      logs got
  | Error `Unrecoverable -> Alcotest.fail "log read failed"

let test_writer_capacity_respected () =
  let env = make_env () in
  let members = Option.get (Allocator.allocate env.alloc ~online:(online env)) in
  let w = Writer.create ~layout ~shelf:env.shelf ~rs:env.rs ~members ~id:6 in
  let cap = Layout.payload_capacity layout in
  check bool "fits" true (Writer.append_data w (String.make (cap - 100) 'x') <> None);
  check bool "overflow rejected" true (Writer.append_data w (String.make 200 'y') = None);
  check bool "log overflow rejected" false (Writer.append_log w ~seq:1L (String.make 200 'z'));
  check bool "small log fits" true (Writer.append_log w ~seq:1L (String.make 50 'z'))

let test_writer_data_and_logs_meet () =
  (* data from the front, logs from the back; they share the capacity *)
  let env = make_env () in
  let members = Option.get (Allocator.allocate env.alloc ~online:(online env)) in
  let w = Writer.create ~layout ~shelf:env.shelf ~rs:env.rs ~members ~id:7 in
  let cap = Layout.payload_capacity layout in
  ignore (Writer.append_data w (String.make (cap / 2) 'd'));
  check bool "half log fits" true (Writer.append_log w ~seq:1L (String.make ((cap / 2) - 64) 'l'));
  check int "remaining tiny" 0 (max 0 (Writer.remaining w - 64))

let test_finalize_remaps_failed_member () =
  (* pull a member drive mid-flush: the remap callback re-homes its shard
     and the stripe still tolerates two further failures *)
  let env = make_env () in
  let members = Option.get (Allocator.allocate env.alloc ~online:(online env)) in
  let w = Writer.create ~layout ~shelf:env.shelf ~rs:env.rs ~members ~id:9 in
  let payload = String.init 30000 (fun i -> Char.chr ((i * 11) mod 256)) in
  ignore (Writer.append_data w payload);
  let victim = members.(0).Segment.drive in
  (* a spare AU for the remap, on a drive outside the stripe *)
  let spare_drive =
    List.find
      (fun d -> not (Array.exists (fun (m : Segment.member) -> m.Segment.drive = d) members))
      (List.init 6 Fun.id)
  in
  let remap ~exclude =
    if List.mem spare_drive exclude then None else Some { Segment.drive = spare_drive; au = 60 }
  in
  let result = ref None in
  Writer.finalize w ~remap (fun seg -> result := Some seg);
  (* kill the victim while the flush is in flight *)
  Shelf.pull_drive env.shelf victim;
  Clock.run env.clock;
  let seg = Option.get !result in
  check bool "victim no longer a member" false
    (Array.exists (fun (m : Segment.member) -> m.Segment.drive = victim) seg.Segment.members);
  check bool "spare drive joined" true
    (Array.exists (fun (m : Segment.member) -> m.Segment.drive = spare_drive) seg.Segment.members);
  (* two MORE failures on top of the dead victim: still readable *)
  let others =
    Array.to_list (Array.map (fun (m : Segment.member) -> m.Segment.drive) seg.Segment.members)
  in
  (match others with
  | a :: b :: _ ->
    Shelf.pull_drive env.shelf a;
    Shelf.pull_drive env.shelf b
  | _ -> ());
  match await env (Io.read env.io seg ~off:0 ~len:30000) with
  | Ok data -> check Alcotest.string "full redundancy after remap" payload (Bytes.to_string data)
  | Error `Unrecoverable -> Alcotest.fail "remapped stripe lost data"

let test_scan_all_discovers_segments () =
  let env = make_env () in
  let s1 = write_segment env ~id:1 [ String.make 1000 'a' ] [ (5L, "r1") ] in
  let s2 = write_segment env ~id:2 [ String.make 1000 'b' ] [ (9L, "r2") ] in
  ignore s1;
  ignore s2;
  let segs = await env (fun k -> Scan.scan_all ~layout ~shelf:env.shelf k) in
  check (Alcotest.list int) "both found" [ 1; 2 ] (List.map (fun s -> s.Segment.id) segs)

let test_scan_members_only_frontier () =
  let env = make_env () in
  let s1 = write_segment env ~id:1 [ String.make 1000 'a' ] [] in
  let _s2 = write_segment env ~id:2 [ String.make 1000 'b' ] [] in
  let segs =
    await env (fun k ->
        Scan.scan_members ~layout ~shelf:env.shelf (Array.to_list s1.Segment.members) k)
  in
  check (Alcotest.list int) "only the scanned segment" [ 1 ]
    (List.map (fun s -> s.Segment.id) segs)

let test_scan_survives_pulled_drive () =
  let env = make_env () in
  let s1 = write_segment env ~id:1 [ String.make 1000 'a' ] [] in
  Shelf.pull_drive env.shelf s1.Segment.members.(0).Segment.drive;
  let segs = await env (fun k -> Scan.scan_all ~layout ~shelf:env.shelf k) in
  check (Alcotest.list int) "found via surviving header copies" [ 1 ]
    (List.map (fun s -> s.Segment.id) segs)

let test_scan_all_slower_than_members () =
  let env = make_env () in
  let s1 = write_segment env ~id:1 [ String.make 1000 'a' ] [] in
  let t0 = Clock.now env.clock in
  ignore (await env (fun k -> Scan.scan_all ~layout ~shelf:env.shelf k));
  let full_time = Clock.now env.clock -. t0 in
  let t1 = Clock.now env.clock in
  ignore
    (await env (fun k ->
         Scan.scan_members ~layout ~shelf:env.shelf (Array.to_list s1.Segment.members) k));
  let frontier_time = Clock.now env.clock -. t1 in
  check bool
    (Printf.sprintf "frontier scan much faster (%.0f vs %.0f us)" frontier_time full_time)
    true
    (frontier_time *. 5.0 < full_time)

let test_read_around_write_avoids_busy_drive () =
  let env = make_env () in
  let payload = String.init 30000 (fun i -> Char.chr (i mod 256)) in
  let seg = write_segment env ~id:1 [ payload ] [] in
  Io.reset_stats env.io;
  (* Start a second segment flushing, then read the first segment while
     its member drives are busy programming. *)
  let members2 = Option.get (Allocator.allocate env.alloc ~online:(online env)) in
  let w2 = Writer.create ~layout ~shelf:env.shelf ~rs:env.rs ~members:members2 ~id:2 in
  ignore (Writer.append_data w2 (String.make 40000 'w'));
  let flush_done = ref false in
  Writer.finalize w2 (fun _ -> flush_done := true);
  (* issue the read immediately, while writes are in flight *)
  let read_result = ref None in
  Io.read env.io seg ~off:0 ~len:4096 (fun r -> read_result := Some r);
  Clock.run env.clock;
  check bool "flush finished" true !flush_done;
  (match !read_result with
  | Some (Ok data) -> check Alcotest.string "data intact" (String.sub payload 0 4096) (Bytes.to_string data)
  | _ -> Alcotest.fail "read failed");
  let s = Io.stats env.io in
  check bool "read-around-write reconstructed" true (s.Io.reconstruct_reads >= 0)

(* Every environment in this file derives from [env_seed]; a failing
   test reports it so the run can be reproduced. *)
let test_case name speed f =
  Alcotest.test_case name speed (fun () ->
      ignore (Rng.with_seed_report ~seed:env_seed (fun _ -> f ())))

let () =
  Alcotest.run "segment"
    [
      ( "layout",
        [
          test_case "geometry" `Quick test_layout_geometry;
          test_case "locate single" `Quick test_layout_locate_single;
          test_case "locate striping" `Quick test_layout_locate_striping;
          test_case "locate row advance" `Quick test_layout_locate_row_advance;
          test_case "locate split" `Quick test_layout_locate_split;
          test_case "bounds" `Quick test_layout_bounds;
          test_case "bad geometry" `Quick test_layout_bad_geometry;
        ] );
      ( "header",
        [
          test_case "roundtrip" `Quick test_header_roundtrip;
          test_case "rejects garbage" `Quick test_header_rejects_garbage;
        ] );
      ( "allocator",
        [
          test_case "distinct drives" `Quick test_alloc_distinct_drives;
          test_case "skips offline" `Quick test_alloc_skips_offline;
          test_case "too few drives" `Quick test_alloc_fails_with_too_few_drives;
          test_case "frontier-only allocation" `Quick test_alloc_from_frontier_only;
          test_case "persists rarely" `Quick test_alloc_persist_rarely;
          test_case "release recycles" `Quick test_alloc_release_recycles;
          test_case "exhaustion" `Quick test_alloc_exhaustion;
          test_case "frontier roundtrip" `Quick test_alloc_frontier_roundtrip;
        ] );
      ( "writer+io",
        [
          test_case "write/read roundtrip" `Quick test_segment_write_read_roundtrip;
          test_case "partial reads" `Quick test_segment_partial_reads;
          test_case "read through two failures" `Quick test_segment_read_with_two_failures;
          test_case "three failures unrecoverable" `Quick
            test_segment_read_three_failures_unrecoverable;
          test_case "log records roundtrip" `Quick test_log_records_roundtrip;
          test_case "capacity respected" `Quick test_writer_capacity_respected;
          test_case "data and logs meet" `Quick test_writer_data_and_logs_meet;
          test_case "read around write" `Quick test_read_around_write_avoids_busy_drive;
          test_case "mid-flush remap" `Quick test_finalize_remaps_failed_member;
        ] );
      ( "scan",
        [
          test_case "scan_all discovers" `Quick test_scan_all_discovers_segments;
          test_case "scan_members scoped" `Quick test_scan_members_only_frontier;
          test_case "survives pulled drive" `Quick test_scan_survives_pulled_drive;
          test_case "frontier scan faster" `Quick test_scan_all_slower_than_members;
        ] );
    ]
